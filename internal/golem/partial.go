package golem

import (
	"context"
	"fmt"
	mbits "math/bits"
	"runtime"
	"sync"

	"forestview/internal/stats"
)

// Distributed enrichment factors Analyze into a per-shard counting pass and
// a pure merge, the same shape as spell.PartialSearch/Merge. The background
// bitset is partitioned by contiguous *word ranges*: slice gi of G covers
// arena words [gi*W/G, (gi+1)*W/G), so each shard popcounts ~1/G of every
// term row and the per-slice 2×2 tallies are plain integers that sum — over
// a full partition — to exactly the global k, K, n, N the single-process
// kernel feeds the hypergeometric. MergeCounts therefore reproduces Analyze
// bit-for-bit, not approximately.

// TermInfo names one testable term for merge-time result assembly.
type TermInfo struct {
	ID   string
	Name string
}

// TermCatalog is the merge side's static knowledge of the kernel layout: the
// TermID-sorted term list (positionally aligned with every PartialCounts
// built against the same fingerprint) and the full universe size. A
// coordinator fetches it once per fleet generation; it never changes for a
// given Enricher.
type TermCatalog struct {
	Fingerprint    uint64
	BackgroundSize int
	Terms          []TermInfo
}

// Catalog returns the enricher's term catalog.
func (e *Enricher) Catalog() *TermCatalog {
	c := &TermCatalog{
		Fingerprint:    e.fingerprint,
		BackgroundSize: len(e.geneIdx),
		Terms:          make([]TermInfo, len(e.terms)),
	}
	for i := range e.terms {
		c.Terms[i] = TermInfo{ID: e.terms[i].id, Name: e.terms[i].name}
	}
	return c
}

// Fingerprint identifies the kernel layout (background gene order, term
// rows, per-term K). Partials and catalogs compose iff fingerprints match.
func (e *Enricher) Fingerprint() uint64 { return e.fingerprint }

// PartialCounts is one background slice's contribution to an analysis: the
// integer tallies of the 2×2 tables restricted to the slice's gene range,
// positionally aligned with the catalog's Terms.
type PartialCounts struct {
	Fingerprint uint64
	// Slice/Slices name the word-range partition cell this partial covers.
	Slice  int
	Slices int
	// BackgroundSize and SelectionSize are the slice-local N and n.
	BackgroundSize int
	SelectionSize  int
	// InBackground[i] reports whether selection[i] (the argument, same
	// order) is in the *full* universe — identical on every slice, letting
	// the merge side distinguish "selection unknown to the universe" from
	// "selection lives in an unreachable slice" on degraded scatters.
	InBackground []bool
	// Selected[t] and Background[t] are the slice-local k and K per term.
	Selected   []int32
	Background []int32
}

// PartialAnalyze computes the tallies of background slice `slice` of
// `slices` for the selection. See PartialAnalyzeCtx.
func (e *Enricher) PartialAnalyze(selection []string, slice, slices int) (*PartialCounts, error) {
	return e.PartialAnalyzeCtx(context.Background(), selection, slice, slices)
}

// PartialAnalyzeCtx computes one slice's PartialCounts, polling ctx between
// term chunks. Unlike AnalyzeCtx it does not error on an empty slice-local
// selection: a slice legitimately holding none of the genes still
// contributes its background tallies to the global table.
func (e *Enricher) PartialAnalyzeCtx(ctx context.Context, selection []string, slice, slices int) (*PartialCounts, error) {
	if slices < 1 || slice < 0 || slice >= slices {
		return nil, fmt.Errorf("golem: slice %d of %d out of range", slice, slices)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Full-universe selection bitset, exactly as AnalyzeCtx builds it; the
	// slice restriction happens at the word range, not at interning, so the
	// InBackground disclosure stays slice-independent.
	sel := make([]uint64, e.words)
	inBG := make([]bool, len(selection))
	for i, g := range selection {
		if gi, ok := e.geneIdx[g]; ok {
			inBG[i] = true
			sel[gi>>6] |= 1 << uint(gi&63)
		}
	}

	N := len(e.geneIdx)
	wlo := slice * e.words / slices
	whi := (slice + 1) * e.words / slices
	p := &PartialCounts{
		Fingerprint:  e.fingerprint,
		Slice:        slice,
		Slices:       slices,
		InBackground: inBG,
		Selected:     make([]int32, len(e.terms)),
		Background:   make([]int32, len(e.terms)),
	}
	// Slice-local N: bit positions in [wlo*64, whi*64) clamped to the
	// universe (the last word's tail bits are never claimed).
	if hiBit := whi * 64; hiBit > N {
		p.BackgroundSize = N - wlo*64
	} else {
		p.BackgroundSize = (whi - wlo) * 64
	}
	if p.BackgroundSize < 0 {
		p.BackgroundSize = 0
	}
	for _, w := range sel[wlo:whi] {
		p.SelectionSize += mbits.OnesCount64(w)
	}

	// Per-term AND-popcounts over the word range, worker-sharded like
	// AnalyzeCtx's count pass. Each worker owns a disjoint term range.
	par := runtime.GOMAXPROCS(0)
	sliceWords := whi - wlo
	if sliceWords == 0 {
		return p, nil // empty range: all-zero tallies are the exact answer
	}
	// Scale the serial cutoff by the slice fraction: a 1/G slice does 1/G
	// the popcount work per term, so it takes G× the terms to justify a
	// goroutine.
	minTerms := countShardTerms * e.words / sliceWords
	if max := len(e.terms) / minTerms; par > max {
		par = max
	}
	if par <= 1 {
		if err := e.partialCountRange(ctx, sel, p, wlo, whi, 0, len(e.terms)); err != nil {
			return nil, err
		}
		return p, nil
	}
	var wg sync.WaitGroup
	chunk := (len(e.terms) + par - 1) / par
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(e.terms) {
			hi = len(e.terms)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			_ = e.partialCountRange(ctx, sel, p, wlo, whi, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// partialCountRange fills p.Selected/p.Background[lo:hi] with popcounts of
// term-row words [wlo, whi), polling ctx between terms.
func (e *Enricher) partialCountRange(ctx context.Context, sel []uint64, p *PartialCounts, wlo, whi, lo, hi int) error {
	words := e.words
	selRange := sel[wlo:whi]
	for i := lo; i < hi; i++ {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := e.bits[i*words+wlo : i*words+whi]
		row = row[:len(selRange)] // one bounds check for the fused loop
		k, kb := 0, 0
		for w, s := range selRange {
			k += mbits.OnesCount64(row[w] & s)
			kb += mbits.OnesCount64(row[w])
		}
		p.Selected[i] = int32(k)
		p.Background[i] = int32(kb)
	}
	return nil
}

// MergeCounts sums a set of slice partials into global 2×2 tables and runs
// the shared hypergeometric + corrections over them. Over a complete
// partition (every slice of some G present exactly once) the sums are the
// exact global tallies, so the result is bit-identical to Analyze on the
// same selection. Over a *subset* of slices — a degraded scatter — it is
// still a valid exact analysis, just over the reduced background the
// reachable slices cover.
//
// Every partial must carry the catalog's fingerprint and agree on Slices;
// duplicate slices are refused. An empty merged selection returns
// ErrNoSelection — callers holding a degraded subset should consult the
// partials' InBackground before treating that as a user error.
func MergeCounts(cat *TermCatalog, parts []*PartialCounts, opt Options) ([]Enrichment, error) {
	if opt.MinSelected < 1 {
		opt.MinSelected = 1
	}
	if cat == nil {
		return nil, fmt.Errorf("golem: merge without a term catalog")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("golem: nothing to merge")
	}
	T := len(cat.Terms)
	slices := parts[0].Slices
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("golem: nil partial")
		}
		if p.Fingerprint != cat.Fingerprint {
			return nil, fmt.Errorf("golem: partial fingerprint %016x does not match catalog %016x",
				p.Fingerprint, cat.Fingerprint)
		}
		if p.Slices != slices || p.Slice < 0 || p.Slice >= p.Slices {
			return nil, fmt.Errorf("golem: inconsistent slice %d/%d (want %d slices)",
				p.Slice, p.Slices, slices)
		}
		if seen[p.Slice] {
			return nil, fmt.Errorf("golem: duplicate partial for slice %d", p.Slice)
		}
		seen[p.Slice] = true
		if len(p.Selected) != T || len(p.Background) != T {
			return nil, fmt.Errorf("golem: partial has %d/%d term counts, catalog has %d",
				len(p.Selected), len(p.Background), T)
		}
	}

	N, n := 0, 0
	ks := make([]int, T)
	Ks := make([]int, T)
	for _, p := range parts {
		N += p.BackgroundSize
		n += p.SelectionSize
		for t := 0; t < T; t++ {
			ks[t] += int(p.Selected[t])
			Ks[t] += int(p.Background[t])
		}
	}
	if n == 0 {
		return nil, ErrNoSelection
	}
	// The merging process may never have built an Enricher (a coordinator
	// holds only the catalog), so grow the shared log-factorial table here.
	stats.GrowLnFactorial(N)

	var results []Enrichment
	for t := 0; t < T; t++ {
		if ks[t] < opt.MinSelected {
			continue
		}
		results = append(results, Enrichment{
			TermID:         cat.Terms[t].ID,
			TermName:       cat.Terms[t].Name,
			Selected:       ks[t],
			Background:     Ks[t],
			SelectionSize:  n,
			BackgroundSize: N,
			PValue:         stats.HypergeomUpperTail(ks[t], N, Ks[t], n),
			Fold:           stats.FoldEnrichment(ks[t], N, Ks[t], n),
		})
	}
	return finishAnalysis(results, opt), nil
}

// SelectionKnown reports whether any of the partials saw a selection gene in
// the full universe. When a degraded merge returns ErrNoSelection but the
// selection is known, the verdict is "unresolvable right now" (the genes
// live in unreachable slices), not "bad selection".
func SelectionKnown(parts []*PartialCounts) bool {
	for _, p := range parts {
		for _, ok := range p.InBackground {
			if ok {
				return true
			}
		}
	}
	return false
}
