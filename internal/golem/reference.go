package golem

import (
	"errors"
	"sort"

	"forestview/internal/stats"
)

// ReferenceAnalyze is the pre-kernel enrichment path, retained verbatim as
// the golden standard the bitset kernel is tested against (parity_test.go)
// and the in-binary baseline BenchmarkF4_EnrichReference measures: the
// per-call sort.Strings over the term map, a map-walk intersection per
// term, and per-call math.Lgamma hypergeometrics
// (stats.HypergeomUpperTailLgamma). Results are identical to Analyze's.
func (e *Enricher) ReferenceAnalyze(selection []string, opt Options) ([]Enrichment, error) {
	if opt.MinSelected < 1 {
		opt.MinSelected = 1
	}
	sel := make(map[string]bool, len(selection))
	for _, g := range selection {
		if e.background[g] {
			sel[g] = true
		}
	}
	if len(sel) == 0 {
		return nil, errors.New("golem: no selection genes in the background")
	}
	N := len(e.background)
	n := len(sel)

	// The map state is rebuilt lazily (first ReferenceAnalyze) so the
	// serving path doesn't retain it; from here down this is the old code.
	termGenes := e.refTermGenes()

	var results []Enrichment
	// Deterministic term order for stable output and reproducible
	// corrections.
	terms := make([]string, 0, len(termGenes))
	for t := range termGenes {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		tg := termGenes[term]
		k := 0
		for g := range sel {
			if tg[g] {
				k++
			}
		}
		if k < opt.MinSelected {
			continue
		}
		K := len(tg)
		name := term
		if t := e.onto.Term(term); t != nil {
			if t.Obsolete {
				continue
			}
			name = t.Name
		}
		results = append(results, Enrichment{
			TermID:         term,
			TermName:       name,
			Selected:       k,
			Background:     K,
			SelectionSize:  n,
			BackgroundSize: N,
			PValue:         stats.HypergeomUpperTailLgamma(k, N, K, n),
			Fold:           stats.FoldEnrichment(k, N, K, n),
		})
	}
	return finishAnalysis(results, opt), nil
}
