package golem

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"forestview/internal/ontology"
)

// assertEnrichmentsEqual holds the kernel to the reference: the slices must
// be identical element by element — same terms in the same order, same 2×2
// tables — with all floating-point fields within tol (the arena packs the
// same sets the maps hold, so in practice they agree bitwise).
func assertEnrichmentsEqual(t *testing.T, got, want []Enrichment, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d vs %d", len(got), len(want))
	}
	feq := func(a, b float64) bool {
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) <= tol
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.TermID != w.TermID || g.TermName != w.TermName {
			t.Fatalf("rank %d: term %s(%s) vs %s(%s)", i, g.TermID, g.TermName, w.TermID, w.TermName)
		}
		if g.Selected != w.Selected || g.Background != w.Background ||
			g.SelectionSize != w.SelectionSize || g.BackgroundSize != w.BackgroundSize {
			t.Fatalf("rank %d (%s): table %+v vs %+v", i, w.TermID, g, w)
		}
		if !feq(g.PValue, w.PValue) || !feq(g.Bonferroni, w.Bonferroni) ||
			!feq(g.FDR, w.FDR) || !feq(g.Fold, w.Fold) {
			t.Fatalf("rank %d (%s): stats %+v vs %+v", i, w.TermID, g, w)
		}
	}
}

// randomEnrichmentFixture builds a random DAG ontology (with ~10% obsolete
// terms and some annotations to terms the ontology has never heard of), a
// random annotation set, a background, and a selection salted with
// out-of-background gene IDs — every irregularity the kernel must resolve
// exactly like the map walk.
func randomEnrichmentFixture(t *testing.T, rng *rand.Rand, nTerms, nGenes int) (*Enricher, []string) {
	t.Helper()
	o := ontology.New()
	if err := o.AddTerm(&ontology.Term{ID: "T0000", Name: "root"}); err != nil {
		t.Fatal(err)
	}
	ids := []string{"T0000"}
	for i := 1; i < nTerms; i++ {
		id := fmt.Sprintf("T%04d", i)
		term := &ontology.Term{ID: id, Name: "term " + id, Obsolete: rng.Float64() < 0.1}
		for p := 0; p < 1+rng.Intn(2); p++ {
			term.Parents = append(term.Parents, ids[rng.Intn(len(ids))])
		}
		if err := o.AddTerm(term); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ann := ontology.NewAnnotations()
	var background []string
	for g := 0; g < nGenes; g++ {
		gene := fmt.Sprintf("G%05d", g)
		background = append(background, gene)
		for a := 0; a < 1+rng.Intn(3); a++ {
			ann.Add(gene, ids[rng.Intn(len(ids))])
		}
		if rng.Float64() < 0.05 {
			// Annotation to a term missing from the ontology: testable,
			// name falls back to the raw ID.
			ann.Add(gene, fmt.Sprintf("UNKNOWN:%d", rng.Intn(4)))
		}
	}
	// Genes annotated but outside the background universe.
	for g := 0; g < nGenes/10; g++ {
		ann.Add(fmt.Sprintf("OUT%04d", g), ids[rng.Intn(len(ids))])
	}
	enr, err := NewEnricher(o, ann, background)
	if err != nil {
		t.Fatal(err)
	}
	// Selection: a random slice of the background plus IDs the universe
	// lacks plus duplicates.
	sel := make([]string, 0, nGenes/4+8)
	for g := 0; g < nGenes/4; g++ {
		sel = append(sel, background[rng.Intn(len(background))])
	}
	for g := 0; g < 8; g++ {
		sel = append(sel, fmt.Sprintf("NOT-IN-UNIVERSE-%d", g))
	}
	return enr, sel
}

// TestKernelMatchesReference is the golden-parity proof for the bitset
// kernel: on random ontologies — obsolete terms, unknown annotation
// targets, out-of-background selection genes, duplicated selections —
// Analyze must return Enrichment slices identical to ReferenceAnalyze's,
// p-values within 1e-12, for every option shape.
func TestKernelMatchesReference(t *testing.T) {
	for _, seed := range []int64{7, 71, 717} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			enr, sel := randomEnrichmentFixture(t, rng, 150, 400)
			for _, opt := range []Options{
				{},
				{MinSelected: 2},
				{MinSelected: 5},
				{MaxPValue: 0.05},
				{MinSelected: 3, MaxPValue: 0.2},
			} {
				got, err := enr.Analyze(sel, opt)
				if err != nil {
					t.Fatalf("kernel %+v: %v", opt, err)
				}
				want, err := enr.ReferenceAnalyze(sel, opt)
				if err != nil {
					t.Fatalf("reference %+v: %v", opt, err)
				}
				if len(want) == 0 {
					t.Fatalf("reference %+v returned nothing — fixture too sparse", opt)
				}
				assertEnrichmentsEqual(t, got, want, 1e-12)
			}
		})
	}
}

// TestKernelMatchesReferenceSharded runs the golden parity at an ontology
// large enough that the AND-popcount pass fans out across workers
// (par > 1 needs >= 2*countShardTerms testable terms), so a shard-boundary
// bug in the chunk math cannot hide behind the serial path the smaller
// fixtures take.
func TestKernelMatchesReferenceSharded(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to exercise the sharded counting path")
	}
	rng := rand.New(rand.NewSource(97))
	enr, sel := randomEnrichmentFixture(t, rng, 1200, 800)
	if enr.NumTerms() < 2*countShardTerms {
		t.Fatalf("fixture has %d testable terms, need >= %d for the sharded path",
			enr.NumTerms(), 2*countShardTerms)
	}
	for _, opt := range []Options{{}, {MinSelected: 2, MaxPValue: 0.3}} {
		got, err := enr.Analyze(sel, opt)
		if err != nil {
			t.Fatalf("kernel %+v: %v", opt, err)
		}
		want, err := enr.ReferenceAnalyze(sel, opt)
		if err != nil {
			t.Fatalf("reference %+v: %v", opt, err)
		}
		if len(want) == 0 {
			t.Fatalf("reference %+v returned nothing — fixture too sparse", opt)
		}
		assertEnrichmentsEqual(t, got, want, 1e-12)
	}
}

// TestKernelMatchesReferenceErrors pins the kernel to the reference's query
// contract.
func TestKernelMatchesReferenceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enr, _ := randomEnrichmentFixture(t, rng, 40, 100)
	for _, sel := range [][]string{nil, {}, {"NOPE-1", "NOPE-2"}} {
		if _, err := enr.Analyze(sel, Options{}); err == nil {
			t.Fatalf("kernel accepted selection %v", sel)
		}
		if _, err := enr.ReferenceAnalyze(sel, Options{}); err == nil {
			t.Fatalf("reference accepted selection %v", sel)
		}
	}
}

// TestAnalyzeMinSelectedBoundary: a term with exactly MinSelected selection
// genes is tested; one gene fewer and it is pruned before the corrections —
// in both kernels identically.
func TestAnalyzeMinSelectedBoundary(t *testing.T) {
	o := ontology.New()
	if err := o.AddTerm(&ontology.Term{ID: "GO:R", Name: "root"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"GO:A", "GO:B"} {
		if err := o.AddTerm(&ontology.Term{ID: id, Name: id, Parents: []string{"GO:R"}}); err != nil {
			t.Fatal(err)
		}
	}
	ann := ontology.NewAnnotations()
	var bg []string
	for i := 0; i < 30; i++ {
		g := fmt.Sprintf("g%02d", i)
		bg = append(bg, g)
		switch {
		case i < 6:
			ann.Add(g, "GO:A") // selection will hold 3 of these
		case i < 12:
			ann.Add(g, "GO:B") // selection will hold 2 of these
		}
	}
	enr, err := NewEnricher(o, ann, bg)
	if err != nil {
		t.Fatal(err)
	}
	sel := []string{"g00", "g01", "g02", "g06", "g07"}
	for _, kernel := range []struct {
		name string
		run  func([]string, Options) ([]Enrichment, error)
	}{
		{"Analyze", enr.Analyze},
		{"ReferenceAnalyze", enr.ReferenceAnalyze},
	} {
		res, err := kernel.run(sel, Options{MinSelected: 3})
		if err != nil {
			t.Fatalf("%s: %v", kernel.name, err)
		}
		found := map[string]bool{}
		for _, r := range res {
			found[r.TermID] = true
			if r.TermID == "GO:A" && r.Selected != 3 {
				t.Fatalf("%s: GO:A k = %d, want 3", kernel.name, r.Selected)
			}
		}
		if !found["GO:A"] {
			t.Fatalf("%s: k == MinSelected must be tested: %v", kernel.name, res)
		}
		if found["GO:B"] {
			t.Fatalf("%s: k == MinSelected-1 must be pruned: %v", kernel.name, res)
		}
	}
}

// TestAnalyzeMaxPValueAfterCorrections: MaxPValue trims the report, not the
// tested family — a surviving term's Bonferroni/FDR must be computed over
// all tested terms, so they match the unfiltered run exactly. Both kernels.
func TestAnalyzeMaxPValueAfterCorrections(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	enr, sel := randomEnrichmentFixture(t, rng, 80, 200)
	for _, kernel := range []struct {
		name string
		run  func([]string, Options) ([]Enrichment, error)
	}{
		{"Analyze", enr.Analyze},
		{"ReferenceAnalyze", enr.ReferenceAnalyze},
	} {
		all, err := kernel.run(sel, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cut, err := kernel.run(sel, Options{MaxPValue: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if len(cut) == 0 || len(cut) >= len(all) {
			t.Fatalf("%s: filter must trim strictly: %d of %d", kernel.name, len(cut), len(all))
		}
		byID := make(map[string]Enrichment, len(all))
		for _, r := range all {
			byID[r.TermID] = r
		}
		for _, r := range cut {
			if r.PValue > 0.5 {
				t.Fatalf("%s: MaxPValue leak: %v", kernel.name, r.PValue)
			}
			w := byID[r.TermID]
			if r.Bonferroni != w.Bonferroni || r.FDR != w.FDR {
				t.Fatalf("%s: %s corrections changed under filtering: %+v vs %+v",
					kernel.name, r.TermID, r, w)
			}
		}
	}
}

// TestAnalyzeTieOrdering: terms with identical 2×2 tables have identical
// p-values and must be reported in ascending TermID order — both kernels.
func TestAnalyzeTieOrdering(t *testing.T) {
	o := ontology.New()
	if err := o.AddTerm(&ontology.Term{ID: "GO:R", Name: "root"}); err != nil {
		t.Fatal(err)
	}
	// Four disjoint terms with identical K; the selection hits each with
	// identical k, so all four p-values tie exactly.
	terms := []string{"GO:D", "GO:B", "GO:C", "GO:A"}
	for _, id := range terms {
		if err := o.AddTerm(&ontology.Term{ID: id, Name: id, Parents: []string{"GO:R"}}); err != nil {
			t.Fatal(err)
		}
	}
	ann := ontology.NewAnnotations()
	var bg []string
	for i := 0; i < 40; i++ {
		g := fmt.Sprintf("g%02d", i)
		bg = append(bg, g)
		if i < 20 {
			ann.Add(g, terms[i%4])
		}
	}
	enr, err := NewEnricher(o, ann, bg)
	if err != nil {
		t.Fatal(err)
	}
	sel := []string{"g00", "g01", "g02", "g03"} // one gene per term
	for _, kernel := range []struct {
		name string
		run  func([]string, Options) ([]Enrichment, error)
	}{
		{"Analyze", enr.Analyze},
		{"ReferenceAnalyze", enr.ReferenceAnalyze},
	} {
		res, err := kernel.run(sel, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var tied []string
		for _, r := range res {
			if r.TermID != "GO:R" {
				tied = append(tied, r.TermID)
				if r.PValue != res[0].PValue && res[0].TermID != "GO:R" {
					t.Fatalf("%s: expected exact tie, got %v vs %v", kernel.name, r.PValue, res[0].PValue)
				}
			}
		}
		want := []string{"GO:A", "GO:B", "GO:C", "GO:D"}
		if len(tied) != len(want) {
			t.Fatalf("%s: tied terms %v", kernel.name, tied)
		}
		for i := range want {
			if tied[i] != want[i] {
				t.Fatalf("%s: tie order %v, want %v", kernel.name, tied, want)
			}
		}
	}
}

// TestAnalyzeCtxCancellation: a dead context stops the scan with ctx.Err()
// — before it starts, and mid-flight under the sharded counting path.
func TestAnalyzeCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	enr, sel := randomEnrichmentFixture(t, rng, 600, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := enr.AnalyzeCtx(ctx, sel, Options{}); err != context.Canceled {
		t.Fatalf("canceled ctx: err = %v", err)
	}
	// A live context behaves exactly like Analyze.
	got, err := enr.AnalyzeCtx(context.Background(), sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := enr.Analyze(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertEnrichmentsEqual(t, got, want, 0)
}

// TestAnalyzeConcurrentHammer drives many concurrent analyses (the sharded
// counting path included — the fixture is large enough to fan out) against
// one Enricher; run with -race it proves the kernel shares nothing mutable,
// and every caller gets bit-identical results.
func TestAnalyzeConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	enr, sel := randomEnrichmentFixture(t, rng, 800, 600)
	opts := []Options{{}, {MinSelected: 2}, {MaxPValue: 0.1}}
	want := make([][]Enrichment, len(opts))
	var err error
	for i, opt := range opts {
		if want[i], err = enr.Analyze(sel, opt); err != nil {
			t.Fatal(err)
		}
	}
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				oi := (w + iter) % len(opts)
				got, err := enr.Analyze(sel, opts[oi])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(got) != len(want[oi]) {
					t.Errorf("worker %d: %d results, want %d", w, len(got), len(want[oi]))
					return
				}
				for i := range got {
					if got[i] != want[oi][i] {
						t.Errorf("worker %d: rank %d differs: %+v vs %+v",
							w, i, got[i], want[oi][i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
