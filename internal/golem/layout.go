package golem

import (
	"sort"
)

// Layout places a local map on an integer grid for rendering: layers top
// (roots) to bottom (leaves), a barycenter pass to limit edge crossings,
// and unit-spaced slots within each layer. The renderer scales grid
// coordinates to pixels.
type Layout struct {
	// Pos maps each node to its (column, layer) grid position.
	Pos map[string]GridPoint
	// LayerCount and MaxWidth give the grid extent.
	LayerCount int
	MaxWidth   int
	// Layers lists nodes per layer in final left-to-right order.
	Layers [][]string
}

// GridPoint is a position on the layout grid.
type GridPoint struct {
	Col, Layer int
}

// LayoutGraph computes a layered layout of g. The sweeps parameter bounds
// the barycenter ordering iterations (default 4 when <= 0).
func LayoutGraph(g *Graph, sweeps int) *Layout {
	if sweeps <= 0 {
		sweeps = 4
	}
	// Longest-path layering within the subgraph: layer(n) = 1 + max layer
	// of in-graph parents.
	layer := make(map[string]int, len(g.Nodes))
	var assign func(string) int
	assigning := make(map[string]bool)
	assign = func(n string) int {
		if l, ok := layer[n]; ok {
			return l
		}
		if assigning[n] {
			return 0 // defensive: cycles cannot occur in validated ontologies
		}
		assigning[n] = true
		best := 0
		for _, p := range g.parentsIn(n) {
			if l := assign(p) + 1; l > best {
				best = l
			}
		}
		layer[n] = best
		delete(assigning, n)
		return best
	}
	maxLayer := 0
	for _, n := range g.Nodes {
		if l := assign(n); l > maxLayer {
			maxLayer = l
		}
	}
	layers := make([][]string, maxLayer+1)
	for _, n := range g.Nodes {
		layers[layer[n]] = append(layers[layer[n]], n)
	}
	for _, l := range layers {
		sort.Strings(l) // deterministic start
	}

	// Barycenter sweeps: order each layer by the mean position of its
	// neighbours in the adjacent layer, alternating downward and upward.
	pos := make(map[string]int, len(g.Nodes))
	reindex := func(l []string) {
		for i, n := range l {
			pos[n] = i
		}
	}
	for _, l := range layers {
		reindex(l)
	}
	bary := func(n string, neighbours []string) (float64, bool) {
		if len(neighbours) == 0 {
			return float64(pos[n]), false
		}
		s := 0.0
		for _, m := range neighbours {
			s += float64(pos[m])
		}
		return s / float64(len(neighbours)), true
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		if sweep%2 == 0 {
			for li := 1; li <= maxLayer; li++ {
				sortLayerByBarycenter(layers[li], func(n string) (float64, bool) {
					return bary(n, g.parentsIn(n))
				})
				reindex(layers[li])
			}
		} else {
			for li := maxLayer - 1; li >= 0; li-- {
				sortLayerByBarycenter(layers[li], func(n string) (float64, bool) {
					return bary(n, g.childrenIn(n))
				})
				reindex(layers[li])
			}
		}
	}

	out := &Layout{
		Pos:        make(map[string]GridPoint, len(g.Nodes)),
		LayerCount: maxLayer + 1,
		Layers:     layers,
	}
	for li, l := range layers {
		if len(l) > out.MaxWidth {
			out.MaxWidth = len(l)
		}
		for ci, n := range l {
			out.Pos[n] = GridPoint{Col: ci, Layer: li}
		}
	}
	return out
}

// sortLayerByBarycenter stably reorders a layer by barycenter value,
// keeping nodes without neighbours in place relative to the sorted ones.
func sortLayerByBarycenter(l []string, bary func(string) (float64, bool)) {
	type entry struct {
		n    string
		b    float64
		real bool
	}
	entries := make([]entry, len(l))
	for i, n := range l {
		b, ok := bary(n)
		entries[i] = entry{n, b, ok}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		return entries[a].b < entries[b].b
	})
	for i, e := range entries {
		l[i] = e.n
	}
}

// CrossingCount returns the number of pairwise edge crossings in the
// layout, the quality metric the layout ablation bench reports.
func CrossingCount(g *Graph, lay *Layout) int {
	// Two edges (u1->v1), (u2->v2) between the same pair of layers cross
	// when their endpoints interleave.
	type edge struct {
		fromCol, toCol, fromLayer int
	}
	var edges []edge
	for _, e := range g.Edges {
		a, b := lay.Pos[e[0]], lay.Pos[e[1]]
		// Normalize: from the upper (smaller) layer to the lower.
		if a.Layer > b.Layer {
			a, b = b, a
		}
		edges = append(edges, edge{fromCol: a.Col, toCol: b.Col, fromLayer: a.Layer})
	}
	crossings := 0
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[i].fromLayer != edges[j].fromLayer {
				continue
			}
			a, b := edges[i], edges[j]
			if (a.fromCol-b.fromCol)*(a.toCol-b.toCol) < 0 {
				crossings++
			}
		}
	}
	return crossings
}
