// Package golem reimplements GOLEM (Gene Ontology Local Exploration Map,
// Sealfon et al. 2006), the enrichment-analysis and GO-visualization tool
// the paper integrates with ForestView (Section 3, Figure 5): hypergeometric
// functional-enrichment testing of a gene list with multiple-hypothesis
// correction, extraction of the local DAG neighbourhood around significant
// terms, and a layered layout of that neighbourhood for display.
//
// Scoring runs on a dense bitset kernel (the same playbook as the SPELL and
// clustering kernels): NewEnricher interns the background into an integer
// gene index and packs every testable term's annotated-gene set into one
// []uint64 bitset row of a shared arena, so Analyze is one selection bitset
// plus an AND-popcount per term — no map walks, no string hashing, no
// per-call sorting. The pre-kernel map-walk is retained verbatim as
// ReferenceAnalyze (reference.go), the golden standard the kernel is held
// to by parity_test.go.
package golem

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"forestview/internal/ontology"
	"forestview/internal/stats"
)

// ErrNoSelection reports a selection with no gene in the background
// universe. Callers merging a *subset* of the background slices (a degraded
// scatter) should treat it as inconclusive when the full universe is known
// to hold some of the genes — the unreachable slices may carry them.
var ErrNoSelection = errors.New("golem: no selection genes in the background")

// Enrichment is the test result for one term.
type Enrichment struct {
	TermID   string
	TermName string
	// Selected is k: selection genes annotated to the term.
	Selected int
	// Background is K: background genes annotated to the term.
	Background int
	// SelectionSize (n) and BackgroundSize (N) complete the 2×2 table.
	SelectionSize  int
	BackgroundSize int
	// PValue is the hypergeometric upper tail P(X >= k).
	PValue float64
	// Bonferroni and FDR are the corrected values across all tested terms.
	Bonferroni float64
	FDR        float64
	// Fold is the observed/expected annotation ratio.
	Fold float64
}

// termEntry is one testable term in the kernel's sorted arena. Its bitset
// row lives at bits[row*words : (row+1)*words].
type termEntry struct {
	id   string
	name string
	k    int // K: background genes annotated to the term
}

// Enricher performs enrichment analyses against a fixed background. Build
// it once per (ontology, annotations, background) and reuse it for many
// selections — ForestView calls it every time the user re-selects genes.
// An Enricher is immutable after NewEnricher and safe for concurrent use;
// it assumes the ontology and annotations it was built from are not
// mutated afterwards.
type Enricher struct {
	onto       *ontology.Ontology
	direct     *ontology.Annotations // unpropagated, as handed to NewEnricher
	background map[string]bool

	// The dense kernel state: every background gene owns one bit position,
	// every testable term one packed bitset row in a shared arena, rows in
	// ascending TermID order so Analyze needs no per-call sort.
	geneIdx map[string]int32 // background gene -> bit position [0, N)
	words   int              // uint64 words per bitset row: ceil(N/64)
	terms   []termEntry      // sorted by TermID
	bits    []uint64         // term arena, len = len(terms)*words

	// The reference path's map state (term -> background gene set) is heavy
	// — at GO scale it dwarfs the packed arena — and only parity tests,
	// benchmarks and the golem -reference flag ever walk it, so it is built
	// lazily on the first ReferenceAnalyze instead of living on the serving
	// path's memory for the process lifetime.
	// fingerprint identifies the exact kernel layout (gene bit order, term
	// rows, per-term K) so distributed partials from differently-built
	// enrichers can never be merged into a silently wrong table.
	fingerprint uint64

	refOnce   sync.Once
	termGenes map[string]map[string]bool
}

// NewEnricher prepares an enrichment context. annotations are direct
// (unpropagated); the constructor applies the true-path rule. background
// lists the gene universe; genes without annotations still count toward N,
// mirroring GOLEM's population handling.
func NewEnricher(o *ontology.Ontology, direct *ontology.Annotations, background []string) (*Enricher, error) {
	if o == nil || direct == nil {
		return nil, errors.New("golem: nil ontology or annotations")
	}
	if len(background) == 0 {
		return nil, errors.New("golem: empty background")
	}
	e := &Enricher{
		onto:       o,
		direct:     direct,
		background: make(map[string]bool, len(background)),
		geneIdx:    make(map[string]int32, len(background)),
	}
	fp := fnv.New64a()
	for _, g := range background {
		if !e.background[g] {
			// First occurrence claims the bit; duplicate universe entries
			// collapse, matching the map semantics of the reference path.
			e.geneIdx[g] = int32(len(e.geneIdx))
			e.background[g] = true
			// The fingerprint covers the claimed gene order: two enrichers
			// agree on it iff their background slices partition identically,
			// which is exactly when their word-range partials compose.
			fp.Write([]byte(g))
			fp.Write([]byte{0})
		}
	}
	// The propagated per-term gene sets are needed only transiently here:
	// they compile into the packed arena and are then released, so the
	// serving path never carries the map-of-maps weight.
	termGenes := e.buildTermGenes()

	// Pack the term arena in sorted order.
	N := len(e.geneIdx)
	e.words = (N + 63) / 64
	e.terms = make([]termEntry, 0, len(termGenes))
	ids := make([]string, 0, len(termGenes))
	for t := range termGenes {
		ids = append(ids, t)
	}
	sort.Strings(ids)
	e.bits = make([]uint64, len(ids)*e.words)
	for row, id := range ids {
		set := termGenes[id]
		name := id
		if t := o.Term(id); t != nil {
			name = t.Name
		}
		e.terms = append(e.terms, termEntry{id: id, name: name, k: len(set)})
		tb := e.bits[row*e.words : (row+1)*e.words]
		for g := range set {
			gi := e.geneIdx[g]
			tb[gi>>6] |= 1 << uint(gi&63)
		}
	}
	// Fold the term layout into the fingerprint: row order, IDs and per-term
	// K pin the arena shape a PartialCounts was computed against.
	var buf [8]byte
	for i := range e.terms {
		fp.Write([]byte(e.terms[i].id))
		fp.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], uint64(e.terms[i].k))
		fp.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(N))
	fp.Write(buf[:])
	e.fingerprint = fp.Sum64()
	// The universe size bounds every log-factorial the hypergeometric tests
	// will ever need; growing the shared table here keeps Analyze pure
	// lookups.
	stats.GrowLnFactorial(N)
	return e, nil
}

// buildTermGenes applies the true-path rule and inverts the annotations
// into term -> background-gene sets, skipping obsolete terms (untestable;
// keeping them out keeps NumTerms honest) and terms annotating no
// background gene. Deterministic in the inputs, so the lazy reference
// rebuild reproduces exactly what the arena was compiled from.
func (e *Enricher) buildTermGenes() map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for term, genes := range e.direct.Propagate(e.onto).GenesPerTerm() {
		if t := e.onto.Term(term); t != nil && t.Obsolete {
			continue
		}
		set := make(map[string]bool)
		for g := range genes {
			if e.background[g] {
				set[g] = true
			}
		}
		if len(set) > 0 {
			out[term] = set
		}
	}
	return out
}

// refTermGenes returns the reference path's map state, built on first use.
func (e *Enricher) refTermGenes() map[string]map[string]bool {
	e.refOnce.Do(func() { e.termGenes = e.buildTermGenes() })
	return e.termGenes
}

// BackgroundSize returns N, the size of the gene universe.
func (e *Enricher) BackgroundSize() int { return len(e.background) }

// NumTerms returns the number of testable terms — terms annotating at
// least one background gene after propagation. The query daemon reports it
// in /api/stats.
func (e *Enricher) NumTerms() int { return len(e.terms) }

// InBackground reports whether a gene is part of the universe. Analyze
// silently drops selection genes outside it, so callers reporting what was
// actually tested filter with this first.
func (e *Enricher) InBackground(id string) bool { return e.background[id] }

// Options tune an analysis.
type Options struct {
	// MinSelected skips terms with fewer than this many selection genes
	// (default 1).
	MinSelected int
	// MaxPValue filters results by raw p-value (0 = keep all).
	MaxPValue float64
}

// Analyze tests the selection against every term with at least one
// selection gene and returns results sorted by ascending p-value. Genes
// outside the background are ignored (a selection pasted from another
// dataset may contain IDs this universe lacks).
func (e *Enricher) Analyze(selection []string, opt Options) ([]Enrichment, error) {
	return e.AnalyzeCtx(context.Background(), selection, opt)
}

// countShardTerms is the minimum number of terms a single worker keeps:
// below par×this, the AND-popcount pass runs serially — goroutine handoff
// would cost more than the counting.
const countShardTerms = 256

// AnalyzeCtx is Analyze with cancellation: the term-count shards and the
// p-value pass poll ctx, so a disconnected client stops paying for its
// enrichment mid-scan. The result is identical to Analyze's for a live
// context; a canceled one returns ctx.Err().
func (e *Enricher) AnalyzeCtx(ctx context.Context, selection []string, opt Options) ([]Enrichment, error) {
	if opt.MinSelected < 1 {
		opt.MinSelected = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// One selection bitset; duplicate and out-of-background IDs vanish here
	// exactly as they did in the reference's selection map.
	sel := make([]uint64, e.words)
	n := 0
	for _, g := range selection {
		if gi, ok := e.geneIdx[g]; ok {
			w, m := gi>>6, uint64(1)<<uint(gi&63)
			if sel[w]&m == 0 {
				sel[w] |= m
				n++
			}
		}
	}
	if n == 0 {
		return nil, ErrNoSelection
	}
	N := len(e.geneIdx)

	// k per term: AND-popcount of the term's arena row against the
	// selection, sharded across workers for large ontologies. Each worker
	// owns a disjoint ks range — no locks, deterministic output.
	ks := make([]int, len(e.terms))
	par := runtime.GOMAXPROCS(0)
	if max := len(e.terms) / countShardTerms; par > max {
		par = max
	}
	if par <= 1 {
		if err := e.countRange(ctx, sel, ks, 0, len(e.terms)); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(e.terms) + par - 1) / par
		for w := 0; w < par; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(e.terms) {
				hi = len(e.terms)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				// Workers bail on cancellation; the error surfaces from
				// the ctx re-check after the join.
				_ = e.countRange(ctx, sel, ks, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Score the terms that pass MinSelected. The arena is TermID-sorted, so
	// the tested family accumulates in the reference's deterministic order.
	var results []Enrichment
	for i := range e.terms {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		k := ks[i]
		if k < opt.MinSelected {
			continue
		}
		t := &e.terms[i]
		results = append(results, Enrichment{
			TermID:         t.id,
			TermName:       t.name,
			Selected:       k,
			Background:     t.k,
			SelectionSize:  n,
			BackgroundSize: N,
			PValue:         stats.HypergeomUpperTail(k, N, t.k, n),
			Fold:           stats.FoldEnrichment(k, N, t.k, n),
		})
	}
	return finishAnalysis(results, opt), nil
}

// countRange fills ks[lo:hi] with AND-popcounts of term rows against sel,
// polling ctx between terms.
func (e *Enricher) countRange(ctx context.Context, sel []uint64, ks []int, lo, hi int) error {
	words := e.words
	for i := lo; i < hi; i++ {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := e.bits[i*words : (i+1)*words]
		row = row[:len(sel)] // one bounds check for the fused loop below
		k := 0
		for w, s := range sel {
			k += bits.OnesCount64(row[w] & s)
		}
		ks[i] = k
	}
	return nil
}

// finishAnalysis applies the multiple-hypothesis corrections over the
// tested family, the MaxPValue filter, and the final (p, TermID) ordering —
// shared bit-for-bit by both the kernel and the reference path.
func finishAnalysis(results []Enrichment, opt Options) []Enrichment {
	ps := make([]float64, len(results))
	for i := range results {
		ps[i] = results[i].PValue
	}
	bon := stats.Bonferroni(ps)
	fdr := stats.BenjaminiHochberg(ps)
	for i := range results {
		results[i].Bonferroni = bon[i]
		results[i].FDR = fdr[i]
	}
	if opt.MaxPValue > 0 {
		kept := results[:0]
		for _, r := range results {
			if r.PValue <= opt.MaxPValue {
				kept = append(kept, r)
			}
		}
		results = kept
	}
	sort.SliceStable(results, func(a, b int) bool {
		if results[a].PValue != results[b].PValue {
			return results[a].PValue < results[b].PValue
		}
		return results[a].TermID < results[b].TermID
	})
	return results
}

// TopTerms returns the IDs of the first n results.
func TopTerms(results []Enrichment, n int) []string {
	if n > len(results) {
		n = len(results)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = results[i].TermID
	}
	return out
}

// MinusLog10P is a display helper: -log10(p) clamped to 300 for p = 0.
func MinusLog10P(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return 300
	}
	v := -math.Log10(p)
	if v > 300 {
		return 300
	}
	return v
}
