// Package golem reimplements GOLEM (Gene Ontology Local Exploration Map,
// Sealfon et al. 2006), the enrichment-analysis and GO-visualization tool
// the paper integrates with ForestView (Section 3, Figure 5): hypergeometric
// functional-enrichment testing of a gene list with multiple-hypothesis
// correction, extraction of the local DAG neighbourhood around significant
// terms, and a layered layout of that neighbourhood for display.
package golem

import (
	"errors"
	"math"
	"sort"

	"forestview/internal/ontology"
	"forestview/internal/stats"
)

// Enrichment is the test result for one term.
type Enrichment struct {
	TermID   string
	TermName string
	// Selected is k: selection genes annotated to the term.
	Selected int
	// Background is K: background genes annotated to the term.
	Background int
	// SelectionSize (n) and BackgroundSize (N) complete the 2×2 table.
	SelectionSize  int
	BackgroundSize int
	// PValue is the hypergeometric upper tail P(X >= k).
	PValue float64
	// Bonferroni and FDR are the corrected values across all tested terms.
	Bonferroni float64
	FDR        float64
	// Fold is the observed/expected annotation ratio.
	Fold float64
}

// Enricher performs enrichment analyses against a fixed background. Build
// it once per (ontology, annotations, background) and reuse it for many
// selections — ForestView calls it every time the user re-selects genes.
type Enricher struct {
	onto       *ontology.Ontology
	ann        *ontology.Annotations // propagated
	background map[string]bool
	termGenes  map[string]map[string]bool // term -> background genes
}

// NewEnricher prepares an enrichment context. annotations are direct
// (unpropagated); the constructor applies the true-path rule. background
// lists the gene universe; genes without annotations still count toward N,
// mirroring GOLEM's population handling.
func NewEnricher(o *ontology.Ontology, direct *ontology.Annotations, background []string) (*Enricher, error) {
	if o == nil || direct == nil {
		return nil, errors.New("golem: nil ontology or annotations")
	}
	if len(background) == 0 {
		return nil, errors.New("golem: empty background")
	}
	e := &Enricher{
		onto:       o,
		ann:        direct.Propagate(o),
		background: make(map[string]bool, len(background)),
		termGenes:  make(map[string]map[string]bool),
	}
	for _, g := range background {
		e.background[g] = true
	}
	for term, genes := range e.ann.GenesPerTerm() {
		// Obsolete terms are untestable (Analyze skips them); keeping them
		// out here keeps NumTerms honest.
		if t := o.Term(term); t != nil && t.Obsolete {
			continue
		}
		set := make(map[string]bool)
		for g := range genes {
			if e.background[g] {
				set[g] = true
			}
		}
		if len(set) > 0 {
			e.termGenes[term] = set
		}
	}
	return e, nil
}

// BackgroundSize returns N, the size of the gene universe.
func (e *Enricher) BackgroundSize() int { return len(e.background) }

// NumTerms returns the number of testable terms — terms annotating at
// least one background gene after propagation. The query daemon reports it
// in /api/stats.
func (e *Enricher) NumTerms() int { return len(e.termGenes) }

// InBackground reports whether a gene is part of the universe. Analyze
// silently drops selection genes outside it, so callers reporting what was
// actually tested filter with this first.
func (e *Enricher) InBackground(id string) bool { return e.background[id] }

// Options tune an analysis.
type Options struct {
	// MinSelected skips terms with fewer than this many selection genes
	// (default 1).
	MinSelected int
	// MaxPValue filters results by raw p-value (0 = keep all).
	MaxPValue float64
}

// Analyze tests the selection against every term with at least one
// selection gene and returns results sorted by ascending p-value. Genes
// outside the background are ignored (a selection pasted from another
// dataset may contain IDs this universe lacks).
func (e *Enricher) Analyze(selection []string, opt Options) ([]Enrichment, error) {
	if opt.MinSelected < 1 {
		opt.MinSelected = 1
	}
	sel := make(map[string]bool, len(selection))
	for _, g := range selection {
		if e.background[g] {
			sel[g] = true
		}
	}
	if len(sel) == 0 {
		return nil, errors.New("golem: no selection genes in the background")
	}
	N := len(e.background)
	n := len(sel)

	var results []Enrichment
	// Deterministic term order for stable output and reproducible
	// corrections.
	terms := make([]string, 0, len(e.termGenes))
	for t := range e.termGenes {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		tg := e.termGenes[term]
		k := 0
		for g := range sel {
			if tg[g] {
				k++
			}
		}
		if k < opt.MinSelected {
			continue
		}
		K := len(tg)
		name := term
		if t := e.onto.Term(term); t != nil {
			if t.Obsolete {
				continue
			}
			name = t.Name
		}
		results = append(results, Enrichment{
			TermID:         term,
			TermName:       name,
			Selected:       k,
			Background:     K,
			SelectionSize:  n,
			BackgroundSize: N,
			PValue:         stats.HypergeomUpperTail(k, N, K, n),
			Fold:           stats.FoldEnrichment(k, N, K, n),
		})
	}
	// Corrections over the tested family.
	ps := make([]float64, len(results))
	for i := range results {
		ps[i] = results[i].PValue
	}
	bon := stats.Bonferroni(ps)
	fdr := stats.BenjaminiHochberg(ps)
	for i := range results {
		results[i].Bonferroni = bon[i]
		results[i].FDR = fdr[i]
	}
	if opt.MaxPValue > 0 {
		kept := results[:0]
		for _, r := range results {
			if r.PValue <= opt.MaxPValue {
				kept = append(kept, r)
			}
		}
		results = kept
	}
	sort.SliceStable(results, func(a, b int) bool {
		if results[a].PValue != results[b].PValue {
			return results[a].PValue < results[b].PValue
		}
		return results[a].TermID < results[b].TermID
	})
	return results, nil
}

// TopTerms returns the IDs of the first n results.
func TopTerms(results []Enrichment, n int) []string {
	if n > len(results) {
		n = len(results)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = results[i].TermID
	}
	return out
}

// MinusLog10P is a display helper: -log10(p) clamped to 300 for p = 0.
func MinusLog10P(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return 300
	}
	v := -math.Log10(p)
	if v > 300 {
		return 300
	}
	return v
}
