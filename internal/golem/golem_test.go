package golem

import (
	"math"
	"testing"

	"forestview/internal/ontology"
)

// fixture builds a small ontology:
//
//	root -> stress -> heat
//	root -> metabolism
//
// with 20 background genes: g0..g9 annotated to heat (hence stress, root),
// g10..g14 to metabolism, g15..g19 unannotated.
func fixture(t *testing.T) (*ontology.Ontology, *ontology.Annotations, []string) {
	t.Helper()
	o := ontology.New()
	for _, term := range []*ontology.Term{
		{ID: "GO:R", Name: "biological_process"},
		{ID: "GO:S", Name: "response to stress", Parents: []string{"GO:R"}},
		{ID: "GO:H", Name: "response to heat", Parents: []string{"GO:S"}},
		{ID: "GO:M", Name: "metabolism", Parents: []string{"GO:R"}},
	} {
		if err := o.AddTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	ann := ontology.NewAnnotations()
	var bg []string
	for i := 0; i < 20; i++ {
		id := gene(i)
		bg = append(bg, id)
		switch {
		case i < 10:
			ann.Add(id, "GO:H")
		case i < 15:
			ann.Add(id, "GO:M")
		}
	}
	return o, ann, bg
}

func gene(i int) string { return "g" + string(rune('A'+i)) }

func TestNewEnricherErrors(t *testing.T) {
	o, ann, bg := fixture(t)
	if _, err := NewEnricher(nil, ann, bg); err == nil {
		t.Fatal("nil ontology should error")
	}
	if _, err := NewEnricher(o, nil, bg); err == nil {
		t.Fatal("nil annotations should error")
	}
	if _, err := NewEnricher(o, ann, nil); err == nil {
		t.Fatal("empty background should error")
	}
}

func TestAnalyzeFindsPlantedEnrichment(t *testing.T) {
	o, ann, bg := fixture(t)
	e, err := NewEnricher(o, ann, bg)
	if err != nil {
		t.Fatal(err)
	}
	if e.BackgroundSize() != 20 {
		t.Fatalf("N = %d", e.BackgroundSize())
	}
	// Select 6 heat genes: heat should be the top enrichment.
	sel := []string{gene(0), gene(1), gene(2), gene(3), gene(4), gene(5)}
	res, err := e.Analyze(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0]
	if top.TermID != "GO:H" && top.TermID != "GO:S" {
		t.Fatalf("top term = %s (%s)", top.TermID, top.TermName)
	}
	// Check the 2x2 table of the heat term.
	var heat *Enrichment
	for i := range res {
		if res[i].TermID == "GO:H" {
			heat = &res[i]
		}
	}
	if heat == nil {
		t.Fatal("heat term missing")
	}
	if heat.Selected != 6 || heat.Background != 10 || heat.SelectionSize != 6 || heat.BackgroundSize != 20 {
		t.Fatalf("table = %+v", heat)
	}
	if heat.PValue > 0.01 {
		t.Fatalf("heat p-value = %v, want < 0.01", heat.PValue)
	}
	if heat.Fold < 1.9 {
		t.Fatalf("fold = %v, want ~2", heat.Fold)
	}
	// Metabolism must not appear (no selected genes annotated).
	for _, r := range res {
		if r.TermID == "GO:M" {
			t.Fatal("metabolism should not be tested with 0 selected genes")
		}
	}
}

func TestAnalyzePropagation(t *testing.T) {
	o, ann, bg := fixture(t)
	e, _ := NewEnricher(o, ann, bg)
	sel := []string{gene(0), gene(1), gene(2)}
	res, err := e.Analyze(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The stress term must count heat genes through propagation.
	for _, r := range res {
		if r.TermID == "GO:S" {
			if r.Selected != 3 || r.Background != 10 {
				t.Fatalf("stress table = %+v", r)
			}
			return
		}
	}
	t.Fatal("stress term missing — propagation broken")
}

func TestAnalyzeRootNeverEnriched(t *testing.T) {
	o, ann, bg := fixture(t)
	e, _ := NewEnricher(o, ann, bg)
	sel := []string{gene(0), gene(1), gene(11)}
	res, _ := e.Analyze(sel, Options{})
	for _, r := range res {
		if r.TermID == "GO:R" {
			// Root covers 15/20 of the background: p must be large.
			if r.PValue < 0.3 {
				t.Fatalf("root p-value = %v, suspiciously small", r.PValue)
			}
		}
	}
}

func TestAnalyzeOptions(t *testing.T) {
	o, ann, bg := fixture(t)
	e, _ := NewEnricher(o, ann, bg)
	// Three heat genes plus one metabolism gene: GO:M is tested with one
	// selected gene and must be pruned by MinSelected: 2.
	sel := []string{gene(0), gene(1), gene(2), gene(10)}
	all, _ := e.Analyze(sel, Options{})
	strict, _ := e.Analyze(sel, Options{MinSelected: 2})
	if len(strict) >= len(all) {
		t.Fatalf("MinSelected should prune: %d vs %d", len(strict), len(all))
	}
	cut, _ := e.Analyze(sel, Options{MaxPValue: 1e-3})
	for _, r := range cut {
		if r.PValue > 1e-3 {
			t.Fatalf("MaxPValue leak: %v", r.PValue)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	o, ann, bg := fixture(t)
	e, _ := NewEnricher(o, ann, bg)
	if _, err := e.Analyze([]string{"not-a-gene"}, Options{}); err == nil {
		t.Fatal("selection outside background should error")
	}
	if _, err := e.Analyze(nil, Options{}); err == nil {
		t.Fatal("empty selection should error")
	}
}

func TestAnalyzeCorrectionsOrdering(t *testing.T) {
	o, ann, bg := fixture(t)
	e, _ := NewEnricher(o, ann, bg)
	sel := []string{gene(0), gene(1), gene(2), gene(3), gene(10)}
	res, _ := e.Analyze(sel, Options{})
	for _, r := range res {
		if r.Bonferroni+1e-12 < r.PValue {
			t.Fatalf("Bonferroni %v < raw %v", r.Bonferroni, r.PValue)
		}
		if r.FDR > r.Bonferroni+1e-12 {
			t.Fatalf("FDR %v > Bonferroni %v", r.FDR, r.Bonferroni)
		}
	}
	// Sorted ascending by p.
	for i := 1; i < len(res); i++ {
		if res[i].PValue < res[i-1].PValue {
			t.Fatal("results not sorted by p-value")
		}
	}
}

func TestTopTerms(t *testing.T) {
	rs := []Enrichment{{TermID: "a"}, {TermID: "b"}, {TermID: "c"}}
	if got := TopTerms(rs, 2); len(got) != 2 || got[0] != "a" {
		t.Fatalf("TopTerms = %v", got)
	}
	if got := TopTerms(rs, 10); len(got) != 3 {
		t.Fatalf("TopTerms clamp = %v", got)
	}
}

func TestMinusLog10P(t *testing.T) {
	if v := MinusLog10P(0.01); math.Abs(v-2) > 1e-12 {
		t.Fatalf("-log10(0.01) = %v", v)
	}
	if MinusLog10P(0) != 300 {
		t.Fatal("p=0 should clamp to 300")
	}
	if !math.IsNaN(MinusLog10P(math.NaN())) {
		t.Fatal("NaN should stay NaN")
	}
}

func TestLocalMapAncestorsAndDescendants(t *testing.T) {
	o, _, _ := fixture(t)
	g := LocalMap(o, []string{"GO:S"}, 1)
	// Must include focus, its ancestor root, and child heat.
	for _, id := range []string{"GO:S", "GO:R", "GO:H"} {
		if !g.Contains(id) {
			t.Fatalf("local map missing %s: %v", id, g.Nodes)
		}
	}
	if g.Contains("GO:M") {
		t.Fatal("metabolism should not be in the stress local map")
	}
	// Edges only between included nodes.
	for _, e := range g.Edges {
		if !g.Contains(e[0]) || !g.Contains(e[1]) {
			t.Fatalf("edge %v dangles", e)
		}
	}
	if !g.Focus["GO:S"] {
		t.Fatal("focus not marked")
	}
}

func TestLocalMapDepthZero(t *testing.T) {
	o, _, _ := fixture(t)
	g := LocalMap(o, []string{"GO:S"}, 0)
	if g.Contains("GO:H") {
		t.Fatal("descendDepth=0 must not include children")
	}
}

func TestLocalMapUnknownFocus(t *testing.T) {
	o, _, _ := fixture(t)
	g := LocalMap(o, []string{"GO:NOPE"}, 1)
	if len(g.Nodes) != 0 {
		t.Fatalf("unknown focus should give empty map: %v", g.Nodes)
	}
}

func TestLocalMapMultipleFocus(t *testing.T) {
	o, _, _ := fixture(t)
	g := LocalMap(o, []string{"GO:H", "GO:M"}, 0)
	for _, id := range []string{"GO:H", "GO:M", "GO:S", "GO:R"} {
		if !g.Contains(id) {
			t.Fatalf("missing %s", id)
		}
	}
}

func TestLayoutGraph(t *testing.T) {
	o, _, _ := fixture(t)
	g := LocalMap(o, []string{"GO:H", "GO:M"}, 0)
	lay := LayoutGraph(g, 4)
	if lay.LayerCount != 3 {
		t.Fatalf("layers = %d, want 3 (root/stress+metabolism/heat)", lay.LayerCount)
	}
	// Root on layer 0.
	if lay.Pos["GO:R"].Layer != 0 {
		t.Fatalf("root layer = %d", lay.Pos["GO:R"].Layer)
	}
	if lay.Pos["GO:H"].Layer != 2 {
		t.Fatalf("heat layer = %d", lay.Pos["GO:H"].Layer)
	}
	// Every node has a unique (col, layer).
	seen := make(map[GridPoint]string)
	for n, p := range lay.Pos {
		if other, dup := seen[p]; dup {
			t.Fatalf("nodes %s and %s share position %+v", n, other, p)
		}
		seen[p] = n
	}
	// Parents are always on a strictly smaller layer.
	for _, e := range g.Edges {
		if lay.Pos[e[1]].Layer >= lay.Pos[e[0]].Layer {
			t.Fatalf("edge %v not downward: %d -> %d",
				e, lay.Pos[e[1]].Layer, lay.Pos[e[0]].Layer)
		}
	}
}

func TestLayoutBarycenterReducesCrossings(t *testing.T) {
	// Build a two-layer graph engineered to cross badly in alphabetical
	// order: a->x2, b->x1 (x1 < x2 alphabetically but reversed by edges).
	o := ontology.New()
	_ = o.AddTerm(&ontology.Term{ID: "R", Name: "root"})
	_ = o.AddTerm(&ontology.Term{ID: "p1", Parents: []string{"R"}})
	_ = o.AddTerm(&ontology.Term{ID: "p2", Parents: []string{"R"}})
	_ = o.AddTerm(&ontology.Term{ID: "a-leaf", Parents: []string{"p2"}})
	_ = o.AddTerm(&ontology.Term{ID: "b-leaf", Parents: []string{"p1"}})
	g := LocalMap(o, []string{"a-leaf", "b-leaf"}, 0)
	lay := LayoutGraph(g, 4)
	if c := CrossingCount(g, lay); c != 0 {
		t.Fatalf("crossings = %d, want 0 after barycenter", c)
	}
}

func TestLayoutEmptyGraph(t *testing.T) {
	g := &Graph{Focus: map[string]bool{}}
	lay := LayoutGraph(g, 4)
	if lay.MaxWidth != 0 {
		t.Fatalf("empty layout width = %d", lay.MaxWidth)
	}
}
