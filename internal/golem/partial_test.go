package golem

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestMergeCountsMatchesAnalyze is the distributed golden-parity proof: for
// every slice count a fleet might use, partial tallies summed by MergeCounts
// must reproduce single-process Analyze exactly — same terms in the same
// order, same 2×2 tables, p-values within 1e-12 (in practice bit-identical:
// the summed integers feed the very same hypergeometric calls).
func TestMergeCountsMatchesAnalyze(t *testing.T) {
	for _, seed := range []int64{11, 211} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			enr, sel := randomEnrichmentFixture(t, rng, 300, 700)
			cat := enr.Catalog()
			for _, opt := range []Options{
				{},
				{MinSelected: 2},
				{MaxPValue: 0.05},
				{MinSelected: 3, MaxPValue: 0.2},
			} {
				want, err := enr.Analyze(sel, opt)
				if err != nil {
					t.Fatalf("Analyze %+v: %v", opt, err)
				}
				for _, slices := range []int{1, 2, 3, 5} {
					parts := make([]*PartialCounts, slices)
					for s := 0; s < slices; s++ {
						if parts[s], err = enr.PartialAnalyze(sel, s, slices); err != nil {
							t.Fatalf("slice %d/%d: %v", s, slices, err)
						}
					}
					// Merge order must not matter: reverse the partition.
					for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
						parts[i], parts[j] = parts[j], parts[i]
					}
					got, err := MergeCounts(cat, parts, opt)
					if err != nil {
						t.Fatalf("merge %d slices %+v: %v", slices, opt, err)
					}
					assertEnrichmentsEqual(t, got, want, 1e-12)
				}
			}
		})
	}
}

// TestPartialAnalyzeTallies pins the slice-local invariants: background
// sizes partition N exactly, selection sizes partition n, per-term counts
// sum to the full-scan counts, and the InBackground disclosure is identical
// on every slice.
func TestPartialAnalyzeTallies(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	enr, sel := randomEnrichmentFixture(t, rng, 200, 500)
	full, err := enr.PartialAnalyze(sel, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.BackgroundSize != enr.BackgroundSize() {
		t.Fatalf("whole-universe slice N = %d, want %d", full.BackgroundSize, enr.BackgroundSize())
	}
	for _, slices := range []int{2, 3, 5, 64} {
		var N, n int
		ks := make([]int, enr.NumTerms())
		Ks := make([]int, enr.NumTerms())
		for s := 0; s < slices; s++ {
			p, err := enr.PartialAnalyze(sel, s, slices)
			if err != nil {
				t.Fatal(err)
			}
			N += p.BackgroundSize
			n += p.SelectionSize
			for i := range ks {
				ks[i] += int(p.Selected[i])
				Ks[i] += int(p.Background[i])
			}
			if len(p.InBackground) != len(sel) {
				t.Fatalf("slice %d/%d: InBackground length %d, want %d",
					s, slices, len(p.InBackground), len(sel))
			}
			for i := range p.InBackground {
				if p.InBackground[i] != full.InBackground[i] {
					t.Fatalf("slice %d/%d: InBackground[%d] differs from whole-universe run",
						s, slices, i)
				}
			}
		}
		if N != full.BackgroundSize || n != full.SelectionSize {
			t.Fatalf("%d slices: summed N,n = %d,%d want %d,%d",
				slices, N, n, full.BackgroundSize, full.SelectionSize)
		}
		for i := range ks {
			if ks[i] != int(full.Selected[i]) || Ks[i] != int(full.Background[i]) {
				t.Fatalf("%d slices: term %d counts %d/%d, want %d/%d",
					slices, i, ks[i], Ks[i], full.Selected[i], full.Background[i])
			}
		}
	}
}

// TestMergeCountsAcrossEnrichers: two enrichers built from the same inputs
// fingerprint identically, so their partials interleave — the distributed
// reality, where every shard built its own Enricher.
func TestMergeCountsAcrossEnrichers(t *testing.T) {
	build := func(seed int64) (*Enricher, []string) {
		rng := rand.New(rand.NewSource(seed))
		return randomEnrichmentFixture(t, rng, 120, 300)
	}
	a, sel := build(77)
	b, _ := build(77)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-input enrichers fingerprint %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	want, err := a.Analyze(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var parts []*PartialCounts
	for s, e := range []*Enricher{a, b, a} {
		p, err := e.PartialAnalyze(sel, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := MergeCounts(a.Catalog(), parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertEnrichmentsEqual(t, got, want, 1e-12)

	// A differently-built enricher must be refused, not silently merged.
	c, _ := build(78)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("distinct fixtures collided on fingerprint")
	}
	bad, err := c.PartialAnalyze(sel, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	parts[1] = bad
	if _, err := MergeCounts(a.Catalog(), parts, Options{}); err == nil {
		t.Fatal("merge accepted a partial from a mismatched enricher")
	}
}

// TestMergeCountsValidation walks the refusal paths: nil catalog, empty
// merge, duplicate slice, inconsistent slice counts, truncated term arrays.
func TestMergeCountsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enr, sel := randomEnrichmentFixture(t, rng, 60, 150)
	cat := enr.Catalog()
	p0, err := enr.PartialAnalyze(sel, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := enr.PartialAnalyze(sel, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCounts(nil, []*PartialCounts{p0}, Options{}); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := MergeCounts(cat, nil, Options{}); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeCounts(cat, []*PartialCounts{p0, p0}, Options{}); err == nil {
		t.Fatal("duplicate slice accepted")
	}
	p3, err := enr.PartialAnalyze(sel, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCounts(cat, []*PartialCounts{p0, p3}, Options{}); err == nil {
		t.Fatal("mixed slice counts accepted")
	}
	trunc := *p1
	trunc.Selected = trunc.Selected[:len(trunc.Selected)-1]
	if _, err := MergeCounts(cat, []*PartialCounts{p0, &trunc}, Options{}); err == nil {
		t.Fatal("truncated term counts accepted")
	}
	if _, err := enr.PartialAnalyze(sel, 2, 2); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	if _, err := enr.PartialAnalyze(sel, 0, 0); err == nil {
		t.Fatal("zero slices accepted")
	}
}

// TestMergeCountsDegradedSubset: merging a strict subset of the partition is
// a valid analysis over the reachable background — table fields shrink to
// the covered range — and an all-misses subset distinguishes "genes unknown
// to the universe" (ErrNoSelection + no InBackground bit set) from "genes
// live in the missing slices" (ErrNoSelection but SelectionKnown).
func TestMergeCountsDegradedSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	enr, sel := randomEnrichmentFixture(t, rng, 150, 400)
	cat := enr.Catalog()
	var parts []*PartialCounts
	coveredN := 0
	for _, s := range []int{0, 2} { // slice 1 of 3 is unreachable
		p, err := enr.PartialAnalyze(sel, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
		coveredN += p.BackgroundSize
	}
	res, err := MergeCounts(cat, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("degraded merge returned nothing")
	}
	for _, r := range res {
		if r.BackgroundSize != coveredN {
			t.Fatalf("degraded N = %d, want covered %d", r.BackgroundSize, coveredN)
		}
	}

	// A selection living entirely in the unreachable slice: merged n == 0,
	// but SelectionKnown says the universe holds it.
	missing := -1
	probe, err := enr.PartialAnalyze(sel, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = probe
	for g, gi := range enr.geneIdx {
		w := int(gi >> 6)
		if w >= 1*enr.words/3 && w < 2*enr.words/3 {
			missing = int(gi)
			var hidden []string
			hidden = append(hidden, g)
			var hp []*PartialCounts
			for _, s := range []int{0, 2} {
				p, err := enr.PartialAnalyze(hidden, s, 3)
				if err != nil {
					t.Fatal(err)
				}
				hp = append(hp, p)
			}
			if _, err := MergeCounts(cat, hp, Options{}); !errors.Is(err, ErrNoSelection) {
				t.Fatalf("hidden-slice selection: err = %v, want ErrNoSelection", err)
			}
			if !SelectionKnown(hp) {
				t.Fatal("SelectionKnown must see the universe membership")
			}
			break
		}
	}
	if missing < 0 {
		t.Skip("fixture's middle slice holds no genes")
	}
	// Genes the universe has never heard of: not known, even degraded.
	var up []*PartialCounts
	for _, s := range []int{0, 2} {
		p, err := enr.PartialAnalyze([]string{"NOT-A-GENE"}, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		up = append(up, p)
	}
	if _, err := MergeCounts(cat, up, Options{}); !errors.Is(err, ErrNoSelection) {
		t.Fatalf("unknown selection: err = %v, want ErrNoSelection", err)
	}
	if SelectionKnown(up) {
		t.Fatal("unknown genes must not be SelectionKnown")
	}
}

// TestPartialAnalyzeCancellation: a dead context stops the tally pass.
func TestPartialAnalyzeCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	enr, sel := randomEnrichmentFixture(t, rng, 400, 600)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := enr.PartialAnalyzeCtx(ctx, sel, 0, 2); err != context.Canceled {
		t.Fatalf("canceled ctx: err = %v", err)
	}
}

// TestPartialConcurrentHammer drives concurrent PartialAnalyze calls across
// interleaved slice shapes against one Enricher; with -race it proves the
// partial pass shares nothing mutable and stays deterministic.
func TestPartialConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	enr, sel := randomEnrichmentFixture(t, rng, 800, 600)
	cat := enr.Catalog()
	want, err := enr.Analyze(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slices := []int{1, 2, 3, 5}[w%4]
			for iter := 0; iter < 4; iter++ {
				parts := make([]*PartialCounts, slices)
				var err error
				for s := 0; s < slices; s++ {
					if parts[s], err = enr.PartialAnalyze(sel, s, slices); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
				got, err := MergeCounts(cat, parts, Options{})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("worker %d: %d results, want %d", w, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("worker %d: rank %d differs", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
