package golem

import (
	"testing"

	"forestview/internal/ontology"
)

// deepOntology builds root -> mid -> leafA/leafB -> subA (under leafA).
func deepOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	o := ontology.New()
	for _, term := range []*ontology.Term{
		{ID: "R", Name: "root"},
		{ID: "M", Name: "mid", Parents: []string{"R"}},
		{ID: "LA", Name: "leafA", Parents: []string{"M"}},
		{ID: "LB", Name: "leafB", Parents: []string{"M"}},
		{ID: "SA", Name: "subA", Parents: []string{"LA"}},
	} {
		if err := o.AddTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestExpandAddsChildren(t *testing.T) {
	o := deepOntology(t)
	g := LocalMap(o, []string{"M"}, 0) // root + mid only
	if g.Contains("LA") {
		t.Fatal("precondition: LA not yet present")
	}
	g2 := g.Expand(o, "M", 1)
	if !g2.Contains("LA") || !g2.Contains("LB") {
		t.Fatalf("expand missed children: %v", g2.Nodes)
	}
	if g2.Contains("SA") {
		t.Fatal("depth 1 must not include grandchildren")
	}
	// Original untouched.
	if g.Contains("LA") {
		t.Fatal("Expand mutated the original graph")
	}
	// Deeper expand reaches SA.
	g3 := g.Expand(o, "M", 2)
	if !g3.Contains("SA") {
		t.Fatal("depth 2 should include SA")
	}
	// Edges consistent: every edge endpoint in Nodes.
	for _, e := range g3.Edges {
		if !g3.Contains(e[0]) || !g3.Contains(e[1]) {
			t.Fatalf("dangling edge %v", e)
		}
	}
}

func TestExpandUnknownOrZeroDepth(t *testing.T) {
	o := deepOntology(t)
	g := LocalMap(o, []string{"M"}, 0)
	if got := g.Expand(o, "NOPE", 1); len(got.Nodes) != len(g.Nodes) {
		t.Fatal("expanding an absent term should be a no-op copy")
	}
	if got := g.Expand(o, "M", 0); len(got.Nodes) != len(g.Nodes) {
		t.Fatal("zero depth should be a no-op copy")
	}
}

func TestCollapseRemovesDescendants(t *testing.T) {
	o := deepOntology(t)
	g := LocalMap(o, []string{"SA"}, 0) // whole chain R-M-LA-SA via ancestors
	if !g.Contains("SA") {
		t.Fatal("precondition")
	}
	g2 := g.Collapse(o, "M")
	if g2.Contains("LA") {
		t.Fatal("collapse left a non-focus descendant")
	}
	// SA is focus: survives even though it is a descendant of M.
	if !g2.Contains("SA") {
		t.Fatal("collapse removed a focus term")
	}
	if !g2.Contains("M") || !g2.Contains("R") {
		t.Fatal("collapse removed the node itself or its ancestors")
	}
}

func TestExpandCollapseRoundTrip(t *testing.T) {
	o := deepOntology(t)
	g := LocalMap(o, []string{"M"}, 0)
	expanded := g.Expand(o, "M", 2)
	collapsed := expanded.Collapse(o, "M")
	if len(collapsed.Nodes) != len(g.Nodes) {
		t.Fatalf("round trip nodes = %v, want %v", collapsed.Nodes, g.Nodes)
	}
	// Layout still valid after navigation.
	lay := LayoutGraph(collapsed, 2)
	if lay.LayerCount < 2 {
		t.Fatalf("layout layers = %d", lay.LayerCount)
	}
}
