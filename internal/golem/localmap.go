package golem

import (
	"sort"

	"forestview/internal/ontology"
)

// Graph is a term subgraph: the "local exploration map" GOLEM displays
// around the terms a user focuses on.
type Graph struct {
	// Nodes are term IDs, deterministic order.
	Nodes []string
	// Edges run child -> parent, both endpoints guaranteed in Nodes.
	Edges [][2]string
	// Focus marks the seed terms the map was built around.
	Focus map[string]bool
}

// LocalMap extracts the neighbourhood of the focus terms: every ancestor up
// to the roots (so the user always sees the path of meaning from the root)
// plus descendants down to depth descendDepth (0 = none).
func LocalMap(o *ontology.Ontology, focus []string, descendDepth int) *Graph {
	g := &Graph{Focus: make(map[string]bool)}
	include := make(map[string]bool)
	for _, f := range focus {
		if o.Term(f) == nil {
			continue
		}
		g.Focus[f] = true
		include[f] = true
		for _, a := range o.Ancestors(f) {
			include[a] = true
		}
		// Bounded downward BFS.
		frontier := []string{f}
		for d := 0; d < descendDepth; d++ {
			var next []string
			for _, n := range frontier {
				for _, c := range o.Children(n) {
					if !include[c] {
						include[c] = true
						next = append(next, c)
					}
				}
			}
			frontier = next
		}
	}
	for id := range include {
		g.Nodes = append(g.Nodes, id)
	}
	sort.Strings(g.Nodes)
	for _, id := range g.Nodes {
		for _, p := range o.Parents(id) {
			if include[p] {
				g.Edges = append(g.Edges, [2]string{id, p})
			}
		}
	}
	sort.Slice(g.Edges, func(a, b int) bool {
		if g.Edges[a][0] != g.Edges[b][0] {
			return g.Edges[a][0] < g.Edges[b][0]
		}
		return g.Edges[a][1] < g.Edges[b][1]
	})
	return g
}

// Contains reports whether the graph includes the term.
func (g *Graph) Contains(id string) bool {
	i := sort.SearchStrings(g.Nodes, id)
	return i < len(g.Nodes) && g.Nodes[i] == id
}

// Expand grows the map by the children of one term down to the given depth
// — GOLEM's interactive "local exploration": clicking a node unfolds its
// sub-hierarchy. It returns a new graph; the original is unchanged.
func (g *Graph) Expand(o *ontology.Ontology, termID string, depth int) *Graph {
	if !g.Contains(termID) || depth <= 0 {
		return g.clone()
	}
	include := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		include[n] = true
	}
	frontier := []string{termID}
	for d := 0; d < depth; d++ {
		var next []string
		for _, n := range frontier {
			for _, c := range o.Children(n) {
				if !include[c] {
					include[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return rebuild(o, include, g.Focus)
}

// Collapse removes a term's descendants from the map (folding the node
// back up). Focus terms are never removed. It returns a new graph.
func (g *Graph) Collapse(o *ontology.Ontology, termID string) *Graph {
	if !g.Contains(termID) {
		return g.clone()
	}
	drop := make(map[string]bool)
	for _, d := range o.Descendants(termID) {
		if !g.Focus[d] {
			drop[d] = true
		}
	}
	include := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if !drop[n] {
			include[n] = true
		}
	}
	return rebuild(o, include, g.Focus)
}

// rebuild constructs a Graph over an inclusion set, keeping only edges with
// both endpoints present.
func rebuild(o *ontology.Ontology, include map[string]bool, focus map[string]bool) *Graph {
	out := &Graph{Focus: make(map[string]bool, len(focus))}
	for f := range focus {
		if include[f] {
			out.Focus[f] = true
		}
	}
	for id := range include {
		out.Nodes = append(out.Nodes, id)
	}
	sort.Strings(out.Nodes)
	for _, id := range out.Nodes {
		for _, p := range o.Parents(id) {
			if include[p] {
				out.Edges = append(out.Edges, [2]string{id, p})
			}
		}
	}
	sort.Slice(out.Edges, func(a, b int) bool {
		if out.Edges[a][0] != out.Edges[b][0] {
			return out.Edges[a][0] < out.Edges[b][0]
		}
		return out.Edges[a][1] < out.Edges[b][1]
	})
	return out
}

func (g *Graph) clone() *Graph {
	out := &Graph{
		Nodes: append([]string(nil), g.Nodes...),
		Edges: append([][2]string(nil), g.Edges...),
		Focus: make(map[string]bool, len(g.Focus)),
	}
	for f := range g.Focus {
		out.Focus[f] = true
	}
	return out
}

// parentsIn returns the in-graph parents of a node.
func (g *Graph) parentsIn(id string) []string {
	var out []string
	for _, e := range g.Edges {
		if e[0] == id {
			out = append(out, e[1])
		}
	}
	return out
}

// childrenIn returns the in-graph children of a node.
func (g *Graph) childrenIn(id string) []string {
	var out []string
	for _, e := range g.Edges {
		if e[1] == id {
			out = append(out, e[0])
		}
	}
	return out
}
