package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
)

// prefetcher is the speculative half of the viewport pipeline: every served
// heatmap tile predicts where the client pans or zooms next — the adjacent
// windows at the same pyramid level, the parent tile one level up and the
// child tile one level down — and renders those tiles in the background
// into the same generation-keyed LRU the foreground path serves from.
//
// The discipline that keeps speculation free:
//
//   - predictions go through the exact renderTile path (cache → singleflight
//     → pool), so a speculative render coalesces with a real request for the
//     same tile and never double-renders;
//   - workers yield to the foreground: a job only rasterizes while the render
//     pool's queue is empty, and a saturated pool sheds the speculation
//     (counted, never retried);
//   - a stale-generation check drops predictions whose pane was hot-swapped
//     while they queued;
//   - tiles rendered speculatively are tracked until a foreground request
//     first serves them (disposition becomes "prefetched") or the LRU evicts
//     them untouched (counted as evicted_unused — the misprediction signal).
type prefetcher struct {
	s       *Server
	jobs    chan tileParams
	wg      sync.WaitGroup
	workers int
	closeMu sync.Mutex
	closed  bool

	// pending tracks cache keys populated by speculation and not yet served
	// to any foreground request.
	mu      sync.Mutex
	pending map[string]struct{}

	// stat receives the renderTile cache/compute accounting for speculative
	// work, kept apart from statHeatmap so foreground counters stay exact.
	stat endpointStats

	enqueued      atomic.Int64
	dropped       atomic.Int64
	rendered      atomic.Int64
	coalesced     atomic.Int64
	skippedCached atomic.Int64
	skippedStale  atomic.Int64
	shed          atomic.Int64
	served        atomic.Int64
	evictedUnused atomic.Int64
}

// newPrefetcher starts the worker set and hooks cache eviction. Call before
// the server sees traffic (New does).
func newPrefetcher(s *Server, workers, queue int) *prefetcher {
	if queue < 1 {
		queue = 16 * workers
	}
	pf := &prefetcher{
		s:       s,
		jobs:    make(chan tileParams, queue),
		workers: workers,
		pending: make(map[string]struct{}),
	}
	s.cache.OnEvict(pf.noteEvicted)
	for i := 0; i < workers; i++ {
		pf.wg.Add(1)
		go pf.worker()
	}
	return pf
}

// speculate enqueues the predicted neighbours of a just-served tile. nRows
// is the pane's display row count, levels its pyramid depth. Non-blocking:
// a full queue drops predictions rather than delaying the caller.
func (pf *prefetcher) speculate(p tileParams, nRows, levels int) {
	span := p.to - p.from
	if span <= 0 || nRows <= 0 {
		return
	}
	type window struct{ from, to int }
	var cands []window
	// Pan: the next and previous windows, truncated at the pane edges
	// exactly like a client walking one full window per step would request
	// them.
	if p.to < nRows {
		cands = append(cands, window{p.to, min(p.to+span, nRows)})
	}
	if p.from > 0 {
		cands = append(cands, window{max(0, p.from-span), p.from})
	}
	// Zoom out: the parent window — double the span, same center.
	if 2*span <= nRows {
		center := (p.from + p.to) / 2
		from := max(0, center-span)
		cands = append(cands, window{from, min(nRows, from+2*span)})
	}
	// Zoom in: the child window — the center half.
	if span >= 2 {
		from := p.from + span/4
		cands = append(cands, window{from, min(nRows, from+span/2)})
	}
	for _, c := range cands {
		if c.to <= c.from || (c.from == p.from && c.to == p.to) {
			continue
		}
		q := p
		q.from, q.to = c.from, c.to
		// Each candidate resolves its own auto level, so the predicted
		// cache key is exactly what a future auto-level request for that
		// window will form — including edge-truncated windows, whose
		// shorter span resolves a finer level than the tile they neighbour.
		q.level = autoLevel(c.to-c.from, p.h, levels)
		pf.enqueue(q)
	}
}

func (pf *prefetcher) enqueue(q tileParams) {
	if _, ok := pf.s.cache.Get(q.key()); ok {
		pf.skippedCached.Add(1)
		return
	}
	pf.closeMu.Lock()
	if pf.closed {
		pf.closeMu.Unlock()
		return
	}
	select {
	case pf.jobs <- q:
		pf.enqueued.Add(1)
	default:
		pf.dropped.Add(1)
	}
	pf.closeMu.Unlock()
}

func (pf *prefetcher) worker() {
	defer pf.wg.Done()
	for q := range pf.jobs {
		pf.run(q)
	}
}

// run renders one speculative tile, or declines to: already cached, stale
// generation, or a render pool with foreground work waiting.
func (pf *prefetcher) run(q tileParams) {
	if gen, ok := pf.s.trees.generation(q.dsIndex); !ok || gen != q.gen {
		pf.skippedStale.Add(1)
		return
	}
	key := q.key()
	if _, ok := pf.s.cache.Get(key); ok {
		pf.skippedCached.Add(1)
		return
	}
	if pf.s.pool.QueueLen() > 0 {
		// Foreground renders are waiting for workers; speculation yields.
		pf.shed.Add(1)
		return
	}
	cd, gen, err := pf.s.trees.get(context.Background(), q.dsIndex)
	if err != nil || gen != q.gen {
		pf.skippedStale.Add(1)
		return
	}
	// Mark before rendering so a foreground hit arriving right after the
	// in-job cache fill already reads "prefetched".
	pf.mark(key)
	_, disp, err := pf.s.renderTile(context.Background(), cd, q, &pf.stat)
	switch {
	case errors.Is(err, ErrSaturated):
		pf.unmark(key)
		pf.shed.Add(1)
	case errors.Is(err, ErrClosed):
		pf.unmark(key)
	case err != nil:
		pf.unmark(key)
	case disp == dispCoalesced:
		// A real request was already rendering this tile; the singleflight
		// absorbed our speculation.
		pf.unmark(key)
		pf.coalesced.Add(1)
	case disp == dispHit:
		pf.unmark(key)
		pf.skippedCached.Add(1)
	default:
		pf.rendered.Add(1)
	}
}

func (pf *prefetcher) mark(key string) {
	pf.mu.Lock()
	pf.pending[key] = struct{}{}
	pf.mu.Unlock()
}

func (pf *prefetcher) unmark(key string) {
	pf.mu.Lock()
	delete(pf.pending, key)
	pf.mu.Unlock()
}

// claim consumes a pending mark: the foreground request serving key was
// answered by a speculative render. Returns whether the mark existed.
func (pf *prefetcher) claim(key string) bool {
	pf.mu.Lock()
	_, ok := pf.pending[key]
	if ok {
		delete(pf.pending, key)
	}
	pf.mu.Unlock()
	if ok {
		pf.served.Add(1)
	}
	return ok
}

// noteEvicted is the cache's eviction observer: a speculative tile evicted
// before any foreground touch was a wasted prediction.
func (pf *prefetcher) noteEvicted(key string) {
	if !strings.HasPrefix(key, "tile\x1f") {
		return
	}
	pf.mu.Lock()
	_, ok := pf.pending[key]
	if ok {
		delete(pf.pending, key)
	}
	pf.mu.Unlock()
	if ok {
		pf.evictedUnused.Add(1)
	}
}

// snapshot assembles the prefetch section of /api/stats.
func (pf *prefetcher) snapshot() PrefetchInfo {
	pf.mu.Lock()
	pending := len(pf.pending)
	pf.mu.Unlock()
	return PrefetchInfo{
		Workers:       pf.workers,
		Enqueued:      pf.enqueued.Load(),
		Dropped:       pf.dropped.Load(),
		Rendered:      pf.rendered.Load(),
		Coalesced:     pf.coalesced.Load(),
		SkippedCached: pf.skippedCached.Load(),
		SkippedStale:  pf.skippedStale.Load(),
		Shed:          pf.shed.Load(),
		Served:        pf.served.Load(),
		EvictedUnused: pf.evictedUnused.Load(),
		Pending:       pending,
	}
}

// Close drains the queue and stops the workers.
func (pf *prefetcher) Close() {
	pf.closeMu.Lock()
	if !pf.closed {
		pf.closed = true
		close(pf.jobs)
	}
	pf.closeMu.Unlock()
	pf.wg.Wait()
}
