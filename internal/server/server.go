// Package server implements forestviewd's HTTP engine: one daemon that
// loads a compendium once and serves all three paper subsystems
// concurrently — SPELL ranked search (/api/search), GOLEM GO-term
// enrichment (/api/enrich) and ForestView heatmap tiles (/api/heatmap) —
// plus /healthz and /api/stats. It is the paper's integration claim
// ("these analyses become useful when combined behind one dynamically
// queryable front-end") rebuilt as a traffic-ready service:
//
//   - a sharded in-memory LRU cache holds search results, enrichment
//     tables and rendered PNG tiles under canonicalized query keys;
//   - request coalescing (singleflight) ensures a burst of identical
//     concurrent queries computes the underlying result exactly once;
//   - a bounded worker pool with fail-fast admission control keeps tile
//     rasterization from monopolizing the process under load;
//   - per-endpoint counters (requests, errors, hit rate, coalesced joins,
//     computations, latency) are exposed at /api/stats.
//
// The SPELL HTML page (internal/spellweb) mounts onto this server's mux
// and searches through the same cached path, so humans and API clients
// share one engine instance and one cache.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/spellweb"
)

// Config assembles a Server. Engine is required unless Scatter makes the
// daemon a coordinator; Enricher and the dataset lists gate their
// endpoints (a daemon without an ontology serves 503 on /api/enrich
// rather than failing to start).
type Config struct {
	// Engine is the prepared SPELL compendium (required, except for a
	// pure coordinator: with Scatter set and Engine nil, search scatters
	// to the shard backends and no local compendium is held).
	Engine *spell.Engine
	// Scatter, when set, routes every search — /api/search and the HTML
	// page alike — through the shard coordinator: scatter, merge with
	// global renormalization, cache the merged result under the canonical
	// query + shard-set generation. Degraded merges are never cached.
	Scatter *shard.Coordinator
	// ShardIndexes, when non-nil, makes the daemon a shard backend: entry
	// i is the global compendium index of the engine's dataset i (the
	// slice selected by shard.OwnedIndexesR), and /api/shard/search +
	// /api/shard/info come up, serving partials with globally remapped
	// dataset indexes. Requires Engine; length must match its compendium.
	ShardIndexes []int
	// ShardDatasetIDs is the full compendium dataset list in global order
	// — the boot catalog every fleet member agrees on. Required with
	// ShardIndexes (whose entries index into it): the shard recomputes
	// ownership groups from it for replicated requests and serves it at
	// /api/shard/info so coordinators stay dataset-stateless.
	ShardDatasetIDs []string
	// FleetToken authorizes POST /api/admin/fleet on a coordinator
	// (runtime shard joins and leaves) and the shard-side admin endpoints
	// (drain, handoff, fleet view). Empty disables them: every request is
	// refused.
	FleetToken string
	// ShardSelf is this shard's own fleet identity (its entry in the
	// -shards list). Setting it (with ShardIndexes) mounts the drain,
	// handoff and shard-fleet admin endpoints: the shard can then be
	// drained gracefully and can reload its membership view at runtime.
	ShardSelf string
	// ShardFleet is the shard's boot-time view of the fleet list, the
	// starting point for runtime membership reloads. Optional: without it
	// the shard serves its boot slice and refuses handoffs (it has no
	// generation to guard them against).
	ShardFleet []string
	// ShardReplication is the fleet's replication factor as this shard
	// understands it, used to derive its owned slice after a reload and to
	// scope drain pushes (default 1).
	ShardReplication int
	// ShardRawDatasets are the raw datasets behind Engine, aligned with
	// ShardIndexes. Required for membership reloads that grow the slice:
	// the engine is rebuilt over these plus the newly loaded datasets. Nil
	// disables reload-with-growth (the shard still serves and drains).
	ShardRawDatasets []*microarray.Dataset
	// ShardLoader loads one dataset by its global catalog index, for
	// membership reloads that assign this shard datasets it does not hold.
	ShardLoader func(ctx context.Context, globalIndex int) (*microarray.Dataset, error)
	// ShardResolve turns a fleet identity into a dial URL for drain pushes
	// (default shard.NormalizeAddr, mirroring the coordinator).
	ShardResolve func(string) string
	// OnDrained, when set, is called (once, on its own goroutine) after a
	// drain request has pushed its warm handoff: the daemon hooks its
	// graceful shutdown here so a drained shard exits by itself.
	OnDrained func()
	// Enricher is the prepared GOLEM context behind /api/enrich.
	Enricher *golem.Enricher
	// Datasets are pre-clustered panes behind /api/heatmap, indexable by
	// position or dataset name.
	Datasets []*core.ClusteredDataset
	// RawDatasets are unclustered panes, indexed after Datasets: the first
	// /api/heatmap touch clusters each one exactly once through the
	// server's tree cache (concurrent requests coalesce onto one build),
	// which keeps daemon startup off the clustering critical path.
	RawDatasets []*microarray.Dataset
	// TreeMetric and TreeLinkage configure the lazy clustering of
	// RawDatasets (defaults: Pearson distance, average linkage — the
	// Cluster 3.0 defaults).
	TreeMetric cluster.Metric
	// TreeLinkage — see TreeMetric.
	TreeLinkage cluster.Linkage
	// TreeOptimizeOrder additionally runs the Gruvaeus-Wainer leaf
	// orientation pass on lazily built trees.
	TreeOptimizeOrder bool
	// ClusterArrays additionally clusters the experiment (column) axis of
	// lazily built trees, enabling the atree=H column-dendrogram strip —
	// the paper's two-axis ForestView display.
	ClusterArrays bool
	// Float32Slabs serves heatmap tiles from float32 pyramid slabs instead
	// of float64, halving memory bandwidth on the render hot loop at a
	// bounded color error (see DESIGN.md §8). Level-0 tiles lose their
	// byte-identity with the float64 path when enabled.
	Float32Slabs bool

	// PrefetchWorkers enables speculative tile prefetch: each served
	// heatmap tile enqueues its predicted pan/zoom neighbours for
	// background rendering into the shared LRU. 0 (the default) disables
	// speculation entirely.
	PrefetchWorkers int
	// PrefetchQueue bounds the speculative tile queue (default
	// 16×PrefetchWorkers); predictions beyond it are dropped, not queued.
	PrefetchQueue int

	// CacheBytes budgets the shared LRU cache (default 64 MiB).
	CacheBytes int64
	// RenderWorkers bounds concurrent tile rasterizations (default 4).
	RenderWorkers int
	// RenderQueue bounds waiting render jobs before the daemon sheds load
	// with 503 (default 4×RenderWorkers).
	RenderQueue int
	// MaxGenes caps the gene ranking length a search request may ask for
	// (default 200); requests above it are clamped, keeping any single
	// query's response — and cache entry — bounded.
	MaxGenes int
	// SearchParallelism bounds the worker pool of each SPELL scan — local
	// search and shard partials alike (0 = GOMAXPROCS). Shard daemons
	// colocated on one host set it so a single query cannot monopolize
	// every core their neighbours also scan with.
	SearchParallelism int
	// MaxTileDim caps requested tile width and height in pixels
	// (default 2048).
	MaxTileDim int
}

// Server is the forestviewd HTTP engine. It implements http.Handler and
// spellweb.Searcher.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *Cache
	flights  flightGroup
	pool     *Pool
	trees    *treeCache
	prefetch *prefetcher // nil unless cfg.PrefetchWorkers > 0
	start    time.Time

	nameMu  sync.RWMutex
	dsIndex map[string]int // dataset name -> pane index

	statSearch  endpointStats
	statEnrich  endpointStats
	statHeatmap endpointStats
	statHTML    endpointStats
	statStats   endpointStats
	statShard   endpointStats // /api/shard/* (shard role only)
	statFleet   endpointStats // /api/admin/fleet (coordinator role only)

	// shardSt is the shard role's reloadable state (engine, index maps,
	// membership view); see drain.go. Non-nil whenever ShardIndexes is.
	shardSt atomic.Pointer[shardState]
	// fleet is the shard-side membership view driving shardSt reloads
	// (nil without ShardFleet); shardMu serializes reloads and drains.
	fleet        *shard.Membership
	shardMu      sync.Mutex
	draining     atomic.Bool
	warm         *warmTracker
	shardReloads atomic.Int64

	// Handoff counters, both directions (see drain.go).
	handoffPushed     atomic.Int64 // entries pushed with a body
	handoffReplayed   atomic.Int64 // entries pushed for receiver recompute
	handoffPushErrors atomic.Int64 // failed pushes to a successor
	handoffAccepted   atomic.Int64 // received entries inserted verbatim
	handoffRecomputed atomic.Int64 // received entries warmed by recompute
	handoffRefused    atomic.Int64 // received entries refused as stale

	// enrichKernel tracks actual golem kernel executions (cache misses that
	// computed), reported as the enrich_cache stats section.
	enrichKernel enrichKernelStats
	// encodeFailures counts JSON responses whose encoding failed (writeJSON
	// turned them into 500s); any nonzero value is a bug worth paging on.
	encodeFailures atomic.Int64
}

// New wires a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil && cfg.Scatter == nil {
		return nil, fmt.Errorf("server: nil SPELL engine (and no shard coordinator)")
	}
	if cfg.ShardIndexes != nil {
		if cfg.Engine == nil {
			return nil, fmt.Errorf("server: shard role requires an engine")
		}
		if len(cfg.ShardIndexes) != cfg.Engine.NumDatasets() {
			return nil, fmt.Errorf("server: %d shard indexes for %d datasets",
				len(cfg.ShardIndexes), cfg.Engine.NumDatasets())
		}
		if len(cfg.ShardDatasetIDs) == 0 {
			return nil, fmt.Errorf("server: shard role requires the global dataset catalog (ShardDatasetIDs)")
		}
		for i, gi := range cfg.ShardIndexes {
			if gi < 0 || gi >= len(cfg.ShardDatasetIDs) {
				return nil, fmt.Errorf("server: shard index %d of dataset %d outside the %d-dataset catalog",
					gi, i, len(cfg.ShardDatasetIDs))
			}
		}
	}
	if cfg.RenderWorkers <= 0 {
		cfg.RenderWorkers = 4
	}
	if cfg.RenderQueue <= 0 {
		cfg.RenderQueue = 4 * cfg.RenderWorkers
	}
	if cfg.MaxGenes <= 0 {
		cfg.MaxGenes = 200
	}
	if cfg.MaxTileDim <= 0 {
		cfg.MaxTileDim = 2048
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   NewCache(cfg.CacheBytes),
		pool:    NewPool(cfg.RenderWorkers, cfg.RenderQueue),
		trees:   newTreeCache(treeClusterOptions(cfg.TreeMetric, cfg.TreeLinkage, cfg.TreeOptimizeOrder, cfg.ClusterArrays)),
		start:   time.Now(),
		dsIndex: make(map[string]int, len(cfg.Datasets)+len(cfg.RawDatasets)),
		warm:    newWarmTracker(),
	}
	if cfg.PrefetchWorkers > 0 {
		s.prefetch = newPrefetcher(s, cfg.PrefetchWorkers, cfg.PrefetchQueue)
	}
	for _, cd := range cfg.Datasets {
		// Nil entries stay addressable by index position (and resolve to
		// nothing), preserving the historical index space.
		if cd == nil || cd.Data == nil {
			s.trees.addEmpty()
			continue
		}
		i := s.trees.addPre(cd)
		s.dsIndex[cd.Data.Name] = i
	}
	for ri, ds := range cfg.RawDatasets {
		if ds == nil {
			s.trees.addEmpty()
			continue
		}
		if ds.NumGenes() == 0 {
			// Fail at boot like the pre-tree-cache eager clustering did,
			// not with a fresh 500 on every tile of the pane.
			return nil, fmt.Errorf("server: raw dataset %d (%q) has no genes", ri, ds.Name)
		}
		i := s.trees.addRaw(ds)
		if _, taken := s.dsIndex[ds.Name]; !taken {
			s.dsIndex[ds.Name] = i
		}
	}

	s.mux.HandleFunc("/api/search", s.instrument(&s.statSearch, s.handleSearch))
	s.mux.HandleFunc("/api/enrich", s.instrument(&s.statEnrich, s.handleEnrich))
	s.mux.HandleFunc("/api/heatmap", s.instrument(&s.statHeatmap, s.handleHeatmap))
	s.mux.HandleFunc("/api/stats", s.instrument(&s.statStats, s.handleStats))
	if cfg.ShardIndexes != nil {
		local := make(map[int]int, len(cfg.ShardIndexes))
		for li, gi := range cfg.ShardIndexes {
			local[gi] = li
		}
		st := &shardState{
			engine:  cfg.Engine,
			indexes: append([]int(nil), cfg.ShardIndexes...),
			local:   local,
			raw:     cfg.ShardRawDatasets,
			repl:    cfg.ShardReplication,
		}
		if st.repl <= 0 {
			st.repl = 1
		}
		if len(cfg.ShardRawDatasets) != 0 && len(cfg.ShardRawDatasets) != len(cfg.ShardIndexes) {
			return nil, fmt.Errorf("server: %d raw shard datasets for %d shard indexes",
				len(cfg.ShardRawDatasets), len(cfg.ShardIndexes))
		}
		if len(cfg.ShardFleet) > 0 {
			fleet, err := shard.NewMembership(cfg.ShardFleet)
			if err != nil {
				return nil, fmt.Errorf("server: shard fleet view: %w", err)
			}
			s.fleet = fleet
			st.shards, st.gen = fleet.Snapshot()
		}
		s.shardSt.Store(st)
		s.mux.HandleFunc(shard.SearchPath, s.instrument(&s.statShard, s.handleShardSearch))
		s.mux.HandleFunc(shard.InfoPath, s.instrument(&s.statShard, s.handleShardInfo))
		if cfg.ShardSelf != "" {
			s.cfg.ShardSelf = strings.TrimRight(strings.TrimSpace(cfg.ShardSelf), "/")
			s.mux.HandleFunc(shard.DrainPath, s.instrument(&s.statShard, s.handleShardDrain))
			s.mux.HandleFunc(shard.HandoffPath, s.instrument(&s.statShard, s.handleShardHandoff))
			s.mux.HandleFunc(shard.ShardFleetPath, s.instrument(&s.statShard, s.handleShardFleet))
		}
		if cfg.Enricher != nil {
			// Enrichment is a shard capability, not a fleet invariant: only
			// ontology-bearing shards mount the enrich paths, the rest 404
			// there and list no "enrich" capability in /api/shard/v1/info —
			// that 404 is the capability negotiation.
			s.mux.HandleFunc(shard.EnrichPath, s.instrument(&s.statShard, s.handleShardEnrich))
			s.mux.HandleFunc(shard.EnrichCatalogPath, s.instrument(&s.statShard, s.handleShardEnrichCatalog))
		}
	}
	if cfg.Scatter != nil {
		s.mux.HandleFunc("/api/admin/fleet", s.instrument(&s.statFleet, s.handleFleet))
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	// The SPELL HTML page shares this server's engine and cache: its
	// Searcher runs through the same cachedDo keys as /api/search, with
	// its cache/compute activity accounted to the html endpoint.
	web := spellweb.NewServerFor(&cachedSearcher{s: s, ep: &s.statHTML})
	web.MaxGenes = 50
	html := http.NewServeMux()
	web.RegisterHTML(html)
	s.mux.HandleFunc("/", s.instrument(&s.statHTML, html.ServeHTTP))
	s.mux.HandleFunc("/search", s.instrument(&s.statHTML, html.ServeHTTP))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the prefetch workers (which submit to the render pool) and
// then releases the pool.
func (s *Server) Close() {
	if s.prefetch != nil {
		s.prefetch.Close()
	}
	s.pool.Close()
}

// NumDatasets implements spellweb.Searcher. A coordinator reports the sum
// of its shards' slices (0 while no shard has answered an info probe yet).
func (s *Server) NumDatasets() int {
	if st := s.shardSt.Load(); st != nil {
		return st.engine.NumDatasets() // reload-aware
	}
	if s.cfg.Engine != nil {
		return s.cfg.Engine.NumDatasets()
	}
	d, _ := s.scatterInfo()
	return d
}

// NumGenes implements spellweb.Searcher. A coordinator reports the union
// of its shards' gene sets.
func (s *Server) NumGenes() int {
	if st := s.shardSt.Load(); st != nil {
		return st.engine.NumGenes()
	}
	if s.cfg.Engine != nil {
		return s.cfg.Engine.NumGenes()
	}
	_, g := s.scatterInfo()
	return g
}

// scatterInfo asks the coordinator for the union compendium description;
// the coordinator caches a complete answer, so only the first call (and
// calls while a shard is unreachable) pay a probe.
func (s *Server) scatterInfo() (datasets, genes int) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	info, err := s.cfg.Scatter.Info(ctx)
	if err != nil {
		return 0, 0
	}
	return info.Datasets, info.Genes
}

// Search implements spellweb.Searcher for the JSON API through the shared
// cache and the coalescing layer (scattering to shard backends when the
// daemon coordinates).
func (s *Server) Search(ids []string, opt spell.Options) (*spell.Result, error) {
	res, _, _, err := s.searchWith(context.Background(), &s.statSearch, ids, opt)
	return res, err
}

// searchWith is the single search path; ep receives the cache/compute
// accounting, so HTML-page and API traffic stay separable in /api/stats
// while sharing one set of cache keys. The returned meta is non-nil only
// on the scatter path; disp is the cache disposition (hit/miss/coalesced)
// the handlers surface as the X-Forestview-Cache header.
func (s *Server) searchWith(ctx context.Context, ep *endpointStats, ids []string, opt spell.Options) (*spell.Result, *shard.Meta, string, error) {
	ids = spell.CanonicalQuery(ids)
	if opt.MaxGenes <= 0 || opt.MaxGenes > s.cfg.MaxGenes {
		opt.MaxGenes = s.cfg.MaxGenes
	}
	if s.cfg.Scatter != nil {
		return s.scatterSearch(ctx, ep, ids, opt)
	}
	if opt.Parallelism <= 0 {
		// Doesn't shape results, so it stays out of the cache key.
		opt.Parallelism = s.cfg.SearchParallelism
	}
	// Parallelism doesn't affect results so it stays out of the key; every
	// result-shaping option must be in it.
	key := fmt.Sprintf("search\x1f%d\x1f%t\x1f%t\x1f%s",
		opt.MaxGenes, opt.IncludeQuery, opt.UniformWeights, joinIDs(ids))
	v, disp, err := s.cachedDo(ep, key, searchCost, func() (any, error) {
		return s.cfg.Engine.Search(ids, opt)
	})
	if err != nil {
		return nil, nil, disp, err
	}
	return v.(*spell.Result), nil, disp, nil
}

// cachedSearcher adapts the shared search path for the HTML page: same
// cache keys, html-endpoint accounting.
type cachedSearcher struct {
	s  *Server
	ep *endpointStats
}

func (c *cachedSearcher) Search(ids []string, opt spell.Options) (*spell.Result, error) {
	res, _, _, err := c.s.searchWith(context.Background(), c.ep, ids, opt)
	return res, err
}

// SearchCtx implements spellweb.ContextSearcher: the page request's
// context rides into the search (a closed tab cancels a whole scatter on
// a coordinator), and a degraded merge comes back with the disclosure the
// page must print — the HTML surface keeps the same honesty contract as
// the API's degraded headers.
func (c *cachedSearcher) SearchCtx(ctx context.Context, ids []string, opt spell.Options) (*spell.Result, string, error) {
	res, meta, _, err := c.s.searchWith(ctx, c.ep, ids, opt)
	if err != nil {
		return nil, "", err
	}
	if meta != nil && meta.Degraded {
		return res, fmt.Sprintf("degraded result: only %d of %d shards answered; rankings are renormalized over the reachable slice of the compendium",
			meta.ShardsOK, meta.ShardsTotal), nil
	}
	return res, "", nil
}

func (c *cachedSearcher) NumDatasets() int { return c.s.NumDatasets() }
func (c *cachedSearcher) NumGenes() int    { return c.s.NumGenes() }

// Enrich runs a GOLEM analysis through the shared cache and coalescing
// layer.
func (s *Server) Enrich(genes []string, opt golem.Options) ([]golem.Enrichment, error) {
	return s.EnrichCtx(context.Background(), genes, opt)
}

// EnrichCtx is the /api/enrich compute path: canonicalized cache key into
// the sharded LRU, singleflight coalescing, and the request context threaded
// into the bitset kernel (golem.AnalyzeCtx) so a disconnected client stops
// paying mid-scan. Like the tile path, a follower whose joined flight died
// of the *leader's* hangup retries with its own live context instead of
// failing an innocent request. Kernel executions and their latency are
// accounted under enrich_cache in /api/stats.
func (s *Server) EnrichCtx(ctx context.Context, genes []string, opt golem.Options) ([]golem.Enrichment, error) {
	res, _, err := s.enrichCtx(ctx, genes, opt)
	return res, err
}

// enrichCtx is EnrichCtx plus the cache disposition, for the handler's
// X-Forestview-Cache header.
func (s *Server) enrichCtx(ctx context.Context, genes []string, opt golem.Options) ([]golem.Enrichment, string, error) {
	if s.cfg.Enricher == nil {
		return nil, "", errNoEnricher
	}
	genes = spell.CanonicalQuery(genes)
	key := fmt.Sprintf("enrich\x1f%d\x1f%g\x1f%s", opt.MinSelected, opt.MaxPValue, joinIDs(genes))
	v, disp, err := s.cachedDoRetry(ctx, &s.statEnrich, key, enrichCost, func() (any, error) {
		t0 := time.Now()
		res, aerr := s.cfg.Enricher.AnalyzeCtx(ctx, genes, opt)
		s.enrichKernel.observe(time.Since(t0), aerr)
		return res, aerr
	}, nil, func() { s.enrichKernel.retries.Add(1) })
	if err != nil {
		return nil, disp, err
	}
	return v.([]golem.Enrichment), disp, nil
}

// joinIDs joins gene IDs for a cache key with each ID quoted, so an ID
// containing the field separator cannot collide with a multi-gene list.
func joinIDs(ids []string) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(strconv.Quote(id))
	}
	return b.String()
}

// Cache dispositions, surfaced to clients as the X-Forestview-Cache
// response header so load envelopes (and curl users) can attribute a
// request's latency to the layer that served it.
const (
	dispHit        = "hit"        // served from the shared LRU
	dispMiss       = "miss"       // this request executed the computation
	dispCoalesced  = "coalesced"  // joined another request's in-flight compute
	dispPrefetched = "prefetched" // served from the LRU, put there by speculation
)

// cacheHeader is the response header carrying the cache disposition.
const cacheHeader = "X-Forestview-Cache"

// cachedDo is the daemon's concurrency discipline in one place: cache
// lookup, then coalesced computation, then cache fill. Errors are never
// cached (a transiently bad query must not poison the cache), but
// concurrent identical failures still compute only once. The returned
// disposition says which layer answered.
func (s *Server) cachedDo(ep *endpointStats, key string, cost func(any) int64, compute func() (any, error)) (any, string, error) {
	return s.cachedDoIf(ep, key, cost, compute, nil)
}

// cachedDoIf is cachedDo with a cacheability predicate: a computed value
// for which it returns false is delivered to its waiters but never enters
// the cache (the scatter path keeps degraded merges out this way). A nil
// predicate caches every successful value.
func (s *Server) cachedDoIf(ep *endpointStats, key string, cost func(any) int64, compute func() (any, error), cacheable func(any) bool) (any, string, error) {
	if v, ok := s.cache.Get(key); ok {
		ep.cacheHits.Add(1)
		return v, dispHit, nil
	}
	ep.cacheMisses.Add(1)
	// computed is written only when this caller leads the flight (a joiner's
	// closure never runs), so reading it after Do is race-free.
	computed := false
	v, err, joined := s.flights.Do(key, func() (any, error) {
		// Re-check under the flight: a caller that missed the cache just as
		// the previous flight completed must find that flight's result here
		// rather than compute again.
		if v, ok := s.cache.Get(key); ok {
			return v, nil
		}
		ep.computed.Add(1)
		computed = true
		v, err := compute()
		if err == nil && (cacheable == nil || cacheable(v)) {
			s.cache.Put(key, v, cost(v))
		}
		return v, err
	})
	if joined {
		ep.coalesced.Add(1)
		return v, dispCoalesced, err
	}
	if !computed {
		// We led a flight but its cache re-check hit: the previous flight
		// filled the key between our miss and our entry. For the client
		// that's a hit — no computation ran on its behalf.
		return v, dispHit, err
	}
	return v, dispMiss, err
}

// cachedDoRetry wraps cachedDoIf in the daemon's leader-handover retry
// discipline, shared by every compute path (tiles, enrichment, partials,
// scatters): a coalesced follower whose joined flight died of a context
// error that is not its own — the *leader's* client disconnected — retries
// with its own live context instead of failing an innocent request.
// onRetry (optional) is called before each re-attempt, for accounting.
// The disposition of the final attempt is returned.
func (s *Server) cachedDoRetry(ctx context.Context, ep *endpointStats, key string, cost func(any) int64, compute func() (any, error), cacheable func(any) bool, onRetry func()) (any, string, error) {
	const maxAttempts = 3
	var (
		v    any
		disp string
		err  error
	)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 && onRetry != nil {
			onRetry()
		}
		v, disp, err = s.cachedDoIf(ep, key, cost, compute, cacheable)
		if err == nil || ctx.Err() != nil {
			break
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			break
		}
	}
	return v, disp, err
}

// searchCost approximates the resident size of a cached *spell.Result.
func searchCost(v any) int64 {
	r := v.(*spell.Result)
	n := int64(256)
	for _, q := range r.Query {
		n += int64(len(q)) + 16
	}
	for _, d := range r.Datasets {
		n += int64(len(d.Name)) + 48
	}
	for _, g := range r.Genes {
		n += int64(len(g.ID)+len(g.Name)) + 40
	}
	return n
}

// enrichCost approximates the resident size of a cached enrichment table.
func enrichCost(v any) int64 {
	rs := v.([]golem.Enrichment)
	n := int64(128)
	for _, r := range rs {
		n += int64(len(r.TermID)+len(r.TermName)) + 96
	}
	return n
}

// instrument wraps a handler with the per-endpoint latency and error
// accounting behind /api/stats.
func (s *Server) instrument(ep *endpointStats, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		ep.observe(time.Since(t0), sw.status >= 400)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Role reports how this daemon participates in the fleet: "coordinator"
// (scatters searches, holds no data), "shard" (serves partials for its
// slice) or "single" (the whole compendium in-process).
func (s *Server) Role() string {
	switch {
	case s.cfg.Scatter != nil:
		return "coordinator"
	case s.cfg.ShardIndexes != nil:
		return "shard"
	default:
		return "single"
	}
}

// Stats assembles the /api/stats snapshot.
func (s *Server) Stats() StatsSnapshot {
	prefixes := s.cache.Prefixes()
	nDatasets, nGenes := 0, 0
	if st := s.shardSt.Load(); st != nil {
		nDatasets, nGenes = st.engine.NumDatasets(), st.engine.NumGenes()
	} else if s.cfg.Engine != nil {
		nDatasets, nGenes = s.cfg.Engine.NumDatasets(), s.cfg.Engine.NumGenes()
	} else {
		nDatasets, nGenes = s.scatterInfo() // one probe (cached after success)
	}
	snap := StatsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Server: ServerInfo{
			UptimeSeconds: time.Since(s.start).Seconds(),
			Role:          s.Role(),
			GoVersion:     runtime.Version(),
		},
		Compendium: CompendiumInfo{
			Datasets:  nDatasets,
			Genes:     nGenes,
			Clustered: s.NumPanes(),
		},
		TreeCache: s.trees.snapshot(),
		Cache: CacheInfo{
			Entries:  s.cache.Len(),
			Bytes:    s.cache.Bytes(),
			MaxBytes: s.cacheMaxBytes(),
			Prefixes: prefixes,
		},
		Endpoints: map[string]EndpointSnapshot{
			"search":  s.statSearch.snapshot(),
			"enrich":  s.statEnrich.snapshot(),
			"heatmap": s.statHeatmap.snapshot(),
			"html":    s.statHTML.snapshot(),
			"stats":   s.statStats.snapshot(),
		},
	}
	snap.TreeCache.TileEntries = prefixes["tile"].Entries
	snap.TreeCache.TileBytes = prefixes["tile"].Bytes
	if s.cfg.ShardIndexes != nil {
		snap.Endpoints["shard"] = s.statShard.snapshot()
		st := s.shardState()
		snap.Shard = &ShardRoleInfo{
			Self:        s.cfg.ShardSelf,
			Status:      s.shardStatus(),
			Shards:      st.shards,
			Generation:  fmt.Sprintf("%016x", st.gen),
			Replication: st.repl,
			Held:        len(st.indexes),
			Reloads:     s.shardReloads.Load(),
			Handoff: HandoffCounters{
				Pushed:       s.handoffPushed.Load(),
				Replayed:     s.handoffReplayed.Load(),
				PushErrors:   s.handoffPushErrors.Load(),
				Accepted:     s.handoffAccepted.Load(),
				Recomputed:   s.handoffRecomputed.Load(),
				RefusedStale: s.handoffRefused.Load(),
			},
		}
	}
	if s.prefetch != nil {
		pi := s.prefetch.snapshot()
		snap.Prefetch = &pi
	}
	if s.cfg.Scatter != nil {
		snap.Endpoints["fleet"] = s.statFleet.snapshot()
		sc := s.cfg.Scatter.Stats()
		snap.Scatter = &sc
	}
	if s.cfg.Enricher != nil {
		snap.Compendium.GOTerms = s.cfg.Enricher.NumTerms()
		ec := &EnrichCacheInfo{
			Terms:        s.cfg.Enricher.NumTerms(),
			Background:   s.cfg.Enricher.BackgroundSize(),
			Hits:         s.statEnrich.cacheHits.Load(),
			Misses:       s.statEnrich.cacheMisses.Load(),
			Coalesced:    s.statEnrich.coalesced.Load(),
			Analyses:     s.enrichKernel.analyses.Load(),
			Canceled:     s.enrichKernel.canceled.Load(),
			Failures:     s.enrichKernel.failures.Load(),
			Retries:      s.enrichKernel.retries.Load(),
			MaxAnalyzeUS: s.enrichKernel.maxUS.Load(),
			Entries:      prefixes["enrich"].Entries,
			Bytes:        prefixes["enrich"].Bytes,
		}
		if ec.Analyses > 0 {
			ec.MeanAnalyzeUS = s.enrichKernel.analyzeUS.Load() / ec.Analyses
		}
		snap.EnrichCache = ec
	}
	snap.EncodeFailures = s.encodeFailures.Load()
	return snap
}

func (s *Server) cacheMaxBytes() int64 {
	var b int64
	for i := range s.cache.shards {
		b += s.cache.shards[i].maxBytes
	}
	return b
}

// lookupDataset resolves a `dataset` query parameter to a pane index: a
// position index, or an exact dataset name when the reference does not
// parse as an index. Index takes precedence so every dataset stays
// addressable even when one is named like a number. Nil entries (tolerated
// in the config lists) are unresolvable.
func (s *Server) lookupDataset(ref string) (int, bool) {
	if i, err := strconv.Atoi(ref); err == nil && s.trees.resolvable(i) {
		return i, true
	}
	s.nameMu.RLock()
	i, ok := s.dsIndex[ref]
	s.nameMu.RUnlock()
	if ok && s.trees.resolvable(i) {
		return i, true
	}
	return 0, false
}

// NumPanes returns the number of heatmap panes (pre-clustered plus raw).
func (s *Server) NumPanes() int {
	s.trees.mu.Lock()
	defer s.trees.mu.Unlock()
	return len(s.trees.entries)
}

// WarmTrees clusters every pane up front (the pre-PR-3 startup behavior,
// now opt-in): daemons that would rather pay at boot than on the first
// tile call this after New.
func (s *Server) WarmTrees(ctx context.Context) error {
	return s.trees.warm(ctx)
}

// ReplaceDataset hot-swaps the dataset behind a pane, keyed by the same
// reference /api/heatmap accepts. The pane's tree-cache generation bumps —
// invalidating the cached tree and, because the generation is part of every
// tile cache key, all of the pane's cached PNG tiles — and the name index
// follows the new dataset. In-flight builds against the old data finish
// for their waiters but are never installed.
func (s *Server) ReplaceDataset(ref string, ds *microarray.Dataset) error {
	if ds == nil || ds.NumGenes() == 0 {
		return fmt.Errorf("server: replacement dataset is empty")
	}
	idx, ok := s.lookupDataset(ref)
	if !ok {
		return fmt.Errorf("server: unknown dataset %q", ref)
	}
	s.nameMu.Lock()
	for name, i := range s.dsIndex {
		if i == idx {
			delete(s.dsIndex, name)
		}
	}
	if _, taken := s.dsIndex[ds.Name]; !taken {
		s.dsIndex[ds.Name] = idx
	}
	s.nameMu.Unlock()
	s.trees.replace(idx, ds)
	return nil
}
