package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/golem"
	"forestview/internal/ontology"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// pngMagic is the 8-byte PNG file signature.
var pngMagic = []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}

var (
	fixOnce     sync.Once
	fixUniverse *synth.Universe
	fixEngine   *spell.Engine
	fixEnricher *golem.Enricher
	fixPanes    []*core.ClusteredDataset
)

// fixture builds one small demo compendium shared by every test; each test
// still gets its own Server (and therefore its own cache and counters).
func fixture(t *testing.T) (*Server, *synth.Universe) {
	t.Helper()
	fixOnce.Do(func() {
		u := synth.NewUniverse(250, 8, 42)
		dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
			NumDatasets: 4, MinExperiments: 10, MaxExperiments: 14,
			ActiveFraction: 0.5, Noise: 0.25, MissingRate: 0.02, Seed: 43,
		})
		engine, err := spell.NewEngine(dss)
		if err != nil {
			panic(err)
		}
		var names []string
		for _, m := range u.Modules {
			names = append(names, m.Name)
		}
		onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 44})
		if err != nil {
			panic(err)
		}
		enr, err := golem.NewEnricher(onto, ontology.AnnotateFromModules(u.Annotations(), leafOf), u.GeneIDs())
		if err != nil {
			panic(err)
		}
		var panes []*core.ClusteredDataset
		for _, ds := range dss {
			cd, err := core.Cluster(ds, core.ClusterOptions{
				Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage,
			})
			if err != nil {
				panic(err)
			}
			panes = append(panes, cd)
		}
		fixUniverse, fixEngine, fixEnricher, fixPanes = u, engine, enr, panes
	})
	srv, err := New(Config{
		Engine: fixEngine, Enricher: fixEnricher, Datasets: fixPanes,
		CacheBytes: 8 << 20, RenderWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, fixUniverse
}

// errorEnvelopeOf parses the uniform /api/* error body and returns its
// (code, message) pair, failing the test on any shape deviation.
func errorEnvelopeOf(t *testing.T, body []byte) (code, msg string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error body missing code or message: %q", body)
	}
	return env.Error.Code, env.Error.Message
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func statsOf(t *testing.T, s *Server, endpoint string) EndpointSnapshot {
	t.Helper()
	rec := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/stats = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ep, ok := snap.Endpoints[endpoint]
	if !ok {
		t.Fatalf("endpoint %q missing from stats", endpoint)
	}
	return ep
}

func TestHealthz(t *testing.T) {
	s, _ := fixture(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestSearchJSON(t *testing.T) {
	s, u := fixture(t)
	ids := u.ModuleGeneIDs(3)
	rec := get(t, s, "/api/search?q="+strings.Join(ids[:3], ",")+"&top=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var res spell.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("datasets = %d, want 4", len(res.Datasets))
	}
	if len(res.Genes) == 0 || len(res.Genes) > 10 {
		t.Fatalf("genes = %d, want 1..10", len(res.Genes))
	}
	for i := 1; i < len(res.Datasets); i++ {
		if res.Datasets[i].Weight > res.Datasets[i-1].Weight {
			t.Fatal("dataset ranking not sorted by weight")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	s, _ := fixture(t)
	if rec := get(t, s, "/api/search"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q = %d", rec.Code)
	}
	if rec := get(t, s, "/api/search?q=NOPE999"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown gene = %d", rec.Code)
	}
	if rec := get(t, s, "/api/search?q=A&top=zero"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad top = %d", rec.Code)
	}
}

func TestEnrichJSON(t *testing.T) {
	s, u := fixture(t)
	genes := u.ModuleGeneIDs(u.ESRInduced)
	rec := get(t, s, "/api/enrich?genes="+strings.Join(genes, ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var res enrichResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Background != fixEnricher.BackgroundSize() {
		t.Fatalf("background = %d", res.Background)
	}
	if len(res.Results) == 0 {
		t.Fatal("no enrichment results for a planted module")
	}
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].PValue < res.Results[i-1].PValue {
			t.Fatal("results not sorted by p-value")
		}
	}
	// The planted module's own term must be the top hit.
	if res.Results[0].Selected < 2 {
		t.Fatalf("top term selects %d genes", res.Results[0].Selected)
	}
}

func TestEnrichErrors(t *testing.T) {
	s, _ := fixture(t)
	if rec := get(t, s, "/api/enrich"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing genes = %d", rec.Code)
	}
	if rec := get(t, s, "/api/enrich?genes=A&maxp=7"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad maxp = %d", rec.Code)
	}
	if rec := get(t, s, "/api/enrich?genes=NOPE999"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown genes = %d", rec.Code)
	}

	bare, err := New(Config{Engine: fixEngine})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	if rec := get(t, bare, "/api/enrich?genes=A"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no enricher = %d", rec.Code)
	}
}

func TestHeatmapPNG(t *testing.T) {
	s, _ := fixture(t)
	rec := get(t, s, "/api/heatmap?dataset=0&w=128&h=96")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type = %q", ct)
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), pngMagic) {
		t.Fatalf("body does not start with PNG magic: % x", rec.Body.Bytes()[:8])
	}

	// Address the same dataset by name, with a row range and colormap.
	name := fixPanes[1].Data.Name
	rec = get(t, s, "/api/heatmap?dataset="+strings.ReplaceAll(name, " ", "%20")+"&rows=0:50&cmap=grayscale&limit=1.5")
	if rec.Code != http.StatusOK || !bytes.HasPrefix(rec.Body.Bytes(), pngMagic) {
		t.Fatalf("by-name tile: %d", rec.Code)
	}
}

func TestHeatmapErrors(t *testing.T) {
	s, _ := fixture(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/api/heatmap", http.StatusBadRequest},
		{"/api/heatmap?dataset=99", http.StatusNotFound},
		{"/api/heatmap?dataset=nope", http.StatusNotFound},
		{"/api/heatmap?dataset=0&w=0", http.StatusBadRequest},
		{"/api/heatmap?dataset=0&w=99999", http.StatusBadRequest},
		{"/api/heatmap?dataset=0xyz", http.StatusNotFound},
		{"/api/heatmap?dataset=0&rows=5:2", http.StatusBadRequest},
		{"/api/heatmap?dataset=0&rows=0:5junk", http.StatusBadRequest},
		{"/api/heatmap?dataset=0&rows=100000:100002", http.StatusBadRequest},
		{"/api/heatmap?dataset=0&cmap=sepia", http.StatusBadRequest},
		{"/api/heatmap?dataset=0&limit=-1", http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := get(t, s, c.url); rec.Code != c.want {
			t.Errorf("%s = %d, want %d", c.url, rec.Code, c.want)
		}
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	s, u := fixture(t)
	ids := u.ModuleGeneIDs(2)[:3]
	q := strings.Join(ids, ",")

	if rec := get(t, s, "/api/search?q="+q); rec.Code != http.StatusOK {
		t.Fatalf("first search = %d", rec.Code)
	}
	ep := statsOf(t, s, "search")
	if ep.CacheMisses != 1 || ep.CacheHits != 0 || ep.Computed != 1 {
		t.Fatalf("after miss: %+v", ep)
	}

	// Same gene set, different order and a duplicate: canonicalization
	// must make it the same cache key.
	shuffled := strings.Join([]string{ids[2], ids[0], ids[1], ids[0]}, ",")
	if rec := get(t, s, "/api/search?q="+shuffled); rec.Code != http.StatusOK {
		t.Fatalf("second search = %d", rec.Code)
	}
	ep = statsOf(t, s, "search")
	if ep.CacheHits != 1 || ep.Computed != 1 {
		t.Fatalf("after hit: %+v", ep)
	}

	// Tiles cache too.
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/api/heatmap?dataset=0&w=64&h=64"); rec.Code != http.StatusOK {
			t.Fatalf("tile %d = %d", i, rec.Code)
		}
	}
	hep := statsOf(t, s, "heatmap")
	if hep.CacheHits != 1 || hep.CacheMisses != 1 || hep.Computed != 1 {
		t.Fatalf("tile cache: %+v", hep)
	}
}

// TestHTMLSharesSearchCache proves the spellweb HTML page and the JSON API
// run through one cache: an HTML search warms the entry the API then hits.
func TestHTMLSharesSearchCache(t *testing.T) {
	s, u := fixture(t)
	ids := u.ModuleGeneIDs(4)[:3]
	q := strings.Join(ids, ",")

	rec := get(t, s, "/search?q="+q)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Datasets by relevance") {
		t.Fatalf("HTML search = %d", rec.Code)
	}
	html := statsOf(t, s, "html")
	if html.Requests != 1 || html.Computed != 1 {
		t.Fatalf("HTML search accounting: %+v", html)
	}

	// The HTML page searches with MaxGenes=50; the API asking for the same
	// must hit the HTML-warmed entry without computing anything.
	if rec := get(t, s, "/api/search?q="+q+"&top=50"); rec.Code != http.StatusOK {
		t.Fatalf("API search = %d", rec.Code)
	}
	ep := statsOf(t, s, "search")
	if ep.CacheHits != 1 || ep.Computed != 0 {
		t.Fatalf("API did not hit the HTML-warmed cache: %+v", ep)
	}
}

// TestConcurrentIdenticalQueriesComputeOnce is the coalescing proof: many
// goroutines hammer one query on a cold cache; the underlying SPELL search
// must execute exactly once. Run with -race.
func TestConcurrentIdenticalQueriesComputeOnce(t *testing.T) {
	s, u := fixture(t)
	ids := u.ModuleGeneIDs(5)
	if len(ids) > 4 {
		ids = ids[:4]
	}
	q := strings.Join(ids, ",")

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := get(t, s, "/api/search?q="+q); rec.Code != http.StatusOK {
				t.Errorf("status = %d", rec.Code)
			}
		}()
	}
	wg.Wait()

	ep := statsOf(t, s, "search")
	if ep.Computed != 1 {
		t.Fatalf("computed = %d, want exactly 1 (coalescing failed)", ep.Computed)
	}
	if ep.Requests != n {
		t.Fatalf("requests = %d, want %d", ep.Requests, n)
	}
	if ep.CacheHits+ep.CacheMisses != n {
		t.Fatalf("hits(%d)+misses(%d) != %d", ep.CacheHits, ep.CacheMisses, n)
	}
	// Every miss either computed, joined a flight, or found the result on
	// the in-flight re-check; the accounting must close.
	if ep.Coalesced+ep.Computed > ep.CacheMisses {
		t.Fatalf("accounting: coalesced=%d computed=%d misses=%d", ep.Coalesced, ep.Computed, ep.CacheMisses)
	}

	// Concurrent identical tiles coalesce the render too.
	var wg2 sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if rec := get(t, s, "/api/heatmap?dataset=1&w=80&h=60"); rec.Code != http.StatusOK {
				t.Errorf("tile status = %d", rec.Code)
			}
		}()
	}
	wg2.Wait()
	if hep := statsOf(t, s, "heatmap"); hep.Computed != 1 {
		t.Fatalf("tile computed = %d, want 1", hep.Computed)
	}
}

func TestStatsShape(t *testing.T) {
	s, _ := fixture(t)
	rec := get(t, s, "/api/stats")
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Compendium.Datasets != 4 || snap.Compendium.Genes == 0 {
		t.Fatalf("compendium info: %+v", snap.Compendium)
	}
	if snap.Compendium.GOTerms == 0 {
		t.Fatal("GO term count missing")
	}
	if snap.Cache.MaxBytes != 8<<20 {
		t.Fatalf("cache max bytes = %d", snap.Cache.MaxBytes)
	}
	for _, ep := range []string{"search", "enrich", "heatmap", "html", "stats"} {
		if _, ok := snap.Endpoints[ep]; !ok {
			t.Fatalf("endpoint %q missing", ep)
		}
	}
}

func TestServerRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil engine")
	}
}

// TestSearchSingleGeneRejected is the regression test for the pre-existing
// empty-200 bug: a one-gene query has no query pairs, every dataset's
// coherence is NaN, and the NaN used to kill the JSON encoder silently.
// The daemon now rejects it with 422 and a clear error body — including
// queries that collapse to one gene after canonicalization.
func TestSearchSingleGeneRejected(t *testing.T) {
	s, u := fixture(t)
	g := u.ModuleGeneIDs(1)[0]
	for _, q := range []string{g, g + "," + g, g + ",%20" + g} {
		rec := get(t, s, "/api/search?q="+q)
		if rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("q=%s: status = %d, want 422 (body %q)", q, rec.Code, rec.Body.String())
		}
		code, msg := errorEnvelopeOf(t, rec.Body.Bytes())
		if code != codeSingleGeneQuery {
			t.Fatalf("q=%s: error code %q, want %q", q, code, codeSingleGeneQuery)
		}
		if !strings.Contains(msg, "single-gene") {
			t.Fatalf("q=%s: unhelpful error %q", q, msg)
		}
	}
	// Two distinct genes still search fine.
	ids := u.ModuleGeneIDs(1)[:2]
	if rec := get(t, s, "/api/search?q="+strings.Join(ids, ",")); rec.Code != http.StatusOK {
		t.Fatalf("two-gene query = %d: %s", rec.Code, rec.Body.String())
	}
	if n := s.encodeFailures.Load(); n != 0 {
		t.Fatalf("encode failures = %d, want 0 — NaN reached the encoder", n)
	}
}

// TestSearchTypoQueryStillEncodes: two distinct IDs where one is a typo
// resolve to a single compendium gene — every dataset's coherence is NaN
// (the uniform-weight fallback ranks by the one real gene). The response
// must be valid JSON with null coherence, not the encoder-killed empty 200
// (or, post-writeJSON-hardening, a 500).
func TestSearchTypoQueryStillEncodes(t *testing.T) {
	s, u := fixture(t)
	g := u.ModuleGeneIDs(2)[0]
	rec := get(t, s, "/api/search?q="+g+",NOT-A-REAL-GENE&top=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"QueryCoherence":null`) {
		t.Fatalf("undefined coherence not encoded as null: %s", rec.Body.String())
	}
	var res spell.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("body is not valid JSON: %v", err)
	}
	if len(res.Genes) == 0 {
		t.Fatal("no ranked genes from the uniform-weight fallback")
	}
	if n := s.encodeFailures.Load(); n != 0 {
		t.Fatalf("encode failures = %d, want 0", n)
	}
}

// TestWriteJSONSurfacesEncodeErrors: an unencodable body must become a
// logged, counted 500 with an error payload — never again a silent empty
// 200.
func TestWriteJSONSurfacesEncodeErrors(t *testing.T) {
	s, _ := fixture(t)
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]float64{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	code, msg := errorEnvelopeOf(t, rec.Body.Bytes())
	if code != codeEncodeFailed {
		t.Fatalf("error code %q, want %q", code, codeEncodeFailed)
	}
	if !strings.Contains(msg, "encoding failed") {
		t.Fatalf("error body = %q", msg)
	}
	if n := s.Stats().EncodeFailures; n != 1 {
		t.Fatalf("encode_failures = %d, want 1", n)
	}
}

// TestEnrichCacheStats: /api/stats grows an enrich_cache section whose
// analysis counter proves one kernel scan per distinct gene list — a
// reordered duplicate request is a pure cache hit.
func TestEnrichCacheStats(t *testing.T) {
	s, u := fixture(t)
	genes := u.ModuleGeneIDs(u.ESRInduced)
	if rec := get(t, s, "/api/enrich?genes="+strings.Join(genes, ",")); rec.Code != http.StatusOK {
		t.Fatalf("first enrich = %d", rec.Code)
	}
	// Same gene set, reversed order: canonicalization must hit the cache.
	rev := make([]string, len(genes))
	for i, g := range genes {
		rev[len(genes)-1-i] = g
	}
	if rec := get(t, s, "/api/enrich?genes="+strings.Join(rev, ",")); rec.Code != http.StatusOK {
		t.Fatalf("second enrich = %d", rec.Code)
	}

	rec := get(t, s, "/api/stats")
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ec := snap.EnrichCache
	if ec == nil {
		t.Fatal("enrich_cache section missing")
	}
	if ec.Analyses != 1 || ec.Misses != 1 || ec.Hits != 1 {
		t.Fatalf("enrich cache accounting: %+v", ec)
	}
	if ec.Terms != fixEnricher.NumTerms() || ec.Background != fixEnricher.BackgroundSize() {
		t.Fatalf("enrich context info: %+v", ec)
	}
	if ec.Canceled != 0 || ec.Failures != 0 {
		t.Fatalf("unexpected kernel errors: %+v", ec)
	}

	// A daemon without an ontology has no section at all.
	bare, err := New(Config{Engine: fixEngine})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	if bare.Stats().EnrichCache != nil {
		t.Fatal("enrich_cache section present without an enricher")
	}
}

// TestEnrichClientCancel: a request whose client already hung up must not
// pay for the scan — the kernel stops on the dead context and the abort is
// accounted as a 499 and a canceled analysis.
func TestEnrichClientCancel(t *testing.T) {
	s, u := fixture(t)
	genes := u.ModuleGeneIDs(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/api/enrich?genes="+strings.Join(genes, ","), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := s.enrichKernel.canceled.Load(); got != 1 {
		t.Fatalf("canceled analyses = %d, want 1", got)
	}
	// The poisoned flight must not have cached anything: a live client
	// computes fresh and succeeds.
	if rec := get(t, s, "/api/enrich?genes="+strings.Join(genes, ",")); rec.Code != http.StatusOK {
		t.Fatalf("live retry = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestConcurrentIdenticalEnrichComputesOnce extends the coalescing proof to
// the enrichment path: many goroutines, one gene list, exactly one kernel
// scan.
func TestConcurrentIdenticalEnrichComputesOnce(t *testing.T) {
	s, u := fixture(t)
	q := strings.Join(u.ModuleGeneIDs(6), ",")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := get(t, s, "/api/enrich?genes="+q); rec.Code != http.StatusOK {
				t.Errorf("status = %d", rec.Code)
			}
		}()
	}
	wg.Wait()
	if got := s.enrichKernel.analyses.Load(); got != 1 {
		t.Fatalf("kernel scans = %d, want exactly 1 (coalescing failed)", got)
	}
	if ep := statsOf(t, s, "enrich"); ep.Requests != n {
		t.Fatalf("requests = %d, want %d", ep.Requests, n)
	}
}

// TestStatsPrefixOccupancy: after one search, one enrichment and one tile,
// the cache's per-prefix occupancy surfaces in /api/stats — the overall
// prefixes map, the enrich_cache residency fields, and the tree_cache's
// tile fields.
func TestStatsPrefixOccupancy(t *testing.T) {
	s, u := fixture(t)
	q := strings.Join(u.ModuleGeneIDs(2)[:4], ",")
	if rec := get(t, s, "/api/search?q="+q); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	if rec := get(t, s, "/api/enrich?genes="+q); rec.Code != http.StatusOK {
		t.Fatalf("enrich = %d", rec.Code)
	}
	if rec := get(t, s, "/api/heatmap?dataset=0&w=32&h=32"); rec.Code != http.StatusOK {
		t.Fatalf("heatmap = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"search", "enrich", "tile"} {
		if occ := snap.Cache.Prefixes[prefix]; occ.Entries != 1 || occ.Bytes <= 0 {
			t.Fatalf("prefix %q occupancy: %+v (map %+v)", prefix, occ, snap.Cache.Prefixes)
		}
	}
	if snap.EnrichCache.Entries != 1 || snap.EnrichCache.Bytes <= 0 {
		t.Fatalf("enrich_cache residency: %+v", snap.EnrichCache)
	}
	if snap.TreeCache.TileEntries != 1 || snap.TreeCache.TileBytes <= 0 {
		t.Fatalf("tree_cache tile residency: %+v", snap.TreeCache)
	}
}
