package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"forestview/internal/golem"
	"forestview/internal/spell"
)

// These tests pin the X-Forestview-Cache response header: every /api/search,
// /api/enrich and /api/heatmap answer discloses whether it was served from
// the LRU (hit), computed for this request (miss) or joined another
// request's in-flight computation (coalesced), so load envelopes and curl
// users can attribute latency to the layer that produced it.

// holdFlight occupies the singleflight slot for key with a controlled
// computation, so an HTTP request for the same key deterministically joins
// it (disposition "coalesced"). waitJoin blocks until the endpoint's miss
// counter shows the request has entered the cache path, then releases the
// flight after a grace period for it to pile on.
func holdFlight(t *testing.T, s *Server, key string, val any) (release func()) {
	t.Helper()
	ready := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = s.flights.Do(key, func() (any, error) {
			close(ready)
			<-gate
			return val, nil
		})
	}()
	<-ready // the flight is open; joiners will coalesce onto it
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
		<-done
	})
	return func() { close(gate); <-done }
}

// waitMiss polls until the endpoint has recorded more cache misses than
// before, i.e. the in-flight HTTP request has passed the cache lookup and
// is at (or inside) the flight group.
func waitMiss(t *testing.T, ctr *atomic.Int64, before int64) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if ctr.Load() > before {
			// A short grace period: between the miss count and Do there are
			// only a few instructions, but they are not atomic with it.
			time.Sleep(20 * time.Millisecond)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("request never reached the cache path")
}

func TestSearchCacheDispositionHeader(t *testing.T) {
	s, u := fixture(t)
	ids := u.ModuleGeneIDs(3)[:3]
	url := "/api/search?q=" + strings.Join(ids, ",") + "&top=10"

	rec := get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("cold search = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}
	rec = get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("warm search = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}

	// Coalesced: occupy the flight for a different query's exact cache key,
	// then let the HTTP request join it.
	ids2 := u.ModuleGeneIDs(4)[:3]
	canonical := spell.CanonicalQuery(ids2)
	key := fmt.Sprintf("search\x1f%d\x1f%t\x1f%t\x1f%s", 10, true, false, joinIDs(canonical))
	res, err := s.cfg.Engine.Search(canonical, spell.Options{MaxGenes: 10, IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	release := holdFlight(t, s, key, res)
	before := s.statSearch.cacheMisses.Load()
	recCh := make(chan *http.Response, 1)
	go func() {
		rec := get(t, s, "/api/search?q="+strings.Join(ids2, ",")+"&top=10")
		recCh <- rec.Result()
	}()
	waitMiss(t, &s.statSearch.cacheMisses, before)
	release()
	resp := <-recCh
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "coalesced" {
		t.Fatalf("coalesced search = %d, %s: %q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
}

func TestEnrichCacheDispositionHeader(t *testing.T) {
	s, u := fixture(t)
	genes := u.ModuleGeneIDs(u.ESRInduced)
	url := "/api/enrich?genes=" + strings.Join(genes, ",")

	rec := get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("cold enrich = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}
	rec = get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("warm enrich = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}

	genes2 := u.ModuleGeneIDs(2)
	canonical := spell.CanonicalQuery(genes2)
	key := fmt.Sprintf("enrich\x1f%d\x1f%g\x1f%s", 1, 0.0, joinIDs(canonical))
	val, err := s.cfg.Enricher.Analyze(canonical, golem.Options{MinSelected: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := holdFlight(t, s, key, val)
	before := s.statEnrich.cacheMisses.Load()
	recCh := make(chan *http.Response, 1)
	go func() {
		rec := get(t, s, "/api/enrich?genes="+strings.Join(genes2, ","))
		recCh <- rec.Result()
	}()
	waitMiss(t, &s.statEnrich.cacheMisses, before)
	release()
	resp := <-recCh
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "coalesced" {
		t.Fatalf("coalesced enrich = %d, %s: %q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
}

func TestHeatmapCacheDispositionHeader(t *testing.T) {
	s, _ := fixture(t)
	url := "/api/heatmap?dataset=0&w=64&h=64&rows=0:32"

	rec := get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("cold tile = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}
	rec = get(t, s, url)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("warm tile = %d, %s: %q", rec.Code, cacheHeader, rec.Header().Get(cacheHeader))
	}

	// Coalesced: hold the flight for a distinct tile's exact cache key. The
	// held value is any PNG-shaped byte slice — the handler only relays it.
	_, gen, err := s.trees.get(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := tileParams{dsIndex: 0, gen: gen, from: 32, to: 64, w: 64, h: 64, cmap: 0, limit: 2}
	release := holdFlight(t, s, p.key(), append([]byte(nil), pngMagic...))
	before := s.statHeatmap.cacheMisses.Load()
	recCh := make(chan *http.Response, 1)
	go func() {
		rec := get(t, s, "/api/heatmap?dataset=0&w=64&h=64&rows=32:64")
		recCh <- rec.Result()
	}()
	waitMiss(t, &s.statHeatmap.cacheMisses, before)
	release()
	resp := <-recCh
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "coalesced" {
		t.Fatalf("coalesced tile = %d, %s: %q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
}

// TestStatsServerSection pins the server section of /api/stats: uptime,
// role and Go version, so analyze output can be correlated with the
// topology that produced it.
func TestStatsServerSection(t *testing.T) {
	s, _ := fixture(t)
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, s, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Server.Role != "single" {
		t.Fatalf("role = %q, want single", snap.Server.Role)
	}
	if snap.Server.GoVersion != runtime.Version() {
		t.Fatalf("go_version = %q, want %q", snap.Server.GoVersion, runtime.Version())
	}
	if snap.Server.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", snap.Server.UptimeSeconds)
	}

	// The JSON shape itself: a "server" object with exactly these keys.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(get(t, s, "/api/stats").Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	var sec map[string]json.RawMessage
	if err := json.Unmarshal(raw["server"], &sec); err != nil {
		t.Fatalf("server section: %v", err)
	}
	for _, k := range []string{"uptime_seconds", "role", "go_version"} {
		if _, ok := sec[k]; !ok {
			t.Fatalf("server section missing %q: %s", k, raw["server"])
		}
	}

	// Shard and coordinator roles report themselves.
	sh, _ := fixtureShard(t)
	if err := json.Unmarshal(get(t, sh, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Server.Role != "shard" {
		t.Fatalf("shard role = %q", snap.Server.Role)
	}
}
