package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"forestview/internal/microarray"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// shardTopology is a full two-tier deployment in-process: shard-role
// Servers behind httptest listeners, selected by the real rendezvous
// assignment, and a coordinator-role Server over them.
type shardTopology struct {
	coord   *Server
	servers []*httptest.Server
	dss     []*microarray.Dataset
	full    *spell.Engine
	query   []string
}

func newShardTopology(t *testing.T, nShards int, cfg shard.Config) *shardTopology {
	t.Helper()
	u := synth.NewUniverse(200, 8, 71)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 6, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 72,
	})
	full, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}

	// Shard identities must be known before listeners exist (the daemon
	// flags work the same way), so name them logically; the coordinator
	// dials them through a resolver over the listener URLs.
	var shardNames []string
	for i := 0; i < nShards; i++ {
		shardNames = append(shardNames, fmt.Sprintf("shard-%d", i))
	}
	r := cfg.Replication
	if r < 1 {
		r = 1
	}
	top := &shardTopology{dss: dss, full: full, query: u.ModuleGeneIDs(2)[:4]}
	urls := make(map[string]string, nShards)
	for si, self := range shardNames {
		owned := shard.OwnedIndexesR(names, shardNames, self, r)
		if len(owned) == 0 {
			// A shard with an empty slice cannot build an engine; serve
			// nothing (rendezvous makes this rare but possible at tiny
			// dataset counts). The coordinator handles it as a failure.
			t.Fatalf("shard %s owns no datasets; pick a different fixture seed", self)
		}
		var slice []*microarray.Dataset
		for _, gi := range owned {
			slice = append(slice, dss[gi])
		}
		se, err := spell.NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := New(Config{Engine: se, ShardIndexes: owned, ShardDatasetIDs: names, CacheBytes: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ss.Close)
		hs := httptest.NewServer(ss)
		t.Cleanup(hs.Close)
		top.servers = append(top.servers, hs)
		urls[shardNames[si]] = hs.URL
	}
	cfg.Shards = shardNames
	cfg.Resolve = func(identity string) string { return urls[identity] }
	coordr, err := shard.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.coord, err = New(Config{Scatter: coordr, CacheBytes: 4 << 20, FleetToken: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.coord.Close)
	return top
}

func searchURL(query []string) string {
	return "/api/search?q=" + strings.Join(query, ",") + "&top=40"
}

type scatterBody struct {
	Query    []string
	Datasets []json.RawMessage
	Genes    []struct {
		ID    string
		Score float64
	}
	Degraded    bool `json:"degraded"`
	ShardsOK    int  `json:"shards_ok"`
	ShardsTotal int  `json:"shards_total"`
}

// TestCoordinatorSearchMatchesSingleProcess: a 2-shard topology answers
// /api/search with the same ranking the single-process daemon computes,
// carries the shard tally headers, and caches the merged result.
func TestCoordinatorSearchMatchesSingleProcess(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 5 * time.Second})
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q", h)
	}
	if ok, tot := rec.Header().Get("X-Forestview-Shards-Ok"), rec.Header().Get("X-Forestview-Shards-Total"); ok != "2" || tot != "2" {
		t.Fatalf("shard tally headers = %s/%s", ok, tot)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Degraded || body.ShardsOK != 2 || body.ShardsTotal != 2 {
		t.Fatalf("body meta: degraded=%v %d/%d", body.Degraded, body.ShardsOK, body.ShardsTotal)
	}
	want, err := top.full.Search(top.query, spell.Options{MaxGenes: 40, IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(body.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if body.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(body.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, body.Genes[i], want.Genes[i])
		}
	}
	if len(body.Datasets) != len(top.dss) {
		t.Fatalf("%d datasets, want %d", len(body.Datasets), len(top.dss))
	}

	// Second identical query: merged-result cache hit, no new scatter.
	before := statsOf(t, top.coord, "search")
	rec = get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat = %d", rec.Code)
	}
	after := statsOf(t, top.coord, "search")
	if after.CacheHits != before.CacheHits+1 || after.Computed != before.Computed {
		t.Fatalf("repeat not served from cache: before %+v after %+v", before, after)
	}

	// The scatter section reports the topology and per-shard traffic.
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter == nil || snap.Scatter.ShardsTotal != 2 || len(snap.Scatter.Shards) != 2 {
		t.Fatalf("scatter stats: %+v", snap.Scatter)
	}
	for _, sh := range snap.Scatter.Shards {
		if sh.Requests == 0 {
			t.Fatalf("shard %s saw no requests", sh.Addr)
		}
	}
	// Compendium totals come from the shard info union.
	if snap.Compendium.Datasets != len(top.dss) || snap.Compendium.Genes != top.full.NumGenes() {
		t.Fatalf("coordinator compendium: %+v", snap.Compendium)
	}
	// Merged results live under the scatter prefix of the shared LRU.
	if p := snap.Cache.Prefixes["scatter"]; p.Entries == 0 || p.Bytes == 0 {
		t.Fatalf("scatter prefix occupancy: %+v", snap.Cache.Prefixes)
	}
}

// TestCoordinatorDegradedMode is the acceptance criterion: with one shard
// killed, /api/search still answers 200, flags degraded=true, and the
// weights renormalize (sum to 1) over the surviving shards' datasets.
// Degraded merges must not enter the cache.
func TestCoordinatorDegradedMode(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 500 * time.Millisecond})
	top.servers[1].Close() // kill one shard

	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "true" {
		t.Fatalf("degraded header = %q", h)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded || body.ShardsOK != 1 || body.ShardsTotal != 2 {
		t.Fatalf("body meta: degraded=%v %d/%d", body.Degraded, body.ShardsOK, body.ShardsTotal)
	}
	// Renormalization: the surviving shard's dataset weights sum to 1.
	var ranks []spell.DatasetRank
	raw := struct {
		Datasets *[]spell.DatasetRank
	}{&ranks}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if len(ranks) >= len(top.dss) {
		t.Fatalf("degraded result covers %d datasets of %d — dead shard's slice leaked in", len(ranks), len(top.dss))
	}
	sum := 0.0
	for _, d := range ranks {
		sum += d.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("degraded weights sum to %v", sum)
	}

	// Not cached: the next identical query scatters again.
	before := statsOf(t, top.coord, "search")
	if rec := get(t, top.coord, searchURL(top.query)); rec.Code != http.StatusOK {
		t.Fatalf("second degraded search = %d", rec.Code)
	}
	after := statsOf(t, top.coord, "search")
	if after.Computed != before.Computed+1 {
		t.Fatalf("degraded result was served from cache: before %+v after %+v", before, after)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.Degraded < 2 {
		t.Fatalf("degraded counter = %d", snap.Scatter.Degraded)
	}
}

// TestCoordinatorFullOutage: with every shard dead the coordinator sheds
// with 503 — retryable, not a query error.
func TestCoordinatorFullOutage(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 300 * time.Millisecond})
	for _, hs := range top.servers {
		hs.Close()
	}
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("full outage = %d: %s", rec.Code, rec.Body.String())
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.FullOutages != 1 {
		t.Fatalf("outage counter = %d", snap.Scatter.FullOutages)
	}
}

// TestCoordinatorRejectsSingleGene: query validation runs before any
// scatter — same 422 contract as the single-process daemon.
func TestCoordinatorRejectsSingleGene(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	rec := get(t, top.coord, "/api/search?q=ONLYONE")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("single gene = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	for _, sh := range snap.Scatter.Shards {
		if sh.Requests != 0 {
			t.Fatalf("invalid query reached shard %s", sh.Addr)
		}
	}
}

// TestShardEndpointCachesPartials: the shard role caches partials under
// the canonical query, so repeated scatters (or several coordinators)
// scan the slice once; the partial prefix shows up in the LRU accounting.
func TestShardEndpointCachesPartials(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	shardURL := top.servers[0].URL

	post := func() *http.Response {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(shard.SearchRequest{Query: top.query}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(shardURL+shard.SearchPath, shard.ContentType, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post()
	var p spell.Partial
	if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(p.Datasets) == 0 {
		t.Fatalf("shard search = %d, %d datasets", resp.StatusCode, len(p.Datasets))
	}
	// Dataset indexes are global, not local: they must be a subset of the
	// full compendium's index space with no duplicates of other shards'.
	for _, d := range p.Datasets {
		if d.Index < 0 || d.Index >= len(top.dss) {
			t.Fatalf("dataset index %d outside global range", d.Index)
		}
		if top.dss[d.Index].Name != d.Name {
			t.Fatalf("dataset %q remapped to index %d (%q)", d.Name, d.Index, top.dss[d.Index].Name)
		}
	}
	resp = post()
	resp.Body.Close()

	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.servers[0].Config.Handler.(*Server), "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ep := snap.Endpoints["shard"]
	if ep.CacheHits != 1 || ep.Computed != 1 {
		t.Fatalf("partial caching: %+v", ep)
	}
	if pfx := snap.Cache.Prefixes["partial"]; pfx.Entries != 1 || pfx.Bytes == 0 {
		t.Fatalf("partial prefix occupancy: %+v", snap.Cache.Prefixes)
	}
}

// TestShardEndpointErrors pins the shard protocol's error contract.
func TestShardEndpointErrors(t *testing.T) {
	s, _ := fixtureShard(t)
	// GET is not part of the protocol.
	rec := get(t, s, shard.SearchPath)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", rec.Code)
	}
	// Garbage body.
	req := httptest.NewRequest(http.MethodPost, shard.SearchPath, strings.NewReader("not gob"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage = %d", rec.Code)
	}
	// Empty query.
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(shard.SearchRequest{})
	req = httptest.NewRequest(http.MethodPost, shard.SearchPath, &buf)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty query = %d", rec.Code)
	}
}

// fixtureShard is the shared fixture server re-wired as a shard backend.
func fixtureShard(t *testing.T) (*Server, *synth.Universe) {
	t.Helper()
	base, u := fixture(t)
	indexes := make([]int, base.cfg.Engine.NumDatasets())
	for i := range indexes {
		indexes[i] = i
	}
	catalog := make([]string, len(indexes))
	for i := range catalog {
		catalog[i] = fmt.Sprintf("ds-%d", i)
	}
	s, err := New(Config{Engine: base.cfg.Engine, ShardIndexes: indexes, ShardDatasetIDs: catalog, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, u
}

func TestServerShardConfigValidation(t *testing.T) {
	s, _ := fixture(t)
	n := s.cfg.Engine.NumDatasets()
	indexes := make([]int, n)
	catalog := make([]string, n)
	for i := range indexes {
		indexes[i] = i
		catalog[i] = fmt.Sprintf("ds-%d", i)
	}
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: []int{0}, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("mismatched shard index length accepted")
	}
	if _, err := New(Config{ShardIndexes: []int{0}, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("shard role without engine accepted")
	}
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: indexes}); err == nil {
		t.Fatal("shard role without the global catalog accepted")
	}
	bad := append([]int(nil), indexes...)
	bad[0] = n + 7
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: bad, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("shard index outside the catalog accepted")
	}
}

// TestCoordinatorReplicatedFailover: with replication 2 over three
// shards, killing one shard outright keeps /api/search serving 200,
// non-degraded, at golden parity with the single-process engine — the
// surviving replica of every ownership group answers.
func TestCoordinatorReplicatedFailover(t *testing.T) {
	top := newShardTopology(t, 3, shard.Config{Deadline: 2 * time.Second, Replication: 2})
	top.servers[1].Close()
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("replicated search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q (replica failover should hide the dead shard)", h)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want, err := top.full.Search(top.query, spell.Options{MaxGenes: 40, IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(body.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if body.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(body.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, body.Genes[i], want.Genes[i])
		}
	}
	if len(body.Datasets) != len(top.dss) {
		t.Fatalf("%d datasets, want the full %d", len(body.Datasets), len(top.dss))
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.Replication != 2 || snap.Scatter.Degraded != 0 {
		t.Fatalf("scatter stats: %+v", snap.Scatter)
	}
}

// fleetDo drives /api/admin/fleet with an optional token and body.
func fleetDo(t *testing.T, s *Server, method, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, "/api/admin/fleet", rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestFleetAdminEndpoint pins the runtime-membership API: token-gated,
// GET reports the fleet, POST add/remove bumps the generation, domain
// errors surface as 422.
func TestFleetAdminEndpoint(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})

	if rec := fleetDo(t, top.coord, http.MethodGet, "", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("no token = %d", rec.Code)
	}
	if rec := fleetDo(t, top.coord, http.MethodGet, "wrong", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("wrong token = %d", rec.Code)
	}

	var state struct {
		Shards      []string `json:"shards"`
		Generation  string   `json:"generation"`
		Replication int      `json:"replication"`
		Bumps       int64    `json:"membership_bumps"`
	}
	rec := fleetDo(t, top.coord, http.MethodGet, "sesame", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 2 || state.Replication != 1 || state.Generation == "" || state.Bumps != 0 {
		t.Fatalf("fleet state: %+v", state)
	}
	gen0 := state.Generation

	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"explode","shard":"x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad action = %d", rec.Code)
	}
	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"nope"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("remove unknown = %d", rec.Code)
	}

	rec = fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("remove = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 1 || state.Bumps != 1 || state.Generation == gen0 {
		t.Fatalf("post-remove state: %+v", state)
	}
	// The last member is protected: an empty fleet serves nothing.
	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-0"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("remove last = %d", rec.Code)
	}

	rec = fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"add","shard":"shard-1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("add = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 2 || state.Bumps != 2 || state.Generation != gen0 {
		t.Fatalf("post-add state: %+v (generation must return with the same membership)", state)
	}

	// After the round trip the fleet serves full-coverage searches again.
	rec = get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Forestview-Degraded") != "true" && rec.Header().Get("X-Forestview-Degraded") != "false" {
		t.Fatalf("post-roundtrip search = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.MembershipBumps != 2 {
		t.Fatalf("membership bumps in stats = %d", snap.Scatter.MembershipBumps)
	}
	if _, ok := snap.Endpoints["fleet"]; !ok {
		t.Fatal("fleet endpoint missing from stats")
	}
}

// TestFleetAdminDisabled: without a configured token the endpoint refuses
// everything, and non-coordinators don't mount it at all.
func TestFleetAdminDisabled(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	bare, err := New(Config{Scatter: top.coord.cfg.Scatter, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	if rec := fleetDo(t, bare, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-1"}`); rec.Code != http.StatusForbidden {
		t.Fatalf("tokenless coordinator = %d, want 403 always", rec.Code)
	}
	single, _ := fixture(t)
	if rec := fleetDo(t, single, http.MethodGet, "sesame", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("single role fleet endpoint = %d, want 404", rec.Code)
	}
}

// TestCoordinatorHTMLDisclosesDegraded: the HTML page runs through
// spellweb.ContextSearcher, so a degraded scatter is disclosed on the
// page, not silently rendered as a full-compendium ranking.
func TestCoordinatorHTMLDisclosesDegraded(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 500 * time.Millisecond})
	// Healthy probe uses a different gene subset than the degraded probe:
	// the full merge it caches must not be a (correct) cache hit for the
	// post-kill query below.
	rec := get(t, top.coord, "/search?q="+strings.Join(top.query[:3], ","))
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "degraded result") {
		t.Fatalf("healthy page = %d, degraded note present: %v", rec.Code,
			strings.Contains(rec.Body.String(), "degraded result"))
	}
	top.servers[1].Close()
	rec = get(t, top.coord, "/search?q="+strings.Join(top.query, ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded page = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "degraded result: only 1 of 2 shards answered") {
		t.Fatal("degraded scatter not disclosed on the HTML page")
	}
}
