package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// shardTopology is a full two-tier deployment in-process: shard-role
// Servers behind httptest listeners, selected by the real rendezvous
// assignment, and a coordinator-role Server over them.
type shardTopology struct {
	coord   *Server
	servers []*httptest.Server
	dss     []*microarray.Dataset
	full    *spell.Engine
	query   []string
	u       *synth.Universe
	enr     *golem.Enricher // full-universe enricher (nil unless enriched)
}

func newShardTopology(t *testing.T, nShards int, cfg shard.Config) *shardTopology {
	return newEnrichedTopology(t, nShards, 6, cfg, nil)
}

// topologyEnricher builds the shared test ontology/enricher over the
// topology universe. Every caller passes the same inputs, so every
// enricher built from one universe has the same kernel fingerprint — the
// property a real fleet gets from booting every shard off one OBO and one
// association file.
func topologyEnricher(t *testing.T, u *synth.Universe) *golem.Enricher {
	t.Helper()
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	enr, err := golem.NewEnricher(onto, ontology.AnnotateFromModules(u.Annotations(), leafOf), u.GeneIDs())
	if err != nil {
		t.Fatal(err)
	}
	return enr
}

// newEnrichedTopology is newShardTopology with the dataset count
// parameterized and an optional per-shard enrichment predicate: shards for
// which enrich(i) is true boot with an ontology (and the enrich
// capability), the rest serve search only.
func newEnrichedTopology(t *testing.T, nShards, nDatasets int, cfg shard.Config, enrich func(i int) bool) *shardTopology {
	t.Helper()
	u := synth.NewUniverse(200, 8, 71)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: nDatasets, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 72,
	})
	full, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}

	// Shard identities must be known before listeners exist (the daemon
	// flags work the same way), so name them logically; the coordinator
	// dials them through a resolver over the listener URLs.
	var shardNames []string
	for i := 0; i < nShards; i++ {
		shardNames = append(shardNames, fmt.Sprintf("shard-%d", i))
	}
	r := cfg.Replication
	if r < 1 {
		r = 1
	}
	top := &shardTopology{dss: dss, full: full, query: u.ModuleGeneIDs(2)[:4], u: u}
	if enrich != nil {
		top.enr = topologyEnricher(t, u)
	}
	urls := make(map[string]string, nShards)
	for si, self := range shardNames {
		owned := shard.OwnedIndexesR(names, shardNames, self, r)
		if len(owned) == 0 {
			// A shard with an empty slice cannot build an engine; serve
			// nothing (rendezvous makes this rare but possible at tiny
			// dataset counts). The coordinator handles it as a failure.
			t.Fatalf("shard %s owns no datasets; pick a different fixture seed", self)
		}
		var slice []*microarray.Dataset
		for _, gi := range owned {
			slice = append(slice, dss[gi])
		}
		se, err := spell.NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		scfg := Config{Engine: se, ShardIndexes: owned, ShardDatasetIDs: names, CacheBytes: 4 << 20}
		if enrich != nil && enrich(si) {
			scfg.Enricher = topologyEnricher(t, u)
		}
		ss, err := New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ss.Close)
		hs := httptest.NewServer(ss)
		t.Cleanup(hs.Close)
		top.servers = append(top.servers, hs)
		urls[shardNames[si]] = hs.URL
	}
	cfg.Shards = shardNames
	cfg.Resolve = func(identity string) string { return urls[identity] }
	coordr, err := shard.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top.coord, err = New(Config{Scatter: coordr, CacheBytes: 4 << 20, FleetToken: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.coord.Close)
	return top
}

func searchURL(query []string) string {
	return "/api/search?q=" + strings.Join(query, ",") + "&top=40"
}

type scatterBody struct {
	Query    []string
	Datasets []json.RawMessage
	Genes    []struct {
		ID    string
		Score float64
	}
	Degraded    bool `json:"degraded"`
	ShardsOK    int  `json:"shards_ok"`
	ShardsTotal int  `json:"shards_total"`
}

// TestCoordinatorSearchMatchesSingleProcess: a 2-shard topology answers
// /api/search with the same ranking the single-process daemon computes,
// carries the shard tally headers, and caches the merged result.
func TestCoordinatorSearchMatchesSingleProcess(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 5 * time.Second})
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q", h)
	}
	if ok, tot := rec.Header().Get("X-Forestview-Shards-Ok"), rec.Header().Get("X-Forestview-Shards-Total"); ok != "2" || tot != "2" {
		t.Fatalf("shard tally headers = %s/%s", ok, tot)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Degraded || body.ShardsOK != 2 || body.ShardsTotal != 2 {
		t.Fatalf("body meta: degraded=%v %d/%d", body.Degraded, body.ShardsOK, body.ShardsTotal)
	}
	want, err := top.full.Search(top.query, spell.Options{MaxGenes: 40, IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(body.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if body.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(body.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, body.Genes[i], want.Genes[i])
		}
	}
	if len(body.Datasets) != len(top.dss) {
		t.Fatalf("%d datasets, want %d", len(body.Datasets), len(top.dss))
	}

	// Second identical query: merged-result cache hit, no new scatter.
	before := statsOf(t, top.coord, "search")
	rec = get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat = %d", rec.Code)
	}
	after := statsOf(t, top.coord, "search")
	if after.CacheHits != before.CacheHits+1 || after.Computed != before.Computed {
		t.Fatalf("repeat not served from cache: before %+v after %+v", before, after)
	}

	// The scatter section reports the topology and per-shard traffic.
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter == nil || snap.Scatter.ShardsTotal != 2 || len(snap.Scatter.Shards) != 2 {
		t.Fatalf("scatter stats: %+v", snap.Scatter)
	}
	for _, sh := range snap.Scatter.Shards {
		if sh.Requests == 0 {
			t.Fatalf("shard %s saw no requests", sh.Addr)
		}
	}
	// Compendium totals come from the shard info union.
	if snap.Compendium.Datasets != len(top.dss) || snap.Compendium.Genes != top.full.NumGenes() {
		t.Fatalf("coordinator compendium: %+v", snap.Compendium)
	}
	// Merged results live under the scatter prefix of the shared LRU.
	if p := snap.Cache.Prefixes["scatter"]; p.Entries == 0 || p.Bytes == 0 {
		t.Fatalf("scatter prefix occupancy: %+v", snap.Cache.Prefixes)
	}
}

// TestCoordinatorDegradedMode is the acceptance criterion: with one shard
// killed, /api/search still answers 200, flags degraded=true, and the
// weights renormalize (sum to 1) over the surviving shards' datasets.
// Degraded merges must not enter the cache.
func TestCoordinatorDegradedMode(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 500 * time.Millisecond})
	top.servers[1].Close() // kill one shard

	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "true" {
		t.Fatalf("degraded header = %q", h)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded || body.ShardsOK != 1 || body.ShardsTotal != 2 {
		t.Fatalf("body meta: degraded=%v %d/%d", body.Degraded, body.ShardsOK, body.ShardsTotal)
	}
	// Renormalization: the surviving shard's dataset weights sum to 1.
	var ranks []spell.DatasetRank
	raw := struct {
		Datasets *[]spell.DatasetRank
	}{&ranks}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if len(ranks) >= len(top.dss) {
		t.Fatalf("degraded result covers %d datasets of %d — dead shard's slice leaked in", len(ranks), len(top.dss))
	}
	sum := 0.0
	for _, d := range ranks {
		sum += d.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("degraded weights sum to %v", sum)
	}

	// Not cached: the next identical query scatters again.
	before := statsOf(t, top.coord, "search")
	if rec := get(t, top.coord, searchURL(top.query)); rec.Code != http.StatusOK {
		t.Fatalf("second degraded search = %d", rec.Code)
	}
	after := statsOf(t, top.coord, "search")
	if after.Computed != before.Computed+1 {
		t.Fatalf("degraded result was served from cache: before %+v after %+v", before, after)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.Degraded < 2 {
		t.Fatalf("degraded counter = %d", snap.Scatter.Degraded)
	}
}

// TestCoordinatorFullOutage: with every shard dead the coordinator sheds
// with 503 — retryable, not a query error.
func TestCoordinatorFullOutage(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 300 * time.Millisecond})
	for _, hs := range top.servers {
		hs.Close()
	}
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("full outage = %d: %s", rec.Code, rec.Body.String())
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.FullOutages != 1 {
		t.Fatalf("outage counter = %d", snap.Scatter.FullOutages)
	}
}

// TestCoordinatorRejectsSingleGene: query validation runs before any
// scatter — same 422 contract as the single-process daemon.
func TestCoordinatorRejectsSingleGene(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	rec := get(t, top.coord, "/api/search?q=ONLYONE")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("single gene = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	for _, sh := range snap.Scatter.Shards {
		if sh.Requests != 0 {
			t.Fatalf("invalid query reached shard %s", sh.Addr)
		}
	}
}

// TestShardEndpointCachesPartials: the shard role caches partials under
// the canonical query, so repeated scatters (or several coordinators)
// scan the slice once; the partial prefix shows up in the LRU accounting.
func TestShardEndpointCachesPartials(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	shardURL := top.servers[0].URL

	post := func() *http.Response {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(shard.SearchRequest{Query: top.query}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(shardURL+shard.SearchPath, shard.ContentType, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post()
	var p spell.Partial
	if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(p.Datasets) == 0 {
		t.Fatalf("shard search = %d, %d datasets", resp.StatusCode, len(p.Datasets))
	}
	// Dataset indexes are global, not local: they must be a subset of the
	// full compendium's index space with no duplicates of other shards'.
	for _, d := range p.Datasets {
		if d.Index < 0 || d.Index >= len(top.dss) {
			t.Fatalf("dataset index %d outside global range", d.Index)
		}
		if top.dss[d.Index].Name != d.Name {
			t.Fatalf("dataset %q remapped to index %d (%q)", d.Name, d.Index, top.dss[d.Index].Name)
		}
	}
	resp = post()
	resp.Body.Close()

	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.servers[0].Config.Handler.(*Server), "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ep := snap.Endpoints["shard"]
	if ep.CacheHits != 1 || ep.Computed != 1 {
		t.Fatalf("partial caching: %+v", ep)
	}
	if pfx := snap.Cache.Prefixes["partial"]; pfx.Entries != 1 || pfx.Bytes == 0 {
		t.Fatalf("partial prefix occupancy: %+v", snap.Cache.Prefixes)
	}
}

// TestShardEndpointErrors pins the shard protocol's error contract.
func TestShardEndpointErrors(t *testing.T) {
	s, _ := fixtureShard(t)
	// GET is not part of the protocol.
	rec := get(t, s, shard.SearchPath)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", rec.Code)
	}
	// Garbage body.
	req := httptest.NewRequest(http.MethodPost, shard.SearchPath, strings.NewReader("not gob"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage = %d", rec.Code)
	}
	// Empty query.
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(shard.SearchRequest{})
	req = httptest.NewRequest(http.MethodPost, shard.SearchPath, &buf)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty query = %d", rec.Code)
	}
}

// fixtureShard is the shared fixture server re-wired as a shard backend.
func fixtureShard(t *testing.T) (*Server, *synth.Universe) {
	t.Helper()
	base, u := fixture(t)
	indexes := make([]int, base.cfg.Engine.NumDatasets())
	for i := range indexes {
		indexes[i] = i
	}
	catalog := make([]string, len(indexes))
	for i := range catalog {
		catalog[i] = fmt.Sprintf("ds-%d", i)
	}
	s, err := New(Config{Engine: base.cfg.Engine, Enricher: fixEnricher, ShardIndexes: indexes, ShardDatasetIDs: catalog, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, u
}

func TestServerShardConfigValidation(t *testing.T) {
	s, _ := fixture(t)
	n := s.cfg.Engine.NumDatasets()
	indexes := make([]int, n)
	catalog := make([]string, n)
	for i := range indexes {
		indexes[i] = i
		catalog[i] = fmt.Sprintf("ds-%d", i)
	}
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: []int{0}, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("mismatched shard index length accepted")
	}
	if _, err := New(Config{ShardIndexes: []int{0}, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("shard role without engine accepted")
	}
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: indexes}); err == nil {
		t.Fatal("shard role without the global catalog accepted")
	}
	bad := append([]int(nil), indexes...)
	bad[0] = n + 7
	if _, err := New(Config{Engine: s.cfg.Engine, ShardIndexes: bad, ShardDatasetIDs: catalog}); err == nil {
		t.Fatal("shard index outside the catalog accepted")
	}
}

// TestCoordinatorReplicatedFailover: with replication 2 over three
// shards, killing one shard outright keeps /api/search serving 200,
// non-degraded, at golden parity with the single-process engine — the
// surviving replica of every ownership group answers.
func TestCoordinatorReplicatedFailover(t *testing.T) {
	top := newShardTopology(t, 3, shard.Config{Deadline: 2 * time.Second, Replication: 2})
	top.servers[1].Close()
	rec := get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK {
		t.Fatalf("replicated search = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q (replica failover should hide the dead shard)", h)
	}
	var body scatterBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want, err := top.full.Search(top.query, spell.Options{MaxGenes: 40, IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(body.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if body.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(body.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, body.Genes[i], want.Genes[i])
		}
	}
	if len(body.Datasets) != len(top.dss) {
		t.Fatalf("%d datasets, want the full %d", len(body.Datasets), len(top.dss))
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.Replication != 2 || snap.Scatter.Degraded != 0 {
		t.Fatalf("scatter stats: %+v", snap.Scatter)
	}
}

// fleetDo drives /api/admin/fleet with an optional token and body.
func fleetDo(t *testing.T, s *Server, method, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, "/api/admin/fleet", rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestFleetAdminEndpoint pins the runtime-membership API: token-gated,
// GET reports the fleet, POST add/remove bumps the generation, domain
// errors surface as 422.
func TestFleetAdminEndpoint(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})

	if rec := fleetDo(t, top.coord, http.MethodGet, "", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("no token = %d", rec.Code)
	}
	if rec := fleetDo(t, top.coord, http.MethodGet, "wrong", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("wrong token = %d", rec.Code)
	}

	var state struct {
		Shards      []string `json:"shards"`
		Generation  string   `json:"generation"`
		Replication int      `json:"replication"`
		Bumps       int64    `json:"membership_bumps"`
	}
	rec := fleetDo(t, top.coord, http.MethodGet, "sesame", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 2 || state.Replication != 1 || state.Generation == "" || state.Bumps != 0 {
		t.Fatalf("fleet state: %+v", state)
	}
	gen0 := state.Generation

	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"explode","shard":"x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad action = %d", rec.Code)
	}
	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"nope"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("remove unknown = %d", rec.Code)
	}

	rec = fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("remove = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 1 || state.Bumps != 1 || state.Generation == gen0 {
		t.Fatalf("post-remove state: %+v", state)
	}
	// The last member is protected: an empty fleet serves nothing.
	if rec := fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-0"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("remove last = %d", rec.Code)
	}

	rec = fleetDo(t, top.coord, http.MethodPost, "sesame", `{"action":"add","shard":"shard-1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("add = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Shards) != 2 || state.Bumps != 2 || state.Generation != gen0 {
		t.Fatalf("post-add state: %+v (generation must return with the same membership)", state)
	}

	// After the round trip the fleet serves full-coverage searches again.
	rec = get(t, top.coord, searchURL(top.query))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Forestview-Degraded") != "true" && rec.Header().Get("X-Forestview-Degraded") != "false" {
		t.Fatalf("post-roundtrip search = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.MembershipBumps != 2 {
		t.Fatalf("membership bumps in stats = %d", snap.Scatter.MembershipBumps)
	}
	if _, ok := snap.Endpoints["fleet"]; !ok {
		t.Fatal("fleet endpoint missing from stats")
	}
}

// TestFleetAdminDisabled: without a configured token the endpoint refuses
// everything, and non-coordinators don't mount it at all.
func TestFleetAdminDisabled(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	bare, err := New(Config{Scatter: top.coord.cfg.Scatter, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	if rec := fleetDo(t, bare, http.MethodPost, "sesame", `{"action":"remove","shard":"shard-1"}`); rec.Code != http.StatusForbidden {
		t.Fatalf("tokenless coordinator = %d, want 403 always", rec.Code)
	}
	single, _ := fixture(t)
	if rec := fleetDo(t, single, http.MethodGet, "sesame", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("single role fleet endpoint = %d, want 404", rec.Code)
	}
}

// TestCoordinatorHTMLDisclosesDegraded: the HTML page runs through
// spellweb.ContextSearcher, so a degraded scatter is disclosed on the
// page, not silently rendered as a full-compendium ranking.
func TestCoordinatorHTMLDisclosesDegraded(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: 500 * time.Millisecond})
	// Healthy probe uses a different gene subset than the degraded probe:
	// the full merge it caches must not be a (correct) cache hit for the
	// post-kill query below.
	rec := get(t, top.coord, "/search?q="+strings.Join(top.query[:3], ","))
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "degraded result") {
		t.Fatalf("healthy page = %d, degraded note present: %v", rec.Code,
			strings.Contains(rec.Body.String(), "degraded result"))
	}
	top.servers[1].Close()
	rec = get(t, top.coord, "/search?q="+strings.Join(top.query, ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded page = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "degraded result: only 1 of 2 shards answered") {
		t.Fatal("degraded scatter not disclosed on the HTML page")
	}
}

func enrichURL(genes []string) string {
	return "/api/enrich?genes=" + strings.Join(genes, ",")
}

// scatterEnrichBody is the coordinator /api/enrich body under test: the
// enrichment table plus the disclosed scatter tallies.
type scatterEnrichBody struct {
	Selection   []string           `json:"selection"`
	Ignored     []string           `json:"ignored"`
	Background  int                `json:"background"`
	Results     []golem.Enrichment `json:"results"`
	Degraded    bool               `json:"degraded"`
	ShardsOK    int                `json:"shards_ok"`
	ShardsTotal int                `json:"shards_total"`
	GroupsOK    int                `json:"groups_ok"`
	GroupsTotal int                `json:"groups_total"`
}

// assertEnrichBodyParity compares a coordinator enrich body against the
// single-process analysis: identical term order, counts, and p-values to
// 1e-12.
func assertEnrichBodyParity(t *testing.T, body *scatterEnrichBody, want []golem.Enrichment) {
	t.Helper()
	if len(body.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(body.Results), len(want))
	}
	for i := range want {
		g, w := body.Results[i], want[i]
		if g.TermID != w.TermID || g.Selected != w.Selected || g.Background != w.Background ||
			g.SelectionSize != w.SelectionSize || g.BackgroundSize != w.BackgroundSize {
			t.Fatalf("rank %d: %+v vs %+v", i, g, w)
		}
		if math.Abs(g.PValue-w.PValue) > 1e-12 || math.Abs(g.FDR-w.FDR) > 1e-12 {
			t.Fatalf("rank %d p-values: %v/%v vs %v/%v", i, g.PValue, g.FDR, w.PValue, w.FDR)
		}
	}
}

// TestCoordinatorEnrichMatchesSingleProcess is the tentpole acceptance
// test at the HTTP layer: /api/enrich on a coordinator returns exactly the
// single-process analysis — same term order, same counts, p-values to
// 1e-12 — across shard counts and replication factors, discloses the
// scatter tallies, and caches the merged table.
func TestCoordinatorEnrichMatchesSingleProcess(t *testing.T) {
	cases := []struct {
		name              string
		shards, repl, dss int
	}{
		{"1shard-r1", 1, 1, 6},
		{"2shards-r1", 2, 1, 6},
		{"3shards-r2", 3, 2, 6},
		{"5shards-r2", 5, 2, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top := newEnrichedTopology(t, tc.shards, tc.dss,
				shard.Config{Deadline: 5 * time.Second, Replication: tc.repl},
				func(int) bool { return true })
			genes := top.u.ModuleGeneIDs(3)
			rec := get(t, top.coord, enrichURL(genes))
			if rec.Code != http.StatusOK {
				t.Fatalf("enrich = %d: %s", rec.Code, rec.Body.String())
			}
			if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
				t.Fatalf("degraded header = %q", h)
			}
			if rec.Header().Get("X-Forestview-Shards-Ok") == "" || rec.Header().Get("X-Forestview-Shards-Total") == "" {
				t.Fatal("shard tally headers missing")
			}
			var body scatterEnrichBody
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatal(err)
			}
			if body.Degraded || body.GroupsOK != body.GroupsTotal || body.GroupsTotal == 0 {
				t.Fatalf("scatter tallies: degraded=%v groups %d/%d", body.Degraded, body.GroupsOK, body.GroupsTotal)
			}
			if body.ShardsTotal != tc.shards {
				t.Fatalf("shards_total = %d, want %d", body.ShardsTotal, tc.shards)
			}
			if body.Background != top.enr.BackgroundSize() {
				t.Fatalf("background = %d, want %d", body.Background, top.enr.BackgroundSize())
			}
			if len(body.Ignored) != 0 || len(body.Selection) != len(spell.CanonicalQuery(genes)) {
				t.Fatalf("selection disclosure: tested %d, ignored %v", len(body.Selection), body.Ignored)
			}
			want, err := top.enr.Analyze(genes, golem.Options{MinSelected: 1})
			if err != nil {
				t.Fatal(err)
			}
			assertEnrichBodyParity(t, &body, want)

			// Second identical request: merged-table cache hit, no rescatter.
			before := statsOf(t, top.coord, "enrich")
			if rec := get(t, top.coord, enrichURL(genes)); rec.Code != http.StatusOK {
				t.Fatalf("repeat = %d", rec.Code)
			}
			after := statsOf(t, top.coord, "enrich")
			if after.CacheHits != before.CacheHits+1 || after.Computed != before.Computed {
				t.Fatalf("repeat not served from cache: before %+v after %+v", before, after)
			}
			var snap StatsSnapshot
			if err := json.Unmarshal(get(t, top.coord, "/api/stats").Body.Bytes(), &snap); err != nil {
				t.Fatal(err)
			}
			if p := snap.Cache.Prefixes["escatter"]; p.Entries == 0 || p.Bytes == 0 {
				t.Fatalf("escatter prefix occupancy: %+v", snap.Cache.Prefixes)
			}
		})
	}
}

// shardInfoOf fetches and decodes one shard's /api/shard/v1/info.
func shardInfoOf(t *testing.T, hs *httptest.Server) shard.Info {
	t.Helper()
	resp, err := http.Get(hs.URL + shard.InfoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info = %d", resp.StatusCode)
	}
	var info shard.Info
	if err := gob.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestMixedFleetCapabilities pins the capability negotiation: in a fleet
// where only some shards carry an ontology, each shard's info advertises
// exactly what it serves, enrich paths 404 on incapable shards, and the
// coordinator still answers /api/enrich exactly and non-degraded — any
// capable shard can serve any background slice, so dark shards cost
// nothing while one capable shard is reachable.
func TestMixedFleetCapabilities(t *testing.T) {
	top := newEnrichedTopology(t, 3, 6,
		shard.Config{Deadline: 5 * time.Second},
		func(i int) bool { return i != 1 }) // shard-1 boots without an ontology

	wantCaps := map[int][]string{
		0: {shard.CapabilitySearch, shard.CapabilityEnrich},
		1: {shard.CapabilitySearch},
		2: {shard.CapabilitySearch, shard.CapabilityEnrich},
	}
	for si, hs := range top.servers {
		info := shardInfoOf(t, hs)
		if fmt.Sprint(info.Capabilities) != fmt.Sprint(wantCaps[si]) {
			t.Fatalf("shard %d capabilities = %v, want %v", si, info.Capabilities, wantCaps[si])
		}
	}
	// The incapable shard 404s on both enrich paths — that is the protocol's
	// "unsupported" signal.
	for _, path := range []string{shard.EnrichPath, shard.EnrichCatalogPath} {
		resp, err := http.Get(top.servers[1].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("dark shard %s = %d, want 404", path, resp.StatusCode)
		}
	}

	genes := top.u.ModuleGeneIDs(4)
	rec := get(t, top.coord, enrichURL(genes))
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed-fleet enrich = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q (capable shards should cover every slice)", h)
	}
	var body scatterEnrichBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want, err := top.enr.Analyze(genes, golem.Options{MinSelected: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertEnrichBodyParity(t, &body, want)

	// Search is untouched by the capability split.
	if rec := get(t, top.coord, searchURL(top.query)); rec.Code != http.StatusOK {
		t.Fatalf("search on mixed fleet = %d", rec.Code)
	}
}

// TestCoordinatorEnrichNoOntology: a fleet with no capable shard answers
// /api/enrich with the same 503/no_ontology contract as a single daemon
// booted without an ontology.
func TestCoordinatorEnrichNoOntology(t *testing.T) {
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	rec := get(t, top.coord, "/api/enrich?genes=G1,G2")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("enrich on ontology-less fleet = %d: %s", rec.Code, rec.Body.String())
	}
	if code, _ := errorEnvelopeOf(t, rec.Body.Bytes()); code != codeNoOntology {
		t.Fatalf("error code = %q, want %q", code, codeNoOntology)
	}
}

// TestCoordinatorEnrichReplicatedFailover: killing one shard of an R=2
// fleet must not degrade enrichment — the surviving replica (or any other
// capable shard, via the scavenge pass) serves every background slice and
// the merged table stays exact.
func TestCoordinatorEnrichReplicatedFailover(t *testing.T) {
	top := newEnrichedTopology(t, 3, 6,
		shard.Config{Deadline: 2 * time.Second, Replication: 2},
		func(int) bool { return true })
	top.servers[1].Close()
	genes := top.u.ModuleGeneIDs(3)
	rec := get(t, top.coord, enrichURL(genes))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-kill enrich = %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q (replica failover should hide the dead shard)", h)
	}
	var body scatterEnrichBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want, err := top.enr.Analyze(genes, golem.Options{MinSelected: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertEnrichBodyParity(t, &body, want)
}

// TestAPIErrorEnvelope pins the uniform error contract: every /api/* error
// path answers {"error": {"code", "message"}} with a stable code and the
// pinned status.
func TestAPIErrorEnvelope(t *testing.T) {
	single, u := fixture(t)
	shardS, _ := fixtureShard(t)
	top := newShardTopology(t, 2, shard.Config{Deadline: time.Second})
	bare, err := New(Config{Engine: fixEngine})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Close)
	gene := u.ModuleGeneIDs(1)[0]

	cases := []struct {
		name     string
		srv      *Server
		method   string
		url      string
		wantCode int
		want     string
	}{
		{"search missing q", single, http.MethodGet, "/api/search", http.StatusBadRequest, codeMissingParameter},
		{"search bad top", single, http.MethodGet, "/api/search?q=A,B&top=zero", http.StatusBadRequest, codeBadParameter},
		{"search single gene", single, http.MethodGet, "/api/search?q=" + gene, http.StatusUnprocessableEntity, codeSingleGeneQuery},
		{"enrich missing genes", single, http.MethodGet, "/api/enrich", http.StatusBadRequest, codeMissingParameter},
		{"enrich bad maxp", single, http.MethodGet, "/api/enrich?genes=A&maxp=7", http.StatusBadRequest, codeBadParameter},
		{"enrich unknown genes", single, http.MethodGet, "/api/enrich?genes=NOPE999", http.StatusUnprocessableEntity, codeNoSelectionGenes},
		{"enrich no ontology", bare, http.MethodGet, "/api/enrich?genes=A", http.StatusServiceUnavailable, codeNoOntology},
		{"heatmap missing dataset", single, http.MethodGet, "/api/heatmap", http.StatusBadRequest, codeMissingParameter},
		{"heatmap unknown dataset", single, http.MethodGet, "/api/heatmap?dataset=99", http.StatusNotFound, codeUnknownDataset},
		{"heatmap bad rows", single, http.MethodGet, "/api/heatmap?dataset=0&rows=5:2", http.StatusBadRequest, codeBadParameter},
		{"shard search GET", shardS, http.MethodGet, shard.SearchPath, http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"shard enrich GET", shardS, http.MethodGet, shard.EnrichPath, http.StatusMethodNotAllowed, codeMethodNotAllowed},
		{"fleet no token", top.coord, http.MethodGet, "/api/admin/fleet", http.StatusForbidden, codeForbidden},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, c.url, nil)
			rec := httptest.NewRecorder()
			c.srv.ServeHTTP(rec, req)
			if rec.Code != c.wantCode {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, c.wantCode, rec.Body.String())
			}
			if code, _ := errorEnvelopeOf(t, rec.Body.Bytes()); code != c.want {
				t.Fatalf("error code = %q, want %q", code, c.want)
			}
		})
	}
}
