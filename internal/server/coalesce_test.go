package server

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var computes atomic.Int64
	var joins atomic.Int64
	release := make(chan struct{})
	ready := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-ready // the first goroutine is mid-compute before others join
			}
			v, err, joined := g.Do("k", func() (any, error) {
				computes.Add(1)
				close(ready)
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			if joined {
				joins.Add(1)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let joiners pile onto the flight
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want exactly 1", got)
	}
	if got := joins.Load(); got != n-1 {
		t.Fatalf("joined = %d, want %d", got, n-1)
	}
}

func TestFlightGroupSequentialCallsRecompute(t *testing.T) {
	var g flightGroup
	n := 0
	for i := 0; i < 3; i++ {
		v, err, joined := g.Do("k", func() (any, error) { n++; return n, nil })
		if err != nil || joined {
			t.Fatalf("call %d: err=%v joined=%v", i, err, joined)
		}
		if v.(int) != i+1 {
			t.Fatalf("call %d returned %v", i, v)
		}
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestFlightGroupSurvivesPanic: a panicking computation must not wedge the
// key — later callers get a fresh flight, concurrent joiners get the error.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	var g flightGroup
	_, err, _ := g.Do("k", func() (any, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	v, err, joined := g.Do("k", func() (any, error) { return "recovered", nil })
	if err != nil || joined || v.(string) != "recovered" {
		t.Fatalf("key wedged after panic: %v, %v, %v", v, err, joined)
	}
}

func TestPoolSurvivesPanickingJob(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	if _, err := p.Run(nil, func() (any, error) { panic("tile bug") }); err == nil {
		t.Fatal("panic not converted to error")
	}
	// The worker must still be alive for the next job.
	v, err := p.Run(nil, func() (any, error) { return "alive", nil })
	if err != nil || v.(string) != "alive" {
		t.Fatalf("worker died after panic: %v, %v", v, err)
	}
}

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	v, err := p.Run(nil, func() (any, error) { return "done", nil })
	if err != nil || v.(string) != "done" {
		t.Fatalf("Run = %v, %v", v, err)
	}
}

func TestPoolShedsWhenSaturated(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = p.Run(nil, func() (any, error) { close(started); <-block; return nil, nil })
	}()
	<-started // the single worker is now parked on block
	go func() {
		defer wg.Done()
		_, _ = p.Run(nil, func() (any, error) { return nil, nil })
	}()
	// Wait for the filler job to occupy the one queue slot.
	for i := 0; len(p.jobs) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(p.jobs) == 0 {
		t.Fatal("queue slot never filled")
	}
	// Worker busy + queue full: the next submission must shed, not block.
	if _, err := p.Run(nil, func() (any, error) { return nil, nil }); err != ErrSaturated {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	close(block)
	wg.Wait()
	p.Close()
}
