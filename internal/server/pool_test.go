package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunUnblocksOnContextCancel: a submitter whose client disconnects
// must stop waiting as soon as its context ends, even while its job is
// stuck behind a busy worker.
func TestPoolRunUnblocksOnContextCancel(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Run(nil, func() (any, error) { close(started); <-block; return nil, nil })
	}()
	<-started // the single worker is parked

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx, func() (any, error) { return "never", nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the job reach the queue
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not unblock on ctx.Done()")
	}
	close(block)
	wg.Wait()
}

// TestPoolSkipsAbandonedQueuedJobs: a job whose context is canceled while
// it waits in the queue must never execute — its work would be thrown away.
func TestPoolSkipsAbandonedQueuedJobs(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Run(nil, func() (any, error) { close(started); <-block; return nil, nil })
	}()
	<-started

	var ran atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	var abandoned sync.WaitGroup
	for i := 0; i < 3; i++ {
		abandoned.Add(1)
		go func() {
			defer abandoned.Done()
			_, _ = p.Run(ctx, func() (any, error) { ran.Add(1); return nil, nil })
		}()
	}
	// Wait for the abandoned jobs to be queued, then hang up before the
	// worker can reach them.
	for i := 0; len(p.jobs) < 3 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(p.jobs) < 3 {
		t.Fatal("jobs never queued")
	}
	cancel()
	abandoned.Wait()
	close(block)

	// A live job after the abandoned ones proves the worker drained them.
	if v, err := p.Run(nil, func() (any, error) { return "live", nil }); err != nil || v.(string) != "live" {
		t.Fatalf("live job after abandoned ones: %v, %v", v, err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d abandoned jobs executed, want 0", n)
	}
}

// TestHeatmapAbandonedRequest drives the full handler path with an
// already-canceled request context: the daemon must not render the tile
// and must account the abort as a client-closed-request error.
func TestHeatmapAbandonedRequest(t *testing.T) {
	s, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/api/heatmap?dataset=0&w=64&h=64", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	// The render never happened, so a later identical request computes it
	// fresh (miss), proving no broken entry was cached either.
	rec2 := get(t, s, "/api/heatmap?dataset=0&w=64&h=64")
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up tile = %d", rec2.Code)
	}
}
