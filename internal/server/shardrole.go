package server

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"forestview/internal/golem"
	"forestview/internal/shard"
	"forestview/internal/spell"
)

// This file is the daemon's side of the sharded compendium (DESIGN.md §4):
// the shard role serves spell partials for its dataset slice at
// /api/shard/search, and the coordinator role scatters /api/search over
// the shard backends, merging with global weight renormalization. Both
// directions run through the same sharded LRU + singleflight discipline
// as every other endpoint.

// handleShardSearch serves POST /api/shard/search: a gob shard.SearchRequest
// in, a gob spell.Partial out — dataset indexes already remapped to the
// global compendium order. Partials are cached under the canonical query
// ("partial" prefix): identical queries from one or many coordinators
// scan each dataset slice once.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a gob-encoded shard search request")
		return
	}
	var req shard.SearchRequest
	if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad shard request: "+err.Error())
		return
	}
	ids := spell.CanonicalQuery(req.Query)
	if len(ids) == 0 {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, "empty query")
		return
	}
	s.warm.touch(shard.CapabilitySearch, ids)
	var body []byte
	var disp string
	var err error
	if len(req.Owners) > 0 {
		body, disp, err = s.partialGroupSearch(r.Context(), ids, &req)
	} else {
		body, disp, err = s.partialSearch(r.Context(), ids)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if r.Context().Err() != nil {
			// The coordinator gave up on us (deadline, hedge won elsewhere,
			// or its own caller hung up); nobody reads a body.
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.writeJSONError(w, http.StatusServiceUnavailable, codeInterrupted, "partial search repeatedly interrupted, retry later")
		return
	}
	if errors.Is(err, errPartialEncode) {
		s.encodeFailures.Add(1)
		s.writeJSONError(w, http.StatusInternalServerError, codeEncodeFailed, err.Error())
		return
	}
	if err != nil {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
		return
	}
	w.Header().Set(cacheHeader, disp)
	w.Header().Set("Content-Type", shard.ContentType)
	_, _ = w.Write(body)
}

// errPartialEncode marks a gob failure while encoding a partial — a bug,
// reported as a counted 500 like every other encode failure.
var errPartialEncode = errors.New("partial encode failed")

// partialSearch computes (or serves cached) this shard's partial for a
// canonical query, already gob-encoded: the wire form is what every
// consumer of the cache wants, so a cache hit costs zero re-encoding and
// the entry's cost is its exact byte length. Leader-handover retries as
// on every compute path.
func (s *Server) partialSearch(ctx context.Context, ids []string) ([]byte, string, error) {
	st := s.shardState()
	key := "partial\x1f" + joinIDs(ids)
	wireCost := func(v any) int64 { return int64(len(v.([]byte))) + 64 }
	v, disp, err := s.cachedDoRetry(ctx, &s.statShard, key, wireCost, func() (any, error) {
		p, perr := st.engine.PartialSearchCtx(ctx, ids, spell.Options{Parallelism: s.cfg.SearchParallelism})
		if perr != nil {
			return nil, perr
		}
		// Remap local dataset indexes to the global compendium order once,
		// at compute time: cached partials are already global.
		for i := range p.Datasets {
			p.Datasets[i].Index = st.indexes[p.Datasets[i].Index]
		}
		var buf bytes.Buffer
		if eerr := gob.NewEncoder(&buf).Encode(p); eerr != nil {
			return nil, fmt.Errorf("%w: %v", errPartialEncode, eerr)
		}
		return buf.Bytes(), nil
	}, nil, nil)
	if err != nil {
		return nil, "", err
	}
	return v.([]byte), disp, nil
}

// groupSearchKey is the cache key of one group-scoped search partial. The
// handoff receiver (drain.go) inserts pushed bodies under this exact key,
// so it must stay in lockstep with partialGroupSearch.
func groupSearchKey(req *shard.SearchRequest, ids []string) string {
	return fmt.Sprintf("partial\x1f%016x\x1f%d\x1f%s\x1f%s",
		shard.Generation(req.Shards), req.Replication, joinIDs(req.Owners), joinIDs(ids))
}

// partialGroupSearch is partialSearch scoped to one ownership group of a
// replicated fleet (DESIGN.md §5): the shard recomputes the group from
// the request's (shards, replication, owners) — the same pure function
// the coordinator derived it from — and scores only the datasets it holds
// from that group, so no two replicas can both claim a dataset in one
// merge. The cache key carries the topology generation, the replication
// factor and the owner tuple: a membership change re-derives groups, and
// stale group partials become unreachable rather than wrong.
func (s *Server) partialGroupSearch(ctx context.Context, ids []string, req *shard.SearchRequest) ([]byte, string, error) {
	st := s.shardState()
	key := groupSearchKey(req, ids)
	wireCost := func(v any) int64 { return int64(len(v.([]byte))) + 64 }
	v, disp, err := s.cachedDoRetry(ctx, &s.statShard, key, wireCost, func() (any, error) {
		subset := []int{} // non-nil: an empty intersection is a valid empty partial
		for _, gi := range shard.GroupIndexes(s.cfg.ShardDatasetIDs, req.Shards, req.Replication, req.Owners) {
			if li, ok := st.local[gi]; ok {
				subset = append(subset, li)
			}
		}
		p, perr := st.engine.PartialSearchSubsetCtx(ctx, ids, subset, spell.Options{Parallelism: s.cfg.SearchParallelism})
		if perr != nil {
			return nil, perr
		}
		for i := range p.Datasets {
			p.Datasets[i].Index = st.indexes[p.Datasets[i].Index]
		}
		var buf bytes.Buffer
		if eerr := gob.NewEncoder(&buf).Encode(p); eerr != nil {
			return nil, fmt.Errorf("%w: %v", errPartialEncode, eerr)
		}
		return buf.Bytes(), nil
	}, nil, nil)
	if err != nil {
		return nil, "", err
	}
	return v.([]byte), disp, nil
}

// handleShardInfo serves GET /api/shard/v1/info: this shard's slice (size,
// gene IDs, held dataset names) plus the full boot catalog coordinators
// derive ownership groups from, and the capability list a mixed-version
// fleet negotiates with (a shard without an ontology simply doesn't list
// "enrich", and its enrich paths 404).
func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	st := s.shardState()
	held := make([]string, len(st.indexes))
	for li, gi := range st.indexes {
		held[li] = s.cfg.ShardDatasetIDs[gi]
	}
	caps := []string{shard.CapabilitySearch}
	if s.cfg.Enricher != nil {
		caps = append(caps, shard.CapabilityEnrich)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(shard.Info{
		Datasets:      st.engine.NumDatasets(),
		GeneIDs:       st.engine.GeneIDs(),
		DatasetIDs:    held,
		AllDatasetIDs: s.cfg.ShardDatasetIDs,
		Capabilities:  caps,
		Status:        s.shardStatus(),
	})
	if err != nil {
		s.encodeFailures.Add(1)
		s.writeJSONError(w, http.StatusInternalServerError, codeEncodeFailed, "info encode failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", shard.ContentType)
	_, _ = w.Write(buf.Bytes())
}

// handleShardEnrich serves POST /api/shard/v1/enrich: a gob
// shard.EnrichRequest in, a gob golem.PartialCounts out — the integer
// tallies of this request's background slice. The slice index is
// re-derived from the request's (shards, replication, owners) through the
// same pure Groups function the coordinator used, so both sides always
// agree on which gene range slice gi covers. Mounted only on shards with
// an enricher; a capability-less shard 404s, which the coordinator reads
// as "unsupported" and fails over.
func (s *Server) handleShardEnrich(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a gob-encoded shard enrich request")
		return
	}
	var req shard.EnrichRequest
	if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad shard request: "+err.Error())
		return
	}
	sel := spell.CanonicalQuery(req.Selection)
	if len(sel) == 0 {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, "empty selection")
		return
	}
	s.warm.touch(shard.CapabilityEnrich, sel)
	body, disp, err := s.partialEnrich(r.Context(), sel, &req)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if r.Context().Err() != nil {
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.writeJSONError(w, http.StatusServiceUnavailable, codeInterrupted, "partial enrichment repeatedly interrupted, retry later")
		return
	}
	if errors.Is(err, errPartialEncode) {
		s.encodeFailures.Add(1)
		s.writeJSONError(w, http.StatusInternalServerError, codeEncodeFailed, err.Error())
		return
	}
	if err != nil {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
		return
	}
	w.Header().Set(cacheHeader, disp)
	w.Header().Set("Content-Type", shard.ContentType)
	_, _ = w.Write(body)
}

// groupEnrichKey is the cache key of one background slice's tallies, kept
// in lockstep with partialEnrich for the handoff receiver's inserts.
func groupEnrichKey(req *shard.EnrichRequest, sel []string) string {
	return fmt.Sprintf("epartial\x1f%016x\x1f%d\x1f%s\x1f%s",
		shard.Generation(req.Shards), req.Replication, joinIDs(req.Owners), joinIDs(sel))
}

// partialEnrich computes (or serves cached) the slice tallies for one
// canonical selection, already gob-encoded like the search partials. The
// cache key carries the topology generation, replication factor and owner
// tuple: after a membership change the group list re-derives and stale
// slice tallies become unreachable rather than wrong.
func (s *Server) partialEnrich(ctx context.Context, sel []string, req *shard.EnrichRequest) ([]byte, string, error) {
	key := groupEnrichKey(req, sel)
	wireCost := func(v any) int64 { return int64(len(v.([]byte))) + 64 }
	v, disp, err := s.cachedDoRetry(ctx, &s.statShard, key, wireCost, func() (any, error) {
		// An ownerless request asks for the whole universe as slice 0 of 1
		// (a single-shard or testing topology).
		gi, slices := 0, 1
		if len(req.Owners) > 0 {
			groups := shard.Groups(s.cfg.ShardDatasetIDs, req.Shards, req.Replication)
			gi = shard.GroupIndex(groups, req.Owners)
			if gi < 0 {
				return nil, fmt.Errorf("owner tuple %v is not an ownership group of this catalog", req.Owners)
			}
			slices = len(groups)
		}
		p, perr := s.cfg.Enricher.PartialAnalyzeCtx(ctx, sel, gi, slices)
		if perr != nil {
			return nil, perr
		}
		var buf bytes.Buffer
		if eerr := gob.NewEncoder(&buf).Encode(p); eerr != nil {
			return nil, fmt.Errorf("%w: %v", errPartialEncode, eerr)
		}
		return buf.Bytes(), nil
	}, nil, nil)
	if err != nil {
		return nil, "", err
	}
	return v.([]byte), disp, nil
}

// handleShardEnrichCatalog serves GET /api/shard/v1/enrich/catalog: the
// term catalog (fingerprint, background size, term ids/names) a
// coordinator merges partial tallies under. Fetched once per membership
// generation, so no caching is needed here.
func (s *Server) handleShardEnrichCatalog(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.cfg.Enricher.Catalog()); err != nil {
		s.encodeFailures.Add(1)
		s.writeJSONError(w, http.StatusInternalServerError, codeEncodeFailed, "catalog encode failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", shard.ContentType)
	_, _ = w.Write(buf.Bytes())
}

// scatterValue is the cached unit of the coordinator search path: the
// merged result plus the scatter metadata it was merged under.
type scatterValue struct {
	res  *spell.Result
	meta shard.Meta
}

func scatterCost(v any) int64 { return searchCost(v.(*scatterValue).res) + 64 }

// scatterSearch is searchWith's coordinator branch: scatter over the
// shard backends, merge with global renormalization, and cache the merged
// result keyed by canonical query + shard-set generation — a coordinator
// restarted against a different topology can never replay merges of the
// old one. Degraded merges (a shard missing) are served but never cached:
// cached, they would keep answering for the survivor subset long after
// the shard recovered. Coalescing still holds — concurrent identical
// queries scatter once — and a flight that died of its leader's hangup is
// retried under our live context, like every other compute path.
func (s *Server) scatterSearch(ctx context.Context, ep *endpointStats, ids []string, opt spell.Options) (*spell.Result, *shard.Meta, string, error) {
	key := fmt.Sprintf("scatter\x1f%016x\x1f%d\x1f%t\x1f%t\x1f%s",
		s.cfg.Scatter.Generation(), opt.MaxGenes, opt.IncludeQuery, opt.UniformWeights, joinIDs(ids))
	v, disp, err := s.cachedDoRetry(ctx, ep, key, scatterCost, func() (any, error) {
		res, meta, serr := s.cfg.Scatter.SearchCtx(ctx, ids, opt)
		if serr != nil {
			return nil, serr
		}
		return &scatterValue{res: res, meta: meta}, nil
	}, func(v any) bool { return !v.(*scatterValue).meta.Degraded }, nil)
	if err != nil {
		return nil, nil, disp, err
	}
	sv := v.(*scatterValue)
	meta := sv.meta
	return sv.res, &meta, disp, nil
}

// scatterSearchResponse is the /api/search body in coordinator mode: the
// usual result plus the explicit degraded flag and shard tally.
type scatterSearchResponse struct {
	*spell.Result
	shard.Meta
}

// enrichScatterValue is the cached unit of the coordinator enrich path.
type enrichScatterValue struct {
	res  *shard.EnrichResult
	meta shard.Meta
}

func enrichScatterCost(v any) int64 {
	sv := v.(*enrichScatterValue)
	n := enrichCost(sv.res.Results) + 128
	for g := range sv.res.InBackground {
		n += int64(len(g)) + 24
	}
	return n
}

// scatterEnrich is handleEnrich's coordinator compute path: scatter the
// selection over the fleet's background slices, merge the exact tallies,
// and cache the merged table keyed by the result-shaping options, the
// canonical selection and the shard-set generation. Degraded merges —
// correct analyses over the covered background — are served but never
// cached, exactly like degraded search merges: cached, they would keep
// answering for the survivor subset long after the slice recovered.
func (s *Server) scatterEnrich(ctx context.Context, genes []string, opt golem.Options) (*shard.EnrichResult, *shard.Meta, string, error) {
	sel := spell.CanonicalQuery(genes)
	key := fmt.Sprintf("escatter\x1f%016x\x1f%d\x1f%g\x1f%s",
		s.cfg.Scatter.Generation(), opt.MinSelected, opt.MaxPValue, joinIDs(sel))
	v, disp, err := s.cachedDoRetry(ctx, &s.statEnrich, key, enrichScatterCost, func() (any, error) {
		res, meta, serr := s.cfg.Scatter.EnrichCtx(ctx, sel, opt)
		if serr != nil {
			return nil, serr
		}
		return &enrichScatterValue{res: res, meta: meta}, nil
	}, func(v any) bool { return !v.(*enrichScatterValue).meta.Degraded }, nil)
	if err != nil {
		return nil, nil, disp, err
	}
	sv := v.(*enrichScatterValue)
	meta := sv.meta
	return sv.res, &meta, disp, nil
}

// fleetState is the /api/admin/fleet body: the live membership and the
// topology identity a client needs to reason about it.
type fleetState struct {
	Shards      []string `json:"shards"`
	Generation  string   `json:"generation"`
	Replication int      `json:"replication"`
	Bumps       int64    `json:"membership_bumps"`
	Draining    []string `json:"draining,omitempty"`
}

// fleetRequest is the POST /api/admin/fleet body.
type fleetRequest struct {
	Action string `json:"action"` // "add", "remove", "drain" or "undrain"
	Shard  string `json:"shard"`
}

// fleetAuthorized checks the fleet admin token (Authorization: Bearer or
// X-Fleet-Token) in constant time. An empty configured token refuses
// everything: membership mutation is opt-in, never open by default.
func (s *Server) fleetAuthorized(r *http.Request) bool {
	if s.cfg.FleetToken == "" {
		return false
	}
	tok := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if tok == "" || tok == r.Header.Get("Authorization") {
		tok = r.Header.Get("X-Fleet-Token")
	}
	return subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.FleetToken)) == 1
}

// handleFleet serves /api/admin/fleet on a coordinator: GET reports the
// live membership, POST {"action":"add"|"remove","shard":"..."} mutates
// it at runtime. A successful mutation bumps the membership generation,
// which re-derives ownership groups on the next scatter and invalidates
// every topology-keyed cache entry; a removed shard stops receiving
// scatters immediately and can drain out through its SIGTERM handler.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if !s.fleetAuthorized(r) {
		s.writeJSONError(w, http.StatusForbidden, codeForbidden, "fleet admin token required")
		return
	}
	m := s.cfg.Scatter.Membership()
	state := func(shards []string, gen uint64) fleetState {
		return fleetState{
			Shards:      shards,
			Generation:  fmt.Sprintf("%016x", gen),
			Replication: s.cfg.Scatter.Replication(),
			Bumps:       m.Bumps(),
			Draining:    s.cfg.Scatter.DrainingShards(),
		}
	}
	switch r.Method {
	case http.MethodGet:
		shards, gen := m.Snapshot()
		s.writeJSON(w, http.StatusOK, state(shards, gen))
	case http.MethodPost:
		var req fleetRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad fleet request: "+err.Error())
			return
		}
		var (
			shards []string
			gen    uint64
			err    error
		)
		switch req.Action {
		case "add":
			shards, gen, err = m.Add(req.Shard)
		case "remove":
			// Removal also clears any drain mark: the identity may return
			// later as a fresh, healthy member.
			shards, gen, err = m.Remove(req.Shard)
			if err == nil {
				s.cfg.Scatter.SetDraining(req.Shard, false)
			}
		case "drain", "undrain":
			// Demote (or restore) a member in replica ordering without a
			// membership change: no generation bump, caches stay valid, the
			// shard just stops being anyone's first choice.
			s.cfg.Scatter.SetDraining(req.Shard, req.Action == "drain")
			shards, gen = m.Snapshot()
		default:
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, `action must be "add", "remove", "drain" or "undrain"`)
			return
		}
		if err != nil {
			s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, state(shards, gen))
	default:
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET the fleet state or POST a membership change")
	}
}
