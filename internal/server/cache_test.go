package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1, 100)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2, 120)
	v, _ = c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("replacement not visible: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	if c.Bytes() != 120 {
		t.Fatalf("Bytes = %d, want 120", c.Bytes())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// One shard's budget is maxBytes/numShards; craft keys that land in
	// the same shard by brute force.
	c := NewCache(numShards * 300) // 300 bytes per shard
	shard0 := c.shard("anchor")
	keys := []string{"anchor"}
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == shard0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, k, 100) // fills the shard exactly
	}
	// Touch the oldest so the middle key becomes LRU.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("anchor missing before eviction")
	}
	c.Put(keys[3], "new", 100)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("new entry missing")
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := NewCache(numShards * 100)
	c.Put("huge", "x", 101) // bigger than one shard
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d after rejected insert", c.Bytes())
	}
}

// TestCacheOversizedReplacementDropsOldValue: replacing a cached value
// with one too large to cache must not leave the old value behind — Put is
// a replacement, so a reader finding the old entry would see stale data.
func TestCacheOversizedReplacementDropsOldValue(t *testing.T) {
	c := NewCache(numShards * 100)
	c.Put("k", "old", 40)
	if v, ok := c.Get("k"); !ok || v.(string) != "old" {
		t.Fatalf("seed entry missing: %v, %v", v, ok)
	}
	c.Put("k", "new-but-huge", 101) // exceeds the 100-byte shard budget
	if v, ok := c.Get("k"); ok {
		t.Fatalf("stale value %v survived an oversized replacement", v)
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatalf("cache not empty after drop: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

// TestCachePrefixOccupancy: per-prefix entry/byte accounting must stay
// consistent through inserts, replacements, evictions and oversized
// drops, and sum to the cache totals.
func TestCachePrefixOccupancy(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put("search\x1fq1", "a", 100)
	c.Put("search\x1fq2", "b", 50)
	c.Put("tile\x1f0\x1f0", "png", 300)
	c.Put("bare-key", "x", 10)

	p := c.Prefixes()
	if got := p["search"]; got.Entries != 2 || got.Bytes != 150 {
		t.Fatalf("search prefix: %+v", got)
	}
	if got := p["tile"]; got.Entries != 1 || got.Bytes != 300 {
		t.Fatalf("tile prefix: %+v", got)
	}
	if got := p["bare-key"]; got.Entries != 1 || got.Bytes != 10 {
		t.Fatalf("unseparated key prefix: %+v", got)
	}

	// Replacement adjusts bytes, not entries.
	c.Put("search\x1fq1", "a2", 120)
	if got := c.Prefixes()["search"]; got.Entries != 2 || got.Bytes != 170 {
		t.Fatalf("after replace: %+v", got)
	}

	// The per-prefix view always sums to the cache totals.
	var entries int
	var bytes int64
	for _, occ := range c.Prefixes() {
		entries += occ.Entries
		bytes += occ.Bytes
	}
	if entries != c.Len() || bytes != c.Bytes() {
		t.Fatalf("prefix sums %d/%d, cache totals %d/%d", entries, bytes, c.Len(), c.Bytes())
	}
}

// TestCachePrefixEvictionAccounting: evicted and dropped entries leave
// the prefix map (an empty prefix disappears entirely).
func TestCachePrefixEvictionAccounting(t *testing.T) {
	c := NewCache(numShards * 300)
	shard0 := c.shard("tile\x1fanchor")
	keys := []string{"tile\x1fanchor"}
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("enrich\x1fk%d", i)
		if c.shard(k) == shard0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, k, 100)
	}
	c.Put(keys[3], "overflow", 100) // evicts the LRU tile entry
	p := c.Prefixes()
	if _, alive := p["tile"]; alive {
		t.Fatalf("evicted-out prefix still accounted: %+v", p)
	}
	if got := p["enrich"]; got.Entries != 3 || got.Bytes != 300 {
		t.Fatalf("enrich prefix after eviction: %+v", got)
	}
	// Oversized replacement removes the old entry's accounting too.
	c.Put(keys[1], "huge", numShards*300+1)
	if got := c.Prefixes()["enrich"]; got.Entries != 2 || got.Bytes != 200 {
		t.Fatalf("enrich prefix after oversized drop: %+v", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%37)
				c.Put(k, g, 50)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 37 {
		t.Fatalf("Len = %d, want 37", c.Len())
	}
}
