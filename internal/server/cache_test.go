package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1, 100)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2, 120)
	v, _ = c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("replacement not visible: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	if c.Bytes() != 120 {
		t.Fatalf("Bytes = %d, want 120", c.Bytes())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// One shard's budget is maxBytes/numShards; craft keys that land in
	// the same shard by brute force.
	c := NewCache(numShards * 300) // 300 bytes per shard
	shard0 := c.shard("anchor")
	keys := []string{"anchor"}
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == shard0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, k, 100) // fills the shard exactly
	}
	// Touch the oldest so the middle key becomes LRU.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("anchor missing before eviction")
	}
	c.Put(keys[3], "new", 100)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("new entry missing")
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := NewCache(numShards * 100)
	c.Put("huge", "x", 101) // bigger than one shard
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d after rejected insert", c.Bytes())
	}
}

// TestCacheOversizedReplacementDropsOldValue: replacing a cached value
// with one too large to cache must not leave the old value behind — Put is
// a replacement, so a reader finding the old entry would see stale data.
func TestCacheOversizedReplacementDropsOldValue(t *testing.T) {
	c := NewCache(numShards * 100)
	c.Put("k", "old", 40)
	if v, ok := c.Get("k"); !ok || v.(string) != "old" {
		t.Fatalf("seed entry missing: %v, %v", v, ok)
	}
	c.Put("k", "new-but-huge", 101) // exceeds the 100-byte shard budget
	if v, ok := c.Get("k"); ok {
		t.Fatalf("stale value %v survived an oversized replacement", v)
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatalf("cache not empty after drop: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%37)
				c.Put(k, g, 50)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 37 {
		t.Fatalf("Len = %d, want 37", c.Len())
	}
}
