package server

import (
	"fmt"
	"sync"
)

// flightGroup implements request coalescing (the singleflight pattern):
// when many goroutines ask for the same key at once, exactly one executes
// the computation and the rest block until it finishes and share its
// result. Together with the cache this gives the daemon its concurrency
// discipline — a burst of identical queries costs one SPELL search, one
// enrichment pass or one tile render, never N.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do executes fn under key, coalescing concurrent duplicate calls. joined
// reports whether this caller piggybacked on another goroutine's in-flight
// computation instead of running fn itself.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, joined bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		// Cleanup is deferred so a panicking fn cannot wedge the key and
		// leak every future caller onto a flight that never completes. The
		// panic itself becomes an error shared by leader and joiners alike.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("server: query computation panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			c.wg.Done()
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}
