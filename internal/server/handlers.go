package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image/color"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"forestview/internal/core"
	"forestview/internal/golem"
	"forestview/internal/render"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/spellweb"
)

var errNoEnricher = errors.New("server: no ontology loaded; /api/enrich is unavailable")

// Stable machine-readable error codes, carried in every /api/* error
// envelope. Clients branch on the code; the message is for humans and may
// change freely. Adding a code is fine, renaming one is a breaking change.
const (
	codeMissingParameter   = "missing_parameter"
	codeBadParameter       = "bad_parameter"
	codeSingleGeneQuery    = "single_gene_query"
	codeNoSelectionGenes   = "no_selection_genes"
	codeUnprocessable      = "unprocessable"
	codeUnknownDataset     = "unknown_dataset"
	codeNoOntology         = "no_ontology"
	codeAllShardsFailed    = "all_shards_failed"
	codeDegradedUnresolved = "degraded_unresolved"
	codeInterrupted        = "interrupted"
	codeSaturated          = "saturated"
	codeForbidden          = "forbidden"
	codeMethodNotAllowed   = "method_not_allowed"
	codeInternal           = "internal"
	codeEncodeFailed       = "encode_failed"
)

// errorEnvelope is the uniform error body of every /api/* endpoint:
// {"error": {"code": "...", "message": "..."}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON encodes v with the right Content-Type. The body is encoded
// before the status line is committed: an encode failure (a NaN float is
// the classic) becomes a logged, counted 500 with an error body instead of
// the silent empty 200 it used to be.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.encodeFailures.Add(1)
		log.Printf("server: response encode failed (intended status %d): %v", status, err)
		// Marshaling the envelope of string fields cannot fail (unlike Go's
		// %q quoting, whose \x escapes are not valid JSON), so the error
		// body is always parseable.
		body, _ := json.Marshal(errorEnvelope{Error: errorBody{
			Code:    codeEncodeFailed,
			Message: "response encoding failed: " + err.Error(),
		}})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) writeJSONError(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

// handleSearch serves /api/search?q=GENE1,GENE2[&top=N]: the SPELL ranked
// dataset and gene lists as JSON.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ids := spellweb.ParseQuery(r.URL.Query().Get("q"))
	if len(ids) == 0 {
		s.writeJSONError(w, http.StatusBadRequest, codeMissingParameter, "missing q parameter (comma separated gene IDs)")
		return
	}
	top := 0
	if t := r.URL.Query().Get("top"); t != "" {
		v, err := strconv.Atoi(t)
		if err != nil || v < 1 {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "top must be a positive integer")
			return
		}
		top = v
	}
	if len(spell.CanonicalQuery(ids)) < 2 {
		// A one-gene query has no query pairs, so every dataset's coherence
		// is NaN — unencodable and meaningless. Reject up front rather than
		// serve a weightless ranking (this used to escape as an empty 200
		// when the NaN killed the JSON encoder silently).
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeSingleGeneQuery, spell.MsgSingleGeneQuery)
		return
	}
	res, meta, disp, err := s.searchWith(r.Context(), &s.statSearch, ids, spell.Options{MaxGenes: top, IncludeQuery: true})
	switch {
	case errors.Is(err, shard.ErrDegradedUnresolved):
		// A degraded scatter whose survivors can't resolve the query genes
		// at all. Retryable, so 503 — a query error it is not.
		s.statSearch.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeDegradedUnresolved, err.Error())
		return
	case errors.Is(err, shard.ErrAllShardsFailed):
		// Full outage across the shard set; equally retryable.
		s.statSearch.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeAllShardsFailed, err.Error())
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.statSearch.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeInterrupted, "search repeatedly interrupted, retry later")
		return
	case err != nil:
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
		return
	}
	if disp != "" {
		w.Header().Set(cacheHeader, disp)
	}
	if meta != nil {
		// Sharded answers always disclose how much of the compendium they
		// cover; a degraded merge is a correct ranking over the surviving
		// shards, flagged rather than failed.
		w.Header().Set("X-Forestview-Shards-Ok", strconv.Itoa(meta.ShardsOK))
		w.Header().Set("X-Forestview-Shards-Total", strconv.Itoa(meta.ShardsTotal))
		w.Header().Set("X-Forestview-Degraded", strconv.FormatBool(meta.Degraded))
		s.writeJSON(w, http.StatusOK, scatterSearchResponse{Result: res, Meta: *meta})
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// enrichResponse is the /api/enrich body.
type enrichResponse struct {
	// Selection is the canonicalized gene list actually tested — requested
	// genes outside the background are dropped, mirroring what Analyze
	// tests, and reported in Ignored.
	Selection []string `json:"selection"`
	// Ignored lists requested genes absent from the background.
	Ignored []string `json:"ignored,omitempty"`
	// Background is N, the universe size.
	Background int `json:"background"`
	// Results are ordered by ascending p-value.
	Results []golem.Enrichment `json:"results"`
}

// handleEnrich serves /api/enrich?genes=G1,G2[&maxp=0.05][&min=2]: the
// GOLEM enrichment table for a gene list as JSON. On a coordinator the
// analysis scatters over the fleet's background slices and merges exactly
// (golem.MergeCounts); the body then also carries the degraded flag and
// shard/group tallies, mirroring /api/search.
func (s *Server) handleEnrich(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Enricher == nil && s.cfg.Scatter == nil {
		s.writeJSONError(w, http.StatusServiceUnavailable, codeNoOntology, errNoEnricher.Error())
		return
	}
	genes := spellweb.ParseQuery(r.URL.Query().Get("genes"))
	if len(genes) == 0 {
		s.writeJSONError(w, http.StatusBadRequest, codeMissingParameter, "missing genes parameter (comma separated gene IDs)")
		return
	}
	opt := golem.Options{MinSelected: 1}
	if v := r.URL.Query().Get("maxp"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "maxp must be in [0, 1]")
			return
		}
		opt.MaxPValue = p
	}
	if v := r.URL.Query().Get("min"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 1 {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "min must be a positive integer")
			return
		}
		opt.MinSelected = m
	}
	if s.cfg.Scatter != nil {
		s.serveScatterEnrich(w, r, genes, opt)
		return
	}
	results, disp, err := s.enrichCtx(r.Context(), genes, opt)
	if err != nil {
		s.writeEnrichError(w, r, err)
		return
	}
	var tested, ignored []string
	for _, g := range spell.CanonicalQuery(genes) {
		if s.cfg.Enricher.InBackground(g) {
			tested = append(tested, g)
		} else {
			ignored = append(ignored, g)
		}
	}
	if disp != "" {
		w.Header().Set(cacheHeader, disp)
	}
	s.writeJSON(w, http.StatusOK, enrichResponse{
		Selection:  tested,
		Ignored:    ignored,
		Background: s.cfg.Enricher.BackgroundSize(),
		Results:    results,
	})
}

// writeEnrichError maps an enrichment failure — local kernel or fleet
// scatter alike — onto the error envelope. Both paths share one contract:
// retryable conditions are 503s with a condition-specific code, selections
// the background doesn't know are 422 no_selection_genes.
func (s *Server) writeEnrichError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			// Our client hung up before the analysis finished; the kernel
			// stopped mid-scan and nobody is listening for a body. Keep the
			// abort visible in /api/stats as a 499.
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		// The context error leaked from other requests' flights (the compute
		// path exhausted its retries against flights whose leaders kept
		// disconnecting). Shed so the client retries, counted like every
		// other shed.
		s.statEnrich.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeInterrupted, "enrichment repeatedly interrupted, retry later")
	case errors.Is(err, shard.ErrNoEnrichment):
		// The fleet has no capable shard: same condition as a single daemon
		// booted without an ontology, same code.
		s.statEnrich.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeNoOntology, err.Error())
	case errors.Is(err, shard.ErrDegradedUnresolved):
		s.statEnrich.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeDegradedUnresolved, err.Error())
	case errors.Is(err, shard.ErrAllShardsFailed):
		s.statEnrich.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeAllShardsFailed, err.Error())
	case errors.Is(err, golem.ErrNoSelection):
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeNoSelectionGenes, err.Error())
	default:
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
	}
}

// scatterEnrichResponse is the /api/enrich body in coordinator mode: the
// usual table plus the explicit degraded flag and shard/group tallies.
type scatterEnrichResponse struct {
	enrichResponse
	shard.Meta
}

// serveScatterEnrich is handleEnrich's coordinator tail: scatter the
// selection over the fleet, merge exactly, disclose coverage in headers
// and body exactly like the search scatter does.
func (s *Server) serveScatterEnrich(w http.ResponseWriter, r *http.Request, genes []string, opt golem.Options) {
	res, meta, disp, err := s.scatterEnrich(r.Context(), genes, opt)
	if meta != nil {
		w.Header().Set("X-Forestview-Shards-Ok", strconv.Itoa(meta.ShardsOK))
		w.Header().Set("X-Forestview-Shards-Total", strconv.Itoa(meta.ShardsTotal))
		w.Header().Set("X-Forestview-Degraded", strconv.FormatBool(meta.Degraded))
	}
	if err != nil {
		s.writeEnrichError(w, r, err)
		return
	}
	var tested, ignored []string
	for g, known := range res.InBackground {
		if known {
			tested = append(tested, g)
		} else {
			ignored = append(ignored, g)
		}
	}
	sort.Strings(tested)
	sort.Strings(ignored)
	if disp != "" {
		w.Header().Set(cacheHeader, disp)
	}
	s.writeJSON(w, http.StatusOK, scatterEnrichResponse{
		enrichResponse: enrichResponse{
			Selection:  tested,
			Ignored:    ignored,
			Background: res.Background,
			Results:    res.Results,
		},
		Meta: *meta,
	})
}

// tileParams are the canonicalized /api/heatmap parameters; their string
// form is the cache key. gen is the pane's tree-cache generation: replacing
// a dataset bumps it, so every cached tile of the old data becomes
// unreachable without a cache sweep. level is the resolved pyramid level
// (auto-selection happens before the key is formed, so an auto request and
// its explicit-level twin share a cache entry).
type tileParams struct {
	dsIndex  int
	gen      uint64
	from, to int // display-order row range [from, to)
	w, h     int
	treeW    int // gene dendrogram strip width, 0 = no tree
	atreeH   int // array (column) dendrogram strip height, 0 = no strip
	level    int // pyramid level: rows aggregate in runs of 2^level
	cmap     render.ColorMap
	limit    float64
}

func (p tileParams) key() string {
	return fmt.Sprintf("tile\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%d\x1f%g",
		p.dsIndex, p.gen, p.from, p.to, p.w, p.h, p.treeW, p.atreeH, p.level, p.cmap, p.limit)
}

// autoLevel picks the coarsest pyramid level that still gives every pixel
// row at least one slab row: the largest k < levels with span/2^k >= h.
// A zoomed-in request (span < h) stays at level 0.
func autoLevel(span, h, levels int) int {
	lvl := 0
	for lvl+1 < levels && span>>(uint(lvl)+1) >= h {
		lvl++
	}
	return lvl
}

// handleHeatmap serves /api/heatmap?dataset=REF[&rows=FROM:TO][&w=][&h=]
// [&cmap=][&limit=][&tree=W][&atree=H][&level=K|auto]: a PNG heatmap tile
// of the clustered dataset, rows in dendrogram display order, optionally
// with a W-pixel gene dendrogram strip on the left and an H-pixel array
// (column) dendrogram strip on top. Zoomed-out tiles serve from the pane's
// tile pyramid: level K collapses runs of 2^K display rows into
// precomputed mean-aggregate slab rows, so the render walks rows/2^K slab
// rows instead of every raw row; level defaults to auto-selection from the
// requested row span vs the pixel height (X-Forestview-Level discloses the
// resolved level). The clustered tree comes from the per-dataset tree
// cache — a cold dataset is clustered exactly once no matter how many tiles
// ask for it concurrently. Tiles render on the bounded worker pool; a
// saturated pool sheds the request with 503. Every served tile feeds the
// speculative prefetcher (when enabled), which renders the predicted
// pan/zoom neighbours in the background.
func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ref := q.Get("dataset")
	if ref == "" {
		s.writeJSONError(w, http.StatusBadRequest, codeMissingParameter, "missing dataset parameter (index or name); see /api/stats for the loaded compendium")
		return
	}
	dsIndex, ok := s.lookupDataset(ref)
	if !ok {
		s.writeJSONError(w, http.StatusNotFound, codeUnknownDataset, fmt.Sprintf("unknown dataset %q (%d loaded)", ref, s.NumPanes()))
		return
	}
	// Parameter validation runs before the (possibly expensive) tree
	// lookup, off the pane's row count alone.
	nRows, _ := s.trees.rows(dsIndex)
	p := tileParams{dsIndex: dsIndex, from: 0, to: nRows, w: 512, h: 512, cmap: render.GreenBlackRed, limit: 2}

	if v := q.Get("rows"); v != "" {
		from, to, ok := parseRowRange(v)
		if !ok {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "rows must be FROM:TO with 0 <= FROM < TO")
			return
		}
		if to > nRows {
			to = nRows
		}
		if from >= nRows {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, fmt.Sprintf("rows out of range: dataset has %d rows", nRows))
			return
		}
		p.from, p.to = from, to
	}
	for _, dim := range []struct {
		name string
		dst  *int
	}{{"w", &p.w}, {"h", &p.h}} {
		if v := q.Get(dim.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > s.cfg.MaxTileDim {
				s.writeJSONError(w, http.StatusBadRequest, codeBadParameter,
					fmt.Sprintf("%s must be in [1, %d]", dim.name, s.cfg.MaxTileDim))
				return
			}
			*dim.dst = n
		}
	}
	if v := q.Get("cmap"); v != "" {
		cm, ok := parseColorMap(v)
		if !ok {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "cmap must be one of green-black-red, blue-black-yellow, grayscale")
			return
		}
		p.cmap = cm
	}
	if v := q.Get("limit"); v != "" {
		lim, err := strconv.ParseFloat(v, 64)
		if err != nil || lim <= 0 {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "limit must be a positive number")
			return
		}
		p.limit = lim
	}
	if v := q.Get("tree"); v != "" {
		tw, err := strconv.Atoi(v)
		if err != nil || tw < 0 || tw >= p.w {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "tree must be a dendrogram width in [0, w)")
			return
		}
		if tw > 0 && (p.from != 0 || p.to != nRows) {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "tree requires the full row range (the dendrogram spans every row)")
			return
		}
		p.treeW = tw
	}
	if v := q.Get("atree"); v != "" {
		ah, err := strconv.Atoi(v)
		if err != nil || ah < 0 || ah >= p.h {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "atree must be a dendrogram height in [0, h)")
			return
		}
		p.atreeH = ah
	}
	// level validates off the pane's row count alone, like everything above;
	// auto-selection resolves after the tree fetch, against the row range
	// that actually renders.
	levelAuto := true
	if v := q.Get("level"); v != "" && v != "auto" {
		lvl, err := strconv.Atoi(v)
		if err != nil || lvl < 0 || lvl >= core.NumPyramidLevels(nRows) {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter,
				fmt.Sprintf("level must be \"auto\" or an integer in [0, %d] for this dataset", core.NumPyramidLevels(nRows)-1))
			return
		}
		p.level, levelAuto = lvl, false
	}

	cd, gen, err := s.trees.get(r.Context(), dsIndex)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Only our own hangup surfaces here (a dead leader's flight is
			// retried while our context lives).
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		s.writeJSONError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	p.gen = gen
	if got := len(cd.DisplayOrder); got != nRows {
		// ReplaceDataset swapped the pane between validation and the tree
		// fetch; re-validate the row range against the tree we actually
		// got, so a stale-validated tile can't render (and be cached under
		// the new generation) with the wrong row space.
		if p.to == nRows || p.to > got {
			p.to = got
		}
		if p.from >= p.to {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, fmt.Sprintf("rows out of range: dataset has %d rows", got))
			return
		}
		if p.treeW > 0 && (p.from != 0 || p.to != got) {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "tree requires the full row range (the dendrogram spans every row)")
			return
		}
		if !levelAuto && p.level >= core.NumPyramidLevels(got) {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter,
				fmt.Sprintf("level must be \"auto\" or an integer in [0, %d] for this dataset", core.NumPyramidLevels(got)-1))
			return
		}
	}
	if p.treeW > 0 && cd.GeneTree == nil {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, "dataset has no gene tree to draw")
		return
	}
	if p.atreeH > 0 && cd.ArrayTree == nil {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable,
			"dataset has no array tree to draw (cluster it with ClusterArrays, or start the daemon with -cluster-arrays)")
		return
	}
	nPaneRows := len(cd.DisplayOrder)
	if levelAuto {
		p.level = autoLevel(p.to-p.from, p.h, core.NumPyramidLevels(nPaneRows))
	}

	png, disp, err := s.renderTile(r.Context(), cd, p, &s.statHeatmap)
	if errors.Is(err, ErrSaturated) {
		s.statHeatmap.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeSaturated, "render pool saturated, retry later")
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if r.Context().Err() != nil {
			// Our client hung up (or timed out) before the tile rendered;
			// nobody is listening for a body. 499 is the de-facto status
			// for "client closed request", and it keeps the abort visible
			// as an error in /api/stats.
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		// Our client is still live: the context error leaked from other
		// requests' flights (renderTile exhausted its retries against
		// flights whose leaders kept disconnecting). Shed like saturation
		// so the client retries, rather than misreporting a hangup.
		s.statHeatmap.rejected.Add(1)
		s.writeJSONError(w, http.StatusServiceUnavailable, codeInterrupted, "render repeatedly interrupted, retry later")
		return
	}
	if err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	if s.prefetch != nil {
		// A cache hit on a tile speculation rendered (and no foreground
		// request has touched since) is disclosed as "prefetched".
		if disp == dispHit && s.prefetch.claim(p.key()) {
			disp = dispPrefetched
		}
		// Every served tile predicts the next viewport motion.
		s.prefetch.speculate(p, nPaneRows, core.NumPyramidLevels(nPaneRows))
	}
	if disp != "" {
		w.Header().Set(cacheHeader, disp)
	}
	w.Header().Set("X-Forestview-Level", strconv.Itoa(p.level))
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("Content-Length", strconv.Itoa(len(png)))
	_, _ = w.Write(png)
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request"; net/http never sends it to anyone (the client is gone) but the
// per-endpoint error accounting sees it.
const statusClientClosedRequest = 499

// renderTile produces the PNG bytes for p, cached and coalesced like every
// other result; only the actual rasterization runs on the worker pool, so
// cache hits bypass the pool entirely. The request context rides through
// the coalescing layer into Pool.Run, so a tile whose client has hung up
// stops waiting immediately and is skipped if still queued. Because
// coalesced followers share the leader's flight — and therefore the
// leader's context — a follower whose own context is still live retries
// when a flight dies of someone else's cancellation, becoming the new
// leader instead of failing an innocent request. ep receives the
// cache/compute accounting: the foreground handler passes statHeatmap, the
// prefetcher its own stats, so speculation never skews request counters.
func (s *Server) renderTile(ctx context.Context, cd *core.ClusteredDataset, p tileParams, ep *endpointStats) ([]byte, string, error) {
	key := p.key()
	tileCost := func(v any) int64 { return int64(len(v.([]byte))) + 64 }
	v, disp, err := s.cachedDoRetry(ctx, ep, key, tileCost, func() (any, error) {
		return s.pool.Run(ctx, func() (any, error) {
			png, err := s.rasterizeTile(cd, p)
			if err != nil {
				return nil, err
			}
			// Fill the cache from inside the job too: a worker only
			// learns its submitter hung up when the job is already
			// running, so a render abandoned mid-rasterization still
			// completes — this keeps the finished tile for the
			// retrying follower (or the next request) instead of
			// discarding it with the canceled wait. cachedDo's own
			// Put after a live wait is an idempotent overwrite.
			s.cache.Put(key, png, tileCost(png))
			return png, nil
		})
	}, nil, nil)
	if err != nil {
		return nil, disp, err
	}
	return v.([]byte), disp, nil
}

// rasterizeTile draws one tile: optional array-tree strip on top, optional
// gene-tree strip on the left, and the expression matrix — from the raw
// display rows at level 0 (the pre-pyramid path, byte-for-byte), or from
// the pane's precomputed pyramid slab at level >= 1 (float32 slabs when the
// server is configured for them).
func (s *Server) rasterizeTile(cd *core.ClusteredDataset, p tileParams) ([]byte, error) {
	c := render.NewCanvas(p.w, p.h, color.RGBA{A: 255})
	fg := color.RGBA{R: 180, G: 180, B: 180, A: 255}
	hx, hy := 0, 0
	var colOrder []int
	if p.atreeH > 0 {
		// The column dendrogram spans the heatmap's width (to the right of
		// any gene-tree strip); the heatmap below renders its columns in
		// the same leaf order so the brackets line up.
		colOrder = cd.ArrayOrder
		render.RenderDendrogramOrdered(c,
			render.Rect{X: p.treeW, Y: 0, W: p.w - p.treeW, H: p.atreeH},
			cd.ArrayTree, cd.ArrayOrder, render.AboveColumns, fg)
		hy = p.atreeH
	}
	if p.treeW > 0 {
		// The cached tree drawn against the pane's display
		// order, so brackets line up with the heatmap rows even
		// under an optimized leaf orientation.
		render.RenderDendrogramOrdered(c,
			render.Rect{X: 0, Y: hy, W: p.treeW, H: p.h - hy},
			cd.GeneTree, cd.DisplayOrder, render.LeftOfRows, fg)
		hx = p.treeW
	}
	hr := render.Rect{X: hx, Y: hy, W: p.w - hx, H: p.h - hy}
	opt := render.HeatmapOptions{ColorMap: p.cmap, Limit: p.limit, CellBorder: true, ColOrder: colOrder}
	if p.level == 0 && !s.cfg.Float32Slabs {
		render.RenderHeatmap(c, hr, cd.RowsInDisplayRange(p.from, p.to), opt)
	} else {
		slab := cd.Pyramid(core.PyramidOptions{Float32: s.cfg.Float32Slabs}).Level(p.level)
		lo := p.from >> uint(p.level)
		hi := (p.to + 1<<uint(p.level) - 1) >> uint(p.level)
		if slab.F32 != nil {
			render.RenderHeatmapF32(c, hr, slab.F32[lo:hi], opt)
		} else {
			render.RenderHeatmap(c, hr, slab.F64[lo:hi], opt)
		}
	}
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// parseRowRange parses a strict "FROM:TO" display-row range; unlike
// Sscanf it rejects trailing garbage.
func parseRowRange(v string) (from, to int, ok bool) {
	lo, hi, found := strings.Cut(v, ":")
	if !found {
		return 0, 0, false
	}
	from, err1 := strconv.Atoi(lo)
	to, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || from < 0 || to <= from {
		return 0, 0, false
	}
	return from, to, true
}

// parseColorMap accepts the canonical names plus short aliases.
func parseColorMap(v string) (render.ColorMap, bool) {
	switch v {
	case "green-black-red", "green", "rg":
		return render.GreenBlackRed, true
	case "blue-black-yellow", "blue-yellow", "blue":
		return render.BlueYellow, true
	case "grayscale", "gray", "grey":
		return render.Grayscale, true
	}
	return 0, false
}

// handleStats serves /api/stats.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}
