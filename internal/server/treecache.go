package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
)

// treeCache is the daemon's per-dataset clustered-tree store: one slot per
// heatmap pane, holding either a tree supplied pre-clustered at startup or
// one built lazily — once — on the first /api/heatmap touch. It is the
// reason concurrent tiles of a cold dataset recluster once per dataset, not
// once per request:
//
//   - builds are singleflight-coalesced per pane: one leader runs the
//     clustering kernel with its request context, followers wait on the
//     flight. If the leader's client hangs up mid-build (the kernel polls
//     ctx), a live follower retries as the new leader rather than failing.
//   - entries are invalidated by dataset identity: ReplaceDataset bumps the
//     pane's generation, detaches any in-flight build (its result is served
//     to the waiters that asked for the old data, but never installed), and
//     the next request builds the new dataset's tree. Generations ride into
//     the tile cache keys, so stale PNG tiles can never be served against a
//     replaced dataset.
//   - trees live outside the byte-budgeted LRU: a burst of hot tiles must
//     not evict the dendrograms they are rendered from.
//
// Counters are surfaced under tree_cache in /api/stats.
type treeCache struct {
	mu      sync.Mutex
	entries []*treeEntry
	opt     core.ClusterOptions

	builds        atomic.Int64 // kernel builds that completed
	hits          atomic.Int64 // requests served an already-built tree
	coalesced     atomic.Int64 // requests that joined another's build
	invalidations atomic.Int64
	failures      atomic.Int64 // builds that failed for non-context reasons
	buildNS       atomic.Int64 // summed successful build wall time
}

// treeEntry is one pane slot.
type treeEntry struct {
	gen    uint64                 // bumped by ReplaceDataset; part of tile keys
	raw    *microarray.Dataset    // build source; nil for purely pre-clustered panes
	built  *core.ClusteredDataset // ready tree, nil until built (or after invalidation)
	flight *treeFlight
}

// treeFlight is one in-progress build; followers wait on done.
type treeFlight struct {
	done chan struct{}
	gen  uint64
	cd   *core.ClusteredDataset
	err  error
}

func newTreeCache(opt core.ClusterOptions) *treeCache {
	return &treeCache{opt: opt}
}

// addPre appends a pre-clustered pane (generation 0, never rebuilt unless
// replaced) and returns its index.
func (tc *treeCache) addPre(cd *core.ClusteredDataset) int {
	tc.entries = append(tc.entries, &treeEntry{built: cd})
	return len(tc.entries) - 1
}

// addRaw appends a lazily-clustered pane and returns its index.
func (tc *treeCache) addRaw(ds *microarray.Dataset) int {
	tc.entries = append(tc.entries, &treeEntry{raw: ds})
	return len(tc.entries) - 1
}

// addEmpty appends an unresolvable placeholder slot, preserving the index
// positions of nil config entries.
func (tc *treeCache) addEmpty() int {
	tc.entries = append(tc.entries, &treeEntry{})
	return len(tc.entries) - 1
}

var errNoPane = errors.New("server: pane has no dataset")

// get returns the pane's clustered tree and its generation, building it on
// first touch. ctx cancellation unblocks the caller immediately; a leader
// whose build dies of its own cancellation hands the flight over to any
// live follower.
func (tc *treeCache) get(ctx context.Context, idx int) (*core.ClusteredDataset, uint64, error) {
	for {
		tc.mu.Lock()
		if idx < 0 || idx >= len(tc.entries) {
			tc.mu.Unlock()
			return nil, 0, fmt.Errorf("server: pane %d out of range", idx)
		}
		e := tc.entries[idx]
		if e.built != nil {
			cd, gen := e.built, e.gen
			tc.mu.Unlock()
			tc.hits.Add(1)
			return cd, gen, nil
		}
		if e.raw == nil {
			tc.mu.Unlock()
			return nil, 0, errNoPane
		}
		if f := e.flight; f != nil {
			tc.mu.Unlock()
			tc.coalesced.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
			if f.err == nil {
				return f.cd, f.gen, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader's client hung up mid-build. If we are still
				// live, loop and become the new leader.
				if ctx.Err() != nil {
					return nil, 0, ctx.Err()
				}
				continue
			}
			return nil, 0, f.err
		}
		// Become the leader.
		f := &treeFlight{done: make(chan struct{}), gen: e.gen}
		e.flight = f
		raw := e.raw
		tc.mu.Unlock()

		t0 := time.Now()
		cd, err := core.ClusterCtx(ctx, raw, tc.opt)
		f.cd, f.err = cd, err

		tc.mu.Lock()
		if e.flight == f {
			e.flight = nil
			if err == nil && e.gen == f.gen {
				// Install unless ReplaceDataset swapped the pane mid-build;
				// waiters still get the tree of the dataset they asked for.
				e.built = cd
			}
		}
		tc.mu.Unlock()
		switch {
		case err == nil:
			tc.builds.Add(1)
			tc.buildNS.Add(time.Since(t0).Nanoseconds())
		case !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
			tc.failures.Add(1)
		}
		close(f.done)
		return cd, f.gen, err
	}
}

// generation returns the pane's current generation without forcing a
// build — the prefetcher's staleness check before it spends a speculative
// render.
func (tc *treeCache) generation(idx int) (uint64, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if idx < 0 || idx >= len(tc.entries) {
		return 0, false
	}
	return tc.entries[idx].gen, true
}

// rows returns the pane's display row count without forcing a build — the
// cheap half of request validation.
func (tc *treeCache) rows(idx int) (int, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if idx < 0 || idx >= len(tc.entries) {
		return 0, false
	}
	switch e := tc.entries[idx]; {
	case e.built != nil:
		return len(e.built.DisplayOrder), true
	case e.raw != nil:
		return e.raw.NumGenes(), true
	}
	return 0, false
}

// resolvable reports whether the pane can serve at all (it has a tree or a
// dataset to build one from).
func (tc *treeCache) resolvable(idx int) bool {
	_, ok := tc.rows(idx)
	return ok
}

// replace swaps the pane's dataset: the generation bumps, the cached tree
// drops, and any in-flight build is detached so its result is never
// installed over the new data.
func (tc *treeCache) replace(idx int, ds *microarray.Dataset) {
	tc.mu.Lock()
	e := tc.entries[idx]
	e.gen++
	e.raw = ds
	e.built = nil
	e.flight = nil
	tc.mu.Unlock()
	tc.invalidations.Add(1)
}

// warm builds every buildable pane concurrently (startup pre-clustering for
// daemons that prefer paying at boot instead of on first request).
func (tc *treeCache) warm(ctx context.Context) error {
	tc.mu.Lock()
	n := len(tc.entries)
	tc.mu.Unlock()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if !tc.resolvable(i) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = tc.get(ctx, i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// snapshot assembles the /api/stats view.
func (tc *treeCache) snapshot() TreeCacheInfo {
	tc.mu.Lock()
	info := TreeCacheInfo{Panes: len(tc.entries)}
	for _, e := range tc.entries {
		if e.built != nil {
			info.Built++
		}
	}
	tc.mu.Unlock()
	info.Builds = tc.builds.Load()
	info.Hits = tc.hits.Load()
	info.Coalesced = tc.coalesced.Load()
	info.Invalidations = tc.invalidations.Load()
	info.Failures = tc.failures.Load()
	if info.Builds > 0 {
		info.MeanBuildMS = float64(tc.buildNS.Load()) / float64(info.Builds) / 1e6
	}
	return info
}

// treeClusterOptions maps the server config onto core.ClusterOptions.
func treeClusterOptions(metric cluster.Metric, linkage cluster.Linkage, optimize, clusterArrays bool) core.ClusterOptions {
	return core.ClusterOptions{Metric: metric, Linkage: linkage, OptimizeOrder: optimize, ClusterArrays: clusterArrays}
}
