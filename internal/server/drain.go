package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/shard"
	"forestview/internal/spell"
)

// This file is the shard role's planned-maintenance side (DESIGN.md §7):
// the reloadable membership view behind /api/shard/v1/admin/fleet, the
// token-gated drain protocol at /api/shard/v1/admin/drain, and the warm
// handoff push/receive at /api/shard/v1/handoff. The design invariant is
// that a rolling restart is a zero-degradation event: survivors take
// ownership (reload) *before* the leaver drains, the leaver pushes its
// warm partials keyed under the post-drain topology, and the receivers
// either accept a byte-identical partial or recompute it locally — a
// handoff can warm a cache but can never make it wrong.

// shardState is the shard role's reloadable view: the engine over the
// held datasets, the global-index maps, the raw datasets the engine was
// built from (nil disables reload), and the membership list the holdings
// were last derived from. Swapped atomically by reloadShard; handlers
// read one consistent state per request.
type shardState struct {
	engine  *spell.Engine
	indexes []int       // engine local index -> global catalog index
	local   map[int]int // global catalog index -> engine local index
	raw     []*microarray.Dataset
	shards  []string // this shard's view of the fleet (nil: boot-time only)
	repl    int
	gen     uint64
}

func (s *Server) shardState() *shardState { return s.shardSt.Load() }

// warmCap bounds the hot-query tracker: a drain pushes at most this many
// distinct queries per ownership group, so handoff cost stays bounded no
// matter how long the shard ran.
const warmCap = 128

// warmTracker remembers the hottest partial keys this shard served — the
// (kind, canonical ids) pairs, LRU-ordered — so a drain knows what is
// worth handing to the successors. It deliberately does not record
// ownership scopes: groups re-partition under the post-drain topology, so
// the drain re-derives the scopes and only the queries themselves carry.
type warmTracker struct {
	mu    sync.Mutex
	ll    *list.List // front = hottest
	items map[string]*list.Element
}

type warmEntry struct {
	key  string
	kind string
	ids  []string
}

func newWarmTracker() *warmTracker {
	return &warmTracker{ll: list.New(), items: make(map[string]*list.Element)}
}

func (w *warmTracker) touch(kind string, ids []string) {
	key := kind + "\x1f" + joinIDs(ids)
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.items[key]; ok {
		w.ll.MoveToFront(el)
		return
	}
	w.items[key] = w.ll.PushFront(&warmEntry{key: key, kind: kind, ids: append([]string(nil), ids...)})
	for w.ll.Len() > warmCap {
		old := w.ll.Back()
		w.ll.Remove(old)
		delete(w.items, old.Value.(*warmEntry).key)
	}
}

// snapshot returns the tracked entries, hottest first.
func (w *warmTracker) snapshot() []*warmEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*warmEntry, 0, w.ll.Len())
	for el := w.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*warmEntry))
	}
	return out
}

// shardFleetRequest is the POST /api/shard/v1/admin/fleet body: the
// authoritative post-change fleet list, and optionally a new replication
// factor (0 keeps the current one).
type shardFleetRequest struct {
	Shards      []string `json:"shards"`
	Replication int      `json:"replication"`
}

// shardFleetState is the GET/POST response body.
type shardFleetState struct {
	Self        string   `json:"self"`
	Shards      []string `json:"shards"`
	Generation  string   `json:"generation"`
	Replication int      `json:"replication"`
	Held        int      `json:"held"`
	Loaded      int      `json:"loaded,omitempty"` // datasets loaded by this reload
	Status      string   `json:"status"`
	Reloads     int64    `json:"reloads"`
}

func (s *Server) shardStatus() string {
	if s.draining.Load() {
		return shard.StatusDraining
	}
	return shard.StatusActive
}

// handleShardFleet serves the shard-side membership view: GET reports it,
// POST replaces it wholesale and re-derives the owned top-R slice — the
// shard loads any newly owned datasets (ShardLoader), rebuilds its engine
// over the union, and swaps state atomically. Holdings only grow: data a
// reload no longer assigns here keeps being served (the coordinator's
// scavenge pass and old-generation requests lean on exactly that), and a
// restart is the way to shed it.
func (s *Server) handleShardFleet(w http.ResponseWriter, r *http.Request) {
	if !s.fleetAuthorized(r) {
		s.writeJSONError(w, http.StatusForbidden, codeForbidden, "fleet admin token required")
		return
	}
	switch r.Method {
	case http.MethodGet:
		st := s.shardState()
		s.writeJSON(w, http.StatusOK, s.fleetStateOf(st, 0))
	case http.MethodPost:
		var req shardFleetRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad fleet request: "+err.Error())
			return
		}
		st, loaded, err := s.reloadShard(r.Context(), req.Shards, req.Replication)
		if err != nil {
			s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable, err.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, s.fleetStateOf(st, loaded))
	default:
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET the shard fleet view or POST a replacement list")
	}
}

func (s *Server) fleetStateOf(st *shardState, loaded int) shardFleetState {
	return shardFleetState{
		Self:        s.cfg.ShardSelf,
		Shards:      st.shards,
		Generation:  fmt.Sprintf("%016x", st.gen),
		Replication: st.repl,
		Held:        len(st.indexes),
		Loaded:      loaded,
		Status:      s.shardStatus(),
		Reloads:     s.shardReloads.Load(),
	}
}

// reloadShard applies a new membership view: re-derive the owned top-R
// slice, load what is newly owned, rebuild the engine over the union of
// old and new holdings, and swap. Serialized with drains under shardMu.
func (s *Server) reloadShard(ctx context.Context, shards []string, repl int) (*shardState, int, error) {
	if s.fleet == nil {
		return nil, 0, fmt.Errorf("shard booted without a fleet view (-self/-shards); membership reload unavailable")
	}
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	normalized, gen, err := s.fleet.Set(shards)
	if err != nil {
		return nil, 0, err
	}
	st := s.shardState()
	if repl <= 0 {
		repl = st.repl
	}
	if repl > len(normalized) {
		repl = len(normalized)
	}

	// The owned set under the new view; empty when this shard is not in the
	// list (a leaver keeps serving its holdings until it exits).
	var owned []int
	for _, id := range normalized {
		if id == s.cfg.ShardSelf {
			owned = shard.OwnedIndexesR(s.cfg.ShardDatasetIDs, normalized, s.cfg.ShardSelf, repl)
			break
		}
	}
	var missing []int
	for _, gi := range owned {
		if _, ok := st.local[gi]; !ok {
			missing = append(missing, gi)
		}
	}

	next := &shardState{
		engine:  st.engine,
		indexes: st.indexes,
		local:   st.local,
		raw:     st.raw,
		shards:  normalized,
		repl:    repl,
		gen:     gen,
	}
	if len(missing) > 0 {
		if st.raw == nil {
			return nil, 0, fmt.Errorf("reload assigns %d new datasets but the shard retained no raw datasets to rebuild from", len(missing))
		}
		if s.cfg.ShardLoader == nil {
			return nil, 0, fmt.Errorf("reload assigns %d new datasets but no dataset loader is configured", len(missing))
		}
		raw := append([]*microarray.Dataset(nil), st.raw...)
		indexes := append([]int(nil), st.indexes...)
		for _, gi := range missing {
			ds, lerr := s.cfg.ShardLoader(ctx, gi)
			if lerr != nil {
				return nil, 0, fmt.Errorf("loading dataset %d (%s): %w", gi, s.cfg.ShardDatasetIDs[gi], lerr)
			}
			raw = append(raw, ds)
			indexes = append(indexes, gi)
		}
		engine, eerr := spell.NewEngine(raw)
		if eerr != nil {
			return nil, 0, fmt.Errorf("rebuilding engine over %d datasets: %w", len(raw), eerr)
		}
		local := make(map[int]int, len(indexes))
		for li, gi := range indexes {
			local[gi] = li
		}
		next.engine, next.indexes, next.local, next.raw = engine, indexes, local, raw
	}
	s.shardSt.Store(next)
	s.shardReloads.Add(1)
	return next, len(missing), nil
}

// drainRequest is the optional POST /api/shard/v1/admin/drain body: the
// post-drain topology the warm entries should be keyed under. Empty
// defaults to the shard's current membership view minus itself.
type drainRequest struct {
	Shards      []string `json:"shards"`
	Replication int      `json:"replication"`
}

// drainResponse acks a drain: what was pushed where, so the operator's
// runbook (and the rolling-restart E2E) can assert the handoff happened
// before killing the process.
type drainResponse struct {
	Status     string   `json:"status"`
	Generation string   `json:"generation"` // of the post-drain topology
	Targets    []string `json:"targets"`
	Pushed     int64    `json:"pushed"`   // entries sent with a body
	Replayed   int64    `json:"replayed"` // entries sent for local recompute
	PushErrors []string `json:"push_errors,omitempty"`
}

// handleShardDrain serves POST /api/shard/v1/admin/drain: flip into the
// draining state (advertised via /api/shard/v1/info, demoting this shard
// to last-resort in coordinator replica ordering), push the warm partial
// entries to every successor replica under the post-drain topology, and
// ack. OnDrained then lets the daemon exit cleanly — in-flight partials
// finish through the HTTP server's graceful shutdown. Idempotent: a
// repeated drain reports the state without re-pushing.
func (s *Server) handleShardDrain(w http.ResponseWriter, r *http.Request) {
	if !s.fleetAuthorized(r) {
		s.writeJSONError(w, http.StatusForbidden, codeForbidden, "fleet admin token required")
		return
	}
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST to drain this shard")
		return
	}
	var req drainRequest
	// An empty body is a valid "use my current view" drain.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad drain request: "+err.Error())
		return
	}
	st := s.shardState()
	target := req.Shards
	if len(target) == 0 {
		for _, id := range st.shards {
			if id != s.cfg.ShardSelf {
				target = append(target, id)
			}
		}
	}
	if len(target) == 0 {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable,
			"no post-drain topology: body lists no shards and the shard's fleet view has no other members")
		return
	}
	for _, id := range target {
		if id == s.cfg.ShardSelf {
			s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable,
				fmt.Sprintf("post-drain topology still contains this shard (%s)", s.cfg.ShardSelf))
			return
		}
	}
	repl := req.Replication
	if repl <= 0 {
		repl = st.repl
	}
	if repl > len(target) {
		repl = len(target)
	}

	resp := drainResponse{
		Status:     shard.StatusDraining,
		Generation: fmt.Sprintf("%016x", shard.Generation(target)),
		Targets:    target,
	}
	if s.draining.CompareAndSwap(false, true) {
		s.shardMu.Lock()
		pushed, replayed, errs := s.pushHandoff(r.Context(), st, target, repl)
		s.shardMu.Unlock()
		resp.Pushed, resp.Replayed, resp.PushErrors = pushed, replayed, errs
		if s.cfg.OnDrained != nil {
			go s.cfg.OnDrained()
		}
	} else {
		resp.Pushed, resp.Replayed = s.handoffPushed.Load(), s.handoffReplayed.Load()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// pushHandoff derives the post-drain ownership groups and pushes one
// HandoffRequest to every successor replica: for each tracked hot query ×
// each group, a gob body when this shard holds the *whole* group (the
// partial is then byte-identical to what the receiver would compute), or
// a bodyless entry telling the receiver to recompute locally. Enrichment
// slices are data-independent, so their bodies are always valid on any
// capable receiver.
func (s *Server) pushHandoff(ctx context.Context, st *shardState, target []string, repl int) (pushed, replayed int64, errs []string) {
	warm := s.warm.snapshot()
	if len(warm) == 0 {
		return 0, 0, nil
	}
	gen := shard.Generation(target)
	groups := shard.Groups(s.cfg.ShardDatasetIDs, target, repl)
	batches := make(map[string][]shard.HandoffEntry, len(target))
	for _, owners := range groups {
		heldAll := true
		for _, gi := range shard.GroupIndexes(s.cfg.ShardDatasetIDs, target, repl, owners) {
			if _, ok := st.local[gi]; !ok {
				heldAll = false
				break
			}
		}
		for _, e := range warm {
			var body []byte
			switch e.kind {
			case shard.CapabilitySearch:
				if heldAll {
					body, _, _ = s.partialGroupSearch(ctx, e.ids, &shard.SearchRequest{
						Query: e.ids, Shards: target, Replication: repl, Owners: owners,
					})
				}
			case shard.CapabilityEnrich:
				if s.cfg.Enricher == nil {
					continue
				}
				body, _, _ = s.partialEnrich(ctx, e.ids, &shard.EnrichRequest{
					Selection: e.ids, Shards: target, Replication: repl, Owners: owners,
				})
			default:
				continue
			}
			entry := shard.HandoffEntry{Kind: e.kind, Query: e.ids, Owners: owners, Body: body}
			for _, owner := range owners {
				batches[owner] = append(batches[owner], entry)
			}
			if body != nil {
				pushed += int64(len(owners))
			} else {
				replayed += int64(len(owners))
			}
		}
	}

	resolve := s.cfg.ShardResolve
	if resolve == nil {
		resolve = shard.NormalizeAddr
	}
	for _, owner := range target {
		batch := batches[owner]
		if len(batch) == 0 {
			continue
		}
		if err := s.pushOneHandoff(ctx, resolve(owner), shard.HandoffRequest{
			From: s.cfg.ShardSelf, Shards: target, Replication: repl,
			Generation: gen, Entries: batch,
		}); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", owner, err))
			s.handoffPushErrors.Add(1)
		}
	}
	s.handoffPushed.Add(pushed)
	s.handoffReplayed.Add(replayed)
	return pushed, replayed, errs
}

// pushOneHandoff posts one batch to a successor, authenticated with the
// same fleet token that gates the receiving endpoint.
func (s *Server) pushOneHandoff(ctx context.Context, baseURL string, req shard.HandoffRequest) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(req); err != nil {
		return err
	}
	hctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(hctx, http.MethodPost, baseURL+shard.HandoffPath, &body)
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", shard.ContentType)
	hreq.Header.Set("X-Fleet-Token", s.cfg.FleetToken)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff status %d", resp.StatusCode)
	}
	var hr shard.HandoffResponse
	if err := gob.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return fmt.Errorf("decoding handoff response: %w", err)
	}
	if hr.RefusedStale > 0 {
		return fmt.Errorf("receiver refused %d entries as stale (generation mismatch)", hr.RefusedStale)
	}
	return nil
}

// handleShardHandoff receives a draining peer's warm entries. The
// generation guard is absolute: unless the push's topology fingerprint
// matches both its own shard list and this shard's live membership view,
// every entry is refused as stale — a cache must never be seeded under a
// topology nobody is serving. Per entry, a body is accepted only if it is
// exactly what this shard would compute for that key (same dataset set,
// same enrichment slice); anything else is recomputed locally instead —
// replay warming — so a handoff can never make the cache wrong.
func (s *Server) handleShardHandoff(w http.ResponseWriter, r *http.Request) {
	if !s.fleetAuthorized(r) {
		s.writeJSONError(w, http.StatusForbidden, codeForbidden, "fleet admin token required")
		return
	}
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a gob-encoded handoff batch")
		return
	}
	var req shard.HandoffRequest
	if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		s.writeJSONError(w, http.StatusBadRequest, codeBadParameter, "bad handoff request: "+err.Error())
		return
	}
	if req.Generation != shard.Generation(req.Shards) {
		s.writeJSONError(w, http.StatusUnprocessableEntity, codeUnprocessable,
			"handoff generation does not fingerprint its own shard list")
		return
	}
	var resp shard.HandoffResponse
	st := s.shardState()
	if st.shards == nil || st.gen != req.Generation {
		resp.RefusedStale = len(req.Entries)
		s.handoffRefused.Add(int64(len(req.Entries)))
	} else {
		for _, e := range req.Entries {
			switch s.acceptHandoffEntry(r.Context(), st, &req, &e) {
			case handoffAccepted:
				resp.Accepted++
			case handoffRecomputed:
				resp.Recomputed++
			default:
				resp.Skipped++
			}
		}
		s.handoffAccepted.Add(int64(resp.Accepted))
		s.handoffRecomputed.Add(int64(resp.Recomputed))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		s.encodeFailures.Add(1)
		s.writeJSONError(w, http.StatusInternalServerError, codeEncodeFailed, "handoff response encode failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", shard.ContentType)
	_, _ = buf.WriteTo(w)
}

type handoffOutcome int

const (
	handoffSkipped handoffOutcome = iota
	handoffAccepted
	handoffRecomputed
)

// acceptHandoffEntry validates one pushed entry and either inserts its
// body under the exact cache key this shard serves, or recomputes the
// partial locally (filling the same key through the normal cached path).
func (s *Server) acceptHandoffEntry(ctx context.Context, st *shardState, req *shard.HandoffRequest, e *shard.HandoffEntry) handoffOutcome {
	ids := spell.CanonicalQuery(e.Query)
	if len(ids) == 0 || len(e.Owners) == 0 {
		return handoffSkipped
	}
	switch e.Kind {
	case shard.CapabilitySearch:
		sreq := &shard.SearchRequest{Query: ids, Shards: req.Shards, Replication: req.Replication, Owners: e.Owners}
		if s.searchBodyMatches(st, sreq, e.Body) {
			s.cache.Put(groupSearchKey(sreq, ids), e.Body, int64(len(e.Body))+64)
			return handoffAccepted
		}
		if _, _, err := s.partialGroupSearch(ctx, ids, sreq); err == nil {
			return handoffRecomputed
		}
	case shard.CapabilityEnrich:
		if s.cfg.Enricher == nil {
			return handoffSkipped
		}
		ereq := &shard.EnrichRequest{Selection: ids, Shards: req.Shards, Replication: req.Replication, Owners: e.Owners}
		if s.enrichBodyMatches(req, e) {
			s.cache.Put(groupEnrichKey(ereq, ids), e.Body, int64(len(e.Body))+64)
			return handoffAccepted
		}
		if _, _, err := s.partialEnrich(ctx, ids, ereq); err == nil {
			return handoffRecomputed
		}
	}
	return handoffSkipped
}

// searchBodyMatches reports whether a pushed search partial covers exactly
// the dataset set this shard would serve for the group: the group's
// members under the push topology, intersected with our holdings. Any
// difference — the drainer held less, or we hold less — fails the check
// and the entry is recomputed instead.
func (s *Server) searchBodyMatches(st *shardState, sreq *shard.SearchRequest, body []byte) bool {
	if body == nil {
		return false
	}
	var p spell.Partial
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return false
	}
	want := make(map[int]bool)
	for _, gi := range shard.GroupIndexes(s.cfg.ShardDatasetIDs, sreq.Shards, sreq.Replication, sreq.Owners) {
		if _, ok := st.local[gi]; ok {
			want[gi] = true
		}
	}
	if len(p.Datasets) != len(want) {
		return false
	}
	for _, d := range p.Datasets {
		if !want[d.Index] {
			return false
		}
		delete(want, d.Index)
	}
	return len(want) == 0
}

// enrichBodyMatches reports whether a pushed enrichment partial is the
// slice this shard would compute: same kernel fingerprint, and the
// slice/slices pair the group derivation assigns to the entry's owners.
// Slice tallies are data-independent, so fingerprint + slice identity is
// the whole contract.
func (s *Server) enrichBodyMatches(req *shard.HandoffRequest, e *shard.HandoffEntry) bool {
	if e.Body == nil {
		return false
	}
	var p golem.PartialCounts
	if err := gob.NewDecoder(bytes.NewReader(e.Body)).Decode(&p); err != nil {
		return false
	}
	if p.Fingerprint != s.cfg.Enricher.Fingerprint() {
		return false
	}
	groups := shard.Groups(s.cfg.ShardDatasetIDs, req.Shards, req.Replication)
	gi := shard.GroupIndex(groups, e.Owners)
	return gi >= 0 && p.Slice == gi && p.Slices == len(groups)
}
