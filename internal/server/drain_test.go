package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"forestview/internal/microarray"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// drainTopology is a drain-capable shard fleet in-process: every shard
// boots with its fleet identity, the full membership view, a dataset
// loader over the shared compendium, and the admin token — everything a
// rolling restart needs.
type drainTopology struct {
	dss     []*microarray.Dataset
	names   []string // global dataset catalog
	shards  []string // fleet identities
	servers []*httptest.Server
	srv     []*Server
	query   []string
	drained chan string // OnDrained pings, by shard identity
}

const drainToken = "sesame"

func newDrainTopology(t *testing.T, nShards, repl int) *drainTopology {
	t.Helper()
	u := synth.NewUniverse(200, 8, 71)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 6, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 72,
	})
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}
	var shardNames []string
	for i := 0; i < nShards; i++ {
		shardNames = append(shardNames, fmt.Sprintf("shard-%d", i))
	}
	top := &drainTopology{
		dss: dss, names: names, shards: shardNames,
		query:   u.ModuleGeneIDs(2)[:4],
		drained: make(chan string, nShards),
	}
	urls := make(map[string]string, nShards)
	for si, self := range shardNames {
		self := self
		owned := shard.OwnedIndexesR(names, shardNames, self, repl)
		var slice []*microarray.Dataset
		for _, gi := range owned {
			slice = append(slice, dss[gi])
		}
		se, err := spell.NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := New(Config{
			Engine:           se,
			ShardIndexes:     owned,
			ShardDatasetIDs:  names,
			ShardSelf:        self,
			ShardFleet:       shardNames,
			ShardReplication: repl,
			ShardRawDatasets: slice,
			ShardLoader: func(_ context.Context, gi int) (*microarray.Dataset, error) {
				return dss[gi], nil
			},
			ShardResolve: func(id string) string { return urls[id] },
			OnDrained:    func() { top.drained <- self },
			FleetToken:   drainToken,
			CacheBytes:   4 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ss.Close)
		hs := httptest.NewServer(ss)
		t.Cleanup(hs.Close)
		top.servers = append(top.servers, hs)
		top.srv = append(top.srv, ss)
		urls[shardNames[si]] = hs.URL
	}
	return top
}

// postJSON drives a token-gated admin endpoint over the real listener.
func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Fleet-Token", drainToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// shardSearch posts one shard search request and returns the response plus
// its cache disposition header.
func shardSearch(t *testing.T, url string, req shard.SearchRequest) (*http.Response, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+shard.SearchPath, shard.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p spell.Partial
	if resp.StatusCode == http.StatusOK {
		if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
	}
	return resp, resp.Header.Get(cacheHeader)
}

// TestShardDrainWarmHandoff is the tentpole's server-layer proof: a
// drained shard pushes its warm partials to the post-drain owners, the
// receivers accept (or replay-warm) every entry, and the successor serves
// the drained shard's hot query as a cache hit on first touch.
func TestShardDrainWarmHandoff(t *testing.T) {
	top := newDrainTopology(t, 3, 2)
	survivors := []string{"shard-1", "shard-2"}

	// Warm shard-0 with a hot query (legacy whole-slice request: the warm
	// tracker records the query, not the scope).
	if resp, disp := shardSearch(t, top.servers[0].URL, shard.SearchRequest{Query: top.query}); resp.StatusCode != http.StatusOK || disp != dispMiss {
		t.Fatalf("warming search = %d/%s", resp.StatusCode, disp)
	}

	// Survivors adopt the post-drain topology first (the rolling-restart
	// order): each re-derives its owned slice, loading what it lacked.
	fleetBody := `{"shards":["shard-1","shard-2"],"replication":2}`
	for _, si := range []int{1, 2} {
		resp, body := postJSON(t, top.servers[si].URL+shard.ShardFleetPath, fleetBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d reload = %d: %s", si, resp.StatusCode, body)
		}
		var st shardFleetState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		// R=2 over 2 shards: every survivor owns the whole catalog.
		if st.Held != len(top.dss) {
			t.Fatalf("survivor %d holds %d datasets after reload, want %d (%s)", si, st.Held, len(top.dss), body)
		}
		if st.Reloads != 1 {
			t.Fatalf("survivor %d reloads = %d", si, st.Reloads)
		}
	}

	// Drain shard-0 toward the survivors.
	resp, body := postJSON(t, top.servers[0].URL+shard.DrainPath, fleetBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d: %s", resp.StatusCode, body)
	}
	var dr drainResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Status != shard.StatusDraining || len(dr.PushErrors) != 0 {
		t.Fatalf("drain response: %+v", dr)
	}
	if dr.Pushed+dr.Replayed == 0 {
		t.Fatalf("drain pushed nothing: %+v", dr)
	}

	// OnDrained fired exactly once, for shard-0.
	select {
	case id := <-top.drained:
		if id != "shard-0" {
			t.Fatalf("OnDrained for %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnDrained never fired")
	}

	// The drained shard advertises its state.
	info := shardInfoOf(t, top.servers[0])
	if info.Status != shard.StatusDraining {
		t.Fatalf("drained shard status = %q", info.Status)
	}
	for _, si := range []int{1, 2} {
		if st := shardInfoOf(t, top.servers[si]); st.Status != shard.StatusActive {
			t.Fatalf("survivor %d status = %q", si, st.Status)
		}
	}

	// The successors serve the drained shard's hot query warm: every
	// ownership group of the post-drain topology answers the first group
	// request for it as a cache hit (accepted verbatim or replay-warmed at
	// handoff time — either way, no cold recompute now).
	urls := map[string]string{"shard-1": top.servers[1].URL, "shard-2": top.servers[2].URL}
	for _, owners := range shard.Groups(top.names, survivors, 2) {
		for _, owner := range owners {
			resp, disp := shardSearch(t, urls[owner], shard.SearchRequest{
				Query: top.query, Shards: survivors, Replication: 2, Owners: owners,
			})
			if resp.StatusCode != http.StatusOK || disp != dispHit {
				t.Fatalf("post-drain search on %s (group %v) = %d/%s, want 200/hit", owner, owners, resp.StatusCode, disp)
			}
		}
	}

	// Both directions of the handoff are accounted, with nothing refused.
	snap0 := top.srv[0].Stats()
	if snap0.Shard == nil || snap0.Shard.Status != shard.StatusDraining {
		t.Fatalf("drained shard stats: %+v", snap0.Shard)
	}
	if snap0.Shard.Handoff.Pushed+snap0.Shard.Handoff.Replayed == 0 || snap0.Shard.Handoff.PushErrors != 0 {
		t.Fatalf("drained shard handoff counters: %+v", snap0.Shard.Handoff)
	}
	var received int64
	for _, si := range []int{1, 2} {
		h := top.srv[si].Stats().Shard.Handoff
		if h.RefusedStale != 0 {
			t.Fatalf("survivor %d refused entries: %+v", si, h)
		}
		received += h.Accepted + h.Recomputed
	}
	if received == 0 {
		t.Fatal("no survivor recorded a received handoff entry")
	}

	// Idempotent: a repeat drain reports without re-pushing.
	pushedBefore := snap0.Shard.Handoff.Pushed
	resp, body = postJSON(t, top.servers[0].URL+shard.DrainPath, fleetBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat drain = %d: %s", resp.StatusCode, body)
	}
	if got := top.srv[0].Stats().Shard.Handoff.Pushed; got != pushedBefore {
		t.Fatalf("repeat drain re-pushed: %d -> %d", pushedBefore, got)
	}
	select {
	case id := <-top.drained:
		t.Fatalf("repeat drain re-fired OnDrained (%q)", id)
	default:
	}
}

// TestShardHandoffGenerationGuard pins the staleness rules: a push whose
// generation does not fingerprint its own shard list is rejected outright,
// and a well-formed push for a topology the receiver is not at is refused
// entirely as stale.
func TestShardHandoffGenerationGuard(t *testing.T) {
	top := newDrainTopology(t, 3, 2)

	push := func(req shard.HandoffRequest) (*http.Response, shard.HandoffResponse) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(req); err != nil {
			t.Fatal(err)
		}
		hreq, err := http.NewRequest(http.MethodPost, top.servers[1].URL+shard.HandoffPath, &buf)
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("X-Fleet-Token", drainToken)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr shard.HandoffResponse
		if resp.StatusCode == http.StatusOK {
			if err := gob.NewDecoder(resp.Body).Decode(&hr); err != nil {
				t.Fatal(err)
			}
		}
		return resp, hr
	}

	entry := shard.HandoffEntry{Kind: shard.CapabilitySearch, Query: top.query, Owners: []string{"shard-1", "shard-2"}}
	target := []string{"shard-1", "shard-2"}

	// Self-inconsistent push: generation does not fingerprint its list.
	resp, _ := push(shard.HandoffRequest{
		From: "shard-0", Shards: target, Replication: 2,
		Generation: 12345, Entries: []shard.HandoffEntry{entry},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("inconsistent generation = %d, want 422", resp.StatusCode)
	}

	// Consistent push for a topology the receiver (still at boot view,
	// three shards) is not serving: every entry refused as stale.
	resp, hr := push(shard.HandoffRequest{
		From: "shard-0", Shards: target, Replication: 2,
		Generation: shard.Generation(target), Entries: []shard.HandoffEntry{entry},
	})
	if resp.StatusCode != http.StatusOK || hr.RefusedStale != 1 || hr.Accepted+hr.Recomputed != 0 {
		t.Fatalf("stale push = %d, %+v", resp.StatusCode, hr)
	}

	// No token, no handoff.
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(shard.HandoffRequest{})
	plain, err := http.Post(top.servers[1].URL+shard.HandoffPath, shard.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	plain.Body.Close()
	if plain.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless handoff = %d, want 403", plain.StatusCode)
	}
}

// TestShardFleetReloadGrowsHoldings pins the membership-reload side: a
// shard told the fleet shrank re-derives its owned slice, loads the
// datasets it lacked through ShardLoader, and serves them — while a
// repeated identical POST is a no-op.
func TestShardFleetReloadGrowsHoldings(t *testing.T) {
	top := newDrainTopology(t, 3, 1) // R=1: slices are disjoint, reload must load
	s1 := top.srv[1]
	heldBefore := len(s1.shardState().indexes)
	if heldBefore == len(top.dss) {
		t.Fatal("fixture gives shard-1 the whole catalog; nothing to prove")
	}

	body := `{"shards":["shard-1"],"replication":1}`
	resp, raw := postJSON(t, top.servers[1].URL+shard.ShardFleetPath, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, raw)
	}
	var st shardFleetState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Held != len(top.dss) || st.Loaded != len(top.dss)-heldBefore {
		t.Fatalf("sole-survivor reload: held %d loaded %d, want %d/%d (%s)",
			st.Held, st.Loaded, len(top.dss), len(top.dss)-heldBefore, raw)
	}

	// The engine behind the state actually serves the grown slice.
	resp2, _ := shardSearch(t, top.servers[1].URL, shard.SearchRequest{Query: top.query})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload search = %d", resp2.StatusCode)
	}

	// Identical list: no generation bump, no load, no reload count.
	resp, raw = postJSON(t, top.servers[1].URL+shard.ShardFleetPath, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat reload = %d: %s", resp.StatusCode, raw)
	}
	var again shardFleetState
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.Loaded != 0 || again.Generation != st.Generation {
		t.Fatalf("repeat reload not a no-op: %s", raw)
	}
}
