package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"forestview/internal/shard"
)

// endpointStats holds the per-endpoint counters behind /api/stats. All
// fields are atomics so the hot path never takes a lock to record a
// request.
type endpointStats struct {
	requests    atomic.Int64
	errors      atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64 // requests that joined another's in-flight compute
	computed    atomic.Int64 // underlying computations actually executed
	rejected    atomic.Int64 // shed by the render pool (503)
	latencyUS   atomic.Int64 // summed request latency, microseconds
	maxUS       atomic.Int64 // worst observed request latency, microseconds
}

// observe records one finished request.
func (e *endpointStats) observe(d time.Duration, failed bool) {
	e.requests.Add(1)
	if failed {
		e.errors.Add(1)
	}
	us := d.Microseconds()
	e.latencyUS.Add(us)
	for {
		cur := e.maxUS.Load()
		if us <= cur || e.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// EndpointSnapshot is the JSON form of one endpoint's counters.
type EndpointSnapshot struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	HitRate       float64 `json:"hit_rate"`
	Coalesced     int64   `json:"coalesced"`
	Computed      int64   `json:"computed"`
	Rejected      int64   `json:"rejected"`
	MeanLatencyUS int64   `json:"mean_latency_us"`
	MaxLatencyUS  int64   `json:"max_latency_us"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests:     e.requests.Load(),
		Errors:       e.errors.Load(),
		CacheHits:    e.cacheHits.Load(),
		CacheMisses:  e.cacheMisses.Load(),
		Coalesced:    e.coalesced.Load(),
		Computed:     e.computed.Load(),
		Rejected:     e.rejected.Load(),
		MaxLatencyUS: e.maxUS.Load(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.HitRate = float64(s.CacheHits) / float64(lookups)
	}
	if s.Requests > 0 {
		s.MeanLatencyUS = e.latencyUS.Load() / s.Requests
	}
	return s
}

// enrichKernelStats tracks GOLEM kernel executions behind the enrich cache:
// how often /api/enrich actually ran the bitset scan (vs being absorbed by
// the LRU or a coalesced flight), how those runs ended, and what they cost.
type enrichKernelStats struct {
	analyses  atomic.Int64 // kernel executions
	canceled  atomic.Int64 // ended by client disconnect (context error)
	failures  atomic.Int64 // other analysis errors (bad selections)
	retries   atomic.Int64 // re-entries after a flight died of its leader's hangup
	analyzeUS atomic.Int64 // summed kernel latency, microseconds
	maxUS     atomic.Int64 // worst observed kernel latency, microseconds
}

// observe records one finished kernel run.
func (e *enrichKernelStats) observe(d time.Duration, err error) {
	e.analyses.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.canceled.Add(1)
	default:
		e.failures.Add(1)
	}
	us := d.Microseconds()
	e.analyzeUS.Add(us)
	for {
		cur := e.maxUS.Load()
		if us <= cur || e.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// EnrichCacheInfo is the enrich_cache section of /api/stats: the cache
// traffic of the enrich key space (from the endpoint counters — HTML and
// API callers share the keys) next to the kernel executions that traffic
// actually cost. Analyses vs Hits+Coalesced is the "one scan per distinct
// gene list, not per request" criterion made observable.
type EnrichCacheInfo struct {
	Terms      int   `json:"terms"`
	Background int   `json:"background"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	Analyses   int64 `json:"analyses"`
	Canceled   int64 `json:"canceled"`
	Failures   int64 `json:"failures"`
	// Retries counts re-entries into the cache path after a joined flight
	// died of its leader's disconnect; each one re-counts a miss (and
	// possibly an analysis) for the same request, so under leader-cancel
	// churn compare Analyses against Misses - Retries.
	Retries       int64 `json:"retries"`
	MeanAnalyzeUS int64 `json:"mean_analyze_us"`
	MaxAnalyzeUS  int64 `json:"max_analyze_us"`
	// Entries/Bytes are the enrich key family's current occupancy of the
	// shared LRU (prefix accounting inside the cache), completing the
	// traffic counters above with a residency picture.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// PrefetchInfo is the prefetch section of /api/stats: the speculative tile
// pipeline's full ledger. Enqueued splits into Rendered (speculative work
// that actually rasterized), Coalesced (a foreground request was already
// rendering the tile — singleflight absorbed the speculation), SkippedCached
// (already resident by the time the worker got to it), SkippedStale (the
// pane's generation moved under the queued job), Shed (the render pool was
// saturated or busy with foreground work — speculation never competes) and
// Dropped (queue full at enqueue time). Served vs EvictedUnused is the
// prediction quality signal: tiles a real request later consumed vs tiles
// that died cold in the LRU.
type PrefetchInfo struct {
	Workers       int   `json:"workers"`
	Enqueued      int64 `json:"enqueued"`
	Dropped       int64 `json:"dropped"`
	Rendered      int64 `json:"rendered"`
	Coalesced     int64 `json:"coalesced"`
	SkippedCached int64 `json:"skipped_cached"`
	SkippedStale  int64 `json:"skipped_stale"`
	Shed          int64 `json:"shed"`
	Served        int64 `json:"served"`
	EvictedUnused int64 `json:"evicted_unused"`
	Pending       int   `json:"pending"`
}

// ServerInfo is the server section of /api/stats: which daemon produced a
// measurement series. Load-harness analyze output joins on this, so a
// capacity curve is always attributable to the topology role (and Go
// runtime) that produced it.
type ServerInfo struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Role is "single", "shard" or "coordinator" (see Server.Role).
	Role string `json:"role"`
	// GoVersion is runtime.Version() of the serving binary.
	GoVersion string `json:"go_version"`
}

// StatsSnapshot is the /api/stats response body.
type StatsSnapshot struct {
	// UptimeSeconds is kept at the top level for pre-server-section
	// consumers; Server.UptimeSeconds is the same value.
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Server        ServerInfo                  `json:"server"`
	Compendium    CompendiumInfo              `json:"compendium"`
	Cache         CacheInfo                   `json:"cache"`
	TreeCache     TreeCacheInfo               `json:"tree_cache"`
	EnrichCache   *EnrichCacheInfo            `json:"enrich_cache,omitempty"` // nil without an ontology
	Prefetch      *PrefetchInfo               `json:"prefetch,omitempty"`     // nil unless prefetching
	Scatter       *shard.StatsSnapshot        `json:"scatter,omitempty"`      // nil unless coordinating
	Shard         *ShardRoleInfo              `json:"shard,omitempty"`        // nil unless a shard backend
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	// EncodeFailures counts responses whose JSON encoding failed and were
	// converted to 500s by writeJSON; see the encode-failure regression.
	EncodeFailures int64 `json:"encode_failures"`
}

// TreeCacheInfo summarizes the per-dataset clustered-tree cache: how many
// panes exist, how many hold a built tree, and how the builds went. Builds
// vs Hits+Coalesced is the "recluster once per dataset, not per request"
// acceptance criterion made observable.
type TreeCacheInfo struct {
	Panes         int     `json:"panes"`
	Built         int     `json:"built"`
	Builds        int64   `json:"builds"`
	Hits          int64   `json:"hits"`
	Coalesced     int64   `json:"coalesced"`
	Invalidations int64   `json:"invalidations"`
	Failures      int64   `json:"failures"`
	MeanBuildMS   float64 `json:"mean_build_ms"`
	// TileEntries/TileBytes are the rendered-tile key family's current
	// occupancy of the shared LRU — the pixels the cached trees back.
	TileEntries int   `json:"tile_entries"`
	TileBytes   int64 `json:"tile_bytes"`
}

// ShardRoleInfo is the shard section of /api/stats: the shard's lifecycle
// state (active/draining), its membership view and reload count, and the
// warm-handoff traffic in both directions (drain pushes sent, peer pushes
// received). A rolling restart is legible from this section alone: the
// leaver's Pushed/Replayed against the survivors' Accepted/Recomputed,
// with RefusedStale flagging any generation-skewed push.
type ShardRoleInfo struct {
	Self        string          `json:"self,omitempty"`
	Status      string          `json:"status"`
	Shards      []string        `json:"shards,omitempty"`
	Generation  string          `json:"generation"`
	Replication int             `json:"replication"`
	Held        int             `json:"held_datasets"`
	Reloads     int64           `json:"reloads"`
	Handoff     HandoffCounters `json:"handoff"`
}

// HandoffCounters tallies warm-handoff traffic (see DESIGN.md §7).
type HandoffCounters struct {
	Pushed       int64 `json:"pushed"`
	Replayed     int64 `json:"replayed"`
	PushErrors   int64 `json:"push_errors"`
	Accepted     int64 `json:"accepted"`
	Recomputed   int64 `json:"recomputed"`
	RefusedStale int64 `json:"refused_stale"`
}

// CompendiumInfo summarizes what the daemon loaded at startup.
type CompendiumInfo struct {
	Datasets  int `json:"datasets"`
	Genes     int `json:"genes"`
	GOTerms   int `json:"go_terms"`
	Clustered int `json:"clustered_datasets"`
}

// CacheInfo summarizes shared-cache occupancy, overall and per key family
// (Prefixes sums to Entries/Bytes).
type CacheInfo struct {
	Entries  int                        `json:"entries"`
	Bytes    int64                      `json:"bytes"`
	MaxBytes int64                      `json:"max_bytes"`
	Prefixes map[string]PrefixOccupancy `json:"prefixes,omitempty"`
}
