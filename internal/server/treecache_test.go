package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// rawFixture builds a daemon whose heatmap panes are raw datasets — the
// lazy tree-cache path — sharing the SPELL engine across tests.
func rawFixture(t *testing.T, nDatasets int) (*Server, []*microarray.Dataset) {
	t.Helper()
	u := synth.NewUniverse(220, 8, 77)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: nDatasets, MinExperiments: 10, MaxExperiments: 12,
		ActiveFraction: 0.5, Noise: 0.25, MissingRate: 0.02, Seed: 78,
	})
	engine, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	// The queue is sized for the coalescing test's burst: every waiter of a
	// cold tree unblocks at once and submits its render together.
	srv, err := New(Config{
		Engine: engine, RawDatasets: dss,
		CacheBytes: 8 << 20, RenderWorkers: 2, RenderQueue: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, dss
}

func treeStats(t *testing.T, s *Server) TreeCacheInfo {
	t.Helper()
	rec := get(t, s, "/api/stats")
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap.TreeCache
}

// TestHeatmapParamValidation is the table-driven validation sweep over
// /api/heatmap on a lazily-clustered daemon: every rejection must happen
// before a tree is built (cheap validation first), and by-name addressing
// must resolve raw panes.
func TestHeatmapParamValidation(t *testing.T) {
	s, dss := rawFixture(t, 2)
	name := dss[1].Name
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"missing dataset", "/api/heatmap", http.StatusBadRequest},
		{"index out of range", "/api/heatmap?dataset=99", http.StatusNotFound},
		{"unknown name", "/api/heatmap?dataset=nope", http.StatusNotFound},
		{"zero width", "/api/heatmap?dataset=0&w=0", http.StatusBadRequest},
		{"oversized width", "/api/heatmap?dataset=0&w=99999", http.StatusBadRequest},
		{"oversized height", "/api/heatmap?dataset=0&h=99999", http.StatusBadRequest},
		{"reversed rows", "/api/heatmap?dataset=0&rows=5:2", http.StatusBadRequest},
		{"garbage rows", "/api/heatmap?dataset=0&rows=0:5junk", http.StatusBadRequest},
		{"negative rows", "/api/heatmap?dataset=0&rows=-3:5", http.StatusBadRequest},
		{"rows past end", "/api/heatmap?dataset=0&rows=100000:100002", http.StatusBadRequest},
		{"bad cmap", "/api/heatmap?dataset=0&cmap=sepia", http.StatusBadRequest},
		{"bad limit", "/api/heatmap?dataset=0&limit=-1", http.StatusBadRequest},
		{"tree not a number", "/api/heatmap?dataset=0&tree=wide", http.StatusBadRequest},
		{"tree swallows tile", "/api/heatmap?dataset=0&w=128&tree=128", http.StatusBadRequest},
		{"tree with row subrange", "/api/heatmap?dataset=0&tree=32&rows=0:10", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if rec := get(t, s, c.url); rec.Code != c.want {
				t.Errorf("%s = %d, want %d", c.url, rec.Code, c.want)
			}
		})
	}
	// Every rejection above must have been answered from the row count
	// alone: no pane may have clustered.
	if ts := treeStats(t, s); ts.Builds != 0 || ts.Built != 0 {
		t.Fatalf("validation built trees: %+v", ts)
	}

	// By-name lookup of a raw pane triggers exactly one build.
	if rec := get(t, s, "/api/heatmap?dataset="+url.QueryEscape(name)+"&w=64&h=48"); rec.Code != http.StatusOK {
		t.Fatalf("by-name tile = %d: %s", rec.Code, rec.Body.String())
	}
	if ts := treeStats(t, s); ts.Builds != 1 || ts.Built != 1 || ts.Panes != 2 {
		t.Fatalf("after by-name tile: %+v", ts)
	}
}

// TestTreeCacheConcurrentSingleBuild is the coalescing proof for the tree
// cache: N concurrent requests for N *distinct* tiles of one cold dataset
// (distinct row windows, so the PNG-level cache and singleflight cannot
// dedupe them) must cluster the dataset exactly once. Run with -race.
func TestTreeCacheConcurrentSingleBuild(t *testing.T) {
	s, _ := rawFixture(t, 1)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("/api/heatmap?dataset=0&w=32&h=24&rows=%d:%d", i, i+20)
			if rec := get(t, s, url); rec.Code != http.StatusOK {
				t.Errorf("tile %d = %d: %s", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	ts := treeStats(t, s)
	if ts.Builds != 1 {
		t.Fatalf("builds = %d, want exactly 1 (tree coalescing failed): %+v", ts.Builds, ts)
	}
	if ts.Hits+ts.Coalesced != n-1 {
		t.Fatalf("hits(%d)+coalesced(%d) != %d: %+v", ts.Hits, ts.Coalesced, n-1, ts)
	}
	// The heatmap endpoint really rendered n distinct tiles.
	if ep := statsOf(t, s, "heatmap"); ep.Computed != n {
		t.Fatalf("tiles computed = %d, want %d", ep.Computed, n)
	}
}

// TestReplaceDatasetInvalidates: swapping the dataset behind a pane bumps
// the generation, forces a recluster, reindexes the name, and keeps stale
// PNG tiles unreachable even for identical tile parameters.
func TestReplaceDatasetInvalidates(t *testing.T) {
	s, dss := rawFixture(t, 1)
	oldName := dss[0].Name

	first := get(t, s, "/api/heatmap?dataset=0&w=64&h=64")
	if first.Code != http.StatusOK {
		t.Fatalf("first tile = %d", first.Code)
	}
	if ts := treeStats(t, s); ts.Builds != 1 || ts.Invalidations != 0 {
		t.Fatalf("after first tile: %+v", ts)
	}

	// Replace with a differently-shaped dataset under a new name.
	u2 := synth.NewUniverse(150, 6, 99)
	repl := u2.Generate(synth.DatasetSpec{Name: "swapped", NumExperiments: 9, Seed: 100})
	if err := s.ReplaceDataset(oldName, repl); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceDataset("never-existed", repl); err == nil {
		t.Fatal("replacing an unknown dataset should error")
	}

	// Old name unresolvable, new name (and the index) serve the new data.
	if rec := get(t, s, "/api/heatmap?dataset="+url.QueryEscape(oldName)); rec.Code != http.StatusNotFound {
		t.Fatalf("old name after replace = %d", rec.Code)
	}
	second := get(t, s, "/api/heatmap?dataset=swapped&w=64&h=64")
	if second.Code != http.StatusOK {
		t.Fatalf("replacement tile = %d: %s", second.Code, second.Body.String())
	}
	ts := treeStats(t, s)
	if ts.Builds != 2 || ts.Invalidations != 1 {
		t.Fatalf("after replace: %+v", ts)
	}
	// Identical params, different generation: the tile was re-rendered, not
	// served from the pre-replace cache entry.
	if ep := statsOf(t, s, "heatmap"); ep.Computed != 2 {
		t.Fatalf("computed = %d, want 2 (stale tile served?)", ep.Computed)
	}
	if bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("replacement dataset rendered an identical tile")
	}
	// The 150-row replacement rejects the old dataset's row space.
	if rec := get(t, s, "/api/heatmap?dataset=swapped&rows=200:210"); rec.Code != http.StatusBadRequest {
		t.Fatalf("rows past replacement end = %d", rec.Code)
	}
}

// TestTreeCacheLeaderCancelHandover: a leader whose context dies mid-build
// must not fail live followers — one of them rebuilds. Exercised at the
// treeCache level for determinism; assertions hold under any interleaving.
func TestTreeCacheLeaderCancelHandover(t *testing.T) {
	u := synth.NewUniverse(1200, 10, 5)
	ds := u.Generate(synth.DatasetSpec{Name: "big", NumExperiments: 24, Seed: 6})
	tc := newTreeCache(treeClusterOptions(cluster.PearsonDist, cluster.AverageLinkage, false, false))
	tc.addRaw(ds)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := tc.get(leaderCtx, 0)
		leaderErr <- err
	}()
	time.Sleep(2 * time.Millisecond) // give the leader a head start (not required for correctness)
	followerErr := make(chan error, 1)
	go func() {
		cd, _, err := tc.get(context.Background(), 0)
		if err == nil && (cd == nil || cd.GeneTree == nil) {
			err = fmt.Errorf("follower got no tree")
		}
		followerErr <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelLeader()

	if err := <-followerErr; err != nil {
		t.Fatalf("follower failed after leader cancel: %v", err)
	}
	if err := <-leaderErr; err != nil && err != context.Canceled {
		t.Fatalf("leader error = %v, want nil or context.Canceled", err)
	}
	// Whatever the interleaving, the cache must end up with the tree built.
	if cd, _, err := tc.get(context.Background(), 0); err != nil || cd == nil {
		t.Fatalf("cache not settled: %v", err)
	}
}

// TestHeatmapDendrogramStrip: tree=W draws a dendrogram panel and the tile
// stays a valid PNG; a pane without a gene tree refuses honestly.
func TestHeatmapDendrogramStrip(t *testing.T) {
	s, _ := rawFixture(t, 1)
	withTree := get(t, s, "/api/heatmap?dataset=0&w=256&h=128&tree=64")
	if withTree.Code != http.StatusOK || !bytes.HasPrefix(withTree.Body.Bytes(), pngMagic) {
		t.Fatalf("tree tile = %d", withTree.Code)
	}
	plain := get(t, s, "/api/heatmap?dataset=0&w=256&h=128")
	if plain.Code != http.StatusOK {
		t.Fatalf("plain tile = %d", plain.Code)
	}
	if bytes.Equal(withTree.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("dendrogram strip did not change the tile")
	}

	// A pre-clustered pane without a gene tree (CDT-style display order
	// only) cannot draw a dendrogram.
	u := synth.NewUniverse(60, 4, 3)
	flat, err := core.FromDataset(u.Generate(synth.DatasetSpec{Name: "flat", NumExperiments: 8, Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := spell.NewEngine([]*microarray.Dataset{flat.Data})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Engine: engine, Datasets: []*core.ClusteredDataset{flat}, RenderWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if rec := get(t, s2, "/api/heatmap?dataset=flat&tree=32"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("treeless pane with tree param = %d", rec.Code)
	}
	if rec := get(t, s2, "/api/heatmap?dataset=flat&w=64&h=64"); rec.Code != http.StatusOK {
		t.Fatalf("treeless pane plain tile = %d", rec.Code)
	}
}

// TestMixedPreAndRawPanes: pre-clustered panes occupy the low indices, raw
// panes follow, and both resolve by name; pre-clustered panes never count
// as builds.
func TestMixedPreAndRawPanes(t *testing.T) {
	u := synth.NewUniverse(120, 5, 11)
	pre := u.Generate(synth.DatasetSpec{Name: "pre", NumExperiments: 8, Seed: 12})
	raw := u.Generate(synth.DatasetSpec{Name: "raw", NumExperiments: 8, Seed: 13})
	cd, err := core.Cluster(pre, core.ClusterOptions{Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := spell.NewEngine([]*microarray.Dataset{pre, raw})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:        engine,
		Datasets:      []*core.ClusteredDataset{cd},
		RawDatasets:   []*microarray.Dataset{raw},
		RenderWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	if rec := get(t, s, "/api/heatmap?dataset=pre&w=32&h=32"); rec.Code != http.StatusOK {
		t.Fatalf("pre pane = %d", rec.Code)
	}
	ts := treeStats(t, s)
	if ts.Builds != 0 || ts.Hits != 1 || ts.Panes != 2 || ts.Built != 1 {
		t.Fatalf("pre pane stats: %+v", ts)
	}
	if rec := get(t, s, "/api/heatmap?dataset=raw&w=32&h=32"); rec.Code != http.StatusOK {
		t.Fatalf("raw pane = %d", rec.Code)
	}
	if ts := treeStats(t, s); ts.Builds != 1 || ts.Built != 2 {
		t.Fatalf("raw pane stats: %+v", ts)
	}
}
