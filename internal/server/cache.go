package server

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"
)

// numShards splits the cache's key space so concurrent requests for
// different queries never contend on one lock. 16 is plenty: with the
// worker-pool and handler concurrency this daemon sustains, per-shard
// contention is unmeasurable beyond that.
const numShards = 16

// Cache is a sharded, byte-budgeted LRU cache shared by every endpoint of
// the daemon: SPELL results, enrichment tables and rendered PNG tiles all
// live here, each under a canonicalized query key. Eviction is
// least-recently-used per shard, driven by an approximate byte cost the
// caller supplies with each value.
type Cache struct {
	shards [numShards]cacheShard
	// onEvict, when set (before concurrent use, via OnEvict), observes every
	// key removed by LRU budget pressure — not replacements or oversized
	// drops. It runs outside the shard lock, so the callback may touch the
	// cache.
	onEvict func(key string)
}

// OnEvict installs the eviction observer. Call before the cache sees
// traffic; the prefetcher uses it to count speculative tiles evicted before
// any foreground request touched them.
func (c *Cache) OnEvict(fn func(key string)) { c.onEvict = fn }

type cacheShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	// prefixes tracks entry-count and byte occupancy per key prefix (the
	// token before the first 0x1f separator: "search", "enrich", "tile",
	// "scatter", "partial"), maintained on every insert, replace and
	// eviction — the per-workload occupancy picture /api/stats surfaces.
	prefixes map[string]*PrefixOccupancy
}

// PrefixOccupancy is one key family's share of the cache.
type PrefixOccupancy struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// keyPrefix is the cache key's leading token (up to the first 0x1f field
// separator every endpoint's key discipline starts with).
func keyPrefix(key string) string {
	if i := strings.IndexByte(key, 0x1f); i >= 0 {
		return key[:i]
	}
	return key
}

// account adjusts a prefix's occupancy; callers hold the shard lock.
func (s *cacheShard) account(prefix string, entries int, bytes int64) {
	p := s.prefixes[prefix]
	if p == nil {
		p = &PrefixOccupancy{}
		s.prefixes[prefix] = p
	}
	p.Entries += entries
	p.Bytes += bytes
	if p.Entries == 0 {
		delete(s.prefixes, prefix)
	}
}

type cacheEntry struct {
	key  string
	val  any
	cost int64
}

// NewCache builds a cache with a total byte budget split evenly across the
// shards. A non-positive budget defaults to 64 MiB.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].maxBytes = maxBytes / numShards
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].prefixes = make(map[string]*PrefixOccupancy)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or replaces) key with the given value and approximate byte
// cost, evicting least-recently-used entries until the shard fits its
// budget. Values larger than a whole shard are not cached at all.
func (c *Cache) Put(key string, val any, cost int64) {
	if cost < 1 {
		cost = 1
	}
	s := c.shard(key)
	s.mu.Lock()
	prefix := keyPrefix(key)
	if cost > s.maxBytes {
		// The value can never fit, but merely skipping the insert would
		// leave any previous value cached under the key — stale from the
		// caller's point of view, since Put is a replacement. Drop it.
		if el, ok := s.items[key]; ok {
			e := el.Value.(*cacheEntry)
			s.ll.Remove(el)
			delete(s.items, key)
			s.bytes -= e.cost
			s.account(prefix, -1, -e.cost)
		}
		s.mu.Unlock()
		return
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += cost - e.cost
		s.account(prefix, 0, cost-e.cost)
		e.val, e.cost = val, cost
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val, cost: cost})
		s.bytes += cost
		s.account(prefix, 1, cost)
	}
	// Evicted keys are collected under the lock and reported after it: the
	// observer may re-enter the cache.
	var evicted []string
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		s.ll.Remove(el)
		delete(s.items, e.key)
		s.bytes -= e.cost
		s.account(keyPrefix(e.key), -1, -e.cost)
		if c.onEvict != nil {
			evicted = append(evicted, e.key)
		}
	}
	s.mu.Unlock()
	for _, k := range evicted {
		c.onEvict(k)
	}
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the total approximate cost of all cached entries.
func (c *Cache) Bytes() int64 {
	var b int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}

// Prefixes aggregates per-prefix occupancy across the shards: how many
// entries and approximate bytes each key family ("search", "enrich",
// "tile", ...) currently holds. Sum of the returned occupancies equals
// Len()/Bytes().
func (c *Cache) Prefixes() map[string]PrefixOccupancy {
	out := make(map[string]PrefixOccupancy)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for prefix, p := range s.prefixes {
			agg := out[prefix]
			agg.Entries += p.Entries
			agg.Bytes += p.Bytes
			out[prefix] = agg
		}
		s.mu.Unlock()
	}
	return out
}
