package server

import (
	"errors"
	"fmt"
	"sync"
)

// ErrSaturated is returned by Pool.Run when the job queue is full. The
// heatmap handler maps it to 503 so an overloaded daemon sheds render load
// instead of accumulating unbounded goroutines — search and enrichment are
// cheap relative to rasterizing tiles, so only renders go through the pool.
var ErrSaturated = errors.New("server: render pool saturated")

// Pool is a bounded worker pool: a fixed set of workers drains a bounded
// job queue. Submissions beyond queue capacity fail fast with ErrSaturated
// rather than queueing unboundedly (the admission-control half of keeping
// tail latency sane under heavy traffic).
type Pool struct {
	jobs    chan poolJob
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

type poolJob struct {
	fn   func() (any, error)
	done chan poolResult
}

type poolResult struct {
	val any
	err error
}

// NewPool starts workers goroutines over a queue of depth queueDepth.
// Non-positive arguments default to 1 worker and 2×workers queue slots.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 2 * workers
	}
	p := &Pool{jobs: make(chan poolJob, queueDepth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.done <- runJob(j.fn)
			}
		}()
	}
	return p
}

// runJob executes one job, converting a panic into an error: a bad render
// must fail that one request, not take the whole daemon down with it.
func runJob(fn func() (any, error)) (res poolResult) {
	defer func() {
		if r := recover(); r != nil {
			res = poolResult{err: fmt.Errorf("server: render job panicked: %v", r)}
		}
	}()
	v, err := fn()
	return poolResult{val: v, err: err}
}

// ErrClosed is returned by Run after Close.
var ErrClosed = errors.New("server: render pool closed")

// Run submits fn and waits for its result. It returns ErrSaturated
// immediately when the queue is full and ErrClosed after Close.
func (p *Pool) Run(fn func() (any, error)) (any, error) {
	j := poolJob{fn: fn, done: make(chan poolResult, 1)}
	// The enqueue is non-blocking, so holding closeMu across it is cheap;
	// it serializes against Close so we never send on a closed channel.
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return nil, ErrClosed
	}
	select {
	case p.jobs <- j:
		p.closeMu.Unlock()
	default:
		p.closeMu.Unlock()
		return nil, ErrSaturated
	}
	r := <-j.done
	return r.val, r.err
}

// Close stops accepting work and waits for in-flight jobs to finish.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
}
