package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrSaturated is returned by Pool.Run when the job queue is full. The
// heatmap handler maps it to 503 so an overloaded daemon sheds render load
// instead of accumulating unbounded goroutines — search and enrichment are
// cheap relative to rasterizing tiles, so only renders go through the pool.
var ErrSaturated = errors.New("server: render pool saturated")

// Pool is a bounded worker pool: a fixed set of workers drains a bounded
// job queue. Submissions beyond queue capacity fail fast with ErrSaturated
// rather than queueing unboundedly (the admission-control half of keeping
// tail latency sane under heavy traffic). Jobs carry the submitter's
// context: a job whose context is already canceled when a worker picks it
// up is skipped without running — work queued for a client that has hung
// up must not steal a worker from clients still waiting.
type Pool struct {
	jobs    chan poolJob
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

type poolJob struct {
	ctx  context.Context
	fn   func() (any, error)
	done chan poolResult
}

type poolResult struct {
	val any
	err error
}

// NewPool starts workers goroutines over a queue of depth queueDepth.
// Non-positive arguments default to 1 worker and 2×workers queue slots.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 2 * workers
	}
	p := &Pool{jobs: make(chan poolJob, queueDepth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				if err := j.ctx.Err(); err != nil {
					// Abandoned while queued: skip the work entirely. The
					// done channel is buffered, so this never blocks even
					// when the submitter has already stopped listening.
					j.done <- poolResult{err: err}
					continue
				}
				j.done <- runJob(j.fn)
			}
		}()
	}
	return p
}

// runJob executes one job, converting a panic into an error: a bad render
// must fail that one request, not take the whole daemon down with it.
func runJob(fn func() (any, error)) (res poolResult) {
	defer func() {
		if r := recover(); r != nil {
			res = poolResult{err: fmt.Errorf("server: render job panicked: %v", r)}
		}
	}()
	v, err := fn()
	return poolResult{val: v, err: err}
}

// ErrClosed is returned by Run after Close.
var ErrClosed = errors.New("server: render pool closed")

// Run submits fn and waits for its result or for ctx to end, whichever
// comes first. It returns ErrSaturated immediately when the queue is full,
// ErrClosed after Close, and ctx.Err() when the context ends before the
// job completes — in which case a still-queued job will be skipped by the
// worker that dequeues it. A nil ctx means context.Background().
func (p *Pool) Run(ctx context.Context, fn func() (any, error)) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j := poolJob{ctx: ctx, fn: fn, done: make(chan poolResult, 1)}
	// The enqueue is non-blocking, so holding closeMu across it is cheap;
	// it serializes against Close so we never send on a closed channel.
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return nil, ErrClosed
	}
	select {
	case p.jobs <- j:
		p.closeMu.Unlock()
	default:
		p.closeMu.Unlock()
		return nil, ErrSaturated
	}
	select {
	case r := <-j.done:
		return r.val, r.err
	case <-ctx.Done():
		// The job may still run to completion; its buffered done channel
		// lets the worker move on without a receiver. If it finished in
		// the same instant we were leaving, prefer the result over the
		// cancellation — completed work must not be thrown away.
		select {
		case r := <-j.done:
			return r.val, r.err
		default:
		}
		return nil, ctx.Err()
	}
}

// QueueLen reports how many submitted jobs are waiting for a worker. The
// prefetcher polls it to yield to foreground renders: speculation only
// proceeds when the queue is drained.
func (p *Pool) QueueLen() int { return len(p.jobs) }

// Close stops accepting work and waits for in-flight jobs to finish.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
}
