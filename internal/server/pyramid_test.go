package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"image/color"
	"net/http"
	"testing"
	"time"

	"forestview/internal/microarray"
	"forestview/internal/render"
	"forestview/internal/spell"
)

// prefetchStats fetches the prefetch section of /api/stats.
func prefetchStats(t *testing.T, s *Server) *PrefetchInfo {
	t.Helper()
	rec := get(t, s, "/api/stats")
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap.Prefetch
}

// TestHeatmapLevelZeroByteIdentity is the pyramid's regression oracle at the
// serving layer: a default request (auto level resolving to 0) and an
// explicit level=0 request must produce byte-for-byte the PNG the pre-pyramid
// path produced — replicated here from the raw display rows.
func TestHeatmapLevelZeroByteIdentity(t *testing.T) {
	s, _ := rawFixture(t, 1)
	cd, _, err := s.trees.get(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(cd.DisplayOrder)

	// The pre-pyramid rendering path, verbatim. h exceeds half the row count,
	// so auto-level resolves to 0 and all three requests hit the raw path.
	const w, h = 96, 128
	c := render.NewCanvas(w, h, color.RGBA{A: 255})
	render.RenderHeatmap(c, render.Rect{X: 0, Y: 0, W: w, H: h},
		cd.RowsInDisplayRange(0, n), render.HeatmapOptions{
			ColorMap: render.GreenBlackRed, Limit: 2, CellBorder: true,
		})
	var want bytes.Buffer
	if err := c.EncodePNG(&want); err != nil {
		t.Fatal(err)
	}

	for _, u := range []string{
		fmt.Sprintf("/api/heatmap?dataset=0&w=%d&h=%d", w, h),
		fmt.Sprintf("/api/heatmap?dataset=0&w=%d&h=%d&level=0", w, h),
		fmt.Sprintf("/api/heatmap?dataset=0&w=%d&h=%d&level=auto", w, h),
	} {
		rec := get(t, s, u)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", u, rec.Code, rec.Body.String())
		}
		if lv := rec.Header().Get("X-Forestview-Level"); lv != "0" {
			t.Fatalf("%s resolved level %q, want 0 (span %d < h %d)", u, lv, n, h)
		}
		if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
			t.Fatalf("%s differs from the pre-pyramid render (%d vs %d bytes)",
				u, rec.Body.Len(), want.Len())
		}
	}
}

// TestHeatmapAutoLevel: a zoomed-out request (row span well past the pixel
// height) auto-selects a coarser pyramid level, disclosed in the
// X-Forestview-Level header, and still produces a valid PNG distinct from
// level 0 of the same geometry.
func TestHeatmapAutoLevel(t *testing.T) {
	s, _ := rawFixture(t, 1) // 220 rows: pyramid levels {0, 1}
	// span 220 >> 1 = 110 >= h=64, so auto resolves to level 1.
	auto := get(t, s, "/api/heatmap?dataset=0&w=64&h=64")
	if auto.Code != http.StatusOK || !bytes.HasPrefix(auto.Body.Bytes(), pngMagic) {
		t.Fatalf("auto tile = %d", auto.Code)
	}
	if lv := auto.Header().Get("X-Forestview-Level"); lv != "1" {
		t.Fatalf("auto level = %q, want 1", lv)
	}
	// The explicit twin shares the cache entry (auto resolves before keying).
	twin := get(t, s, "/api/heatmap?dataset=0&w=64&h=64&level=1")
	if twin.Header().Get(cacheHeader) != dispHit {
		t.Fatalf("explicit level=1 after auto: disposition %q, want %q",
			twin.Header().Get(cacheHeader), dispHit)
	}
	if !bytes.Equal(auto.Body.Bytes(), twin.Body.Bytes()) {
		t.Fatal("auto and explicit level=1 tiles differ")
	}
	// Forcing level 0 renders from the raw rows: a different image.
	l0 := get(t, s, "/api/heatmap?dataset=0&w=64&h=64&level=0")
	if l0.Code != http.StatusOK {
		t.Fatalf("level=0 tile = %d", l0.Code)
	}
	if bytes.Equal(auto.Body.Bytes(), l0.Body.Bytes()) {
		t.Fatal("level 1 tile identical to level 0 tile")
	}
}

// TestHeatmapLevelValidation extends the cheap-validation sweep to the
// pyramid and array-tree parameters: every rejection must come from the row
// count alone, before any tree builds.
func TestHeatmapLevelValidation(t *testing.T) {
	s, _ := rawFixture(t, 1) // 220 rows: valid levels are 0 and 1
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"level not a number", "/api/heatmap?dataset=0&level=high", http.StatusBadRequest},
		{"negative level", "/api/heatmap?dataset=0&level=-1", http.StatusBadRequest},
		{"level past pyramid", "/api/heatmap?dataset=0&level=2", http.StatusBadRequest},
		{"atree not a number", "/api/heatmap?dataset=0&atree=tall", http.StatusBadRequest},
		{"negative atree", "/api/heatmap?dataset=0&atree=-4", http.StatusBadRequest},
		{"atree swallows tile", "/api/heatmap?dataset=0&h=128&atree=128", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if rec := get(t, s, c.url); rec.Code != c.want {
				t.Errorf("%s = %d, want %d", c.url, rec.Code, c.want)
			}
		})
	}
	if ts := treeStats(t, s); ts.Builds != 0 || ts.Built != 0 {
		t.Fatalf("validation built trees: %+v", ts)
	}
}

// arrayFixture is rawFixture with column clustering on (and optional
// prefetch workers), for the atree and prefetch tests.
func arrayFixture(t *testing.T, prefetchWorkers int) (*Server, []*microarray.Dataset) {
	t.Helper()
	_, dss := rawFixture(t, 1) // reuse the generator; throw away that server
	engine, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Engine:          engine,
		RawDatasets:     dss,
		CacheBytes:      8 << 20,
		RenderWorkers:   2,
		RenderQueue:     64,
		ClusterArrays:   true,
		PrefetchWorkers: prefetchWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, dss
}

// TestHeatmapArrayDendrogramStrip mirrors the tree=W strip test for the
// column dendrogram: atree=H changes the tile, requires ClusterArrays, and
// a dataset swap invalidates column-tree tiles through the generation key.
func TestHeatmapArrayDendrogramStrip(t *testing.T) {
	s, dss := arrayFixture(t, 0)
	withStrip := get(t, s, "/api/heatmap?dataset=0&w=128&h=256&atree=48")
	if withStrip.Code != http.StatusOK || !bytes.HasPrefix(withStrip.Body.Bytes(), pngMagic) {
		t.Fatalf("atree tile = %d: %s", withStrip.Code, withStrip.Body.String())
	}
	plain := get(t, s, "/api/heatmap?dataset=0&w=128&h=256")
	if plain.Code != http.StatusOK {
		t.Fatalf("plain tile = %d", plain.Code)
	}
	if bytes.Equal(withStrip.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("array dendrogram strip did not change the tile")
	}
	// Both strips at once still renders.
	if rec := get(t, s, "/api/heatmap?dataset=0&w=128&h=256&tree=32&atree=48"); rec.Code != http.StatusOK {
		t.Fatalf("tree+atree tile = %d: %s", rec.Code, rec.Body.String())
	}

	// A daemon without ClusterArrays has no array tree to draw: honest 422.
	s2, _ := rawFixture(t, 1)
	if rec := get(t, s2, "/api/heatmap?dataset=0&w=128&h=256&atree=48"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("atree without ClusterArrays = %d", rec.Code)
	}

	// Swapping the dataset bumps the generation: the identical atree request
	// re-renders rather than serving the stale column-tree tile.
	if err := s.ReplaceDataset(dss[0].Name, dss[0]); err != nil {
		t.Fatal(err)
	}
	again := get(t, s, "/api/heatmap?dataset=0&w=128&h=256&atree=48")
	if again.Code != http.StatusOK {
		t.Fatalf("post-swap atree tile = %d: %s", again.Code, again.Body.String())
	}
	if again.Header().Get(cacheHeader) == dispHit {
		t.Fatal("post-swap atree tile served from the pre-swap cache entry")
	}
}

// TestPrefetchServesNextWindow is the speculative pipeline's end-to-end
// proof: serving one tile renders its pan/zoom neighbours in the
// background, and the follow-up request for the adjacent window is a cache
// hit disclosed as "prefetched", with the stats ledger accounting for every
// enqueued prediction.
func TestPrefetchServesNextWindow(t *testing.T) {
	s, _ := arrayFixture(t, 2)
	first := get(t, s, "/api/heatmap?dataset=0&w=64&h=48&rows=0:50")
	if first.Code != http.StatusOK {
		t.Fatalf("first tile = %d: %s", first.Code, first.Body.String())
	}
	// Predictions for rows 0:50 at level 0: the next window [50,100) and the
	// parent tile at level 1. Wait for the background workers to drain them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		pi := prefetchStats(t, s)
		if pi == nil {
			t.Fatal("stats missing prefetch section with workers enabled")
		}
		if pi.Rendered+pi.Coalesced+pi.SkippedCached+pi.SkippedStale+pi.Shed >= pi.Enqueued && pi.Enqueued >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetch queue never drained: %+v", *pi)
		}
		time.Sleep(5 * time.Millisecond)
	}

	next := get(t, s, "/api/heatmap?dataset=0&w=64&h=48&rows=50:100")
	if next.Code != http.StatusOK {
		t.Fatalf("next-window tile = %d", next.Code)
	}
	if disp := next.Header().Get(cacheHeader); disp != dispPrefetched {
		t.Fatalf("next-window disposition = %q, want %q", disp, dispPrefetched)
	}
	pi := prefetchStats(t, s)
	if pi.Served != 1 {
		t.Fatalf("served = %d, want 1: %+v", pi.Served, *pi)
	}
	// A second identical request is an ordinary hit: "prefetched" discloses
	// only the first foreground touch of a speculative render.
	again := get(t, s, "/api/heatmap?dataset=0&w=64&h=48&rows=50:100")
	if disp := again.Header().Get(cacheHeader); disp != dispHit {
		t.Fatalf("second touch disposition = %q, want %q", disp, dispHit)
	}
}

// TestPrefetchYieldsToForeground: speculation must never compete with real
// requests for render workers. With the pool's queue non-empty, a prefetch
// job sheds instead of rendering; with the queue full, enqueue-time
// admission drops instead of blocking.
func TestPrefetchYieldsToForeground(t *testing.T) {
	s, _ := rawFixture(t, 1) // PrefetchWorkers 0: we drive the prefetcher by hand
	_, gen, err := s.trees.get(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pf := newPrefetcher(s, 0, 4) // no workers: run() is called directly
	t.Cleanup(pf.Close)

	// Saturate the pool: rawFixture runs 2 workers over a 64-slot queue, so
	// two blocked jobs pin the workers and a third sits in the queue.
	block := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		go func() {
			_, _ = s.pool.Run(context.Background(), func() (any, error) {
				<-block
				return nil, nil
			})
			done <- struct{}{}
		}()
	}
	waitQueued := time.Now().Add(2 * time.Second)
	for s.pool.QueueLen() == 0 {
		if time.Now().After(waitQueued) {
			t.Fatal("pool queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	q := tileParams{dsIndex: 0, gen: gen, from: 0, to: 50, w: 32, h: 24, cmap: render.GreenBlackRed, limit: 2}
	pf.run(q)
	if pi := pf.snapshot(); pi.Shed != 1 || pi.Rendered != 0 {
		t.Fatalf("run against a backed-up pool: %+v (want shed=1, rendered=0)", pi)
	}
	if _, ok := s.cache.Get(q.key()); ok {
		t.Fatal("shed speculation still rendered into the cache")
	}
	close(block)
	for i := 0; i < 3; i++ {
		<-done
	}

	// With the pool idle again the same job renders.
	pf.run(q)
	if pi := pf.snapshot(); pi.Rendered != 1 {
		t.Fatalf("run against an idle pool: %+v (want rendered=1)", pi)
	}
	if _, ok := s.cache.Get(q.key()); !ok {
		t.Fatal("rendered speculation missing from the cache")
	}

	// A stale generation is skipped before any work.
	stale := q
	stale.gen, stale.from, stale.to = gen+1, 50, 100
	pf.run(stale)
	if pi := pf.snapshot(); pi.SkippedStale != 1 {
		t.Fatalf("stale-generation run: %+v (want skipped_stale=1)", pi)
	}

	// Enqueue-time admission: a full queue drops, never blocks.
	for i := 0; i < 6; i++ {
		c := q
		c.from, c.to = 50+i*10, 60+i*10
		pf.enqueue(c)
	}
	if pi := pf.snapshot(); pi.Dropped != 2 || pi.Enqueued != 4 {
		t.Fatalf("admission over a 4-slot queue: %+v (want enqueued=4, dropped=2)", pi)
	}
}

// TestPrefetchEvictedUnusedAccounting: a speculative tile the LRU evicts
// before any foreground touch is counted as a wasted prediction, and its
// pending mark is released.
func TestPrefetchEvictedUnusedAccounting(t *testing.T) {
	s, _ := rawFixture(t, 1)
	pf := newPrefetcher(s, 0, 4)
	t.Cleanup(pf.Close)

	key := tileParams{dsIndex: 0, gen: 1, from: 0, to: 50, w: 32, h: 24, cmap: render.GreenBlackRed, limit: 2}.key()
	pf.mark(key)
	// The 8 MiB budget splits across 16 shards, so ~400 KiB entries pressure
	// a shard after two tenants; flood filler keys until some land in the
	// speculative tile's shard and push it out.
	s.cache.Put(key, []byte("png"), 400<<10)
	for i := 0; i < 64 && pf.snapshot().EvictedUnused == 0; i++ {
		s.cache.Put(fmt.Sprintf("tile\x1ffill%d", i), []byte("png2"), 400<<10)
	}
	if pi := pf.snapshot(); pi.EvictedUnused != 1 || pi.Pending != 0 {
		t.Fatalf("after eviction pressure: %+v (want evicted_unused=1, pending=0)", pi)
	}
	// A claim after eviction finds nothing: the tile is gone either way.
	if pf.claim(key) {
		t.Fatal("claimed a key the cache already evicted")
	}
}
