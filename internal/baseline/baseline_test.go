package baseline

import (
	"image/color"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
	"forestview/internal/render"
	"forestview/internal/synth"
)

func fixtureDatasets(t *testing.T, n int) []*core.ClusteredDataset {
	t.Helper()
	u := synth.NewUniverse(40, 5, 3)
	var out []*core.ClusteredDataset
	for i := 0; i < n; i++ {
		ds := u.Generate(synth.DatasetSpec{
			Name: "ds" + string(rune('A'+i)), NumExperiments: 8, Seed: int64(i + 1),
		})
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cd)
	}
	return out
}

func TestViewerSelectExportImport(t *testing.T) {
	cds := fixtureDatasets(t, 2)
	v1 := Launch(cds[0])
	v2 := Launch(cds[1])
	n := v1.SelectRegion(0, 9)
	if n != 10 {
		t.Fatalf("selected %d", n)
	}
	list := v1.ExportList()
	if len(list) != 10 {
		t.Fatalf("exported %d", len(list))
	}
	found := v2.ImportList(list)
	if found != 10 { // same universe: all genes exist
		t.Fatalf("imported %d", found)
	}
	if len(v2.Selection()) != 10 {
		t.Fatalf("selection = %d", len(v2.Selection()))
	}
}

func TestViewerImportLosesUnknownGenes(t *testing.T) {
	cds := fixtureDatasets(t, 1)
	v := Launch(cds[0])
	found := v.ImportList([]string{"NOT-A-GENE", cds[0].Data.Genes[0].ID})
	if found != 1 {
		t.Fatalf("found = %d, want 1", found)
	}
}

func TestViewerSelectRegionClamps(t *testing.T) {
	cds := fixtureDatasets(t, 1)
	v := Launch(cds[0])
	n := v.SelectRegion(-5, 1000)
	if n != 40 {
		t.Fatalf("clamped selection = %d", n)
	}
	n = v.SelectRegion(9, 5)
	if n != 5 {
		t.Fatalf("reversed region = %d", n)
	}
}

func TestViewerRender(t *testing.T) {
	cds := fixtureDatasets(t, 1)
	v := Launch(cds[0])
	v.SelectRegion(0, 5)
	c := render.NewCanvas(200, 120, color.RGBA{A: 255})
	v.Render(c, 200, 120)
	nonBG := 0
	bg := color.RGBA{R: 24, G: 24, B: 32, A: 255}
	for y := 0; y < 120; y += 3 {
		for x := 0; x < 200; x += 3 {
			if c.At(x, y) != bg {
				nonBG++
			}
		}
	}
	if nonBG < 50 {
		t.Fatalf("viewer rendered too little: %d", nonBG)
	}
}

func TestCrossDatasetComparisonStepCount(t *testing.T) {
	k := 5
	cds := fixtureDatasets(t, k)
	wf, viewers, err := CrossDatasetComparison(cds, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Steps: k launches + 1 select + 1 export + (k-1)*(paste+import+inspect).
	want := k + 2 + (k-1)*3
	if len(wf.Steps) != want {
		t.Fatalf("steps = %d, want %d", len(wf.Steps), want)
	}
	if wf.Transfers != k-1 {
		t.Fatalf("transfers = %d, want %d", wf.Transfers, k-1)
	}
	// All viewers ended up highlighting the genes they share.
	for i, v := range viewers {
		if i == 0 {
			continue
		}
		if len(v.Selection()) != 10 {
			t.Fatalf("viewer %d selection = %d", i, len(v.Selection()))
		}
	}
	if _, _, err := CrossDatasetComparison(cds, 99, 0, 9); err == nil {
		t.Fatal("bad source should error")
	}
}

func TestWorkflowScalesLinearly(t *testing.T) {
	// The baseline's step count grows linearly with dataset count; the
	// paper's "over a dozen instances" pain.
	s5, _, _ := CrossDatasetComparison(fixtureDatasets(t, 5), 0, 0, 9)
	s10, _, _ := CrossDatasetComparison(fixtureDatasets(t, 10), 0, 0, 9)
	if len(s10.Steps) <= len(s5.Steps) {
		t.Fatal("baseline workflow should grow with dataset count")
	}
	growth := len(s10.Steps) - len(s5.Steps)
	if growth != 5*4 { // 5 more launches + 5 more paste/import/inspect triples
		t.Fatalf("growth = %d, want 20", growth)
	}
}

func TestForestViewComparisonConstantSteps(t *testing.T) {
	for _, k := range []int{3, 8} {
		cds := fixtureDatasets(t, k)
		fv, err := core.New(cds)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := ForestViewComparison(fv, 0, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(wf.Steps) != 3 {
			t.Fatalf("ForestView steps = %d, want 3 (constant)", len(wf.Steps))
		}
		if wf.Transfers != 0 {
			t.Fatal("ForestView needs no manual transfers")
		}
		// And the selection is live in every pane.
		if fv.Selection().Len() != 10 {
			t.Fatalf("selection = %d", fv.Selection().Len())
		}
	}
}

func TestGenesLostAccounting(t *testing.T) {
	// Build two datasets with partially disjoint genes.
	a := microarray.NewDataset("a", []string{"x", "y", "z"})
	for i := 0; i < 10; i++ {
		_ = a.AddGene(microarray.Gene{ID: microarray.GeneLeafID(i)}, []float64{1, 2, 3})
	}
	b := microarray.NewDataset("b", []string{"x", "y", "z"})
	for i := 5; i < 15; i++ {
		_ = b.AddGene(microarray.Gene{ID: microarray.GeneLeafID(i)}, []float64{1, 2, 3})
	}
	ca, _ := core.FromDataset(a)
	cb, _ := core.FromDataset(b)
	wf, _, err := CrossDatasetComparison([]*core.ClusteredDataset{ca, cb}, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Genes 0..4 are absent from b: 5 genes silently lost.
	if wf.GenesLost != 5 {
		t.Fatalf("genes lost = %d, want 5", wf.GenesLost)
	}
}
