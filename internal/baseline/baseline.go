// Package baseline models the pre-ForestView workflow the paper's Section 4
// contrasts against: one independent single-dataset viewer per dataset
// (Java TreeView instances), with gene lists moved between them by manual
// export / cut-and-paste / import. The workflow bench (experiment C3)
// counts the user-visible steps and the redundant work this forces,
// quantifying the paper's claim that the same analysis "would need to
// launch over a dozen independent instances of a program and continually
// cut and paste selections between instances".
package baseline

import (
	"fmt"
	"image/color"

	"forestview/internal/core"
	"forestview/internal/render"
)

// Viewer is a single-dataset visualization instance: it knows nothing about
// any other dataset (the defining limitation).
type Viewer struct {
	CD        *core.ClusteredDataset
	selection []string
	selSet    map[string]bool
	launched  bool
}

// Launch simulates starting the program instance (a real step: each
// TreeView instance had to be opened and its file loaded by hand).
func Launch(cd *core.ClusteredDataset) *Viewer {
	return &Viewer{CD: cd, launched: true, selSet: make(map[string]bool)}
}

// SelectRegion selects display positions [from, to] within this viewer.
func (v *Viewer) SelectRegion(from, to int) int {
	if from > to {
		from, to = to, from
	}
	if from < 0 {
		from = 0
	}
	if to >= len(v.CD.DisplayOrder) {
		to = len(v.CD.DisplayOrder) - 1
	}
	v.selection = nil
	v.selSet = make(map[string]bool)
	for pos := from; pos <= to; pos++ {
		id := v.CD.Data.Genes[v.CD.DisplayOrder[pos]].ID
		v.selection = append(v.selection, id)
		v.selSet[id] = true
	}
	return len(v.selection)
}

// ExportList returns the selected IDs (the clipboard payload).
func (v *Viewer) ExportList() []string {
	return append([]string(nil), v.selection...)
}

// ImportList highlights the given genes in this viewer and returns how many
// were found here. Genes absent from this dataset are silently lost — the
// information loss the merged interface exists to prevent.
func (v *Viewer) ImportList(ids []string) int {
	v.selection = nil
	v.selSet = make(map[string]bool)
	found := 0
	for _, id := range ids {
		if _, ok := v.CD.Data.GeneIndex(id); ok {
			v.selection = append(v.selection, id)
			v.selSet[id] = true
			found++
		}
	}
	return found
}

// Selection returns the current highlight.
func (v *Viewer) Selection() []string { return append([]string(nil), v.selection...) }

// Render draws this viewer's single pane (global strip + zoomed selection),
// the per-instance window the analyst had to arrange on screen manually.
func (v *Viewer) Render(c *render.Canvas, w, h int) {
	c.FillRect(0, 0, w, h, color.RGBA{R: 24, G: 24, B: 32, A: 255})
	c.DrawTextClipped(3, 2, v.CD.Data.Name, 1, w-6, color.RGBA{R: 235, G: 235, B: 235, A: 255})
	top := render.TextHeight(1) + 4
	globalW := w / 4
	render.RenderHeatmap(c, render.Rect{X: 2, Y: top, W: globalW, H: h - top - 2},
		v.CD.RowsInDisplayOrder(), render.HeatmapOptions{
			ColorMap: render.GreenBlackRed, Limit: 2,
			Highlight: v.highlightPositions(),
		})
	var zoomRows [][]float64
	for _, id := range v.selection {
		if r, ok := v.CD.Data.GeneIndex(id); ok {
			zoomRows = append(zoomRows, v.CD.Data.Row(r))
		}
	}
	render.RenderHeatmap(c, render.Rect{X: globalW + 6, Y: top, W: w - globalW - 8, H: h - top - 2},
		zoomRows, render.HeatmapOptions{ColorMap: render.GreenBlackRed, Limit: 2, CellBorder: true})
}

func (v *Viewer) highlightPositions() map[int]bool {
	out := make(map[int]bool)
	for _, id := range v.selection {
		if r, ok := v.CD.Data.GeneIndex(id); ok {
			if pos := v.CD.DisplayPos(r); pos >= 0 {
				out[pos] = true
			}
		}
	}
	return out
}

// Step is one user-visible workflow action.
type Step struct {
	// Kind is one of launch, select, export, paste, import, inspect.
	Kind string
	// Where names the viewer instance involved.
	Where string
	// Detail describes the action.
	Detail string
}

// Workflow records the manual actions a cross-dataset comparison costs.
type Workflow struct {
	Steps []Step
	// Transfers counts export/paste/import round trips (the error-prone
	// part of the manual workflow).
	Transfers int
	// GenesLost counts selection genes that silently disappeared because a
	// target dataset does not measure them.
	GenesLost int
}

func (w *Workflow) add(kind, where, detail string) {
	w.Steps = append(w.Steps, Step{Kind: kind, Where: where, Detail: detail})
}

// CrossDatasetComparison performs the Section-4 analysis with independent
// viewers: select a region in the source dataset, then propagate that
// selection into every other dataset by export + paste + import, and
// inspect each window. It returns the recorded workflow and the per-viewer
// final selections.
func CrossDatasetComparison(cds []*core.ClusteredDataset, source, from, to int) (*Workflow, []*Viewer, error) {
	if source < 0 || source >= len(cds) {
		return nil, nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	wf := &Workflow{}
	viewers := make([]*Viewer, len(cds))
	for i, cd := range cds {
		viewers[i] = Launch(cd)
		wf.add("launch", cd.Data.Name, "open instance and load file")
	}
	src := viewers[source]
	n := src.SelectRegion(from, to)
	wf.add("select", src.CD.Data.Name, fmt.Sprintf("highlight %d genes", n))
	list := src.ExportList()
	wf.add("export", src.CD.Data.Name, "export gene list")
	for i, v := range viewers {
		if i == source {
			continue
		}
		wf.add("paste", v.CD.Data.Name, "paste gene list into search box")
		wf.Transfers++
		found := v.ImportList(list)
		wf.GenesLost += len(list) - found
		wf.add("import", v.CD.Data.Name, fmt.Sprintf("matched %d of %d genes", found, len(list)))
		wf.add("inspect", v.CD.Data.Name, "arrange window and read expression pattern")
	}
	return wf, viewers, nil
}

// ForestViewComparison performs the same analysis in ForestView and records
// the equivalent workflow: one selection, every pane updates.
func ForestViewComparison(fv *core.ForestView, source, from, to int) (*Workflow, error) {
	wf := &Workflow{}
	wf.add("launch", "ForestView", "open one instance with all datasets")
	if err := fv.SelectRegion(source, from, to); err != nil {
		return nil, err
	}
	wf.add("select", "ForestView", "highlight region in one global view")
	wf.add("inspect", "ForestView", "all panes update synchronously")
	return wf, nil
}
