package spellweb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"forestview/internal/spell"
	"forestview/internal/synth"
)

func testServer(t *testing.T) (*Server, *synth.Universe) {
	t.Helper()
	u := synth.NewUniverse(200, 8, 111)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 4, MinExperiments: 10, MaxExperiments: 16,
		ActiveFraction: 0.5, Noise: 0.25, Seed: 113,
	})
	engine, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(engine), u
}

func TestIndexPage(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "SPELL") || !strings.Contains(body, "4 datasets") {
		t.Fatalf("index body missing content: %s", body[:200])
	}
}

func TestIndexNotFoundForOtherPaths(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestSearchHTML(t *testing.T) {
	s, u := testServer(t)
	ids := u.ModuleGeneIDs(3)
	q := strings.Join(ids[:3], ",")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q="+q, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Datasets by relevance") {
		t.Fatal("results table missing")
	}
	if !strings.Contains(body, ids[0]) {
		t.Fatal("query gene missing from results")
	}
}

func TestSearchHTMLEmptyQuery(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "at least one gene") {
		t.Fatalf("empty query handling: %d", rec.Code)
	}
}

func TestSearchHTMLUnknownGenes(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=NOPE1,NOPE2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "none of the") {
		t.Fatal("error message missing")
	}
}

func TestAPISearch(t *testing.T) {
	s, u := testServer(t)
	ids := u.ModuleGeneIDs(3)
	q := strings.Join(ids[:3], ",")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/search?q="+q, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var res spell.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("datasets = %d", len(res.Datasets))
	}
	if len(res.Genes) == 0 {
		t.Fatal("no genes in API result")
	}
}

func TestAPISearchErrors(t *testing.T) {
	s, _ := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/search", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/search?q=ZZZ", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown genes status = %d", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Fatal("error payload missing")
	}
}

// TestAPISearchSingleGeneRejected: the standalone server shares the daemon's
// single-gene contract — one gene (even duplicated) means NaN coherence,
// which used to kill the JSON encoder after the 200 header committed. The
// API must answer 422 with a parseable error body instead.
func TestAPISearchSingleGeneRejected(t *testing.T) {
	s, u := testServer(t)
	g := u.ModuleGeneIDs(1)[0]
	for _, q := range []string{g, g + "," + g} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/search?q="+q, nil))
		if rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("q=%s: status = %d, want 422 (body %q)", q, rec.Code, rec.Body.String())
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("q=%s: error body is not JSON: %v", q, err)
		}
		if !strings.Contains(e["error"], "single-gene") {
			t.Fatalf("q=%s: unhelpful error %q", q, e["error"])
		}
	}
	// The HTML page renders the same guidance instead of a NaN ranking.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q="+g, nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "two distinct gene IDs") {
		t.Fatalf("HTML single-gene search: %d %q", rec.Code, rec.Body.String())
	}
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"A,B,C", 3},
		{"A B\tC\nD", 4},
		{"  A ,, B ", 2},
		{"", 0},
		{" ,, ", 0},
	}
	for _, c := range cases {
		if got := ParseQuery(c.in); len(got) != c.want {
			t.Errorf("ParseQuery(%q) = %v, want %d items", c.in, got, c.want)
		}
	}
}

func TestMaxGenesCap(t *testing.T) {
	s, u := testServer(t)
	s.MaxGenes = 5
	ids := u.ModuleGeneIDs(3)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/search?q="+strings.Join(ids[:3], ","), nil))
	var res spell.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Genes) != 5 {
		t.Fatalf("genes = %d, want capped 5", len(res.Genes))
	}
}
