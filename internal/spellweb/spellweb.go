// Package spellweb provides the web front-end to the SPELL search engine —
// the reproduction of the Figure-4 artifact ("Currently SPELL runs on a
// pre-defined collection of microarray data through a web interface"). It
// exposes an HTML search page over a fixed compendium plus a JSON API, so
// both humans and ForestView integrations can query it.
package spellweb

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"forestview/internal/spell"
)

// Searcher is the engine-shaped dependency of the web front-end. The plain
// *spell.Engine satisfies it; so does the query daemon's cached, coalesced
// search path (internal/server), which is how the HTML page and the JSON
// API come to share one engine instance and one result cache.
type Searcher interface {
	Search(ids []string, opt spell.Options) (*spell.Result, error)
	NumDatasets() int
	NumGenes() int
}

// ContextSearcher is an optional Searcher upgrade. Implementations
// receive the page request's context — so an abandoned browser tab
// cancels the search, which on a sharded daemon stops a whole scatter —
// and may return a service notice the page must disclose alongside the
// result (e.g. that a ranking is degraded because a shard was
// unreachable). An empty notice means nothing to disclose.
type ContextSearcher interface {
	SearchCtx(ctx context.Context, ids []string, opt spell.Options) (res *spell.Result, notice string, err error)
}

// search dispatches through ContextSearcher when the engine offers it.
func (s *Server) search(r *http.Request, ids []string) (*spell.Result, string, error) {
	opt := spell.Options{MaxGenes: s.maxGenes(), IncludeQuery: true}
	if cs, ok := s.engine.(ContextSearcher); ok {
		return cs.SearchCtx(r.Context(), ids, opt)
	}
	res, err := s.engine.Search(ids, opt)
	return res, "", err
}

// Server wraps a Searcher as an http.Handler.
type Server struct {
	engine Searcher
	mux    *http.ServeMux
	// MaxGenes caps result length per query (default 50).
	MaxGenes int
}

// NewServer builds the standalone handler over a prepared engine, with its
// own mux serving the HTML page, the JSON API and a health check.
func NewServer(engine *spell.Engine) *Server {
	return NewServerFor(engine)
}

// NewServerFor is NewServer for any Searcher implementation.
func NewServerFor(engine Searcher) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux(), MaxGenes: 50}
	s.RegisterHTML(s.mux)
	s.mux.HandleFunc("/api/search", s.handleAPISearch)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// RegisterHTML mounts only the human-facing routes ("/" and "/search") on
// an external mux. The query daemon uses this to serve the SPELL page from
// its own mux while keeping ownership of the JSON API and health routes.
func (s *Server) RegisterHTML(mux *http.ServeMux) {
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/search", s.handleSearch)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var pageTmpl = template.Must(template.New("page").Funcs(template.FuncMap{
	"inc": func(i int) int { return i + 1 },
}).Parse(`<!DOCTYPE html>
<html><head><title>SPELL search</title></head>
<body>
<h1>SPELL: Serial Patterns of Expression Levels Locator</h1>
<p>{{.NumDatasets}} datasets, {{.NumGenes}} genes in the compendium.</p>
<form action="/search" method="get">
  <input type="text" name="q" size="60" value="{{.Query}}"
         placeholder="query genes, comma separated (e.g. YAL001C, YBR072W)">
  <input type="submit" value="Search">
</form>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
{{if .Notice}}<p style="color:darkorange"><b>notice:</b> {{.Notice}}</p>{{end}}
{{if .Result}}
<h2>Datasets by relevance</h2>
<table border="1" cellpadding="3">
<tr><th>rank</th><th>weight</th><th>query coherence</th><th>query genes present</th><th>dataset</th></tr>
{{range $i, $d := .Result.Datasets}}
<tr><td>{{inc $i}}</td><td>{{printf "%.4f" $d.Weight}}</td><td>{{printf "%.3f" $d.QueryCoherence}}</td><td>{{$d.QueryPresent}}</td><td>{{$d.Name}}</td></tr>
{{end}}
</table>
<h2>Genes by weighted correlation</h2>
<table border="1" cellpadding="3">
<tr><th>rank</th><th>score</th><th>gene</th><th>name</th><th>query?</th></tr>
{{range $i, $g := .Result.Genes}}
<tr><td>{{inc $i}}</td><td>{{printf "%.4f" $g.Score}}</td><td>{{$g.ID}}</td><td>{{$g.Name}}</td><td>{{if $g.IsQuery}}*{{end}}</td></tr>
{{end}}
</table>
{{end}}
</body></html>`))

type pageData struct {
	NumDatasets int
	NumGenes    int
	Query       string
	Error       string
	// Notice is a non-fatal service disclosure (degraded shard coverage).
	Notice string
	Result *spell.Result
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.renderPage(w, pageData{
		NumDatasets: s.engine.NumDatasets(),
		NumGenes:    s.engine.NumGenes(),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	data := pageData{
		NumDatasets: s.engine.NumDatasets(),
		NumGenes:    s.engine.NumGenes(),
		Query:       q,
	}
	ids := ParseQuery(q)
	if len(ids) == 0 {
		data.Error = "enter at least one gene ID"
		s.renderPage(w, data)
		return
	}
	if len(spell.CanonicalQuery(ids)) < 2 {
		// One gene has no query pairs: every dataset's coherence is NaN and
		// the ranking is weightless. Same contract as the daemon's API.
		data.Error = "enter at least two distinct gene IDs: SPELL's dataset weighting needs a pair to measure coherence"
		s.renderPage(w, data)
		return
	}
	res, notice, err := s.search(r, ids)
	if err != nil {
		data.Error = err.Error()
		s.renderPage(w, data)
		return
	}
	data.Result, data.Notice = res, notice
	s.renderPage(w, data)
}

func (s *Server) handleAPISearch(w http.ResponseWriter, r *http.Request) {
	ids := ParseQuery(r.URL.Query().Get("q"))
	if len(ids) == 0 {
		http.Error(w, `{"error":"missing q parameter"}`, http.StatusBadRequest)
		return
	}
	if len(spell.CanonicalQuery(ids)) < 2 {
		// A one-gene query yields NaN coherence in every DatasetRank, which
		// would kill the JSON encoder below after the 200 header committed —
		// the empty-200 bug. Reject it like the daemon's /api/search does.
		apiError(w, http.StatusUnprocessableEntity, spell.MsgSingleGeneQuery)
		return
	}
	res, _, err := s.search(r, ids)
	if err != nil {
		apiError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	// Encode before committing the status line so a failure can still
	// become a real 500 instead of a silently truncated 200.
	body, err := json.Marshal(res)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal: response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// apiError writes a JSON error payload; marshaling a string map cannot
// fail, so this path is safe for encoder-failure reporting too.
func apiError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *Server) renderPage(w http.ResponseWriter, data pageData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) maxGenes() int {
	if s.MaxGenes > 0 {
		return s.MaxGenes
	}
	return 50
}

// ParseQuery splits a comma/whitespace separated gene list. It is the one
// query-string grammar shared by the HTML form, the JSON API and the query
// daemon's endpoints.
func ParseQuery(q string) []string {
	var out []string
	for _, f := range strings.FieldsFunc(q, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	}) {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
