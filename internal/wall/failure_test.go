package wall

import (
	"testing"
	"time"
)

// Failure injection: a render node vanishing mid-session (projector PC
// crash) must surface as an error from the next frame, never a hang — the
// coordinator cannot barrier on a dead node forever.
func TestNetWallNodeFailure(t *testing.T) {
	cfg := Config{TilesX: 2, TilesY: 1, TileW: 32, TileH: 32}
	nw, err := StartNetWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.RenderFrame(); err != nil {
		t.Fatal(err)
	}
	// Kill one node behind the coordinator's back.
	nw.nodes[1].Close()

	done := make(chan error, 1)
	go func() {
		_, err := nw.RenderFrame()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("frame against a dead node should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator hung on a dead node")
	}
}

// A second Close must be safe (idempotent shutdown).
func TestNetWallDoubleClose(t *testing.T) {
	cfg := Config{TilesX: 1, TilesY: 1, TileW: 16, TileH: 16}
	nw, err := StartNetWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	nw.Close()
}

// Stopping a node before the coordinator ever connects must not deadlock
// StartNetNode's serve loop.
func TestNetNodeCloseWithoutConnection(t *testing.T) {
	nn, _, err := StartNetNode(TileID{}, Config{TilesX: 1, TilesY: 1, TileW: 8, TileH: 8}, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		nn.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("node Close hung without a connection")
	}
}
