package wall

import (
	"image/color"
	"testing"

	"forestview/internal/render"
)

// gradientScene paints pixel (x,y) of the wall-global coordinate system
// with a deterministic color, so tile/composite correctness is verifiable
// pixel by pixel.
func gradientScene() Scene {
	return SceneFunc(func(c *render.Canvas, vp render.Rect, wallW, wallH int) {
		for y := 0; y < vp.H; y++ {
			for x := 0; x < vp.W; x++ {
				gx, gy := vp.X+x, vp.Y+y
				c.Set(x, y, color.RGBA{
					R: uint8(gx % 251),
					G: uint8(gy % 241),
					B: uint8((gx + gy) % 239),
					A: 255,
				})
			}
		}
	})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{TilesX: 2, TilesY: 2, TileW: 10, TileH: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TilesX: 0, TilesY: 1, TileW: 1, TileH: 1},
		{TilesX: 1, TilesY: 1, TileW: 0, TileH: 1},
		{TilesX: 1, TilesY: 1, TileW: 1, TileH: 1, BezelPx: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := Config{TilesX: 3, TilesY: 2, TileW: 100, TileH: 50}
	if c.WallWidth() != 300 || c.WallHeight() != 100 {
		t.Fatalf("wall dims = %dx%d", c.WallWidth(), c.WallHeight())
	}
	if c.Pixels() != 30000 {
		t.Fatalf("pixels = %d", c.Pixels())
	}
}

func TestPresetConfigs(t *testing.T) {
	d := Desktop2MP()
	if d.Pixels() < 1_800_000 || d.Pixels() > 2_200_000 {
		t.Fatalf("desktop pixels = %d, want ~2MP", d.Pixels())
	}
	p := PrincetonWall()
	if p.Pixels() < 15_000_000 {
		t.Fatalf("princeton pixels = %d", p.Pixels())
	}
	l := LargeWall()
	ratio := float64(l.Pixels()) / float64(d.Pixels())
	if ratio < 50 || ratio > 200 {
		t.Fatalf("large/desktop ratio = %v, want ~two orders of magnitude", ratio)
	}
}

func TestNewWallErrors(t *testing.T) {
	if _, err := NewWall(Config{}, gradientScene()); err == nil {
		t.Fatal("bad config should error")
	}
	if _, err := NewWall(Desktop2MP(), nil); err == nil {
		t.Fatal("nil scene should error")
	}
}

func TestNodeViewport(t *testing.T) {
	cfg := Config{TilesX: 3, TilesY: 2, TileW: 10, TileH: 20}
	n := NewNode(TileID{X: 2, Y: 1}, cfg, gradientScene())
	vp := n.Viewport()
	if vp.X != 20 || vp.Y != 20 || vp.W != 10 || vp.H != 20 {
		t.Fatalf("viewport = %+v", vp)
	}
	if n.ID.String() != "tile(2,1)" {
		t.Fatalf("ID = %s", n.ID)
	}
}

func TestWallRenderFrameBarrier(t *testing.T) {
	cfg := Config{TilesX: 4, TilesY: 2, TileW: 32, TileH: 32}
	w, err := NewWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	fs := w.RenderFrame()
	if fs.Frame != 1 {
		t.Fatalf("frame = %d", fs.Frame)
	}
	if len(fs.Tiles) != 8 {
		t.Fatalf("tiles = %d", len(fs.Tiles))
	}
	if fs.SkewNS < 0 {
		t.Fatalf("skew = %d", fs.SkewNS)
	}
	if fs.TotalPixels != cfg.Pixels() {
		t.Fatalf("pixels = %d", fs.TotalPixels)
	}
	if fs.MaxRenderNS <= 0 {
		t.Fatalf("max render = %d", fs.MaxRenderNS)
	}
	for _, n := range []int{0, 1} {
		_ = n
	}
	// Every node rendered exactly one frame.
	for y := 0; y < cfg.TilesY; y++ {
		for x := 0; x < cfg.TilesX; x++ {
			if w.Node(x, y).Frames() != 1 {
				t.Fatalf("node %d,%d frames = %d", x, y, w.Node(x, y).Frames())
			}
		}
	}
}

func TestWallNodeLookup(t *testing.T) {
	w, _ := NewWall(Config{TilesX: 2, TilesY: 2, TileW: 8, TileH: 8}, gradientScene())
	if w.Node(1, 1) == nil {
		t.Fatal("valid node missing")
	}
	if w.Node(-1, 0) != nil || w.Node(2, 0) != nil {
		t.Fatal("out-of-range node should be nil")
	}
	if w.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", w.NumNodes())
	}
}

// The compositor invariant: a tiled render composited back together is
// pixel-identical to rendering the scene once at full resolution.
func TestCompositeLossless(t *testing.T) {
	cfg := Config{TilesX: 3, TilesY: 2, TileW: 40, TileH: 30}
	scene := gradientScene()
	w, err := NewWall(cfg, scene)
	if err != nil {
		t.Fatal(err)
	}
	w.RenderFrame()
	comp := w.Composite()

	ref := render.NewCanvas(cfg.WallWidth(), cfg.WallHeight(), color.RGBA{A: 255})
	scene.Render(ref, render.Rect{X: 0, Y: 0, W: cfg.WallWidth(), H: cfg.WallHeight()},
		cfg.WallWidth(), cfg.WallHeight())

	if comp.Width() != ref.Width() || comp.Height() != ref.Height() {
		t.Fatalf("composite dims %dx%d vs %dx%d", comp.Width(), comp.Height(), ref.Width(), ref.Height())
	}
	for y := 0; y < ref.Height(); y++ {
		for x := 0; x < ref.Width(); x++ {
			if comp.At(x, y) != ref.At(x, y) {
				t.Fatalf("pixel (%d,%d): composite %v vs reference %v",
					x, y, comp.At(x, y), ref.At(x, y))
			}
		}
	}
}

func TestCompositeWithBezel(t *testing.T) {
	cfg := Config{TilesX: 2, TilesY: 1, TileW: 10, TileH: 10, BezelPx: 4}
	w, _ := NewWall(cfg, gradientScene())
	w.RenderFrame()
	comp := w.Composite()
	if comp.Width() != 24 || comp.Height() != 10 {
		t.Fatalf("bezel composite dims = %dx%d", comp.Width(), comp.Height())
	}
	// Bezel column is background black.
	if got := comp.At(11, 5); (got != color.RGBA{A: 255}) {
		t.Fatalf("bezel pixel = %v", got)
	}
}

func TestDoubleBufferSwap(t *testing.T) {
	cfg := Config{TilesX: 1, TilesY: 1, TileW: 8, TileH: 8}
	w, _ := NewWall(cfg, gradientScene())
	n := w.Node(0, 0)
	// Before any frame, the front buffer is blank.
	if got := n.Front().At(3, 3); (got != color.RGBA{A: 255}) {
		t.Fatalf("front before frame = %v", got)
	}
	w.RenderFrame()
	if got := n.Front().At(3, 3); (got == color.RGBA{A: 255}) {
		t.Fatal("front after frame still blank — swap failed")
	}
}

func TestChecksumDeterminism(t *testing.T) {
	cfg := Config{TilesX: 2, TilesY: 2, TileW: 16, TileH: 16}
	w1, _ := NewWall(cfg, gradientScene())
	w2, _ := NewWall(cfg, gradientScene())
	f1 := w1.RenderFrame()
	f2 := w2.RenderFrame()
	sums := func(fs FrameStats) map[TileID]uint32 {
		m := make(map[TileID]uint32)
		for _, s := range fs.Tiles {
			m[s.ID] = s.Checksum
		}
		return m
	}
	s1, s2 := sums(f1), sums(f2)
	for id, c := range s1 {
		if s2[id] != c {
			t.Fatalf("tile %v checksum differs: %x vs %x", id, c, s2[id])
		}
	}
	// Different tiles of a gradient must differ.
	if s1[TileID{0, 0}] == s1[TileID{1, 1}] {
		t.Fatal("distinct tiles share a checksum — viewports broken")
	}
}

func TestMultipleFrames(t *testing.T) {
	w, _ := NewWall(Config{TilesX: 2, TilesY: 1, TileW: 8, TileH: 8}, gradientScene())
	for i := 1; i <= 5; i++ {
		fs := w.RenderFrame()
		if fs.Frame != int64(i) {
			t.Fatalf("frame = %d, want %d", fs.Frame, i)
		}
	}
	if w.Node(0, 0).Frames() != 5 {
		t.Fatalf("node frames = %d", w.Node(0, 0).Frames())
	}
}

func TestNetWallRoundTrip(t *testing.T) {
	cfg := Config{TilesX: 2, TilesY: 2, TileW: 16, TileH: 16}
	nw, err := StartNetWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if nw.NumNodes() != 4 {
		t.Fatalf("nodes = %d", nw.NumNodes())
	}
	fs, err := nw.RenderFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Tiles) != 4 {
		t.Fatalf("tiles = %d", len(fs.Tiles))
	}
	if fs.SkewNS < 0 {
		t.Fatal("negative skew")
	}
	// Net composite matches the local-mode reference render.
	comp := nw.Composite()
	ref := render.NewCanvas(cfg.WallWidth(), cfg.WallHeight(), color.RGBA{A: 255})
	gradientScene().Render(ref, render.Rect{W: cfg.WallWidth(), H: cfg.WallHeight()},
		cfg.WallWidth(), cfg.WallHeight())
	for y := 0; y < ref.Height(); y += 3 {
		for x := 0; x < ref.Width(); x += 3 {
			if comp.At(x, y) != ref.At(x, y) {
				t.Fatalf("net composite pixel (%d,%d) differs", x, y)
			}
		}
	}
}

func TestNetWallMultipleFrames(t *testing.T) {
	cfg := Config{TilesX: 1, TilesY: 2, TileW: 8, TileH: 8}
	nw, err := StartNetWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for i := 1; i <= 3; i++ {
		fs, err := nw.RenderFrame()
		if err != nil {
			t.Fatal(err)
		}
		if fs.Frame != int64(i) {
			t.Fatalf("frame = %d", fs.Frame)
		}
	}
}

func TestNetWallChecksumsMatchLocal(t *testing.T) {
	cfg := Config{TilesX: 2, TilesY: 1, TileW: 12, TileH: 12}
	lw, _ := NewWall(cfg, gradientScene())
	nw, err := StartNetWall(cfg, gradientScene())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	lf := lw.RenderFrame()
	nf, err := nw.RenderFrame()
	if err != nil {
		t.Fatal(err)
	}
	lsum := make(map[TileID]uint32)
	for _, s := range lf.Tiles {
		lsum[s.ID] = s.Checksum
	}
	for _, s := range nf.Tiles {
		if lsum[s.ID] != s.Checksum {
			t.Fatalf("tile %v: net %x vs local %x", s.ID, s.Checksum, lsum[s.ID])
		}
	}
}

func TestStartNetWallBadConfig(t *testing.T) {
	if _, err := StartNetWall(Config{}, gradientScene()); err == nil {
		t.Fatal("bad config should error")
	}
}
