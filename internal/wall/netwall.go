package wall

import (
	"encoding/gob"
	"fmt"
	"image/color"
	"net"
	"sync"
	"time"

	"forestview/internal/render"
)

// Net mode runs every render node behind a real TCP connection on the
// loopback interface, reproducing the control-plane structure of the
// physical wall: the application is replicated on every node (so pixel
// data never crosses the network), and the coordinator broadcasts small
// "render frame N" / "swap" control messages and collects acknowledgements
// — the synchronization protocol whose overhead the Figure-3 bench
// measures.

// netRequest is a coordinator -> node control message.
type netRequest struct {
	// Op is "render" or "swap" or "stop".
	Op    string
	Frame int64
}

// netReply is a node -> coordinator acknowledgement.
type netReply struct {
	Frame    int64
	RenderNS int64
	DoneAtNS int64 // UnixNano at completion
	Checksum uint32
	TileX    int
	TileY    int
}

// NetNode serves one tile over TCP.
type NetNode struct {
	node *Node
	ln   net.Listener
	wg   sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // accepted coordinator connection, for shutdown
}

// StartNetNode launches a node server on an ephemeral loopback port and
// returns it with its address.
func StartNetNode(id TileID, cfg Config, scene Scene) (*NetNode, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", fmt.Errorf("wall: node listen: %w", err)
	}
	nn := &NetNode{node: NewNode(id, cfg, scene), ln: ln}
	nn.wg.Add(1)
	go nn.serve()
	return nn, ln.Addr().String(), nil
}

func (nn *NetNode) serve() {
	defer nn.wg.Done()
	conn, err := nn.ln.Accept()
	if err != nil {
		return // listener closed before the coordinator connected
	}
	nn.mu.Lock()
	nn.conn = conn
	nn.mu.Unlock()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req netRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Op {
		case "render":
			st := nn.node.RenderFrame()
			reply := netReply{
				Frame:    req.Frame,
				RenderNS: st.RenderNS,
				DoneAtNS: st.DoneAt.UnixNano(),
				Checksum: st.Checksum,
				TileX:    st.ID.X,
				TileY:    st.ID.Y,
			}
			if err := enc.Encode(&reply); err != nil {
				return
			}
		case "swap":
			nn.node.Swap()
			if err := enc.Encode(&netReply{Frame: req.Frame}); err != nil {
				return
			}
		case "stop":
			_ = enc.Encode(&netReply{Frame: req.Frame})
			return
		}
	}
}

// Close shuts the node down: the listener stops accepting and any live
// coordinator connection is severed so the serve loop's blocking Decode
// returns. Idempotent.
func (nn *NetNode) Close() {
	nn.ln.Close()
	nn.mu.Lock()
	if nn.conn != nil {
		nn.conn.Close()
	}
	nn.mu.Unlock()
	nn.wg.Wait()
}

// Node exposes the underlying tile node (the coordinator composites from
// the nodes directly, as a wall operator would walk over to a projector —
// pixels never cross the control network).
func (nn *NetNode) Node() *Node { return nn.node }

// NetWall coordinates TCP-connected nodes.
type NetWall struct {
	cfg    Config
	nodes  []*NetNode
	conns  []net.Conn
	encs   []*gob.Encoder
	decs   []*gob.Decoder
	frame  int64
	nbytes int64 // control-plane bytes sent (estimated from message counts)
}

// StartNetWall spins up one TCP node per tile (all in-process but
// communicating only through the loopback network) and connects the
// coordinator to each.
func StartNetWall(cfg Config, scene Scene) (*NetWall, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &NetWall{cfg: cfg}
	for y := 0; y < cfg.TilesY; y++ {
		for x := 0; x < cfg.TilesX; x++ {
			nn, addr, err := StartNetNode(TileID{X: x, Y: y}, cfg, scene)
			if err != nil {
				w.Close()
				return nil, err
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				nn.Close()
				w.Close()
				return nil, fmt.Errorf("wall: dial node %d,%d: %w", x, y, err)
			}
			w.nodes = append(w.nodes, nn)
			w.conns = append(w.conns, conn)
			w.encs = append(w.encs, gob.NewEncoder(conn))
			w.decs = append(w.decs, gob.NewDecoder(conn))
		}
	}
	return w, nil
}

// Config returns the wall geometry.
func (w *NetWall) Config() Config { return w.cfg }

// NumNodes returns the node count.
func (w *NetWall) NumNodes() int { return len(w.nodes) }

// RenderFrame broadcasts a render command, gathers acknowledgements
// (the barrier), then broadcasts the swap — the two-phase swaplock protocol
// of projector clusters.
func (w *NetWall) RenderFrame() (FrameStats, error) {
	w.frame++
	// Broadcast phase 1: render. Requests go out concurrently so slow
	// encode on one connection does not serialize the cluster.
	var wg sync.WaitGroup
	errs := make([]error, len(w.nodes))
	stats := make([]TileStats, len(w.nodes))
	for i := range w.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.encs[i].Encode(&netRequest{Op: "render", Frame: w.frame}); err != nil {
				errs[i] = err
				return
			}
			var rep netReply
			if err := w.decs[i].Decode(&rep); err != nil {
				errs[i] = err
				return
			}
			stats[i] = TileStats{
				ID:       TileID{X: rep.TileX, Y: rep.TileY},
				RenderNS: rep.RenderNS,
				DoneAt:   time.Unix(0, rep.DoneAtNS),
				Checksum: rep.Checksum,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return FrameStats{}, fmt.Errorf("wall: render phase: %w", err)
		}
	}
	// Phase 2: swap.
	for i := range w.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.encs[i].Encode(&netRequest{Op: "swap", Frame: w.frame}); err != nil {
				errs[i] = err
				return
			}
			var rep netReply
			if err := w.decs[i].Decode(&rep); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return FrameStats{}, fmt.Errorf("wall: swap phase: %w", err)
		}
	}
	return summarize(w.frame, stats, w.cfg), nil
}

// Composite assembles the current front buffers into one wall image.
func (w *NetWall) Composite() *render.Canvas {
	bezel := w.cfg.BezelPx
	outW := w.cfg.WallWidth() + bezel*(w.cfg.TilesX-1)
	outH := w.cfg.WallHeight() + bezel*(w.cfg.TilesY-1)
	out := render.NewCanvas(outW, outH, color.RGBA{A: 255})
	for _, nn := range w.nodes {
		n := nn.Node()
		x := n.ID.X * (w.cfg.TileW + bezel)
		y := n.ID.Y * (w.cfg.TileH + bezel)
		out.Blit(n.Front().Image(), x, y)
	}
	return out
}

// Close stops all nodes and closes all connections. A bounded deadline on
// the farewell round trip keeps shutdown from hanging on a dead node.
func (w *NetWall) Close() {
	for i := range w.conns {
		if w.encs[i] != nil {
			_ = w.conns[i].SetDeadline(time.Now().Add(2 * time.Second))
			_ = w.encs[i].Encode(&netRequest{Op: "stop"})
			var rep netReply
			_ = w.decs[i].Decode(&rep)
		}
		w.conns[i].Close()
	}
	for _, nn := range w.nodes {
		nn.Close()
	}
}
