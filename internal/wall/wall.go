// Package wall simulates the scalable display wall the paper deploys
// ForestView on. Princeton's wall was a grid of projector tiles, each
// driven by its own PC, with a coordinator synchronizing frame swaps over a
// LAN. The simulation preserves that architecture: a Wall is a grid of
// Tiles, each owned by a render node (a goroutine, or a TCP-connected
// server in net mode), frames are rendered in parallel into per-tile
// framebuffers, a barrier collects completion, and a compositor assembles
// the full-wall image. Per-frame statistics (render time per tile, barrier
// skew, pixel throughput) quantify the scalability claims of Section 1.
package wall

import (
	"errors"
	"fmt"
	"hash/crc32"
	"image/color"
	"sync"
	"time"

	"forestview/internal/render"
)

// Config describes wall geometry.
type Config struct {
	// TilesX × TilesY projector tiles.
	TilesX, TilesY int
	// TileW × TileH pixels per tile.
	TileW, TileH int
	// BezelPx widens the composite by this many blank pixels between
	// tiles (0 for seamless projector blending, as at Princeton).
	BezelPx int
}

// Validate rejects non-positive geometry.
func (c Config) Validate() error {
	if c.TilesX < 1 || c.TilesY < 1 || c.TileW < 1 || c.TileH < 1 {
		return fmt.Errorf("wall: invalid geometry %dx%d tiles of %dx%d", c.TilesX, c.TilesY, c.TileW, c.TileH)
	}
	if c.BezelPx < 0 {
		return errors.New("wall: negative bezel")
	}
	return nil
}

// WallWidth and WallHeight return the logical scene resolution (without
// bezels; scenes are rendered as if the wall were one seamless surface).
func (c Config) WallWidth() int  { return c.TilesX * c.TileW }
func (c Config) WallHeight() int { return c.TilesY * c.TileH }

// Pixels returns the total pixel count of the wall.
func (c Config) Pixels() int { return c.WallWidth() * c.WallHeight() }

// Desktop2MP is the paper's reference point: a ~2-megapixel desktop
// display handled as a 1×1 wall.
func Desktop2MP() Config { return Config{TilesX: 1, TilesY: 1, TileW: 1600, TileH: 1200} }

// PrincetonWall approximates the 8×3-projector wall at Princeton
// (1024×768 per projector, ≈18.9 megapixels).
func PrincetonWall() Config { return Config{TilesX: 8, TilesY: 3, TileW: 1024, TileH: 768} }

// LargeWall is a next-generation configuration two orders of magnitude
// beyond the desktop (10×5 tiles of 2048×1536, ≈157 megapixels), the
// scaling regime the paper's introduction argues for.
func LargeWall() Config { return Config{TilesX: 10, TilesY: 5, TileW: 2048, TileH: 1536} }

// Scene is anything that can draw a viewport of a full-wall image. Render
// must be safe for concurrent calls with disjoint canvases: tiles render in
// parallel, exactly like the replicated application instances on a real
// wall cluster.
type Scene interface {
	Render(c *render.Canvas, viewport render.Rect, wallW, wallH int)
}

// SceneFunc adapts a function to the Scene interface.
type SceneFunc func(c *render.Canvas, viewport render.Rect, wallW, wallH int)

// Render implements Scene.
func (f SceneFunc) Render(c *render.Canvas, viewport render.Rect, wallW, wallH int) {
	f(c, viewport, wallW, wallH)
}

// TileID addresses one tile of the grid.
type TileID struct{ X, Y int }

// String formats the tile address.
func (id TileID) String() string { return fmt.Sprintf("tile(%d,%d)", id.X, id.Y) }

// Node owns one tile: a double-buffered framebuffer pair and the scene
// replica it renders from. On a real wall each node is a PC; here it is a
// value driven by a goroutine (local mode) or a TCP server (net mode).
type Node struct {
	ID       TileID
	cfg      Config
	scene    Scene
	back     *render.Canvas
	front    *render.Canvas
	frames   int64
	lastCRC  uint32
	swapLock sync.Mutex
}

// NewNode creates a node for the given tile.
func NewNode(id TileID, cfg Config, scene Scene) *Node {
	bg := color.RGBA{A: 255}
	return &Node{
		ID:    id,
		cfg:   cfg,
		scene: scene,
		back:  render.NewCanvas(cfg.TileW, cfg.TileH, bg),
		front: render.NewCanvas(cfg.TileW, cfg.TileH, bg),
	}
}

// Viewport returns this tile's window into the wall-sized scene.
func (n *Node) Viewport() render.Rect {
	return render.Rect{
		X: n.ID.X * n.cfg.TileW,
		Y: n.ID.Y * n.cfg.TileH,
		W: n.cfg.TileW,
		H: n.cfg.TileH,
	}
}

// TileStats reports one tile's work for one frame.
type TileStats struct {
	ID       TileID
	RenderNS int64
	// DoneAt is the wall-clock completion instant used to compute barrier
	// skew.
	DoneAt time.Time
	// Checksum is a CRC of the rendered pixels; identical scene state must
	// yield identical checksums, which the sync tests verify.
	Checksum uint32
}

// RenderFrame renders this node's viewport into the back buffer and
// returns stats. It does not swap; the coordinator orders the swap after
// the barrier, exactly like a swap-locked projector cluster.
func (n *Node) RenderFrame() TileStats {
	start := time.Now()
	n.scene.Render(n.back, n.Viewport(), n.cfg.WallWidth(), n.cfg.WallHeight())
	crc := crc32.ChecksumIEEE(n.back.Image().Pix)
	n.lastCRC = crc
	n.frames++
	return TileStats{
		ID:       n.ID,
		RenderNS: time.Since(start).Nanoseconds(),
		DoneAt:   time.Now(),
		Checksum: crc,
	}
}

// Swap promotes the back buffer to front. Called by the coordinator after
// every node has passed the frame barrier.
func (n *Node) Swap() {
	n.swapLock.Lock()
	n.back, n.front = n.front, n.back
	n.swapLock.Unlock()
}

// Front returns the currently displayed buffer.
func (n *Node) Front() *render.Canvas {
	n.swapLock.Lock()
	defer n.swapLock.Unlock()
	return n.front
}

// Frames returns how many frames this node has rendered.
func (n *Node) Frames() int64 { return n.frames }

// FrameStats aggregates one wall frame.
type FrameStats struct {
	Frame int64
	Tiles []TileStats
	// SkewNS is the spread between the first and last tile completing —
	// the synchronization quality metric of the wall.
	SkewNS int64
	// MaxRenderNS is the slowest tile (the frame's critical path).
	MaxRenderNS int64
	// TotalPixels rendered this frame.
	TotalPixels int
}

// Wall is the local-mode coordinator: all nodes in-process, rendered by a
// goroutine pool, synchronized by a barrier.
type Wall struct {
	cfg   Config
	nodes []*Node
	frame int64
}

// NewWall builds a wall whose nodes all replicate the given scene.
func NewWall(cfg Config, scene Scene) (*Wall, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if scene == nil {
		return nil, errors.New("wall: nil scene")
	}
	w := &Wall{cfg: cfg}
	for y := 0; y < cfg.TilesY; y++ {
		for x := 0; x < cfg.TilesX; x++ {
			w.nodes = append(w.nodes, NewNode(TileID{X: x, Y: y}, cfg, scene))
		}
	}
	return w, nil
}

// Config returns the wall geometry.
func (w *Wall) Config() Config { return w.cfg }

// NumNodes returns the node count.
func (w *Wall) NumNodes() int { return len(w.nodes) }

// Node returns the node driving the given tile, or nil.
func (w *Wall) Node(x, y int) *Node {
	if x < 0 || x >= w.cfg.TilesX || y < 0 || y >= w.cfg.TilesY {
		return nil
	}
	return w.nodes[y*w.cfg.TilesX+x]
}

// RenderFrame renders one synchronized frame: all tiles in parallel, a
// barrier, then a simultaneous swap. It returns the frame statistics.
func (w *Wall) RenderFrame() FrameStats {
	w.frame++
	stats := make([]TileStats, len(w.nodes))
	var wg sync.WaitGroup
	for i, n := range w.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			stats[i] = n.RenderFrame()
		}(i, n)
	}
	wg.Wait() // the frame barrier
	for _, n := range w.nodes {
		n.Swap()
	}
	return summarize(w.frame, stats, w.cfg)
}

func summarize(frame int64, stats []TileStats, cfg Config) FrameStats {
	fs := FrameStats{Frame: frame, Tiles: stats, TotalPixels: cfg.Pixels()}
	if len(stats) == 0 {
		return fs
	}
	first, last := stats[0].DoneAt, stats[0].DoneAt
	for _, s := range stats {
		if s.DoneAt.Before(first) {
			first = s.DoneAt
		}
		if s.DoneAt.After(last) {
			last = s.DoneAt
		}
		if s.RenderNS > fs.MaxRenderNS {
			fs.MaxRenderNS = s.RenderNS
		}
	}
	fs.SkewNS = last.Sub(first).Nanoseconds()
	return fs
}

// Composite assembles the front buffers into one wall-sized image
// (including bezel gaps when configured). On the physical wall this is
// what the projectors jointly display; here it is what the examples save
// as PNG.
func (w *Wall) Composite() *render.Canvas {
	bezel := w.cfg.BezelPx
	outW := w.cfg.WallWidth() + bezel*(w.cfg.TilesX-1)
	outH := w.cfg.WallHeight() + bezel*(w.cfg.TilesY-1)
	out := render.NewCanvas(outW, outH, color.RGBA{A: 255})
	for _, n := range w.nodes {
		x := n.ID.X * (w.cfg.TileW + bezel)
		y := n.ID.Y * (w.cfg.TileH + bezel)
		out.Blit(n.Front().Image(), x, y)
	}
	return out
}
