package faultline

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDecideDeterministic is the package's core promise, table-driven:
// for a fixed seed and rule set, the Nth request per (host, path) key
// always draws the same fault — across injector instances, and
// regardless of how other keys' requests interleave.
func TestDecideDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		rules []Rule
		host  string
		path  string
		n     int
	}{
		{
			name:  "every-3rd-cycling-kinds",
			seed:  42,
			rules: []Rule{{Host: "shard-1", Every: 3, Kinds: []Kind{Err5xx, Reset, Truncate}}},
			host:  "shard-1", path: "/api/shard/v1/search", n: 24,
		},
		{
			name:  "offset-schedule",
			seed:  42,
			rules: []Rule{{Path: "/api/shard/v1/enrich", Every: 2, Offset: 1, Kinds: []Kind{Stall}}},
			host:  "shard-2", path: "/api/shard/v1/enrich", n: 16,
		},
		{
			name:  "probabilistic-per-key-stream",
			seed:  7,
			rules: []Rule{{Prob: 0.4, Kinds: []Kind{Latency, Err5xx}}},
			host:  "shard-0", path: "/api/shard/v1/search", n: 40,
		},
		{
			name:  "no-match-never-faults",
			seed:  7,
			rules: []Rule{{Host: "shard-9", Every: 1}},
			host:  "shard-0", path: "/x", n: 10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			draw := func() []Kind {
				in := New(tc.seed, tc.rules...)
				out := make([]Kind, tc.n)
				for i := range out {
					out[i], _ = in.Decide(tc.host, tc.path)
				}
				return out
			}
			a, b := draw(), b2(draw)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("request %d: run A drew %v, run B drew %v", i, a[i], b[i])
				}
			}
			if tc.name == "no-match-never-faults" {
				for i, k := range a {
					if k != None {
						t.Fatalf("unmatched request %d faulted with %v", i, k)
					}
				}
			}
		})
	}
}

func b2(f func() []Kind) []Kind { return f() }

// TestDecideKeyIsolation: interleaving traffic to another key must not
// shift a key's schedule — each (host, path) owns its counter and stream.
func TestDecideKeyIsolation(t *testing.T) {
	rules := []Rule{{Every: 3, Kinds: []Kind{Reset}}}
	solo := New(1, rules...)
	var want []Kind
	for i := 0; i < 12; i++ {
		k, _ := solo.Decide("shard-1", "/s")
		want = append(want, k)
	}
	mixed := New(1, rules...)
	var got []Kind
	for i := 0; i < 12; i++ {
		// Noise on other keys between every draw.
		mixed.Decide("shard-2", "/s")
		mixed.Decide("shard-1", "/other")
		k, _ := mixed.Decide("shard-1", "/s")
		got = append(got, k)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: %v with noise, %v without", i, got[i], want[i])
		}
	}
}

// TestDecideOrdinalSchedule pins the Every/Offset arithmetic exactly.
func TestDecideOrdinalSchedule(t *testing.T) {
	in := New(0, Rule{Every: 3, Offset: 1, Kinds: []Kind{Err5xx, Reset}})
	var fired []int
	var kinds []Kind
	for i := 1; i <= 10; i++ {
		if k, _ := in.Decide("h", "/p"); k != None {
			fired = append(fired, i)
			kinds = append(kinds, k)
		}
	}
	// Offset 1, every 3: requests 4, 7, 10 fire, cycling the kind list.
	if len(fired) != 3 || fired[0] != 4 || fired[1] != 7 || fired[2] != 10 {
		t.Fatalf("fired at %v, want [4 7 10]", fired)
	}
	if kinds[0] != Err5xx || kinds[1] != Reset || kinds[2] != Err5xx {
		t.Fatalf("kinds %v, want cycle [err5xx reset err5xx]", kinds)
	}
}

// TestTransportFaults drives each fault kind through a real server and
// asserts the client-observable behavior.
func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789abcdef")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	get := func(in *Injector, timeout time.Duration) (*http.Response, []byte, error) {
		client := &http.Client{Transport: in.Wrap(nil)}
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		return resp, b, rerr
	}

	t.Run("err5xx", func(t *testing.T) {
		in := New(1, Rule{Host: host, Every: 1, Kinds: []Kind{Err5xx}})
		resp, _, err := get(in, 0)
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
		if resp.Header.Get(Header) != "err5xx" {
			t.Fatalf("injected response not marked: %v", resp.Header)
		}
		if in.Counts()["err5xx"] != 1 {
			t.Fatalf("counts: %v", in.Counts())
		}
	})
	t.Run("reset", func(t *testing.T) {
		in := New(1, Rule{Host: host, Every: 1, Kinds: []Kind{Reset}})
		_, _, err := get(in, 0)
		if err == nil || !strings.Contains(err.Error(), "connection reset") {
			t.Fatalf("err = %v, want injected reset", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		in := New(1, Rule{Host: host, Every: 1, Kinds: []Kind{Truncate}})
		resp, body, err := get(in, 0)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("resp=%v err=%v", resp, err)
		}
		if string(body) != "01234567" {
			t.Fatalf("truncated body = %q, want first half", body)
		}
	})
	t.Run("stall-until-deadline", func(t *testing.T) {
		in := New(1, Rule{Host: host, Every: 1, Kinds: []Kind{Stall}, Delay: 10 * time.Second})
		t0 := time.Now()
		_, _, err := get(in, 100*time.Millisecond)
		if err == nil || !errors.Is(errors.Unwrap(err), context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
			t.Fatalf("stall err = %v, want deadline", err)
		}
		if el := time.Since(t0); el > 5*time.Second {
			t.Fatalf("stall held past the context: %v", el)
		}
	})
	t.Run("latency", func(t *testing.T) {
		in := New(1, Rule{Host: host, Every: 2, Kinds: []Kind{Latency}, Delay: 80 * time.Millisecond})
		t0 := time.Now()
		if _, _, err := get(in, 0); err != nil {
			t.Fatal(err)
		}
		fast := time.Since(t0)
		t0 = time.Now()
		resp, body, err := get(in, 0) // second request per key: faulted
		if err != nil || resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("latency-faulted request failed: %v %v", resp, err)
		}
		if slow := time.Since(t0); slow < 80*time.Millisecond || slow < fast {
			t.Fatalf("no added latency: fast=%v slow=%v", fast, slow)
		}
		if in.Total() != 1 {
			t.Fatalf("total = %d", in.Total())
		}
	})
}

// TestSetRulesKeepsStreams: swapping rules does not reset per-key
// ordinals — the schedule stays anchored to the request sequence.
func TestSetRulesKeepsStreams(t *testing.T) {
	in := New(3, Rule{Every: 100})
	for i := 0; i < 5; i++ {
		in.Decide("h", "/p") // requests 1..5 under a rule that never fires
	}
	in.SetRules(Rule{Every: 3, Kinds: []Kind{Reset}})
	// Requests 6..9: ordinals continue, so 6 and 9 fire.
	var fired []int
	for i := 6; i <= 9; i++ {
		if k, _ := in.Decide("h", "/p"); k != None {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 6 || fired[1] != 9 {
		t.Fatalf("fired at %v, want [6 9]", fired)
	}
}
