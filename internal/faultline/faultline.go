// Package faultline is a deterministic fault injector for the shard
// fleet's HTTP paths: an http.RoundTripper wrapper that perturbs matched
// requests with latency spikes, 5xx responses, connection resets,
// truncated bodies and stalls — on a schedule that is a pure function of
// the seed and the per-(host, path) request ordinal. The same seed and
// the same per-key request sequence always draw the same faults, so a
// chaos failure reproduces under `-run` instead of flaking: robustness
// tests assert exact behavior under exact faults, not vibes under noise.
//
// Determinism is per key, not global: concurrent requests to *different*
// shards or endpoints interleave freely without perturbing each other's
// schedules, because each (host, path) pair owns an independent counter
// and RNG stream derived from the seed.
package faultline

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one fault class.
type Kind int

const (
	// None: the request passes through untouched.
	None Kind = iota
	// Latency: delay the request by the rule's Delay, then pass through.
	// Models a slow-but-healthy replica (GC pause, noisy neighbour).
	Latency
	// Err5xx: answer 503 without touching the transport. Models an
	// overloaded or restarting server that still speaks HTTP.
	Err5xx
	// Reset: fail with a connection error before any response. Models a
	// killed process or a dropped TCP connection.
	Reset
	// Truncate: pass the request through, then cut the response body in
	// half. Models a connection dying mid-transfer; gob decoders see an
	// unexpected EOF, exercising the decode-error path rather than the
	// transport-error path.
	Truncate
	// Stall: hold the request until the rule's Delay elapses or the
	// request context dies, then fail it. Models a black-holed server —
	// the case deadlines and hedges exist for.
	Stall
)

// String names the kind for schedules and logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Err5xx:
		return "err5xx"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule matches a slice of the request space and describes how often and
// how to fault it. Zero-valued match fields match everything.
type Rule struct {
	// Host matches the request URL's Host (exact, or a suffix when the
	// pattern starts with "*"). Empty matches every host.
	Host string
	// Path matches the URL path by prefix. Empty matches every path.
	Path string
	// Every faults the Nth, 2Nth, ... matching request per key (after
	// Offset). 1 faults every request; 0 disables ordinal faulting and
	// uses Prob instead.
	Every int
	// Offset shifts the Every schedule: the first faulted request per key
	// is request number Offset+Every (1-based).
	Offset int
	// Prob faults each matching request independently with this
	// probability, drawn from the key's own seeded RNG stream (used when
	// Every is 0). Still deterministic: the Nth draw per key is fixed.
	Prob float64
	// Kinds cycles through these fault kinds in order as the key's faults
	// fire (fault number f gets Kinds[f mod len]). Empty means Err5xx.
	Kinds []Kind
	// Delay is the added latency for Latency faults and the hold time for
	// Stall faults (default 50ms / 2s respectively when zero).
	Delay time.Duration
}

func (r *Rule) matches(host, path string) bool {
	if r.Host != "" {
		if h, ok := strings.CutPrefix(r.Host, "*"); ok {
			if !strings.HasSuffix(host, h) {
				return false
			}
		} else if r.Host != host {
			return false
		}
	}
	return r.Path == "" || strings.HasPrefix(path, r.Path)
}

// Injector is a deterministic fault source over a rule set. Safe for
// concurrent use; per-key state (ordinal counter, RNG stream, fault
// cycle position) is isolated so concurrency cannot reorder a key's
// schedule.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules []Rule
	keys  map[string]*keyState

	// Counters per fault kind, for test gates ("the injector actually
	// fired") and chaos envelopes.
	injected [Stall + 1]atomic.Int64
}

type keyState struct {
	mu     sync.Mutex
	n      int        // requests seen for this key
	faults int        // faults fired for this key (cycles Kinds)
	rnd    *rand.Rand // per-key stream: derived from (seed, key)
}

// New builds an injector over the rules. The seed fixes every schedule.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, keys: make(map[string]*keyState)}
}

// SetRules replaces the rule set (for harnesses that learn hosts after
// boot). Per-key counters and RNG streams survive the swap: determinism
// is anchored to the request sequence, not the rule set's lifetime.
func (in *Injector) SetRules(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = rules
}

// Counts reports how many faults of each kind have fired.
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64)
	for k := Latency; k <= Stall; k++ {
		if n := in.injected[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// Total reports the total faults fired across kinds.
func (in *Injector) Total() int64 {
	var n int64
	for k := Latency; k <= Stall; k++ {
		n += in.injected[k].Load()
	}
	return n
}

func (in *Injector) key(host, path string) *keyState {
	k := host + "\x1f" + path
	in.mu.Lock()
	defer in.mu.Unlock()
	ks, ok := in.keys[k]
	if !ok {
		// Derive the key's RNG stream from (seed, key) with a stable hash:
		// maphash with a fixed Seed would vary per process, so fold the
		// bytes through the injector seed by hand (FNV-style).
		h := uint64(in.seed)
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * 1099511628211
		}
		ks = &keyState{rnd: rand.New(rand.NewSource(int64(h)))}
		in.keys[k] = ks
	}
	return ks
}

// Decide consumes one request ordinal for (host, path) and returns the
// fault (with its rule) that request draws. Exposed for determinism
// tests; Wrap's transport calls it for every request.
func (in *Injector) Decide(host, path string) (Kind, Rule) {
	in.mu.Lock()
	rules := in.rules
	in.mu.Unlock()
	var rule *Rule
	for i := range rules {
		if rules[i].matches(host, path) {
			rule = &rules[i]
			break
		}
	}
	if rule == nil {
		return None, Rule{}
	}
	ks := in.key(host, path)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.n++
	fire := false
	if rule.Every > 0 {
		n := ks.n - rule.Offset
		fire = n > 0 && n%rule.Every == 0
	} else if rule.Prob > 0 {
		fire = ks.rnd.Float64() < rule.Prob
	}
	if !fire {
		return None, *rule
	}
	kind := Err5xx
	if len(rule.Kinds) > 0 {
		kind = rule.Kinds[ks.faults%len(rule.Kinds)]
	}
	ks.faults++
	return kind, *rule
}

// Header marks injected responses so envelopes (and humans with curl)
// can tell a synthetic fault from a real failure.
const Header = "X-Faultline"

// errReset is the transport error Reset faults fail with.
var errReset = errors.New("faultline: connection reset")

// transport is the injecting RoundTripper.
type transport struct {
	in   *Injector
	next http.RoundTripper
}

// Wrap returns a RoundTripper that injects the injector's faults in
// front of next (http.DefaultTransport when nil).
func (in *Injector) Wrap(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, rule := t.in.Decide(req.URL.Host, req.URL.Path)
	switch kind {
	case None:
		return t.next.RoundTrip(req)
	case Latency:
		d := rule.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			t.in.injected[Latency].Add(1)
			return nil, req.Context().Err()
		}
		t.in.injected[Latency].Add(1)
		return t.next.RoundTrip(req)
	case Err5xx:
		t.in.injected[Err5xx].Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		body := "faultline: injected 503\n"
		resp := &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (faultline)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:        http.Header{Header: []string{Err5xx.String()}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	case Reset:
		t.in.injected[Reset].Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errReset
	case Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.in.injected[Truncate].Add(1)
		return truncateBody(resp), nil
	case Stall:
		d := rule.Delay
		if d <= 0 {
			d = 2 * time.Second
		}
		if req.Body != nil {
			req.Body.Close()
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
		}
		t.in.injected[Stall].Add(1)
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faultline: stalled %v, then reset", d)
	default:
		return t.next.RoundTrip(req)
	}
}

// truncateBody replaces the response body with its first half, fixing
// Content-Length so the client reads a clean-but-short body: gob decoders
// fail with an unexpected EOF, exactly like a connection dying
// mid-transfer without the transport noticing.
func truncateBody(resp *http.Response) *http.Response {
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		resp.ContentLength = 0
		return resp
	}
	half := full[:len(full)/2]
	resp.Body = io.NopCloser(bytes.NewReader(half))
	resp.ContentLength = int64(len(half))
	resp.Header.Set("Content-Length", fmt.Sprint(len(half)))
	resp.Header.Set(Header, Truncate.String())
	return resp
}
