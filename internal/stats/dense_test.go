package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDot(t *testing.T) {
	if d := Dot(nil, nil); d != 0 {
		t.Fatalf("Dot(nil, nil) = %v", d)
	}
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	// Length mismatch uses the common prefix.
	if d := Dot([]float64{1, 2, 3, 10}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot with mismatched lengths = %v, want 32", d)
	}
	// Lengths around the unroll boundary agree with the naive loop.
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 9; n++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		naive := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
			naive += xs[i] * ys[i]
		}
		if d := Dot(xs, ys); math.Abs(d-naive) > 1e-12 {
			t.Fatalf("n=%d: Dot = %v, naive = %v", n, d, naive)
		}
	}
}

func TestCenterUnitNorm(t *testing.T) {
	if _, ok := CenterUnitNorm([]float64{1}); ok {
		t.Fatal("single-entry vector should have no unit form")
	}
	if _, ok := CenterUnitNorm([]float64{2, 2, 2}); ok {
		t.Fatal("constant vector should have no unit form")
	}
	if _, ok := CenterUnitNorm([]float64{1, math.NaN(), 3}); ok {
		t.Fatal("vector with a missing value should have no unit form")
	}
	u, ok := CenterUnitNorm([]float64{1, 2, 3, 4})
	if !ok {
		t.Fatal("well-formed vector rejected")
	}
	sum, ss := 0.0, 0.0
	for _, v := range u {
		sum += v
		ss += v * v
	}
	if math.Abs(sum) > 1e-12 || math.Abs(ss-1) > 1e-12 {
		t.Fatalf("unit form not centered/normalized: sum=%v ss=%v", sum, ss)
	}
}

// TestDotEqualsPearsonOnUnitRows is the identity the SPELL dense kernel
// rests on: for complete rows, Pearson == Dot of the centered unit forms.
func TestDotEqualsPearsonOnUnitRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		ux, okx := CenterUnitNorm(xs)
		uy, oky := CenterUnitNorm(ys)
		if !okx || !oky {
			continue
		}
		want := Pearson(xs, ys)
		got := Clamp(Dot(ux, uy), -1, 1)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d): Dot=%v Pearson=%v", trial, n, got, want)
		}
	}
}

func TestZScoresInto(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 5}
	dst := make([]float64, len(xs))
	ZScoresInto(dst, xs)
	want := ZScores(xs)
	for i := range want {
		if math.IsNaN(want[i]) != math.IsNaN(dst[i]) {
			t.Fatalf("missing mismatch at %d", i)
		}
		if !math.IsNaN(want[i]) && dst[i] != want[i] {
			t.Fatalf("ZScoresInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}
