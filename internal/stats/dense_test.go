package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDot(t *testing.T) {
	if d := Dot(nil, nil); d != 0 {
		t.Fatalf("Dot(nil, nil) = %v", d)
	}
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	// Length mismatch uses the common prefix.
	if d := Dot([]float64{1, 2, 3, 10}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot with mismatched lengths = %v, want 32", d)
	}
	// Lengths around the unroll boundary agree with the naive loop.
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= 9; n++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		naive := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
			naive += xs[i] * ys[i]
		}
		if d := Dot(xs, ys); math.Abs(d-naive) > 1e-12 {
			t.Fatalf("n=%d: Dot = %v, naive = %v", n, d, naive)
		}
	}
}

func TestCenterUnitNorm(t *testing.T) {
	if _, ok := CenterUnitNorm([]float64{1}); ok {
		t.Fatal("single-entry vector should have no unit form")
	}
	if _, ok := CenterUnitNorm([]float64{2, 2, 2}); ok {
		t.Fatal("constant vector should have no unit form")
	}
	if _, ok := CenterUnitNorm([]float64{1, math.NaN(), 3}); ok {
		t.Fatal("vector with a missing value should have no unit form")
	}
	u, ok := CenterUnitNorm([]float64{1, 2, 3, 4})
	if !ok {
		t.Fatal("well-formed vector rejected")
	}
	sum, ss := 0.0, 0.0
	for _, v := range u {
		sum += v
		ss += v * v
	}
	if math.Abs(sum) > 1e-12 || math.Abs(ss-1) > 1e-12 {
		t.Fatalf("unit form not centered/normalized: sum=%v ss=%v", sum, ss)
	}
}

// TestDotEqualsPearsonOnUnitRows is the identity the SPELL dense kernel
// rests on: for complete rows, Pearson == Dot of the centered unit forms.
func TestDotEqualsPearsonOnUnitRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		ux, okx := CenterUnitNorm(xs)
		uy, oky := CenterUnitNorm(ys)
		if !okx || !oky {
			continue
		}
		want := Pearson(xs, ys)
		got := Clamp(Dot(ux, uy), -1, 1)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d): Dot=%v Pearson=%v", trial, n, got, want)
		}
	}
}

func TestZScoresInto(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 5}
	dst := make([]float64, len(xs))
	ZScoresInto(dst, xs)
	want := ZScores(xs)
	for i := range want {
		if math.IsNaN(want[i]) != math.IsNaN(dst[i]) {
			t.Fatalf("missing mismatch at %d", i)
		}
		if !math.IsNaN(want[i]) && dst[i] != want[i] {
			t.Fatalf("ZScoresInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestUnitNormInto(t *testing.T) {
	xs := []float64{3, 4}
	dst := make([]float64, 2)
	if !UnitNormInto(dst, xs) {
		t.Fatal("complete row rejected")
	}
	if math.Abs(dst[0]-0.6) > 1e-15 || math.Abs(dst[1]-0.8) > 1e-15 {
		t.Fatalf("unit form = %v, want [0.6 0.8]", dst)
	}
	// Undefined forms: missing values, zero norm, empty, short dst.
	if UnitNormInto(dst, []float64{1, math.NaN()}) {
		t.Fatal("missing value accepted")
	}
	if UnitNormInto(dst, []float64{0, 0}) {
		t.Fatal("zero norm accepted")
	}
	if UnitNormInto(dst, nil) {
		t.Fatal("empty row accepted")
	}
	if UnitNormInto(dst[:1], xs) {
		t.Fatal("short destination accepted")
	}
	// The identity the clustering kernel relies on: PearsonUncentered of
	// two rows equals the dot product of their unit forms.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := r.Intn(20) + 1
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = r.NormFloat64()+1, r.NormFloat64()-1
		}
		ua, ub := make([]float64, n), make([]float64, n)
		if !UnitNormInto(ua, a) || !UnitNormInto(ub, b) {
			continue // zero-norm fluke
		}
		want := PearsonUncentered(a, b)
		got := Clamp(Dot(ua, ub), -1, 1)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d): Dot=%v PearsonUncentered=%v", trial, n, got, want)
		}
	}
}
