package stats

import "math"

// Pearson returns the centered Pearson correlation coefficient between xs
// and ys, computed over positions where both values are observed. It
// returns NaN when fewer than two paired observations exist or either
// vector is constant over the paired positions.
//
// This is the similarity measure Cluster 3.0 calls "correlation (centered)"
// and is the default gene-gene similarity throughout the paper's tool
// chain.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var sx, sy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		sx += xs[i]
		sy += ys[i]
		cnt++
	}
	if cnt < 2 {
		return math.NaN()
	}
	mx, my := sx/float64(cnt), sy/float64(cnt)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against floating point drift outside [-1, 1].
	return Clamp(r, -1, 1)
}

// PearsonUncentered returns the uncentered Pearson correlation (the cosine
// of the angle between the two vectors), over positions where both values
// are observed. Cluster 3.0 exposes this as "correlation (uncentered)"; it
// treats a zero baseline as meaningful, which suits log-ratio expression
// data.
func PearsonUncentered(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var sxy, sxx, syy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		cnt++
	}
	if cnt == 0 || sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return Clamp(sxy/math.Sqrt(sxx*syy), -1, 1)
}

// Spearman returns the Spearman rank correlation between xs and ys over
// positions where both are observed: the Pearson correlation of the
// mid-ranks. Ties receive averaged ranks.
func Spearman(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	px := make([]float64, 0, n)
	py := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		px = append(px, xs[i])
		py = append(py, ys[i])
	}
	if len(px) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(px), Ranks(py))
}

// Euclidean returns the Euclidean distance between xs and ys over positions
// where both are observed, rescaled by sqrt(n/observed) so vectors with
// different missingness remain comparable. NaN when nothing is paired.
func Euclidean(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var ss float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		d := xs[i] - ys[i]
		ss += d * d
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(ss * float64(n) / float64(cnt))
}

// Manhattan returns the city-block distance over paired observed positions,
// rescaled for missingness like Euclidean.
func Manhattan(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var s float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		s += math.Abs(xs[i] - ys[i])
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return s * float64(n) / float64(cnt)
}

// WeightedPearson returns the Pearson correlation with per-position
// weights, computed over positions where both values are observed and the
// weight is positive. This is how Cluster 3.0 honors the EWEIGHT row of a
// PCL file: replicated or low-quality arrays can be down-weighted without
// editing the matrix. Nil weights fall back to the unweighted statistic.
func WeightedPearson(xs, ys, ws []float64) float64 {
	if ws == nil {
		return Pearson(xs, ys)
	}
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if len(ws) < n {
		n = len(ws)
	}
	var sw, sx, sy float64
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsNaN(ws[i]) || ws[i] <= 0 {
			continue
		}
		sw += ws[i]
		sx += ws[i] * xs[i]
		sy += ws[i] * ys[i]
	}
	if sw == 0 {
		return math.NaN()
	}
	mx, my := sx/sw, sy/sw
	var sxy, sxx, syy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsNaN(ws[i]) || ws[i] <= 0 {
			continue
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += ws[i] * dx * dy
		sxx += ws[i] * dx * dx
		syy += ws[i] * dy * dy
		cnt++
	}
	if cnt < 2 || sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return Clamp(sxy/math.Sqrt(sxx*syy), -1, 1)
}

// Ranks returns the 1-based mid-ranks of xs. Missing values receive NaN
// ranks and do not influence the ranks of observed values. Tied values all
// receive the average of the ranks they span, the standard treatment for
// Spearman correlation.
func Ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	obs := make([]iv, 0, len(xs))
	for i, v := range xs {
		if !math.IsNaN(v) {
			obs = append(obs, iv{i, v})
		}
	}
	// Insertion sort by value; rank vectors are short (per-gene rows).
	for i := 1; i < len(obs); i++ {
		e := obs[i]
		j := i - 1
		for j >= 0 && obs[j].v > e.v {
			obs[j+1] = obs[j]
			j--
		}
		obs[j+1] = e
	}
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = math.NaN()
	}
	i := 0
	for i < len(obs) {
		j := i
		for j+1 < len(obs) && obs[j+1].v == obs[i].v {
			j++
		}
		// Positions i..j are tied; each gets the mean 1-based rank.
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[obs[k].idx] = mean
		}
		i = j + 1
	}
	return out
}

// FisherZ returns the Fisher z-transform atanh(r), the variance-stabilizing
// transform SPELL uses before averaging correlations across conditions.
// Correlations at ±1 are nudged inward to keep the transform finite.
func FisherZ(r float64) float64 {
	if math.IsNaN(r) {
		return math.NaN()
	}
	const eps = 1e-7
	r = Clamp(r, -1+eps, 1-eps)
	return 0.5 * math.Log((1+r)/(1-r))
}

// FisherZInv inverts FisherZ: tanh(z).
func FisherZInv(z float64) float64 {
	if math.IsNaN(z) {
		return math.NaN()
	}
	return math.Tanh(z)
}

// CorrelationMatrix returns the symmetric matrix of pairwise Pearson
// correlations between the rows of m. The diagonal is exactly 1 for rows
// with at least two observed values.
func CorrelationMatrix(rows [][]float64) [][]float64 {
	n := len(rows)
	out := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range out {
		out[i], buf = buf[:n], buf[n:]
	}
	for i := 0; i < n; i++ {
		out[i][i] = 1
		if Count(rows[i]) < 2 {
			out[i][i] = math.NaN()
		}
		for j := i + 1; j < n; j++ {
			r := Pearson(rows[i], rows[j])
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out
}

// MeanPairwiseCorrelation returns the average Pearson correlation over all
// unordered pairs of the given rows, skipping undefined pairs. It is the
// cluster-tightness score used by the Section-4 case-study reproduction.
// NaN when no pair is defined.
func MeanPairwiseCorrelation(rows [][]float64) float64 {
	var s float64
	cnt := 0
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			r := Pearson(rows[i], rows[j])
			if !math.IsNaN(r) {
				s += r
				cnt++
			}
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return s / float64(cnt)
}
