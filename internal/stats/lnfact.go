package stats

import (
	"math"
	"sync"
	"sync/atomic"
)

// The log-factorial table backs the hypergeometric functions: every
// log-binomial-coefficient is ln(n!) - ln(k!) - ln((n-k)!), so once the
// table covers the gene universe (N is fixed per Enricher), a p-value is
// pure lookups and adds — no transcendental calls on the enrichment hot
// path. Entries are computed with math.Lgamma at growth time, which makes
// the table path bitwise identical to the retained per-call Lgamma oracle.
//
// The table is shared, lazily grown, and immutable once published: growth
// builds a longer copy under a mutex and swaps it in atomically, so readers
// never lock and never observe a partially filled slice.

var (
	lnFactMu  sync.Mutex                // serializes growth only
	lnFactTab atomic.Pointer[[]float64] // tab[i] = ln(i!), immutable snapshot
)

func init() {
	tab := buildLnFact(nil, 256)
	lnFactTab.Store(&tab)
}

// buildLnFact returns a table of length n extending old (which it never
// mutates).
func buildLnFact(old []float64, n int) []float64 {
	tab := make([]float64, n)
	copy(tab, old)
	for i := len(old); i < n; i++ {
		tab[i], _ = math.Lgamma(float64(i + 1))
	}
	return tab
}

// LnFactorial returns ln(n!) from the shared table, growing it if needed.
// Negative n returns NaN (no caller should pass one; logChoose guards its
// arguments first).
func LnFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	tab := *lnFactTab.Load()
	if n < len(tab) {
		return tab[n]
	}
	return growLnFact(n)
}

// growLnFact extends the shared table to cover n and returns ln(n!).
func growLnFact(n int) float64 {
	lnFactMu.Lock()
	defer lnFactMu.Unlock()
	tab := *lnFactTab.Load()
	if n < len(tab) { // raced with another grower
		return tab[n]
	}
	// Doubling amortizes growth; +1 because index n needs length n+1.
	size := 2 * len(tab)
	if size < n+1 {
		size = n + 1
	}
	next := buildLnFact(tab, size)
	lnFactTab.Store(&next)
	return next[n]
}

// GrowLnFactorial pre-extends the table through ln(n!). golem.NewEnricher
// calls it with the universe size so no Analyze ever pays the growth.
func GrowLnFactorial(n int) {
	if n >= 0 {
		LnFactorial(n)
	}
}
