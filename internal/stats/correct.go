package stats

import (
	"math"
	"sort"
)

// Multiple-hypothesis corrections used by GOLEM when testing a gene list
// against every GO term simultaneously.

// Bonferroni returns p-values multiplied by the number of tests and clamped
// to 1. NaN inputs stay NaN. The slice order is preserved.
func Bonferroni(ps []float64) []float64 {
	out := make([]float64, len(ps))
	m := float64(len(ps))
	for i, p := range ps {
		if math.IsNaN(p) {
			out[i] = math.NaN()
			continue
		}
		out[i] = Clamp(p*m, 0, 1)
	}
	return out
}

// BenjaminiHochberg returns Benjamini-Hochberg adjusted q-values controlling
// the false-discovery rate. NaN p-values are excluded from the ranking and
// remain NaN in the output. The slice order is preserved.
func BenjaminiHochberg(ps []float64) []float64 {
	type ip struct {
		idx int
		p   float64
	}
	obs := make([]ip, 0, len(ps))
	for i, p := range ps {
		if !math.IsNaN(p) {
			obs = append(obs, ip{i, p})
		}
	}
	out := make([]float64, len(ps))
	for i := range out {
		out[i] = math.NaN()
	}
	if len(obs) == 0 {
		return out
	}
	sort.Slice(obs, func(a, b int) bool { return obs[a].p < obs[b].p })
	m := float64(len(obs))
	// Walk from the largest p-value down, enforcing monotonicity of the
	// adjusted values.
	running := 1.0
	for r := len(obs) - 1; r >= 0; r-- {
		q := obs[r].p * m / float64(r+1)
		if q < running {
			running = q
		}
		out[obs[r].idx] = Clamp(running, 0, 1)
	}
	return out
}

// HolmBonferroni returns Holm's step-down adjusted p-values, a uniformly
// more powerful alternative to plain Bonferroni that still controls the
// family-wise error rate.
func HolmBonferroni(ps []float64) []float64 {
	type ip struct {
		idx int
		p   float64
	}
	obs := make([]ip, 0, len(ps))
	for i, p := range ps {
		if !math.IsNaN(p) {
			obs = append(obs, ip{i, p})
		}
	}
	out := make([]float64, len(ps))
	for i := range out {
		out[i] = math.NaN()
	}
	if len(obs) == 0 {
		return out
	}
	sort.Slice(obs, func(a, b int) bool { return obs[a].p < obs[b].p })
	m := len(obs)
	running := 0.0
	for r, e := range obs {
		adj := e.p * float64(m-r)
		if adj > running {
			running = adj
		}
		out[e.idx] = Clamp(running, 0, 1)
	}
	return out
}
