package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v, want -1", got)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 1, 4, 3, 5}
	// Hand-computed: cov = 2.0 (n-1 basis irrelevant: ratio), r = 0.8.
	if got := Pearson(xs, ys); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("Pearson = %v, want 0.8", got)
	}
}

func TestPearsonConstantVector(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("correlation with a constant vector should be NaN")
	}
}

func TestPearsonWithMissing(t *testing.T) {
	xs := []float64{1, Missing, 3, 4}
	ys := []float64{2, 99, 6, 8}
	// Missing position must be ignored; remaining pairs are colinear.
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson with missing = %v, want 1", got)
	}
	if !math.IsNaN(Pearson([]float64{1, Missing}, []float64{Missing, 1})) {
		t.Fatal("no paired observations should yield NaN")
	}
}

func TestPearsonShortVectors(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("single pair should be NaN")
	}
	if !math.IsNaN(Pearson(nil, nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestPearsonUncentered(t *testing.T) {
	xs := []float64{1, 0}
	ys := []float64{0, 1}
	if got := PearsonUncentered(xs, ys); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
	if got := PearsonUncentered(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self cosine = %v, want 1", got)
	}
	// Uncentered differs from centered when means are nonzero.
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 7}
	if almostEqual(PearsonUncentered(a, b), Pearson(a, b), 1e-9) {
		t.Fatal("uncentered should differ from centered here")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 5, 10, 100}
	ys := []float64{1, 25, 1000, 1e6} // monotone but nonlinear
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("monotone Spearman = %v, want 1", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := Spearman(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("reversed Spearman = %v, want -1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("tied identical vectors = %v, want 1", got)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Euclidean = %v, want 5", got)
	}
	// Missingness rescaling: distance over half the positions scales by sqrt(2).
	withMiss := Euclidean([]float64{0, Missing}, []float64{3, 0})
	if !almostEqual(withMiss, 3*math.Sqrt(2), 1e-12) {
		t.Fatalf("rescaled Euclidean = %v, want %v", withMiss, 3*math.Sqrt(2))
	}
	if !math.IsNaN(Euclidean([]float64{Missing}, []float64{1})) {
		t.Fatal("no pairs should be NaN")
	}
}

func TestManhattan(t *testing.T) {
	if got := Manhattan([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 7, 1e-12) {
		t.Fatalf("Manhattan = %v, want 7", got)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 5, 1, 9})
	// value 1 -> rank 1; two 5s share ranks 2,3 -> 2.5; 9 -> 4.
	want := []float64{2.5, 2.5, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks with ties = %v, want %v", got, want)
		}
	}
}

func TestRanksMissing(t *testing.T) {
	got := Ranks([]float64{3, Missing, 1})
	if !math.IsNaN(got[1]) {
		t.Fatal("missing entry must have NaN rank")
	}
	if got[0] != 2 || got[2] != 1 {
		t.Fatalf("Ranks = %v", got)
	}
}

func TestFisherZRoundTrip(t *testing.T) {
	for _, r := range []float64{-0.99, -0.5, 0, 0.3, 0.9, 0.999} {
		z := FisherZ(r)
		back := FisherZInv(z)
		if !almostEqual(back, r, 1e-6) {
			t.Fatalf("round trip %v -> %v -> %v", r, z, back)
		}
	}
	if math.IsInf(FisherZ(1), 0) || math.IsInf(FisherZ(-1), 0) {
		t.Fatal("FisherZ at ±1 must stay finite")
	}
	if !math.IsNaN(FisherZ(math.NaN())) {
		t.Fatal("FisherZ(NaN) should be NaN")
	}
}

func TestWeightedPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 100}
	ys := []float64{2, 4, 6, -100}
	// Unit weights match the plain statistic.
	unit := []float64{1, 1, 1, 1}
	if a, b := WeightedPearson(xs, ys, unit), Pearson(xs, ys); !almostEqual(a, b, 1e-12) {
		t.Fatalf("unit weights: %v vs %v", a, b)
	}
	// Nil weights fall back to the plain statistic.
	if a, b := WeightedPearson(xs, ys, nil), Pearson(xs, ys); !almostEqual(a, b, 1e-12) {
		t.Fatalf("nil weights: %v vs %v", a, b)
	}
	// Zero weight on the outlier restores the perfect correlation of the
	// first three positions.
	wz := []float64{1, 1, 1, 0}
	if got := WeightedPearson(xs, ys, wz); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("down-weighted outlier: %v, want 1", got)
	}
	// All-zero weights are undefined.
	if !math.IsNaN(WeightedPearson(xs, ys, []float64{0, 0, 0, 0})) {
		t.Fatal("zero total weight should be NaN")
	}
	// Scaling all weights changes nothing.
	w2 := []float64{3, 3, 3, 0}
	if a, b := WeightedPearson(xs, ys, wz), WeightedPearson(xs, ys, w2); !almostEqual(a, b, 1e-12) {
		t.Fatalf("weight scale invariance: %v vs %v", a, b)
	}
}

// Property: WeightedPearson with unit weights equals Pearson.
func TestQuickWeightedPearsonUnitEqualsPlain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10
		xs := make([]float64, n)
		ys := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
			ws[i] = 1
		}
		a, b := WeightedPearson(xs, ys, ws), Pearson(xs, ys)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3},
		{3, 2, 1},
		{1, 2, 3},
	}
	m := CorrelationMatrix(rows)
	if !almostEqual(m[0][0], 1, 1e-12) {
		t.Fatalf("diagonal = %v", m[0][0])
	}
	if !almostEqual(m[0][1], -1, 1e-12) || !almostEqual(m[1][0], -1, 1e-12) {
		t.Fatalf("anti-correlated pair = %v / %v", m[0][1], m[1][0])
	}
	if !almostEqual(m[0][2], 1, 1e-12) {
		t.Fatalf("identical pair = %v", m[0][2])
	}
}

func TestMeanPairwiseCorrelation(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{1, 2, 3, 4.1},
	}
	got := MeanPairwiseCorrelation(rows)
	if got < 0.99 {
		t.Fatalf("tight cluster mean correlation = %v, want ~1", got)
	}
	if !math.IsNaN(MeanPairwiseCorrelation([][]float64{{1, 2}})) {
		t.Fatal("single row should be NaN")
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestQuickPearsonSymmetricBounded(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%30) + 3
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		a := Pearson(xs, ys)
		b := Pearson(ys, xs)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return almostEqual(a, b, 1e-12) && a >= -1 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms of either
// argument.
func TestQuickPearsonAffineInvariant(t *testing.T) {
	f := func(seed int64, scaleBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		scale := 0.5 + float64(scaleBits%100)/10 // strictly positive
		shift := r.NormFloat64() * 10
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = scale*xs[i] + shift
		}
		a, b := Pearson(xs, ys), Pearson(xs2, ys)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Spearman depends only on ranks — applying any strictly
// increasing function leaves it unchanged.
func TestQuickSpearmanRankInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 12
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		cube := make([]float64, n)
		for i, v := range xs {
			cube[i] = v * v * v // strictly increasing
		}
		a, b := Spearman(xs, ys), Spearman(cube, ys)
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Euclidean distance satisfies the triangle inequality on
// fully-observed vectors.
func TestQuickEuclideanTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		return Euclidean(a, c) <= Euclidean(a, b)+Euclidean(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
