package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestLnFactorialMatchesLgamma pins every table entry to math.Lgamma —
// including entries created by growth well past the seed size.
func TestLnFactorialMatchesLgamma(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 255, 256, 257, 1000, 5000, 60001} {
		want, _ := math.Lgamma(float64(n + 1))
		if got := LnFactorial(n); got != want {
			t.Fatalf("LnFactorial(%d) = %v, want %v", n, got, want)
		}
	}
	if !math.IsNaN(LnFactorial(-1)) {
		t.Fatal("LnFactorial(-1) should be NaN")
	}
}

// TestLogChooseMatchesLgammaOracle: the table-based logChoose must agree
// with the retained per-call Lgamma triple bitwise (table entries are
// Lgamma values, so not even 1 ulp of slack is needed).
func TestLogChooseMatchesLgammaOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(20000) - 10 // include a few negatives
		k := rng.Intn(20000) - 10
		got, want := logChoose(n, k), lgammaLogChoose(n, k)
		if got != want && !(math.IsInf(got, -1) && math.IsInf(want, -1)) {
			t.Fatalf("logChoose(%d,%d) = %v, oracle %v", n, k, got, want)
		}
	}
}

// TestHypergeomTableMatchesLgammaOracle is the stats-level golden parity
// required by the enrichment kernel: on random 2×2 tables at gene-universe
// scale, the table-based upper tail and the retained Lgamma path agree to
// ≤ 1e-12 (in fact bitwise).
func TestHypergeomTableMatchesLgammaOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		N := 1 + rng.Intn(6000)
		K := rng.Intn(N + 1)
		n := rng.Intn(N + 1)
		k := rng.Intn(n + 1)
		got := HypergeomUpperTail(k, N, K, n)
		want := HypergeomUpperTailLgamma(k, N, K, n)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("upper tail (k=%d N=%d K=%d n=%d): table %v vs lgamma %v",
				k, N, K, n, got, want)
		}
		lp, lw := HypergeomLogPMF(k, N, K, n), lgammaHypergeomLogPMF(k, N, K, n)
		if lp != lw && !(math.IsInf(lp, -1) && math.IsInf(lw, -1)) {
			t.Fatalf("log PMF (k=%d N=%d K=%d n=%d): table %v vs lgamma %v",
				k, N, K, n, lp, lw)
		}
	}
}

// TestLnFactorialConcurrentGrowth hammers reads racing with growth; run
// with -race it proves the copy-on-grow publication is safe, and every
// caller still sees exact Lgamma values.
func TestLnFactorialConcurrentGrowth(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 2000; i++ {
				n := rng.Intn(30000)
				want, _ := math.Lgamma(float64(n + 1))
				if got := LnFactorial(n); got != want {
					t.Errorf("LnFactorial(%d) = %v, want %v", n, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestGrowLnFactorial(t *testing.T) {
	GrowLnFactorial(-5) // no-op, must not panic
	GrowLnFactorial(70000)
	tab := *lnFactTab.Load()
	if len(tab) < 70001 {
		t.Fatalf("table length %d after GrowLnFactorial(70000)", len(tab))
	}
}
