// Package stats provides the statistical substrate shared by every analysis
// engine in the ForestView reproduction: descriptive statistics, several
// correlation measures, rank transforms, the hypergeometric distribution in
// log space, and multiple-hypothesis corrections.
//
// Microarray matrices routinely contain missing values, so every routine in
// this package treats NaN as "missing" and computes over the observed
// entries only, exactly as the Eisen-lab tool chain (Cluster 3.0, Java
// TreeView) the paper builds on did.
package stats

import (
	"math"
)

// Missing is the canonical missing-value marker used across the repository.
// All statistics skip entries for which math.IsNaN reports true.
var Missing = math.NaN()

// IsMissing reports whether v is a missing measurement.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Count returns the number of observed (non-missing) values in xs.
func Count(xs []float64) int {
	n := 0
	for _, v := range xs {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Sum returns the sum of the observed values in xs. An all-missing or empty
// slice sums to zero.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		if !math.IsNaN(v) {
			s += v
		}
	}
	return s
}

// Mean returns the arithmetic mean of the observed values in xs.
// It returns NaN when xs has no observed values.
func Mean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, v := range xs {
		if !math.IsNaN(v) {
			s += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Variance returns the unbiased (n-1 denominator) sample variance of the
// observed values in xs, or NaN when fewer than two values are observed.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	ss, n := 0.0, 0
	for _, v := range xs {
		if !math.IsNaN(v) {
			d := v - m
			ss += d * d
			n++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of the observed values.
func StdDev(xs []float64) float64 {
	v := Variance(xs)
	if math.IsNaN(v) {
		return math.NaN()
	}
	return math.Sqrt(v)
}

// MinMax returns the smallest and largest observed values in xs.
// ok is false when xs has no observed values.
func MinMax(xs []float64) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		ok = true
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !ok {
		return math.NaN(), math.NaN(), false
	}
	return lo, hi, true
}

// Median returns the median of the observed values in xs, or NaN when none
// are observed. The input is not modified.
func Median(xs []float64) float64 {
	obs := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			obs = append(obs, v)
		}
	}
	if len(obs) == 0 {
		return math.NaN()
	}
	insertionSort(obs)
	n := len(obs)
	if n%2 == 1 {
		return obs[n/2]
	}
	return (obs[n/2-1] + obs[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the observed
// values using linear interpolation between closest ranks. NaN when no
// values are observed or p is out of range.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		return math.NaN()
	}
	obs := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			obs = append(obs, v)
		}
	}
	if len(obs) == 0 {
		return math.NaN()
	}
	insertionSort(obs)
	if len(obs) == 1 {
		return obs[0]
	}
	rank := p / 100 * float64(len(obs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return obs[lo]
	}
	frac := rank - float64(lo)
	return obs[lo]*(1-frac) + obs[hi]*frac
}

// insertionSort sorts small float slices in place; stats paths deal with
// short per-gene vectors where this beats the sort package's overhead and
// keeps this package dependency-light.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// ZScores returns (x - mean)/stddev for every observed entry of xs, leaving
// missing entries missing. When the standard deviation is zero or undefined
// every observed entry maps to zero: a flat gene carries no signal rather
// than infinite signal.
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	ZScoresInto(out, xs)
	return out
}

// Normalize scales the observed entries of xs to unit Euclidean norm in
// place and returns the original norm. A zero or all-missing vector is left
// unchanged and 0 is returned.
func Normalize(xs []float64) float64 {
	ss := 0.0
	for _, v := range xs {
		if !math.IsNaN(v) {
			ss += v * v
		}
	}
	norm := math.Sqrt(ss)
	if norm == 0 {
		return 0
	}
	for i, v := range xs {
		if !math.IsNaN(v) {
			xs[i] = v / norm
		}
	}
	return norm
}

// Clamp limits v to the closed interval [lo, hi]. NaN passes through.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
