package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {10, 3, 120}, {0, 0, 1},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseLargeStable(t *testing.T) {
	// C(1000, 500) is astronomically large; log version must stay finite.
	lc := logChoose(1000, 500)
	if math.IsInf(lc, 0) || math.IsNaN(lc) {
		t.Fatalf("logChoose(1000,500) = %v", lc)
	}
	// Known: log10 C(1000,500) ≈ 299.3; so ln ≈ 689.
	if lc < 600 || lc > 750 {
		t.Fatalf("logChoose(1000,500) = %v outside plausible range", lc)
	}
}

func TestHypergeomPMFKnown(t *testing.T) {
	// Urn: N=50, K=5 successes, draw n=10. P(X=1) = C(5,1)C(45,9)/C(50,10).
	want := Choose(5, 1) * Choose(45, 9) / Choose(50, 10)
	if got := HypergeomPMF(1, 50, 5, 10); !almostEqual(got, want, 1e-9) {
		t.Fatalf("PMF = %v, want %v", got, want)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	N, K, n := 40, 12, 9
	s := 0.0
	for k := 0; k <= n; k++ {
		s += HypergeomPMF(k, N, K, n)
	}
	if !almostEqual(s, 1, 1e-9) {
		t.Fatalf("PMF sums to %v, want 1", s)
	}
}

func TestHypergeomImpossible(t *testing.T) {
	if HypergeomPMF(6, 10, 5, 5) != 0 {
		t.Fatal("k > K must be impossible")
	}
	if HypergeomPMF(-1, 10, 5, 5) != 0 {
		t.Fatal("negative k must be impossible")
	}
	if HypergeomPMF(0, 10, 8, 5) != 0 {
		// n-k=5 > N-K=2: cannot draw 5 failures from 2.
		t.Fatal("too many failures must be impossible")
	}
}

func TestHypergeomUpperTail(t *testing.T) {
	// P(X >= 0) is always 1.
	if got := HypergeomUpperTail(0, 100, 10, 10); got != 1 {
		t.Fatalf("P(X>=0) = %v, want 1", got)
	}
	// Upper tail at k equals sum of PMF from k.
	N, K, n := 60, 15, 12
	k := 5
	want := 0.0
	for i := k; i <= n; i++ {
		want += HypergeomPMF(i, N, K, n)
	}
	if got := HypergeomUpperTail(k, N, K, n); !almostEqual(got, want, 1e-9) {
		t.Fatalf("upper tail = %v, want %v", got, want)
	}
	// Beyond the support the tail is 0.
	if got := HypergeomUpperTail(16, 60, 15, 12); got != 0 {
		t.Fatalf("beyond support = %v, want 0", got)
	}
}

func TestHypergeomLowerTail(t *testing.T) {
	N, K, n := 60, 15, 12
	k := 4
	want := 0.0
	for i := 0; i <= k; i++ {
		want += HypergeomPMF(i, N, K, n)
	}
	if got := HypergeomLowerTail(k, N, K, n); !almostEqual(got, want, 1e-9) {
		t.Fatalf("lower tail = %v, want %v", got, want)
	}
	if got := HypergeomLowerTail(-1, N, K, n); got != 0 {
		t.Fatalf("P(X<=-1) = %v, want 0", got)
	}
	if got := HypergeomLowerTail(n, N, K, n); got != 1 {
		t.Fatalf("P(X<=n) = %v, want 1", got)
	}
}

func TestHypergeomEnrichmentDirection(t *testing.T) {
	// Observing many successes must be less probable than observing few,
	// under a sparse-annotation null.
	pHigh := HypergeomUpperTail(8, 6000, 50, 20)
	pLow := HypergeomUpperTail(1, 6000, 50, 20)
	if pHigh >= pLow {
		t.Fatalf("p(k>=8)=%v should be << p(k>=1)=%v", pHigh, pLow)
	}
	if pHigh > 1e-8 {
		t.Fatalf("extreme enrichment p-value suspiciously large: %v", pHigh)
	}
}

func TestFoldEnrichment(t *testing.T) {
	// 10/20 selected vs 50/6000 background = 0.5 / 0.008333 = 60.
	if got := FoldEnrichment(10, 6000, 50, 20); !almostEqual(got, 60, 1e-9) {
		t.Fatalf("fold = %v, want 60", got)
	}
	if !math.IsNaN(FoldEnrichment(1, 0, 5, 5)) {
		t.Fatal("zero population should be NaN")
	}
}

// Property: upper and lower tails are complementary:
// P(X >= k) + P(X <= k-1) = 1.
func TestQuickHypergeomComplementary(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		N := int(a%80) + 20
		K := int(b) % (N + 1)
		n := int(c) % (N + 1)
		k := int(d) % (n + 1)
		up := HypergeomUpperTail(k, N, K, n)
		lo := HypergeomLowerTail(k-1, N, K, n)
		return almostEqual(up+lo, 1, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: PMF is symmetric in the roles of K and n.
func TestQuickHypergeomSymmetry(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		N := int(a%60) + 10
		K := int(b) % (N + 1)
		n := int(c) % (N + 1)
		k := int(d) % (minInt(K, n) + 1)
		p1 := HypergeomPMF(k, N, K, n)
		p2 := HypergeomPMF(k, N, n, K)
		return almostEqual(p1, p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBonferroni(t *testing.T) {
	ps := []float64{0.01, 0.2, Missing, 0.5}
	out := Bonferroni(ps)
	if !almostEqual(out[0], 0.04, 1e-12) {
		t.Fatalf("Bonferroni[0] = %v, want 0.04", out[0])
	}
	if !almostEqual(out[1], 0.8, 1e-12) {
		t.Fatalf("Bonferroni[1] = %v, want 0.8", out[1])
	}
	if !math.IsNaN(out[2]) {
		t.Fatal("NaN should propagate")
	}
	if out[3] != 1 {
		t.Fatalf("Bonferroni[3] = %v, want clamped 1", out[3])
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	q := BenjaminiHochberg(ps)
	// Sorted: 0.005(1), 0.01(2), 0.03(3), 0.04(4); m=4.
	// raw q: 0.02, 0.02, 0.04, 0.04; monotone from top: same.
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range want {
		if !almostEqual(q[i], want[i], 1e-12) {
			t.Fatalf("BH = %v, want %v", q, want)
		}
	}
}

func TestBenjaminiHochbergMonotone(t *testing.T) {
	ps := []float64{0.001, 0.002, 0.9, 0.04, 0.03}
	q := BenjaminiHochberg(ps)
	// Adjusted values must respect the ordering of raw p-values.
	type pair struct{ p, q float64 }
	var pairs []pair
	for i := range ps {
		pairs = append(pairs, pair{ps[i], q[i]})
	}
	for i := range pairs {
		for j := range pairs {
			if pairs[i].p < pairs[j].p && pairs[i].q > pairs[j].q+1e-12 {
				t.Fatalf("BH not monotone: p=%v q=%v vs p=%v q=%v",
					pairs[i].p, pairs[i].q, pairs[j].p, pairs[j].q)
			}
		}
	}
}

func TestHolmBonferroni(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	h := HolmBonferroni(ps)
	// Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04→max(0.06)=0.06.
	want := []float64{0.03, 0.06, 0.06, 0.02}
	for i := range want {
		if !almostEqual(h[i], want[i], 1e-12) {
			t.Fatalf("Holm = %v, want %v", h, want)
		}
	}
}

func TestCorrectionsEmpty(t *testing.T) {
	if len(Bonferroni(nil)) != 0 || len(BenjaminiHochberg(nil)) != 0 || len(HolmBonferroni(nil)) != 0 {
		t.Fatal("empty input should yield empty output")
	}
	allNaN := []float64{Missing, Missing}
	q := BenjaminiHochberg(allNaN)
	if !math.IsNaN(q[0]) || !math.IsNaN(q[1]) {
		t.Fatal("all-NaN input should stay NaN")
	}
}

// Property: Holm is never less conservative than raw p, and BH is never
// more conservative than Bonferroni.
func TestQuickCorrectionOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Map arbitrary floats into (0,1].
				p := math.Abs(v)
				p -= math.Floor(p)
				if p == 0 {
					p = 0.5
				}
				ps = append(ps, p)
			}
		}
		bon := Bonferroni(ps)
		bh := BenjaminiHochberg(ps)
		holm := HolmBonferroni(ps)
		for i := range ps {
			if holm[i]+1e-12 < ps[i] {
				return false
			}
			if bh[i] > bon[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
