package stats

import "math"

// This file holds the dense fast paths behind the SPELL scoring kernel
// (internal/spell). Unlike the rest of the package, Dot assumes its inputs
// are complete — no missing values — because the caller has already proven
// that with a per-row mask; checking NaN per element would throw away most
// of the win. CenterUnitNormInto is the one-time preprocessing that makes
// the assumption useful: once a complete row is centered and scaled to unit
// Euclidean norm, the Pearson correlation of two such rows is exactly their
// dot product.

// Dot returns the dense dot product of xs and ys over the shorter common
// length. Missing values are NOT skipped: both vectors must be complete.
// The loop runs four independent accumulators so the adds pipeline; the
// grouping of the final reduction is fixed, keeping results deterministic.
func Dot(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	xs, ys = xs[:n], ys[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += xs[i] * ys[i]
		s1 += xs[i+1] * ys[i+1]
		s2 += xs[i+2] * ys[i+2]
		s3 += xs[i+3] * ys[i+3]
	}
	for ; i < n; i++ {
		s0 += xs[i] * ys[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// CenterUnitNormInto writes the centered (mean-zero), unit-Euclidean-norm
// form of xs into dst and reports whether that form exists: it returns
// false — leaving dst in an unspecified state — when xs has a missing
// value, fewer than two entries, or zero variance. When it returns true,
// Pearson(a, b) == Dot(da, db) for any two rows prepared this way (up to
// floating-point rounding), which is what lets the SPELL kernel replace the
// pairwise-NaN Pearson with a single dot product on complete rows.
func CenterUnitNormInto(dst, xs []float64) bool {
	if len(xs) < 2 || len(dst) < len(xs) {
		return false
	}
	sum := 0.0
	for _, v := range xs {
		if math.IsNaN(v) {
			return false
		}
		sum += v
	}
	m := sum / float64(len(xs))
	ss := 0.0
	for i, v := range xs {
		d := v - m
		dst[i] = d
		ss += d * d
	}
	if ss == 0 {
		return false
	}
	inv := 1 / math.Sqrt(ss)
	for i := range xs {
		dst[i] *= inv
	}
	return true
}

// CenterUnitNorm is CenterUnitNormInto with a freshly allocated
// destination; it returns nil, false when the normalized form is undefined.
func CenterUnitNorm(xs []float64) ([]float64, bool) {
	dst := make([]float64, len(xs))
	if !CenterUnitNormInto(dst, xs) {
		return nil, false
	}
	return dst, true
}

// UnitNormInto writes xs scaled to unit Euclidean norm into dst — no
// centering — and reports whether that form exists: it returns false,
// leaving dst in an unspecified state, when xs is empty, has a missing
// value, or has zero norm. When it returns true, PearsonUncentered(a, b) ==
// Dot(ua, ub) for any two rows prepared this way (up to floating-point
// rounding): the cosine-distance analogue of CenterUnitNormInto, used by
// the clustering kernel's uncentered fast path.
func UnitNormInto(dst, xs []float64) bool {
	if len(xs) == 0 || len(dst) < len(xs) {
		return false
	}
	ss := 0.0
	for _, v := range xs {
		if math.IsNaN(v) {
			return false
		}
		ss += v * v
	}
	if ss == 0 {
		return false
	}
	inv := 1 / math.Sqrt(ss)
	for i, v := range xs {
		dst[i] = v * inv
	}
	return true
}

// ZScoresInto is ZScores writing into a caller-provided slice (len(dst)
// must be at least len(xs)), so bulk preprocessing can fill one contiguous
// slab without a per-row allocation.
func ZScoresInto(dst, xs []float64) {
	m := Mean(xs)
	sd := StdDev(xs)
	for i, v := range xs {
		switch {
		case math.IsNaN(v):
			dst[i] = math.NaN()
		case math.IsNaN(sd) || sd == 0:
			dst[i] = 0
		default:
			dst[i] = (v - m) / sd
		}
	}
}
