package stats

import "math"

// The hypergeometric distribution underlies GOLEM's enrichment analysis:
// drawing n genes (the selected cluster) from a population of N genes of
// which K are annotated to some GO term, what is the probability of seeing
// at least k annotated genes in the draw? All computation is performed in
// log space so populations of tens of thousands of genes (and the
// quarter-billion-measurement compendia the paper cites) remain numerically
// stable. Log-factorials come from the shared table in lnfact.go — the
// universe size is fixed per enrichment context, so a p-value is lookups
// and adds with no per-call math.Lgamma. The pre-table Lgamma path is
// retained below (lgammaLogChoose, HypergeomUpperTailLgamma) as the parity
// oracle and the in-binary benchmark baseline.

// logChoose returns log(C(n, k)) or -Inf for impossible combinations.
func logChoose(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LnFactorial(n) - LnFactorial(k) - LnFactorial(n-k)
}

// lgammaLogChoose is the pre-table logChoose: three math.Lgamma calls per
// coefficient. Retained as the golden oracle the table path is tested
// against; table entries are themselves Lgamma values, so the two agree
// bitwise.
func lgammaLogChoose(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// Choose returns the binomial coefficient C(n, k) as a float64. Values
// overflow to +Inf gracefully for very large arguments.
func Choose(n, k int) float64 {
	lc := logChoose(n, k)
	if math.IsInf(lc, -1) {
		return 0
	}
	return math.Exp(lc)
}

// HypergeomPMF returns P(X = k) where X follows a hypergeometric
// distribution with population size N, K successes in the population, and n
// draws. Zero is returned for impossible k.
func HypergeomPMF(k, N, K, n int) float64 {
	lp := HypergeomLogPMF(k, N, K, n)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// HypergeomLogPMF returns log P(X = k), or -Inf for impossible k.
func HypergeomLogPMF(k, N, K, n int) float64 {
	if N < 0 || K < 0 || K > N || n < 0 || n > N {
		return math.Inf(-1)
	}
	if k < 0 || k > n || k > K || n-k > N-K {
		return math.Inf(-1)
	}
	return logChoose(K, k) + logChoose(N-K, n-k) - logChoose(N, n)
}

// HypergeomUpperTail returns P(X >= k): the enrichment p-value of observing
// k or more annotated genes in the selection. The sum runs over the short
// upper tail, accumulating PMF terms in linear space after factoring out
// the largest log term for stability.
func HypergeomUpperTail(k, N, K, n int) float64 {
	if k <= 0 {
		return 1
	}
	hi := n
	if K < hi {
		hi = K
	}
	if k > hi {
		return 0
	}
	// Collect log-PMFs of the tail and sum with the log-sum-exp trick.
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, hi-k+1)
	for i := k; i <= hi; i++ {
		lp := HypergeomLogPMF(i, N, K, n)
		if math.IsInf(lp, -1) {
			continue
		}
		logs = append(logs, lp)
		if lp > maxLog {
			maxLog = lp
		}
	}
	if len(logs) == 0 {
		return 0
	}
	s := 0.0
	for _, lp := range logs {
		s += math.Exp(lp - maxLog)
	}
	p := math.Exp(maxLog) * s
	return Clamp(p, 0, 1)
}

// HypergeomLowerTail returns P(X <= k), the depletion p-value.
func HypergeomLowerTail(k, N, K, n int) float64 {
	if k < 0 {
		return 0
	}
	lo := 0
	if n-(N-K) > lo {
		lo = n - (N - K)
	}
	if k < lo {
		// Fewer successes than the draw forces are impossible.
		return 0
	}
	if k >= minInt(n, K) {
		return 1
	}
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, k-lo+1)
	for i := lo; i <= k; i++ {
		lp := HypergeomLogPMF(i, N, K, n)
		if math.IsInf(lp, -1) {
			continue
		}
		logs = append(logs, lp)
		if lp > maxLog {
			maxLog = lp
		}
	}
	if len(logs) == 0 {
		return 0
	}
	s := 0.0
	for _, lp := range logs {
		s += math.Exp(lp - maxLog)
	}
	return Clamp(math.Exp(maxLog)*s, 0, 1)
}

// lgammaHypergeomLogPMF is HypergeomLogPMF on the retained Lgamma path.
func lgammaHypergeomLogPMF(k, N, K, n int) float64 {
	if N < 0 || K < 0 || K > N || n < 0 || n > N {
		return math.Inf(-1)
	}
	if k < 0 || k > n || k > K || n-k > N-K {
		return math.Inf(-1)
	}
	return lgammaLogChoose(K, k) + lgammaLogChoose(N-K, n-k) - lgammaLogChoose(N, n)
}

// HypergeomUpperTailLgamma is the pre-table HypergeomUpperTail: identical
// tail summation, per-call math.Lgamma coefficients. golem.ReferenceAnalyze
// scores with it so the retained enrichment path is end-to-end the old
// code, and BenchmarkF4_EnrichReference measures the old cost.
func HypergeomUpperTailLgamma(k, N, K, n int) float64 {
	if k <= 0 {
		return 1
	}
	hi := n
	if K < hi {
		hi = K
	}
	if k > hi {
		return 0
	}
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, hi-k+1)
	for i := k; i <= hi; i++ {
		lp := lgammaHypergeomLogPMF(i, N, K, n)
		if math.IsInf(lp, -1) {
			continue
		}
		logs = append(logs, lp)
		if lp > maxLog {
			maxLog = lp
		}
	}
	if len(logs) == 0 {
		return 0
	}
	s := 0.0
	for _, lp := range logs {
		s += math.Exp(lp - maxLog)
	}
	return Clamp(math.Exp(maxLog)*s, 0, 1)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FoldEnrichment returns the ratio of the observed annotation fraction in
// the selection to the background fraction: (k/n)/(K/N). NaN when any
// denominator is zero.
func FoldEnrichment(k, N, K, n int) float64 {
	if n == 0 || N == 0 || K == 0 {
		return math.NaN()
	}
	return (float64(k) / float64(n)) / (float64(K) / float64(N))
}
