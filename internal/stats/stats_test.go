package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestCount(t *testing.T) {
	if got := Count(nil); got != 0 {
		t.Fatalf("Count(nil) = %d, want 0", got)
	}
	if got := Count([]float64{1, Missing, 3}); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := Count([]float64{Missing, Missing}); got != 0 {
		t.Fatalf("Count all-missing = %d, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, Missing, 3}); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{1, Missing, 3}, 2},
		{[]float64{Missing}, math.NaN()},
		{nil, math.NaN()},
		{[]float64{-5, 5}, 0},
	}
	for i, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("case %d: Mean = %v, want %v", i, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single value should be NaN")
	}
	if !math.IsNaN(Variance([]float64{Missing, 1})) {
		t.Fatal("Variance of one observed value should be NaN")
	}
}

func TestVarianceSkipsMissing(t *testing.T) {
	with := []float64{1, Missing, 2, 3, Missing}
	without := []float64{1, 2, 3}
	if !almostEqual(Variance(with), Variance(without), 1e-12) {
		t.Fatalf("missing values must not affect variance: %v vs %v",
			Variance(with), Variance(without))
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, ok := MinMax([]float64{3, Missing, -1, 7})
	if !ok || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v,%v), want (-1,7,true)", lo, hi, ok)
	}
	if _, _, ok := MinMax([]float64{Missing}); ok {
		t.Fatal("MinMax of all-missing should report !ok")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if got := Median([]float64{4, Missing, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median with missing = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	Median(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Fatal("out-of-range percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestZScores(t *testing.T) {
	xs := []float64{1, 2, 3, Missing}
	zs := ZScores(xs)
	if !math.IsNaN(zs[3]) {
		t.Fatal("missing entry should stay missing")
	}
	if !almostEqual(Mean(zs[:3]), 0, 1e-12) {
		t.Fatalf("z-scores should have zero mean, got %v", Mean(zs[:3]))
	}
	if !almostEqual(StdDev(zs[:3]), 1, 1e-12) {
		t.Fatalf("z-scores should have unit sd, got %v", StdDev(zs[:3]))
	}
}

func TestZScoresFlatVector(t *testing.T) {
	zs := ZScores([]float64{5, 5, 5})
	for i, z := range zs {
		if z != 0 {
			t.Fatalf("flat vector z-score[%d] = %v, want 0", i, z)
		}
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{3, 4}
	norm := Normalize(xs)
	if !almostEqual(norm, 5, 1e-12) {
		t.Fatalf("norm = %v, want 5", norm)
	}
	if !almostEqual(xs[0], 0.6, 1e-12) || !almostEqual(xs[1], 0.8, 1e-12) {
		t.Fatalf("normalized = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("zero vector norm should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
	if !math.IsNaN(Clamp(math.NaN(), 0, 1)) {
		t.Fatal("Clamp(NaN) should stay NaN")
	}
}

// Property: the mean of a shuffled vector equals the mean of the original.
func TestQuickMeanPermutationInvariant(t *testing.T) {
	f := func(vals []float64, seed int64) bool {
		xs := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		ys := make([]float64, len(xs))
		copy(ys, xs)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
		return almostEqual(Mean(xs), Mean(ys), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: z-scoring twice is the same as z-scoring once (idempotence on
// already-standardized data).
func TestQuickZScoresIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		z1 := ZScores(xs)
		z2 := ZScores(z1)
		for i := range z1 {
			if !almostEqual(z1[i], z2[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Variance is non-negative whenever defined.
func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
				xs = append(xs, v)
			}
		}
		v := Variance(xs)
		return math.IsNaN(v) || v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
