package shard

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"forestview/internal/faultline"
	"forestview/internal/spell"
)

// TestScatterChaosZeroDegraded is the chaos acceptance gate: a 3-shard
// R=2 fleet under deterministic fault injection — one shard drawing the
// full fault menu (5xx, resets, truncated gobs, stalls), another slowed
// but healthy — serves every query non-degraded at golden parity. The
// topology makes this a structural guarantee, not a timing accident:
// every ownership group {0,1},{0,2},{1,2} contains a member that either
// never faults (shard-0) or only slows down (shard-2), so failover,
// retry and the scavenge pass always have somewhere correct to go,
// regardless of goroutine interleaving. Flaking here means a robustness
// bug, not an unlucky seed.
func TestScatterChaosZeroDegraded(t *testing.T) {
	f := newScatterFixtureR(t, 3, 2)
	inj := faultline.New(20260808)
	c, servers := f.start(t, Config{
		Deadline: 2 * time.Second,
		Client:   &http.Client{Transport: inj.Wrap(nil)},
	})
	host := func(i int) string { return strings.TrimPrefix(servers[i].URL, "http://") }
	inj.SetRules(
		// shard-1: every other request draws the next fault in the cycle.
		faultline.Rule{Host: host(1), Every: 2,
			Kinds: []faultline.Kind{faultline.Err5xx, faultline.Reset, faultline.Truncate, faultline.Stall},
			Delay: 200 * time.Millisecond},
		// shard-2: slow but correct — latency well under the deadline.
		faultline.Rule{Host: host(2), Every: 3,
			Kinds: []faultline.Kind{faultline.Latency},
			Delay: 30 * time.Millisecond},
	)

	opt := spell.Options{MaxGenes: 30}
	want, err := f.full.Search(f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		res, meta, err := c.SearchCtx(context.Background(), f.query, opt)
		if err != nil {
			t.Fatalf("query %d under chaos: %v", i, err)
		}
		if meta.Degraded {
			t.Fatalf("query %d degraded (%d/%d shards) — a fault leaked past failover", i, meta.ShardsOK, meta.ShardsTotal)
		}
		assertParity(t, res, want)
	}

	// The gate must prove faults actually fired — a silent injector would
	// make this test vacuous.
	counts := inj.Counts()
	if inj.Total() == 0 {
		t.Fatal("injector fired no faults")
	}
	for _, kind := range []string{"err5xx", "reset"} {
		if counts[kind] == 0 {
			t.Fatalf("fault kind %s never fired: %v", kind, counts)
		}
	}

	// And the coordinator must have seen (and absorbed) real trouble.
	snap := c.Stats()
	var faultyErrors int64
	for _, s := range snap.Shards {
		if s.Addr == f.identities[1] {
			faultyErrors = s.Errors
		}
	}
	if faultyErrors == 0 {
		t.Fatalf("faulted shard recorded no errors: %+v", snap.Shards)
	}
}
