package shard

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forestview/internal/spell"
)

// ErrAllShardsFailed reports a scatter in which no ownership group could
// be served: there is nothing to merge and nothing to degrade to. The
// daemon maps it to 503 (retryable full outage), distinct from a query
// error (422).
var ErrAllShardsFailed = errors.New("shard: every shard failed")

// ErrDegradedUnresolved reports a degraded scatter whose *surviving*
// shards measured none of the query genes: the unreachable shards may
// hold them, so the honest answer is "retry later" (503), not the
// single-process "your genes don't exist" query error (422) that the
// same merge outcome means when every shard answered.
var ErrDegradedUnresolved = errors.New("shard: query genes unresolved — unreachable shards may hold them")

// Config assembles a Coordinator.
type Config struct {
	// Shards are the initial fleet members, by identity — the exact
	// strings the shard daemons were booted with in their -shards lists
	// (rendezvous ownership hashes these, so both sides must agree
	// byte-for-byte). Runtime membership changes go through Membership.
	Shards []string
	// Replication is the ownership factor R: every dataset is owned by its
	// top-R rendezvous shards and any R-1 failures lose nothing (default
	// 1, the single-owner fleet). Shard daemons must be booted with the
	// same factor, or coverage gaps surface as degraded merges.
	Replication int
	// Resolve turns a shard identity into a dial URL (default: trim, and
	// prefix "http://" unless a scheme is present — identities that are
	// themselves addresses). In-process tests resolve logical names to
	// httptest listeners with it.
	Resolve func(identity string) string
	// Client issues the scatter requests (default: a plain http.Client;
	// deadlines come from per-attempt contexts, not a client timeout).
	Client *http.Client
	// Deadline bounds each shard attempt (default 10s). A shard that
	// cannot answer within it is treated as failed for this query — the
	// attempt fails over to the next replica rather than waiting.
	Deadline time.Duration
	// Retry gives each ownership group one extra attempt (against its
	// primary replica, with a fresh deadline) after every replica failed.
	Retry bool
	// HedgeAfter, when positive, fires a duplicate request for a group
	// whose in-flight attempt has not answered after this delay, taking
	// whichever returns first. Under replication the hedge goes to the
	// next *untried* replica — true failover for tail latency and host
	// death alike; with a single owner it duplicates to the same backend,
	// covering tail latency only (GC pauses, a lost packet), as before.
	HedgeAfter time.Duration
	// RetryBackoff shapes the jittered delay before the last-resort group
	// retry and between failed scavenge attempts (zero fields default to
	// 50ms base, 1s max, factor 2). Immediate retries re-dial a
	// still-sick shard; a short backoff lets transient faults clear.
	RetryBackoff Backoff
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's circuit breaker open (default 3; negative disables the
	// breaker). While open, scatter attempts skip the replica — its
	// groups are served by the other replicas — until a jittered backoff
	// window elapses and a half-open probe is admitted.
	BreakerThreshold int
	// BreakerBackoff shapes the breaker's open window, growing with
	// consecutive trips (zero fields default to 200ms base, 15s max,
	// factor 2).
	BreakerBackoff Backoff
	// InfoFailureCooldown bounds how often a failing compendium-info
	// probe round is retried (default 15s; negative disables the
	// cooldown, so every caller re-probes). Cleared by a membership bump
	// or the first successful round.
	InfoFailureCooldown time.Duration
}

// NormalizeAddr is the default identity resolver: an address-like
// identity ("host:port", with or without a scheme) becomes a base URL.
func NormalizeAddr(identity string) string {
	s := strings.TrimRight(strings.TrimSpace(identity), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// Coordinator scatters SPELL queries over a replicated shard fleet and
// merges the partials with global weight renormalization. It stays
// stateless about datasets — ownership is a pure function of the live
// shard list (see Owners), and the dataset catalog it partitions into
// ownership groups is fetched from any one shard and cached per
// membership generation. Safe for concurrent use.
type Coordinator struct {
	cfg        Config
	client     *http.Client
	resolve    func(string) string
	membership *Membership

	counters sync.Map // shard identity -> *shardCounters
	rr       atomic.Uint64
	degraded atomic.Int64
	outages  atomic.Int64

	// draining marks replicas an operator (or the shard's own info
	// status) has flagged as leaving: orderReplicas demotes them to
	// last-resort so planned maintenance drains query load before the
	// membership bump. Keyed by identity; no generation semantics — a
	// mark survives until cleared (undrain, re-add, or remove).
	draining sync.Map // shard identity -> struct{}

	// catalog caches the ownership-group derivation per membership
	// generation; catalogMu serializes the fetch that fills it.
	catalog   atomic.Pointer[catalogState]
	catalogMu sync.Mutex

	// ecat caches the enrichment term catalog (golem.TermCatalog) per
	// membership generation, fetched from any capable shard; ecatMu
	// serializes the fetch.
	ecat   atomic.Pointer[enrichCatalogState]
	ecatMu sync.Mutex

	info atomic.Pointer[infoState]

	// infoMu serializes info probes (at most one fan-out in flight);
	// infoFailedAt/infoErr remember the last failed round so that, during
	// an outage, /api/stats and page renders get the cached error
	// immediately instead of stacking shard probes behind the deadline.
	// A membership bump clears the cooldown: removing the dead member is
	// exactly what should make info answerable again.
	infoMu       sync.Mutex
	infoFailedAt time.Time
	infoErr      error
	infoErrGen   uint64
}

// shardCounters is one backend's cumulative scatter accounting, plus its
// circuit breaker (per-replica state lives with per-replica counters).
type shardCounters struct {
	requests     atomic.Int64
	errors       atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	failovers    atomic.Int64 // attempts landed here after another replica failed or fell short
	hedgeWins    atomic.Int64 // hedged attempts whose answer was the one used
	breakerSkips atomic.Int64 // attempts skipped because the breaker was open
	inflight     atomic.Int64
	latencyUS    atomic.Int64
	maxUS        atomic.Int64
	breaker      breaker
}

func (s *shardCounters) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	if failed {
		s.errors.Add(1)
	}
	us := d.Microseconds()
	s.latencyUS.Add(us)
	for {
		cur := s.maxUS.Load()
		if us <= cur || s.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// NewCoordinator validates the config and prepares the scatter state.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	m, err := NewMembership(cfg.Shards)
	if err != nil {
		return nil, err
	}
	shards, _ := m.Snapshot()
	if cfg.Replication == 0 {
		cfg.Replication = 1
	}
	if cfg.Replication < 1 {
		return nil, fmt.Errorf("shard: replication factor %d < 1", cfg.Replication)
	}
	if cfg.Replication > len(shards) {
		return nil, fmt.Errorf("shard: replication factor %d exceeds the %d-shard fleet", cfg.Replication, len(shards))
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Second
	}
	cfg.RetryBackoff = cfg.RetryBackoff.withDefaults(defaultRetryBackoff)
	cfg.BreakerBackoff = cfg.BreakerBackoff.withDefaults(defaultBreakerBackoff)
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.InfoFailureCooldown == 0 {
		cfg.InfoFailureCooldown = 15 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	resolve := cfg.Resolve
	if resolve == nil {
		resolve = NormalizeAddr
	}
	return &Coordinator{
		cfg:        cfg,
		client:     client,
		resolve:    resolve,
		membership: m,
	}, nil
}

// Membership exposes the live shard list for runtime joins and leaves
// (the daemon's /api/admin/fleet endpoint drives it). Every bump
// re-derives ownership on the next scatter and invalidates the cached
// catalog and compendium info.
func (c *Coordinator) Membership() *Membership { return c.membership }

// Shards returns the live shard identities.
func (c *Coordinator) Shards() []string {
	shards, _ := c.membership.Snapshot()
	return shards
}

// Generation fingerprints the live shard topology; see the package
// function. The daemon bakes it into merged-result cache keys, so results
// merged over a previous membership are unreachable after a bump.
func (c *Coordinator) Generation() uint64 { return c.membership.Generation() }

// Replication returns the configured ownership factor R.
func (c *Coordinator) Replication() int { return c.cfg.Replication }

// replicationFor clamps the configured factor to the live fleet size (a
// fleet shrunk below R still serves, with as many replicas as exist).
func (c *Coordinator) replicationFor(nShards int) int {
	r := c.cfg.Replication
	if r > nShards {
		r = nShards
	}
	if r < 1 {
		r = 1
	}
	return r
}

func (c *Coordinator) counterFor(shard string) *shardCounters {
	if v, ok := c.counters.Load(shard); ok {
		return v.(*shardCounters)
	}
	v, _ := c.counters.LoadOrStore(shard, &shardCounters{})
	return v.(*shardCounters)
}

// SetDraining marks (or clears) a replica as draining: orderReplicas
// demotes marked replicas to last-resort, so a shard about to leave stops
// receiving primary traffic while it can still serve as a failover target.
// Driven by the daemon's fleet admin endpoint and by shard info statuses.
func (c *Coordinator) SetDraining(shard string, draining bool) {
	shard = normalizeIdentity(shard)
	if draining {
		c.draining.Store(shard, struct{}{})
	} else {
		c.draining.Delete(shard)
	}
}

// isDraining reports whether a replica carries the draining mark.
func (c *Coordinator) isDraining(shard string) bool {
	_, ok := c.draining.Load(shard)
	return ok
}

// DrainingShards lists the live members currently marked draining.
func (c *Coordinator) DrainingShards() []string {
	shards, _ := c.membership.Snapshot()
	var out []string
	for _, s := range shards {
		if c.isDraining(s) {
			out = append(out, s)
		}
	}
	return out
}

// breakerAllow consults a replica's breaker (a no-op pass when disabled).
// lastResort forces admission as a half-open probe: the caller has no
// other replica to send the group to, and an untried group is worse than
// probing a suspect shard.
func (c *Coordinator) breakerAllow(shard string, lastResort bool) (ok, probe bool) {
	if c.cfg.BreakerThreshold <= 0 {
		return true, false
	}
	return c.counterFor(shard).breaker.allow(time.Now(), lastResort)
}

// breakerObserve feeds an attempt outcome to the replica's breaker.
// Cancellation is neutral: a hedge loser or caller hangup says nothing
// about the shard's health, so it neither trips nor closes anything (a
// canceled probe only releases the probe slot).
func (c *Coordinator) breakerObserve(shard string, err error, probe bool) {
	if c.cfg.BreakerThreshold <= 0 {
		return
	}
	b := &c.counterFor(shard).breaker
	if err != nil && errors.Is(err, context.Canceled) {
		if probe {
			b.clearProbe()
		}
		return
	}
	b.observe(err == nil, probe, time.Now(), c.cfg.BreakerThreshold, func(opens int) time.Duration {
		return c.cfg.BreakerBackoff.Delay(opens, rand.Float64)
	})
}

// Meta describes how a scatter went: the fleet it ran against, how many
// ownership groups (and distinct shards) contributed, and whether the
// merged result is degraded — renormalized over less than the full
// compendium because some group could not be served completely.
type Meta struct {
	ShardsOK    int  `json:"shards_ok"`
	ShardsTotal int  `json:"shards_total"`
	Degraded    bool `json:"degraded"`
	Replication int  `json:"replication,omitempty"`
	GroupsOK    int  `json:"groups_ok,omitempty"`
	GroupsTotal int  `json:"groups_total,omitempty"`
}

// catalogState is the per-generation ownership derivation: the global
// dataset list (from any shard's boot catalog) partitioned into ownership
// groups — the distinct ordered top-R owner tuples.
type catalogState struct {
	gen    uint64
	ids    []string
	groups []ownerGroup
}

// ownerGroup is one ownership group: the ordered replica tuple and how
// many datasets it covers.
type ownerGroup struct {
	owners []string
	count  int
}

func deriveCatalog(gen uint64, ids []string, shards []string, r int) *catalogState {
	cat := &catalogState{gen: gen, ids: ids}
	// Groups owns the group ordering — the same derivation shards apply to
	// an EnrichRequest, so group gi here is background slice gi there.
	index := make(map[string]int)
	for _, owners := range Groups(ids, shards, r) {
		index[strings.Join(owners, "\x00")] = len(cat.groups)
		cat.groups = append(cat.groups, ownerGroup{owners: owners})
	}
	for _, id := range ids {
		cat.groups[index[strings.Join(Owners(id, shards, r), "\x00")]].count++
	}
	return cat
}

// catalogFor returns the ownership groups for the given membership
// snapshot, fetching the dataset catalog from any one live shard on the
// first scatter of a generation.
func (c *Coordinator) catalogFor(ctx context.Context, shards []string, gen uint64) (*catalogState, error) {
	if cat := c.catalog.Load(); cat != nil && cat.gen == gen {
		return cat, nil
	}
	c.catalogMu.Lock()
	defer c.catalogMu.Unlock()
	if cat := c.catalog.Load(); cat != nil && cat.gen == gen {
		return cat, nil
	}
	ids, err := c.fetchAnyCatalog(ctx, shards)
	if err != nil {
		return nil, err
	}
	cat := deriveCatalog(gen, ids, shards, c.replicationFor(len(shards)))
	c.catalog.Store(cat)
	return cat, nil
}

// fetchAnyCatalog asks every live shard for its boot catalog concurrently
// and takes the first complete answer — any one shard suffices, so a
// partly dead fleet can still be partitioned.
func (c *Coordinator) fetchAnyCatalog(ctx context.Context, shards []string) ([]string, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fetch struct {
		ids []string
		err error
	}
	ch := make(chan fetch, len(shards))
	for _, s := range shards {
		go func(s string) {
			info, err := c.fetchOneInfo(fctx, s)
			if err != nil {
				ch <- fetch{err: fmt.Errorf("%s: %w", s, err)}
				return
			}
			if len(info.AllDatasetIDs) == 0 {
				ch <- fetch{err: fmt.Errorf("%s: shard reported no dataset catalog", s)}
				return
			}
			ch <- fetch{ids: info.AllDatasetIDs}
		}(s)
	}
	var firstErr error
	for range shards {
		f := <-ch
		if f.err == nil {
			return f.ids, nil
		}
		if firstErr == nil {
			firstErr = f.err
		}
	}
	return nil, firstErr
}

// SearchCtx scatters one query over the fleet's ownership groups: each
// group is served by one of its R replicas (picked by
// power-of-two-choices over in-flight counts), failing over to the
// remaining replicas on error or incomplete coverage. The partials merge
// with global renormalization. The merge is degraded only when some
// group could not be fully served — under replication that takes all R
// of its replicas failing; only a scatter in which no group was served at
// all returns ErrAllShardsFailed. A canceled caller context aborts the
// scatter with the context error.
func (c *Coordinator) SearchCtx(ctx context.Context, query []string, opt spell.Options) (*spell.Result, Meta, error) {
	shards, gen := c.membership.Snapshot()
	r := c.replicationFor(len(shards))
	meta := Meta{ShardsTotal: len(shards), Replication: r}
	query = spell.CanonicalQuery(query)
	if len(query) == 0 {
		return nil, meta, errors.New("spell: empty query")
	}
	cat, err := c.catalogFor(ctx, shards, gen)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, meta, cerr
		}
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (catalog: %v)", ErrAllShardsFailed, err)
	}
	meta.GroupsTotal = len(cat.groups)

	// One request body per group: same query, different ownership scope.
	bodies := make([][]byte, len(cat.groups))
	for gi, g := range cat.groups {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(SearchRequest{
			Query:       query,
			Shards:      shards,
			Replication: r,
			Owners:      g.owners,
		}); err != nil {
			return nil, meta, err
		}
		bodies[gi] = body.Bytes()
	}

	results := make([]groupResult, len(cat.groups))
	var wg sync.WaitGroup
	for gi := range cat.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g := cat.groups[gi]
			results[gi] = c.fetchGroup(ctx, shards, g, g.count,
				func(actx context.Context, shard string) (any, int, error) {
					p, err := c.doSearch(actx, shard, bodies[gi])
					if err != nil {
						return nil, 0, err
					}
					return p, g.count - len(p.Datasets), nil
				})
		}(gi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller hung up or timed out: report that, not a fabricated
		// outage — per-group errors here are all descendants of it.
		return nil, meta, err
	}

	parts := make([]spell.Partial, 0, len(results))
	contributors := make(map[string]bool)
	var firstErr error
	for gi, gr := range results {
		if gr.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("group %v: %w", cat.groups[gi].owners, gr.err)
		}
		if gr.payload == nil {
			continue
		}
		p := gr.payload.(*spell.Partial)
		if gr.missing == 0 {
			meta.GroupsOK++
		}
		// A best response with zero datasets (the serving shard held
		// nothing of the group — membership drift) adds nothing to the
		// merge and does not make its shard a contributor.
		if len(p.Datasets) > 0 {
			parts = append(parts, *p)
			contributors[gr.shard] = true
		}
	}
	meta.ShardsOK = len(contributors)
	if len(parts) == 0 {
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (first: %v)", ErrAllShardsFailed, firstErr)
	}
	meta.Degraded = meta.GroupsOK < meta.GroupsTotal
	if meta.Degraded {
		c.degraded.Add(1)
	}
	res, err := spell.Merge(parts, opt)
	if err != nil {
		if meta.Degraded && errors.Is(err, spell.ErrNoQueryGenes) {
			// The survivors can't rule the genes in OR out.
			err = fmt.Errorf("%w (%d of %d groups served: %v)",
				ErrDegradedUnresolved, meta.GroupsOK, meta.GroupsTotal, firstErr)
		}
		return nil, meta, err
	}
	return res, meta, nil
}

// groupResult is one ownership group's scatter outcome: the best payload
// obtained (lowest missing score), which shard served it, and the first
// error met along the way. The payload's concrete type belongs to the
// attempt function that produced it (*spell.Partial for search,
// *golem.PartialCounts for enrichment).
type groupResult struct {
	payload any
	shard   string
	missing int
	err     error
}

// attemptFn is one endpoint-specific shard attempt: it returns the decoded
// payload and a "missing" score (0 = the group is fully served; higher =
// failover-worthy shortfall, e.g. datasets the serving shard did not hold).
type attemptFn func(ctx context.Context, shard string) (payload any, missing int, err error)

// orderReplicas orders a group's replica tuple for attempts: draining
// replicas are demoted to the back in rank order (last-resort only — a
// draining shard still serves, but new primary traffic belongs on its
// successors), then the primary is picked by power-of-two-choices over the
// remaining replicas' in-flight counts (two rotating probes, least loaded
// wins), the rest following in rank order. With fewer than two candidates
// the tuple order stands.
func (c *Coordinator) orderReplicas(owners []string) []string {
	out := make([]string, 0, len(owners))
	var last []string
	for _, s := range owners {
		if c.isDraining(s) {
			last = append(last, s)
		} else {
			out = append(out, s)
		}
	}
	if len(out) >= 2 {
		n := c.rr.Add(1)
		l := uint64(len(out))
		i := int(n % l)
		j := int((n / l) % l)
		if i == j {
			j = (j + 1) % len(out)
		}
		pick := i
		if c.counterFor(out[j]).inflight.Load() < c.counterFor(out[pick]).inflight.Load() {
			pick = j
		}
		picked := out[pick]
		copy(out[1:pick+1], out[:pick])
		out[0] = picked
	}
	return append(out, last...)
}

type attemptOutcome struct {
	shard   string
	hedge   bool
	payload any
	missing int
	err     error
}

// fetchGroup runs one ownership group's attempt discipline over an
// endpoint-specific attempt function (search partials and enrichment
// counts share it verbatim). Phase 1 walks the replica tuple: an error or
// an incomplete answer fails over to the next untried replica; a hedge (if
// configured) duplicates onto the next untried replica too, or onto the
// primary itself when none remain (the legacy single-owner hedge). If
// every replica failed outright, Retry grants the primary one extra
// attempt. Phase 2 — only when coverage is still incomplete, which
// consistent placement never triggers — scavenges the non-owner shards
// sequentially, because after a membership change without a data re-sync
// they may still hold the group's datasets from their boot-time assignment
// (and for enrichment any capable shard can serve any slice). The best
// answer wins; worst seeds the missing score an absent answer counts as.
func (c *Coordinator) fetchGroup(ctx context.Context, shards []string, g ownerGroup, worst int, do attemptFn) groupResult {
	replicas := c.orderReplicas(g.owners)
	inGroup := make(map[string]bool, len(replicas))
	for _, s := range replicas {
		inGroup[s] = true
	}

	best := groupResult{missing: worst}
	resCh := make(chan attemptOutcome, len(replicas)+2)
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func(shard string, hedge, probe bool) {
		actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
		cancels = append(cancels, cancel)
		go func() {
			sc := c.counterFor(shard)
			sc.inflight.Add(1)
			t0 := time.Now()
			p, missing, err := do(actx, shard)
			sc.inflight.Add(-1)
			sc.observe(time.Since(t0), err != nil)
			c.breakerObserve(shard, err, probe)
			resCh <- attemptOutcome{shard: shard, hedge: hedge, payload: p, missing: missing, err: err}
		}()
	}

	next := 0
	launchNext := func(hedge, failover bool) bool {
		for next < len(replicas) && ctx.Err() == nil {
			s := replicas[next]
			next++
			ok, probe := c.breakerAllow(s, false)
			if !ok {
				c.counterFor(s).breakerSkips.Add(1)
				continue
			}
			if failover {
				c.counterFor(s).failovers.Add(1)
			}
			if hedge {
				c.counterFor(s).hedges.Add(1)
			}
			launch(s, hedge, probe)
			return true
		}
		return false
	}
	outstanding := 0
	if launchNext(false, false) { // the p2c primary
		outstanding = 1
	} else if len(replicas) > 0 && ctx.Err() == nil {
		// Availability floor: every replica's breaker refused admission.
		// Force a half-open probe of the primary rather than fail the
		// group without a single attempt.
		s := replicas[0]
		_, probe := c.breakerAllow(s, true)
		launch(s, false, probe)
		outstanding = 1
	}

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	for outstanding > 0 {
		select {
		case o := <-resCh:
			outstanding--
			if o.err != nil {
				if best.err == nil {
					best.err = fmt.Errorf("%s: %w", o.shard, o.err)
				}
				if launchNext(false, true) {
					outstanding++
				}
				continue
			}
			if o.hedge {
				c.counterFor(o.shard).hedgeWins.Add(1)
			}
			if best.payload == nil || o.missing < best.missing {
				best.payload, best.shard, best.missing = o.payload, o.shard, o.missing
			}
			if best.missing == 0 {
				return best // deferred cancels stop any stragglers
			}
			// Incomplete coverage (membership drift): try the next replica.
			if launchNext(false, true) {
				outstanding++
			}
		case <-hedgeC:
			hedgeC = nil
			if ctx.Err() != nil {
				continue
			}
			if launchNext(true, false) {
				outstanding++
			} else if len(replicas) > 0 && next >= len(replicas) && outstanding > 0 {
				// Every replica already tried or in flight: duplicate the
				// primary, the legacy tail-latency hedge.
				s := replicas[0]
				c.counterFor(s).hedges.Add(1)
				launch(s, true, false)
				outstanding++
			}
		}
	}

	if best.payload == nil && c.cfg.Retry && ctx.Err() == nil && len(replicas) > 0 &&
		sleepCtx(ctx, c.cfg.RetryBackoff.Delay(0, rand.Float64)) {
		// Last-resort retry, after a jittered backoff (an immediate retry
		// just re-dials a still-sick shard) and forced through the breaker
		// as a probe — there is nowhere else to send this group.
		s := replicas[0]
		_, probe := c.breakerAllow(s, true)
		sc := c.counterFor(s)
		sc.retries.Add(1)
		actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
		defer cancel()
		sc.inflight.Add(1)
		t0 := time.Now()
		p, missing, err := do(actx, s)
		sc.inflight.Add(-1)
		sc.observe(time.Since(t0), err != nil)
		c.breakerObserve(s, err, probe)
		if err == nil {
			best.payload, best.shard, best.missing = p, s, missing
		} else if best.err == nil {
			best.err = fmt.Errorf("%s: %w", s, err)
		}
	}

	// Scavenge pass: the owners couldn't fully serve the group. After a
	// membership change the data may still sit on shards outside the new
	// tuple (boot-time placement), so ask the rest of the fleet — cheap,
	// cached empty answers in the common case — and keep the best.
	scavFails := 0
	for _, s := range shards {
		if best.missing == 0 || ctx.Err() != nil {
			break
		}
		if inGroup[s] {
			continue
		}
		ok, probe := c.breakerAllow(s, false)
		if !ok {
			// Scavenging is speculative; a shard known to be sick is not
			// worth the attempt deadline.
			c.counterFor(s).breakerSkips.Add(1)
			continue
		}
		if scavFails > 0 && !sleepCtx(ctx, c.cfg.RetryBackoff.Delay(scavFails-1, rand.Float64)) {
			break
		}
		sc := c.counterFor(s)
		sc.failovers.Add(1)
		actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
		sc.inflight.Add(1)
		t0 := time.Now()
		p, missing, err := do(actx, s)
		sc.inflight.Add(-1)
		sc.observe(time.Since(t0), err != nil)
		c.breakerObserve(s, err, probe)
		cancel()
		if err != nil {
			scavFails++
			if best.err == nil {
				best.err = fmt.Errorf("%s: %w", s, err)
			}
			continue
		}
		if best.payload == nil || missing < best.missing {
			best.payload, best.shard, best.missing = p, s, missing
		}
	}
	return best
}

// doSearch performs one HTTP attempt against a shard's SearchPath.
func (c *Coordinator) doSearch(ctx context.Context, shard string, reqBody []byte) (*spell.Partial, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.resolve(shard)+SearchPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var p spell.Partial
	if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decoding partial: %w", err)
	}
	return &p, nil
}

// CompendiumInfo aggregates what the shard set holds.
type CompendiumInfo struct {
	Datasets int
	Genes    int // distinct gene IDs across the union of slices
}

// infoState pairs a cached compendium union with the membership
// generation it was probed under.
type infoState struct {
	gen  uint64
	info CompendiumInfo
}

// Info returns the union compendium description, fetching each live
// shard's InfoPath and caching a fully successful answer under the
// membership generation — a join or leave invalidates it, so dataset
// counts and the gene universe refresh with the fleet. While any live
// shard is unreachable the info stays uncached and the error is returned,
// so callers degrade to "unknown" rather than a wrong total; probes are
// serialized, and after a failed round further callers get that error for
// a cooldown (cleared by a membership bump) instead of re-probing a
// known-sick fleet.
func (c *Coordinator) Info(ctx context.Context) (CompendiumInfo, error) {
	shards, gen := c.membership.Snapshot()
	if cached := c.info.Load(); cached != nil && cached.gen == gen {
		return cached.info, nil
	}
	c.infoMu.Lock()
	defer c.infoMu.Unlock()
	if cached := c.info.Load(); cached != nil && cached.gen == gen {
		return cached.info, nil // filled while we waited on the lock
	}
	if c.infoErr != nil && c.infoErrGen == gen && c.cfg.InfoFailureCooldown > 0 &&
		time.Since(c.infoFailedAt) < c.cfg.InfoFailureCooldown {
		return CompendiumInfo{}, c.infoErr
	}
	info, err := c.fetchInfo(ctx, shards)
	if err != nil {
		c.infoFailedAt, c.infoErr, c.infoErrGen = time.Now(), err, gen
		return CompendiumInfo{}, err
	}
	c.infoErr = nil
	c.infoFailedAt = time.Time{}
	c.info.Store(&infoState{gen: gen, info: info})
	return info, nil
}

// fetchOneInfo fetches one shard's InfoPath under the attempt deadline.
func (c *Coordinator) fetchOneInfo(ctx context.Context, shard string) (*Info, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.resolve(shard)+InfoPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard status %d", resp.StatusCode)
	}
	var info Info
	if err := gob.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// fetchInfo runs one probe round over every live shard. Dataset counts
// come from the union of reported dataset names (replicated slices
// overlap); shards predating DatasetIDs fall back to summed counts.
func (c *Coordinator) fetchInfo(ctx context.Context, shards []string) (CompendiumInfo, error) {
	infos := make([]*Info, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si := range shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			infos[si], errs[si] = c.fetchOneInfo(ctx, shards[si])
		}(si)
	}
	wg.Wait()
	out := CompendiumInfo{}
	genes := make(map[string]bool)
	names := make(map[string]bool)
	sum := 0
	allNamed := true
	for si, info := range infos {
		if info == nil {
			return CompendiumInfo{}, fmt.Errorf("%s: %w", shards[si], errs[si])
		}
		if info.Status == StatusDraining {
			// A shard advertising drain demotes itself in replica ordering
			// even if no operator marked it here. Set-only: an "active"
			// status never clears an operator's explicit mark.
			c.SetDraining(shards[si], true)
		}
		sum += info.Datasets
		if info.Datasets > 0 && len(info.DatasetIDs) == 0 {
			allNamed = false
		}
		for _, n := range info.DatasetIDs {
			names[n] = true
		}
		for _, g := range info.GeneIDs {
			genes[g] = true
		}
	}
	if allNamed {
		out.Datasets = len(names)
	} else {
		out.Datasets = sum
	}
	out.Genes = len(genes)
	return out, nil
}

// StatsSnapshot is the scatter section of /api/stats.
type StatsSnapshot struct {
	// Generation is the live-membership fingerprint baked into
	// merged-result cache keys, in hex.
	Generation  string `json:"generation"`
	ShardsTotal int    `json:"shards_total"`
	// Replication is the configured ownership factor R.
	Replication int `json:"replication"`
	// MembershipBumps counts runtime joins and leaves since boot.
	MembershipBumps int64 `json:"membership_bumps"`
	// Groups is the number of ownership groups in the current catalog (0
	// until the first scatter of this generation derives it).
	Groups      int             `json:"groups"`
	Degraded    int64           `json:"degraded"`     // queries merged over less than full coverage
	FullOutages int64           `json:"full_outages"` // scatters in which no group was served
	Shards      []ShardSnapshot `json:"shards"`
}

// ShardSnapshot is one backend's cumulative counters plus its breaker and
// drain state.
type ShardSnapshot struct {
	Addr          string `json:"addr"`
	Requests      int64  `json:"requests"`
	Errors        int64  `json:"errors"`
	Retries       int64  `json:"retries"`
	Hedges        int64  `json:"hedges"`
	Failovers     int64  `json:"failovers"`
	HedgeWins     int64  `json:"hedge_wins"`
	InFlight      int64  `json:"in_flight"`
	MeanLatencyUS int64  `json:"mean_latency_us"`
	MaxLatencyUS  int64  `json:"max_latency_us"`
	// Draining marks a replica demoted to last-resort ordering.
	Draining bool `json:"draining,omitempty"`
	// Breaker is the replica's circuit state (closed / open / half-open;
	// empty when the breaker is disabled), with cumulative trip and
	// skipped-attempt counts.
	Breaker      string `json:"breaker,omitempty"`
	BreakerTrips int64  `json:"breaker_trips,omitempty"`
	BreakerSkips int64  `json:"breaker_skips,omitempty"`
}

// Stats snapshots the scatter counters for the live membership.
func (c *Coordinator) Stats() StatsSnapshot {
	shards, gen := c.membership.Snapshot()
	snap := StatsSnapshot{
		Generation:      fmt.Sprintf("%016x", gen),
		ShardsTotal:     len(shards),
		Replication:     c.cfg.Replication,
		MembershipBumps: c.membership.Bumps(),
		Degraded:        c.degraded.Load(),
		FullOutages:     c.outages.Load(),
	}
	if cat := c.catalog.Load(); cat != nil && cat.gen == gen {
		snap.Groups = len(cat.groups)
	}
	for _, addr := range shards {
		sc := c.counterFor(addr)
		s := ShardSnapshot{
			Addr:         addr,
			Requests:     sc.requests.Load(),
			Errors:       sc.errors.Load(),
			Retries:      sc.retries.Load(),
			Hedges:       sc.hedges.Load(),
			Failovers:    sc.failovers.Load(),
			HedgeWins:    sc.hedgeWins.Load(),
			InFlight:     sc.inflight.Load(),
			MaxLatencyUS: sc.maxUS.Load(),
			Draining:     c.isDraining(addr),
			BreakerSkips: sc.breakerSkips.Load(),
		}
		if c.cfg.BreakerThreshold > 0 {
			s.Breaker, s.BreakerTrips = sc.breaker.snapshot()
		}
		if s.Requests > 0 {
			s.MeanLatencyUS = sc.latencyUS.Load() / s.Requests
		}
		snap.Shards = append(snap.Shards, s)
	}
	return snap
}
