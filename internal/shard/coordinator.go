package shard

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forestview/internal/spell"
)

// ErrAllShardsFailed reports a scatter in which no shard answered: there
// is nothing to merge and nothing to degrade to. The daemon maps it to
// 503 (retryable full outage), distinct from a query error (422).
var ErrAllShardsFailed = errors.New("shard: every shard failed")

// ErrDegradedUnresolved reports a degraded scatter whose *surviving*
// shards measured none of the query genes: the unreachable shards may
// hold them, so the honest answer is "retry later" (503), not the
// single-process "your genes don't exist" query error (422) that the
// same merge outcome means when every shard answered.
var ErrDegradedUnresolved = errors.New("shard: query genes unresolved — unreachable shards may hold them")

// Config assembles a Coordinator.
type Config struct {
	// Shards are the backend base addresses (host:port or full URLs).
	Shards []string
	// Client issues the scatter requests (default: a plain http.Client;
	// deadlines come from per-attempt contexts, not a client timeout).
	Client *http.Client
	// Deadline bounds each shard attempt (default 10s). A shard that
	// cannot answer within it is treated as failed for this query — the
	// merge degrades rather than waiting.
	Deadline time.Duration
	// Retry gives each failed shard one extra attempt with a fresh
	// deadline before the merge degrades around it.
	Retry bool
	// HedgeAfter, when positive, fires a duplicate request to a shard
	// whose first attempt has not answered after this delay, taking
	// whichever returns first. With single-owner slices the hedge lands on
	// the same backend: it covers tail latency (GC pauses, a lost packet,
	// a stalled connection), not host death — that is what Retry and
	// degraded merges are for.
	HedgeAfter time.Duration
}

// Coordinator scatters SPELL queries over shard backends and merges the
// partials with global weight renormalization. It is stateless about
// datasets — ownership is a pure function of the shard set (see Owner) —
// so it boots instantly and never holds expression data. Safe for
// concurrent use.
type Coordinator struct {
	cfg      Config
	client   *http.Client
	gen      uint64
	counters []shardCounters
	degraded atomic.Int64
	outages  atomic.Int64
	info     atomic.Pointer[CompendiumInfo]

	// infoMu serializes info probes (at most one fan-out in flight);
	// infoFailedAt/infoErr remember the last failed round so that, during
	// an outage, /api/stats and page renders get the cached error
	// immediately instead of stacking shard probes behind the deadline.
	infoMu       sync.Mutex
	infoFailedAt time.Time
	infoErr      error
}

// shardCounters is one backend's cumulative scatter accounting.
type shardCounters struct {
	requests  atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	latencyUS atomic.Int64
	maxUS     atomic.Int64
}

func (s *shardCounters) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	if failed {
		s.errors.Add(1)
	}
	us := d.Microseconds()
	s.latencyUS.Add(us)
	for {
		cur := s.maxUS.Load()
		if us <= cur || s.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// NewCoordinator validates the config and prepares the scatter state.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: no shard backends configured")
	}
	normalized := make([]string, len(cfg.Shards))
	seen := make(map[string]bool, len(cfg.Shards))
	for i, s := range cfg.Shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, errors.New("shard: empty shard address")
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		if seen[s] {
			return nil, fmt.Errorf("shard: duplicate shard address %s", s)
		}
		seen[s] = true
		normalized[i] = s
	}
	cfg.Shards = normalized
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{
		cfg:      cfg,
		client:   client,
		gen:      Generation(cfg.Shards),
		counters: make([]shardCounters, len(cfg.Shards)),
	}, nil
}

// Shards returns the normalized backend list.
func (c *Coordinator) Shards() []string {
	return append([]string(nil), c.cfg.Shards...)
}

// Generation fingerprints the shard topology; see the package function.
func (c *Coordinator) Generation() uint64 { return c.gen }

// Meta describes how a scatter went: how many shards answered, and
// whether the merged result is degraded (renormalized over a survivor
// subset instead of the full compendium).
type Meta struct {
	ShardsOK    int  `json:"shards_ok"`
	ShardsTotal int  `json:"shards_total"`
	Degraded    bool `json:"degraded"`
}

// SearchCtx scatters one query over every shard, collects partials under
// the per-shard deadline, and merges with global renormalization. Shard
// failures degrade the result (Meta.Degraded true, weights renormalized
// over the survivors) instead of failing the query; only a full outage —
// no shard answered — returns ErrAllShardsFailed. A canceled caller
// context aborts the scatter with the context error.
func (c *Coordinator) SearchCtx(ctx context.Context, query []string, opt spell.Options) (*spell.Result, Meta, error) {
	meta := Meta{ShardsTotal: len(c.cfg.Shards)}
	query = spell.CanonicalQuery(query)
	if len(query) == 0 {
		return nil, meta, errors.New("spell: empty query")
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(SearchRequest{Query: query}); err != nil {
		return nil, meta, err
	}
	reqBody := body.Bytes()

	partials := make([]*spell.Partial, len(c.cfg.Shards))
	errs := make([]error, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for si := range c.cfg.Shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			t0 := time.Now()
			p, err := c.fetchPartial(ctx, si, reqBody)
			c.counters[si].observe(time.Since(t0), err != nil)
			partials[si], errs[si] = p, err
		}(si)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller hung up or timed out: report that, not a fabricated
		// outage — per-shard errors here are all descendants of it.
		return nil, meta, err
	}

	parts := make([]spell.Partial, 0, len(partials))
	var firstErr error
	for si, p := range partials {
		if p != nil {
			parts = append(parts, *p)
			meta.ShardsOK++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", c.cfg.Shards[si], errs[si])
		}
	}
	if meta.ShardsOK == 0 {
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (first: %v)", ErrAllShardsFailed, firstErr)
	}
	meta.Degraded = meta.ShardsOK < meta.ShardsTotal
	if meta.Degraded {
		c.degraded.Add(1)
	}
	res, err := spell.Merge(parts, opt)
	if err != nil {
		if meta.Degraded && errors.Is(err, spell.ErrNoQueryGenes) {
			// The survivors can't rule the genes in OR out.
			err = fmt.Errorf("%w (%d of %d shards answered: %v)",
				ErrDegradedUnresolved, meta.ShardsOK, meta.ShardsTotal, firstErr)
		}
		return nil, meta, err
	}
	return res, meta, nil
}

type attemptResult struct {
	p   *spell.Partial
	err error
}

// fetchPartial runs the per-shard attempt discipline: a deadline-bounded
// request, an optional hedge fired if the first attempt is slow, and an
// optional single retry once all in-flight attempts have failed.
func (c *Coordinator) fetchPartial(ctx context.Context, si int, reqBody []byte) (*spell.Partial, error) {
	addr := c.cfg.Shards[si]
	resCh := make(chan attemptResult, 2) // buffered: a late loser must not leak its goroutine
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func() {
		actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
		cancels = append(cancels, cancel)
		go func() {
			p, err := c.doSearch(actx, addr, reqBody)
			resCh <- attemptResult{p: p, err: err}
		}()
	}

	launch()
	outstanding := 1
	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var firstErr error
	for outstanding > 0 {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				return r.p, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeC:
			hedgeC = nil
			if ctx.Err() == nil {
				c.counters[si].hedges.Add(1)
				launch()
				outstanding++
			}
		}
	}
	if c.cfg.Retry && ctx.Err() == nil {
		c.counters[si].retries.Add(1)
		actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
		defer cancel()
		p, err := c.doSearch(actx, addr, reqBody)
		if err == nil {
			return p, nil
		}
		firstErr = err
	}
	return nil, firstErr
}

// doSearch performs one HTTP attempt against a shard's SearchPath.
func (c *Coordinator) doSearch(ctx context.Context, addr string, reqBody []byte) (*spell.Partial, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+SearchPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var p spell.Partial
	if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decoding partial: %w", err)
	}
	return &p, nil
}

// CompendiumInfo aggregates what the shard set holds.
type CompendiumInfo struct {
	Datasets int
	Genes    int // distinct gene IDs across the union of slices
}

// infoFailureCooldown bounds how often a failing info probe is retried:
// during an outage, at most one caller per window pays the probe deadline
// while everyone else (stats pollers, page renders) gets the cached error
// immediately.
const infoFailureCooldown = 15 * time.Second

// Info returns the union compendium description, fetching each shard's
// InfoPath on the first call and caching a fully successful answer (the
// slice composition of a fixed topology never changes at runtime). While
// any shard is unreachable the info stays uncached and the error is
// returned, so callers degrade to "unknown" rather than a wrong total;
// probes are serialized, and after a failed round further callers get
// that error for a cooldown instead of re-probing a known-sick fleet.
func (c *Coordinator) Info(ctx context.Context) (CompendiumInfo, error) {
	if cached := c.info.Load(); cached != nil {
		return *cached, nil
	}
	c.infoMu.Lock()
	defer c.infoMu.Unlock()
	if cached := c.info.Load(); cached != nil {
		return *cached, nil // filled while we waited on the lock
	}
	if c.infoErr != nil && time.Since(c.infoFailedAt) < infoFailureCooldown {
		return CompendiumInfo{}, c.infoErr
	}
	info, err := c.fetchInfo(ctx)
	if err != nil {
		c.infoFailedAt, c.infoErr = time.Now(), err
		return CompendiumInfo{}, err
	}
	c.infoErr = nil
	c.info.Store(&info)
	return info, nil
}

// fetchInfo runs one probe round over every shard.
func (c *Coordinator) fetchInfo(ctx context.Context) (CompendiumInfo, error) {
	infos := make([]*Info, len(c.cfg.Shards))
	errs := make([]error, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for si := range c.cfg.Shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
			defer cancel()
			req, err := http.NewRequestWithContext(actx, http.MethodGet, c.cfg.Shards[si]+InfoPath, nil)
			if err != nil {
				errs[si] = err
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				errs[si] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[si] = fmt.Errorf("shard status %d", resp.StatusCode)
				return
			}
			var info Info
			if err := gob.NewDecoder(resp.Body).Decode(&info); err != nil {
				errs[si] = err
				return
			}
			infos[si] = &info
		}(si)
	}
	wg.Wait()
	out := CompendiumInfo{}
	genes := make(map[string]bool)
	for si, info := range infos {
		if info == nil {
			return CompendiumInfo{}, fmt.Errorf("%s: %w", c.cfg.Shards[si], errs[si])
		}
		out.Datasets += info.Datasets
		for _, g := range info.GeneIDs {
			genes[g] = true
		}
	}
	out.Genes = len(genes)
	return out, nil
}

// StatsSnapshot is the scatter section of /api/stats.
type StatsSnapshot struct {
	// Generation is the shard-set fingerprint baked into merged-result
	// cache keys, in hex.
	Generation  string          `json:"generation"`
	ShardsTotal int             `json:"shards_total"`
	Degraded    int64           `json:"degraded"`     // queries merged over a survivor subset
	FullOutages int64           `json:"full_outages"` // scatters in which no shard answered
	Shards      []ShardSnapshot `json:"shards"`
}

// ShardSnapshot is one backend's cumulative counters.
type ShardSnapshot struct {
	Addr          string `json:"addr"`
	Requests      int64  `json:"requests"`
	Errors        int64  `json:"errors"`
	Retries       int64  `json:"retries"`
	Hedges        int64  `json:"hedges"`
	MeanLatencyUS int64  `json:"mean_latency_us"`
	MaxLatencyUS  int64  `json:"max_latency_us"`
}

// Stats snapshots the scatter counters.
func (c *Coordinator) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Generation:  fmt.Sprintf("%016x", c.gen),
		ShardsTotal: len(c.cfg.Shards),
		Degraded:    c.degraded.Load(),
		FullOutages: c.outages.Load(),
	}
	for si := range c.counters {
		sc := &c.counters[si]
		s := ShardSnapshot{
			Addr:         c.cfg.Shards[si],
			Requests:     sc.requests.Load(),
			Errors:       sc.errors.Load(),
			Retries:      sc.retries.Load(),
			Hedges:       sc.hedges.Load(),
			MaxLatencyUS: sc.maxUS.Load(),
		}
		if s.Requests > 0 {
			s.MeanLatencyUS = sc.latencyUS.Load() / s.Requests
		}
		snap.Shards = append(snap.Shards, s)
	}
	return snap
}
