package shard

import (
	"context"
	"time"
)

// Backoff shapes a jittered exponential delay schedule. It is shared by
// everything in the scatter path that must wait before trying again: the
// per-group last-resort retry, scavenge attempts after a failure, and the
// circuit breaker's open window before a half-open probe. The zero value
// is invalid; use the package defaults or fill every field.
type Backoff struct {
	// Base is the attempt-0 delay before jitter.
	Base time.Duration
	// Max caps the grown delay before jitter.
	Max time.Duration
	// Factor is the per-attempt growth multiplier (≥ 1).
	Factor float64
}

// Default schedules. Retry delays sit under typical attempt deadlines so a
// backed-off retry still fits the same scatter; breaker windows grow into
// seconds because they gate a *shard*, not one query.
var (
	defaultRetryBackoff   = Backoff{Base: 50 * time.Millisecond, Max: time.Second, Factor: 2}
	defaultBreakerBackoff = Backoff{Base: 200 * time.Millisecond, Max: 15 * time.Second, Factor: 2}
)

// withDefaults fills zero fields from d, so a Config can override just
// Base (or nothing at all).
func (b Backoff) withDefaults(d Backoff) Backoff {
	if b.Base <= 0 {
		b.Base = d.Base
	}
	if b.Max <= 0 {
		b.Max = d.Max
	}
	if b.Factor < 1 {
		b.Factor = d.Factor
	}
	return b
}

// Delay returns the attempt-th delay: min(Max, Base·Factor^attempt) scaled
// by a jitter in [0.5, 1.5) drawn from rnd (a func returning [0, 1)). The
// full-range jitter decorrelates retry storms across groups and
// coordinators; rnd is a parameter, not package state, so schedules are
// reproducible in tests. A nil rnd skips jitter.
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rnd != nil {
		d *= 0.5 + rnd()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// sleepCtx waits for d or the context, whichever ends first, and reports
// whether the full delay elapsed (false: the caller should stop retrying).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
