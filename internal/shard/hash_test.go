package shard

import (
	"fmt"
	"testing"
)

func TestOwnerPartition(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1"}
	var ids []string
	for i := 0; i < 300; i++ {
		ids = append(ids, fmt.Sprintf("dataset-%03d", i))
	}
	// Every dataset is owned by exactly one shard, and the per-shard
	// OwnedIndexes views reassemble the full list without overlap.
	seen := make(map[int]string)
	for _, s := range shards {
		for _, idx := range OwnedIndexes(ids, shards, s) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("dataset %d owned by both %s and %s", idx, prev, s)
			}
			seen[idx] = s
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("only %d of %d datasets owned", len(seen), len(ids))
	}
	// Rough balance: no shard should be empty, none should hoard.
	counts := make(map[string]int)
	for _, s := range seen {
		counts[s]++
	}
	for s, n := range counts {
		if n < len(ids)/10 || n > len(ids)*2/3 {
			t.Fatalf("shard %s owns %d of %d — hashing badly unbalanced", s, n, len(ids))
		}
	}
}

func TestOwnerOrderInsensitiveAndStable(t *testing.T) {
	a := []string{"http://a:1", "http://b:1", "http://c:1"}
	b := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("ds-%d", i)
		if Owner(id, a) != Owner(id, b) {
			t.Fatalf("ownership of %s depends on shard list order", id)
		}
		if Owner(id, a) != Owner(id, a) {
			t.Fatalf("ownership of %s unstable", id)
		}
	}
}

// TestOwnerMinimalDisruption pins the consistent-hashing property that
// justifies rendezvous: removing one shard only reassigns the datasets it
// owned — every other assignment is untouched.
func TestOwnerMinimalDisruption(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	without := []string{"http://a:1", "http://b:1", "http://d:1"}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("ds-%d", i)
		before := Owner(id, full)
		after := Owner(id, without)
		if before != "http://c:1" && after != before {
			t.Fatalf("dataset %s moved %s -> %s though its owner survived", id, before, after)
		}
		if before == "http://c:1" && after == "http://c:1" {
			t.Fatalf("dataset %s still owned by removed shard", id)
		}
	}
}

func TestGeneration(t *testing.T) {
	a := Generation([]string{"x", "y"})
	if a != Generation([]string{"y", "x"}) {
		t.Fatal("generation depends on shard order")
	}
	if a == Generation([]string{"x", "z"}) {
		t.Fatal("different topologies share a generation")
	}
}
