package shard

import (
	"fmt"
	"testing"
)

func TestOwnerPartition(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1"}
	var ids []string
	for i := 0; i < 300; i++ {
		ids = append(ids, fmt.Sprintf("dataset-%03d", i))
	}
	// Every dataset is owned by exactly one shard, and the per-shard
	// OwnedIndexes views reassemble the full list without overlap.
	seen := make(map[int]string)
	for _, s := range shards {
		for _, idx := range OwnedIndexes(ids, shards, s) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("dataset %d owned by both %s and %s", idx, prev, s)
			}
			seen[idx] = s
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("only %d of %d datasets owned", len(seen), len(ids))
	}
	// Rough balance: no shard should be empty, none should hoard.
	counts := make(map[string]int)
	for _, s := range seen {
		counts[s]++
	}
	for s, n := range counts {
		if n < len(ids)/10 || n > len(ids)*2/3 {
			t.Fatalf("shard %s owns %d of %d — hashing badly unbalanced", s, n, len(ids))
		}
	}
}

func TestOwnerOrderInsensitiveAndStable(t *testing.T) {
	a := []string{"http://a:1", "http://b:1", "http://c:1"}
	b := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("ds-%d", i)
		if Owner(id, a) != Owner(id, b) {
			t.Fatalf("ownership of %s depends on shard list order", id)
		}
		if Owner(id, a) != Owner(id, a) {
			t.Fatalf("ownership of %s unstable", id)
		}
	}
}

// TestOwnerMinimalDisruption pins the consistent-hashing property that
// justifies rendezvous: removing one shard only reassigns the datasets it
// owned — every other assignment is untouched.
func TestOwnerMinimalDisruption(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	without := []string{"http://a:1", "http://b:1", "http://d:1"}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("ds-%d", i)
		before := Owner(id, full)
		after := Owner(id, without)
		if before != "http://c:1" && after != before {
			t.Fatalf("dataset %s moved %s -> %s though its owner survived", id, before, after)
		}
		if before == "http://c:1" && after == "http://c:1" {
			t.Fatalf("dataset %s still owned by removed shard", id)
		}
	}
}

func TestGeneration(t *testing.T) {
	a := Generation([]string{"x", "y"})
	if a != Generation([]string{"y", "x"}) {
		t.Fatal("generation depends on shard order")
	}
	if a == Generation([]string{"x", "z"}) {
		t.Fatal("different topologies share a generation")
	}
}

// TestOwnersTopR pins the replicated-ownership contract: every dataset
// has exactly min(R, len(shards)) owners, the replica ranks are distinct
// shards, rank 0 agrees with single ownership, and raising R only appends
// replicas (the rank-k owner is R-invariant).
func TestOwnersTopR(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("ds-%d", i)
		for r := 1; r <= len(shards)+1; r++ {
			owners := Owners(id, shards, r)
			wantLen := r
			if wantLen > len(shards) {
				wantLen = len(shards)
			}
			if len(owners) != wantLen {
				t.Fatalf("Owners(%s, r=%d) = %d owners, want %d", id, r, len(owners), wantLen)
			}
			seen := make(map[string]bool)
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("Owners(%s, r=%d) repeats %s", id, r, o)
				}
				seen[o] = true
			}
			if owners[0] != Owner(id, shards) {
				t.Fatalf("Owners(%s)[0] = %s, Owner = %s", id, owners[0], Owner(id, shards))
			}
			if r > 1 {
				prev := Owners(id, shards, r-1)
				for k := range prev {
					if owners[k] != prev[k] {
						t.Fatalf("rank-%d owner of %s changed between R=%d and R=%d", k, id, r-1, r)
					}
				}
			}
		}
	}
}

// TestOwnedIndexesRCoverage: under replication factor R every dataset
// appears in exactly R shards' owned slices, so any R-1 shard deaths lose
// nothing.
func TestOwnedIndexesRCoverage(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	var ids []string
	for i := 0; i < 300; i++ {
		ids = append(ids, fmt.Sprintf("dataset-%03d", i))
	}
	const r = 2
	copies := make(map[int]int)
	for _, s := range shards {
		for _, idx := range OwnedIndexesR(ids, shards, s, r) {
			copies[idx]++
		}
	}
	if len(copies) != len(ids) {
		t.Fatalf("only %d of %d datasets have any owner", len(copies), len(ids))
	}
	for idx, n := range copies {
		if n != r {
			t.Fatalf("dataset %d held by %d shards, want %d", idx, n, r)
		}
	}
}

// TestOwnersPerRankDisruption: a membership change moves only ~1/N of the
// (dataset, rank) assignments at each rank — the minimal-disruption
// property per replica rank, not just for the primary.
func TestOwnersPerRankDisruption(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	without := []string{"http://a:1", "http://b:1", "http://d:1", "http://e:1"}
	const n = 1000
	const r = 2
	moved := make([]int, r)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ds-%d", i)
		before := Owners(id, full, r)
		after := Owners(id, without, r)
		for k := 0; k < r; k++ {
			if before[k] != after[k] {
				moved[k]++
			}
		}
	}
	// Removing 1 of 5 shards must reassign about 1/5 of rank-0 slots (the
	// removed shard's share). Rank 1 moves slightly more (its own 1/5 plus
	// promotions filling rank-0 vacancies), still nowhere near a reshuffle.
	// Generous bounds: catching a full reshuffle (~80% moved), not hash
	// variance.
	for k, m := range moved {
		frac := float64(m) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("rank %d: %.1f%% of assignments moved on one departure — expected ~20%%, got a %s",
				k, 100*frac, map[bool]string{true: "reshuffle", false: "suspiciously static hash"}[frac > 0.45])
		}
	}
}

// TestGroupIndexesPartition: ownership groups (distinct owner tuples)
// partition the dataset list — both coordinator and shard derive them from
// the same pure function, so together they cover everything exactly once.
func TestGroupIndexesPartition(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1"}
	var ids []string
	for i := 0; i < 120; i++ {
		ids = append(ids, fmt.Sprintf("dataset-%03d", i))
	}
	const r = 2
	tuples := make(map[string][]string)
	for _, id := range ids {
		owners := Owners(id, shards, r)
		key := fmt.Sprintf("%v", owners)
		tuples[key] = owners
	}
	seen := make(map[int]string)
	for key, owners := range tuples {
		for _, idx := range GroupIndexes(ids, shards, r, owners) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("dataset %d in groups %s and %s", idx, prev, key)
			}
			seen[idx] = key
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("groups cover %d of %d datasets", len(seen), len(ids))
	}
}
