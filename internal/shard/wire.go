package shard

// The shard wire protocol: Go-to-Go internal RPC carried as gob over
// HTTP POST. Gob over JSON because the payloads are float-heavy and
// NaN-bearing — a dataset that measures fewer than two query genes has NaN
// coherence, which JSON cannot represent at all (the daemon's public API
// papers over it with a custom marshaler) — and gob round-trips every
// float64 bit-exactly, which the golden-parity guarantee of the merged
// path leans on. The endpoints are internal (shard daemons are not meant
// to face the public), so Go-only encoding is not a constraint.
//
// Paths are versioned: every endpoint lives under /api/shard/v1/. A
// coordinator only ever speaks one protocol version; a shard from another
// version 404s these paths, which the scatter's failover treats like any
// other per-shard failure — mixed-version fleets degrade, they don't get
// garbled merges.

// SearchPath is the shard-role endpoint serving spell partials.
const SearchPath = "/api/shard/v1/search"

// InfoPath is the shard-role endpoint describing the shard's slice.
const InfoPath = "/api/shard/v1/info"

// EnrichPath is the shard-role endpoint serving golem partial counts: the
// per-term tallies of one background slice (see golem.PartialAnalyze).
const EnrichPath = "/api/shard/v1/enrich"

// EnrichCatalogPath serves the shard enricher's term catalog
// (golem.TermCatalog) — the static term list the coordinator merges
// partial counts against, fetched once per membership generation.
const EnrichCatalogPath = "/api/shard/v1/enrich/catalog"

// DrainPath is the token-gated shard-role admin endpoint that flips the
// shard into the draining state: it finishes in-flight partials, pushes
// its warm cache entries to the successor replicas (HandoffPath), acks,
// and signals the daemon to exit.
const DrainPath = "/api/shard/v1/admin/drain"

// HandoffPath is the token-gated shard-role endpoint receiving a draining
// peer's warm partial-result entries (HandoffRequest, gob). Pushes are
// generation-guarded: a receiver whose membership view differs refuses
// the whole batch as stale.
const HandoffPath = "/api/shard/v1/handoff"

// ShardFleetPath is the token-gated shard-role admin endpoint that
// replaces the shard's membership view wholesale (JSON {"shards": [...],
// "replication": N}): the shard re-derives its owned top-R slice from the
// new list, loads any newly owned datasets, and swaps engines atomically.
// GET returns the current view.
const ShardFleetPath = "/api/shard/v1/admin/fleet"

// ContentType labels gob-encoded shard protocol bodies.
const ContentType = "application/x-gob"

// Capability names a shard-role feature advertised in Info.Capabilities.
const (
	// CapabilitySearch: the shard serves SearchPath.
	CapabilitySearch = "search"
	// CapabilityEnrich: the shard booted with an ontology and serves
	// EnrichPath/EnrichCatalogPath.
	CapabilityEnrich = "enrich"
)

// SearchRequest asks a shard for its partial of one query. Result-shaping
// options stay coordinator-side (spell.Merge applies them); the shard only
// needs the gene list and the ownership group, so identical queries hit
// the shard's partial cache regardless of which coordinator options rode
// in.
type SearchRequest struct {
	Query []string

	// Shards, Replication and Owners scope the request to one ownership
	// group of the replicated fleet (DESIGN.md §5): the shard recomputes
	// GroupIndexes(allDatasetIDs, Shards, Replication, Owners) and serves
	// only the datasets it holds from that group, so the coordinator can
	// ask different replicas for different groups without any dataset being
	// claimed twice in one merge. Empty Owners is the legacy whole-slice
	// request: the shard serves everything it holds (single-owner fleets
	// and direct probes).
	Shards      []string
	Replication int
	Owners      []string
}

// EnrichRequest asks a shard for one background slice's enrichment tallies.
// Analysis options (MinSelected, MaxPValue) stay coordinator-side —
// golem.MergeCounts applies them to the summed globals — so identical
// selections hit the shard's partial cache regardless of options.
//
// The slice is named indirectly, by ownership group: the shard re-derives
// Groups(bootCatalog, Shards, Replication), finds Owners in it, and serves
// background slice gi of G where gi is the group's position and G the group
// count — the same pure-function contract GroupIndexes gives search.
// Unlike search the slice does not depend on which datasets the shard
// holds, so *any* shard with an enricher can serve *any* slice: failover
// and the scavenge pass work across the whole fleet, and a single
// ontology-less shard costs coverage only if nobody else is reachable.
// Empty Owners is the direct probe: the whole universe as slice 0 of 1.
type EnrichRequest struct {
	Selection []string

	Shards      []string
	Replication int
	Owners      []string
}

// Info describes a shard's slice of the compendium, served at InfoPath.
type Info struct {
	// Datasets is the number of datasets in the shard's slice.
	Datasets int
	// GeneIDs lists the distinct gene IDs of the slice in stable order.
	// The coordinator unions these across shards to report compendium
	// totals (shards overlap in genes, so counts cannot simply be summed).
	GeneIDs []string
	// DatasetIDs lists the global dataset names the shard holds. Under
	// replication slices overlap, so the coordinator counts the union of
	// these rather than summing Datasets.
	DatasetIDs []string
	// AllDatasetIDs is the full compendium dataset list the shard booted
	// with, in global order. The coordinator fetches it from any one live
	// shard as the catalog it derives ownership groups from — the
	// coordinator itself stays dataset-stateless across restarts and
	// membership changes.
	AllDatasetIDs []string
	// Capabilities lists what the shard serves (CapabilitySearch,
	// CapabilityEnrich). A shard without an ontology omits "enrich"; the
	// coordinator discloses the gap instead of discovering it by 404.
	Capabilities []string
	// Status is the shard's lifecycle state (StatusActive or
	// StatusDraining; empty from pre-drain shards means active). A
	// coordinator that sees StatusDraining demotes the shard to
	// last-resort replica ordering.
	Status string
}

// Shard lifecycle states advertised in Info.Status.
const (
	StatusActive   = "active"
	StatusDraining = "draining"
)

// HandoffRequest is a draining shard's warm-cache push to one successor:
// the post-drain topology the entries are keyed under, its generation
// fingerprint (the receiver refuses the batch if its own membership view
// disagrees — a stale push must never seed a cache), and the entries.
type HandoffRequest struct {
	// From is the draining shard's identity, for logs and stats.
	From string
	// Shards is the post-drain fleet list; Generation must equal
	// Generation(Shards) and the receiver's live view.
	Shards      []string
	Replication int
	Generation  uint64
	Entries     []HandoffEntry
}

// HandoffEntry is one warm partial: a hot query (or enrichment selection)
// scoped to one ownership group of the post-drain topology. Body is the
// gob partial exactly as the receiver would serve it; a nil Body (or one
// that fails the receiver's validation) makes the receiver recompute the
// partial locally instead — replay warming, correct by construction.
type HandoffEntry struct {
	// Kind is CapabilitySearch or CapabilityEnrich.
	Kind string
	// Query is the canonical gene list (search) or selection (enrich).
	Query []string
	// Owners is the target group's ordered replica tuple under Shards.
	Owners []string
	// Body is the gob-encoded partial (*spell.Partial or
	// *golem.PartialCounts); nil requests a local recompute.
	Body []byte
}

// HandoffResponse reports what the receiver did with a push.
type HandoffResponse struct {
	Accepted     int // entries inserted into the cache verbatim
	Recomputed   int // entries warmed by local recompute instead
	RefusedStale int // entries refused by the generation guard
	Skipped      int // entries this shard cannot serve (no enricher, bad entry)
}
