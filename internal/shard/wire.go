package shard

// The shard wire protocol: Go-to-Go internal RPC carried as gob over
// HTTP POST. Gob over JSON because the payloads are float-heavy and
// NaN-bearing — a dataset that measures fewer than two query genes has NaN
// coherence, which JSON cannot represent at all (the daemon's public API
// papers over it with a custom marshaler) — and gob round-trips every
// float64 bit-exactly, which the golden-parity guarantee of the merged
// path leans on. The endpoints are internal (shard daemons are not meant
// to face the public), so Go-only encoding is not a constraint.

// SearchPath is the shard-role endpoint serving spell partials.
const SearchPath = "/api/shard/search"

// InfoPath is the shard-role endpoint describing the shard's slice.
const InfoPath = "/api/shard/info"

// ContentType labels gob-encoded shard protocol bodies.
const ContentType = "application/x-gob"

// SearchRequest asks a shard for its partial of one query. Result-shaping
// options stay coordinator-side (spell.Merge applies them); the shard only
// needs the gene list and the ownership group, so identical queries hit
// the shard's partial cache regardless of which coordinator options rode
// in.
type SearchRequest struct {
	Query []string

	// Shards, Replication and Owners scope the request to one ownership
	// group of the replicated fleet (DESIGN.md §5): the shard recomputes
	// GroupIndexes(allDatasetIDs, Shards, Replication, Owners) and serves
	// only the datasets it holds from that group, so the coordinator can
	// ask different replicas for different groups without any dataset being
	// claimed twice in one merge. Empty Owners is the legacy whole-slice
	// request: the shard serves everything it holds (single-owner fleets
	// and direct probes).
	Shards      []string
	Replication int
	Owners      []string
}

// Info describes a shard's slice of the compendium, served at InfoPath.
type Info struct {
	// Datasets is the number of datasets in the shard's slice.
	Datasets int
	// GeneIDs lists the distinct gene IDs of the slice in stable order.
	// The coordinator unions these across shards to report compendium
	// totals (shards overlap in genes, so counts cannot simply be summed).
	GeneIDs []string
	// DatasetIDs lists the global dataset names the shard holds. Under
	// replication slices overlap, so the coordinator counts the union of
	// these rather than summing Datasets.
	DatasetIDs []string
	// AllDatasetIDs is the full compendium dataset list the shard booted
	// with, in global order. The coordinator fetches it from any one live
	// shard as the catalog it derives ownership groups from — the
	// coordinator itself stays dataset-stateless across restarts and
	// membership changes.
	AllDatasetIDs []string
}
