package shard

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"forestview/internal/golem"
	"forestview/internal/spell"
)

// The distributed-enrichment scatter. Enrichment rides the same
// ownership-group machinery as search — one request per group, p2c replica
// selection, failover, hedging, scavenge — but with one structural
// difference: a group names a background *slice* (slice gi of G, where gi
// is the group's position in the Groups derivation), and slices don't
// depend on which datasets a shard holds, so any shard with an enricher
// can serve any slice. Failover and the scavenge pass therefore rescue
// coverage across the whole fleet, and a single ontology-less shard costs
// nothing while any capable shard is reachable.

// ErrNoEnrichment reports a fleet in which no reachable shard offers
// enrichment (no shard booted with an ontology, or every capable shard is
// down and the rest answered "unsupported"). The daemon maps it to the
// same 503 a single-process daemon without an ontology returns.
var ErrNoEnrichment = errors.New("shard: no reachable shard offers enrichment")

// errEnrichUnsupported marks a shard that answers HTTP but does not serve
// the enrichment endpoints — no ontology, or an older protocol version.
var errEnrichUnsupported = errors.New("shard does not serve enrichment")

// enrichCatalogState pairs a fetched term catalog with the membership
// generation it was fetched under.
type enrichCatalogState struct {
	gen uint64
	cat *golem.TermCatalog
}

// EnrichResult is the merged outcome of an enrichment scatter.
type EnrichResult struct {
	// Results is the exact merged analysis (bit-identical to a
	// single-process Analyze when no group was lost).
	Results []golem.Enrichment
	// Background is the merged universe size: the full N on a clean
	// scatter, the covered total on a degraded one.
	Background int
	// InBackground maps each canonicalized selection gene to whether the
	// full universe knows it, taken from the partials' disclosure — the
	// coordinator needs no local enricher to report what was tested vs
	// ignored.
	InBackground map[string]bool
}

// EnrichCtx scatters one enrichment selection over the fleet's ownership
// groups: group gi is asked for background slice gi of G, served by one of
// its R replicas with failover/hedging/scavenge exactly like SearchCtx.
// The slice tallies merge through golem.MergeCounts, so the result is
// exact, not approximate. Degraded means some slice was unreachable — the
// analysis is then over the covered background only. A selection none of
// the *reachable* slices hold returns ErrDegradedUnresolved when the
// universe is known to contain it, golem.ErrNoSelection when it does not.
func (c *Coordinator) EnrichCtx(ctx context.Context, selection []string, opt golem.Options) (*EnrichResult, Meta, error) {
	shards, gen := c.membership.Snapshot()
	r := c.replicationFor(len(shards))
	meta := Meta{ShardsTotal: len(shards), Replication: r}
	sel := spell.CanonicalQuery(selection)
	if len(sel) == 0 {
		return nil, meta, errors.New("golem: empty selection")
	}
	cat, err := c.catalogFor(ctx, shards, gen)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, meta, cerr
		}
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (catalog: %v)", ErrAllShardsFailed, err)
	}
	ecat, err := c.enrichCatalogFor(ctx, shards, gen)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, meta, cerr
		}
		if errors.Is(err, ErrNoEnrichment) {
			return nil, meta, err
		}
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (enrich catalog: %v)", ErrAllShardsFailed, err)
	}
	meta.GroupsTotal = len(cat.groups)

	bodies := make([][]byte, len(cat.groups))
	for gi, g := range cat.groups {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(EnrichRequest{
			Selection:   sel,
			Shards:      shards,
			Replication: r,
			Owners:      g.owners,
		}); err != nil {
			return nil, meta, err
		}
		bodies[gi] = body.Bytes()
	}

	results := make([]groupResult, len(cat.groups))
	var wg sync.WaitGroup
	for gi := range cat.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			results[gi] = c.fetchGroup(ctx, shards, cat.groups[gi], 1,
				func(actx context.Context, shard string) (any, int, error) {
					p, err := c.doEnrich(actx, shard, bodies[gi])
					if err != nil {
						return nil, 0, err
					}
					// A partial from a differently-built enricher or a shard
					// that derived a different partition must fail over, not
					// merge: exactness beats availability here.
					if p.Fingerprint != ecat.Fingerprint {
						return nil, 0, fmt.Errorf("enricher fingerprint %016x, catalog has %016x",
							p.Fingerprint, ecat.Fingerprint)
					}
					if p.Slices != len(cat.groups) || p.Slice != gi {
						return nil, 0, fmt.Errorf("shard derived slice %d/%d, coordinator expects %d/%d",
							p.Slice, p.Slices, gi, len(cat.groups))
					}
					return p, 0, nil
				})
		}(gi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, meta, err
	}

	parts := make([]*golem.PartialCounts, 0, len(results))
	contributors := make(map[string]bool)
	var firstErr error
	for gi, gr := range results {
		if gr.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("group %v: %w", cat.groups[gi].owners, gr.err)
		}
		if gr.payload == nil {
			continue
		}
		meta.GroupsOK++
		parts = append(parts, gr.payload.(*golem.PartialCounts))
		contributors[gr.shard] = true
	}
	meta.ShardsOK = len(contributors)
	if len(parts) == 0 {
		c.outages.Add(1)
		return nil, meta, fmt.Errorf("%w (first: %v)", ErrAllShardsFailed, firstErr)
	}
	meta.Degraded = meta.GroupsOK < meta.GroupsTotal
	if meta.Degraded {
		c.degraded.Add(1)
	}
	merged, err := golem.MergeCounts(ecat, parts, opt)
	if err != nil {
		if errors.Is(err, golem.ErrNoSelection) && meta.Degraded && golem.SelectionKnown(parts) {
			// The reachable slices hold none of the genes but the universe
			// does: the unreachable slices may carry them, so the honest
			// answer is "retry later", not "bad selection".
			err = fmt.Errorf("%w (%d of %d groups served: %v)",
				ErrDegradedUnresolved, meta.GroupsOK, meta.GroupsTotal, firstErr)
		}
		return nil, meta, err
	}
	res := &EnrichResult{Results: merged, InBackground: make(map[string]bool, len(sel))}
	for _, p := range parts {
		res.Background += p.BackgroundSize
	}
	// Every partial discloses full-universe membership identically; any one
	// serves.
	for i, ok := range parts[0].InBackground {
		res.InBackground[sel[i]] = ok
	}
	return res, meta, nil
}

// doEnrich performs one HTTP attempt against a shard's EnrichPath.
func (c *Coordinator) doEnrich(ctx context.Context, shard string, reqBody []byte) (*golem.PartialCounts, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.resolve(shard)+EnrichPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errEnrichUnsupported
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var p golem.PartialCounts
	if err := gob.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decoding partial counts: %w", err)
	}
	return &p, nil
}

// enrichCatalogFor returns the fleet's term catalog for the given
// membership snapshot, fetching it from any capable shard on the first
// enrichment of a generation.
func (c *Coordinator) enrichCatalogFor(ctx context.Context, shards []string, gen uint64) (*golem.TermCatalog, error) {
	if st := c.ecat.Load(); st != nil && st.gen == gen {
		return st.cat, nil
	}
	c.ecatMu.Lock()
	defer c.ecatMu.Unlock()
	if st := c.ecat.Load(); st != nil && st.gen == gen {
		return st.cat, nil
	}
	cat, err := c.fetchAnyEnrichCatalog(ctx, shards)
	if err != nil {
		return nil, err
	}
	c.ecat.Store(&enrichCatalogState{gen: gen, cat: cat})
	return cat, nil
}

// fetchAnyEnrichCatalog asks every live shard for its term catalog
// concurrently and takes the first complete answer. A fleet in which every
// *reachable* shard answers "unsupported" is ErrNoEnrichment (not an
// outage): nobody will ever serve this until a capable shard joins.
func (c *Coordinator) fetchAnyEnrichCatalog(ctx context.Context, shards []string) (*golem.TermCatalog, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fetch struct {
		cat *golem.TermCatalog
		err error
	}
	ch := make(chan fetch, len(shards))
	for _, s := range shards {
		go func(s string) {
			cat, err := c.fetchOneEnrichCatalog(fctx, s)
			if err != nil {
				ch <- fetch{err: fmt.Errorf("%s: %w", s, err)}
				return
			}
			ch <- fetch{cat: cat}
		}(s)
	}
	var firstErr error
	unsupported := 0
	for range shards {
		f := <-ch
		if f.err == nil {
			return f.cat, nil
		}
		if errors.Is(f.err, errEnrichUnsupported) {
			unsupported++
		} else if firstErr == nil {
			firstErr = f.err
		}
	}
	if unsupported == len(shards) {
		return nil, ErrNoEnrichment
	}
	return nil, firstErr
}

// fetchOneEnrichCatalog fetches one shard's EnrichCatalogPath under the
// attempt deadline.
func (c *Coordinator) fetchOneEnrichCatalog(ctx context.Context, shard string) (*golem.TermCatalog, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.resolve(shard)+EnrichCatalogPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errEnrichUnsupported
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard status %d", resp.StatusCode)
	}
	var cat golem.TermCatalog
	if err := gob.NewDecoder(resp.Body).Decode(&cat); err != nil {
		return nil, err
	}
	if len(cat.Terms) == 0 {
		return nil, errors.New("shard reported an empty term catalog")
	}
	return &cat, nil
}
