package shard

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// testShard is one in-process shard backend: an engine over its owned
// slice of the compendium with global-index remapping and the ownership
// group protocol, plus a per-request behavior hook for failure injection.
type testShard struct {
	engine *spell.Engine
	global []int       // local index -> global index
	g2l    map[int]int // global index -> local index
	allIDs []string    // the full boot catalog, global order
	// behave, when non-nil, may hijack a search request before the real
	// handler runs; return true when it wrote the response.
	behave func(n int64, w http.ResponseWriter, r *http.Request) bool
	calls  atomic.Int64

	// enr, when non-nil, makes the shard enrichment-capable (start
	// registers the enrich endpoints); enrichBehave may hijack a decoded
	// enrich request, returning true when it wrote the response.
	enr          *golem.Enricher
	enrichBehave func(w http.ResponseWriter, req *EnrichRequest) bool
}

func (s *testShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := s.calls.Add(1)
	if s.behave != nil && s.behave(n, w, r) {
		return
	}
	var req SearchRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var subset []int
	if len(req.Owners) > 0 {
		subset = []int{} // non-nil: an empty group intersection is an empty partial
		for _, gi := range GroupIndexes(s.allIDs, req.Shards, req.Replication, req.Owners) {
			if li, ok := s.g2l[gi]; ok {
				subset = append(subset, li)
			}
		}
	}
	p, err := s.engine.PartialSearchSubsetCtx(r.Context(), req.Query, subset, spell.Options{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	for i := range p.Datasets {
		p.Datasets[i].Index = s.global[p.Datasets[i].Index]
	}
	w.Header().Set("Content-Type", ContentType)
	_ = gob.NewEncoder(w).Encode(p)
}

// infoHandler serves the shard's InfoPath: held slice plus boot catalog.
func (s *testShard) infoHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		held := make([]string, len(s.global))
		for i, gi := range s.global {
			held[i] = s.allIDs[gi]
		}
		w.Header().Set("Content-Type", ContentType)
		_ = gob.NewEncoder(w).Encode(Info{
			Datasets:      s.engine.NumDatasets(),
			GeneIDs:       s.engine.GeneIDs(),
			DatasetIDs:    held,
			AllDatasetIDs: s.allIDs,
		})
	}
}

type scatterFixture struct {
	dss        []*microarray.Dataset
	ids        []string // dataset names, global order
	identities []string // logical shard identities (the rendezvous participants)
	full       *spell.Engine
	shards     []*testShard
	query      []string
}

// newScatterFixtureR places a synthetic compendium over nShards
// in-process backends by top-r rendezvous ownership — the same placement
// the daemons derive from -shards/-self — using logical identities
// resolved to httptest listeners at start.
func newScatterFixtureR(t testing.TB, nShards, repl int) *scatterFixture {
	return newScatterFixtureN(t, nShards, repl, 8)
}

// newScatterFixtureN is newScatterFixtureR with a chosen compendium size —
// wider fleets need more datasets for every shard to own some.
func newScatterFixtureN(t testing.TB, nShards, repl, nDatasets int) *scatterFixture {
	t.Helper()
	u := synth.NewUniverse(150, 6, 31)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: nDatasets, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 32,
	})
	full, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	f := &scatterFixture{dss: dss, full: full, query: u.ModuleGeneIDs(2)[:4]}
	for _, ds := range dss {
		f.ids = append(f.ids, ds.Name)
	}
	for s := 0; s < nShards; s++ {
		f.identities = append(f.identities, fmt.Sprintf("shard-%d", s))
	}
	for _, self := range f.identities {
		owned := OwnedIndexesR(f.ids, f.identities, self, repl)
		if len(owned) == 0 {
			t.Fatalf("fixture: %s owns no datasets at r=%d; tune the compendium seed", self, repl)
		}
		var slice []*microarray.Dataset
		g2l := make(map[int]int, len(owned))
		for li, gi := range owned {
			slice = append(slice, dss[gi])
			g2l[gi] = li
		}
		se, err := spell.NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		f.shards = append(f.shards, &testShard{engine: se, global: owned, g2l: g2l, allIDs: f.ids})
	}
	return f
}

func newScatterFixture(t testing.TB, nShards int) *scatterFixture {
	return newScatterFixtureR(t, nShards, 1)
}

// start launches httptest servers for every fixture shard and a
// coordinator whose membership defaults to all of them (set cfg.Shards to
// boot with a subset — the rest stay resolvable for later joins).
func (f *scatterFixture) start(t testing.TB, cfg Config) (*Coordinator, []*httptest.Server) {
	t.Helper()
	urls := make(map[string]string, len(f.shards))
	var servers []*httptest.Server
	for si, sh := range f.shards {
		mux := http.NewServeMux()
		mux.Handle(SearchPath, sh)
		mux.HandleFunc(InfoPath, sh.infoHandler())
		if sh.enr != nil {
			mux.HandleFunc(EnrichPath, sh.enrichHandler())
			mux.HandleFunc(EnrichCatalogPath, sh.enrichCatalogHandler())
		}
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		urls[f.identities[si]] = srv.URL
	}
	if cfg.Shards == nil {
		cfg.Shards = f.identities
	}
	cfg.Resolve = func(identity string) string { return urls[identity] }
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

// assertParity requires got to match the single-process result gene by
// gene and dataset by dataset at 1e-12.
func assertParity(t testing.TB, got, want *spell.Result) {
	t.Helper()
	if len(got.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(got.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if got.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(got.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, got.Genes[i], want.Genes[i])
		}
	}
	if len(got.Datasets) != len(want.Datasets) {
		t.Fatalf("%d datasets, want %d", len(got.Datasets), len(want.Datasets))
	}
	for i := range want.Datasets {
		if got.Datasets[i].Index != want.Datasets[i].Index ||
			math.Abs(got.Datasets[i].Weight-want.Datasets[i].Weight) > 1e-12 {
			t.Fatalf("dataset rank %d: %+v vs %+v", i, got.Datasets[i], want.Datasets[i])
		}
	}
}

func TestScatterMatchesSingleProcess(t *testing.T) {
	f := newScatterFixture(t, 3)
	c, _ := f.start(t, Config{Deadline: 5 * time.Second})
	opt := spell.Options{IncludeQuery: true, MaxGenes: 30}
	got, meta, err := c.SearchCtx(context.Background(), f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded || meta.ShardsOK != 3 || meta.ShardsTotal != 3 {
		t.Fatalf("meta: %+v", meta)
	}
	if meta.GroupsTotal == 0 || meta.GroupsOK != meta.GroupsTotal {
		t.Fatalf("groups: %+v", meta)
	}
	want, err := f.full.Search(f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, got, want)
}

// TestScatterReplicatedParity is the golden-parity guarantee across
// replication factors: the merged scatter result over a healthy fleet is
// bit-identical (1e-12) to the single-process Search at r=1, 2 and 3 —
// replication changes who serves, never what is computed.
func TestScatterReplicatedParity(t *testing.T) {
	for _, r := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			f := newScatterFixtureR(t, 3, r)
			c, _ := f.start(t, Config{Deadline: 5 * time.Second, Replication: r})
			opt := spell.Options{IncludeQuery: true, MaxGenes: 30}
			got, meta, err := c.SearchCtx(context.Background(), f.query, opt)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Degraded || meta.Replication != r || meta.GroupsOK != meta.GroupsTotal || meta.GroupsTotal == 0 {
				t.Fatalf("meta: %+v", meta)
			}
			want, err := f.full.Search(f.query, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertParity(t, got, want)
		})
	}
}

// TestScatterReplicaFailover: with r=2, killing one shard outright loses
// nothing — every ownership group still has a live replica, so repeated
// queries stay non-degraded and at golden parity, and the stats record
// the failovers that made it so.
func TestScatterReplicaFailover(t *testing.T) {
	f := newScatterFixtureR(t, 3, 2)
	c, servers := f.start(t, Config{Deadline: 2 * time.Second, Replication: 2})
	servers[1].Close()
	opt := spell.Options{IncludeQuery: true}
	want, err := f.full.Search(f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, meta, err := c.SearchCtx(context.Background(), f.query, opt)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if meta.Degraded || meta.GroupsOK != meta.GroupsTotal {
			t.Fatalf("query %d meta: %+v", i, meta)
		}
		assertParity(t, got, want)
	}
	snap := c.Stats()
	if snap.Degraded != 0 {
		t.Fatalf("degraded counter = %d, want 0", snap.Degraded)
	}
	var failovers int64
	for _, s := range snap.Shards {
		failovers += s.Failovers
	}
	if snap.Shards[1].Errors == 0 || failovers == 0 {
		t.Fatalf("failover not exercised: dead errors=%d failovers=%d", snap.Shards[1].Errors, failovers)
	}
}

// TestScatterMembershipElasticity drives the runtime join/leave path:
// a fleet booted short of one member serves degraded (the missing
// member's datasets are unreachable), a Membership.Add restores golden
// parity on the very next scatter (catalog and ownership re-derived under
// the bumped generation), and a Remove degrades honestly again.
func TestScatterMembershipElasticity(t *testing.T) {
	f := newScatterFixtureR(t, 3, 1) // placement as booted for the full trio
	c, _ := f.start(t, Config{Deadline: 2 * time.Second, Shards: f.identities[:2]})
	opt := spell.Options{IncludeQuery: true}

	_, meta, err := c.SearchCtx(context.Background(), f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Degraded || meta.ShardsTotal != 2 {
		t.Fatalf("short fleet meta: %+v", meta)
	}
	gen0 := c.Generation()

	if _, _, err := c.Membership().Add(f.identities[2]); err != nil {
		t.Fatal(err)
	}
	got, meta, err := c.SearchCtx(context.Background(), f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded || meta.ShardsTotal != 3 || meta.ShardsOK != 3 {
		t.Fatalf("post-join meta: %+v", meta)
	}
	want, err := f.full.Search(f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, got, want)
	if c.Generation() == gen0 {
		t.Fatal("join did not change the generation")
	}
	if snap := c.Stats(); snap.MembershipBumps != 1 || snap.ShardsTotal != 3 {
		t.Fatalf("post-join stats: %+v", snap)
	}

	if _, _, err := c.Membership().Remove(f.identities[1]); err != nil {
		t.Fatal(err)
	}
	_, meta, err = c.SearchCtx(context.Background(), f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Degraded || meta.ShardsTotal != 2 {
		t.Fatalf("post-leave meta: %+v", meta)
	}
	if snap := c.Stats(); snap.MembershipBumps != 2 {
		t.Fatalf("post-leave stats: %+v", snap)
	}
}

// TestScatterFailureModes is the coordinator failure-mode table: a flaky
// shard that times out, serves 5xx, or is dead must degrade the merge
// (renormalized over the survivors) rather than fail the query; a full
// outage must fail loudly with ErrAllShardsFailed.
func TestScatterFailureModes(t *testing.T) {
	timeoutBehavior := func(n int64, w http.ResponseWriter, r *http.Request) bool {
		// Drain the body first: the server only watches for client
		// disconnect (and cancels r.Context()) once the request body is
		// consumed.
		_, _ = io.Copy(io.Discard, r.Body)
		select { // hold until past the coordinator deadline, politely
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		return true
	}
	cases := []struct {
		name     string
		behave   func(n int64, w http.ResponseWriter, r *http.Request) bool
		killAlso bool // close the flaky shard's listener entirely
		wantOK   int
	}{
		{
			name:   "timeout",
			behave: timeoutBehavior,
			wantOK: 2,
		},
		{
			name: "5xx",
			behave: func(n int64, w http.ResponseWriter, r *http.Request) bool {
				http.Error(w, "shard exploded", http.StatusInternalServerError)
				return true
			},
			wantOK: 2,
		},
		{
			name:     "dead",
			killAlso: true,
			wantOK:   2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newScatterFixture(t, 3)
			f.shards[1].behave = tc.behave
			c, servers := f.start(t, Config{Deadline: 300 * time.Millisecond})
			if tc.killAlso {
				servers[1].Close()
			}
			got, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{IncludeQuery: true})
			if err != nil {
				t.Fatalf("degraded scatter should answer: %v", err)
			}
			if !meta.Degraded || meta.ShardsOK != tc.wantOK || meta.ShardsTotal != 3 {
				t.Fatalf("meta: %+v", meta)
			}
			// The degraded result must equal the merge over the survivors'
			// partials: weights renormalized over shards 0 and 2 only.
			var parts []spell.Partial
			for si, sh := range f.shards {
				if si == 1 {
					continue
				}
				p, err := sh.engine.PartialSearch(f.query, spell.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range p.Datasets {
					p.Datasets[i].Index = sh.global[p.Datasets[i].Index]
				}
				parts = append(parts, *p)
			}
			want, err := spell.Merge(parts, spell.Options{IncludeQuery: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Datasets) != len(want.Datasets) || len(got.Genes) != len(want.Genes) {
				t.Fatalf("degraded shape: %d/%d datasets, %d/%d genes",
					len(got.Datasets), len(want.Datasets), len(got.Genes), len(want.Genes))
			}
			totalW := 0.0
			for i := range want.Datasets {
				if got.Datasets[i] != want.Datasets[i] &&
					!(math.IsNaN(got.Datasets[i].QueryCoherence) && math.IsNaN(want.Datasets[i].QueryCoherence)) {
					t.Fatalf("dataset rank %d: %+v vs %+v", i, got.Datasets[i], want.Datasets[i])
				}
				totalW += got.Datasets[i].Weight
			}
			if math.Abs(totalW-1) > 1e-12 {
				t.Fatalf("degraded weights sum to %v, want 1", totalW)
			}
			snap := c.Stats()
			if snap.Degraded != 1 {
				t.Fatalf("degraded counter = %d", snap.Degraded)
			}
			if snap.Shards[1].Errors == 0 {
				t.Fatalf("flaky shard recorded no error: %+v", snap.Shards[1])
			}
		})
	}

	t.Run("full-outage", func(t *testing.T) {
		f := newScatterFixture(t, 2)
		c, servers := f.start(t, Config{Deadline: 300 * time.Millisecond})
		for _, s := range servers {
			s.Close()
		}
		_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
		if !errors.Is(err, ErrAllShardsFailed) {
			t.Fatalf("err = %v, want ErrAllShardsFailed", err)
		}
		if meta.ShardsOK != 0 {
			t.Fatalf("meta: %+v", meta)
		}
		if c.Stats().FullOutages != 1 {
			t.Fatalf("outage counter = %d", c.Stats().FullOutages)
		}
	})
}

// TestScatterRetryRecovers: with Retry enabled, a shard that fails its
// first attempt but answers the second yields a full (non-degraded)
// result, and the retry is counted.
func TestScatterRetryRecovers(t *testing.T) {
	f := newScatterFixture(t, 2)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return true
		}
		return false
	}
	c, _ := f.start(t, Config{Deadline: 2 * time.Second, Retry: true})
	_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded || meta.ShardsOK != 2 {
		t.Fatalf("meta: %+v", meta)
	}
	snap := c.Stats()
	if snap.Shards[0].Retries != 1 {
		t.Fatalf("retries = %d, want 1", snap.Shards[0].Retries)
	}
	if snap.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0", snap.Degraded)
	}
}

// TestScatterHedgeWins: a single-owner shard whose first attempt stalls
// answers through the hedged duplicate fired after HedgeAfter, well
// inside the deadline — tail latency hidden without degrading — and the
// win is attributed.
func TestScatterHedgeWins(t *testing.T) {
	f := newScatterFixture(t, 2)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n == 1 { // first attempt stalls until canceled
			_, _ = io.Copy(io.Discard, r.Body) // unblock disconnect detection
			<-r.Context().Done()
			return true
		}
		return false
	}
	c, _ := f.start(t, Config{Deadline: 10 * time.Second, HedgeAfter: 50 * time.Millisecond})
	t0 := time.Now()
	_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded {
		t.Fatalf("meta: %+v", meta)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("hedge did not rescue the stalled attempt (took %v)", elapsed)
	}
	snap := c.Stats()
	if snap.Shards[0].Hedges != 1 || snap.Shards[0].HedgeWins != 1 {
		t.Fatalf("hedges = %d, wins = %d, want 1/1", snap.Shards[0].Hedges, snap.Shards[0].HedgeWins)
	}
}

// TestScatterHedgeFailsOver: under replication the hedge is a true
// failover — the duplicate goes to the next untried replica, so a stalled
// primary is rescued by a different machine.
func TestScatterHedgeFailsOver(t *testing.T) {
	f := newScatterFixtureR(t, 2, 2)
	// Shard 0 black-holes every search request; shard 1 is healthy. With
	// r=2 every group is owned by both, so any group whose p2c primary
	// lands on shard 0 is rescued only by the hedge failing over to
	// shard 1 — a few queries rotate the primary over both shards.
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return true
	}
	c, _ := f.start(t, Config{Deadline: 10 * time.Second, Replication: 2, HedgeAfter: 50 * time.Millisecond})
	for i := 0; i < 4; i++ {
		t0 := time.Now()
		_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if meta.Degraded {
			t.Fatalf("query %d meta: %+v", i, meta)
		}
		if elapsed := time.Since(t0); elapsed > 5*time.Second {
			t.Fatalf("replica hedge did not rescue the stalled primary (took %v)", elapsed)
		}
	}
	snap := c.Stats()
	var hedges, wins int64
	for _, s := range snap.Shards {
		hedges += s.Hedges
		wins += s.HedgeWins
	}
	if hedges == 0 || wins == 0 {
		t.Fatalf("hedges = %d, wins = %d, want both > 0", hedges, wins)
	}
}

func TestScatterCallerCancellation(t *testing.T) {
	f := newScatterFixture(t, 2)
	block := make(chan struct{})
	defer close(block)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		_, _ = io.Copy(io.Discard, r.Body) // unblock disconnect detection
		select {
		case <-r.Context().Done():
		case <-block:
		}
		return true
	}
	c, _ := f.start(t, Config{Deadline: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := c.SearchCtx(ctx, f.query, spell.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller deadline", err)
	}
	if c.Stats().FullOutages != 0 {
		t.Fatal("caller hangup miscounted as an outage")
	}
}

// TestCoordinatorInfoGenerations covers the union info and its
// generation-keyed cache: counts are unioned over held slices, a
// membership bump invalidates the cached answer (it used to be cached
// once forever), and the per-generation cache means a dead member never
// consulted under the current generation costs nothing.
func TestCoordinatorInfoGenerations(t *testing.T) {
	f := newScatterFixtureR(t, 3, 1)
	c, servers := f.start(t, Config{Deadline: 1 * time.Second, Shards: f.identities[:2]})

	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantShort := len(f.dss) - len(f.shards[2].global)
	if info.Datasets != wantShort {
		t.Fatalf("short-fleet datasets = %d, want %d", info.Datasets, wantShort)
	}

	if _, _, err := c.Membership().Add(f.identities[2]); err != nil {
		t.Fatal(err)
	}
	info, err = c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Datasets != len(f.dss) {
		t.Fatalf("post-join datasets = %d, want %d (stale cached info?)", info.Datasets, len(f.dss))
	}
	if info.Genes != f.full.NumGenes() {
		t.Fatalf("genes = %d, want union %d (per-shard slices overlap)", info.Genes, f.full.NumGenes())
	}

	// Cached under this generation: killing a member does not break Info
	// until the membership changes...
	servers[2].Close()
	if info2, err := c.Info(context.Background()); err != nil || info2.Datasets != len(f.dss) {
		t.Fatalf("cached info after member death: %+v, %v", info2, err)
	}
	// ...and removing the dead member re-probes the survivors immediately
	// (the bump clears any failure cooldown too).
	if _, _, err := c.Membership().Remove(f.identities[2]); err != nil {
		t.Fatal(err)
	}
	info, err = c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Datasets != wantShort {
		t.Fatalf("post-leave datasets = %d, want %d", info.Datasets, wantShort)
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{}); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewCoordinator(Config{Shards: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := NewCoordinator(Config{Shards: []string{"a:1", "b:1"}, Replication: 3}); err == nil {
		t.Fatal("replication beyond fleet size accepted")
	}
	c, err := NewCoordinator(Config{Shards: []string{" host:9001/ ", "http://other:9002"}})
	if err != nil {
		t.Fatal(err)
	}
	// Identities are canonicalized but NOT rewritten into URLs: they must
	// stay byte-identical to the shard daemons' -shards entries for the
	// rendezvous hash. Dialing is the resolver's concern.
	got := c.Shards()
	if got[0] != "host:9001" || got[1] != "http://other:9002" {
		t.Fatalf("identities: %v", got)
	}
	if c.Replication() != 1 {
		t.Fatalf("default replication = %d, want 1", c.Replication())
	}
}

// TestScatterDegradedUnresolved: when the only shards that measured the
// query genes are the dead ones, the survivors' merge must NOT claim the
// genes don't exist — the coordinator converts spell's "none occur" into
// ErrDegradedUnresolved, which the daemon maps to a retryable 503.
func TestScatterDegradedUnresolved(t *testing.T) {
	identities := []string{"s0", "s1"}
	// pin renames a dataset until rendezvous assigns it to the wanted
	// shard, so the test controls placement without touching the hash.
	pin := func(name, want string) string {
		for i := 0; ; i++ {
			cand := fmt.Sprintf("%s#%d", name, i)
			if Owner(cand, identities) == want {
				return cand
			}
		}
	}
	u := synth.NewUniverse(100, 5, 83)
	real, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 2, MinExperiments: 8, MaxExperiments: 10, Seed: 84,
	})
	real[0].Name = pin(real[0].Name, "s1")
	real[1].Name = pin(real[1].Name, "s1")
	realEng, err := spell.NewEngine(real)
	if err != nil {
		t.Fatal(err)
	}
	// Shard s0 holds only gene-disjoint data; shard s1 holds everything
	// the query can resolve against.
	rng := rand.New(rand.NewSource(9))
	lone := &microarray.Dataset{Name: pin("lone", "s0"), Experiments: make([]string, 8)}
	for g := 0; g < 20; g++ {
		id := fmt.Sprintf("LONE-%02d", g)
		row := make([]float64, 8)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		lone.Genes = append(lone.Genes, microarray.Gene{ID: id, Name: id})
		lone.Data = append(lone.Data, row)
	}
	loneEng, err := spell.NewEngine([]*microarray.Dataset{lone})
	if err != nil {
		t.Fatal(err)
	}
	allIDs := []string{real[0].Name, real[1].Name, lone.Name}
	shards := []*testShard{
		{engine: loneEng, global: []int{2}, g2l: map[int]int{2: 0}, allIDs: allIDs},
		{engine: realEng, global: []int{0, 1}, g2l: map[int]int{0: 0, 1: 1}, allIDs: allIDs},
	}
	urls := make(map[string]string)
	var servers []*httptest.Server
	for si, sh := range shards {
		mux := http.NewServeMux()
		mux.Handle(SearchPath, sh)
		mux.HandleFunc(InfoPath, sh.infoHandler())
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		urls[identities[si]] = srv.URL
	}
	c, err := NewCoordinator(Config{
		Shards:   identities,
		Deadline: 300 * time.Millisecond,
		Resolve:  func(id string) string { return urls[id] },
	})
	if err != nil {
		t.Fatal(err)
	}
	// With every shard up, genuinely unknown genes ARE the query error.
	if _, _, err := c.SearchCtx(context.Background(), []string{"NO-SUCH-A", "NO-SUCH-B"}, spell.Options{}); err == nil || errors.Is(err, ErrDegradedUnresolved) {
		t.Fatalf("full-coverage unknown genes: err = %v, want plain query error", err)
	}

	servers[1].Close() // kill the shard that held the query genes
	query := u.ModuleGeneIDs(2)[:3]
	_, meta, err := c.SearchCtx(context.Background(), query, spell.Options{})
	if !errors.Is(err, ErrDegradedUnresolved) {
		t.Fatalf("err = %v, want ErrDegradedUnresolved", err)
	}
	if !meta.Degraded || meta.ShardsOK != 1 {
		t.Fatalf("meta: %+v", meta)
	}
}
