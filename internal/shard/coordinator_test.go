package shard

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"forestview/internal/microarray"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

// testShard is one in-process shard backend: an engine over a slice of
// the compendium with its global-index remap, plus a per-request behavior
// hook for failure injection.
type testShard struct {
	engine *spell.Engine
	global []int
	// behave, when non-nil, may hijack a request before the real handler
	// runs; return true when it wrote the response.
	behave func(n int64, w http.ResponseWriter, r *http.Request) bool
	calls  atomic.Int64
}

func (s *testShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := s.calls.Add(1)
	if s.behave != nil && s.behave(n, w, r) {
		return
	}
	var req SearchRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, err := s.engine.PartialSearchCtx(r.Context(), req.Query, spell.Options{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	for i := range p.Datasets {
		p.Datasets[i].Index = s.global[p.Datasets[i].Index]
	}
	w.Header().Set("Content-Type", ContentType)
	_ = gob.NewEncoder(w).Encode(p)
}

type scatterFixture struct {
	dss    []*microarray.Dataset
	full   *spell.Engine
	shards []*testShard
	query  []string
}

// newScatterFixture splits a synthetic compendium round-robin over
// nShards in-process backends.
func newScatterFixture(t testing.TB, nShards int) *scatterFixture {
	t.Helper()
	u := synth.NewUniverse(150, 6, 31)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 6, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 32,
	})
	full, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	f := &scatterFixture{dss: dss, full: full, query: u.ModuleGeneIDs(2)[:4]}
	for s := 0; s < nShards; s++ {
		var slice []*microarray.Dataset
		var global []int
		for di, ds := range dss {
			if di%nShards == s {
				slice = append(slice, ds)
				global = append(global, di)
			}
		}
		se, err := spell.NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		f.shards = append(f.shards, &testShard{engine: se, global: global})
	}
	return f
}

// start launches httptest servers for every shard and a coordinator over
// them.
func (f *scatterFixture) start(t testing.TB, cfg Config) (*Coordinator, []*httptest.Server) {
	t.Helper()
	var servers []*httptest.Server
	for _, sh := range f.shards {
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		cfg.Shards = append(cfg.Shards, srv.URL)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

func TestScatterMatchesSingleProcess(t *testing.T) {
	f := newScatterFixture(t, 3)
	c, _ := f.start(t, Config{Deadline: 5 * time.Second})
	opt := spell.Options{IncludeQuery: true, MaxGenes: 30}
	got, meta, err := c.SearchCtx(context.Background(), f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded || meta.ShardsOK != 3 || meta.ShardsTotal != 3 {
		t.Fatalf("meta: %+v", meta)
	}
	want, err := f.full.Search(f.query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Genes) != len(want.Genes) {
		t.Fatalf("%d genes, want %d", len(got.Genes), len(want.Genes))
	}
	for i := range want.Genes {
		if got.Genes[i].ID != want.Genes[i].ID ||
			math.Abs(got.Genes[i].Score-want.Genes[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, got.Genes[i], want.Genes[i])
		}
	}
	for i := range want.Datasets {
		if got.Datasets[i].Index != want.Datasets[i].Index ||
			math.Abs(got.Datasets[i].Weight-want.Datasets[i].Weight) > 1e-12 {
			t.Fatalf("dataset rank %d: %+v vs %+v", i, got.Datasets[i], want.Datasets[i])
		}
	}
}

// TestScatterFailureModes is the coordinator failure-mode table: a flaky
// shard that times out, serves 5xx, or is dead must degrade the merge
// (renormalized over the survivors) rather than fail the query; a full
// outage must fail loudly with ErrAllShardsFailed.
func TestScatterFailureModes(t *testing.T) {
	timeoutBehavior := func(n int64, w http.ResponseWriter, r *http.Request) bool {
		// Drain the body first: the server only watches for client
		// disconnect (and cancels r.Context()) once the request body is
		// consumed.
		_, _ = io.Copy(io.Discard, r.Body)
		select { // hold until past the coordinator deadline, politely
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		return true
	}
	cases := []struct {
		name     string
		behave   func(n int64, w http.ResponseWriter, r *http.Request) bool
		killAlso bool // close the flaky shard's listener entirely
		wantOK   int
	}{
		{
			name:   "timeout",
			behave: timeoutBehavior,
			wantOK: 2,
		},
		{
			name: "5xx",
			behave: func(n int64, w http.ResponseWriter, r *http.Request) bool {
				http.Error(w, "shard exploded", http.StatusInternalServerError)
				return true
			},
			wantOK: 2,
		},
		{
			name:     "dead",
			killAlso: true,
			wantOK:   2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newScatterFixture(t, 3)
			f.shards[1].behave = tc.behave
			c, servers := f.start(t, Config{Deadline: 300 * time.Millisecond})
			if tc.killAlso {
				servers[1].Close()
			}
			got, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{IncludeQuery: true})
			if err != nil {
				t.Fatalf("degraded scatter should answer: %v", err)
			}
			if !meta.Degraded || meta.ShardsOK != tc.wantOK || meta.ShardsTotal != 3 {
				t.Fatalf("meta: %+v", meta)
			}
			// The degraded result must equal the merge over the survivors'
			// partials: weights renormalized over shards 0 and 2 only.
			var parts []spell.Partial
			for si, sh := range f.shards {
				if si == 1 {
					continue
				}
				p, err := sh.engine.PartialSearch(f.query, spell.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range p.Datasets {
					p.Datasets[i].Index = sh.global[p.Datasets[i].Index]
				}
				parts = append(parts, *p)
			}
			want, err := spell.Merge(parts, spell.Options{IncludeQuery: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Datasets) != len(want.Datasets) || len(got.Genes) != len(want.Genes) {
				t.Fatalf("degraded shape: %d/%d datasets, %d/%d genes",
					len(got.Datasets), len(want.Datasets), len(got.Genes), len(want.Genes))
			}
			totalW := 0.0
			for i := range want.Datasets {
				if got.Datasets[i] != want.Datasets[i] &&
					!(math.IsNaN(got.Datasets[i].QueryCoherence) && math.IsNaN(want.Datasets[i].QueryCoherence)) {
					t.Fatalf("dataset rank %d: %+v vs %+v", i, got.Datasets[i], want.Datasets[i])
				}
				totalW += got.Datasets[i].Weight
			}
			if math.Abs(totalW-1) > 1e-12 {
				t.Fatalf("degraded weights sum to %v, want 1", totalW)
			}
			snap := c.Stats()
			if snap.Degraded != 1 {
				t.Fatalf("degraded counter = %d", snap.Degraded)
			}
			if snap.Shards[1].Errors == 0 {
				t.Fatalf("flaky shard recorded no error: %+v", snap.Shards[1])
			}
		})
	}

	t.Run("full-outage", func(t *testing.T) {
		f := newScatterFixture(t, 2)
		c, servers := f.start(t, Config{Deadline: 300 * time.Millisecond})
		for _, s := range servers {
			s.Close()
		}
		_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
		if !errors.Is(err, ErrAllShardsFailed) {
			t.Fatalf("err = %v, want ErrAllShardsFailed", err)
		}
		if meta.ShardsOK != 0 {
			t.Fatalf("meta: %+v", meta)
		}
		if c.Stats().FullOutages != 1 {
			t.Fatalf("outage counter = %d", c.Stats().FullOutages)
		}
	})
}

// TestScatterRetryRecovers: with Retry enabled, a shard that fails its
// first attempt but answers the second yields a full (non-degraded)
// result, and the retry is counted.
func TestScatterRetryRecovers(t *testing.T) {
	f := newScatterFixture(t, 2)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return true
		}
		return false
	}
	c, _ := f.start(t, Config{Deadline: 2 * time.Second, Retry: true})
	_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded || meta.ShardsOK != 2 {
		t.Fatalf("meta: %+v", meta)
	}
	snap := c.Stats()
	if snap.Shards[0].Retries != 1 {
		t.Fatalf("retries = %d, want 1", snap.Shards[0].Retries)
	}
	if snap.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0", snap.Degraded)
	}
}

// TestScatterHedgeWins: a shard whose first attempt stalls answers
// through the hedged duplicate fired after HedgeAfter, well inside the
// deadline — tail latency hidden without degrading.
func TestScatterHedgeWins(t *testing.T) {
	f := newScatterFixture(t, 2)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n == 1 { // first attempt stalls until canceled
			_, _ = io.Copy(io.Discard, r.Body) // unblock disconnect detection
			<-r.Context().Done()
			return true
		}
		return false
	}
	c, _ := f.start(t, Config{Deadline: 10 * time.Second, HedgeAfter: 50 * time.Millisecond})
	t0 := time.Now()
	_, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded {
		t.Fatalf("meta: %+v", meta)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("hedge did not rescue the stalled attempt (took %v)", elapsed)
	}
	if h := c.Stats().Shards[0].Hedges; h != 1 {
		t.Fatalf("hedges = %d, want 1", h)
	}
}

func TestScatterCallerCancellation(t *testing.T) {
	f := newScatterFixture(t, 2)
	block := make(chan struct{})
	defer close(block)
	f.shards[0].behave = func(n int64, w http.ResponseWriter, r *http.Request) bool {
		_, _ = io.Copy(io.Discard, r.Body) // unblock disconnect detection
		select {
		case <-r.Context().Done():
		case <-block:
		}
		return true
	}
	c, _ := f.start(t, Config{Deadline: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := c.SearchCtx(ctx, f.query, spell.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller deadline", err)
	}
	if c.Stats().FullOutages != 0 {
		t.Fatal("caller hangup miscounted as an outage")
	}
}

func TestCoordinatorInfoUnion(t *testing.T) {
	f := newScatterFixture(t, 3)
	var cfg Config
	for _, sh := range f.shards {
		mux := http.NewServeMux()
		engine := sh.engine
		mux.Handle(SearchPath, sh)
		mux.HandleFunc(InfoPath, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", ContentType)
			_ = gob.NewEncoder(w).Encode(Info{Datasets: engine.NumDatasets(), GeneIDs: engine.GeneIDs()})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		cfg.Shards = append(cfg.Shards, srv.URL)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Datasets != len(f.dss) {
		t.Fatalf("datasets = %d, want %d", info.Datasets, len(f.dss))
	}
	if info.Genes != f.full.NumGenes() {
		t.Fatalf("genes = %d, want union %d (per-shard slices overlap)", info.Genes, f.full.NumGenes())
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{}); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewCoordinator(Config{Shards: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	c, err := NewCoordinator(Config{Shards: []string{"host:9001/", "http://other:9002"}})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Shards()
	if got[0] != "http://host:9001" || got[1] != "http://other:9002" {
		t.Fatalf("normalization: %v", got)
	}
}

// TestScatterDegradedUnresolved: when the only shards that measured the
// query genes are the dead ones, the survivors' merge must NOT claim the
// genes don't exist — the coordinator converts spell's "none occur" into
// ErrDegradedUnresolved, which the daemon maps to a retryable 503.
func TestScatterDegradedUnresolved(t *testing.T) {
	u := synth.NewUniverse(100, 5, 83)
	real, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 2, MinExperiments: 8, MaxExperiments: 10, Seed: 84,
	})
	realEng, err := spell.NewEngine(real)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 holds only gene-disjoint data; shard 1 holds everything the
	// query can resolve against.
	rng := rand.New(rand.NewSource(9))
	lone := &microarray.Dataset{Name: "lone", Experiments: make([]string, 8)}
	for g := 0; g < 20; g++ {
		id := fmt.Sprintf("LONE-%02d", g)
		row := make([]float64, 8)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		lone.Genes = append(lone.Genes, microarray.Gene{ID: id, Name: id})
		lone.Data = append(lone.Data, row)
	}
	loneEng, err := spell.NewEngine([]*microarray.Dataset{lone})
	if err != nil {
		t.Fatal(err)
	}
	shards := []*testShard{
		{engine: loneEng, global: []int{2}},
		{engine: realEng, global: []int{0, 1}},
	}
	var cfg Config
	cfg.Deadline = 300 * time.Millisecond
	var servers []*httptest.Server
	for _, sh := range shards {
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		cfg.Shards = append(cfg.Shards, srv.URL)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With every shard up, genuinely unknown genes ARE the query error.
	if _, _, err := c.SearchCtx(context.Background(), []string{"NO-SUCH-A", "NO-SUCH-B"}, spell.Options{}); err == nil || errors.Is(err, ErrDegradedUnresolved) {
		t.Fatalf("full-coverage unknown genes: err = %v, want plain query error", err)
	}

	servers[1].Close() // kill the shard that held the query genes
	query := u.ModuleGeneIDs(2)[:3]
	_, meta, err := c.SearchCtx(context.Background(), query, spell.Options{})
	if !errors.Is(err, ErrDegradedUnresolved) {
		t.Fatalf("err = %v, want ErrDegradedUnresolved", err)
	}
	if !meta.Degraded || meta.ShardsOK != 1 {
		t.Fatalf("meta: %+v", meta)
	}
}
