package shard

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"forestview/internal/golem"
	"forestview/internal/ontology"
	"forestview/internal/spell"
)

// enrichHandler serves EnrichPath the way the daemon does: re-derive the
// group list from the request's fleet view, translate Owners into a slice
// index, and return that slice's partial counts.
func (s *testShard) enrichHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req EnrichRequest
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.enrichBehave != nil && s.enrichBehave(w, &req) {
			return
		}
		gi, slices := 0, 1
		if len(req.Owners) > 0 {
			groups := Groups(s.allIDs, req.Shards, req.Replication)
			slices = len(groups)
			if gi = GroupIndex(groups, req.Owners); gi < 0 {
				http.Error(w, "unknown ownership group", http.StatusUnprocessableEntity)
				return
			}
		}
		p, err := s.enr.PartialAnalyzeCtx(r.Context(), req.Selection, gi, slices)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = gob.NewEncoder(w).Encode(p)
	}
}

func (s *testShard) enrichCatalogHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = gob.NewEncoder(w).Encode(s.enr.Catalog())
	}
}

// testEnricher builds a deterministic enrichment universe: a star ontology
// with random annotations over the given gene universe. Identical seeds
// build identical enrichers (same fingerprint) — the homogeneous-fleet
// assumption the daemons satisfy by loading the same ontology files.
func testEnricher(t testing.TB, seed int64, nGenes, nTerms int) (*golem.Enricher, []string) {
	t.Helper()
	o := ontology.New()
	if err := o.AddTerm(&ontology.Term{ID: "T0000", Name: "root"}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nTerms; i++ {
		id := fmt.Sprintf("T%04d", i)
		if err := o.AddTerm(&ontology.Term{ID: id, Name: "term " + id, Parents: []string{"T0000"}}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	ann := ontology.NewAnnotations()
	var background []string
	for g := 0; g < nGenes; g++ {
		gene := fmt.Sprintf("EG%05d", g)
		background = append(background, gene)
		for a := 0; a < 1+rng.Intn(3); a++ {
			ann.Add(gene, fmt.Sprintf("T%04d", rng.Intn(nTerms)))
		}
	}
	enr, err := golem.NewEnricher(o, ann, background)
	if err != nil {
		t.Fatal(err)
	}
	sel := make([]string, 0, nGenes/5)
	for g := 0; g < nGenes/5; g++ {
		sel = append(sel, background[rng.Intn(len(background))])
	}
	return enr, sel
}

// withEnrichers arms every fixture shard with an enricher built from the
// same seed, as daemons loading the same ontology would.
func (f *scatterFixture) withEnrichers(t testing.TB, seed int64) []string {
	t.Helper()
	var sel []string
	for _, sh := range f.shards {
		sh.enr, sel = testEnricher(t, seed, 400, 120)
	}
	return sel
}

func assertEnrichParity(t *testing.T, got, want []golem.Enrichment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d vs %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.TermID != w.TermID || g.Selected != w.Selected || g.Background != w.Background ||
			g.SelectionSize != w.SelectionSize || g.BackgroundSize != w.BackgroundSize {
			t.Fatalf("rank %d: %+v vs %+v", i, g, w)
		}
		if math.Abs(g.PValue-w.PValue) > 1e-12 || math.Abs(g.FDR-w.FDR) > 1e-12 {
			t.Fatalf("rank %d (%s): p %v vs %v", i, w.TermID, g.PValue, w.PValue)
		}
	}
}

// TestEnrichScatterMatchesAnalyze: the distributed acceptance proof at the
// scatter layer — for fleets of {1,2,3,5} shards at R∈{1,2}, the merged
// coordinator enrichment equals single-process Analyze exactly.
func TestEnrichScatterMatchesAnalyze(t *testing.T) {
	for _, tc := range []struct{ shards, repl int }{
		{1, 1}, {2, 1}, {3, 1}, {5, 1}, {2, 2}, {3, 2}, {5, 2},
	} {
		t.Run(fmt.Sprintf("%dshards-r%d", tc.shards, tc.repl), func(t *testing.T) {
			f := newScatterFixtureN(t, tc.shards, tc.repl, 4*tc.shards)
			sel := f.withEnrichers(t, 5)
			c, _ := f.start(t, Config{Replication: tc.repl})
			for _, opt := range []golem.Options{{}, {MinSelected: 2, MaxPValue: 0.5}} {
				want, err := f.shards[0].enr.Analyze(sel, opt)
				if err != nil {
					t.Fatal(err)
				}
				res, meta, err := c.EnrichCtx(context.Background(), sel, opt)
				if err != nil {
					t.Fatalf("EnrichCtx %+v: %v", opt, err)
				}
				if meta.Degraded || meta.GroupsOK != meta.GroupsTotal {
					t.Fatalf("healthy fleet degraded: %+v", meta)
				}
				assertEnrichParity(t, res.Results, want)
				if res.Background != f.shards[0].enr.BackgroundSize() {
					t.Fatalf("merged background %d, want %d", res.Background, f.shards[0].enr.BackgroundSize())
				}
			}
		})
	}
}

// TestEnrichScatterReplicaFailover: at R=2 a dead shard costs nothing —
// every slice fails over to a surviving replica (or the scavenge pass) and
// the merge stays exact and non-degraded.
func TestEnrichScatterReplicaFailover(t *testing.T) {
	f := newScatterFixtureR(t, 3, 2)
	sel := f.withEnrichers(t, 7)
	c, servers := f.start(t, Config{Replication: 2})
	want, err := f.shards[0].enr.Analyze(sel, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	servers[1].Close()
	res, meta, err := c.EnrichCtx(context.Background(), sel, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Degraded {
		t.Fatalf("degraded despite replication: %+v", meta)
	}
	assertEnrichParity(t, res.Results, want)
}

// TestEnrichScatterOntologyLessShard is the mixed-fleet case: a shard
// without an ontology 404s the enrich endpoints. Because any capable shard
// can serve any background slice, the fleet still answers exactly and
// non-degraded as long as one capable shard is reachable; a fleet with no
// capable shard at all reports ErrNoEnrichment (not an outage).
func TestEnrichScatterOntologyLessShard(t *testing.T) {
	for _, tc := range []struct {
		name    string
		capable func(si int) bool
		wantErr error
	}{
		{"one-dark-shard", func(si int) bool { return si != 1 }, nil},
		{"only-one-capable", func(si int) bool { return si == 0 }, nil},
		{"none-capable", func(si int) bool { return false }, ErrNoEnrichment},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newScatterFixtureR(t, 3, 1)
			sel := f.withEnrichers(t, 11)
			want, err := f.shards[0].enr.Analyze(sel, golem.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for si, sh := range f.shards {
				if !tc.capable(si) {
					sh.enr = nil // start() will not register the enrich endpoints
				}
			}
			c, _ := f.start(t, Config{})
			res, meta, err := c.EnrichCtx(context.Background(), sel, golem.Options{})
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if meta.Degraded {
				t.Fatalf("capable shards reachable, still degraded: %+v", meta)
			}
			assertEnrichParity(t, res.Results, want)
			// Search keeps working either way — capabilities are per-path.
			if _, _, err := c.SearchCtx(context.Background(), f.query, spell.Options{}); err != nil {
				t.Fatalf("search broken by enrichment gap: %v", err)
			}
		})
	}
}

// TestEnrichScatterDegraded forces real slice loss: every capable shard
// refuses one specific group (as an overloaded fleet might), so the merge
// covers the remaining slices and says so. A selection whose genes all
// live in the lost slice is ErrDegradedUnresolved — retryable — not the
// 422-style ErrNoSelection a truly unknown selection earns.
func TestEnrichScatterDegraded(t *testing.T) {
	f := newScatterFixtureR(t, 2, 1)
	sel := f.withEnrichers(t, 13)
	enr := f.shards[0].enr

	// Find the group list the fleet will derive and refuse its last group.
	groups := Groups(f.ids, f.identities, 1)
	if len(groups) < 2 {
		t.Fatalf("fixture derives %d groups, need >= 2", len(groups))
	}
	lost := len(groups) - 1
	refuse := func(w http.ResponseWriter, req *EnrichRequest) bool {
		g := Groups(f.ids, req.Shards, req.Replication)
		if gi := GroupIndex(g, req.Owners); gi == lost {
			http.Error(w, "refusing slice for test", http.StatusInternalServerError)
			return true
		}
		return false
	}
	for _, sh := range f.shards {
		sh.enrichBehave = refuse
	}
	c, _ := f.start(t, Config{})

	res, meta, err := c.EnrichCtx(context.Background(), sel, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Degraded || meta.GroupsOK != len(groups)-1 {
		t.Fatalf("want degraded with %d/%d groups, got %+v", len(groups)-1, len(groups), meta)
	}
	if res.Background >= enr.BackgroundSize() {
		t.Fatalf("degraded background %d not reduced from %d", res.Background, enr.BackgroundSize())
	}

	// A selection living wholly in the lost slice: unresolved, not invalid.
	hidden := genesInSlice(t, enr, lost, len(groups))
	if _, _, err := c.EnrichCtx(context.Background(), hidden, golem.Options{}); !errors.Is(err, ErrDegradedUnresolved) {
		t.Fatalf("hidden-slice selection: err = %v, want ErrDegradedUnresolved", err)
	}
	// A selection the universe has never seen: ErrNoSelection even degraded.
	if _, _, err := c.EnrichCtx(context.Background(), []string{"NO-SUCH-GENE"}, golem.Options{}); !errors.Is(err, golem.ErrNoSelection) {
		t.Fatalf("unknown selection: err = %v, want ErrNoSelection", err)
	}
}

// genesInSlice returns a few universe genes whose bit positions land in
// word-range slice gi of G — computed through the public partial API so the
// test doesn't reach into the kernel's layout.
func genesInSlice(t *testing.T, enr *golem.Enricher, gi, G int) []string {
	t.Helper()
	var out []string
	for g := 0; g < 400 && len(out) < 3; g++ {
		gene := fmt.Sprintf("EG%05d", g)
		if !enr.InBackground(gene) {
			continue
		}
		p, err := enr.PartialAnalyze([]string{gene}, gi, G)
		if err != nil {
			t.Fatal(err)
		}
		if p.SelectionSize == 1 {
			out = append(out, gene)
		}
	}
	if len(out) == 0 {
		t.Skipf("slice %d/%d holds no probe genes", gi, G)
	}
	return out
}

// TestEnrichScatterFingerprintMismatch: a shard whose enricher was built
// differently (file-mode shard with a slice-local background) must be
// failed over, never merged.
func TestEnrichScatterFingerprintMismatch(t *testing.T) {
	f := newScatterFixtureR(t, 2, 1)
	sel := f.withEnrichers(t, 17)
	want, err := f.shards[0].enr.Analyze(sel, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 builds from a different universe: same API, wrong fingerprint.
	f.shards[1].enr, _ = testEnricher(t, 99, 300, 80)
	c, _ := f.start(t, Config{})
	res, meta, err := c.EnrichCtx(context.Background(), sel, golem.Options{})
	if err != nil {
		// Acceptable only if the catalog itself came from the odd shard and
		// every slice then failed over to... shard 0, which mismatches it.
		// Either way nothing wrong was merged.
		t.Skipf("whole scatter refused (catalog from mismatched shard): %v", err)
	}
	if meta.Degraded {
		t.Fatalf("mismatch should fail over to the consistent shard: %+v", meta)
	}
	// Whichever catalog won, the merged results must be internally exact:
	// they either match shard 0's universe or shard 1's.
	alt, aerr := f.shards[1].enr.Analyze(sel, golem.Options{})
	matches := func(w []golem.Enrichment, werr error) bool {
		if werr != nil || len(res.Results) != len(w) {
			return false
		}
		for i := range w {
			if res.Results[i] != w[i] {
				return false
			}
		}
		return true
	}
	if !matches(want, nil) && !matches(alt, aerr) {
		t.Fatalf("merged results match neither enricher's exact analysis")
	}
}
