// Package shard turns the single-process SPELL compendium into a
// horizontally scalable service: datasets are assigned to shard backends
// by consistent hashing on dataset id, a Coordinator scatters each query
// over HTTP and merges the per-shard spell.Partial results with global
// weight renormalization (spell.Merge), degrading gracefully when shards
// fail. It is the paper's replicate-and-coordinate pattern — the display
// wall's tile grid at the pixel layer (internal/wall) — applied to the
// query layer.
package shard

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Owner returns the shard that owns datasetID under rendezvous
// (highest-random-weight) hashing: every participant scores each
// (shard, dataset) pair with one hash and the highest score wins.
//
// Rendezvous was chosen over a ring for three reasons. (1) It needs no
// shared state and no virtual-node tuning: any process holding the same
// shard list computes the same assignment, which is what lets shard
// daemons self-select their slice from nothing but `-shards` + `-self`
// while the coordinator stays entirely stateless about datasets.
// (2) Balance at our scale comes free: with hundreds-to-thousands of
// datasets over a handful of shards, per-shard load concentrates around
// n/s without the hundreds of virtual nodes a ring needs for the same
// variance. (3) Membership changes move only the keys owned by the
// departed shard (1/s of the data), the same minimal-disruption property
// a ring has, with O(s) lookup cost that is irrelevant for s in the tens.
//
// Shard identity is the listed address string: reordering the list does
// not change the assignment, renaming a shard does (it is a new
// participant).
func Owner(datasetID string, shards []string) string {
	owners := Owners(datasetID, shards, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the top-r shards of datasetID's rendezvous ranking, in
// rank order: Owners(id, shards, 1)[0] is Owner(id, shards), entry 1 the
// first replica, and so on. Replication factor r gives each dataset r
// distinct owners out of the same per-(shard, dataset) scores single
// ownership uses, so raising r only *adds* replicas — the rank-k owner
// under r is the rank-k owner under any r' > k — and a membership change
// still moves only ~1/len(shards) of the assignments at each rank
// independently (the minimal-disruption property, now per rank). r is
// clamped to len(shards).
func Owners(datasetID string, shards []string, r int) []string {
	if r > len(shards) {
		r = len(shards)
	}
	if r <= 0 {
		return nil
	}
	type scored struct {
		shard string
		score uint64
	}
	ranked := make([]scored, 0, len(shards))
	for _, s := range shards {
		ranked = append(ranked, scored{shard: s, score: rendezvousScore(s, datasetID)})
	}
	// Deterministic tie-break on the address keeps the assignment a pure
	// function of the (shard set, dataset) pair, as in single ownership.
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].shard < ranked[b].shard
	})
	out := make([]string, r)
	for i := 0; i < r; i++ {
		out[i] = ranked[i].shard
	}
	return out
}

// rendezvousScore hashes one (shard, dataset) pair. FNV-1a over
// shard + NUL + dataset: the separator keeps ("ab","c") and ("a","bc")
// from colliding by concatenation.
func rendezvousScore(shard, datasetID string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shard))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(datasetID))
	return h.Sum64()
}

// OwnedIndexes returns the positions (in the given order) of the dataset
// ids owned by self under the shard set. A shard daemon applies this to
// the full compendium list to select its slice while retaining each
// dataset's global index for partial remapping.
func OwnedIndexes(datasetIDs []string, shards []string, self string) []int {
	return OwnedIndexesR(datasetIDs, shards, self, 1)
}

// OwnedIndexesR is OwnedIndexes under replication factor r: the positions
// of every dataset that lists self among its top-r owners at *any* rank.
// A shard loads all of them, so losing any r-1 other shards loses no
// dataset.
func OwnedIndexesR(datasetIDs []string, shards []string, self string, r int) []int {
	var owned []int
	for i, id := range datasetIDs {
		for _, o := range Owners(id, shards, r) {
			if o == self {
				owned = append(owned, i)
				break
			}
		}
	}
	return owned
}

// GroupIndexes returns the positions of the datasets whose ordered top-r
// owner tuple equals owners, under the given shard set. This is the shared
// vocabulary of the replicated scatter: the coordinator partitions the
// dataset list into ownership groups (distinct owner tuples) and asks one
// replica per group; the shard recomputes the same set from the request's
// (shards, r, owners) and serves exactly those datasets it holds — both
// sides derive the group from the same pure function, so no dataset can be
// claimed twice in one merge.
func GroupIndexes(datasetIDs []string, shards []string, r int, owners []string) []int {
	var idx []int
	for i, id := range datasetIDs {
		got := Owners(id, shards, r)
		if len(got) != len(owners) {
			continue
		}
		match := true
		for k := range got {
			if got[k] != owners[k] {
				match = false
				break
			}
		}
		if match {
			idx = append(idx, i)
		}
	}
	return idx
}

// Groups returns the distinct ordered top-r owner tuples of the dataset
// list, in first-seen catalog order. This ordering is load-bearing shared
// vocabulary: the coordinator's scatter and the distributed-enrichment
// slice assignment both index it — background slice gi of G belongs to
// group gi of the G groups — so coordinator and shard must derive the
// identical list from the identical (catalog, shards, r) inputs, which
// this pure function guarantees.
func Groups(datasetIDs []string, shards []string, r int) [][]string {
	var groups [][]string
	seen := make(map[string]bool)
	for _, id := range datasetIDs {
		owners := Owners(id, shards, r)
		key := strings.Join(owners, "\x00")
		if !seen[key] {
			seen[key] = true
			groups = append(groups, owners)
		}
	}
	return groups
}

// GroupIndex finds the position of an owner tuple in Groups' derivation,
// or -1. A shard uses it to translate an EnrichRequest's Owners into the
// background slice index it must tally.
func GroupIndex(groups [][]string, owners []string) int {
	for gi, g := range groups {
		if len(g) != len(owners) {
			continue
		}
		match := true
		for k := range g {
			if g[k] != owners[k] {
				match = false
				break
			}
		}
		if match {
			return gi
		}
	}
	return -1
}

// Generation fingerprints a shard set: a stable hash of the sorted
// addresses. The daemon bakes it into merged-result cache keys, so a
// coordinator restarted against a different shard topology can never
// serve results merged over the old one.
func Generation(shards []string) uint64 {
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, s := range sorted {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
