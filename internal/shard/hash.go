// Package shard turns the single-process SPELL compendium into a
// horizontally scalable service: datasets are assigned to shard backends
// by consistent hashing on dataset id, a Coordinator scatters each query
// over HTTP and merges the per-shard spell.Partial results with global
// weight renormalization (spell.Merge), degrading gracefully when shards
// fail. It is the paper's replicate-and-coordinate pattern — the display
// wall's tile grid at the pixel layer (internal/wall) — applied to the
// query layer.
package shard

import (
	"hash/fnv"
	"sort"
)

// Owner returns the shard that owns datasetID under rendezvous
// (highest-random-weight) hashing: every participant scores each
// (shard, dataset) pair with one hash and the highest score wins.
//
// Rendezvous was chosen over a ring for three reasons. (1) It needs no
// shared state and no virtual-node tuning: any process holding the same
// shard list computes the same assignment, which is what lets shard
// daemons self-select their slice from nothing but `-shards` + `-self`
// while the coordinator stays entirely stateless about datasets.
// (2) Balance at our scale comes free: with hundreds-to-thousands of
// datasets over a handful of shards, per-shard load concentrates around
// n/s without the hundreds of virtual nodes a ring needs for the same
// variance. (3) Membership changes move only the keys owned by the
// departed shard (1/s of the data), the same minimal-disruption property
// a ring has, with O(s) lookup cost that is irrelevant for s in the tens.
//
// Shard identity is the listed address string: reordering the list does
// not change the assignment, renaming a shard does (it is a new
// participant).
func Owner(datasetID string, shards []string) string {
	best := ""
	var bestScore uint64
	for _, s := range shards {
		score := rendezvousScore(s, datasetID)
		// Deterministic tie-break on the address keeps the assignment a
		// pure function of the (shard set, dataset) pair.
		if best == "" || score > bestScore || (score == bestScore && s < best) {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousScore hashes one (shard, dataset) pair. FNV-1a over
// shard + NUL + dataset: the separator keeps ("ab","c") and ("a","bc")
// from colliding by concatenation.
func rendezvousScore(shard, datasetID string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shard))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(datasetID))
	return h.Sum64()
}

// OwnedIndexes returns the positions (in the given order) of the dataset
// ids owned by self under the shard set. A shard daemon applies this to
// the full compendium list to select its slice while retaining each
// dataset's global index for partial remapping.
func OwnedIndexes(datasetIDs []string, shards []string, self string) []int {
	var owned []int
	for i, id := range datasetIDs {
		if Owner(id, shards) == self {
			owned = append(owned, i)
		}
	}
	return owned
}

// Generation fingerprints a shard set: a stable hash of the sorted
// addresses. The daemon bakes it into merged-result cache keys, so a
// coordinator restarted against a different shard topology can never
// serve results merged over the old one.
func Generation(shards []string) uint64 {
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, s := range sorted {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
