package shard

import (
	"sync"
	"time"
)

// breaker is one replica's circuit breaker. It replaces "keep dialing a
// dead shard at full query rate" with the classic three-state machine:
//
//	closed    — attempts flow; consecutive failures count up.
//	open      — attempts are skipped for a backoff window (jittered
//	            exponential in the consecutive trip count), so a dead
//	            replica costs the scatter nothing while its group is
//	            served by the other replicas.
//	half-open — after the window, exactly one probe attempt is admitted;
//	            success closes the breaker, failure re-opens it with a
//	            longer window.
//
// The scatter keeps an availability floor above the breaker: when a group
// has *no* admitted replica, fetchGroup forces a probe of the primary
// rather than fail the group without trying (allow with lastResort=true).
// Failures caused by the coordinator's own cancellation (hedge losers,
// caller hangup) never count — see breakerFailure.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	wait     time.Duration // current open window
	probing  bool          // a half-open probe is in flight
	opens    int           // consecutive trips without an intervening success
	trips    int64         // cumulative trips, for /api/stats
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// allow reports whether an attempt may proceed now, and whether that
// attempt is a half-open probe (its outcome settles the breaker).
// lastResort forces admission even inside the open window — the caller
// has nowhere else to send the group — by converting the attempt into a
// probe.
func (b *breaker) allow(now time.Time, lastResort bool) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.wait || lastResort {
			b.state = breakerHalfOpen
			b.probing = true
			return true, true
		}
		return false, false
	case breakerHalfOpen:
		if b.probing && !lastResort {
			return false, false // one probe at a time
		}
		b.probing = true
		return true, true
	default:
		return true, false
	}
}

// observe records an attempt outcome. threshold is the consecutive-failure
// trip point; window returns the open duration for the n-th consecutive
// trip. Returns true when this observation tripped the breaker open.
func (b *breaker) observe(success, probe bool, now time.Time, threshold int, window func(opens int) time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if success {
		b.state = breakerClosed
		b.fails = 0
		b.opens = 0
		return false
	}
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails < threshold {
			return false
		}
	case breakerHalfOpen:
		if !probe {
			// A straggler launched before the trip; the probe's outcome is
			// the one that settles the state.
			return false
		}
	case breakerOpen:
		return false // stale straggler; already open
	}
	b.state = breakerOpen
	b.openedAt = now
	b.fails = 0
	b.opens++
	b.trips++
	b.wait = window(b.opens - 1)
	return true
}

// clearProbe releases the half-open probe slot without judging the shard
// (the probe was canceled, not answered).
func (b *breaker) clearProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// snapshot returns the state name and cumulative trip count for stats.
func (b *breaker) snapshot() (string, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}
