package shard

import (
	"context"
	"encoding/gob"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"forestview/internal/spell"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	half := func() float64 { return 0.5 } // jitter multiplier exactly 1.0
	for attempt, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, // capped
	} {
		if got := b.Delay(attempt, half); got != want {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	// Jitter spans [0.5, 1.5) of the grown delay.
	if got := b.Delay(0, func() float64 { return 0 }); got != 50*time.Millisecond {
		t.Errorf("low jitter Delay(0) = %v, want 50ms", got)
	}
	if got := b.Delay(0, func() float64 { return 0.999 }); got <= 100*time.Millisecond || got >= 150*time.Millisecond {
		t.Errorf("high jitter Delay(0) = %v, want in (100ms, 150ms)", got)
	}
	if got := b.Delay(2, nil); got != 400*time.Millisecond {
		t.Errorf("nil-rnd Delay(2) = %v, want 400ms", got)
	}
	// withDefaults fills only the zero fields.
	got := Backoff{Base: 5 * time.Millisecond}.withDefaults(defaultRetryBackoff)
	if got.Base != 5*time.Millisecond || got.Max != defaultRetryBackoff.Max || got.Factor != defaultRetryBackoff.Factor {
		t.Errorf("withDefaults = %+v", got)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	const threshold = 3
	window := func(opens int) time.Duration { return time.Duration(opens+1) * time.Second }
	now := time.Unix(1000, 0)
	b := &breaker{}

	// Closed: failures below the threshold keep attempts flowing.
	for i := 0; i < threshold-1; i++ {
		if ok, _ := b.allow(now, false); !ok {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		if tripped := b.observe(false, false, now, threshold, window); tripped {
			t.Fatalf("tripped after %d failures, threshold %d", i+1, threshold)
		}
	}
	if ok, _ := b.allow(now, false); !ok {
		t.Fatal("closed breaker refused attempt at threshold-1 failures")
	}
	if !b.observe(false, false, now, threshold, window) {
		t.Fatal("did not trip at the threshold")
	}
	if state, trips := b.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("after trip: state=%s trips=%d", state, trips)
	}

	// Open: refused inside the window, admitted as a probe after it.
	if ok, _ := b.allow(now.Add(500*time.Millisecond), false); ok {
		t.Fatal("open breaker admitted inside the window")
	}
	// A straggler failure while open neither re-trips nor extends.
	if b.observe(false, false, now.Add(100*time.Millisecond), threshold, window) {
		t.Fatal("straggler failure re-tripped an open breaker")
	}
	probeAt := now.Add(window(0))
	ok, probe := b.allow(probeAt, false)
	if !ok || !probe {
		t.Fatalf("post-window allow = (%v, %v), want probe admission", ok, probe)
	}
	if ok, _ := b.allow(probeAt, false); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe: re-open with the grown window.
	if !b.observe(false, true, probeAt, threshold, window) {
		t.Fatal("failed probe did not re-trip")
	}
	if ok, _ := b.allow(probeAt.Add(window(0)), false); ok {
		t.Fatal("admitted inside the grown window")
	}
	probeAt2 := probeAt.Add(window(1))
	if ok, probe := b.allow(probeAt2, false); !ok || !probe {
		t.Fatal("second probe refused after the grown window")
	}
	// Successful probe closes and resets the growth.
	b.observe(true, true, probeAt2, threshold, window)
	if state, trips := b.snapshot(); state != "closed" || trips != 2 {
		t.Fatalf("after successful probe: state=%s trips=%d", state, trips)
	}
	if ok, probe := b.allow(probeAt2, false); !ok || probe {
		t.Fatal("closed breaker not admitting plain attempts")
	}

	// lastResort forces admission straight through an open window.
	for i := 0; i < threshold; i++ {
		b.observe(false, false, probeAt2, threshold, window)
	}
	if ok, _ := b.allow(probeAt2, false); ok {
		t.Fatal("expected open after re-trip")
	}
	ok, probe = b.allow(probeAt2, true)
	if !ok || !probe {
		t.Fatalf("lastResort allow = (%v, %v), want forced probe", ok, probe)
	}
	// A canceled probe releases the slot without judging the shard.
	b.clearProbe()
	if ok, probe := b.allow(probeAt2, true); !ok || !probe {
		t.Fatal("probe slot not released by clearProbe")
	}
}

// TestScatterBreakerOpensOnDeadReplica kills one replica of an R=2 fleet
// and drives enough queries that its breaker trips: subsequent scatters
// skip the dead shard (breaker_skips) while every merge stays full.
func TestScatterBreakerOpensOnDeadReplica(t *testing.T) {
	f := newScatterFixtureR(t, 3, 2)
	c, servers := f.start(t, Config{Deadline: time.Second})
	servers[1].Close()

	for i := 0; i < 12; i++ {
		res, meta, err := c.SearchCtx(context.Background(), f.query, spell.Options{MaxGenes: 30})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if meta.Degraded {
			t.Fatalf("query %d degraded with a live replica per group", i)
		}
		if len(res.Datasets) == 0 {
			t.Fatalf("query %d: empty result", i)
		}
	}

	snap := c.Stats()
	var dead ShardSnapshot
	for _, s := range snap.Shards {
		if s.Addr == f.identities[1] {
			dead = s
		}
	}
	if dead.Errors == 0 {
		t.Fatal("dead shard recorded no errors")
	}
	if dead.BreakerTrips == 0 {
		t.Fatalf("dead shard breaker never tripped: %+v", dead)
	}
	if dead.BreakerSkips == 0 {
		t.Fatalf("open breaker never skipped an attempt: %+v", dead)
	}
	if dead.Breaker != "open" && dead.Breaker != "half-open" {
		t.Fatalf("dead shard breaker state = %q", dead.Breaker)
	}
}

// TestInfoFailureCooldownOption pins the satellite bugfix: the cooldown is
// configurable (not a hard-coded 15s), a negative value disables it, and
// the first successful round clears the failure state.
func TestInfoFailureCooldownOption(t *testing.T) {
	var probes atomic.Int64
	var healthy atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc(InfoPath, func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = gob.NewEncoder(w).Encode(Info{
			Datasets: 1, GeneIDs: []string{"g1"},
			DatasetIDs: []string{"d1"}, AllDatasetIDs: []string{"d1"},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const cooldown = 120 * time.Millisecond
	c, err := NewCoordinator(Config{
		Shards:              []string{"s0"},
		Resolve:             func(string) string { return srv.URL },
		Deadline:            time.Second,
		InfoFailureCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("Info succeeded against a sick shard")
	}
	n := probes.Load()
	if n == 0 {
		t.Fatal("no probe issued")
	}
	// Inside the window: cached error, no new probe.
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("Info succeeded from inside the cooldown")
	}
	if got := probes.Load(); got != n {
		t.Fatalf("probe inside the cooldown window: %d -> %d", n, got)
	}
	// After the window: a fresh probe round.
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("Info succeeded against a still-sick shard")
	}
	if got := probes.Load(); got == n {
		t.Fatal("cooldown expiry did not re-probe")
	}

	// First success clears the failure state entirely.
	healthy.Store(true)
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatalf("Info after recovery: %v", err)
	}
	c.infoMu.Lock()
	cleared := c.infoErr == nil && c.infoFailedAt.IsZero()
	c.infoMu.Unlock()
	if !cleared {
		t.Fatal("success did not clear the info failure state")
	}

	// Negative cooldown disables the guard: consecutive failures re-probe.
	c2, err := NewCoordinator(Config{
		Shards:              []string{"s0"},
		Resolve:             func(string) string { return srv.URL },
		Deadline:            time.Second,
		InfoFailureCooldown: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy.Store(false)
	before := probes.Load()
	for i := 0; i < 2; i++ {
		if _, err := c2.Info(context.Background()); err == nil {
			t.Fatal("Info succeeded against a sick shard")
		}
	}
	if got := probes.Load(); got != before+2 {
		t.Fatalf("disabled cooldown issued %d probes, want 2", got-before)
	}
}

// TestOrderReplicasDrainingLast pins the drain demotion: a draining
// replica is ordered last regardless of p2c, and clearing the mark
// restores it to the candidate pool.
func TestOrderReplicasDrainingLast(t *testing.T) {
	c, err := NewCoordinator(Config{Shards: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	owners := []string{"a", "b", "c"}
	c.SetDraining("b", true)
	for i := 0; i < 8; i++ {
		got := c.orderReplicas(owners)
		if got[len(got)-1] != "b" {
			t.Fatalf("draining replica not last: %v", got)
		}
	}
	if got := c.DrainingShards(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("DrainingShards = %v", got)
	}
	c.SetDraining("b", false)
	seen := false
	for i := 0; i < 16 && !seen; i++ {
		got := c.orderReplicas(owners)
		seen = got[0] == "b" || got[1] == "b"
	}
	if !seen {
		t.Fatal("undrained replica never returned to the candidate pool")
	}
}
