package shard

import "testing"

func TestMembershipLifecycle(t *testing.T) {
	m, err := NewMembership([]string{" a:1 ", "b:1/"})
	if err != nil {
		t.Fatal(err)
	}
	shards, gen := m.Snapshot()
	if len(shards) != 2 || shards[0] != "a:1" || shards[1] != "b:1" {
		t.Fatalf("normalized identities: %v", shards)
	}
	if gen != Generation([]string{"a:1", "b:1"}) {
		t.Fatal("generation does not fingerprint the normalized list")
	}
	if m.Bumps() != 0 {
		t.Fatalf("bumps = %d at boot", m.Bumps())
	}

	// Add: list grows, generation changes, bump counted.
	added, gen2, err := m.Add("c:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || gen2 == gen || m.Bumps() != 1 {
		t.Fatalf("add: %v gen %d->%d bumps %d", added, gen, gen2, m.Bumps())
	}
	if _, _, err := m.Add("c:1"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if _, _, err := m.Add("  "); err == nil {
		t.Fatal("blank add accepted")
	}

	// Remove: symmetric, and the identity is normalized before matching.
	removed, gen3, err := m.Remove("c:1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || gen3 != gen || m.Bumps() != 2 {
		t.Fatalf("remove: %v gen %d (boot %d) bumps %d", removed, gen3, gen, m.Bumps())
	}
	if _, _, err := m.Remove("nope:1"); err == nil {
		t.Fatal("unknown remove accepted")
	}

	// The fleet can never be emptied.
	if _, _, err := m.Remove("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Remove("b:1"); err == nil {
		t.Fatal("last member removed")
	}
}

func TestNewMembershipValidation(t *testing.T) {
	if _, err := NewMembership(nil); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := NewMembership([]string{"a:1", "a:1/"}); err == nil {
		t.Fatal("duplicate identities accepted")
	}
	if _, err := NewMembership([]string{" "}); err == nil {
		t.Fatal("blank identity accepted")
	}
}
