package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Membership owns a fleet's live shard list behind a generation counter.
// Every consumer — ownership derivation, scatter fan-out, cache keys —
// reads a consistent (shards, generation) pair from Snapshot; Add and
// Remove bump the generation, which re-derives ownership on the next
// scatter (groups are a pure function of the list) and makes every cache
// entry keyed under the old generation unreachable.
//
// Shard identity is the listed string exactly as configured (trimmed of
// whitespace and a trailing slash): it is the rendezvous-hash participant,
// so the coordinator's list entries must be byte-identical to the shard
// daemons' -shards entries or the two sides derive different ownership.
// Turning an identity into a dial address is the resolver's job
// (Config.Resolve), not membership's.
type Membership struct {
	mu     sync.Mutex
	shards []string
	gen    uint64
	bumps  int64
}

// normalizeIdentity canonicalizes one shard identity.
func normalizeIdentity(s string) string {
	return strings.TrimRight(strings.TrimSpace(s), "/")
}

// normalizeIdentities validates and canonicalizes a whole shard list.
func normalizeIdentities(shards []string) ([]string, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: no shard backends configured")
	}
	out := make([]string, len(shards))
	seen := make(map[string]bool, len(shards))
	for i, s := range shards {
		s = normalizeIdentity(s)
		if s == "" {
			return nil, errors.New("shard: empty shard address")
		}
		if seen[s] {
			return nil, fmt.Errorf("shard: duplicate shard address %s", s)
		}
		seen[s] = true
		out[i] = s
	}
	return out, nil
}

// NewMembership validates the initial shard list.
func NewMembership(shards []string) (*Membership, error) {
	normalized, err := normalizeIdentities(shards)
	if err != nil {
		return nil, err
	}
	return &Membership{shards: normalized, gen: Generation(normalized)}, nil
}

// Snapshot returns the live shard list (a copy) and the generation it
// belongs to, atomically.
func (m *Membership) Snapshot() ([]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.shards...), m.gen
}

// Generation returns the current topology fingerprint.
func (m *Membership) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Bumps counts membership changes since boot (admin adds and removes).
func (m *Membership) Bumps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bumps
}

// Add appends a shard to the live list and bumps the generation. The new
// shard starts taking ownership on the next scatter.
func (m *Membership) Add(shard string) ([]string, uint64, error) {
	shard = normalizeIdentity(shard)
	if shard == "" {
		return nil, 0, errors.New("shard: empty shard address")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.shards {
		if s == shard {
			return nil, 0, fmt.Errorf("shard: %s is already a member", shard)
		}
	}
	m.shards = append(m.shards, shard)
	m.gen = Generation(m.shards)
	m.bumps++
	return append([]string(nil), m.shards...), m.gen, nil
}

// Set replaces the live list wholesale and bumps the generation (a no-op
// when the normalized list is byte-identical). Rolling operations drive it
// on the shard side: the operator ships one authoritative post-change
// list, instead of sequencing add/remove deltas whose intermediate
// generations nobody will ever serve under.
func (m *Membership) Set(shards []string) ([]string, uint64, error) {
	normalized, err := normalizeIdentities(shards)
	if err != nil {
		return nil, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	same := len(normalized) == len(m.shards)
	for i := 0; same && i < len(normalized); i++ {
		same = normalized[i] == m.shards[i]
	}
	if !same {
		m.shards = normalized
		m.gen = Generation(normalized)
		m.bumps++
	}
	return append([]string(nil), m.shards...), m.gen, nil
}

// Remove drops a shard from the live list and bumps the generation: no
// further scatter touches it, so once its in-flight partials finish the
// shard can exit (its daemon's SIGTERM drain covers those). The last
// member cannot be removed — an empty fleet serves nothing.
func (m *Membership) Remove(shard string) ([]string, uint64, error) {
	shard = normalizeIdentity(shard)
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.shards {
		if s != shard {
			continue
		}
		if len(m.shards) == 1 {
			return nil, 0, errors.New("shard: cannot remove the last member of the fleet")
		}
		m.shards = append(m.shards[:i], m.shards[i+1:]...)
		m.gen = Generation(m.shards)
		m.bumps++
		return append([]string(nil), m.shards...), m.gen, nil
	}
	return nil, 0, fmt.Errorf("shard: %s is not a member", shard)
}
