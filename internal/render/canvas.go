// Package render is the headless rendering engine of the ForestView
// reproduction. The paper's system drew to Java2D surfaces spanning a
// projector wall; Go has no comparable interactive toolkit (a gate noted in
// the reproduction brief), so every view renders into an in-memory RGBA
// framebuffer instead. Pixels are pixels: resolution, layout, color mapping
// and render latency — the properties the paper's claims rest on — are all
// preserved, and the framebuffers can be written out as PNG or shipped to
// the simulated display wall.
package render

import (
	"image"
	"image/color"
)

// Canvas wraps an RGBA framebuffer with the small set of drawing
// primitives the views need. All operations clip to the canvas bounds.
//
// A canvas may carry a translation (see Translated): drawing at (x, y)
// lands at (x+offX, y+offY) in the framebuffer. Display-wall tiles use this
// to render their viewport of a wall-sized scene with ordinary scene
// coordinates — pixels outside the tile simply clip away.
type Canvas struct {
	img        *image.RGBA
	offX, offY int
}

// NewCanvas allocates a w×h canvas cleared to the given background.
func NewCanvas(w, h int, bg color.Color) *Canvas {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	c := &Canvas{img: image.NewRGBA(image.Rect(0, 0, w, h))}
	c.Fill(bg)
	return c
}

// FromImage wraps an existing RGBA image (shared, not copied).
func FromImage(img *image.RGBA) *Canvas { return &Canvas{img: img} }

// Image returns the underlying image (shared).
func (c *Canvas) Image() *image.RGBA { return c.img }

// Width and Height return the canvas dimensions.
func (c *Canvas) Width() int  { return c.img.Bounds().Dx() }
func (c *Canvas) Height() int { return c.img.Bounds().Dy() }

// Fill paints the whole underlying framebuffer, regardless of translation.
func (c *Canvas) Fill(col color.Color) {
	b := c.img.Bounds()
	c.FillRect(b.Min.X-c.offX, b.Min.Y-c.offY, b.Dx(), b.Dy(), col)
}

// Translated returns a view of the same framebuffer whose origin is
// shifted by (dx, dy): drawing at scene coordinates lands dx/dy further
// into the buffer. Tiles render with Translated(-viewport.X, -viewport.Y).
func (c *Canvas) Translated(dx, dy int) *Canvas {
	return &Canvas{img: c.img, offX: c.offX + dx, offY: c.offY + dy}
}

// ClipBounds returns the writable region in logical (translated)
// coordinates. Renderers with per-pixel loops consult it to skip regions
// that would clip away anyway — the mechanism that lets a wall tile render
// only its own window of a wall-sized scene.
func (c *Canvas) ClipBounds() Rect {
	b := c.img.Bounds()
	return Rect{X: b.Min.X - c.offX, Y: b.Min.Y - c.offY, W: b.Dx(), H: b.Dy()}
}

// Set writes one pixel, silently clipping out-of-bounds writes.
func (c *Canvas) Set(x, y int, col color.Color) {
	x, y = x+c.offX, y+c.offY
	if !(image.Point{X: x, Y: y}).In(c.img.Bounds()) {
		return
	}
	c.img.Set(x, y, col)
}

// At reads one pixel; out-of-bounds reads return opaque black.
func (c *Canvas) At(x, y int) color.RGBA {
	x, y = x+c.offX, y+c.offY
	if !(image.Point{X: x, Y: y}).In(c.img.Bounds()) {
		return color.RGBA{A: 255}
	}
	return c.img.RGBAAt(x, y)
}

// FillRect fills the axis-aligned rectangle with origin (x,y).
func (c *Canvas) FillRect(x, y, w, h int, col color.Color) {
	x, y = x+c.offX, y+c.offY
	r := image.Rect(x, y, x+w, y+h).Intersect(c.img.Bounds())
	if r.Empty() {
		return
	}
	rgba := color.RGBAModel.Convert(col).(color.RGBA)
	for yy := r.Min.Y; yy < r.Max.Y; yy++ {
		base := c.img.PixOffset(r.Min.X, yy)
		for xx := r.Min.X; xx < r.Max.X; xx++ {
			c.img.Pix[base] = rgba.R
			c.img.Pix[base+1] = rgba.G
			c.img.Pix[base+2] = rgba.B
			c.img.Pix[base+3] = rgba.A
			base += 4
		}
	}
}

// StrokeRect draws a 1-pixel rectangle outline.
func (c *Canvas) StrokeRect(x, y, w, h int, col color.Color) {
	if w <= 0 || h <= 0 {
		return
	}
	c.HLine(x, x+w-1, y, col)
	c.HLine(x, x+w-1, y+h-1, col)
	c.VLine(x, y, y+h-1, col)
	c.VLine(x+w-1, y, y+h-1, col)
}

// HLine draws a horizontal line from x0 to x1 inclusive at row y.
func (c *Canvas) HLine(x0, x1, y int, col color.Color) {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	c.FillRect(x0, y, x1-x0+1, 1, col)
}

// VLine draws a vertical line from y0 to y1 inclusive at column x.
func (c *Canvas) VLine(x, y0, y1 int, col color.Color) {
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	c.FillRect(x, y0, 1, y1-y0+1, col)
}

// Line draws an arbitrary segment with Bresenham's algorithm.
func (c *Canvas) Line(x0, y0, x1, y1 int, col color.Color) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// Blit copies src onto the canvas with its top-left corner at (x, y).
func (c *Canvas) Blit(src *image.RGBA, x, y int) {
	sb := src.Bounds()
	x, y = x+c.offX, y+c.offY
	b := c.img.Bounds()
	for yy := 0; yy < sb.Dy(); yy++ {
		dy := y + yy
		if dy < b.Min.Y || dy >= b.Max.Y {
			continue
		}
		for xx := 0; xx < sb.Dx(); xx++ {
			dx := x + xx
			if dx < b.Min.X || dx >= b.Max.X {
				continue
			}
			c.img.SetRGBA(dx, dy, src.RGBAAt(sb.Min.X+xx, sb.Min.Y+yy))
		}
	}
}

// SubImage returns the rectangle of the canvas as a standalone copy.
func (c *Canvas) SubImage(x, y, w, h int) *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			out.SetRGBA(xx, yy, c.At(x+xx, y+yy))
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is an integer viewport used by the view renderers.
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the point lies inside the rect.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}
