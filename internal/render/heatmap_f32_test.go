package render

import (
	"image/color"
	"math"
	"math/rand"
	"testing"
)

func synthRows(nR, nC int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, nR)
	for i := range rows {
		row := make([]float64, nC)
		for c := range row {
			if rng.Intn(17) == 0 {
				row[c] = math.NaN()
			} else {
				row[c] = rng.NormFloat64() * 2
			}
		}
		rows[i] = row
	}
	return rows
}

func toF32(rows [][]float64) [][]float32 {
	out := make([][]float32, len(rows))
	for i, row := range rows {
		r := make([]float32, len(row))
		for c, v := range row {
			r[c] = float32(v)
		}
		out[i] = r
	}
	return out
}

// TestRenderHeatmapF32Parity: rendering the float32 conversion of a slab
// must agree with the float64 render within one count per color channel
// (float32 relative error 2^-23 perturbs the value-to-color ramp by at
// most one quantization step), in both the global and zoom regimes.
func TestRenderHeatmapF32Parity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nR, h int
	}{
		{"global", 512, 64},
		{"zoom", 16, 64},
	} {
		rows := synthRows(tc.nR, 20, 7)
		opt := HeatmapOptions{ColorMap: GreenBlackRed, Limit: 2, CellBorder: true}
		c64 := NewCanvas(80, tc.h, color.RGBA{A: 255})
		RenderHeatmap(c64, Rect{X: 0, Y: 0, W: 80, H: tc.h}, rows, opt)
		c32 := NewCanvas(80, tc.h, color.RGBA{A: 255})
		RenderHeatmapF32(c32, Rect{X: 0, Y: 0, W: 80, H: tc.h}, toF32(rows), opt)
		for y := 0; y < tc.h; y++ {
			for x := 0; x < 80; x++ {
				r64, g64, b64, _ := c64.Image().At(x, y).RGBA()
				r32, g32, b32, _ := c32.Image().At(x, y).RGBA()
				if chanDiff(r64, r32) > 1 || chanDiff(g64, g32) > 1 || chanDiff(b64, b32) > 1 {
					t.Fatalf("%s: pixel (%d,%d) diverged beyond 1 channel count: %v vs %v",
						tc.name, x, y, c64.Image().At(x, y), c32.Image().At(x, y))
				}
			}
		}
	}
}

func chanDiff(a, b uint32) uint32 {
	a >>= 8
	b >>= 8
	if a > b {
		return a - b
	}
	return b - a
}

// TestRenderHeatmapColOrder: a column permutation must move whole columns,
// pixel-exactly, in the zoom regime.
func TestRenderHeatmapColOrder(t *testing.T) {
	rows := synthRows(8, 4, 11)
	opt := HeatmapOptions{ColorMap: GreenBlackRed, Limit: 2}
	direct := NewCanvas(40, 40, color.RGBA{A: 255})
	RenderHeatmap(direct, Rect{X: 0, Y: 0, W: 40, H: 40}, rows, opt)

	order := []int{3, 2, 1, 0}
	permuted := NewCanvas(40, 40, color.RGBA{A: 255})
	opt.ColOrder = order
	RenderHeatmap(permuted, Rect{X: 0, Y: 0, W: 40, H: 40}, rows, opt)

	// Display column j of the permuted render == display column order[j]
	// of the direct render (both 10px wide here).
	for j, dc := range order {
		for y := 0; y < 40; y++ {
			for dx := 0; dx < 10; dx++ {
				got := permuted.Image().At(j*10+dx, y)
				want := direct.Image().At(dc*10+dx, y)
				if got != want {
					t.Fatalf("display col %d px (%d,%d): got %v, want %v", j, dx, y, got, want)
				}
			}
		}
	}
}
