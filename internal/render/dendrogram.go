package render

import (
	"image/color"
	"math"

	"forestview/internal/cluster"
)

// Orientation places a dendrogram relative to its heatmap.
type Orientation int

const (
	// LeftOfRows draws the gene tree to the left, leaves pointing right.
	LeftOfRows Orientation = iota
	// AboveColumns draws the array tree on top, leaves pointing down.
	AboveColumns
)

// RenderDendrogram draws the tree into rect. Leaves line up with the
// heatmap rows (or columns) they index: leaf i sits at the center of band i
// of the rect's leaf axis, in *leaf order* (the caller renders the heatmap
// in the same order). Merge heights map linearly onto the depth axis, root
// at the far edge.
func RenderDendrogram(c *Canvas, r Rect, t *cluster.Tree, o Orientation, fg color.Color) {
	if t == nil || t.NLeaves == 0 {
		return
	}
	RenderDendrogramOrdered(c, r, t, t.LeafOrder(), o, fg)
}

// RenderDendrogramOrdered is RenderDendrogram for a precomputed display
// order: band i of the leaf axis holds leaf order[i]. Servers that cache
// clustered trees pass the pane's DisplayOrder here, so the brackets line
// up with the heatmap rows even when an optimized (Gruvaeus-Wainer
// reoriented) order is installed — any orientation of the tree's merges is
// drawable without crossings, and recomputing LeafOrder per tile is
// avoided. order must be a permutation of the leaves; mismatched lengths
// draw nothing.
func RenderDendrogramOrdered(c *Canvas, r Rect, t *cluster.Tree, order []int, o Orientation, fg color.Color) {
	if t == nil || t.NLeaves == 0 || len(order) != t.NLeaves || r.W <= 0 || r.H <= 0 {
		return
	}
	leafBand := make(map[int]int, len(order)) // leaf -> band index in display order
	for band, leaf := range order {
		leafBand[leaf] = band
	}
	n := t.NLeaves
	// Height scale: root (max height) at depth 0 of the rect, leaves at
	// the heatmap edge.
	maxH := 0.0
	for _, m := range t.Merges {
		if m.Height > maxH {
			maxH = m.Height
		}
	}
	if maxH == 0 {
		maxH = 1
	}

	// Positions along the leaf axis (pixel centers) and depth axis.
	leafPos := func(band int) int {
		if o == LeftOfRows {
			return r.Y + (2*band+1)*r.H/(2*n)
		}
		return r.X + (2*band+1)*r.W/(2*n)
	}
	depthPos := func(h float64) int {
		frac := h / maxH
		if frac > 1 {
			frac = 1
		}
		if o == LeftOfRows {
			// Leaves at right edge, root at left edge.
			return r.X + r.W - 1 - int(math.Round(frac*float64(r.W-1)))
		}
		return r.Y + r.H - 1 - int(math.Round(frac*float64(r.H-1)))
	}

	// Compute each node's position: leaves at depth 0, internal nodes at
	// their merge height, centered between children along the leaf axis.
	type pt struct{ leafAxis, depthAxis int }
	pos := make([]pt, n+len(t.Merges))
	for leaf := 0; leaf < n; leaf++ {
		pos[leaf] = pt{leafAxis: leafPos(leafBand[leaf]), depthAxis: depthPos(0)}
	}
	for i, m := range t.Merges {
		a, b := pos[m.A], pos[m.B]
		d := depthPos(m.Height)
		node := pt{leafAxis: (a.leafAxis + b.leafAxis) / 2, depthAxis: d}
		pos[n+i] = node
		// Draw the bracket: two legs from children up to the merge depth,
		// one rung connecting them.
		if o == LeftOfRows {
			c.HLine(d, a.depthAxis, a.leafAxis, fg)
			c.HLine(d, b.depthAxis, b.leafAxis, fg)
			c.VLine(d, a.leafAxis, b.leafAxis, fg)
		} else {
			c.VLine(a.leafAxis, d, a.depthAxis, fg)
			c.VLine(b.leafAxis, d, b.depthAxis, fg)
			c.HLine(a.leafAxis, b.leafAxis, d, fg)
		}
	}
}
