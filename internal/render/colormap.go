package render

import (
	"image/color"
	"math"
)

// ColorMap converts a log-ratio expression value into a display color. The
// classic microarray convention is green (repressed) through black
// (unchanged) to red (induced); TreeView also offered blue-yellow for the
// red/green color-blind. Missing values render as neutral gray, visually
// distinct from "measured as zero".
type ColorMap int

const (
	// GreenBlackRed is the Eisen heatmap standard.
	GreenBlackRed ColorMap = iota
	// BlueYellow maps low to blue, high to yellow through black.
	BlueYellow
	// Grayscale maps low to black, high to white (useful for print).
	Grayscale
)

// MissingColor is the color of unmeasured cells.
var MissingColor = color.RGBA{R: 120, G: 120, B: 120, A: 255}

// String names the colormap.
func (m ColorMap) String() string {
	switch m {
	case GreenBlackRed:
		return "green-black-red"
	case BlueYellow:
		return "blue-black-yellow"
	case Grayscale:
		return "grayscale"
	default:
		return "unknown"
	}
}

// Map converts value v to a color, saturating at ±limit. NaN maps to
// MissingColor. limit must be positive; a non-positive limit defaults to 2
// (±2 log2 units ≈ 4-fold change, TreeView's default contrast).
func (m ColorMap) Map(v, limit float64) color.RGBA {
	if math.IsNaN(v) {
		return MissingColor
	}
	if limit <= 0 {
		limit = 2
	}
	t := v / limit
	if t > 1 {
		t = 1
	}
	if t < -1 {
		t = -1
	}
	mag := uint8(math.Round(math.Abs(t) * 255))
	switch m {
	case BlueYellow:
		if t >= 0 {
			return color.RGBA{R: mag, G: mag, B: 0, A: 255}
		}
		return color.RGBA{R: 0, G: 0, B: mag, A: 255}
	case Grayscale:
		g := uint8(math.Round((t + 1) / 2 * 255))
		return color.RGBA{R: g, G: g, B: g, A: 255}
	default: // GreenBlackRed
		if t >= 0 {
			return color.RGBA{R: mag, G: 0, B: 0, A: 255}
		}
		return color.RGBA{R: 0, G: mag, B: 0, A: 255}
	}
}

// Legend renders a horizontal color scale with tick labels into the rect,
// used by pane footers.
func (m ColorMap) Legend(c *Canvas, r Rect, limit float64, fg color.Color) {
	if r.W <= 0 || r.H <= 0 {
		return
	}
	barH := r.H
	if barH > 10 {
		barH = r.H - TextHeight(1) - 2
	}
	for x := 0; x < r.W; x++ {
		t := (float64(x)/float64(maxInt(r.W-1, 1)))*2 - 1
		col := m.Map(t*limit, limit)
		c.VLine(r.X+x, r.Y, r.Y+barH-1, col)
	}
	if r.H > 10 {
		c.DrawText(r.X, r.Y+barH+2, formatLimit(-limit), 1, fg)
		mid := "0"
		c.DrawText(r.X+r.W/2-TextWidth(mid, 1)/2, r.Y+barH+2, mid, 1, fg)
		right := formatLimit(limit)
		c.DrawText(r.X+r.W-TextWidth(right, 1), r.Y+barH+2, right, 1, fg)
	}
}

func formatLimit(v float64) string {
	// One decimal is plenty for a legend label.
	neg := v < 0
	if neg {
		v = -v
	}
	whole := int(v)
	tenth := int(math.Round((v - float64(whole)) * 10))
	if tenth == 10 {
		whole++
		tenth = 0
	}
	s := itoa(whole) + "." + itoa(tenth)
	if neg {
		return "-" + s
	}
	return s
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
