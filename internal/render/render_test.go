package render

import (
	"bytes"
	"image/color"
	"math"
	"os"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/golem"
	"forestview/internal/ontology"
)

var (
	black = color.RGBA{A: 255}
	white = color.RGBA{R: 255, G: 255, B: 255, A: 255}
	red   = color.RGBA{R: 255, A: 255}
)

func TestCanvasBasics(t *testing.T) {
	c := NewCanvas(10, 5, black)
	if c.Width() != 10 || c.Height() != 5 {
		t.Fatalf("dims = %dx%d", c.Width(), c.Height())
	}
	c.Set(3, 2, red)
	if got := c.At(3, 2); got != red {
		t.Fatalf("At(3,2) = %v", got)
	}
	// Out-of-bounds access must not panic and reads return black.
	c.Set(-1, 0, red)
	c.Set(100, 100, red)
	if got := c.At(-5, -5); got != black {
		t.Fatalf("OOB read = %v", got)
	}
}

func TestCanvasNegativeDims(t *testing.T) {
	c := NewCanvas(-3, -3, black)
	if c.Width() != 0 || c.Height() != 0 {
		t.Fatalf("negative dims should clamp to 0: %dx%d", c.Width(), c.Height())
	}
}

func TestFillRectClips(t *testing.T) {
	c := NewCanvas(4, 4, black)
	c.FillRect(2, 2, 10, 10, red)
	if c.At(3, 3) != red {
		t.Fatal("in-bounds corner not filled")
	}
	if c.At(1, 1) != black {
		t.Fatal("outside region filled")
	}
}

func TestLines(t *testing.T) {
	c := NewCanvas(10, 10, black)
	c.HLine(2, 7, 5, red)
	for x := 2; x <= 7; x++ {
		if c.At(x, 5) != red {
			t.Fatalf("HLine missing pixel at %d", x)
		}
	}
	c.VLine(3, 1, 4, red)
	for y := 1; y <= 4; y++ {
		if c.At(3, y) != red {
			t.Fatalf("VLine missing pixel at %d", y)
		}
	}
	// Reversed coordinates still work.
	c2 := NewCanvas(10, 10, black)
	c2.HLine(7, 2, 5, red)
	if c2.At(2, 5) != red || c2.At(7, 5) != red {
		t.Fatal("reversed HLine broken")
	}
}

func TestBresenhamDiagonal(t *testing.T) {
	c := NewCanvas(10, 10, black)
	c.Line(0, 0, 9, 9, red)
	for i := 0; i < 10; i++ {
		if c.At(i, i) != red {
			t.Fatalf("diagonal missing pixel at %d", i)
		}
	}
	// Endpoints of arbitrary lines are always drawn.
	c.Line(9, 0, 0, 5, white)
	if c.At(9, 0) != white || c.At(0, 5) != white {
		t.Fatal("line endpoints missing")
	}
}

func TestStrokeRect(t *testing.T) {
	c := NewCanvas(10, 10, black)
	c.StrokeRect(1, 1, 5, 4, red)
	if c.At(1, 1) != red || c.At(5, 1) != red || c.At(1, 4) != red || c.At(5, 4) != red {
		t.Fatal("outline corners missing")
	}
	if c.At(3, 2) != black {
		t.Fatal("outline filled interior")
	}
}

func TestBlitAndSubImage(t *testing.T) {
	src := NewCanvas(3, 3, red)
	dst := NewCanvas(10, 10, black)
	dst.Blit(src.Image(), 4, 4)
	if dst.At(4, 4) != red || dst.At(6, 6) != red {
		t.Fatal("blit missing")
	}
	if dst.At(3, 3) != black || dst.At(7, 7) != black {
		t.Fatal("blit out of place")
	}
	sub := dst.SubImage(4, 4, 3, 3)
	if sub.RGBAAt(0, 0) != red {
		t.Fatal("SubImage content wrong")
	}
	// Blit with negative origin clips.
	dst.Blit(src.Image(), -1, -1)
	if dst.At(0, 0) != red {
		t.Fatal("clipped blit should still draw visible part")
	}
}

func TestTextMetricsAndRendering(t *testing.T) {
	if w := TextWidth("ABC", 1); w != 3*6-1 {
		t.Fatalf("TextWidth = %d", w)
	}
	if w := TextWidth("", 1); w != 0 {
		t.Fatalf("empty TextWidth = %d", w)
	}
	if h := TextHeight(2); h != 14 {
		t.Fatalf("TextHeight = %d", h)
	}
	c := NewCanvas(40, 10, black)
	c.DrawText(0, 0, "A", 1, white)
	// 'A' has its crossbar on row 3: pixels at (1..3, 3).
	if c.At(1, 3) != white || c.At(2, 3) != white || c.At(3, 3) != white {
		t.Fatal("glyph A crossbar missing")
	}
	if c.At(0, 0) != black {
		t.Fatal("glyph A corner should be empty")
	}
	// Lowercase folds to uppercase: identical rendering.
	cl := NewCanvas(40, 10, black)
	cl.DrawText(0, 0, "a", 1, white)
	for y := 0; y < 7; y++ {
		for x := 0; x < 5; x++ {
			if c.At(x, y) != cl.At(x, y) {
				t.Fatal("lowercase differs from uppercase")
			}
		}
	}
}

func TestTextScale(t *testing.T) {
	c := NewCanvas(40, 20, black)
	c.DrawText(0, 0, "I", 2, white)
	// Scaled glyph occupies 2x2 blocks; top bar of 'I' spans columns 2..6
	// at scale 1, so at scale 2 pixels (4..13, 0..1) include white.
	found := false
	for x := 0; x < 14; x++ {
		if c.At(x, 1) == white {
			found = true
		}
	}
	if !found {
		t.Fatal("scaled glyph missing")
	}
}

func TestTextUnknownRune(t *testing.T) {
	c := NewCanvas(10, 10, black)
	c.DrawText(0, 0, "é", 1, white) // é falls back to '?'
	nonBlack := 0
	for y := 0; y < 7; y++ {
		for x := 0; x < 5; x++ {
			if c.At(x, y) != black {
				nonBlack++
			}
		}
	}
	if nonBlack == 0 {
		t.Fatal("unknown rune rendered nothing")
	}
}

func TestDrawTextClipped(t *testing.T) {
	c := NewCanvas(100, 10, black)
	c.DrawTextClipped(0, 0, "ABCDEFG", 1, 12, white) // fits 2 glyphs
	// Third glyph cell (x = 12..16) must stay empty.
	for x := 12; x < 17; x++ {
		for y := 0; y < 7; y++ {
			if c.At(x, y) != black {
				t.Fatalf("clipped text leaked at %d,%d", x, y)
			}
		}
	}
}

func TestColorMapBasics(t *testing.T) {
	m := GreenBlackRed
	if got := m.Map(0, 2); got != black {
		t.Fatalf("zero maps to %v", got)
	}
	if got := m.Map(2, 2); (got != color.RGBA{R: 255, A: 255}) {
		t.Fatalf("+limit maps to %v", got)
	}
	if got := m.Map(-2, 2); (got != color.RGBA{G: 255, A: 255}) {
		t.Fatalf("-limit maps to %v", got)
	}
	// Saturation beyond the limit.
	if m.Map(99, 2) != m.Map(2, 2) {
		t.Fatal("overshoot should saturate")
	}
	if got := m.Map(math.NaN(), 2); got != MissingColor {
		t.Fatalf("NaN maps to %v", got)
	}
	// Non-positive limit defaults instead of dividing by zero.
	if got := m.Map(1, 0); got.R == 0 {
		t.Fatalf("zero limit fallback broken: %v", got)
	}
}

func TestColorMapVariants(t *testing.T) {
	if got := BlueYellow.Map(-2, 2); (got != color.RGBA{B: 255, A: 255}) {
		t.Fatalf("BlueYellow low = %v", got)
	}
	if got := BlueYellow.Map(2, 2); (got != color.RGBA{R: 255, G: 255, A: 255}) {
		t.Fatalf("BlueYellow high = %v", got)
	}
	if got := Grayscale.Map(2, 2); got.R != 255 || got.G != 255 || got.B != 255 {
		t.Fatalf("Grayscale high = %v", got)
	}
	if got := Grayscale.Map(-2, 2); got.R != 0 {
		t.Fatalf("Grayscale low = %v", got)
	}
	for _, m := range []ColorMap{GreenBlackRed, BlueYellow, Grayscale} {
		if m.String() == "unknown" {
			t.Fatal("named colormap reports unknown")
		}
	}
}

func TestColorMapMonotoneIntensity(t *testing.T) {
	m := GreenBlackRed
	prev := -1
	for v := 0.0; v <= 2.0; v += 0.1 {
		r := int(m.Map(v, 2).R)
		if r < prev {
			t.Fatalf("red channel not monotone at %v", v)
		}
		prev = r
	}
}

func TestLegend(t *testing.T) {
	c := NewCanvas(100, 20, black)
	GreenBlackRed.Legend(c, Rect{X: 0, Y: 0, W: 100, H: 20}, 2, white)
	// Left end green-ish, right end red-ish, middle dark.
	if l := c.At(0, 0); l.G == 0 {
		t.Fatalf("legend left = %v", l)
	}
	if r := c.At(99, 0); r.R == 0 {
		t.Fatalf("legend right = %v", r)
	}
}

func TestRenderHeatmapZoom(t *testing.T) {
	rows := [][]float64{
		{2, -2},
		{-2, 2},
	}
	c := NewCanvas(20, 20, black)
	RenderHeatmap(c, Rect{X: 0, Y: 0, W: 20, H: 20}, rows, HeatmapOptions{
		ColorMap: GreenBlackRed, Limit: 2,
	})
	// Top-left quadrant red, top-right green, bottom-left green...
	if got := c.At(5, 5); got.R != 255 || got.G != 0 {
		t.Fatalf("TL = %v", got)
	}
	if got := c.At(15, 5); got.G != 255 || got.R != 0 {
		t.Fatalf("TR = %v", got)
	}
	if got := c.At(5, 15); got.G != 255 {
		t.Fatalf("BL = %v", got)
	}
	if got := c.At(15, 15); got.R != 255 {
		t.Fatalf("BR = %v", got)
	}
}

func TestRenderHeatmapMissing(t *testing.T) {
	rows := [][]float64{{math.NaN()}}
	c := NewCanvas(4, 4, black)
	RenderHeatmap(c, Rect{X: 0, Y: 0, W: 4, H: 4}, rows, HeatmapOptions{ColorMap: GreenBlackRed, Limit: 2})
	if got := c.At(2, 2); got != MissingColor {
		t.Fatalf("missing cell = %v", got)
	}
}

func TestRenderHeatmapGlobalAggregation(t *testing.T) {
	// 100 rows into 10 pixel rows: every pixel row aggregates 10 rows.
	rows := make([][]float64, 100)
	for i := range rows {
		v := 2.0
		if i >= 50 {
			v = -2.0
		}
		rows[i] = []float64{v}
	}
	c := NewCanvas(1, 10, black)
	RenderHeatmap(c, Rect{X: 0, Y: 0, W: 1, H: 10}, rows, HeatmapOptions{ColorMap: GreenBlackRed, Limit: 2})
	if got := c.At(0, 0); got.R != 255 {
		t.Fatalf("top strip = %v", got)
	}
	if got := c.At(0, 9); got.G != 255 {
		t.Fatalf("bottom strip = %v", got)
	}
}

func TestRenderHeatmapHighlight(t *testing.T) {
	rows := [][]float64{{0}, {0}, {0}, {0}}
	c := NewCanvas(20, 8, black)
	RenderHeatmap(c, Rect{X: 0, Y: 0, W: 20, H: 8}, rows, HeatmapOptions{
		ColorMap: GreenBlackRed, Limit: 2,
		Highlight: map[int]bool{1: true},
	})
	// Row 1 occupies pixel rows 2-3; highlight marker at left edge.
	if got := c.At(0, 2); got != white {
		t.Fatalf("highlight marker = %v", got)
	}
	if got := c.At(0, 0); got == white {
		t.Fatal("unhighlighted row has marker")
	}
}

func TestRenderHeatmapEmpty(t *testing.T) {
	c := NewCanvas(5, 5, black)
	RenderHeatmap(c, Rect{W: 5, H: 5}, nil, HeatmapOptions{})
	RenderHeatmap(c, Rect{W: 0, H: 0}, [][]float64{{1}}, HeatmapOptions{})
	RenderHeatmap(c, Rect{W: 5, H: 5}, [][]float64{{}}, HeatmapOptions{})
	// Just must not panic.
}

func TestRenderRowLabels(t *testing.T) {
	c := NewCanvas(60, 30, black)
	RenderRowLabels(c, Rect{X: 0, Y: 0, W: 60, H: 30}, []string{"AAA", "BBB", "CCC"}, white)
	found := false
	for y := 0; y < 10; y++ {
		for x := 0; x < 20; x++ {
			if c.At(x, y) == white {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no label pixels drawn")
	}
	// Too dense: silently draws nothing.
	c2 := NewCanvas(60, 5, black)
	RenderRowLabels(c2, Rect{X: 0, Y: 0, W: 60, H: 5}, []string{"A", "B", "C", "D", "E"}, white)
	for y := 0; y < 5; y++ {
		for x := 0; x < 60; x++ {
			if c2.At(x, y) == white {
				t.Fatal("dense labels should be suppressed")
			}
		}
	}
}

func TestRenderDendrogramLeftOfRows(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3},
		{1.1, 2.1, 3.1},
		{3, 2, 1},
	}
	tree, err := cluster.Hierarchical(rows, cluster.PearsonDist, cluster.AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCanvas(30, 30, black)
	RenderDendrogram(c, Rect{X: 0, Y: 0, W: 30, H: 30}, tree, LeftOfRows, white)
	// Something must be drawn, and only inside the rect.
	count := 0
	for y := 0; y < 30; y++ {
		for x := 0; x < 30; x++ {
			if c.At(x, y) == white {
				count++
			}
		}
	}
	if count < 10 {
		t.Fatalf("dendrogram drew only %d pixels", count)
	}
}

func TestRenderDendrogramAboveColumns(t *testing.T) {
	rows := [][]float64{{1, 2}, {2, 1}}
	tree, _ := cluster.Hierarchical(rows, cluster.EuclideanDist, cluster.AverageLinkage)
	c := NewCanvas(20, 10, black)
	RenderDendrogram(c, Rect{X: 0, Y: 0, W: 20, H: 10}, tree, AboveColumns, white)
	count := 0
	for y := 0; y < 10; y++ {
		for x := 0; x < 20; x++ {
			if c.At(x, y) == white {
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("array dendrogram drew nothing")
	}
}

func TestRenderDendrogramNilSafe(t *testing.T) {
	c := NewCanvas(10, 10, black)
	RenderDendrogram(c, Rect{W: 10, H: 10}, nil, LeftOfRows, white)
	single := &cluster.Tree{NLeaves: 1}
	RenderDendrogram(c, Rect{W: 10, H: 10}, single, LeftOfRows, white)
}

func TestRenderGOGraph(t *testing.T) {
	o := ontology.New()
	_ = o.AddTerm(&ontology.Term{ID: "GO:R", Name: "root"})
	_ = o.AddTerm(&ontology.Term{ID: "GO:A", Name: "alpha", Parents: []string{"GO:R"}})
	_ = o.AddTerm(&ontology.Term{ID: "GO:B", Name: "beta", Parents: []string{"GO:R"}})
	g := golem.LocalMap(o, []string{"GO:A", "GO:B"}, 0)
	lay := golem.LayoutGraph(g, 4)
	c := NewCanvas(200, 100, black)
	RenderGOGraph(c, Rect{X: 0, Y: 0, W: 200, H: 100}, g, lay, GOGraphOptions{
		Label: func(id string) string { return o.Term(id).Name },
	})
	// The canvas must not be all background anymore.
	bg := c.At(0, 0)
	diff := 0
	for y := 0; y < 100; y += 2 {
		for x := 0; x < 200; x += 2 {
			if c.At(x, y) != bg {
				diff++
			}
		}
	}
	if diff < 20 {
		t.Fatalf("GO graph rendered only %d differing pixels", diff)
	}
}

func TestRenderGOGraphEmpty(t *testing.T) {
	c := NewCanvas(10, 10, black)
	g := &golem.Graph{Focus: map[string]bool{}}
	RenderGOGraph(c, Rect{W: 10, H: 10}, g, golem.LayoutGraph(g, 1), GOGraphOptions{})
}

func TestPNGRoundTrip(t *testing.T) {
	c := NewCanvas(8, 8, black)
	c.FillRect(2, 2, 3, 3, red)
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width() != 8 || back.Height() != 8 {
		t.Fatalf("decoded dims = %dx%d", back.Width(), back.Height())
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if c.At(x, y) != back.At(x, y) {
				t.Fatalf("pixel (%d,%d) changed: %v vs %v", x, y, c.At(x, y), back.At(x, y))
			}
		}
	}
}

func TestSavePNG(t *testing.T) {
	c := NewCanvas(4, 4, red)
	path := t.TempDir() + "/out.png"
	if err := c.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := DecodePNG(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(1, 1) != red {
		t.Fatalf("saved pixel = %v", back.At(1, 1))
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{X: 2, Y: 3, W: 4, H: 5}
	if !r.Contains(2, 3) || !r.Contains(5, 7) {
		t.Fatal("corner containment broken")
	}
	if r.Contains(6, 3) || r.Contains(2, 8) || r.Contains(1, 3) {
		t.Fatal("exclusive edges broken")
	}
}
