package render

import "image/color"

// A fixed 5×7 bitmap font covering ASCII letters, digits and common
// punctuation — enough for gene IDs, dataset names, axis labels and
// p-values. Lowercase input renders as uppercase, the convention of early
// scientific display systems (and perfectly legible on a projector wall).

// GlyphWidth and GlyphHeight are the unscaled glyph cell dimensions; a
// 1-pixel gap is added between characters.
const (
	GlyphWidth  = 5
	GlyphHeight = 7
)

// font maps runes to 7 rows of 5-bit pixel patterns; bit 4 is the leftmost
// pixel.
var font = map[rune][7]byte{
	' ':  {0, 0, 0, 0, 0, 0, 0},
	'A':  {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C':  {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D':  {0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110},
	'E':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G':  {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H':  {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I':  {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J':  {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K':  {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L':  {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M':  {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N':  {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S':  {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T':  {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U':  {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V':  {0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b01010, 0b00100},
	'W':  {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b11011, 0b10001},
	'X':  {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y':  {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
	'0':  {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1':  {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3':  {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4':  {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5':  {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6':  {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8':  {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9':  {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'.':  {0, 0, 0, 0, 0, 0b00100, 0b00100},
	',':  {0, 0, 0, 0, 0, 0b00100, 0b01000},
	':':  {0, 0b00100, 0b00100, 0, 0b00100, 0b00100, 0},
	';':  {0, 0b00100, 0b00100, 0, 0b00100, 0b01000, 0},
	'-':  {0, 0, 0, 0b01110, 0, 0, 0},
	'+':  {0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0},
	'*':  {0, 0b00100, 0b10101, 0b01110, 0b10101, 0b00100, 0},
	'/':  {0b00001, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b10000},
	'\\': {0b10000, 0b10000, 0b01000, 0b00100, 0b00010, 0b00001, 0b00001},
	'(':  {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')':  {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'[':  {0b01110, 0b01000, 0b01000, 0b01000, 0b01000, 0b01000, 0b01110},
	']':  {0b01110, 0b00010, 0b00010, 0b00010, 0b00010, 0b00010, 0b01110},
	'%':  {0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011},
	'<':  {0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010},
	'>':  {0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000},
	'=':  {0, 0, 0b11111, 0, 0b11111, 0, 0},
	'_':  {0, 0, 0, 0, 0, 0, 0b11111},
	'\'': {0b00100, 0b00100, 0, 0, 0, 0, 0},
	'"':  {0b01010, 0b01010, 0, 0, 0, 0, 0},
	'|':  {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'!':  {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0, 0b00100},
	'?':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100},
	'#':  {0b01010, 0b01010, 0b11111, 0b01010, 0b11111, 0b01010, 0b01010},
}

// glyphFor resolves a rune to its glyph, folding lowercase to uppercase and
// unknown runes to '?'.
func glyphFor(r rune) [7]byte {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	if g, ok := font[r]; ok {
		return g
	}
	return font['?']
}

// TextWidth returns the pixel width of s at the given integer scale.
func TextWidth(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := 0
	for range s {
		n++
	}
	if n == 0 {
		return 0
	}
	return n*(GlyphWidth+1)*scale - scale
}

// TextHeight returns the pixel height of one text line at the given scale.
func TextHeight(scale int) int {
	if scale < 1 {
		scale = 1
	}
	return GlyphHeight * scale
}

// DrawText renders s with its top-left corner at (x, y).
func (c *Canvas) DrawText(x, y int, s string, scale int, col color.Color) {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphHeight; row++ {
			bits := g[row]
			for px := 0; px < GlyphWidth; px++ {
				if bits&(1<<(GlyphWidth-1-px)) == 0 {
					continue
				}
				c.FillRect(cx+px*scale, y+row*scale, scale, scale, col)
			}
		}
		cx += (GlyphWidth + 1) * scale
	}
}

// DrawTextClipped renders s but stops before exceeding maxWidth pixels,
// appending no ellipsis (labels in dense views just truncate).
func (c *Canvas) DrawTextClipped(x, y int, s string, scale int, maxWidth int, col color.Color) {
	if scale < 1 {
		scale = 1
	}
	adv := (GlyphWidth + 1) * scale
	fit := maxWidth / adv
	i := 0
	for range s {
		i++
	}
	if fit >= i {
		c.DrawText(x, y, s, scale, col)
		return
	}
	if fit <= 0 {
		return
	}
	runes := []rune(s)
	c.DrawText(x, y, string(runes[:fit]), scale, col)
}
