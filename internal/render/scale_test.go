package render

import (
	"image/color"
	"testing"
)

func TestDownscale(t *testing.T) {
	c := NewCanvas(8, 8, black)
	c.FillRect(0, 0, 4, 4, red) // top-left quadrant red
	small := c.Downscale(4)
	if small.Width() != 2 || small.Height() != 2 {
		t.Fatalf("downscaled dims = %dx%d", small.Width(), small.Height())
	}
	if small.At(0, 0) != red {
		t.Fatalf("TL = %v", small.At(0, 0))
	}
	if small.At(1, 1) != black {
		t.Fatalf("BR = %v", small.At(1, 1))
	}
}

func TestDownscaleFactorOne(t *testing.T) {
	c := NewCanvas(3, 3, red)
	cp := c.Downscale(1)
	if cp.Width() != 3 || cp.At(1, 1) != red {
		t.Fatal("factor 1 should copy")
	}
	// Mutating the copy must not touch the original.
	cp.Set(0, 0, color.RGBA{A: 255})
	if c.At(0, 0) != red {
		t.Fatal("Downscale(1) must copy, not alias")
	}
}

func TestDownscaleTiny(t *testing.T) {
	c := NewCanvas(3, 3, red)
	small := c.Downscale(10)
	if small.Width() != 1 || small.Height() != 1 {
		t.Fatalf("tiny downscale dims = %dx%d", small.Width(), small.Height())
	}
	if small.At(0, 0) != red {
		t.Fatal("tiny downscale pixel wrong")
	}
}

func TestTranslatedDrawing(t *testing.T) {
	c := NewCanvas(10, 10, black)
	tr := c.Translated(3, 2)
	tr.Set(0, 0, red) // lands at (3,2)
	if c.At(3, 2) != red {
		t.Fatal("translated Set missed")
	}
	if tr.At(0, 0) != red {
		t.Fatal("translated At missed")
	}
	tr.FillRect(1, 1, 2, 2, white) // lands at (4,3)-(5,4)
	if c.At(4, 3) != white || c.At(5, 4) != white {
		t.Fatal("translated FillRect missed")
	}
	// Clip bounds reflect the translation.
	clip := tr.ClipBounds()
	if clip.X != -3 || clip.Y != -2 || clip.W != 10 || clip.H != 10 {
		t.Fatalf("clip = %+v", clip)
	}
	// Nested translation composes.
	tr2 := tr.Translated(1, 1)
	tr2.Set(0, 0, red) // lands at (4,3)
	if c.At(4, 3) != red {
		t.Fatal("nested translation broken")
	}
}
