package render

import "image/color"

// Downscale returns a nearest-neighbour reduction of the canvas by an
// integer factor — used to turn multi-hundred-megapixel wall composites
// into reviewable thumbnails. A factor <= 1 returns a copy.
func (c *Canvas) Downscale(factor int) *Canvas {
	if factor <= 1 {
		out := NewCanvas(c.Width(), c.Height(), color.RGBA{A: 255})
		out.Blit(c.img, -c.offX, -c.offY)
		return out
	}
	w := c.Width() / factor
	h := c.Height() / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewCanvas(w, h, color.RGBA{A: 255})
	b := c.img.Bounds()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := b.Min.X+x*factor, b.Min.Y+y*factor
			out.img.SetRGBA(x, y, c.img.RGBAAt(sx, sy))
		}
	}
	return out
}
