package render

import (
	"image/color"

	"forestview/internal/golem"
)

// GOGraphOptions parameterize local-map rendering.
type GOGraphOptions struct {
	// NodeColor returns the fill for a term (e.g. enrichment-scaled); nil
	// means a neutral fill.
	NodeColor func(termID string) color.Color
	// Label returns the node caption; nil uses the term ID.
	Label func(termID string) string
	// Background, Edge and Text colors; zero values get sane defaults.
	Background color.Color
	Edge       color.Color
	Text       color.Color
}

// RenderGOGraph draws a laid-out local exploration map into rect: boxes for
// terms (focus terms get a double border), lines for is_a edges, captions
// clipped to the box. This is the Figure-5 view.
func RenderGOGraph(c *Canvas, r Rect, g *golem.Graph, lay *golem.Layout, opt GOGraphOptions) {
	if len(g.Nodes) == 0 || r.W <= 0 || r.H <= 0 {
		return
	}
	bg := opt.Background
	if bg == nil {
		bg = color.RGBA{R: 20, G: 20, B: 30, A: 255}
	}
	edgeCol := opt.Edge
	if edgeCol == nil {
		edgeCol = color.RGBA{R: 140, G: 140, B: 160, A: 255}
	}
	textCol := opt.Text
	if textCol == nil {
		textCol = color.RGBA{R: 230, G: 230, B: 230, A: 255}
	}
	c.FillRect(r.X, r.Y, r.W, r.H, bg)

	layerH := r.H / maxInt(lay.LayerCount, 1)
	boxH := layerH * 2 / 3
	if boxH < 9 {
		boxH = minInt(9, layerH)
	}
	// Node center positions in pixels.
	center := func(id string) (int, int) {
		p := lay.Pos[id]
		width := len(lay.Layers[p.Layer])
		cx := r.X + (2*p.Col+1)*r.W/(2*maxInt(width, 1))
		cy := r.Y + p.Layer*layerH + layerH/2
		return cx, cy
	}
	// Edges first so boxes overdraw them.
	for _, e := range g.Edges {
		x0, y0 := center(e[0])
		x1, y1 := center(e[1])
		c.Line(x0, y0, x1, y1, edgeCol)
	}
	for _, id := range g.Nodes {
		cx, cy := center(id)
		p := lay.Pos[id]
		width := len(lay.Layers[p.Layer])
		boxW := r.W/maxInt(width, 1) - 4
		if boxW < 8 {
			boxW = 8
		}
		x := cx - boxW/2
		y := cy - boxH/2
		fill := color.Color(color.RGBA{R: 60, G: 60, B: 90, A: 255})
		if opt.NodeColor != nil {
			if col := opt.NodeColor(id); col != nil {
				fill = col
			}
		}
		c.FillRect(x, y, boxW, boxH, fill)
		c.StrokeRect(x, y, boxW, boxH, edgeCol)
		if g.Focus[id] {
			c.StrokeRect(x-2, y-2, boxW+4, boxH+4, textCol)
		}
		label := id
		if opt.Label != nil {
			label = opt.Label(id)
		}
		if boxH >= TextHeight(1)+2 && boxW >= GlyphWidth+2 {
			c.DrawTextClipped(x+2, y+(boxH-TextHeight(1))/2, label, 1, boxW-4, textCol)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
