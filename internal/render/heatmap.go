package render

import (
	"image/color"
	"math"
)

// HeatmapOptions parameterize expression-matrix rendering.
type HeatmapOptions struct {
	// ColorMap and Limit control the value-to-color transfer.
	ColorMap ColorMap
	Limit    float64
	// CellBorder draws 1-pixel separators when cells are at least 3px.
	CellBorder bool
	// Highlight rows are overdrawn with a marker line at the left edge,
	// the way ForestView's global view marks selected genes in every pane.
	Highlight map[int]bool
	// HighlightColor defaults to white.
	HighlightColor color.Color
	// ColOrder, when non-nil, maps display column -> data column (an array
	// tree's leaf order), so columns render in dendrogram order without
	// permuting the rows themselves.
	ColOrder []int
}

// RenderHeatmap draws rows (gene × experiment values, in display order)
// into rect. Cells scale to fill the rect; with more rows than pixels,
// multiple rows collapse into one pixel row (the "global view" regime of
// the paper: a whole genome in a strip), taking the mean of observed
// values.
func RenderHeatmap(c *Canvas, r Rect, rows [][]float64, opt HeatmapOptions) {
	renderHeatmap(c, r, rows, opt)
}

// RenderHeatmapF32 is RenderHeatmap over float32 rows (pyramid slabs in
// float32 mode): same geometry and transfer, half the memory traffic on
// the hot loop.
func RenderHeatmapF32(c *Canvas, r Rect, rows [][]float32, opt HeatmapOptions) {
	renderHeatmap(c, r, rows, opt)
}

// renderHeatmap is the shared kernel. For float64 it performs exactly the
// arithmetic the pre-generic renderer did, so float64 output stays
// bit-identical.
func renderHeatmap[F ~float32 | ~float64](c *Canvas, r Rect, rows [][]F, opt HeatmapOptions) {
	nR := len(rows)
	if nR == 0 || r.W <= 0 || r.H <= 0 {
		return
	}
	nC := 0
	if opt.ColOrder != nil {
		nC = len(opt.ColOrder)
	} else {
		for _, row := range rows {
			if len(row) > nC {
				nC = len(row)
			}
		}
	}
	if nC == 0 {
		return
	}
	colOrder := opt.ColOrder
	hl := opt.HighlightColor
	if hl == nil {
		hl = color.RGBA{R: 255, G: 255, B: 255, A: 255}
	}

	// Per-pixel loops respect the canvas clip so a wall tile only pays for
	// its own viewport.
	clip := c.ClipBounds()
	pyLo, pyHi := 0, r.H
	if r.Y < clip.Y {
		pyLo = clip.Y - r.Y
	}
	if r.Y+r.H > clip.Y+clip.H {
		pyHi = clip.Y + clip.H - r.Y
	}
	pxLo, pxHi := 0, r.W
	if r.X < clip.X {
		pxLo = clip.X - r.X
	}
	if r.X+r.W > clip.X+clip.W {
		pxHi = clip.X + clip.W - r.X
	}
	if pyLo >= pyHi || pxLo >= pxHi {
		return
	}

	if nR >= r.H {
		// Global view: each pixel row aggregates >= 1 gene rows.
		for py := pyLo; py < pyHi; py++ {
			lo := py * nR / r.H
			hi := (py + 1) * nR / r.H
			if hi <= lo {
				hi = lo + 1
			}
			anyHL := false
			for px := pxLo; px < pxHi; px++ {
				cLo := px * nC / r.W
				cHi := (px + 1) * nC / r.W
				if cHi <= cLo {
					cHi = cLo + 1
				}
				sum, n := 0.0, 0
				for gr := lo; gr < hi && gr < nR; gr++ {
					row := rows[gr]
					for cc := cLo; cc < cHi; cc++ {
						dc := cc
						if colOrder != nil {
							dc = colOrder[cc]
						}
						if dc >= 0 && dc < len(row) {
							if v := float64(row[dc]); !math.IsNaN(v) {
								sum += v
								n++
							}
						}
					}
				}
				v := math.NaN()
				if n > 0 {
					v = sum / float64(n)
				}
				c.Set(r.X+px, r.Y+py, opt.ColorMap.Map(v, opt.Limit))
			}
			if opt.Highlight != nil {
				for gr := lo; gr < hi && gr < nR; gr++ {
					if opt.Highlight[gr] {
						anyHL = true
						break
					}
				}
			}
			if anyHL {
				// Selection tick marks at both edges of the strip.
				c.FillRect(r.X, r.Y+py, 3, 1, hl)
				c.FillRect(r.X+r.W-3, r.Y+py, 3, 1, hl)
			}
		}
		return
	}

	// Zoom view: each gene row gets >= 1 pixel rows.
	cellH := r.H / nR
	if cellH < 1 {
		cellH = 1
	}
	cellW := r.W / nC
	if cellW < 1 {
		cellW = 1
	}
	border := opt.CellBorder && cellH >= 3 && cellW >= 3
	for gr := 0; gr < nR; gr++ {
		y := r.Y + gr*r.H/nR
		h := r.Y + (gr+1)*r.H/nR - y
		if h < 1 {
			h = 1
		}
		row := rows[gr]
		for cc := 0; cc < nC; cc++ {
			x := r.X + cc*r.W/nC
			w := r.X + (cc+1)*r.W/nC - x
			if w < 1 {
				w = 1
			}
			dc := cc
			if colOrder != nil {
				dc = colOrder[cc]
			}
			v := math.NaN()
			if dc >= 0 && dc < len(row) {
				v = float64(row[dc])
			}
			col := opt.ColorMap.Map(v, opt.Limit)
			if border {
				c.FillRect(x, y, w-1, h-1, col)
			} else {
				c.FillRect(x, y, w, h, col)
			}
		}
		if opt.Highlight != nil && opt.Highlight[gr] {
			c.FillRect(r.X, y, 3, h, hl)
		}
	}
}

// RenderRowLabels draws per-row text labels (gene IDs/names) next to a zoom
// view whose rows are laid out like RenderHeatmap's zoom regime.
func RenderRowLabels(c *Canvas, r Rect, labels []string, fg color.Color) {
	n := len(labels)
	if n == 0 || r.H <= 0 {
		return
	}
	scale := 1
	rowH := r.H / n
	if rowH < TextHeight(1) {
		// Too dense for text; draw nothing (TreeView hides labels when
		// zoomed out too).
		return
	}
	for i, lab := range labels {
		y := r.Y + i*r.H/n + (rowH-TextHeight(scale))/2
		c.DrawTextClipped(r.X, y, lab, scale, r.W, fg)
	}
}

// RenderColumnLabels draws experiment names vertically condensed: one
// character column per experiment is impossible with a bitmap font, so the
// names render horizontally, clipped, in slanted stagger rows.
func RenderColumnLabels(c *Canvas, r Rect, labels []string, fg color.Color) {
	n := len(labels)
	if n == 0 || r.W <= 0 || r.H <= 0 {
		return
	}
	colW := r.W / n
	if colW < 4 {
		return
	}
	rowsAvail := r.H / TextHeight(1)
	if rowsAvail < 1 {
		return
	}
	for i, lab := range labels {
		x := r.X + i*r.W/n
		y := r.Y + (i%rowsAvail)*TextHeight(1)
		c.DrawTextClipped(x, y, lab, 1, r.W-(x-r.X), fg)
	}
}
