package render

import (
	"bufio"
	"fmt"
	"image"
	"image/png"
	"io"
	"os"
)

// EncodePNG writes the canvas as PNG to w.
func (c *Canvas) EncodePNG(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := png.Encode(bw, c.img); err != nil {
		return fmt.Errorf("render: encoding PNG: %w", err)
	}
	return bw.Flush()
}

// SavePNG writes the canvas to a file.
func (c *Canvas) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	if err := c.EncodePNG(f); err != nil {
		return err
	}
	return f.Close()
}

// DecodePNG reads a PNG back into a canvas (tests use this to round-trip).
func DecodePNG(r io.Reader) (*Canvas, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("render: decoding PNG: %w", err)
	}
	b := img.Bounds()
	out := image.NewRGBA(image.Rect(0, 0, b.Dx(), b.Dy()))
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			out.Set(x, y, img.At(b.Min.X+x, b.Min.Y+y))
		}
	}
	return FromImage(out), nil
}
