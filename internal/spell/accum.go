package spell

// accum is one worker's private pair of dense gene-score vectors, indexed
// by global gene id. Stage 2 of a search gives every worker its own accum,
// so the hot accumulation loop never takes a lock and never hashes a
// string; after the workers drain, the per-worker vectors are merged by
// plain vector addition on the calling goroutine. This replaces the old
// map[string]float64 score tables that were merged under a global mutex.
type accum struct {
	score  []float64 // sum over datasets of weight[di] * meanCorr(gene, query)
	weight []float64 // sum over datasets of weight[di] where the gene scored
}

func newAccum(numGenes int) *accum {
	return &accum{
		score:  make([]float64, numGenes),
		weight: make([]float64, numGenes),
	}
}

// add accumulates one gene's contribution from one dataset.
func (a *accum) add(gid int32, w, meanCorr float64) {
	a.score[gid] += w * meanCorr
	a.weight[gid] += w
}

// mergeAccums folds the per-worker accumulators into the first non-nil one
// and returns it (nil when no worker scored anything). Workers that never
// pulled a dataset leave a nil slot; those are skipped.
func mergeAccums(accs []*accum) *accum {
	var dst *accum
	for _, a := range accs {
		if a == nil {
			continue
		}
		if dst == nil {
			dst = a
			continue
		}
		for i, v := range a.score {
			dst.score[i] += v
		}
		for i, v := range a.weight {
			dst.weight[i] += v
		}
	}
	return dst
}
