// Package spell reimplements SPELL (Serial Patterns of Expression Levels
// Locator, Hibbs et al.), the similarity-search engine the paper integrates
// with ForestView (Section 3, Figure 4).
//
// Given a small set of query genes, SPELL (1) weights every dataset in a
// large compendium by how informative it is about the query — how coherent
// the query genes' expression is within that dataset — and (2) ranks every
// other gene by its weighted correlation to the query across the
// compendium. The output is exactly what ForestView visualizes: an ordered
// list of datasets and an ordered list of genes.
//
// The scoring core is a dense, integer-indexed kernel: the engine assigns
// every distinct gene ID a global integer once, stores each dataset's
// z-scored rows in one contiguous slab with precomputed centered unit-norm
// forms (see slab.go), and accumulates gene scores into per-worker dense
// vectors merged lock-free after the workers drain (see accum.go). For
// complete rows, Pearson correlation collapses to a single dot product;
// rows with missing values fall back to the NaN-pairwise statistic. The
// retained naive scorer in reference.go is the golden standard the kernel
// is tested against.
package spell

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"forestview/internal/microarray"
	"forestview/internal/stats"
)

// Options tune a search.
type Options struct {
	// MaxGenes caps the returned gene ranking (0 = all genes).
	MaxGenes int
	// IncludeQuery keeps the query genes themselves in the gene ranking
	// (ForestView highlights them; the web interface omitted them).
	IncludeQuery bool
	// Parallelism bounds the worker pool used to score datasets
	// concurrently (0 = GOMAXPROCS).
	Parallelism int
	// UniformWeights disables SPELL's signature dataset weighting and
	// averages correlations over every dataset measuring the query —
	// the naive-search baseline the weighting ablation compares against.
	UniformWeights bool
}

// DatasetRank is one entry of the ranked dataset list.
type DatasetRank struct {
	// Index into the engine's dataset list.
	Index int
	// Name of the dataset.
	Name string
	// Weight is the normalized informativeness of the dataset for the
	// query (weights sum to 1 over the compendium).
	Weight float64
	// QueryCoherence is the raw mean Fisher-z pairwise correlation of the
	// query genes within this dataset, before normalization. NaN when the
	// dataset measures fewer than two query genes (coherence is a pairwise
	// statistic).
	QueryCoherence float64
	// QueryPresent counts how many query genes the dataset measures.
	QueryPresent int
}

// MarshalJSON emits an undefined QueryCoherence (NaN — the dataset measures
// fewer than two query genes) as null: NaN is not representable in JSON and
// used to kill the encoder mid-response on every HTTP entry point, turning
// such searches into empty 200s.
func (d DatasetRank) MarshalJSON() ([]byte, error) {
	type alias DatasetRank // no methods: avoids marshal recursion
	out := struct {
		alias
		QueryCoherence *float64
	}{alias: alias(d)}
	if !math.IsNaN(d.QueryCoherence) {
		out.QueryCoherence = &d.QueryCoherence
	}
	return json.Marshal(out)
}

// GeneRank is one entry of the ranked gene list.
type GeneRank struct {
	ID    string
	Name  string
	Score float64
	// IsQuery marks genes that were part of the query.
	IsQuery bool
}

// Result of a SPELL search.
type Result struct {
	// Query is the canonicalized query the engine actually ran: trimmed,
	// deduplicated, sorted (see CanonicalQuery).
	Query    []string
	Datasets []DatasetRank
	Genes    []GeneRank
}

// Engine holds a compendium prepared for repeated searches. Construction
// assigns every distinct gene ID a global integer index and z-transforms
// every gene vector once — so correlations are comparable across datasets
// with different dynamic ranges, as SPELL prescribes — storing each dataset
// as a contiguous slab ready for the dense kernel. An Engine is immutable
// after NewEngine and safe for concurrent Search calls.
type Engine struct {
	datasets []*microarray.Dataset
	order    []string       // global gene index -> gene ID, stable compendium order
	names    []string       // global gene index -> display name
	gid      map[string]int // gene ID -> global index
	slabs    []*slab
}

// NewEngine prepares the given datasets for searching. Datasets are not
// modified; the engine keeps z-scored copies.
func NewEngine(dss []*microarray.Dataset) (*Engine, error) {
	if len(dss) == 0 {
		return nil, errors.New("spell: empty compendium")
	}
	e := &Engine{
		datasets: dss,
		gid:      make(map[string]int),
		slabs:    make([]*slab, len(dss)),
	}
	// Pass 1: the global gene index, in stable first-seen order.
	for _, ds := range dss {
		for g := 0; g < ds.NumGenes(); g++ {
			gene := ds.Genes[g]
			if _, ok := e.gid[gene.ID]; !ok {
				e.gid[gene.ID] = len(e.order)
				e.order = append(e.order, gene.ID)
				e.names = append(e.names, gene.Name)
			}
		}
	}
	// Pass 2: per-dataset slabs, built concurrently — each slot is written
	// by exactly one worker.
	par := runtime.GOMAXPROCS(0)
	if par > len(dss) {
		par = len(dss)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work {
				e.slabs[di] = buildSlab(dss[di], e.gid, len(e.order))
			}
		}()
	}
	for di := range dss {
		work <- di
	}
	close(work)
	wg.Wait()
	return e, nil
}

// NumDatasets returns the compendium size.
func (e *Engine) NumDatasets() int { return len(e.datasets) }

// NumGenes returns the number of distinct gene IDs across the compendium.
func (e *Engine) NumGenes() int { return len(e.order) }

// GeneIDs returns every distinct gene ID in stable compendium order. The
// query daemon uses it as the enrichment background when no explicit
// universe is supplied.
func (e *Engine) GeneIDs() []string {
	return append([]string(nil), e.order...)
}

// MsgSingleGeneQuery is the user-facing explanation every HTTP entry point
// returns (with a 422) for a query that collapses to a single distinct
// gene: coherence is a pairwise statistic, so a one-gene query has no
// defined dataset weighting. One shared constant keeps the daemon and the
// standalone spellweb server from drifting apart.
const MsgSingleGeneQuery = "single-gene queries are not supported: SPELL's dataset weighting needs at least two distinct query genes to measure coherence; add another gene"

// CanonicalQuery normalizes a query gene list: IDs are trimmed, empties and
// duplicates dropped, and the remainder sorted. Search results are
// insensitive to query order and multiplicity, so the canonical form is a
// correct cache key for a search — two requests with the same gene set in
// any order canonicalize identically.
func CanonicalQuery(ids []string) []string {
	seen := make(map[string]bool, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dsInfo is the stage-1 result for one dataset.
type dsInfo struct {
	rows      []int32 // dataset rows measuring query genes
	allFast   bool    // every query row has a unit form
	coherence float64
}

// searchPar clamps a requested parallelism to the compendium size.
func (e *Engine) searchPar(requested int) int {
	par := requested
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(e.slabs) {
		par = len(e.slabs)
	}
	return par
}

// queryInfos runs stage 1 — per-dataset query rows and raw coherence —
// concurrently over par workers. One result slot per dataset, no shared
// mutable state. Workers stop pulling datasets once ctx is canceled; the
// caller must check ctx.Err() before trusting the result.
func (e *Engine) queryInfos(ctx context.Context, qgids []int, par int) []dsInfo {
	return e.queryInfosSubset(ctx, qgids, par, nil)
}

// queryInfosSubset is queryInfos over a subset of dataset indexes (nil =
// all). The result is still one slot per dataset of the engine; slots
// outside the subset stay zero and must not be read.
func (e *Engine) queryInfosSubset(ctx context.Context, qgids []int, par int, subset []int) []dsInfo {
	infos := make([]dsInfo, len(e.slabs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work {
				if ctx.Err() != nil {
					continue // drain without computing
				}
				sl := e.slabs[di]
				rows, allFast := sl.queryRows(qgids)
				infos[di] = dsInfo{rows: rows, allFast: allFast, coherence: coherence(sl, rows)}
			}
		}()
	}
	if subset == nil {
		for di := range e.slabs {
			work <- di
		}
	} else {
		for _, di := range subset {
			work <- di
		}
	}
	close(work)
	wg.Wait()
	return infos
}

// Search runs a SPELL query. At least one query gene must be present
// somewhere in the compendium.
//
// The query is canonicalized internally (trimmed, deduplicated): a
// duplicated query gene must not add Pearson(row, row) = 1 pairs to a
// dataset's coherence — that would inflate its weight by FisherZ(1-ε) per
// duplicate pair and distort every rank — so no entry point can be exposed
// to the duplicate-query bug regardless of whether it canonicalizes.
func (e *Engine) Search(query []string, opt Options) (*Result, error) {
	query = CanonicalQuery(query)
	if len(query) == 0 {
		return nil, errors.New("spell: empty query")
	}
	qgids := make([]int, 0, len(query))
	qmask := make([]bool, len(e.order))
	for _, q := range query {
		if gi, ok := e.gid[q]; ok {
			qgids = append(qgids, gi)
			qmask[gi] = true
		}
	}
	if len(qgids) == 0 {
		return nil, fmt.Errorf("spell: none of the %d query genes occur in the compendium", len(query))
	}

	par := e.searchPar(opt.Parallelism)

	// Stage 1: per-dataset query rows and coherence.
	infos := e.queryInfos(context.Background(), qgids, par)

	// Normalize positive coherence into weights. A dataset where the query
	// genes are uncorrelated (or absent) contributes nothing, exactly the
	// behaviour that lets SPELL ignore irrelevant studies.
	weights := make([]float64, len(e.slabs))
	total := 0.0
	for di := range infos {
		w := infos[di].coherence
		if opt.UniformWeights {
			// Ablation baseline: every dataset measuring the query counts
			// equally, informative or not.
			if len(infos[di].rows) > 0 {
				w = 1
			} else {
				w = 0
			}
		}
		if math.IsNaN(w) || w < 0 {
			w = 0
		}
		weights[di] = w
		total += w
	}
	if total == 0 {
		// Degenerate query (single gene or incoherent everywhere): fall
		// back to uniform weights over datasets measuring the query.
		n := 0
		for di := range infos {
			if len(infos[di].rows) > 0 {
				weights[di] = 1
				n++
			}
		}
		if n == 0 {
			return nil, errors.New("spell: query genes absent from every dataset")
		}
		total = float64(n)
	}
	for di := range weights {
		weights[di] /= total
	}

	// Stage 2: weighted gene scores, concurrently per dataset. Every worker
	// accumulates into its own dense vector pair indexed by global gene id;
	// the vectors merge by plain addition once the workers drain — no lock,
	// no map, no string hashing on the hot path.
	accs := make([]*accum, par)
	var wg sync.WaitGroup
	work2 := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc *accum
			for di := range work2 {
				if weights[di] == 0 || len(infos[di].rows) == 0 {
					continue
				}
				if acc == nil {
					acc = newAccum(len(e.order))
				}
				scoreInto(e.slabs[di], infos[di].rows, infos[di].allFast, weights[di], acc)
			}
			accs[w] = acc
		}(w)
	}
	for di := range e.slabs {
		work2 <- di
	}
	close(work2)
	wg.Wait()
	merged := mergeAccums(accs)

	res := &Result{Query: query}
	for di := range e.slabs {
		res.Datasets = append(res.Datasets, DatasetRank{
			Index:          di,
			Name:           e.datasets[di].Name,
			Weight:         weights[di],
			QueryCoherence: infos[di].coherence,
			QueryPresent:   len(infos[di].rows),
		})
	}
	sort.SliceStable(res.Datasets, func(a, b int) bool {
		return res.Datasets[a].Weight > res.Datasets[b].Weight
	})

	// Rank by sorting compact gene indices rather than GeneRank structs:
	// stably swapping 4-byte ids costs a fraction of shuffling 40-byte
	// structs full of string pointers (which dominated the profile), and
	// only the entries that survive the MaxGenes cut are materialized.
	var order []int32
	if merged != nil {
		order = make([]int32, 0, len(e.order))
		for gi := range e.order {
			if qmask[gi] && !opt.IncludeQuery {
				continue
			}
			if w := merged.weight[gi]; w != 0 {
				merged.score[gi] /= w // final score, reused in place
				order = append(order, int32(gi))
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return merged.score[order[a]] > merged.score[order[b]]
		})
	}
	if opt.MaxGenes > 0 && len(order) > opt.MaxGenes {
		order = order[:opt.MaxGenes]
	}
	res.Genes = make([]GeneRank, len(order))
	for i, gi := range order {
		res.Genes[i] = GeneRank{
			ID:      e.order[gi],
			Name:    e.names[gi],
			Score:   merged.score[gi],
			IsQuery: qmask[gi],
		}
	}
	return res, nil
}

// coherence is the mean Fisher-z-transformed pairwise Pearson correlation
// among the query rows — SPELL's dataset informativeness signal. NaN when
// fewer than two query genes are present.
func coherence(sl *slab, qrows []int32) float64 {
	if len(qrows) < 2 {
		return math.NaN()
	}
	s, n := 0.0, 0
	for i := 0; i < len(qrows); i++ {
		for j := i + 1; j < len(qrows); j++ {
			r := rowCorr(sl, qrows[i], qrows[j])
			if math.IsNaN(r) {
				continue
			}
			s += stats.FisherZ(r)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// rowCorr is the Pearson correlation of two slab rows: a single dot product
// when both rows have unit forms, the NaN-pairwise statistic otherwise.
func rowCorr(sl *slab, a, b int32) float64 {
	if sl.fast[a] && sl.fast[b] {
		return stats.Clamp(stats.Dot(sl.unitRow(a), sl.unitRow(b)), -1, 1)
	}
	return stats.Pearson(sl.zrow(a), sl.zrow(b))
}

// scoreAdder is the accumulator contract of the stage-2 scoring loops: the
// single-process kernel's dense *accum and the shard path's *dualAccum
// (partial.go) both satisfy it, and the generic instantiation keeps each
// call monomorphized — no interface dispatch on the per-gene hot path.
type scoreAdder interface {
	add(gid int32, w, meanCorr float64)
}

// scoreInto accumulates dataset sl's contribution (at weight w) to every
// gene's score: each gene row's mean correlation to the query rows.
//
// When every query row has a unit form, the query rows are pre-summed once:
// for a gene row g with a unit form, mean_q Pearson(g, q) =
// Dot(unit_g, Σ_q unit_q) / nq — one dot product per gene instead of one
// per (gene, query) pair. Rows without unit forms take the per-pair path.
func scoreInto[A scoreAdder](sl *slab, qrows []int32, allFast bool, w float64, acc A) {
	nq := len(qrows)
	if nq == 0 {
		return
	}
	nE := sl.nExp
	if allFast && nE > 0 {
		qsum := make([]float64, nE)
		for _, r := range qrows {
			for i, v := range sl.unitRow(r) {
				qsum[i] += v
			}
		}
		inv := 1 / float64(nq)
		for g := range sl.fast {
			gi := sl.gids[g]
			if sl.rowOf[gi] != int32(g) {
				// Duplicate gene ID within the dataset: only the row the
				// index points at (the last) scores, matching the map
				// overwrite in the reference scorer. Supported readers
				// reject duplicates, but a hand-built Dataset can carry
				// them, and accumulating both rows would double-count.
				continue
			}
			if sl.fast[g] {
				s := stats.Dot(sl.unit[g*nE:(g+1)*nE], qsum)
				acc.add(gi, w, s*inv)
			} else {
				scoreRowSlow(sl, int32(g), qrows, w, acc)
			}
		}
		return
	}
	for g := range sl.fast {
		if sl.rowOf[sl.gids[g]] != int32(g) {
			continue // duplicate gene ID: last row wins, as above
		}
		scoreRowSlow(sl, int32(g), qrows, w, acc)
	}
}

// scoreRowSlow scores one gene row against the query rows pair by pair,
// skipping undefined correlations; the row scores only when at least one
// pair is defined.
func scoreRowSlow[A scoreAdder](sl *slab, g int32, qrows []int32, w float64, acc A) {
	s, n := 0.0, 0
	for _, qr := range qrows {
		r := rowCorr(sl, g, qr)
		if math.IsNaN(r) {
			continue
		}
		s += r
		n++
	}
	if n > 0 {
		acc.add(sl.gids[g], w, s/float64(n))
	}
}

// TopGeneIDs returns the IDs of the first n ranked genes (or fewer).
func (r *Result) TopGeneIDs(n int) []string {
	if n > len(r.Genes) {
		n = len(r.Genes)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.Genes[i].ID
	}
	return out
}

// PrecisionAtK returns the fraction of the top-k ranked genes that belong
// to the relevant set — the planted-module recovery metric used by the
// Figure-4 reproduction.
func (r *Result) PrecisionAtK(k int, relevant map[string]bool) float64 {
	if k <= 0 || len(r.Genes) == 0 {
		return math.NaN()
	}
	if k > len(r.Genes) {
		k = len(r.Genes)
	}
	hits := 0
	for _, g := range r.Genes[:k] {
		if relevant[g.ID] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
