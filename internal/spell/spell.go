// Package spell reimplements SPELL (Serial Patterns of Expression Levels
// Locator, Hibbs et al.), the similarity-search engine the paper integrates
// with ForestView (Section 3, Figure 4).
//
// Given a small set of query genes, SPELL (1) weights every dataset in a
// large compendium by how informative it is about the query — how coherent
// the query genes' expression is within that dataset — and (2) ranks every
// other gene by its weighted correlation to the query across the
// compendium. The output is exactly what ForestView visualizes: an ordered
// list of datasets and an ordered list of genes.
package spell

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"forestview/internal/microarray"
	"forestview/internal/stats"
)

// Options tune a search.
type Options struct {
	// MaxGenes caps the returned gene ranking (0 = all genes).
	MaxGenes int
	// IncludeQuery keeps the query genes themselves in the gene ranking
	// (ForestView highlights them; the web interface omitted them).
	IncludeQuery bool
	// Parallelism bounds the worker pool used to score datasets
	// concurrently (0 = GOMAXPROCS).
	Parallelism int
	// UniformWeights disables SPELL's signature dataset weighting and
	// averages correlations over every dataset measuring the query —
	// the naive-search baseline the weighting ablation compares against.
	UniformWeights bool
}

// DatasetRank is one entry of the ranked dataset list.
type DatasetRank struct {
	// Index into the engine's dataset list.
	Index int
	// Name of the dataset.
	Name string
	// Weight is the normalized informativeness of the dataset for the
	// query (weights sum to 1 over the compendium).
	Weight float64
	// QueryCoherence is the raw mean Fisher-z pairwise correlation of the
	// query genes within this dataset, before normalization.
	QueryCoherence float64
	// QueryPresent counts how many query genes the dataset measures.
	QueryPresent int
}

// GeneRank is one entry of the ranked gene list.
type GeneRank struct {
	ID    string
	Name  string
	Score float64
	// IsQuery marks genes that were part of the query.
	IsQuery bool
}

// Result of a SPELL search.
type Result struct {
	Query    []string
	Datasets []DatasetRank
	Genes    []GeneRank
}

// Engine holds a compendium prepared for repeated searches. Construction
// z-transforms every gene vector once so correlations are comparable across
// datasets with different dynamic ranges, as SPELL prescribes.
type Engine struct {
	datasets []*microarray.Dataset
	zrows    [][][]float64    // [dataset][gene row][experiment]
	index    []map[string]int // per dataset: gene ID -> row
	ids      map[string]geneIdent
	order    []string // stable universe order of gene IDs
}

type geneIdent struct {
	name string
}

// NewEngine prepares the given datasets for searching. Datasets are not
// modified; the engine keeps z-scored copies.
func NewEngine(dss []*microarray.Dataset) (*Engine, error) {
	if len(dss) == 0 {
		return nil, errors.New("spell: empty compendium")
	}
	e := &Engine{
		datasets: dss,
		zrows:    make([][][]float64, len(dss)),
		index:    make([]map[string]int, len(dss)),
		ids:      make(map[string]geneIdent),
	}
	for di, ds := range dss {
		idx := make(map[string]int, ds.NumGenes())
		rows := make([][]float64, ds.NumGenes())
		for g := 0; g < ds.NumGenes(); g++ {
			gene := ds.Genes[g]
			idx[gene.ID] = g
			rows[g] = stats.ZScores(ds.Row(g))
			if _, ok := e.ids[gene.ID]; !ok {
				e.ids[gene.ID] = geneIdent{name: gene.Name}
				e.order = append(e.order, gene.ID)
			}
		}
		e.index[di] = idx
		e.zrows[di] = rows
	}
	return e, nil
}

// NumDatasets returns the compendium size.
func (e *Engine) NumDatasets() int { return len(e.datasets) }

// NumGenes returns the number of distinct gene IDs across the compendium.
func (e *Engine) NumGenes() int { return len(e.order) }

// GeneIDs returns every distinct gene ID in stable compendium order. The
// query daemon uses it as the enrichment background when no explicit
// universe is supplied.
func (e *Engine) GeneIDs() []string {
	return append([]string(nil), e.order...)
}

// CanonicalQuery normalizes a query gene list: IDs are trimmed, empties and
// duplicates dropped, and the remainder sorted. Search results are
// insensitive to query order and multiplicity, so the canonical form is a
// correct cache key for a search — two requests with the same gene set in
// any order canonicalize identically.
func CanonicalQuery(ids []string) []string {
	seen := make(map[string]bool, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Search runs a SPELL query. At least one query gene must be present
// somewhere in the compendium.
func (e *Engine) Search(query []string, opt Options) (*Result, error) {
	if len(query) == 0 {
		return nil, errors.New("spell: empty query")
	}
	qset := make(map[string]bool, len(query))
	found := false
	for _, q := range query {
		qset[q] = true
		if _, ok := e.ids[q]; ok {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("spell: none of the %d query genes occur in the compendium", len(query))
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(e.datasets) {
		par = len(e.datasets)
	}

	// Stage 1: per-dataset query coherence, computed concurrently — one
	// result slot per dataset, no shared mutable state.
	type dsScore struct {
		coherence float64
		present   int
	}
	scores := make([]dsScore, len(e.datasets))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work {
				scores[di] = dsScore{}
				rows, present := e.queryRows(di, query)
				scores[di].present = present
				scores[di].coherence = queryCoherence(rows)
			}
		}()
	}
	for di := range e.datasets {
		work <- di
	}
	close(work)
	wg.Wait()

	// Normalize positive coherence into weights. A dataset where the query
	// genes are uncorrelated (or absent) contributes nothing, exactly the
	// behaviour that lets SPELL ignore irrelevant studies.
	weights := make([]float64, len(e.datasets))
	total := 0.0
	for di, s := range scores {
		w := s.coherence
		if opt.UniformWeights {
			// Ablation baseline: every dataset measuring the query counts
			// equally, informative or not.
			if s.present > 0 {
				w = 1
			} else {
				w = 0
			}
		}
		if math.IsNaN(w) || w < 0 {
			w = 0
		}
		weights[di] = w
		total += w
	}
	if total == 0 {
		// Degenerate query (single gene or incoherent everywhere): fall
		// back to uniform weights over datasets measuring the query.
		n := 0
		for di, s := range scores {
			if s.present > 0 {
				weights[di] = 1
				n++
			}
		}
		if n == 0 {
			return nil, errors.New("spell: query genes absent from every dataset")
		}
		total = float64(n)
	}
	for di := range weights {
		weights[di] /= total
	}

	// Stage 2: weighted gene scores, concurrently per dataset, merged
	// under a mutex at dataset granularity (coarse enough to be cheap).
	geneScore := make(map[string]float64, len(e.order))
	geneWeight := make(map[string]float64, len(e.order))
	var mu sync.Mutex
	work2 := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work2 {
				if weights[di] == 0 {
					continue
				}
				local := e.scoreDataset(di, query)
				mu.Lock()
				for id, s := range local {
					geneScore[id] += weights[di] * s
					geneWeight[id] += weights[di]
				}
				mu.Unlock()
			}
		}()
	}
	for di := range e.datasets {
		work2 <- di
	}
	close(work2)
	wg.Wait()

	res := &Result{Query: append([]string(nil), query...)}
	for di := range e.datasets {
		res.Datasets = append(res.Datasets, DatasetRank{
			Index:          di,
			Name:           e.datasets[di].Name,
			Weight:         weights[di],
			QueryCoherence: scores[di].coherence,
			QueryPresent:   scores[di].present,
		})
	}
	sort.SliceStable(res.Datasets, func(a, b int) bool {
		return res.Datasets[a].Weight > res.Datasets[b].Weight
	})

	for _, id := range e.order {
		isQ := qset[id]
		if isQ && !opt.IncludeQuery {
			continue
		}
		w := geneWeight[id]
		if w == 0 {
			continue
		}
		res.Genes = append(res.Genes, GeneRank{
			ID:      id,
			Name:    e.ids[id].name,
			Score:   geneScore[id] / w,
			IsQuery: isQ,
		})
	}
	sort.SliceStable(res.Genes, func(a, b int) bool {
		return res.Genes[a].Score > res.Genes[b].Score
	})
	if opt.MaxGenes > 0 && len(res.Genes) > opt.MaxGenes {
		res.Genes = res.Genes[:opt.MaxGenes]
	}
	return res, nil
}

// queryRows collects the z-scored rows of the query genes present in
// dataset di.
func (e *Engine) queryRows(di int, query []string) (rows [][]float64, present int) {
	for _, q := range query {
		if g, ok := e.index[di][q]; ok {
			rows = append(rows, e.zrows[di][g])
			present++
		}
	}
	return rows, present
}

// queryCoherence is the mean Fisher-z-transformed pairwise Pearson
// correlation among the query rows — SPELL's dataset informativeness
// signal. NaN when fewer than two query genes are present.
func queryCoherence(rows [][]float64) float64 {
	if len(rows) < 2 {
		return math.NaN()
	}
	s, n := 0.0, 0
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			r := stats.Pearson(rows[i], rows[j])
			if math.IsNaN(r) {
				continue
			}
			s += stats.FisherZ(r)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// scoreDataset returns, for every gene in dataset di, its mean correlation
// to the query genes present there.
func (e *Engine) scoreDataset(di int, query []string) map[string]float64 {
	qrows, present := e.queryRows(di, query)
	if present == 0 {
		return nil
	}
	ds := e.datasets[di]
	out := make(map[string]float64, ds.NumGenes())
	for g := 0; g < ds.NumGenes(); g++ {
		row := e.zrows[di][g]
		s, n := 0.0, 0
		for _, qr := range qrows {
			r := stats.Pearson(row, qr)
			if math.IsNaN(r) {
				continue
			}
			s += r
			n++
		}
		if n > 0 {
			out[ds.Genes[g].ID] = s / float64(n)
		}
	}
	return out
}

// TopGeneIDs returns the IDs of the first n ranked genes (or fewer).
func (r *Result) TopGeneIDs(n int) []string {
	if n > len(r.Genes) {
		n = len(r.Genes)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.Genes[i].ID
	}
	return out
}

// PrecisionAtK returns the fraction of the top-k ranked genes that belong
// to the relevant set — the planted-module recovery metric used by the
// Figure-4 reproduction.
func (r *Result) PrecisionAtK(k int, relevant map[string]bool) float64 {
	if k <= 0 || len(r.Genes) == 0 {
		return math.NaN()
	}
	if k > len(r.Genes) {
		k = len(r.Genes)
	}
	hits := 0
	for _, g := range r.Genes[:k] {
		if relevant[g.ID] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
