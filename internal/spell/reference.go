package spell

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"forestview/internal/stats"
)

// ReferenceSearch is the original SPELL scoring path, retained as the
// golden standard the dense kernel is verified against (parity to 1e-12 in
// the package tests) and as the baseline BenchmarkF4_SPELLReference
// measures the kernel's speedup from. It computes every Pearson pair with
// the NaN-pairwise statistic — re-deriving means and sums of the z-scored
// rows on every call — and merges per-dataset map[string]float64 score
// tables under one mutex, exactly as the engine did before the kernel
// rewrite. Do not optimize it: its value is being obviously equivalent to
// the SPELL definition.
//
// Results match Search up to floating-point accumulation order; the query
// contract (internal canonicalization, error cases) is identical.
func (e *Engine) ReferenceSearch(query []string, opt Options) (*Result, error) {
	query = CanonicalQuery(query)
	if len(query) == 0 {
		return nil, errors.New("spell: empty query")
	}
	qset := make(map[string]bool, len(query))
	qgids := make([]int, 0, len(query))
	for _, q := range query {
		qset[q] = true
		if gi, ok := e.gid[q]; ok {
			qgids = append(qgids, gi)
		}
	}
	if len(qgids) == 0 {
		return nil, fmt.Errorf("spell: none of the %d query genes occur in the compendium", len(query))
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(e.slabs) {
		par = len(e.slabs)
	}

	// Stage 1: per-dataset query coherence.
	type dsScore struct {
		coherence float64
		present   int
	}
	scores := make([]dsScore, len(e.slabs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work {
				rows := e.referenceQueryRows(di, qgids)
				scores[di] = dsScore{
					coherence: referenceCoherence(rows),
					present:   len(rows),
				}
			}
		}()
	}
	for di := range e.slabs {
		work <- di
	}
	close(work)
	wg.Wait()

	weights := make([]float64, len(e.slabs))
	total := 0.0
	for di, s := range scores {
		w := s.coherence
		if opt.UniformWeights {
			if s.present > 0 {
				w = 1
			} else {
				w = 0
			}
		}
		if math.IsNaN(w) || w < 0 {
			w = 0
		}
		weights[di] = w
		total += w
	}
	if total == 0 {
		n := 0
		for di, s := range scores {
			if s.present > 0 {
				weights[di] = 1
				n++
			}
		}
		if n == 0 {
			return nil, errors.New("spell: query genes absent from every dataset")
		}
		total = float64(n)
	}
	for di := range weights {
		weights[di] /= total
	}

	// Stage 2: weighted gene scores in string-keyed maps, merged under a
	// mutex at dataset granularity.
	geneScore := make(map[string]float64, len(e.order))
	geneWeight := make(map[string]float64, len(e.order))
	var mu sync.Mutex
	work2 := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work2 {
				if weights[di] == 0 {
					continue
				}
				local := e.referenceScoreDataset(di, qgids)
				mu.Lock()
				for id, s := range local {
					geneScore[id] += weights[di] * s
					geneWeight[id] += weights[di]
				}
				mu.Unlock()
			}
		}()
	}
	for di := range e.slabs {
		work2 <- di
	}
	close(work2)
	wg.Wait()

	res := &Result{Query: query}
	for di := range e.slabs {
		res.Datasets = append(res.Datasets, DatasetRank{
			Index:          di,
			Name:           e.datasets[di].Name,
			Weight:         weights[di],
			QueryCoherence: scores[di].coherence,
			QueryPresent:   scores[di].present,
		})
	}
	sort.SliceStable(res.Datasets, func(a, b int) bool {
		return res.Datasets[a].Weight > res.Datasets[b].Weight
	})

	for gi, id := range e.order {
		isQ := qset[id]
		if isQ && !opt.IncludeQuery {
			continue
		}
		w := geneWeight[id]
		if w == 0 {
			continue
		}
		res.Genes = append(res.Genes, GeneRank{
			ID:      id,
			Name:    e.names[gi],
			Score:   geneScore[id] / w,
			IsQuery: isQ,
		})
	}
	sort.SliceStable(res.Genes, func(a, b int) bool {
		return res.Genes[a].Score > res.Genes[b].Score
	})
	if opt.MaxGenes > 0 && len(res.Genes) > opt.MaxGenes {
		res.Genes = res.Genes[:opt.MaxGenes]
	}
	return res, nil
}

// referenceQueryRows collects the z-scored rows of the query genes present
// in dataset di.
func (e *Engine) referenceQueryRows(di int, qgids []int) [][]float64 {
	sl := e.slabs[di]
	var rows [][]float64
	for _, gi := range qgids {
		if r := sl.rowOf[gi]; r >= 0 {
			rows = append(rows, sl.zrow(r))
		}
	}
	return rows
}

// referenceCoherence is the mean Fisher-z pairwise Pearson correlation of
// the query rows, each pair computed from scratch with stats.Pearson.
func referenceCoherence(rows [][]float64) float64 {
	if len(rows) < 2 {
		return math.NaN()
	}
	s, n := 0.0, 0
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			r := stats.Pearson(rows[i], rows[j])
			if math.IsNaN(r) {
				continue
			}
			s += stats.FisherZ(r)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// referenceScoreDataset returns, for every gene in dataset di, its mean
// correlation to the query genes present there, in a string-keyed map.
func (e *Engine) referenceScoreDataset(di int, qgids []int) map[string]float64 {
	qrows := e.referenceQueryRows(di, qgids)
	if len(qrows) == 0 {
		return nil
	}
	sl := e.slabs[di]
	ds := e.datasets[di]
	out := make(map[string]float64, len(sl.fast))
	for g := range sl.fast {
		row := sl.zrow(int32(g))
		s, n := 0.0, 0
		for _, qr := range qrows {
			r := stats.Pearson(row, qr)
			if math.IsNaN(r) {
				continue
			}
			s += r
			n++
		}
		if n > 0 {
			out[ds.Genes[g].ID] = s / float64(n)
		}
	}
	return out
}
