package spell

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/synth"
)

// shardSplit builds one engine per shard over a round-robin split of the
// datasets, runs PartialSearch on each, and remaps the per-shard local
// dataset indexes back to the global compendium order — exactly what the
// shard server role does before answering the coordinator.
func shardSplit(t testing.TB, dss []*microarray.Dataset, nShards int, query []string, opt Options) []Partial {
	t.Helper()
	var parts []Partial
	for s := 0; s < nShards; s++ {
		var slice []*microarray.Dataset
		var global []int
		for di, ds := range dss {
			if di%nShards == s {
				slice = append(slice, ds)
				global = append(global, di)
			}
		}
		if len(slice) == 0 {
			continue
		}
		se, err := NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		p, err := se.PartialSearch(query, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Datasets {
			p.Datasets[i].Index = global[p.Datasets[i].Index]
		}
		parts = append(parts, *p)
	}
	return parts
}

// disjointDataset is a dataset over gene IDs that occur nowhere else in the
// compendium: it measures zero query genes, its coherence is NaN, and any
// shard holding it alone contributes nothing — the "shard holding zero
// coherent datasets" acceptance case.
func disjointDataset(name string, nGenes, nExp int, seed int64) *microarray.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &microarray.Dataset{Name: name, Experiments: make([]string, nExp)}
	for g := 0; g < nGenes; g++ {
		id := fmt.Sprintf("%s-X%03d", name, g)
		ds.Genes = append(ds.Genes, microarray.Gene{ID: id, Name: id})
		row := make([]float64, nExp)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		ds.Data = append(ds.Data, row)
	}
	return ds
}

// TestMergeMatchesSearch is the golden-parity proof for the sharded
// pipeline: for every shard count in {1, 2, 3, 5}, Merge over the
// round-robin split of the compendium must agree with the single-process
// Search to 1e-12 — dataset weights, coherences, gene scores, and rank
// order (modulo exact float ties) — including a disjoint dataset whose
// shard contributes zero coherent datasets, missing values, and every
// result-shaping option.
func TestMergeMatchesSearch(t *testing.T) {
	for _, missing := range []float64{0, 0.05} {
		t.Run(fmt.Sprintf("missing-%g", missing), func(t *testing.T) {
			u := synth.NewUniverse(200, 8, 41)
			dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
				NumDatasets: 7, MinExperiments: 8, MaxExperiments: 18,
				ActiveFraction: 0.5, Noise: 0.3, MissingRate: missing, Seed: 42,
			})
			// Dataset 7 measures no query gene at all; with 5 shards the
			// round-robin split parks it (index 7 mod 5 == 2) next to a
			// coherent dataset, and with smaller compendndia-to-shard ratios
			// it still exercises Present == 0 / NaN-coherence merging.
			dss = append(dss, disjointDataset("disjoint", 30, 10, 99))
			full, err := NewEngine(dss)
			if err != nil {
				t.Fatal(err)
			}
			query := u.ModuleGeneIDs(3)[:5]
			for _, opt := range []Options{
				{},
				{IncludeQuery: true},
				{UniformWeights: true},
				{MaxGenes: 25, IncludeQuery: true},
			} {
				want, err := full.Search(query, opt)
				if err != nil {
					t.Fatalf("search %+v: %v", opt, err)
				}
				for _, nShards := range []int{1, 2, 3, 5} {
					parts := shardSplit(t, dss, nShards, query, opt)
					got, err := Merge(parts, opt)
					if err != nil {
						t.Fatalf("merge %d shards %+v: %v", nShards, opt, err)
					}
					assertResultsMatch(t, got, want, 1e-12)
					// Identical rank order, not merely tie-tolerant: the
					// synthetic scores carry no exact float ties.
					for i := range want.Genes {
						if got.Genes[i].ID != want.Genes[i].ID {
							t.Fatalf("%d shards %+v: rank %d = %s, want %s",
								nShards, opt, i, got.Genes[i].ID, want.Genes[i].ID)
						}
					}
					for i := range want.Datasets {
						if got.Datasets[i].Index != want.Datasets[i].Index {
							t.Fatalf("%d shards %+v: dataset rank %d = index %d, want %d",
								nShards, opt, i, got.Datasets[i].Index, want.Datasets[i].Index)
						}
					}
				}
			}
		})
	}
}

// TestMergeDegenerateFallback: when no dataset holds two query genes,
// every coherence is NaN, and Search falls back to uniform weights over
// datasets measuring the query. Merge must reproduce that from the
// unweighted accumulator pair — the global total being zero is knowable
// only at merge time.
func TestMergeDegenerateFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nExp = 10
	mk := func(name string, ids ...string) *microarray.Dataset {
		ds := &microarray.Dataset{Name: name, Experiments: make([]string, nExp)}
		for _, id := range ids {
			row := make([]float64, nExp)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			ds.Genes = append(ds.Genes, microarray.Gene{ID: id, Name: id})
			ds.Data = append(ds.Data, row)
		}
		return ds
	}
	// A and B never share a dataset: coherence is NaN everywhere.
	dss := []*microarray.Dataset{
		mk("d0", "A", "F0", "F1", "F2"),
		mk("d1", "B", "F1", "F3", "F4"),
		mk("d2", "F0", "F3", "F5"),
	}
	full, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	query := []string{"A", "B"}
	want, err := full.Search(query, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, nShards := range []int{1, 2, 3} {
		parts := shardSplit(t, dss, nShards, query, Options{IncludeQuery: true})
		got, err := Merge(parts, Options{IncludeQuery: true})
		if err != nil {
			t.Fatalf("%d shards: %v", nShards, err)
		}
		assertResultsMatch(t, got, want, 1e-12)
	}
}

// TestPartialSearchNoQueryGenes: a shard whose slice holds none of the
// query genes answers with a valid zero-contribution partial, not an error
// — Search's "none occur" error belongs to the union, which only Merge
// sees.
func TestPartialSearchNoQueryGenes(t *testing.T) {
	e, err := NewEngine([]*microarray.Dataset{disjointDataset("lone", 20, 8, 3)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.PartialSearch([]string{"A", "B"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Genes) != 0 || len(p.Datasets) != 1 {
		t.Fatalf("partial shape: %d genes, %d datasets", len(p.Genes), len(p.Datasets))
	}
	if d := p.Datasets[0]; d.Present != 0 || !math.IsNaN(d.Coherence) {
		t.Fatalf("dataset entry: %+v", d)
	}
	// The union of only such shards is the single-process error case.
	if _, err := Merge([]Partial{*p}, Options{}); err == nil {
		t.Fatal("merge of query-free partials should error")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(nil, Options{}); err == nil {
		t.Fatal("empty partial list accepted")
	}
	pd := []PartialDataset{{Index: 0, Name: "d", Coherence: 1, Present: 2}}
	if _, err := Merge([]Partial{
		{Query: []string{"A", "B"}, Datasets: pd},
		{Query: []string{"A", "C"}, Datasets: []PartialDataset{{Index: 1, Name: "e", Present: 2}}},
	}, Options{}); err == nil {
		t.Fatal("mismatched queries accepted")
	}
	if _, err := Merge([]Partial{
		{Query: []string{"A", "B"}, Datasets: pd},
		{Query: []string{"A", "B"}, Datasets: pd},
	}, Options{}); err == nil {
		t.Fatal("dataset claimed by two shards accepted")
	}
}

// TestPartialGobRoundTrip pins the wire contract: a Partial — NaN
// coherences included — survives encoding/gob bit-exactly, so the merged
// result of decoded partials is identical (==, not merely close) to the
// merge of the originals.
func TestPartialGobRoundTrip(t *testing.T) {
	u := synth.NewUniverse(120, 6, 17)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 3, MinExperiments: 8, MaxExperiments: 12,
		ActiveFraction: 0.5, Noise: 0.3, MissingRate: 0.03, Seed: 18,
	})
	dss = append(dss, disjointDataset("disjoint", 10, 8, 5))
	query := u.ModuleGeneIDs(2)[:4]
	parts := shardSplit(t, dss, 2, query, Options{})

	var wire []Partial
	for _, p := range parts {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatal(err)
		}
		var back Partial
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
			t.Fatal(err)
		}
		wire = append(wire, back)
	}
	want, err := Merge(parts, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge(wire, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Genes) != len(want.Genes) || len(got.Datasets) != len(want.Datasets) {
		t.Fatalf("shape changed over the wire")
	}
	for i := range want.Genes {
		if got.Genes[i] != want.Genes[i] {
			t.Fatalf("gene %d: %+v vs %+v", i, got.Genes[i], want.Genes[i])
		}
	}
	for i := range want.Datasets {
		g, w := got.Datasets[i], want.Datasets[i]
		bothNaN := math.IsNaN(g.QueryCoherence) && math.IsNaN(w.QueryCoherence)
		if bothNaN {
			g.QueryCoherence, w.QueryCoherence = 0, 0
		}
		if g != w {
			t.Fatalf("dataset %d: %+v vs %+v", i, got.Datasets[i], want.Datasets[i])
		}
	}
}

func TestPartialSearchCtxCanceled(t *testing.T) {
	u := synth.NewUniverse(100, 5, 23)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 3, MinExperiments: 8, MaxExperiments: 10, Seed: 24,
	})
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.PartialSearchCtx(ctx, u.ModuleGeneIDs(1)[:3], Options{}); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestPartialConcurrentHammer drives concurrent PartialSearch + Merge
// against shared engines; under -race it proves the dual-accumulator
// stage shares nothing mutable, and results must stay deterministic.
func TestPartialConcurrentHammer(t *testing.T) {
	u := synth.NewUniverse(150, 6, 61)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 6, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, MissingRate: 0.03, Seed: 62,
	})
	full, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	query := u.ModuleGeneIDs(2)[:4]
	want, err := full.Search(query, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}

	// Two shard engines, shared by all workers.
	type eng struct {
		e      *Engine
		global []int
	}
	var shards []eng
	for s := 0; s < 2; s++ {
		var slice []*microarray.Dataset
		var global []int
		for di, ds := range dss {
			if di%2 == s {
				slice = append(slice, ds)
				global = append(global, di)
			}
		}
		se, err := NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, eng{e: se, global: global})
	}

	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				var parts []Partial
				for _, sh := range shards {
					p, err := sh.e.PartialSearch(query, Options{Parallelism: 1 + (w+iter)%3})
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					for i := range p.Datasets {
						p.Datasets[i].Index = sh.global[p.Datasets[i].Index]
					}
					parts = append(parts, *p)
				}
				got, err := Merge(parts, Options{IncludeQuery: true})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(got.Genes) != len(want.Genes) {
					t.Errorf("worker %d: %d genes, want %d", w, len(got.Genes), len(want.Genes))
					return
				}
				for i := range got.Genes {
					if math.Abs(got.Genes[i].Score-want.Genes[i].Score) > 1e-9 {
						t.Errorf("worker %d: rank %d score %v vs %v",
							w, i, got.Genes[i].Score, want.Genes[i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPartialSubsetMatchesSearch is the replication-era parity proof: a
// shard that holds more datasets than one request should claim (top-R
// ownership replicates slices) serves per-group *subsets* of its slice,
// and merging those subset partials must still reproduce the
// single-process Search. Here two "replica" engines hold overlapping
// slices of the compendium while the subsets requested from them
// partition the global dataset list exactly once — the coordinator's
// single-coverage discipline — and the merge must match Search to 1e-12.
func TestPartialSubsetMatchesSearch(t *testing.T) {
	u := synth.NewUniverse(180, 8, 43)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 7, MinExperiments: 8, MaxExperiments: 16,
		ActiveFraction: 0.5, Noise: 0.3, MissingRate: 0.03, Seed: 44,
	})
	dss = append(dss, disjointDataset("disjoint", 25, 9, 17))
	full, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	query := u.ModuleGeneIDs(2)[:5]

	// Replica A holds globals {0..5}, replica B holds {3..7}: datasets 3-5
	// exist on both, like any dataset with two rendezvous owners.
	buildReplica := func(globals []int) (*Engine, []int) {
		var slice []*microarray.Dataset
		for _, gi := range globals {
			slice = append(slice, dss[gi])
		}
		e, err := NewEngine(slice)
		if err != nil {
			t.Fatal(err)
		}
		return e, globals
	}
	engA, globA := buildReplica([]int{0, 1, 2, 3, 4, 5})
	engB, globB := buildReplica([]int{3, 4, 5, 6, 7})

	// The coordinator assigns each global dataset to exactly one replica:
	// A serves {0,1,2,4}, B serves {3,5,6,7} — including datasets both
	// hold, split across the two.
	serveA := map[int]bool{0: true, 1: true, 2: true, 4: true}
	var subA, subB []int
	for li, gi := range globA {
		if serveA[gi] {
			subA = append(subA, li)
		}
	}
	for li, gi := range globB {
		if !serveA[gi] {
			subB = append(subB, li)
		}
	}

	for _, opt := range []Options{
		{},
		{UniformWeights: true},
		{MaxGenes: 25, IncludeQuery: true},
	} {
		want, err := full.Search(query, opt)
		if err != nil {
			t.Fatalf("search %+v: %v", opt, err)
		}
		pA, err := engA.PartialSearchSubsetCtx(context.Background(), query, subA, opt)
		if err != nil {
			t.Fatal(err)
		}
		pB, err := engB.PartialSearchSubsetCtx(context.Background(), query, subB, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pA.Datasets {
			pA.Datasets[i].Index = globA[pA.Datasets[i].Index]
		}
		for i := range pB.Datasets {
			pB.Datasets[i].Index = globB[pB.Datasets[i].Index]
		}
		got, err := Merge([]Partial{*pA, *pB}, opt)
		if err != nil {
			t.Fatalf("merge %+v: %v", opt, err)
		}
		assertResultsMatch(t, got, want, 1e-12)
		for i := range want.Genes {
			if got.Genes[i].ID != want.Genes[i].ID {
				t.Fatalf("%+v: rank %d = %s, want %s", opt, i, got.Genes[i].ID, want.Genes[i].ID)
			}
		}
	}

	// A nil subset is the whole slice (PartialSearchCtx), an empty subset a
	// valid empty partial, and malformed subsets are loud errors.
	if p, err := engA.PartialSearchSubsetCtx(context.Background(), query, []int{}, Options{}); err != nil || len(p.Datasets) != 0 || len(p.Genes) != 0 {
		t.Fatalf("empty subset: %+v, %v", p, err)
	}
	if _, err := engA.PartialSearchSubsetCtx(context.Background(), query, []int{0, 0}, Options{}); err == nil {
		t.Fatal("duplicate subset index accepted")
	}
	if _, err := engA.PartialSearchSubsetCtx(context.Background(), query, []int{99}, Options{}); err == nil {
		t.Fatal("out-of-range subset index accepted")
	}
}
