package spell

import (
	"math"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/synth"
)

// fixtureCompendium builds a small compendium where module 2's genes are
// co-expressed only in datasets 0 and 1; dataset 2 has module 2 inactive.
func fixtureCompendium(t *testing.T) (*synth.Universe, []*microarray.Dataset, []string) {
	t.Helper()
	u := synth.NewUniverse(300, 10, 71)
	mod := 2
	if len(u.Modules[mod].Genes) < 8 {
		// Find a module with enough genes.
		for i := 2; i < len(u.Modules); i++ {
			if len(u.Modules[i].Genes) >= 8 {
				mod = i
				break
			}
		}
	}
	others := []int{}
	for i := 2; i < len(u.Modules); i++ {
		if i != mod {
			others = append(others, i)
		}
	}
	dss := []*microarray.Dataset{
		u.Generate(synth.DatasetSpec{Name: "informative-A", NumExperiments: 25,
			ActiveModules: []int{mod}, Noise: 0.2, Seed: 73}),
		u.Generate(synth.DatasetSpec{Name: "informative-B", NumExperiments: 20,
			ActiveModules: []int{mod, others[0]}, Noise: 0.2, Seed: 79}),
		u.Generate(synth.DatasetSpec{Name: "uninformative", NumExperiments: 22,
			ActiveModules: others, Noise: 0.2, Seed: 83}),
	}
	ids := u.ModuleGeneIDs(mod)
	return u, dss, ids
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Fatal("empty compendium should error")
	}
}

func TestSearchErrors(t *testing.T) {
	_, dss, _ := fixtureCompendium(t)
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(nil, Options{}); err == nil {
		t.Fatal("empty query should error")
	}
	if _, err := e.Search([]string{"NOT-A-GENE"}, Options{}); err == nil {
		t.Fatal("unknown query genes should error")
	}
}

func TestSearchRanksInformativeDatasetsFirst(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	query := moduleIDs[:4]
	res, err := e.Search(query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("dataset ranks = %d", len(res.Datasets))
	}
	// The uninformative dataset must rank last with (near-)zero weight.
	last := res.Datasets[2]
	if last.Name != "uninformative" {
		t.Fatalf("dataset ranking = %v, %v, %v",
			res.Datasets[0].Name, res.Datasets[1].Name, res.Datasets[2].Name)
	}
	if last.Weight > res.Datasets[0].Weight/2 {
		t.Fatalf("uninformative weight %v too close to top weight %v",
			last.Weight, res.Datasets[0].Weight)
	}
	// Weights sum to 1.
	sum := 0.0
	for _, d := range res.Datasets {
		sum += d.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestSearchRecoversPlantedModule(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	query := moduleIDs[:4]
	res, err := e.Search(query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	relevant := make(map[string]bool)
	for _, id := range moduleIDs {
		relevant[id] = true
	}
	rest := len(moduleIDs) - len(query)
	k := rest
	if k > 10 {
		k = 10
	}
	p := res.PrecisionAtK(k, relevant)
	if p < 0.7 {
		t.Fatalf("precision@%d = %v, want >= 0.7 (module recovery)", k, p)
	}
}

func TestSearchQueryInclusion(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	query := moduleIDs[:3]

	excl, err := e.Search(query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range excl.Genes {
		for _, q := range query {
			if g.ID == q {
				t.Fatalf("query gene %s leaked into results", q)
			}
		}
	}

	incl, err := e.Search(query, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, g := range incl.Genes {
		if g.IsQuery {
			found++
		}
	}
	if found != len(query) {
		t.Fatalf("query genes in results = %d, want %d", found, len(query))
	}
	// Query genes should rank very high: they correlate perfectly with
	// themselves.
	topSet := make(map[string]bool)
	for _, g := range incl.Genes[:len(query)*5] {
		topSet[g.ID] = true
	}
	hits := 0
	for _, q := range query {
		if topSet[q] {
			hits++
		}
	}
	if hits < len(query)-1 {
		t.Fatalf("only %d/%d query genes near the top", hits, len(query))
	}
}

func TestSearchMaxGenes(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	res, err := e.Search(moduleIDs[:3], Options{MaxGenes: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Genes) != 7 {
		t.Fatalf("genes = %d, want 7", len(res.Genes))
	}
}

func TestSearchSingleGeneQueryFallsBack(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	res, err := e.Search(moduleIDs[:1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With a single query gene, coherence is undefined everywhere and
	// weights must fall back to uniform over datasets measuring the gene.
	for _, d := range res.Datasets {
		if math.Abs(d.Weight-1.0/3.0) > 1e-9 {
			t.Fatalf("uniform fallback weight = %v", d.Weight)
		}
	}
	if len(res.Genes) == 0 {
		t.Fatal("single-gene query should still rank genes")
	}
}

func TestSearchGeneScoresOrdered(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	res, err := e.Search(moduleIDs[:4], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Genes); i++ {
		if res.Genes[i].Score > res.Genes[i-1].Score+1e-12 {
			t.Fatalf("gene ranking not sorted at %d: %v > %v",
				i, res.Genes[i].Score, res.Genes[i-1].Score)
		}
	}
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	query := moduleIDs[:4]
	seq, err := e.Search(query, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Search(query, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Genes) != len(par.Genes) {
		t.Fatalf("lengths differ: %d vs %d", len(seq.Genes), len(par.Genes))
	}
	for i := range seq.Genes {
		if seq.Genes[i].ID != par.Genes[i].ID {
			// Scores are floating-point sums accumulated in different
			// orders; ties may swap. Require score agreement instead.
			if math.Abs(seq.Genes[i].Score-par.Genes[i].Score) > 1e-9 {
				t.Fatalf("rank %d differs: %s(%v) vs %s(%v)", i,
					seq.Genes[i].ID, seq.Genes[i].Score,
					par.Genes[i].ID, par.Genes[i].Score)
			}
		}
	}
}

func TestTopGeneIDs(t *testing.T) {
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	res, _ := e.Search(moduleIDs[:3], Options{})
	top := res.TopGeneIDs(5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	all := res.TopGeneIDs(1 << 20)
	if len(all) != len(res.Genes) {
		t.Fatalf("overlong request should clamp: %d vs %d", len(all), len(res.Genes))
	}
}

func TestPrecisionAtKEdgeCases(t *testing.T) {
	r := &Result{}
	if !math.IsNaN(r.PrecisionAtK(5, nil)) {
		t.Fatal("empty result precision should be NaN")
	}
	r = &Result{Genes: []GeneRank{{ID: "A"}, {ID: "B"}}}
	if p := r.PrecisionAtK(10, map[string]bool{"A": true}); p != 0.5 {
		t.Fatalf("clamped precision = %v, want 0.5", p)
	}
	if !math.IsNaN(r.PrecisionAtK(0, nil)) {
		t.Fatal("k=0 should be NaN")
	}
}

func TestUniformWeightsAblation(t *testing.T) {
	// With uniform weights every dataset measuring the query gets equal
	// weight, informative or not; SPELL weighting must concentrate on the
	// informative ones.
	_, dss, moduleIDs := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	query := moduleIDs[:4]

	weighted, err := e.Search(query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := e.Search(query, Options{UniformWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform mode: all three datasets weigh 1/3.
	for _, d := range uniform.Datasets {
		if math.Abs(d.Weight-1.0/3.0) > 1e-9 {
			t.Fatalf("uniform weight = %v", d.Weight)
		}
	}
	// Weighted mode: the top dataset outweighs the uniform share.
	if weighted.Datasets[0].Weight <= 1.0/3.0 {
		t.Fatalf("weighted top weight = %v, want > 1/3", weighted.Datasets[0].Weight)
	}
	// Recovery quality: weighted >= uniform on the planted module.
	relevant := make(map[string]bool)
	for _, id := range moduleIDs {
		relevant[id] = true
	}
	k := 10
	pw := weighted.PrecisionAtK(k, relevant)
	pu := uniform.PrecisionAtK(k, relevant)
	if pw+1e-9 < pu {
		t.Fatalf("weighted precision %v < uniform %v", pw, pu)
	}
}

func TestEngineCounts(t *testing.T) {
	_, dss, _ := fixtureCompendium(t)
	e, _ := NewEngine(dss)
	if e.NumDatasets() != 3 {
		t.Fatalf("NumDatasets = %d", e.NumDatasets())
	}
	if e.NumGenes() != 300 {
		t.Fatalf("NumGenes = %d", e.NumGenes())
	}
}

func TestSearchPartialGeneUniverse(t *testing.T) {
	// Datasets measuring disjoint gene subsets: scores must still combine.
	u := synth.NewUniverse(100, 6, 91)
	full := u.Generate(synth.DatasetSpec{Name: "full", NumExperiments: 15, Seed: 92})
	// Build a half dataset by subsetting rows 0..49.
	rows := make([]int, 50)
	for i := range rows {
		rows[i] = i
	}
	half := full.Subset("half", rows)
	e, err := NewEngine([]*microarray.Dataset{full, half})
	if err != nil {
		t.Fatal(err)
	}
	// Query with genes only in the full dataset.
	q := []string{u.Genes[60].ID, u.Genes[61].ID}
	res, err := e.Search(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The half dataset cannot measure the query; its weight must be 0 or
	// the uniform fallback must exclude it.
	for _, d := range res.Datasets {
		if d.Name == "half" && d.QueryPresent != 0 {
			t.Fatalf("half dataset claims %d query genes", d.QueryPresent)
		}
	}
}
