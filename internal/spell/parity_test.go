package spell

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/synth"
)

// assertResultsMatch checks that two search results agree to tol: identical
// dataset weights/coherence by dataset index, the same set of scored genes,
// matching scores, and a rank order that only differs where scores tie
// within tol.
func assertResultsMatch(t *testing.T, got, want *Result, tol float64) {
	t.Helper()
	if len(got.Datasets) != len(want.Datasets) {
		t.Fatalf("dataset count %d vs %d", len(got.Datasets), len(want.Datasets))
	}
	gotW := make(map[int]DatasetRank)
	for _, d := range got.Datasets {
		gotW[d.Index] = d
	}
	for _, w := range want.Datasets {
		g := gotW[w.Index]
		if math.Abs(g.Weight-w.Weight) > tol {
			t.Fatalf("dataset %d weight %v vs %v", w.Index, g.Weight, w.Weight)
		}
		bothNaN := math.IsNaN(g.QueryCoherence) && math.IsNaN(w.QueryCoherence)
		if !bothNaN && math.Abs(g.QueryCoherence-w.QueryCoherence) > tol {
			t.Fatalf("dataset %d coherence %v vs %v", w.Index, g.QueryCoherence, w.QueryCoherence)
		}
		if g.QueryPresent != w.QueryPresent {
			t.Fatalf("dataset %d present %d vs %d", w.Index, g.QueryPresent, w.QueryPresent)
		}
	}
	if len(got.Genes) != len(want.Genes) {
		t.Fatalf("gene count %d vs %d", len(got.Genes), len(want.Genes))
	}
	gotScore := make(map[string]float64, len(got.Genes))
	for _, g := range got.Genes {
		gotScore[g.ID] = g.Score
	}
	for _, w := range want.Genes {
		g, ok := gotScore[w.ID]
		if !ok {
			t.Fatalf("gene %s missing from dense result", w.ID)
		}
		if math.Abs(g-w.Score) > tol {
			t.Fatalf("gene %s score %v vs %v (diff %g)", w.ID, g, w.Score, math.Abs(g-w.Score))
		}
	}
	// Rank order: positions may only differ where the scores tie within tol.
	for i := range want.Genes {
		if got.Genes[i].ID != want.Genes[i].ID &&
			math.Abs(got.Genes[i].Score-want.Genes[i].Score) > tol {
			t.Fatalf("rank %d: %s(%v) vs %s(%v)", i,
				got.Genes[i].ID, got.Genes[i].Score,
				want.Genes[i].ID, want.Genes[i].Score)
		}
	}
}

// TestDenseMatchesReference is the golden-parity proof for the dense
// kernel: on randomized synthetic compendia — including rows with missing
// values, which exercise the NaN-pairwise fallback — Search must agree
// with the retained naive ReferenceSearch to 1e-12, for both the SPELL
// weighting and the UniformWeights ablation.
func TestDenseMatchesReference(t *testing.T) {
	for _, seed := range []int64{3, 29, 137} {
		for _, missing := range []float64{0, 0.05} {
			name := fmt.Sprintf("seed-%d-missing-%g", seed, missing)
			t.Run(name, func(t *testing.T) {
				u := synth.NewUniverse(220, 9, seed)
				dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
					NumDatasets: 6, MinExperiments: 8, MaxExperiments: 20,
					ActiveFraction: 0.5, Noise: 0.3, MissingRate: missing,
					Seed: seed + 1,
				})
				e, err := NewEngine(dss)
				if err != nil {
					t.Fatal(err)
				}
				query := u.ModuleGeneIDs(3)[:5]
				for _, opt := range []Options{
					{},
					{IncludeQuery: true},
					{UniformWeights: true},
					{MaxGenes: 25, IncludeQuery: true},
					{Parallelism: 1},
				} {
					dense, err := e.Search(query, opt)
					if err != nil {
						t.Fatalf("dense %+v: %v", opt, err)
					}
					ref, err := e.ReferenceSearch(query, opt)
					if err != nil {
						t.Fatalf("reference %+v: %v", opt, err)
					}
					assertResultsMatch(t, dense, ref, 1e-12)
				}
			})
		}
	}
}

// TestDenseMatchesReferenceDuplicateGeneIDs: the supported readers reject
// datasets carrying the same gene ID twice, but a hand-built Dataset can.
// Both scorers must resolve the collision the same way (the row the index
// points at — the last — scores; earlier rows are ignored) so parity
// holds even on malformed input.
func TestDenseMatchesReferenceDuplicateGeneIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	const nExp = 12
	row := func() []float64 {
		r := make([]float64, nExp)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		return r
	}
	mk := func(name string, ids ...string) *microarray.Dataset {
		ds := &microarray.Dataset{Name: name, Experiments: make([]string, nExp)}
		for _, id := range ids {
			ds.Genes = append(ds.Genes, microarray.Gene{ID: id, Name: id})
			ds.Data = append(ds.Data, row())
		}
		return ds
	}
	// G3 appears twice in the first dataset with different values.
	dss := []*microarray.Dataset{
		mk("dup", "G0", "G1", "G2", "G3", "G3", "G4", "G5"),
		mk("clean", "G0", "G1", "G2", "G3", "G4", "G6"),
	}
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range [][]string{{"G0", "G1"}, {"G3", "G4", "G0"}} {
		dense, err := e.Search(query, Options{IncludeQuery: true})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := e.ReferenceSearch(query, Options{IncludeQuery: true})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsMatch(t, dense, ref, 1e-12)
		// The duplicated gene must appear exactly once in the ranking.
		seen := 0
		for _, g := range dense.Genes {
			if g.ID == "G3" {
				seen++
			}
		}
		if seen != 1 {
			t.Fatalf("query %v: G3 ranked %d times", query, seen)
		}
	}
}

// TestSearchDuplicateQueryInvariance is the regression test for the
// duplicate-query rank-inflation bug on the library entry point: a
// duplicated query gene used to add Pearson(row, row) = 1 pairs to a
// dataset's coherence, inflating its weight by FisherZ(1-ε) ≈ 8.06 per
// duplicate pair. Search([A, A, B]) must now return identical dataset
// weights and gene ranks to Search([A, B]).
func TestSearchDuplicateQueryInvariance(t *testing.T) {
	u := synth.NewUniverse(200, 8, 53)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 4, MinExperiments: 10, MaxExperiments: 16,
		ActiveFraction: 0.5, Noise: 0.25, Seed: 54,
	})
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	ids := u.ModuleGeneIDs(2)
	a, b := ids[0], ids[1]

	clean, err := e.Search([]string{a, b}, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := e.Search([]string{a, a, b}, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	// Identical, not merely close: dedupe happens before any arithmetic.
	for i := range clean.Datasets {
		if clean.Datasets[i] != dup.Datasets[i] {
			t.Fatalf("dataset rank %d differs: %+v vs %+v",
				i, dup.Datasets[i], clean.Datasets[i])
		}
	}
	if len(clean.Genes) != len(dup.Genes) {
		t.Fatalf("gene counts differ: %d vs %d", len(dup.Genes), len(clean.Genes))
	}
	for i := range clean.Genes {
		if clean.Genes[i] != dup.Genes[i] {
			t.Fatalf("gene rank %d differs: %+v vs %+v",
				i, dup.Genes[i], clean.Genes[i])
		}
	}
	// Whitespace padding and ordering are equally invisible.
	padded, err := e.Search([]string{" " + b + " ", a, a}, Options{IncludeQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Genes {
		if clean.Genes[i] != padded.Genes[i] {
			t.Fatalf("padded query changed rank %d", i)
		}
	}
}

// TestSearchConcurrentHammer drives many concurrent searches with varied
// options against one engine; run with -race it proves the per-worker
// accumulator design shares nothing mutable. Results must also be
// deterministic across the concurrent callers.
func TestSearchConcurrentHammer(t *testing.T) {
	u := synth.NewUniverse(150, 6, 61)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 5, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, MissingRate: 0.03, Seed: 62,
	})
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{
		u.ModuleGeneIDs(1)[:3],
		u.ModuleGeneIDs(2)[:4],
		u.ModuleGeneIDs(3)[:2],
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		want[i], err = e.Search(q, Options{IncludeQuery: true})
		if err != nil {
			t.Fatal(err)
		}
	}

	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				qi := (w + iter) % len(queries)
				opt := Options{
					IncludeQuery:   true,
					Parallelism:    1 + (w+iter)%4,
					UniformWeights: false,
				}
				res, err := e.Search(queries[qi], opt)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(res.Genes) != len(want[qi].Genes) {
					t.Errorf("worker %d: %d genes, want %d",
						w, len(res.Genes), len(want[qi].Genes))
					return
				}
				for i := range res.Genes {
					if math.Abs(res.Genes[i].Score-want[qi].Genes[i].Score) > 1e-9 {
						t.Errorf("worker %d: rank %d score %v vs %v",
							w, i, res.Genes[i].Score, want[qi].Genes[i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestReferenceSearchErrors pins the reference scorer to the same query
// contract as Search.
func TestReferenceSearchErrors(t *testing.T) {
	u := synth.NewUniverse(50, 4, 77)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 2, MinExperiments: 6, MaxExperiments: 8, Seed: 78,
	})
	e, err := NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReferenceSearch(nil, Options{}); err == nil {
		t.Fatal("empty query should error")
	}
	if _, err := e.ReferenceSearch([]string{"  "}, Options{}); err == nil {
		t.Fatal("blank query should error")
	}
	if _, err := e.ReferenceSearch([]string{"NOT-A-GENE"}, Options{}); err == nil {
		t.Fatal("unknown query genes should error")
	}
}
