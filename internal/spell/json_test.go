package spell

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDatasetRankMarshalNaNCoherence: an undefined coherence (the dataset
// measures fewer than two query genes) must encode as null — NaN is not
// representable in JSON and used to abort the encoder mid-response on every
// HTTP entry point.
func TestDatasetRankMarshalNaNCoherence(t *testing.T) {
	ranks := []DatasetRank{
		{Index: 1, Name: "ok", Weight: 0.5, QueryCoherence: 1.25, QueryPresent: 3},
		{Index: 2, Name: "undef", Weight: 0, QueryCoherence: math.NaN(), QueryPresent: 1},
	}
	b, err := json.Marshal(ranks)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(b)
	if !strings.Contains(s, `"QueryCoherence":null`) {
		t.Fatalf("NaN coherence not null: %s", s)
	}
	if !strings.Contains(s, `"QueryCoherence":1.25`) {
		t.Fatalf("defined coherence mangled: %s", s)
	}
	// Round trip: null leaves the zero value, everything else survives.
	var back []DatasetRank
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back[0].QueryCoherence != 1.25 || back[0].Name != "ok" || back[0].QueryPresent != 3 {
		t.Fatalf("round trip: %+v", back[0])
	}
	if back[1].QueryCoherence != 0 || back[1].Index != 2 {
		t.Fatalf("round trip of null: %+v", back[1])
	}
}
