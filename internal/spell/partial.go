package spell

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file factors Search into a mergeable pipeline for the sharded
// compendium (internal/shard): a shard engine holding a slice of the
// datasets computes a Partial — unnormalized per-dataset coherences plus
// per-gene correlation accumulators — and the pure Merge renormalizes the
// dataset weights over the union compendium and reproduces the
// single-process ranking.
//
// Why the accumulators merge exactly: SPELL's dataset weights are
// w_d = c_d / Σc (c_d the clamped raw coherence), and a gene's final score
// is Σ_d w_d·m_{g,d} / Σ_d w_d — the global normalizer Σc divides both the
// numerator and the denominator, so it cancels. A shard can therefore ship
// Σ_{d∈shard} c_d·m and Σ_{d∈shard} c_d without knowing Σc, and Merge's
// score (Σ c·m)/(Σ c) equals the single-process score up to float
// accumulation order (the golden-parity tests pin ≤1e-12). The one place
// the global total does change the math is SPELL's degenerate fallback —
// when every dataset's coherence clamps to zero, Search reweights uniformly
// over datasets measuring the query — and a shard cannot know locally
// whether the *global* total is zero. Each PartialGene therefore carries
// both accumulator pairs: coherence-weighted (WSum/WCnt) and unweighted
// (USum/UCnt); Merge picks per the global total (and UCnt also serves the
// UniformWeights ablation, which is deferred to merge time entirely).

// Partial is one shard's share of a search: every dataset the shard holds
// (weighted or not), and the accumulators for every gene that scored
// against the query there. Partials are wire-friendly — all fields
// exported, NaN coherences intact under encoding/gob — and are merged with
// Merge. The zero shard case (no query gene present anywhere in the slice)
// is a valid Partial with Present == 0 on every dataset and no genes.
type Partial struct {
	// Query is the canonicalized query the shard ran. Merge refuses to
	// combine partials of different queries.
	Query []string
	// Datasets lists every dataset of the shard's slice.
	Datasets []PartialDataset
	// Genes holds one accumulator entry per gene that scored in at least
	// one dataset of the slice, in the shard engine's stable gene order.
	Genes []PartialGene
}

// PartialDataset is one dataset's unnormalized stage-1 result.
type PartialDataset struct {
	// Index identifies the dataset in the *global* compendium order.
	// PartialSearch fills in the shard engine's local index; a sharded
	// deployment remaps it (server-side, from the shard's slice of the
	// global dataset list) before merging, so that merged dataset ranks
	// and zero-weight tie order match the single-process engine.
	Index int
	// Name of the dataset.
	Name string
	// Coherence is the raw mean Fisher-z pairwise query correlation — NaN
	// when fewer than two query genes are present, exactly as
	// DatasetRank.QueryCoherence before normalization.
	Coherence float64
	// Present counts how many query genes the dataset measures.
	Present int
}

// PartialGene carries one gene's mergeable score accumulators over the
// shard's datasets. m_{g,d} is the gene's mean correlation to the query
// genes within dataset d; c_d is the dataset's raw coherence clamped to
// [0, ∞) with NaN → 0.
type PartialGene struct {
	ID   string
	Name string
	// WSum = Σ c_d·m_{g,d} and WCnt = Σ c_d over the shard's datasets with
	// c_d > 0 where the gene scored — the coherence-weighted pair.
	WSum, WCnt float64
	// USum = Σ m_{g,d} and UCnt = count, over every dataset measuring the
	// query where the gene scored regardless of coherence — the uniform
	// pair, used by Merge for the degenerate fallback and the
	// UniformWeights ablation.
	USum, UCnt float64
}

// dualAccum is the stage-2 accumulator of PartialSearch: per-worker dense
// vectors like accum, but keeping the coherence-weighted and unweighted
// pairs side by side so one scoring pass feeds both (the mean-correlation
// dot products dominate; computing them twice would double the scan).
// It satisfies scoreAdder with w carrying the dataset's clamped raw
// coherence: the weighted pair only accumulates when it is positive,
// mirroring Search's stage-2 skip of zero-weight datasets.
type dualAccum struct {
	wsum, wcnt []float64
	usum, ucnt []float64
}

func newDualAccum(numGenes int) *dualAccum {
	return &dualAccum{
		wsum: make([]float64, numGenes),
		wcnt: make([]float64, numGenes),
		usum: make([]float64, numGenes),
		ucnt: make([]float64, numGenes),
	}
}

func (a *dualAccum) add(gid int32, c, meanCorr float64) {
	if c > 0 {
		a.wsum[gid] += c * meanCorr
		a.wcnt[gid] += c
	}
	a.usum[gid] += meanCorr
	a.ucnt[gid]++
}

// merge folds o into a by vector addition.
func (a *dualAccum) merge(o *dualAccum) {
	for i, v := range o.wsum {
		a.wsum[i] += v
	}
	for i, v := range o.wcnt {
		a.wcnt[i] += v
	}
	for i, v := range o.usum {
		a.usum[i] += v
	}
	for i, v := range o.ucnt {
		a.ucnt[i] += v
	}
}

// PartialSearch computes this engine's share of a sharded query. Unlike
// Search it does not error when no query gene occurs in this engine's
// datasets — on a shard that is an ordinary outcome, and the resulting
// empty Partial merges as zero contribution. Options are honored for
// Parallelism only: result-shaping options (MaxGenes, IncludeQuery,
// UniformWeights) apply at Merge time, because a shard cannot cap or
// filter accumulators without breaking the union renormalization.
func (e *Engine) PartialSearch(query []string, opt Options) (*Partial, error) {
	return e.PartialSearchCtx(context.Background(), query, opt)
}

// PartialSearchCtx is PartialSearch with cooperative cancellation: the
// per-dataset scan stops pulling work once ctx is done, so a coordinator
// deadline or a hung-up client stops costing shard CPU mid-scan.
func (e *Engine) PartialSearchCtx(ctx context.Context, query []string, opt Options) (*Partial, error) {
	return e.PartialSearchSubsetCtx(ctx, query, nil, opt)
}

// PartialSearchSubsetCtx is PartialSearchCtx restricted to a subset of
// this engine's datasets, given as local dataset indexes (nil means every
// dataset — plain PartialSearchCtx). The replicated fleet needs this:
// under top-R ownership a shard holds more datasets than any single
// request should claim, and the coordinator asks each replica for exactly
// one ownership group, so two replicas can never both count a dataset
// into one merge. Entries must be in range and unique; only the subset's
// datasets are scanned, scored, and listed in the Partial. An empty
// (non-nil) subset is valid and yields the empty partial.
func (e *Engine) PartialSearchSubsetCtx(ctx context.Context, query []string, subset []int, opt Options) (*Partial, error) {
	query = CanonicalQuery(query)
	if len(query) == 0 {
		return nil, errors.New("spell: empty query")
	}
	if subset == nil {
		subset = make([]int, len(e.slabs))
		for di := range subset {
			subset[di] = di
		}
	} else {
		seen := make(map[int]bool, len(subset))
		for _, di := range subset {
			if di < 0 || di >= len(e.slabs) {
				return nil, fmt.Errorf("spell: subset dataset index %d out of range [0,%d)", di, len(e.slabs))
			}
			if seen[di] {
				return nil, fmt.Errorf("spell: duplicate subset dataset index %d", di)
			}
			seen[di] = true
		}
	}
	qgids := make([]int, 0, len(query))
	for _, q := range query {
		if gi, ok := e.gid[q]; ok {
			qgids = append(qgids, gi)
		}
	}

	par := e.searchPar(opt.Parallelism)
	infos := e.queryInfosSubset(ctx, qgids, par, subset)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	p := &Partial{Query: query, Datasets: make([]PartialDataset, len(subset))}
	for i, di := range subset {
		p.Datasets[i] = PartialDataset{
			Index:     di,
			Name:      e.datasets[di].Name,
			Coherence: infos[di].coherence,
			Present:   len(infos[di].rows),
		}
	}
	if len(qgids) == 0 {
		return p, nil // no query gene in this slice: zero contribution
	}

	// Stage 2: one scoring pass per dataset measuring the query feeds both
	// accumulator pairs, per worker, merged lock-free like Search.
	accs := make([]*dualAccum, par)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc *dualAccum
			for di := range work {
				if len(infos[di].rows) == 0 || ctx.Err() != nil {
					continue
				}
				if acc == nil {
					acc = newDualAccum(len(e.order))
				}
				cw := infos[di].coherence
				if math.IsNaN(cw) || cw < 0 {
					cw = 0
				}
				scoreInto(e.slabs[di], infos[di].rows, infos[di].allFast, cw, acc)
			}
			accs[w] = acc
		}(w)
	}
	for _, di := range subset {
		work <- di
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var merged *dualAccum
	for _, a := range accs {
		if a == nil {
			continue
		}
		if merged == nil {
			merged = a
			continue
		}
		merged.merge(a)
	}
	if merged != nil {
		for gi := range e.order {
			if merged.ucnt[gi] == 0 {
				continue
			}
			p.Genes = append(p.Genes, PartialGene{
				ID:   e.order[gi],
				Name: e.names[gi],
				WSum: merged.wsum[gi], WCnt: merged.wcnt[gi],
				USum: merged.usum[gi], UCnt: merged.ucnt[gi],
			})
		}
	}
	return p, nil
}

// ErrNoQueryGenes reports that no dataset of the merged partials measured
// any query gene. Callers merging a *subset* of the compendium (a
// degraded scatter) should treat it as inconclusive — the missing shards
// may hold the genes — rather than as proof the genes don't exist.
var ErrNoQueryGenes = errors.New("spell: none of the query genes occur in the compendium")

// mergedGene is one gene's union accumulator during Merge.
type mergedGene struct {
	name       string
	wsum, wcnt float64
	usum, ucnt float64
}

// Merge combines per-shard partials into the full search result,
// renormalizing dataset weights over the union compendium. It is pure —
// no engine, no I/O — so the coordinator can merge whatever subset of
// shards answered: dropping a shard's partial renormalizes the weights
// over the survivors, which is exactly the degraded-mode semantics.
//
// Parity with the single-process Search (pinned ≤1e-12 by the package
// tests, for any split of the compendium): dataset weights sum the clamped
// coherences in global-index order, the degenerate all-zero-coherence
// fallback reweights uniformly over datasets measuring the query, and gene
// scores divide the merged weighted sums. The one intended deviation is
// tie order among genes with exactly equal float scores: Search ties by
// compendium first-seen order, which is unrecoverable from partials, so
// Merge ties by gene ID.
//
// Every partial must carry the same canonical query, and dataset names
// must be unique across partials — a duplicate means two shards both
// claimed a dataset, which would double-count its coherence and scores.
func Merge(parts []Partial, opt Options) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("spell: no partials to merge")
	}
	query := parts[0].Query
	for _, p := range parts[1:] {
		if !equalQueries(query, p.Query) {
			return nil, fmt.Errorf("spell: partials ran different queries (%v vs %v)", query, p.Query)
		}
	}
	if len(query) == 0 {
		return nil, errors.New("spell: empty query")
	}

	// Union dataset list in global-index order; weight normalization must
	// sum in that order to match Search's total bitwise.
	var dss []PartialDataset
	seenDS := make(map[string]bool)
	for _, p := range parts {
		for _, d := range p.Datasets {
			if seenDS[d.Name] {
				return nil, fmt.Errorf("spell: dataset %q claimed by more than one shard", d.Name)
			}
			seenDS[d.Name] = true
			dss = append(dss, d)
		}
	}
	sort.Slice(dss, func(a, b int) bool {
		if dss[a].Index != dss[b].Index {
			return dss[a].Index < dss[b].Index
		}
		return dss[a].Name < dss[b].Name
	})

	weights := make([]float64, len(dss))
	total := 0.0
	anyPresent := false
	for i, d := range dss {
		if d.Present > 0 {
			anyPresent = true
		}
		w := d.Coherence
		if opt.UniformWeights {
			if d.Present > 0 {
				w = 1
			} else {
				w = 0
			}
		}
		if math.IsNaN(w) || w < 0 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if !anyPresent {
		return nil, fmt.Errorf("%w (%d query genes)", ErrNoQueryGenes, len(query))
	}
	uniform := opt.UniformWeights
	if total == 0 {
		// Degenerate query (incoherent everywhere): uniform weights over
		// datasets measuring the query, as in Search.
		uniform = true
		n := 0
		for i, d := range dss {
			if d.Present > 0 {
				weights[i] = 1
				n++
			} else {
				weights[i] = 0
			}
		}
		total = float64(n)
	}
	for i := range weights {
		weights[i] /= total
	}

	// Union gene accumulators, in deterministic first-partial-first-seen
	// order (only tie order among bitwise-equal scores could observe it).
	genes := make(map[string]*mergedGene)
	var order []string
	for _, p := range parts {
		for _, g := range p.Genes {
			mg := genes[g.ID]
			if mg == nil {
				mg = &mergedGene{name: g.Name}
				genes[g.ID] = mg
				order = append(order, g.ID)
			}
			mg.wsum += g.WSum
			mg.wcnt += g.WCnt
			mg.usum += g.USum
			mg.ucnt += g.UCnt
		}
	}

	res := &Result{Query: query}
	for i, d := range dss {
		res.Datasets = append(res.Datasets, DatasetRank{
			Index:          d.Index,
			Name:           d.Name,
			Weight:         weights[i],
			QueryCoherence: d.Coherence,
			QueryPresent:   d.Present,
		})
	}
	// Equivalent to Search's stable sort over index-ordered entries:
	// weight descending, global index ascending among equal weights.
	sort.Slice(res.Datasets, func(a, b int) bool {
		if res.Datasets[a].Weight != res.Datasets[b].Weight {
			return res.Datasets[a].Weight > res.Datasets[b].Weight
		}
		return res.Datasets[a].Index < res.Datasets[b].Index
	})

	qset := make(map[string]bool, len(query))
	for _, q := range query {
		qset[q] = true
	}
	for _, id := range order {
		isQ := qset[id]
		if isQ && !opt.IncludeQuery {
			continue
		}
		mg := genes[id]
		var score float64
		if uniform {
			if mg.ucnt == 0 {
				continue
			}
			score = mg.usum / mg.ucnt
		} else {
			if mg.wcnt == 0 {
				continue
			}
			score = mg.wsum / mg.wcnt
		}
		res.Genes = append(res.Genes, GeneRank{ID: id, Name: mg.name, Score: score, IsQuery: isQ})
	}
	sort.Slice(res.Genes, func(a, b int) bool {
		if res.Genes[a].Score != res.Genes[b].Score {
			return res.Genes[a].Score > res.Genes[b].Score
		}
		return res.Genes[a].ID < res.Genes[b].ID
	})
	if opt.MaxGenes > 0 && len(res.Genes) > opt.MaxGenes {
		res.Genes = res.Genes[:opt.MaxGenes]
	}
	return res, nil
}

func equalQueries(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
