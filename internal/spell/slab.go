package spell

import (
	"forestview/internal/microarray"
	"forestview/internal/stats"
)

// slab is one dataset of the compendium in scoring-ready form. Instead of a
// [][]float64 of z-rows plus a map from gene ID to row, a slab keeps:
//
//   - z: every z-scored row back to back in one contiguous []float64
//     (row r occupies z[r*nExp : (r+1)*nExp]), so a search streams through
//     the dataset with no pointer chasing;
//   - unit: the centered, unit-Euclidean-norm form of each complete row in
//     a parallel slab. For two rows with unit forms, Pearson correlation is
//     exactly a dot product — the kernel's fast path;
//   - fast: the per-row mask saying whether the unit form exists (the row
//     is complete, non-constant, and has ≥2 experiments). Rows that fail
//     the mask fall back to the NaN-pairwise stats.Pearson on z;
//   - gids/rowOf: both directions of the global integer gene index, so the
//     scoring loops never touch a string or a map.
type slab struct {
	nExp  int
	gids  []int32 // row -> global gene index
	rowOf []int32 // global gene index -> row in this dataset, -1 if absent
	z     []float64
	unit  []float64
	fast  []bool
}

// buildSlab prepares ds against the engine's global gene index. numGenes is
// the size of the global index (len of the engine's order slice).
func buildSlab(ds *microarray.Dataset, gid map[string]int, numGenes int) *slab {
	nG, nE := ds.NumGenes(), ds.NumExperiments()
	s := &slab{
		nExp:  nE,
		gids:  make([]int32, nG),
		rowOf: make([]int32, numGenes),
		z:     make([]float64, nG*nE),
		unit:  make([]float64, nG*nE),
		fast:  make([]bool, nG),
	}
	for i := range s.rowOf {
		s.rowOf[i] = -1
	}
	for g := 0; g < nG; g++ {
		gi := gid[ds.Genes[g].ID]
		s.gids[g] = int32(gi)
		s.rowOf[gi] = int32(g)
		zr := s.z[g*nE : (g+1)*nE]
		stats.ZScoresInto(zr, ds.Row(g))
		s.fast[g] = stats.CenterUnitNormInto(s.unit[g*nE:(g+1)*nE], zr)
	}
	return s
}

// zrow returns the z-scored row r (may contain NaN for missing values).
func (s *slab) zrow(r int32) []float64 {
	return s.z[int(r)*s.nExp : (int(r)+1)*s.nExp]
}

// unitRow returns the centered unit-norm row r; only valid when fast[r].
func (s *slab) unitRow(r int32) []float64 {
	return s.unit[int(r)*s.nExp : (int(r)+1)*s.nExp]
}

// queryRows returns the rows of this dataset measuring the given global
// gene indices, and whether every one of them has a unit form (which
// unlocks the pre-summed fast path in the scoring stage).
func (s *slab) queryRows(qgids []int) (rows []int32, allFast bool) {
	allFast = true
	for _, gi := range qgids {
		r := s.rowOf[gi]
		if r < 0 {
			continue
		}
		rows = append(rows, r)
		if !s.fast[r] {
			allFast = false
		}
	}
	return rows, allFast
}
