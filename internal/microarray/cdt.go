package microarray

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The CDT ("clustered data table") format is the PCL matrix reordered to
// match a clustering result, with an extra GID column linking each row to a
// leaf of the gene tree (GTR file) and an optional AID row linking each
// column to a leaf of the array tree (ATR file). Java TreeView renders CDT
// + GTR + ATR triples; ForestView loads the same triples, one per pane.

// CDT couples a dataset with the leaf identifiers that tie it to its
// clustering trees.
type CDT struct {
	Dataset *Dataset
	// GIDs[i] is the gene-tree leaf ID of row i, conventionally "GENE3X".
	GIDs []string
	// AIDs[j] is the array-tree leaf ID of column j, conventionally "ARRY1X".
	AIDs []string
}

// GeneLeafID formats the conventional gene leaf identifier for row i.
func GeneLeafID(i int) string { return fmt.Sprintf("GENE%dX", i) }

// ArrayLeafID formats the conventional array leaf identifier for column j.
func ArrayLeafID(j int) string { return fmt.Sprintf("ARRY%dX", j) }

// WriteCDT serializes a clustered data table. GIDs and AIDs may be nil when
// the corresponding tree is absent (then the GID column / AID row are
// omitted, which TreeView also accepts).
func WriteCDT(w io.Writer, c *CDT) error {
	d := c.Dataset
	if c.GIDs != nil && len(c.GIDs) != d.NumGenes() {
		return fmt.Errorf("microarray: %d GIDs vs %d genes", len(c.GIDs), d.NumGenes())
	}
	if c.AIDs != nil && len(c.AIDs) != d.NumExperiments() {
		return fmt.Errorf("microarray: %d AIDs vs %d experiments", len(c.AIDs), d.NumExperiments())
	}
	bw := bufio.NewWriter(w)
	hasGID := c.GIDs != nil
	// Header row.
	if hasGID {
		bw.WriteString("GID\t")
	}
	bw.WriteString("ID\tNAME\tGWEIGHT")
	for _, e := range d.Experiments {
		bw.WriteByte('\t')
		bw.WriteString(e)
	}
	bw.WriteByte('\n')
	// AID row.
	if c.AIDs != nil {
		if hasGID {
			bw.WriteString("AID\t")
		} else {
			bw.WriteString("AID")
		}
		bw.WriteString("\t\t")
		for _, aid := range c.AIDs {
			bw.WriteByte('\t')
			bw.WriteString(aid)
		}
		bw.WriteByte('\n')
	}
	// EWEIGHT row.
	if hasGID {
		bw.WriteString("EWEIGHT\t")
	} else {
		bw.WriteString("EWEIGHT")
	}
	bw.WriteString("\t\t")
	for i := range d.Experiments {
		bw.WriteByte('\t')
		w := 1.0
		if i < len(d.EWeights) {
			w = d.EWeights[i]
		}
		bw.WriteString(formatCell(w))
	}
	bw.WriteByte('\n')
	for gi, g := range d.Genes {
		if hasGID {
			bw.WriteString(c.GIDs[gi])
			bw.WriteByte('\t')
		}
		bw.WriteString(g.ID)
		bw.WriteByte('\t')
		bw.WriteString(g.Name)
		if g.Annotation != "" {
			bw.WriteByte(' ')
			bw.WriteString(g.Annotation)
		}
		bw.WriteByte('\t')
		gw := 1.0
		if gi < len(d.GWeights) {
			gw = d.GWeights[gi]
		}
		bw.WriteString(formatCell(gw))
		for _, v := range d.Data[gi] {
			bw.WriteByte('\t')
			if !math.IsNaN(v) {
				bw.WriteString(formatCell(v))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCDT parses a CDT stream. Missing GID column / AID row yield nil
// slices in the result.
func ReadCDT(r io.Reader, name string) (*CDT, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("microarray: reading CDT header: %w", err)
		}
		return nil, fmt.Errorf("microarray: empty CDT input")
	}
	header := strings.Split(sc.Text(), "\t")
	hasGID := len(header) > 0 && strings.EqualFold(strings.TrimSpace(header[0]), "GID")
	idCol := 0
	if hasGID {
		idCol = 1
	}
	nameCol := idCol + 1
	gwCol := idCol + 2
	expStart := idCol + 3
	if len(header) < expStart {
		return nil, fmt.Errorf("microarray: CDT header has %d columns, want >= %d", len(header), expStart)
	}
	if !strings.EqualFold(strings.TrimSpace(header[gwCol]), "GWEIGHT") {
		// Tolerate a missing GWEIGHT column the way TreeView does.
		expStart = gwCol
		gwCol = -1
	}
	experiments := append([]string(nil), header[expStart:]...)
	ds := NewDataset(name, experiments)
	c := &CDT{Dataset: ds}
	if hasGID {
		c.GIDs = []string{}
	}

	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		first := strings.TrimSpace(fields[0])
		switch {
		case strings.EqualFold(first, "AID"):
			c.AIDs = make([]string, len(experiments))
			for i := range experiments {
				col := expStart + i
				if col < len(fields) {
					c.AIDs[i] = strings.TrimSpace(fields[col])
				}
			}
			continue
		case strings.EqualFold(first, "EWEIGHT"):
			for i := range experiments {
				col := expStart + i
				if col < len(fields) {
					if w, err := strconv.ParseFloat(strings.TrimSpace(fields[col]), 64); err == nil {
						ds.EWeights[i] = w
					}
				}
			}
			continue
		}
		if len(fields) <= nameCol {
			return nil, fmt.Errorf("microarray: CDT line %d too short", lineNo)
		}
		g := Gene{ID: strings.TrimSpace(fields[idCol])}
		nameField := strings.TrimSpace(fields[nameCol])
		if sp := strings.IndexByte(nameField, ' '); sp >= 0 {
			g.Name = nameField[:sp]
			g.Annotation = strings.TrimSpace(nameField[sp+1:])
		} else {
			g.Name = nameField
		}
		gw := 1.0
		if gwCol >= 0 && len(fields) > gwCol {
			if w, err := strconv.ParseFloat(strings.TrimSpace(fields[gwCol]), 64); err == nil {
				gw = w
			}
		}
		values := make([]float64, len(experiments))
		for i := range values {
			col := expStart + i
			if col >= len(fields) {
				values[i] = Missing
				continue
			}
			cell := strings.TrimSpace(fields[col])
			if cell == "" || strings.EqualFold(cell, "NA") || strings.EqualFold(cell, "NaN") {
				values[i] = Missing
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("microarray: CDT line %d column %d: %w", lineNo, col+1, err)
			}
			values[i] = v
		}
		if err := ds.AddGene(g, values); err != nil {
			return nil, fmt.Errorf("microarray: CDT line %d: %w", lineNo, err)
		}
		ds.GWeights[len(ds.GWeights)-1] = gw
		if hasGID {
			c.GIDs = append(c.GIDs, strings.TrimSpace(fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("microarray: reading CDT: %w", err)
	}
	return c, nil
}
