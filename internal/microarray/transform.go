package microarray

import (
	"math"

	"forestview/internal/stats"
)

// Transforms mirror the Cluster 3.0 "Adjust Data" operations applied before
// clustering and visualization: log transform, median centering of rows or
// columns, and row normalization. All operate in place and skip missing
// values.

// LogTransform replaces every positive value with log2(value). Zero and
// negative values (meaningless as raw intensities) become missing, matching
// Cluster 3.0.
func (d *Dataset) LogTransform() {
	for _, row := range d.Data {
		for i, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v <= 0 {
				row[i] = Missing
				continue
			}
			row[i] = math.Log2(v)
		}
	}
}

// MedianCenterGenes subtracts each row's median from the row, the standard
// preprocessing for comparing expression shapes across genes.
func (d *Dataset) MedianCenterGenes() {
	for _, row := range d.Data {
		m := stats.Median(row)
		if math.IsNaN(m) {
			continue
		}
		for i, v := range row {
			if !math.IsNaN(v) {
				row[i] = v - m
			}
		}
	}
}

// MeanCenterGenes subtracts each row's mean from the row.
func (d *Dataset) MeanCenterGenes() {
	for _, row := range d.Data {
		m := stats.Mean(row)
		if math.IsNaN(m) {
			continue
		}
		for i, v := range row {
			if !math.IsNaN(v) {
				row[i] = v - m
			}
		}
	}
}

// MedianCenterArrays subtracts each column's median from the column,
// removing per-hybridization intensity bias.
func (d *Dataset) MedianCenterArrays() {
	for e := 0; e < d.NumExperiments(); e++ {
		col := d.Column(e)
		m := stats.Median(col)
		if math.IsNaN(m) {
			continue
		}
		for g := range d.Data {
			if !math.IsNaN(d.Data[g][e]) {
				d.Data[g][e] -= m
			}
		}
	}
}

// NormalizeGenes scales each row to unit Euclidean norm.
func (d *Dataset) NormalizeGenes() {
	for _, row := range d.Data {
		stats.Normalize(row)
	}
}

// ZTransformGenes replaces each row with its z-scores, the preprocessing
// SPELL applies dataset-by-dataset so correlations are comparable across
// studies with different dynamic ranges.
func (d *Dataset) ZTransformGenes() {
	for g, row := range d.Data {
		d.Data[g] = stats.ZScores(row)
	}
}

// FilterGenes returns the row indices of genes that pass the Cluster 3.0
// style filter: at least minPresent observed values and at least one value
// with absolute magnitude >= minAbs.
func (d *Dataset) FilterGenes(minPresent int, minAbs float64) []int {
	var keep []int
	for g, row := range d.Data {
		present := 0
		maxAbs := 0.0
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			present++
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if present >= minPresent && maxAbs >= minAbs {
			keep = append(keep, g)
		}
	}
	return keep
}

// ImputeRowMean fills missing cells with their row mean, a simple
// imputation used before algorithms that cannot tolerate missing values.
// Rows that are entirely missing are filled with zeros.
func (d *Dataset) ImputeRowMean() {
	for _, row := range d.Data {
		m := stats.Mean(row)
		if math.IsNaN(m) {
			m = 0
		}
		for i, v := range row {
			if math.IsNaN(v) {
				row[i] = m
			}
		}
	}
}
