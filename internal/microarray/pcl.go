package microarray

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The PCL format is the tab-delimited matrix format produced by the
// Stanford Microarray Database and consumed by Cluster 3.0 and Java
// TreeView, the tools the paper extends:
//
//	ID      NAME        GWEIGHT  exp1  exp2 ...
//	EWEIGHT                      1     1    ...        (optional)
//	YAL001C TFC3 tau138 1        0.43  -0.12 ...
//
// Empty cells denote missing values. The NAME column conventionally packs
// the common gene name followed by a free-text annotation.

// ReadPCL parses a PCL stream into a Dataset named name.
func ReadPCL(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("microarray: reading PCL header: %w", err)
		}
		return nil, fmt.Errorf("microarray: empty PCL input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) < 3 {
		return nil, fmt.Errorf("microarray: PCL header has %d columns, want >= 3", len(header))
	}
	hasGweight := strings.EqualFold(strings.TrimSpace(header[2]), "GWEIGHT")
	expStart := 2
	if hasGweight {
		expStart = 3
	}
	experiments := append([]string(nil), header[expStart:]...)
	ds := NewDataset(name, experiments)

	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if strings.EqualFold(strings.TrimSpace(fields[0]), "EWEIGHT") {
			for i := 0; i < len(experiments); i++ {
				col := expStart + i
				if col < len(fields) {
					if w, err := strconv.ParseFloat(strings.TrimSpace(fields[col]), 64); err == nil {
						ds.EWeights[i] = w
					}
				}
			}
			continue
		}
		if len(fields) < expStart {
			return nil, fmt.Errorf("microarray: PCL line %d has %d columns, want >= %d",
				lineNo, len(fields), expStart)
		}
		g := Gene{ID: strings.TrimSpace(fields[0])}
		if len(fields) > 1 {
			nameField := strings.TrimSpace(fields[1])
			// Convention: "NAME annotation text ...".
			if sp := strings.IndexByte(nameField, ' '); sp >= 0 {
				g.Name = nameField[:sp]
				g.Annotation = strings.TrimSpace(nameField[sp+1:])
			} else {
				g.Name = nameField
			}
		}
		gw := 1.0
		if hasGweight && len(fields) > 2 {
			if w, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64); err == nil {
				gw = w
			}
		}
		values := make([]float64, len(experiments))
		for i := range values {
			col := expStart + i
			if col >= len(fields) {
				values[i] = Missing
				continue
			}
			cell := strings.TrimSpace(fields[col])
			if cell == "" || strings.EqualFold(cell, "NA") || strings.EqualFold(cell, "NaN") {
				values[i] = Missing
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("microarray: PCL line %d column %d: %w", lineNo, col+1, err)
			}
			values[i] = v
		}
		if err := ds.AddGene(g, values); err != nil {
			return nil, fmt.Errorf("microarray: PCL line %d: %w", lineNo, err)
		}
		ds.GWeights[len(ds.GWeights)-1] = gw
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("microarray: reading PCL: %w", err)
	}
	return ds, nil
}

// WritePCL serializes the dataset in PCL format, including GWEIGHT and
// EWEIGHT fields so a round trip preserves weights.
func WritePCL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	// Header.
	if _, err := bw.WriteString("ID\tNAME\tGWEIGHT"); err != nil {
		return err
	}
	for _, e := range d.Experiments {
		bw.WriteByte('\t')
		bw.WriteString(e)
	}
	bw.WriteByte('\n')
	// EWEIGHT row.
	bw.WriteString("EWEIGHT\t\t")
	for i := range d.Experiments {
		bw.WriteByte('\t')
		w := 1.0
		if i < len(d.EWeights) {
			w = d.EWeights[i]
		}
		bw.WriteString(formatCell(w))
	}
	bw.WriteByte('\n')
	// Gene rows.
	for gi, g := range d.Genes {
		bw.WriteString(g.ID)
		bw.WriteByte('\t')
		bw.WriteString(g.Name)
		if g.Annotation != "" {
			bw.WriteByte(' ')
			bw.WriteString(g.Annotation)
		}
		bw.WriteByte('\t')
		gw := 1.0
		if gi < len(d.GWeights) {
			gw = d.GWeights[gi]
		}
		bw.WriteString(formatCell(gw))
		for _, v := range d.Data[gi] {
			bw.WriteByte('\t')
			if math.IsNaN(v) {
				// Empty cell is the conventional missing marker.
			} else {
				bw.WriteString(formatCell(v))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// formatCell renders a float the way the Eisen tools do: compact, no
// exponent for typical log-ratio magnitudes.
func formatCell(v float64) string {
	s := strconv.FormatFloat(v, 'g', 6, 64)
	return s
}
