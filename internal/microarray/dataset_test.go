package microarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds := NewDataset("test", []string{"e1", "e2", "e3"})
	rows := []struct {
		g Gene
		v []float64
	}{
		{Gene{ID: "YAL001C", Name: "TFC3", Annotation: "transcription factor"}, []float64{1, 2, 3}},
		{Gene{ID: "YAL002W", Name: "VPS8", Annotation: "vacuolar sorting"}, []float64{-1, Missing, 0.5}},
		{Gene{ID: "YAL003W", Name: "EFB1", Annotation: "elongation factor"}, []float64{0, 0, 0}},
	}
	for _, r := range rows {
		if err := ds.AddGene(r.g, r.v); err != nil {
			t.Fatalf("AddGene: %v", err)
		}
	}
	return ds
}

func TestAddGeneAndAccessors(t *testing.T) {
	ds := testDataset(t)
	if ds.NumGenes() != 3 || ds.NumExperiments() != 3 {
		t.Fatalf("dims = %dx%d", ds.NumGenes(), ds.NumExperiments())
	}
	if v := ds.Value(0, 1); v != 2 {
		t.Fatalf("Value(0,1) = %v", v)
	}
	if !math.IsNaN(ds.Value(1, 1)) {
		t.Fatal("missing value should be NaN")
	}
	if !math.IsNaN(ds.Value(-1, 0)) || !math.IsNaN(ds.Value(0, 99)) {
		t.Fatal("out of range should be NaN")
	}
	col := ds.Column(0)
	if col[0] != 1 || col[1] != -1 || col[2] != 0 {
		t.Fatalf("Column(0) = %v", col)
	}
	if ds.Column(99) != nil || ds.Row(99) != nil {
		t.Fatal("out of range row/col should be nil")
	}
}

func TestAddGeneErrors(t *testing.T) {
	ds := NewDataset("x", []string{"a"})
	if err := ds.AddGene(Gene{ID: "G1"}, []float64{1, 2}); err == nil {
		t.Fatal("wrong-width row should error")
	}
	if err := ds.AddGene(Gene{ID: "G1"}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddGene(Gene{ID: "G1"}, []float64{2}); err == nil {
		t.Fatal("duplicate ID should error")
	}
}

func TestGeneIndex(t *testing.T) {
	ds := testDataset(t)
	if i, ok := ds.GeneIndex("YAL002W"); !ok || i != 1 {
		t.Fatalf("GeneIndex = %d, %v", i, ok)
	}
	if i, ok := ds.GeneIndex("yal002w"); !ok || i != 1 {
		t.Fatalf("case-insensitive lookup failed: %d %v", i, ok)
	}
	if i, ok := ds.GeneIndex("efb1"); !ok || i != 2 {
		t.Fatalf("lookup by common name failed: %d %v", i, ok)
	}
	if _, ok := ds.GeneIndex("NOPE"); ok {
		t.Fatal("nonexistent gene should not be found")
	}
}

func TestAddGeneCopiesValues(t *testing.T) {
	ds := NewDataset("x", []string{"a"})
	vals := []float64{7}
	_ = ds.AddGene(Gene{ID: "G1"}, vals)
	vals[0] = 99
	if ds.Value(0, 0) != 7 {
		t.Fatal("AddGene must copy its input")
	}
}

func TestValidate(t *testing.T) {
	ds := testDataset(t)
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	ds.Data[1] = ds.Data[1][:2]
	if err := ds.Validate(); err == nil {
		t.Fatal("ragged data should fail validation")
	}
}

func TestSubset(t *testing.T) {
	ds := testDataset(t)
	sub := ds.Subset("sub", []int{2, 0, 99, -1})
	if sub.NumGenes() != 2 {
		t.Fatalf("subset genes = %d, want 2", sub.NumGenes())
	}
	if sub.Genes[0].ID != "YAL003W" || sub.Genes[1].ID != "YAL001C" {
		t.Fatalf("subset order wrong: %v", sub.GeneIDs())
	}
	if sub.Value(1, 2) != 3 {
		t.Fatalf("subset data wrong: %v", sub.Value(1, 2))
	}
	// Mutating the subset must not affect the original.
	sub.Data[0][0] = 42
	if ds.Value(2, 0) == 42 {
		t.Fatal("Subset must copy data")
	}
}

func TestReorder(t *testing.T) {
	ds := testDataset(t)
	if err := ds.Reorder([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if ds.Genes[0].ID != "YAL003W" || ds.Genes[1].ID != "YAL001C" {
		t.Fatalf("reorder wrong: %v", ds.GeneIDs())
	}
	// Index must be rebuilt.
	if i, ok := ds.GeneIndex("YAL001C"); !ok || i != 1 {
		t.Fatalf("index stale after reorder: %d %v", i, ok)
	}
	if err := ds.Reorder([]int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation should error")
	}
	if err := ds.Reorder([]int{0}); err == nil {
		t.Fatal("short order should error")
	}
}

func TestMissingFraction(t *testing.T) {
	ds := testDataset(t)
	got := ds.MissingFraction()
	want := 1.0 / 9.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MissingFraction = %v, want %v", got, want)
	}
	empty := NewDataset("e", nil)
	if empty.MissingFraction() != 0 {
		t.Fatal("empty dataset missing fraction should be 0")
	}
}

func TestClone(t *testing.T) {
	ds := testDataset(t)
	c := ds.Clone()
	c.Data[0][0] = 99
	c.Genes[0].Name = "CHANGED"
	if ds.Value(0, 0) == 99 || ds.Genes[0].Name == "CHANGED" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestSortGenesByID(t *testing.T) {
	ds := NewDataset("x", []string{"a"})
	_ = ds.AddGene(Gene{ID: "C"}, []float64{3})
	_ = ds.AddGene(Gene{ID: "A"}, []float64{1})
	_ = ds.AddGene(Gene{ID: "B"}, []float64{2})
	ds.SortGenesByID()
	if ds.Genes[0].ID != "A" || ds.Genes[1].ID != "B" || ds.Genes[2].ID != "C" {
		t.Fatalf("sorted = %v", ds.GeneIDs())
	}
	if ds.Value(0, 0) != 1 || ds.Value(2, 0) != 3 {
		t.Fatal("data did not follow the sort")
	}
}

// Property: Reorder with a random permutation preserves the multiset of
// rows and the ID->row association.
func TestQuickReorderPreservesRows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 2
		ds := NewDataset("q", []string{"e1", "e2"})
		for i := 0; i < n; i++ {
			_ = ds.AddGene(Gene{ID: string(rune('A'+i%26)) + string(rune('0'+i/26))},
				[]float64{float64(i), r.NormFloat64()})
		}
		want := make(map[string]float64, n)
		for i, g := range ds.Genes {
			want[g.ID] = ds.Value(i, 0)
		}
		order := r.Perm(n)
		if err := ds.Reorder(order); err != nil {
			return false
		}
		for i, g := range ds.Genes {
			if ds.Value(i, 0) != want[g.ID] {
				return false
			}
			if idx, ok := ds.GeneIndex(g.ID); !ok || idx != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
