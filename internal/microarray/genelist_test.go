package microarray

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadGeneList(t *testing.T) {
	in := `# ForestView gene list (3 genes)
YAL001C
YBR072W  heat shock protein
# trailing comment

YAL001C
YGR192C
`
	ids, err := ReadGeneList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"YAL001C", "YBR072W", "YGR192C"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestReadGeneListEmpty(t *testing.T) {
	ids, err := ReadGeneList(strings.NewReader("# nothing\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestGeneListRoundTrip(t *testing.T) {
	ids := []string{"G1", "G2", "G3"}
	var buf bytes.Buffer
	if err := WriteGeneList(&buf, ids, "test header"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# test header\n") {
		t.Fatalf("header missing: %q", buf.String())
	}
	back, err := ReadGeneList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != "G1" || back[2] != "G3" {
		t.Fatalf("round trip = %v", back)
	}
}

func TestWriteGeneListNoHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGeneList(&buf, []string{"A"}, ""); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "A\n" {
		t.Fatalf("output = %q", buf.String())
	}
}
