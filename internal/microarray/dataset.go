// Package microarray implements the expression-data substrate of the
// ForestView reproduction: an in-memory model of a gene-expression dataset
// (genes × experiments with missing values), the Eisen-laboratory
// tab-delimited file formats (PCL and CDT) that the paper's tool chain
// (Cluster 3.0, Java TreeView) exchanges, and the row/column transforms
// typically applied before clustering and display.
package microarray

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Missing marks an unmeasured expression value. All package code treats any
// NaN as missing.
var Missing = math.NaN()

// Gene carries the per-row identity metadata of a dataset: the systematic
// ID (e.g. "YAL001C"), the common name (e.g. "TFC3"), and a free-text
// annotation used by the search interface.
type Gene struct {
	ID         string
	Name       string
	Annotation string
}

// Dataset is a single microarray dataset: a dense genes × experiments
// matrix of log-ratio expression values plus identity metadata. Missing
// measurements are NaN. The zero value is an empty dataset ready for
// incremental construction via AddGene.
type Dataset struct {
	// Name identifies the dataset (typically the source file or study).
	Name string
	// Genes holds per-row metadata, parallel to Data.
	Genes []Gene
	// Experiments holds the column labels.
	Experiments []string
	// Data[g][e] is the expression of gene g in experiment e.
	Data [][]float64
	// GWeights and EWeights are the optional Cluster 3.0 row and column
	// weights (all 1 when absent from the source file).
	GWeights []float64
	EWeights []float64

	idIndex map[string]int
}

// NewDataset returns an empty dataset with the given name and experiment
// labels.
func NewDataset(name string, experiments []string) *Dataset {
	ds := &Dataset{
		Name:        name,
		Experiments: append([]string(nil), experiments...),
		EWeights:    make([]float64, len(experiments)),
		idIndex:     make(map[string]int),
	}
	for i := range ds.EWeights {
		ds.EWeights[i] = 1
	}
	return ds
}

// AddGene appends a gene row. The values slice must have exactly one entry
// per experiment; it is copied.
func (d *Dataset) AddGene(g Gene, values []float64) error {
	if len(values) != len(d.Experiments) {
		return fmt.Errorf("microarray: gene %q has %d values, dataset has %d experiments",
			g.ID, len(values), len(d.Experiments))
	}
	if d.idIndex == nil {
		d.idIndex = make(map[string]int)
	}
	if _, dup := d.idIndex[g.ID]; dup {
		return fmt.Errorf("microarray: duplicate gene ID %q", g.ID)
	}
	d.idIndex[g.ID] = len(d.Genes)
	d.Genes = append(d.Genes, g)
	d.Data = append(d.Data, append([]float64(nil), values...))
	d.GWeights = append(d.GWeights, 1)
	return nil
}

// NumGenes returns the number of gene rows.
func (d *Dataset) NumGenes() int { return len(d.Genes) }

// NumExperiments returns the number of experiment columns.
func (d *Dataset) NumExperiments() int { return len(d.Experiments) }

// Value returns the expression of gene g in experiment e, or NaN when out
// of range.
func (d *Dataset) Value(g, e int) float64 {
	if g < 0 || g >= len(d.Data) || e < 0 || e >= len(d.Experiments) {
		return Missing
	}
	return d.Data[g][e]
}

// Row returns the expression vector of gene g. The returned slice aliases
// the dataset; callers must not modify it unless they own the dataset.
func (d *Dataset) Row(g int) []float64 {
	if g < 0 || g >= len(d.Data) {
		return nil
	}
	return d.Data[g]
}

// Column returns a copy of the values of experiment e across all genes.
func (d *Dataset) Column(e int) []float64 {
	if e < 0 || e >= len(d.Experiments) {
		return nil
	}
	col := make([]float64, len(d.Data))
	for g := range d.Data {
		col[g] = d.Data[g][e]
	}
	return col
}

// GeneIndex returns the row of the gene with the given systematic ID and
// whether it exists. Lookup is case-insensitive, matching the behaviour
// biologists expect from TreeView's search box.
func (d *Dataset) GeneIndex(id string) (int, bool) {
	if i, ok := d.idIndex[id]; ok {
		return i, true
	}
	// Fall back to a case-insensitive scan (IDs are conventionally upper
	// case but user input often is not).
	up := strings.ToUpper(id)
	if i, ok := d.idIndex[up]; ok {
		return i, true
	}
	for i, g := range d.Genes {
		if strings.EqualFold(g.ID, id) || strings.EqualFold(g.Name, id) {
			return i, true
		}
	}
	return 0, false
}

// GeneIDs returns the systematic IDs of all genes in row order.
func (d *Dataset) GeneIDs() []string {
	ids := make([]string, len(d.Genes))
	for i, g := range d.Genes {
		ids[i] = g.ID
	}
	return ids
}

// rebuildIndex recomputes the ID lookup map; used after bulk construction
// or reordering.
func (d *Dataset) rebuildIndex() {
	d.idIndex = make(map[string]int, len(d.Genes))
	for i, g := range d.Genes {
		d.idIndex[g.ID] = i
	}
}

// Validate checks internal consistency: parallel slice lengths, rectangular
// data, and unique gene IDs.
func (d *Dataset) Validate() error {
	if len(d.Data) != len(d.Genes) {
		return fmt.Errorf("microarray: %d data rows vs %d genes", len(d.Data), len(d.Genes))
	}
	if len(d.GWeights) != 0 && len(d.GWeights) != len(d.Genes) {
		return fmt.Errorf("microarray: %d gene weights vs %d genes", len(d.GWeights), len(d.Genes))
	}
	if len(d.EWeights) != 0 && len(d.EWeights) != len(d.Experiments) {
		return fmt.Errorf("microarray: %d experiment weights vs %d experiments",
			len(d.EWeights), len(d.Experiments))
	}
	seen := make(map[string]bool, len(d.Genes))
	for i, row := range d.Data {
		if len(row) != len(d.Experiments) {
			return fmt.Errorf("microarray: row %d has %d values, want %d",
				i, len(row), len(d.Experiments))
		}
		id := d.Genes[i].ID
		if seen[id] {
			return fmt.Errorf("microarray: duplicate gene ID %q", id)
		}
		seen[id] = true
	}
	return nil
}

// Subset returns a new dataset containing only the given gene rows, in the
// given order. Out-of-range indices are skipped. Experiment columns and
// weights are shared semantics but copied storage.
func (d *Dataset) Subset(name string, geneRows []int) *Dataset {
	out := NewDataset(name, d.Experiments)
	copy(out.EWeights, d.EWeights)
	for _, g := range geneRows {
		if g < 0 || g >= len(d.Genes) {
			continue
		}
		// Ignore the duplicate error: subsets of a valid dataset can only
		// collide when the caller passes the same row twice, in which case
		// keeping the first occurrence is the sensible behaviour.
		_ = out.AddGene(d.Genes[g], d.Data[g])
	}
	for i, g := range geneRows {
		if g >= 0 && g < len(d.GWeights) && i < len(out.GWeights) {
			out.GWeights[i] = d.GWeights[g]
		}
	}
	return out
}

// Reorder permutes the gene rows according to order, which must be a
// permutation of 0..NumGenes-1 (e.g. the leaf order of a clustering tree).
func (d *Dataset) Reorder(order []int) error {
	if len(order) != len(d.Genes) {
		return fmt.Errorf("microarray: order has %d entries, dataset has %d genes",
			len(order), len(d.Genes))
	}
	seen := make([]bool, len(order))
	for _, o := range order {
		if o < 0 || o >= len(order) || seen[o] {
			return errors.New("microarray: order is not a permutation")
		}
		seen[o] = true
	}
	genes := make([]Gene, len(d.Genes))
	data := make([][]float64, len(d.Data))
	gw := make([]float64, len(d.GWeights))
	for i, o := range order {
		genes[i] = d.Genes[o]
		data[i] = d.Data[o]
		if o < len(d.GWeights) {
			gw[i] = d.GWeights[o]
		}
	}
	d.Genes, d.Data, d.GWeights = genes, data, gw
	d.rebuildIndex()
	return nil
}

// MissingFraction returns the fraction of matrix cells that are missing.
func (d *Dataset) MissingFraction() float64 {
	total, missing := 0, 0
	for _, row := range d.Data {
		for _, v := range row {
			total++
			if math.IsNaN(v) {
				missing++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(missing) / float64(total)
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := NewDataset(d.Name, d.Experiments)
	out.EWeights = append([]float64(nil), d.EWeights...)
	for i, g := range d.Genes {
		_ = out.AddGene(g, d.Data[i])
	}
	copy(out.GWeights, d.GWeights)
	return out
}

// SortGenesByID sorts rows lexicographically by systematic gene ID; useful
// for canonicalizing generated datasets before diffing in tests.
func (d *Dataset) SortGenesByID() {
	order := make([]int, len(d.Genes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d.Genes[order[a]].ID < d.Genes[order[b]].ID })
	_ = d.Reorder(order)
}
