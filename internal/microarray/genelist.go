package microarray

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Gene-list files are the interchange currency of the Figure-1 UI ("Export
// Gene List") and of the baseline cut-and-paste workflow: one gene ID per
// line, '#' comments, blank lines ignored. The first whitespace-separated
// token of each line is the ID, so annotated exports round trip.

// ReadGeneList parses a gene-list stream, preserving order and dropping
// duplicates (first occurrence wins).
func ReadGeneList(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []string
	seen := make(map[string]bool)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := line
		if i := strings.IndexAny(line, " \t"); i > 0 {
			id = line[:i]
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("microarray: reading gene list: %w", err)
	}
	return out, nil
}

// WriteGeneList writes IDs one per line with an optional comment header.
func WriteGeneList(w io.Writer, ids []string, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		fmt.Fprintf(bw, "# %s\n", header)
	}
	for _, id := range ids {
		fmt.Fprintln(bw, id)
	}
	return bw.Flush()
}
