package microarray

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

const samplePCL = `ID	NAME	GWEIGHT	heat 10min	heat 30min	cold 20min
EWEIGHT			1	1	0.5
YAL001C	TFC3 transcription initiation	1	0.43	-0.12	1.5
YAL002W	VPS8	2	-0.8		0.1
YAL003W	EFB1 translation elongation	1	NA	0.33	-0.2
`

func TestReadPCL(t *testing.T) {
	ds, err := ReadPCL(strings.NewReader(samplePCL), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "sample" {
		t.Fatalf("name = %q", ds.Name)
	}
	if ds.NumGenes() != 3 || ds.NumExperiments() != 3 {
		t.Fatalf("dims = %dx%d", ds.NumGenes(), ds.NumExperiments())
	}
	if ds.Experiments[0] != "heat 10min" || ds.Experiments[2] != "cold 20min" {
		t.Fatalf("experiments = %v", ds.Experiments)
	}
	if ds.EWeights[2] != 0.5 {
		t.Fatalf("EWeights = %v", ds.EWeights)
	}
	g := ds.Genes[0]
	if g.ID != "YAL001C" || g.Name != "TFC3" || g.Annotation != "transcription initiation" {
		t.Fatalf("gene[0] = %+v", g)
	}
	if ds.Genes[1].Name != "VPS8" || ds.Genes[1].Annotation != "" {
		t.Fatalf("gene[1] = %+v", ds.Genes[1])
	}
	if ds.GWeights[1] != 2 {
		t.Fatalf("GWeights = %v", ds.GWeights)
	}
	if ds.Value(0, 0) != 0.43 {
		t.Fatalf("Value(0,0) = %v", ds.Value(0, 0))
	}
	if !math.IsNaN(ds.Value(1, 1)) {
		t.Fatal("empty cell should be missing")
	}
	if !math.IsNaN(ds.Value(2, 0)) {
		t.Fatal("NA cell should be missing")
	}
}

func TestReadPCLWithoutGweight(t *testing.T) {
	in := "ID\tNAME\texp1\texp2\nG1\tN1\t1\t2\n"
	ds, err := ReadPCL(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumExperiments() != 2 || ds.Value(0, 1) != 2 {
		t.Fatalf("parsed wrong: %v", ds.Data)
	}
}

func TestReadPCLErrors(t *testing.T) {
	if _, err := ReadPCL(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadPCL(strings.NewReader("ID\n"), "x"); err == nil {
		t.Fatal("short header should error")
	}
	bad := "ID\tNAME\tGWEIGHT\te1\nG1\tN\t1\tnot-a-number\n"
	if _, err := ReadPCL(strings.NewReader(bad), "x"); err == nil {
		t.Fatal("bad cell should error")
	}
	dup := "ID\tNAME\tGWEIGHT\te1\nG1\tN\t1\t1\nG1\tN\t1\t2\n"
	if _, err := ReadPCL(strings.NewReader(dup), "x"); err == nil {
		t.Fatal("duplicate ID should error")
	}
}

func TestPCLRoundTrip(t *testing.T) {
	ds, err := ReadPCL(strings.NewReader(samplePCL), "sample")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePCL(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPCL(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, ds, back)
}

func assertDatasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.NumGenes() != b.NumGenes() || a.NumExperiments() != b.NumExperiments() {
		t.Fatalf("dims %dx%d vs %dx%d", a.NumGenes(), a.NumExperiments(), b.NumGenes(), b.NumExperiments())
	}
	for i := range a.Experiments {
		if a.Experiments[i] != b.Experiments[i] {
			t.Fatalf("experiment %d: %q vs %q", i, a.Experiments[i], b.Experiments[i])
		}
		if math.Abs(a.EWeights[i]-b.EWeights[i]) > 1e-9 {
			t.Fatalf("eweight %d: %v vs %v", i, a.EWeights[i], b.EWeights[i])
		}
	}
	for g := range a.Genes {
		if a.Genes[g] != b.Genes[g] {
			t.Fatalf("gene %d: %+v vs %+v", g, a.Genes[g], b.Genes[g])
		}
		if math.Abs(a.GWeights[g]-b.GWeights[g]) > 1e-9 {
			t.Fatalf("gweight %d: %v vs %v", g, a.GWeights[g], b.GWeights[g])
		}
		for e := range a.Experiments {
			av, bv := a.Value(g, e), b.Value(g, e)
			if math.IsNaN(av) != math.IsNaN(bv) {
				t.Fatalf("missingness mismatch at (%d,%d): %v vs %v", g, e, av, bv)
			}
			if !math.IsNaN(av) && math.Abs(av-bv) > 1e-6 {
				t.Fatalf("value (%d,%d): %v vs %v", g, e, av, bv)
			}
		}
	}
}

func TestPCLRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nG, nE := r.Intn(30)+1, r.Intn(10)+1
		exps := make([]string, nE)
		for i := range exps {
			exps[i] = "exp" + string(rune('A'+i))
		}
		ds := NewDataset("rand", exps)
		for i := range ds.EWeights {
			ds.EWeights[i] = float64(r.Intn(4)) + 0.5
		}
		for g := 0; g < nG; g++ {
			vals := make([]float64, nE)
			for e := range vals {
				if r.Float64() < 0.15 {
					vals[e] = Missing
				} else {
					vals[e] = math.Round(r.NormFloat64()*1000) / 1000
				}
			}
			gene := Gene{ID: GeneLeafID(g), Name: "N" + GeneLeafID(g)}
			if r.Float64() < 0.5 {
				gene.Annotation = "some description here"
			}
			if err := ds.AddGene(gene, vals); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := WritePCL(&buf, ds); err != nil {
			t.Fatal(err)
		}
		back, err := ReadPCL(&buf, "rand")
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetsEqual(t, ds, back)
	}
}

func TestCDTRoundTrip(t *testing.T) {
	ds, err := ReadPCL(strings.NewReader(samplePCL), "sample")
	if err != nil {
		t.Fatal(err)
	}
	c := &CDT{Dataset: ds,
		GIDs: []string{"GENE0X", "GENE1X", "GENE2X"},
		AIDs: []string{"ARRY0X", "ARRY1X", "ARRY2X"},
	}
	var buf bytes.Buffer
	if err := WriteCDT(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCDT(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, ds, back.Dataset)
	for i := range c.GIDs {
		if back.GIDs[i] != c.GIDs[i] {
			t.Fatalf("GIDs = %v", back.GIDs)
		}
	}
	for i := range c.AIDs {
		if back.AIDs[i] != c.AIDs[i] {
			t.Fatalf("AIDs = %v", back.AIDs)
		}
	}
}

func TestCDTWithoutTrees(t *testing.T) {
	ds, _ := ReadPCL(strings.NewReader(samplePCL), "sample")
	c := &CDT{Dataset: ds}
	var buf bytes.Buffer
	if err := WriteCDT(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCDT(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if back.GIDs != nil || back.AIDs != nil {
		t.Fatalf("expected no tree IDs, got %v / %v", back.GIDs, back.AIDs)
	}
	assertDatasetsEqual(t, ds, back.Dataset)
}

func TestWriteCDTValidation(t *testing.T) {
	ds, _ := ReadPCL(strings.NewReader(samplePCL), "sample")
	c := &CDT{Dataset: ds, GIDs: []string{"only-one"}}
	var buf bytes.Buffer
	if err := WriteCDT(&buf, c); err == nil {
		t.Fatal("mismatched GIDs should error")
	}
	c = &CDT{Dataset: ds, AIDs: []string{"only-one"}}
	if err := WriteCDT(&buf, c); err == nil {
		t.Fatal("mismatched AIDs should error")
	}
}

func TestLeafIDFormat(t *testing.T) {
	if GeneLeafID(3) != "GENE3X" || ArrayLeafID(0) != "ARRY0X" {
		t.Fatalf("leaf IDs: %s %s", GeneLeafID(3), ArrayLeafID(0))
	}
}
