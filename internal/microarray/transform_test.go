package microarray

import (
	"math"
	"testing"

	"forestview/internal/stats"
)

func TestLogTransform(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c", "d"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{8, 1, 0, -2})
	ds.LogTransform()
	row := ds.Row(0)
	if row[0] != 3 || row[1] != 0 {
		t.Fatalf("log transform = %v", row)
	}
	if !math.IsNaN(row[2]) || !math.IsNaN(row[3]) {
		t.Fatal("non-positive values must become missing")
	}
}

func TestMedianCenterGenes(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{1, 2, 6})
	ds.MedianCenterGenes()
	row := ds.Row(0)
	if row[0] != -1 || row[1] != 0 || row[2] != 4 {
		t.Fatalf("median centered = %v", row)
	}
}

func TestMeanCenterGenes(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{1, 2, 3})
	ds.MeanCenterGenes()
	if m := stats.Mean(ds.Row(0)); math.Abs(m) > 1e-12 {
		t.Fatalf("mean after centering = %v", m)
	}
}

func TestMedianCenterArrays(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{1, 10})
	_ = ds.AddGene(Gene{ID: "G2"}, []float64{3, 20})
	_ = ds.AddGene(Gene{ID: "G3"}, []float64{5, 30})
	ds.MedianCenterArrays()
	if ds.Value(0, 0) != -2 || ds.Value(2, 0) != 2 {
		t.Fatalf("col 0 = %v %v %v", ds.Value(0, 0), ds.Value(1, 0), ds.Value(2, 0))
	}
	if ds.Value(0, 1) != -10 || ds.Value(1, 1) != 0 {
		t.Fatalf("col 1 = %v %v", ds.Value(0, 1), ds.Value(1, 1))
	}
}

func TestNormalizeGenes(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{3, 4})
	ds.NormalizeGenes()
	row := ds.Row(0)
	norm := math.Sqrt(row[0]*row[0] + row[1]*row[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("norm = %v", norm)
	}
}

func TestZTransformGenes(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{10, 20, 30})
	_ = ds.AddGene(Gene{ID: "G2"}, []float64{5, 5, 5})
	ds.ZTransformGenes()
	if m := stats.Mean(ds.Row(0)); math.Abs(m) > 1e-12 {
		t.Fatalf("z mean = %v", m)
	}
	for _, v := range ds.Row(1) {
		if v != 0 {
			t.Fatal("flat row should z-transform to zeros")
		}
	}
}

func TestFilterGenes(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{2, -2, 1})            // passes
	_ = ds.AddGene(Gene{ID: "G2"}, []float64{0.1, 0.1, 0.1})       // fails minAbs
	_ = ds.AddGene(Gene{ID: "G3"}, []float64{5, Missing, Missing}) // fails minPresent
	keep := ds.FilterGenes(2, 1.0)
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("FilterGenes = %v", keep)
	}
}

func TestImputeRowMean(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{1, Missing, 3})
	_ = ds.AddGene(Gene{ID: "G2"}, []float64{Missing, Missing, Missing})
	ds.ImputeRowMean()
	if ds.Value(0, 1) != 2 {
		t.Fatalf("imputed = %v", ds.Value(0, 1))
	}
	for _, v := range ds.Row(1) {
		if v != 0 {
			t.Fatal("all-missing row should impute to zeros")
		}
	}
}

func TestTransformsSkipMissing(t *testing.T) {
	ds := NewDataset("x", []string{"a", "b", "c"})
	_ = ds.AddGene(Gene{ID: "G1"}, []float64{1, Missing, 3})
	ds.MedianCenterGenes()
	if !math.IsNaN(ds.Value(0, 1)) {
		t.Fatal("centering must not fill missing cells")
	}
	ds.ZTransformGenes()
	if !math.IsNaN(ds.Value(0, 1)) {
		t.Fatal("z-transform must not fill missing cells")
	}
}
