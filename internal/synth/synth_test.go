package synth

import (
	"math"
	"strings"
	"testing"

	"forestview/internal/stats"
)

func TestNewUniverseBasics(t *testing.T) {
	u := NewUniverse(500, 20, 1)
	if len(u.Genes) != 500 {
		t.Fatalf("genes = %d", len(u.Genes))
	}
	if len(u.Modules) != 20 {
		t.Fatalf("modules = %d", len(u.Modules))
	}
	// Every module has at least one gene.
	for i, m := range u.Modules {
		if len(m.Genes) == 0 {
			t.Fatalf("module %d (%s) is empty", i, m.Name)
		}
	}
	// Gene IDs unique.
	seen := make(map[string]bool)
	for _, g := range u.Genes {
		if seen[g.ID] {
			t.Fatalf("duplicate gene ID %s", g.ID)
		}
		seen[g.ID] = true
	}
}

func TestUniverseDeterministic(t *testing.T) {
	a := NewUniverse(200, 10, 42)
	b := NewUniverse(200, 10, 42)
	for i := range a.Genes {
		if a.Genes[i] != b.Genes[i] {
			t.Fatalf("gene %d differs between same-seed universes", i)
		}
	}
	c := NewUniverse(200, 10, 43)
	same := true
	for i := range a.Genes {
		if a.Genes[i] != c.Genes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical universes")
	}
}

func TestSystematicNameFormat(t *testing.T) {
	u := NewUniverse(100, 5, 1)
	for _, g := range u.Genes {
		id := g.ID
		if len(id) != 7 || id[0] != 'Y' {
			t.Fatalf("bad systematic name %q", id)
		}
		if id[2] != 'L' && id[2] != 'R' {
			t.Fatalf("bad arm in %q", id)
		}
		last := id[len(id)-1]
		if last != 'C' && last != 'W' {
			t.Fatalf("bad strand in %q", id)
		}
	}
}

func TestGeneIDsUniqueAtScale(t *testing.T) {
	// The paper cites datasets of 6,000-50,000 genes; IDs must stay unique
	// well past the small test sizes.
	u := NewUniverse(6000, 30, 2)
	seen := make(map[string]bool, 6000)
	for _, g := range u.Genes {
		if seen[g.ID] {
			t.Fatalf("duplicate gene ID %s at genome scale", g.ID)
		}
		seen[g.ID] = true
	}
}

func TestUniverseDegenerateArgs(t *testing.T) {
	u := NewUniverse(1, 1, 1)
	if len(u.Modules) < 3 {
		t.Fatal("module floor should be 3 (two ESR + one process)")
	}
	if len(u.Genes) < len(u.Modules) {
		t.Fatal("genes must cover modules")
	}
}

func TestModuleGeneIDs(t *testing.T) {
	u := NewUniverse(300, 12, 3)
	ids := u.ModuleGeneIDs(u.ESRInduced)
	if len(ids) == 0 {
		t.Fatal("ESR-induced module empty")
	}
	for _, id := range ids {
		if u.ModuleOf(id) != u.ESRInduced {
			t.Fatalf("gene %s not mapped back to ESR-induced", id)
		}
	}
	if u.ModuleGeneIDs(-1) != nil || u.ModuleGeneIDs(99) != nil {
		t.Fatal("out-of-range module should return nil")
	}
	if u.ModuleOf("NOPE") != -1 {
		t.Fatal("unknown gene should map to -1")
	}
}

func TestAnnotations(t *testing.T) {
	u := NewUniverse(100, 8, 5)
	ann := u.Annotations()
	if len(ann) != 100 {
		t.Fatalf("annotations = %d", len(ann))
	}
	for id, terms := range ann {
		if len(terms) != 1 {
			t.Fatalf("gene %s has %d terms", id, len(terms))
		}
		m := u.ModuleOf(id)
		if terms[0] != u.Modules[m].Name {
			t.Fatalf("gene %s annotated %q, module is %q", id, terms[0], u.Modules[m].Name)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	u := NewUniverse(200, 10, 7)
	ds := u.Generate(DatasetSpec{
		Name: "test", Kind: StressStudy, NumExperiments: 20,
		ESRStrength: 1, Noise: 0.2, MissingRate: 0.1, Seed: 9,
	})
	if ds.NumGenes() != 200 || ds.NumExperiments() != 20 {
		t.Fatalf("dims = %dx%d", ds.NumGenes(), ds.NumExperiments())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	mf := ds.MissingFraction()
	if mf < 0.05 || mf > 0.2 {
		t.Fatalf("missing fraction = %v, want ~0.1", mf)
	}
	// Experiment names carry the stress idiom.
	if !strings.Contains(ds.Experiments[0], "min") {
		t.Fatalf("stress experiment name = %q", ds.Experiments[0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u := NewUniverse(50, 6, 2)
	spec := DatasetSpec{Name: "d", NumExperiments: 8, Seed: 4}
	a := u.Generate(spec)
	b := u.Generate(spec)
	for g := 0; g < a.NumGenes(); g++ {
		for e := 0; e < a.NumExperiments(); e++ {
			av, bv := a.Value(g, e), b.Value(g, e)
			if math.IsNaN(av) != math.IsNaN(bv) {
				t.Fatal("missingness differs between same-seed datasets")
			}
			if !math.IsNaN(av) && av != bv {
				t.Fatal("values differ between same-seed datasets")
			}
		}
	}
}

func TestModuleCoherence(t *testing.T) {
	// Genes in the same active module must be much more correlated than
	// genes in different modules.
	u := NewUniverse(400, 10, 11)
	ds := u.Generate(DatasetSpec{
		Name: "coh", Kind: GenericStudy, NumExperiments: 30,
		Noise: 0.25, Seed: 13,
	})
	// Pick the largest non-ESR module.
	best, size := -1, 0
	for i, m := range u.Modules {
		if i == u.ESRInduced || i == u.ESRRepressed {
			continue
		}
		if len(m.Genes) > size {
			best, size = i, len(m.Genes)
		}
	}
	if size < 4 {
		t.Skip("largest module too small for the coherence check")
	}
	var within [][]float64
	for _, g := range u.Modules[best].Genes[:4] {
		within = append(within, ds.Row(g))
	}
	wc := stats.MeanPairwiseCorrelation(within)
	// Cross-module pairs: first gene from 4 different modules.
	var across [][]float64
	for i, m := range u.Modules {
		if i == u.ESRInduced || i == u.ESRRepressed || len(m.Genes) == 0 {
			continue
		}
		across = append(across, ds.Row(m.Genes[0]))
		if len(across) == 4 {
			break
		}
	}
	ac := stats.MeanPairwiseCorrelation(across)
	if !(wc > 0.5) {
		t.Fatalf("within-module correlation = %v, want > 0.5", wc)
	}
	if !(wc > ac+0.3) {
		t.Fatalf("within (%v) should exceed across (%v) by a wide margin", wc, ac)
	}
}

func TestESRSignature(t *testing.T) {
	u := NewUniverse(400, 10, 17)
	stress := u.Generate(DatasetSpec{
		Name: "stress", Kind: StressStudy, NumExperiments: 30,
		ESRStrength: 1, Noise: 0.25, Seed: 19,
	})
	// Induced and repressed ESR genes must anti-correlate.
	gi := u.Modules[u.ESRInduced].Genes[0]
	gr := u.Modules[u.ESRRepressed].Genes[0]
	r := stats.Pearson(stress.Row(gi), stress.Row(gr))
	if !(r < -0.5) {
		t.Fatalf("induced/repressed ESR correlation = %v, want strongly negative", r)
	}
	// With ESRStrength 0 the signature disappears.
	quiet := u.Generate(DatasetSpec{
		Name: "quiet", Kind: StressStudy, NumExperiments: 30,
		ESRStrength: 0, Noise: 0.25, Seed: 23,
	})
	rq := stats.Pearson(quiet.Row(gi), quiet.Row(gr))
	if math.Abs(rq) > 0.6 {
		t.Fatalf("ESR off but correlation = %v", rq)
	}
}

func TestESRCutsAcrossStudies(t *testing.T) {
	// The heart of the Section-4 case study: ESR genes correlate with each
	// other in stress AND nutrient AND knockout data.
	u := NewUniverse(400, 10, 29)
	col := StressCaseCollection(u, 100)
	esr := u.Modules[u.ESRInduced].Genes
	if len(esr) < 3 {
		t.Skip("ESR module too small")
	}
	for _, ds := range col {
		var rows [][]float64
		for _, g := range esr[:3] {
			rows = append(rows, ds.Row(g))
		}
		mc := stats.MeanPairwiseCorrelation(rows)
		if !(mc > 0.4) {
			t.Fatalf("ESR coherence in %q = %v, want > 0.4", ds.Name, mc)
		}
	}
}

func TestInactiveModulesAreNoise(t *testing.T) {
	u := NewUniverse(300, 10, 31)
	// Activate only module 2.
	ds := u.Generate(DatasetSpec{
		Name: "narrow", Kind: GenericStudy, NumExperiments: 25,
		ActiveModules: []int{2}, Noise: 0.25, Seed: 37,
	})
	// Another module's genes should be uncorrelated.
	var m int
	for i := range u.Modules {
		if i != 2 && i != u.ESRInduced && i != u.ESRRepressed && len(u.Modules[i].Genes) >= 3 {
			m = i
			break
		}
	}
	var rows [][]float64
	for _, g := range u.Modules[m].Genes[:3] {
		rows = append(rows, ds.Row(g))
	}
	mc := stats.MeanPairwiseCorrelation(rows)
	if math.Abs(mc) > 0.45 {
		t.Fatalf("inactive module coherence = %v, want ~0", mc)
	}
}

func TestGenerateCompendium(t *testing.T) {
	u := NewUniverse(200, 12, 41)
	dss, active := u.GenerateCompendium(CompendiumSpec{
		NumDatasets: 6, MinExperiments: 8, MaxExperiments: 16,
		ActiveFraction: 0.4, Noise: 0.25, MissingRate: 0.02, Seed: 43,
	})
	if len(dss) != 6 || len(active) != 6 {
		t.Fatalf("compendium size = %d/%d", len(dss), len(active))
	}
	for i, ds := range dss {
		if ds.NumGenes() != 200 {
			t.Fatalf("dataset %d genes = %d", i, ds.NumGenes())
		}
		if ds.NumExperiments() < 8 || ds.NumExperiments() > 16 {
			t.Fatalf("dataset %d experiments = %d", i, ds.NumExperiments())
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("dataset %d: %v", i, err)
		}
		nMod := 12
		wantActive := int(float64(nMod) * 0.4)
		if len(active[i]) != wantActive {
			t.Fatalf("dataset %d active modules = %d, want %d", i, len(active[i]), wantActive)
		}
	}
}

func TestCompendiumDefaults(t *testing.T) {
	u := NewUniverse(50, 5, 47)
	dss, _ := u.GenerateCompendium(CompendiumSpec{Seed: 48})
	if len(dss) != 5 {
		t.Fatalf("default compendium size = %d, want 5", len(dss))
	}
}

func TestStressCaseCollection(t *testing.T) {
	u := NewUniverse(200, 8, 53)
	col := StressCaseCollection(u, 200)
	if len(col) != 4 {
		t.Fatalf("collection size = %d", len(col))
	}
	wantNames := []string{"stress time-courses A", "stress time-courses B",
		"nutrient limitation", "knockout compendium"}
	for i, ds := range col {
		if ds.Name != wantNames[i] {
			t.Fatalf("dataset %d name = %q, want %q", i, ds.Name, wantNames[i])
		}
	}
}

func TestStudyKindString(t *testing.T) {
	for k, want := range map[StudyKind]string{
		GenericStudy: "generic", StressStudy: "stress",
		NutrientStudy: "nutrient-limitation", KnockoutStudy: "knockout-compendium",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
