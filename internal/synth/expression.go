package synth

import (
	"fmt"
	"math"
	"math/rand"

	"forestview/internal/microarray"
)

// StudyKind selects the condition design of a generated dataset, mirroring
// the three study types of the paper's Section-4 case study.
type StudyKind int

const (
	// GenericStudy: smooth random module profiles across conditions.
	GenericStudy StudyKind = iota
	// StressStudy mimics Gasch-style environmental stress time courses:
	// conditions come in blocks (heat, oxidative, osmotic, ...) and the ESR
	// modules respond strongly in every block.
	StressStudy
	// NutrientStudy mimics Saldanha-style nutrient limitation chemostats:
	// gradual profiles per limited nutrient, with a growth-rate-linked ESR
	// component.
	NutrientStudy
	// KnockoutStudy mimics Hughes-style deletion compendia: each
	// experiment is one knockout; most genes are silent per experiment,
	// but slow-growing knockouts induce the ESR across many columns.
	KnockoutStudy
)

// String names the study kind.
func (k StudyKind) String() string {
	switch k {
	case StressStudy:
		return "stress"
	case NutrientStudy:
		return "nutrient-limitation"
	case KnockoutStudy:
		return "knockout-compendium"
	default:
		return "generic"
	}
}

// DatasetSpec parameterizes one generated dataset.
type DatasetSpec struct {
	// Name of the dataset (pane title in ForestView).
	Name string
	// Kind selects the condition design.
	Kind StudyKind
	// NumExperiments is the number of columns.
	NumExperiments int
	// ActiveModules lists modules carrying signal in this dataset; others
	// are pure noise here. Nil means every module is active.
	ActiveModules []int
	// ESRStrength scales the stress-signature amplitude (0 disables; 1 is
	// a typical stress study).
	ESRStrength float64
	// Noise is the standard deviation of measurement noise (log2 units).
	Noise float64
	// MissingRate is the probability a cell is missing.
	MissingRate float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Generate produces a dataset over the universe's genes according to spec.
// Every gene's expression is loading × moduleProfile + N(0, noise), with
// the ESR modules driven by the study-specific stress profile.
func (u *Universe) Generate(spec DatasetSpec) *microarray.Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	nE := spec.NumExperiments
	if nE <= 0 {
		nE = 10
	}
	exps := experimentNames(spec.Kind, nE)
	ds := microarray.NewDataset(spec.Name, exps)

	active := make(map[int]bool, len(u.Modules))
	if spec.ActiveModules == nil {
		for i := range u.Modules {
			active[i] = true
		}
	} else {
		for _, m := range spec.ActiveModules {
			active[m] = true
		}
	}
	// ESR activity follows ESRStrength, not the active list, because the
	// case study's point is precisely that the stress signature shows up
	// whether or not the study was about stress.
	esrProfile := stressProfile(spec.Kind, nE, rng)

	// One latent profile per module.
	profiles := make([][]float64, len(u.Modules))
	for m := range u.Modules {
		switch {
		case m == u.ESRInduced:
			profiles[m] = scaled(esrProfile, spec.ESRStrength)
		case m == u.ESRRepressed:
			profiles[m] = scaled(esrProfile, -spec.ESRStrength)
		case active[m]:
			profiles[m] = moduleProfile(spec.Kind, nE, rng)
		default:
			profiles[m] = make([]float64, nE) // silent module
		}
	}

	noise := spec.Noise
	if noise <= 0 {
		noise = 0.25
	}
	for _, gi := range u.Genes {
		prof := profiles[gi.Module]
		vals := make([]float64, nE)
		for e := 0; e < nE; e++ {
			if spec.MissingRate > 0 && rng.Float64() < spec.MissingRate {
				vals[e] = microarray.Missing
				continue
			}
			vals[e] = gi.Loading*prof[e] + rng.NormFloat64()*noise
		}
		gene := microarray.Gene{ID: gi.ID, Name: gi.Name, Annotation: gi.Desc}
		if err := ds.AddGene(gene, vals); err != nil {
			// Universe IDs are unique by construction; a failure here is a
			// programming error worth surfacing loudly.
			panic(fmt.Sprintf("synth: %v", err))
		}
	}
	return ds
}

// experimentNames labels columns in the idiom of each study type.
func experimentNames(kind StudyKind, n int) []string {
	out := make([]string, n)
	switch kind {
	case StressStudy:
		blocks := []string{"heat 37C", "H2O2", "sorbitol", "diamide", "DTT", "cold 15C"}
		per := (n + len(blocks) - 1) / len(blocks)
		for i := 0; i < n; i++ {
			b := i / per
			if b >= len(blocks) {
				b = len(blocks) - 1
			}
			out[i] = fmt.Sprintf("%s %dmin", blocks[b], 5*(i%per+1))
		}
	case NutrientStudy:
		nutrients := []string{"glucose", "nitrogen", "phosphate", "sulfate", "leucine", "uracil"}
		per := (n + len(nutrients) - 1) / len(nutrients)
		for i := 0; i < n; i++ {
			b := i / per
			if b >= len(nutrients) {
				b = len(nutrients) - 1
			}
			out[i] = fmt.Sprintf("%s-limited D=0.%02d", nutrients[b], 5+i%per*5)
		}
	case KnockoutStudy:
		for i := 0; i < n; i++ {
			out[i] = fmt.Sprintf("deletion-%03d", i+1)
		}
	default:
		for i := 0; i < n; i++ {
			out[i] = fmt.Sprintf("cond-%03d", i+1)
		}
	}
	return out
}

// moduleProfile draws a latent expression profile for a non-ESR module.
func moduleProfile(kind StudyKind, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	switch kind {
	case KnockoutStudy:
		// A module responds in a small random subset of knockouts.
		k := 1 + rng.Intn(3)
		for i := 0; i < k; i++ {
			e := rng.Intn(n)
			out[e] = 1.5 + rng.Float64()*1.5
			if rng.Float64() < 0.5 {
				out[e] = -out[e]
			}
		}
	default:
		// Smooth random walk, mean-centered, typical amplitude ~1-2.
		v := 0.0
		for i := 0; i < n; i++ {
			v = 0.8*v + rng.NormFloat64()*0.8
			out[i] = v
		}
		mean := 0.0
		for _, x := range out {
			mean += x
		}
		mean /= float64(n)
		amp := 1 + rng.Float64()
		// Rescale to the target amplitude.
		maxAbs := 0.0
		for i := range out {
			out[i] -= mean
			if a := math.Abs(out[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 {
			for i := range out {
				out[i] *= amp / maxAbs
			}
		}
	}
	return out
}

// stressProfile is the latent ESR activity over the dataset's conditions.
func stressProfile(kind StudyKind, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	switch kind {
	case StressStudy:
		// Every stress block shows the classic fast-induction/adaptation
		// transient: high early, decaying within the block.
		const blockLen = 5
		for i := 0; i < n; i++ {
			phase := i % blockLen
			out[i] = 2.2*math.Exp(-float64(phase)*0.45) + rng.NormFloat64()*0.1
		}
	case NutrientStudy:
		// ESR tracks inverse growth rate: strongest at the most severe
		// limitation within each nutrient block.
		const blockLen = 4
		for i := 0; i < n; i++ {
			phase := i % blockLen
			out[i] = 1.8*(1-float64(phase)/blockLen) + rng.NormFloat64()*0.1
		}
	case KnockoutStudy:
		// Roughly half the knockouts grow slowly and induce the ESR.
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				out[i] = 1.5 + rng.Float64()
			} else {
				out[i] = rng.NormFloat64() * 0.1
			}
		}
	default:
		for i := 0; i < n; i++ {
			out[i] = rng.NormFloat64() * 0.3
		}
	}
	return out
}

func scaled(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}
