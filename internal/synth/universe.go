// Package synth generates synthetic genomic datasets with planted,
// controllable structure. It substitutes for the proprietary/published
// yeast compendia the paper analyzes (Gasch 2000 environmental stress,
// Saldanha 2004 nutrient limitation, Hughes 2000 knockout compendium):
// the real data cannot ship with an offline reproduction, so we generate
// matrices with the same shape — co-regulated gene modules, a global
// Environmental Stress Response (ESR) signature that cuts across studies,
// per-study condition designs, realistic noise and missingness — and the
// experiments verify the *relationships* the paper reports rather than the
// absolute values of any real dataset.
package synth

import (
	"fmt"
	"math/rand"
)

// GeneInfo describes one synthetic gene: a yeast-style systematic ID, a
// common name, a free-text description used by annotation search, the
// module it belongs to, and its loading (response strength) on the module
// signal.
type GeneInfo struct {
	ID      string
	Name    string
	Desc    string
	Module  int
	Loading float64
}

// Module is a co-regulated gene group, the synthetic stand-in for a
// biological process. Special modules model the ESR.
type Module struct {
	Name  string
	Genes []int // indices into Universe.Genes
}

// Universe is a synthetic genome: the gene catalogue and its partition into
// co-regulation modules. All datasets generated from the same universe
// share gene identities, so cross-dataset analysis (the paper's core
// concern) is meaningful.
type Universe struct {
	Genes   []GeneInfo
	Modules []Module

	// Indices of the two ESR modules within Modules.
	ESRInduced   int
	ESRRepressed int
}

// Module name stems used to label synthetic processes; descriptions embed
// these so annotation search ("find genes by name") has realistic text to
// match.
var processNames = []string{
	"ribosome biogenesis", "heat shock response", "oxidative stress defense",
	"glycolysis", "amino acid biosynthesis", "cell cycle G1/S", "cell cycle G2/M",
	"DNA replication", "DNA repair", "mitochondrial respiration",
	"protein folding", "proteasome degradation", "vacuolar transport",
	"lipid metabolism", "nitrogen catabolism", "sulfur assimilation",
	"phosphate signaling", "iron homeostasis", "cell wall organization",
	"mating pheromone response", "sporulation", "autophagy",
	"trehalose metabolism", "glycogen storage", "ergosterol biosynthesis",
	"tRNA processing", "rRNA processing", "mRNA splicing", "nuclear export",
	"chromatin remodeling", "histone modification", "telomere maintenance",
	"ubiquitin conjugation", "peroxisome biogenesis", "secretory pathway",
}

// NewUniverse creates a synthetic genome of nGenes genes partitioned into
// nModules co-regulation modules (two of which are the ESR-induced and
// ESR-repressed signatures). Module sizes follow a skewed distribution like
// real functional categories. The same seed always yields the same
// universe.
func NewUniverse(nGenes, nModules int, seed int64) *Universe {
	if nModules < 3 {
		nModules = 3
	}
	if nGenes < nModules {
		nGenes = nModules
	}
	rng := rand.New(rand.NewSource(seed))
	u := &Universe{}

	// Name the modules: the two ESR signatures first, then processes.
	u.ESRInduced = 0
	u.ESRRepressed = 1
	u.Modules = make([]Module, nModules)
	u.Modules[0] = Module{Name: "environmental stress response induced"}
	u.Modules[1] = Module{Name: "environmental stress response repressed"}
	for i := 2; i < nModules; i++ {
		base := processNames[(i-2)%len(processNames)]
		if (i-2)/len(processNames) > 0 {
			base = fmt.Sprintf("%s %d", base, (i-2)/len(processNames)+1)
		}
		u.Modules[i] = Module{Name: base}
	}

	// Skewed module-size weights: a few large signatures, many small ones.
	// The ESR modules get boosted weight to mirror the ~900-gene yeast ESR.
	weights := make([]float64, nModules)
	total := 0.0
	for i := range weights {
		w := 1.0 / float64(i+1)
		if i == u.ESRInduced || i == u.ESRRepressed {
			w = 1.5
		}
		weights[i] = w
		total += w
	}

	u.Genes = make([]GeneInfo, nGenes)
	for g := 0; g < nGenes; g++ {
		// Sample a module by weight; guarantee every module at least one
		// gene by assigning the first nModules genes round-robin.
		var m int
		if g < nModules {
			m = g
		} else {
			target := rng.Float64() * total
			acc := 0.0
			m = nModules - 1
			for i, w := range weights {
				acc += w
				if acc >= target {
					m = i
					break
				}
			}
		}
		u.Genes[g] = GeneInfo{
			ID:      systematicName(g),
			Name:    commonName(u.Modules[m].Name, len(u.Modules[m].Genes)),
			Desc:    u.Modules[m].Name,
			Module:  m,
			Loading: 0.6 + 0.8*rng.Float64(),
		}
		u.Modules[m].Genes = append(u.Modules[m].Genes, g)
	}
	return u
}

// systematicName formats a yeast-style systematic ORF name, e.g. YAL001C:
// chromosome letter, arm, position, Crick/Watson strand. The encoding is a
// bijection of the gene index (strand, then position 1-999, then arm, then
// chromosome), so IDs are unique up to 2×999×2×16 = 63,936 genes — beyond
// the 50,000-gene upper bound the paper cites. Past that a numeric suffix
// keeps uniqueness.
func systematicName(g int) string {
	strand := "C"
	if g%2 == 1 {
		strand = "W"
	}
	idx := g / 2
	pos := idx%999 + 1
	idx /= 999
	arm := "L"
	if idx%2 == 1 {
		arm = "R"
	}
	idx /= 2
	chrom := rune('A' + idx%16)
	idx /= 16
	if idx > 0 {
		return fmt.Sprintf("Y%c%s%03d%s-%d", chrom, arm, pos, strand, idx)
	}
	return fmt.Sprintf("Y%c%s%03d%s", chrom, arm, pos, strand)
}

// commonName derives a gene-symbol-like name from the module name, e.g.
// "heat shock response" gene 3 -> "HSR4".
func commonName(moduleName string, ordinal int) string {
	letters := make([]rune, 0, 3)
	for _, w := range splitWords(moduleName) {
		if len(letters) == 3 {
			break
		}
		letters = append(letters, upper(rune(w[0])))
	}
	for len(letters) < 3 {
		letters = append(letters, 'X')
	}
	return fmt.Sprintf("%s%d", string(letters), ordinal+1)
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' || r == '/' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func upper(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - 'a' + 'A'
	}
	return r
}

// GeneIDs returns the systematic IDs of all genes, in genome order.
func (u *Universe) GeneIDs() []string {
	ids := make([]string, len(u.Genes))
	for i, g := range u.Genes {
		ids[i] = g.ID
	}
	return ids
}

// ModuleGeneIDs returns the systematic IDs of the genes in module m.
func (u *Universe) ModuleGeneIDs(m int) []string {
	if m < 0 || m >= len(u.Modules) {
		return nil
	}
	ids := make([]string, len(u.Modules[m].Genes))
	for i, g := range u.Modules[m].Genes {
		ids[i] = u.Genes[g].ID
	}
	return ids
}

// ModuleOf returns the module index of a gene ID, or -1 when unknown.
func (u *Universe) ModuleOf(id string) int {
	for _, g := range u.Genes {
		if g.ID == id {
			return g.Module
		}
	}
	return -1
}

// Annotations returns gene-ID -> module-name assignments, the ground truth
// consumed by the synthetic GO builder and the enrichment experiments.
func (u *Universe) Annotations() map[string][]string {
	out := make(map[string][]string, len(u.Genes))
	for _, g := range u.Genes {
		out[g.ID] = []string{u.Modules[g.Module].Name}
	}
	return out
}
