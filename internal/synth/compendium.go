package synth

import (
	"fmt"
	"math/rand"

	"forestview/internal/microarray"
)

// CompendiumSpec parameterizes a multi-dataset collection, the synthetic
// stand-in for "all publicly available data" that SPELL searches.
type CompendiumSpec struct {
	// NumDatasets is the number of datasets to generate.
	NumDatasets int
	// MinExperiments/MaxExperiments bound each dataset's column count.
	MinExperiments, MaxExperiments int
	// ActiveFraction is the fraction of modules carrying signal in each
	// dataset (each dataset activates its own random subset, so any given
	// biological process is informative in only some datasets — the
	// situation SPELL's dataset weighting exists to handle).
	ActiveFraction float64
	// Noise and MissingRate are forwarded to each dataset.
	Noise, MissingRate float64
	// Seed drives all randomness.
	Seed int64
}

// GenerateCompendium produces a list of datasets per spec. Dataset i is
// named "synthetic-i" and records which modules are active in its spec for
// ground-truth evaluation.
func (u *Universe) GenerateCompendium(spec CompendiumSpec) ([]*microarray.Dataset, [][]int) {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.NumDatasets <= 0 {
		spec.NumDatasets = 5
	}
	if spec.MinExperiments <= 0 {
		spec.MinExperiments = 8
	}
	if spec.MaxExperiments < spec.MinExperiments {
		spec.MaxExperiments = spec.MinExperiments
	}
	if spec.ActiveFraction <= 0 || spec.ActiveFraction > 1 {
		spec.ActiveFraction = 0.5
	}
	datasets := make([]*microarray.Dataset, 0, spec.NumDatasets)
	activeSets := make([][]int, 0, spec.NumDatasets)
	kinds := []StudyKind{GenericStudy, StressStudy, NutrientStudy, KnockoutStudy}
	for i := 0; i < spec.NumDatasets; i++ {
		nAct := int(float64(len(u.Modules)) * spec.ActiveFraction)
		if nAct < 1 {
			nAct = 1
		}
		perm := rng.Perm(len(u.Modules))
		active := append([]int(nil), perm[:nAct]...)
		nE := spec.MinExperiments
		if spec.MaxExperiments > spec.MinExperiments {
			nE += rng.Intn(spec.MaxExperiments - spec.MinExperiments + 1)
		}
		kind := kinds[i%len(kinds)]
		esr := 0.0
		if kind == StressStudy {
			esr = 1
		}
		ds := u.Generate(DatasetSpec{
			Name:           fmt.Sprintf("synthetic-%d (%s)", i, kind),
			Kind:           kind,
			NumExperiments: nE,
			ActiveModules:  active,
			ESRStrength:    esr,
			Noise:          spec.Noise,
			MissingRate:    spec.MissingRate,
			Seed:           spec.Seed + int64(i)*7919,
		})
		datasets = append(datasets, ds)
		activeSets = append(activeSets, active)
	}
	return datasets, activeSets
}

// StressCaseCollection builds the Section-4 case-study trio over the
// universe: two environmental-stress datasets, one nutrient-limitation
// study and one knockout compendium, all with the ESR planted. It returns
// the datasets in that order.
//
// Crucially, the condition-specific modules are DISJOINT between study
// types (stress-response pathways respond in the stress studies, metabolic
// modules in the chemostats, pathway-specific effects in the knockouts) —
// only the ESR signature, driven by ESRStrength, cuts across all four.
// That is exactly the structure the paper's collaborator discovered: a
// cluster selected in the nutrient or knockout data that stays coherent in
// the stress datasets must be the general stress response, not a
// condition-specific effect.
func StressCaseCollection(u *Universe, seed int64) []*microarray.Dataset {
	// Partition the non-ESR modules round-robin into three study groups.
	var stressMods, nutrientMods, knockoutMods []int
	i := 0
	for m := range u.Modules {
		if m == u.ESRInduced || m == u.ESRRepressed {
			continue
		}
		switch i % 3 {
		case 0:
			stressMods = append(stressMods, m)
		case 1:
			nutrientMods = append(nutrientMods, m)
		case 2:
			knockoutMods = append(knockoutMods, m)
		}
		i++
	}
	return []*microarray.Dataset{
		u.Generate(DatasetSpec{
			Name: "stress time-courses A", Kind: StressStudy,
			NumExperiments: 30, ActiveModules: stressMods, ESRStrength: 1.0,
			Noise: 0.25, MissingRate: 0.02, Seed: seed + 1,
		}),
		u.Generate(DatasetSpec{
			Name: "stress time-courses B", Kind: StressStudy,
			NumExperiments: 24, ActiveModules: stressMods, ESRStrength: 0.9,
			Noise: 0.3, MissingRate: 0.03, Seed: seed + 2,
		}),
		u.Generate(DatasetSpec{
			Name: "nutrient limitation", Kind: NutrientStudy,
			NumExperiments: 24, ActiveModules: nutrientMods, ESRStrength: 0.7,
			Noise: 0.25, MissingRate: 0.02, Seed: seed + 3,
		}),
		u.Generate(DatasetSpec{
			Name: "knockout compendium", Kind: KnockoutStudy,
			NumExperiments: 40, ActiveModules: knockoutMods, ESRStrength: 0.8,
			Noise: 0.3, MissingRate: 0.05, Seed: seed + 4,
		}),
	}
}
