package annot

import (
	"testing"
)

func fixtureStore() *Store {
	s := NewStore()
	s.Add(Record{ID: "YAL001C", Name: "TFC3", Description: "transcription factor TFIIIC subunit"})
	s.Add(Record{ID: "YBR072W", Name: "HSP26", Description: "small heat shock protein"})
	s.Add(Record{ID: "YLL026W", Name: "HSP104", Description: "heat shock protein disaggregase"})
	s.Add(Record{ID: "YGR192C", Name: "TDH3", Description: "glycolysis glyceraldehyde-3-phosphate dehydrogenase"})
	s.Add(Record{ID: "YDR224C", Name: "HTB1", Description: "histone H2B cell wall unrelated"})
	return s
}

func TestStoreAddGetReplace(t *testing.T) {
	s := NewStore()
	s.Add(Record{ID: "G1", Name: "A"})
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	rec, ok := s.Get("g1")
	if !ok || rec.Name != "A" {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	s.Add(Record{ID: "G1", Name: "B"})
	if s.Len() != 1 {
		t.Fatal("replace must not grow the store")
	}
	rec, _ = s.Get("G1")
	if rec.Name != "B" {
		t.Fatalf("replaced record = %+v", rec)
	}
	if _, ok := s.Get("NOPE"); ok {
		t.Fatal("missing ID should report !ok")
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	s.Add(Record{ID: "G1"})
	if s.Len() != 1 {
		t.Fatal("zero-value store must be usable")
	}
}

func TestSearchSingleTerm(t *testing.T) {
	s := fixtureStore()
	got := s.Search("heat")
	want := []string{"YBR072W", "YLL026W"}
	assertIDs(t, got, want)
}

func TestSearchAND(t *testing.T) {
	s := fixtureStore()
	got := s.Search("heat disaggregase")
	assertIDs(t, got, []string{"YLL026W"})
	if len(s.Search("heat glycolysis")) != 0 {
		t.Fatal("conjunction with no common match should be empty")
	}
}

func TestSearchOR(t *testing.T) {
	s := fixtureStore()
	got := s.Search("glycolysis|histone")
	assertIDs(t, got, []string{"YDR224C", "YGR192C"})
}

func TestSearchFieldRestriction(t *testing.T) {
	s := fixtureStore()
	// "heat" appears only in descriptions; restricting to name finds none.
	if len(s.Search("name:heat")) != 0 {
		t.Fatal("name:heat should not match")
	}
	assertIDs(t, s.Search("name:HSP26"), []string{"YBR072W"})
	assertIDs(t, s.Search("id:YGR192C"), []string{"YGR192C"})
	assertIDs(t, s.Search("desc:histone"), []string{"YDR224C"})
}

func TestSearchPrefixWildcard(t *testing.T) {
	s := fixtureStore()
	got := s.Search("name:HSP*")
	assertIDs(t, got, []string{"YBR072W", "YLL026W"})
	// Wildcard against description words.
	got = s.Search("desc:glyco*")
	assertIDs(t, got, []string{"YGR192C"})
}

func TestSearchNegation(t *testing.T) {
	s := fixtureStore()
	got := s.Search("heat -disaggregase")
	assertIDs(t, got, []string{"YBR072W"})
}

func TestSearchQuotedPhrase(t *testing.T) {
	s := fixtureStore()
	got := s.Search(`"cell wall"`)
	assertIDs(t, got, []string{"YDR224C"})
	// The unquoted version also matches YDR224C only, but quoting must not
	// match records containing the words separately. Add such a record.
	s.Add(Record{ID: "YZZ999W", Name: "ZZZ1", Description: "cell division wall not adjacent"})
	got = s.Search(`"cell wall"`)
	assertIDs(t, got, []string{"YDR224C"})
	got = s.Search("cell wall")
	assertIDs(t, got, []string{"YDR224C", "YZZ999W"})
}

func TestSearchCaseInsensitive(t *testing.T) {
	s := fixtureStore()
	assertIDs(t, s.Search("HEAT SHOCK"), []string{"YBR072W", "YLL026W"})
	assertIDs(t, s.Search("id:yal001c"), []string{"YAL001C"})
}

func TestSearchCommaSeparated(t *testing.T) {
	s := fixtureStore()
	// Users paste comma-separated gene lists; commas split like whitespace,
	// terms are ANDed, so use OR groups for lists.
	got := s.Search("TFC3|TDH3")
	assertIDs(t, got, []string{"YAL001C", "YGR192C"})
}

func TestSearchEmpty(t *testing.T) {
	s := fixtureStore()
	if got := s.Search(""); got != nil {
		t.Fatalf("empty query should match nothing, got %v", got)
	}
	if got := s.Search("   "); got != nil {
		t.Fatalf("blank query should match nothing, got %v", got)
	}
	q := ParseQuery("")
	if !q.Empty() {
		t.Fatal("empty parse should be Empty")
	}
}

func TestSearchRecords(t *testing.T) {
	s := fixtureStore()
	recs := s.SearchRecords("heat")
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// Insertion order, not sorted.
	if recs[0].ID != "YBR072W" || recs[1].ID != "YLL026W" {
		t.Fatalf("record order = %v", recs)
	}
	if s.SearchRecords("") != nil {
		t.Fatal("empty query should return nil records")
	}
}

func TestQueryMatchesDirect(t *testing.T) {
	q := ParseQuery("shock -histone")
	if !q.Matches(Record{ID: "X", Description: "heat shock"}) {
		t.Fatal("should match")
	}
	if q.Matches(Record{ID: "X", Description: "heat shock histone"}) {
		t.Fatal("negated term should exclude")
	}
	if q.Matches(Record{}) {
		t.Fatal("empty record should not match")
	}
}

func TestParseQueryOddInputs(t *testing.T) {
	// Bare operators should not crash or match everything.
	for _, expr := range []string{"-", "|", ":", "name:", "*", "\"\""} {
		q := ParseQuery(expr)
		if q.Matches(Record{ID: "YAL001C", Name: "TFC3", Description: "x"}) && !q.Empty() {
			t.Fatalf("degenerate query %q unexpectedly matched", expr)
		}
	}
}

func assertIDs(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
