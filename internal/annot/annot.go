// Package annot implements the gene-annotation substrate: a store of
// per-gene identity and description records and the query engine behind
// ForestView's "Find Genes by name" / annotation-search interface
// (Section 2 of the paper: "search over the gene annotation information by
// entering a list of search criteria ... conducted across all datasets").
package annot

import (
	"sort"
	"strings"
)

// Record is one gene's annotation entry.
type Record struct {
	// ID is the systematic gene identifier (e.g. "YAL001C").
	ID string
	// Name is the common gene symbol (e.g. "TFC3").
	Name string
	// Description is free annotation text (process, function, aliases).
	Description string
}

// Store is an in-memory annotation database with case-insensitive search.
// The zero value is empty and ready to use.
type Store struct {
	records []Record
	byID    map[string]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[string]int)}
}

// Add inserts or replaces the record for rec.ID.
func (s *Store) Add(rec Record) {
	if s.byID == nil {
		s.byID = make(map[string]int)
	}
	key := strings.ToUpper(rec.ID)
	if i, ok := s.byID[key]; ok {
		s.records[i] = rec
		return
	}
	s.byID[key] = len(s.records)
	s.records = append(s.records, rec)
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// Get returns the record for the given ID (case-insensitive) and whether it
// exists.
func (s *Store) Get(id string) (Record, bool) {
	if i, ok := s.byID[strings.ToUpper(id)]; ok {
		return s.records[i], true
	}
	return Record{}, false
}

// All returns the records in insertion order. The slice is shared; callers
// must not modify it.
func (s *Store) All() []Record { return s.records }

// Query is a parsed search expression. The surface syntax is the one
// biologists type into the TreeView/ForestView search box:
//
//	heat shock            — records matching both terms (AND)
//	heat|cold             — either term (OR group)
//	id:YAL001C            — restrict a term to the ID field
//	name:HSP* desc:stress — simple trailing-* prefix wildcard
//	-ribosome             — exclude matches
//	"cell wall"           — exact phrase
type Query struct {
	groups []orGroup
}

type orGroup struct {
	negate bool
	alts   []term
}

type term struct {
	field  string // "", "id", "name", "desc"
	text   string // lower-case
	prefix bool   // trailing-* wildcard
}

// ParseQuery parses the search expression. An empty expression yields a
// query that matches nothing (a blank search box selects no genes).
func ParseQuery(s string) Query {
	var q Query
	for _, tok := range tokenize(s) {
		g := orGroup{}
		if strings.HasPrefix(tok, "-") && len(tok) > 1 {
			g.negate = true
			tok = tok[1:]
		}
		for _, alt := range strings.Split(tok, "|") {
			alt = strings.TrimSpace(alt)
			if alt == "" {
				continue
			}
			t := term{}
			if i := strings.Index(alt, ":"); i > 0 {
				f := strings.ToLower(alt[:i])
				switch f {
				case "id", "name", "desc":
					t.field = f
					alt = alt[i+1:]
				}
			}
			if strings.HasSuffix(alt, "*") {
				t.prefix = true
				alt = strings.TrimSuffix(alt, "*")
			}
			t.text = strings.ToLower(alt)
			if t.text != "" {
				g.alts = append(g.alts, t)
			}
		}
		if len(g.alts) > 0 {
			q.groups = append(q.groups, g)
		}
	}
	return q
}

// tokenize splits on whitespace while honoring double-quoted phrases.
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n' || r == ','):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// Empty reports whether the query has no criteria.
func (q Query) Empty() bool { return len(q.groups) == 0 }

// Matches reports whether the record satisfies every group of the query.
func (q Query) Matches(rec Record) bool {
	if q.Empty() {
		return false
	}
	id := strings.ToLower(rec.ID)
	name := strings.ToLower(rec.Name)
	desc := strings.ToLower(rec.Description)
	for _, g := range q.groups {
		hit := false
		for _, t := range g.alts {
			if t.matches(id, name, desc) {
				hit = true
				break
			}
		}
		if g.negate {
			if hit {
				return false
			}
		} else if !hit {
			return false
		}
	}
	return true
}

func (t term) matches(id, name, desc string) bool {
	check := func(hay string) bool {
		if t.prefix {
			// Prefix wildcard matches at the start of the field or of any
			// word inside it.
			if strings.HasPrefix(hay, t.text) {
				return true
			}
			for _, w := range strings.Fields(hay) {
				if strings.HasPrefix(w, t.text) {
					return true
				}
			}
			return false
		}
		return strings.Contains(hay, t.text)
	}
	switch t.field {
	case "id":
		return check(id)
	case "name":
		return check(name)
	case "desc":
		return check(desc)
	default:
		return check(id) || check(name) || check(desc)
	}
}

// Search returns the IDs of all records matching the expression, sorted for
// deterministic presentation.
func (s *Store) Search(expr string) []string {
	q := ParseQuery(expr)
	if q.Empty() {
		return nil
	}
	var out []string
	for _, rec := range s.records {
		if q.Matches(rec) {
			out = append(out, rec.ID)
		}
	}
	sort.Strings(out)
	return out
}

// SearchRecords is Search returning full records instead of IDs, in
// insertion order.
func (s *Store) SearchRecords(expr string) []Record {
	q := ParseQuery(expr)
	if q.Empty() {
		return nil
	}
	var out []Record
	for _, rec := range s.records {
		if q.Matches(rec) {
			out = append(out, rec)
		}
	}
	return out
}
