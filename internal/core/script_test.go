package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScriptFullSession(t *testing.T) {
	_, fv := buildFixture(t)
	dir := t.TempDir()
	png := filepath.Join(dir, "out.png")
	list := filepath.Join(dir, "sel.txt")
	merged := filepath.Join(dir, "merged.pcl")
	session := filepath.Join(dir, "s.json")
	script := strings.NewReader(`
# a complete scripted session
select-region 0 5 14
sync off
scroll 1 3
sync on
render ` + png + ` 640 360
export-list ` + list + `
export-merged ` + merged + `
save-session ` + session + `
clear
load-session ` + session + `
echo done
`)
	res, err := fv.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 11 {
		t.Fatalf("commands = %d, want 11", res.Commands)
	}
	// Session restored the selection after clear.
	if fv.Selection().Len() != 10 {
		t.Fatalf("selection after load-session = %d", fv.Selection().Len())
	}
	for _, p := range []string{png, list, merged, session} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("script output %s missing: %v", p, err)
		}
	}
	if res.Log[len(res.Log)-1] != "done" {
		t.Fatalf("echo log = %q", res.Log[len(res.Log)-1])
	}
}

func TestRunScriptQuery(t *testing.T) {
	_, fv := buildFixture(t)
	res, err := fv.RunScript(strings.NewReader(`select-query "stress response induced"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 1 || fv.Selection().Len() == 0 {
		t.Fatalf("query script: %+v, selection %d", res, fv.Selection().Len())
	}
}

func TestRunScriptSelectListFile(t *testing.T) {
	_, fv := buildFixture(t)
	path := filepath.Join(t.TempDir(), "genes.txt")
	ids := fv.Merged().GeneID(0) + "\n# comment\n" + fv.Merged().GeneID(1) + "\n"
	if err := os.WriteFile(path, []byte(ids), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fv.RunScript(strings.NewReader("select-list " + path)); err != nil {
		t.Fatal(err)
	}
	if fv.Selection().Len() != 2 {
		t.Fatalf("list selection = %d", fv.Selection().Len())
	}
}

func TestRunScriptErrors(t *testing.T) {
	_, fv := buildFixture(t)
	cases := []string{
		"frobnicate",                 // unknown command
		"select-region 0 5",          // wrong arity
		"select-region 0 x y",        // bad number
		"sync maybe",                 // bad flag
		"select-region 99 0 5",       // bad pane
		"select-query zzz-nothing",   // no matches
		"select-list /no/such/file",  // missing file
		"load-session /no/such/file", // missing file
	}
	for _, c := range cases {
		if _, err := fv.RunScript(strings.NewReader(c)); err == nil {
			t.Errorf("script %q should fail", c)
		}
	}
}

func TestRunScriptStopsAtFirstError(t *testing.T) {
	_, fv := buildFixture(t)
	script := strings.NewReader("select-region 0 0 4\nbogus\nselect-region 0 0 9\n")
	res, err := fv.RunScript(script)
	if err == nil {
		t.Fatal("script should fail at line 2")
	}
	if res.Commands != 1 {
		t.Fatalf("commands before failure = %d", res.Commands)
	}
	// The third command never ran.
	if fv.Selection().Len() != 5 {
		t.Fatalf("selection = %d, want 5 from the first command", fv.Selection().Len())
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the line: %v", err)
	}
}

func TestSplitScriptLine(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`a b c`, []string{"a", "b", "c"}},
		{`select-query "heat shock"`, []string{"select-query", "heat shock"}},
		{`x "a b" y`, []string{"x", "a b", "y"}},
		{`""`, []string{""}},
		{``, nil},
		{`  spaced   out  `, []string{"spaced", "out"}},
	}
	for _, c := range cases {
		got := splitScriptLine(c.in)
		if len(got) != len(c.want) {
			t.Errorf("split(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("split(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRunScriptNodeAndHistory(t *testing.T) {
	_, fv := buildFixture(t)
	root := fv.Pane(0).DS.GeneTree.Root()
	script := strings.NewReader(
		"select-region 0 0 4\n" +
			"select-node 0 " + itoa(root) + "\n" +
			"undo\n" +
			"redo\n")
	res, err := fv.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 4 {
		t.Fatalf("commands = %d", res.Commands)
	}
	if fv.Selection().Len() != fv.Pane(0).DS.Data.NumGenes() {
		t.Fatalf("after redo selection = %d", fv.Selection().Len())
	}
	// Undo with empty history errors.
	fresh, _ := New([]*ClusteredDataset{fv.Pane(0).DS})
	if _, err := fresh.RunScript(strings.NewReader("undo")); err == nil {
		t.Fatal("undo on fresh session should error")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestRunScriptComments(t *testing.T) {
	_, fv := buildFixture(t)
	res, err := fv.RunScript(strings.NewReader("# only comments\n\n   \n# more\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 0 {
		t.Fatalf("comments executed: %d", res.Commands)
	}
}
