package core

import (
	"encoding/json"
	"fmt"
	"io"

	"forestview/internal/render"
)

// SessionState is the serializable snapshot of a ForestView session: what
// the user selected, how views are synchronized, the pane arrangement and
// per-pane preferences. Saving and restoring sessions lets a display-wall
// analysis continue on a laptop (and vice versa) — the cross-platform
// continuity Section 2 asks for.
type SessionState struct {
	Version      int  `json:"version"`
	Synchronized bool `json:"synchronized"`
	SyncScroll   int  `json:"syncScroll"`
	// PaneOrder lists dataset names in display order.
	PaneOrder []string `json:"paneOrder"`
	// Selection and its provenance; empty when nothing is selected.
	SelectionIDs    []string `json:"selectionIds,omitempty"`
	SelectionSource string   `json:"selectionSource,omitempty"`
	// Prefs keyed by dataset name.
	Prefs map[string]PrefsState `json:"prefs"`
}

// PrefsState is the serializable form of Prefs.
type PrefsState struct {
	ColorMap       int     `json:"colorMap"`
	ContrastLimit  float64 `json:"contrastLimit"`
	ShowGeneTree   bool    `json:"showGeneTree"`
	ShowLabels     bool    `json:"showLabels"`
	GlobalViewFrac float64 `json:"globalViewFrac"`
}

// SaveSession writes the current session state as JSON.
func (fv *ForestView) SaveSession(w io.Writer) error {
	fv.mu.RLock()
	st := SessionState{
		Version:      1,
		Synchronized: fv.syncViews,
		SyncScroll:   fv.syncScroll,
		Prefs:        make(map[string]PrefsState, len(fv.panes)),
	}
	for _, pi := range fv.order {
		st.PaneOrder = append(st.PaneOrder, fv.panes[pi].DS.Data.Name)
	}
	if fv.selection != nil {
		st.SelectionIDs = append([]string(nil), fv.selection.IDs...)
		st.SelectionSource = fv.selection.Source
	}
	for _, p := range fv.panes {
		st.Prefs[p.DS.Data.Name] = PrefsState{
			ColorMap:       int(p.Prefs.ColorMap),
			ContrastLimit:  p.Prefs.ContrastLimit,
			ShowGeneTree:   p.Prefs.ShowGeneTree,
			ShowLabels:     p.Prefs.ShowLabels,
			GlobalViewFrac: p.Prefs.GlobalViewFrac,
		}
	}
	fv.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&st)
}

// RestoreSession applies a saved session to this ForestView. Datasets are
// matched by name; names in the state that are not loaded are ignored, and
// loaded datasets missing from the state keep their current settings.
func (fv *ForestView) RestoreSession(r io.Reader) error {
	var st SessionState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding session: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("core: unsupported session version %d", st.Version)
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.syncViews = st.Synchronized

	// Pane order: first the named panes in saved order, then the rest.
	byName := make(map[string]int, len(fv.panes))
	for i, p := range fv.panes {
		byName[p.DS.Data.Name] = i
	}
	used := make(map[int]bool, len(fv.panes))
	var order []int
	for _, name := range st.PaneOrder {
		if i, ok := byName[name]; ok && !used[i] {
			order = append(order, i)
			used[i] = true
		}
	}
	for i := range fv.panes {
		if !used[i] {
			order = append(order, i)
		}
	}
	fv.order = order

	if len(st.SelectionIDs) > 0 {
		fv.selection = newSelection(st.SelectionIDs, st.SelectionSource)
	} else {
		fv.selection = nil
	}
	fv.syncScroll = st.SyncScroll
	if n := fv.selection.Len(); fv.syncScroll >= n {
		if n == 0 {
			fv.syncScroll = 0
		} else {
			fv.syncScroll = n - 1
		}
	}

	for name, ps := range st.Prefs {
		i, ok := byName[name]
		if !ok {
			continue
		}
		fv.panes[i].Prefs = Prefs{
			ColorMap:       render.ColorMap(ps.ColorMap),
			ContrastLimit:  ps.ContrastLimit,
			ShowGeneTree:   ps.ShowGeneTree,
			ShowLabels:     ps.ShowLabels,
			GlobalViewFrac: ps.GlobalViewFrac,
		}
	}
	return nil
}
