package core

import (
	"fmt"

	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/spell"
)

// This file is the Figure-1 "Dataset Analysis" layer: the hooks through
// which SPELL and GOLEM results flow back into the visualization ("the most
// adaptive method is to provide selection information from an analysis
// application").

// SpellEngine builds a SPELL search engine over the loaded datasets.
func (fv *ForestView) SpellEngine() (*spell.Engine, error) {
	var raw []*microarray.Dataset
	for _, p := range fv.panes {
		raw = append(raw, p.DS.Data)
	}
	return spell.NewEngine(raw)
}

// SpellSearchResult couples the raw SPELL output with what ForestView did
// with it.
type SpellSearchResult struct {
	Result *spell.Result
	// SelectedGenes is the top-n gene list installed as the selection.
	SelectedGenes []string
}

// ApplySpellSearch runs a SPELL query over the loaded datasets, reorders
// the panes by dataset relevance, and selects the top n result genes
// (query genes included, so they highlight too) — the integration Section 3
// describes: "The datasets returned can be displayed in decreasing order of
// relevance to the query, and the top n genes can be selected and
// highlighted within each dataset."
func (fv *ForestView) ApplySpellSearch(engine *spell.Engine, query []string, topN int) (*SpellSearchResult, error) {
	if engine == nil {
		var err error
		engine, err = fv.SpellEngine()
		if err != nil {
			return nil, err
		}
	}
	res, err := engine.Search(query, spell.Options{IncludeQuery: true})
	if err != nil {
		return nil, err
	}
	weights := make(map[string]float64, len(res.Datasets))
	for _, d := range res.Datasets {
		weights[d.Name] = d.Weight
	}
	fv.OrderPanesBy(weights)
	if topN <= 0 {
		topN = 20
	}
	top := res.TopGeneIDs(topN)
	fv.SelectList(top, fmt.Sprintf("SPELL search (%d query genes)", len(query)))
	return &SpellSearchResult{Result: res, SelectedGenes: top}, nil
}

// EnrichSelection runs GOLEM enrichment on the current selection against
// the provided enricher (built from whatever ontology/annotations the
// deployment uses) and returns results sorted by p-value.
func (fv *ForestView) EnrichSelection(enr *golem.Enricher, opt golem.Options) ([]golem.Enrichment, error) {
	fv.mu.RLock()
	sel := fv.selection
	fv.mu.RUnlock()
	if sel == nil || len(sel.IDs) == 0 {
		return nil, fmt.Errorf("core: nothing selected")
	}
	return enr.Analyze(sel.IDs, opt)
}

// SelectEnrichedTerm replaces the selection with the loaded genes annotated
// to one term — the reverse flow: clicking a GOLEM term highlights its
// genes in every pane. ann is typically propagated ontology annotations.
func (fv *ForestView) SelectEnrichedTerm(ann interface {
	GenesPerTerm() map[string]map[string]bool
}, termID string) (int, error) {
	inv := ann.GenesPerTerm()
	genes, ok := inv[termID]
	if !ok || len(genes) == 0 {
		return 0, fmt.Errorf("core: term %s has no annotated genes", termID)
	}
	// Keep only genes ForestView knows about, in merged-universe order for
	// determinism.
	var ids []string
	for g := 0; g < fv.merged.NumGenes(); g++ {
		id := fv.merged.GeneID(g)
		if genes[id] {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return 0, fmt.Errorf("core: no genes of term %s are loaded", termID)
	}
	fv.SelectList(ids, "GOLEM term "+termID)
	return len(ids), nil
}
