package core

import (
	"fmt"
	"math"
	"sort"

	"forestview/internal/microarray"
)

// Merged is the paper's "merged dataset interface": all loaded datasets
// presented as one logical three-dimensional array indexed by
// (dataset, gene, experiment), over the union of gene identities. Analysis
// routines operate on this interface without caring which file a value came
// from.
type Merged struct {
	datasets []*microarray.Dataset
	// geneIDs is the unified gene universe, first-seen order.
	geneIDs []string
	geneIdx map[string]int
	// row[d][g] is the row of unified gene g in dataset d, or -1.
	row [][]int
}

// NewMerged builds the merged interface over the given datasets.
func NewMerged(dss []*microarray.Dataset) (*Merged, error) {
	if len(dss) == 0 {
		return nil, fmt.Errorf("core: no datasets to merge")
	}
	m := &Merged{datasets: dss, geneIdx: make(map[string]int)}
	for _, ds := range dss {
		for _, g := range ds.Genes {
			if _, ok := m.geneIdx[g.ID]; !ok {
				m.geneIdx[g.ID] = len(m.geneIDs)
				m.geneIDs = append(m.geneIDs, g.ID)
			}
		}
	}
	m.row = make([][]int, len(dss))
	for d, ds := range dss {
		m.row[d] = make([]int, len(m.geneIDs))
		for i := range m.row[d] {
			m.row[d][i] = -1
		}
		for r, g := range ds.Genes {
			m.row[d][m.geneIdx[g.ID]] = r
		}
	}
	return m, nil
}

// NumDatasets returns the dataset count.
func (m *Merged) NumDatasets() int { return len(m.datasets) }

// NumGenes returns the size of the unified gene universe.
func (m *Merged) NumGenes() int { return len(m.geneIDs) }

// NumExperiments returns the column count of dataset d (0 if out of range).
func (m *Merged) NumExperiments(d int) int {
	if d < 0 || d >= len(m.datasets) {
		return 0
	}
	return m.datasets[d].NumExperiments()
}

// Dataset returns dataset d, or nil.
func (m *Merged) Dataset(d int) *microarray.Dataset {
	if d < 0 || d >= len(m.datasets) {
		return nil
	}
	return m.datasets[d]
}

// GeneID returns the unified gene ID at index g, or "".
func (m *Merged) GeneID(g int) string {
	if g < 0 || g >= len(m.geneIDs) {
		return ""
	}
	return m.geneIDs[g]
}

// GeneIndex returns the unified index of a gene ID.
func (m *Merged) GeneIndex(id string) (int, bool) {
	i, ok := m.geneIdx[id]
	return i, ok
}

// Value is the 3-D accessor: dataset d, unified gene g, experiment e.
// Missing combinations (gene absent from the dataset, or anything out of
// range) return NaN.
func (m *Merged) Value(d, g, e int) float64 {
	if d < 0 || d >= len(m.datasets) || g < 0 || g >= len(m.geneIDs) {
		return math.NaN()
	}
	r := m.row[d][g]
	if r < 0 {
		return math.NaN()
	}
	return m.datasets[d].Value(r, e)
}

// Row returns the expression vector of unified gene g in dataset d, or nil
// when the gene is absent there.
func (m *Merged) Row(d, g int) []float64 {
	if d < 0 || d >= len(m.datasets) || g < 0 || g >= len(m.geneIDs) {
		return nil
	}
	r := m.row[d][g]
	if r < 0 {
		return nil
	}
	return m.datasets[d].Row(r)
}

// RowIndex returns the dataset-local row of unified gene g in dataset d,
// or -1.
func (m *Merged) RowIndex(d, g int) int {
	if d < 0 || d >= len(m.datasets) || g < 0 || g >= len(m.geneIDs) {
		return -1
	}
	return m.row[d][g]
}

// PresenceCount returns in how many datasets gene g is measured.
func (m *Merged) PresenceCount(g int) int {
	if g < 0 || g >= len(m.geneIDs) {
		return 0
	}
	n := 0
	for d := range m.datasets {
		if m.row[d][g] >= 0 {
			n++
		}
	}
	return n
}

// CommonGenes returns the IDs measured in every dataset, sorted.
func (m *Merged) CommonGenes() []string {
	var out []string
	for g, id := range m.geneIDs {
		if m.PresenceCount(g) == len(m.datasets) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// ExportPCL writes the merged matrix for the given genes (nil = all unified
// genes) as a single PCL: columns are the concatenation of every dataset's
// experiments, prefixed with the dataset name, exactly what "Export Merged
// Dataset" in Figure 1 produces.
func (m *Merged) ExportPCL(genes []string) (*microarray.Dataset, error) {
	if genes == nil {
		genes = m.geneIDs
	}
	var exps []string
	for _, ds := range m.datasets {
		for _, e := range ds.Experiments {
			exps = append(exps, ds.Name+": "+e)
		}
	}
	out := microarray.NewDataset("merged", exps)
	for _, id := range genes {
		g, ok := m.geneIdx[id]
		if !ok {
			continue
		}
		vals := make([]float64, 0, len(exps))
		var meta microarray.Gene
		meta.ID = id
		for d, ds := range m.datasets {
			r := m.row[d][g]
			for e := 0; e < ds.NumExperiments(); e++ {
				if r < 0 {
					vals = append(vals, microarray.Missing)
				} else {
					vals = append(vals, ds.Value(r, e))
				}
			}
			if r >= 0 && meta.Name == "" {
				meta.Name = ds.Genes[r].Name
				meta.Annotation = ds.Genes[r].Annotation
			}
		}
		if err := out.AddGene(meta, vals); err != nil {
			return nil, fmt.Errorf("core: exporting merged dataset: %w", err)
		}
	}
	return out, nil
}
