package core

import (
	"fmt"
	"image/color"

	"forestview/internal/render"
	"forestview/internal/wall"
)

// Scene layout constants (pixels at scene scale).
const (
	paneMargin  = 4
	titleScale  = 1
	footerH     = 22
	labelColW   = 64
	geneTreeW   = 28
	arrayTreeH  = 20
	minZoomCell = 2
)

var (
	sceneBG    = color.RGBA{R: 12, G: 12, B: 16, A: 255}
	paneBG     = color.RGBA{R: 24, G: 24, B: 32, A: 255}
	paneBorder = color.RGBA{R: 90, G: 90, B: 110, A: 255}
	titleFG    = color.RGBA{R: 235, G: 235, B: 235, A: 255}
	treeFG     = color.RGBA{R: 170, G: 170, B: 190, A: 255}
	labelFG    = color.RGBA{R: 200, G: 200, B: 160, A: 255}
	absentFG   = color.RGBA{R: 70, G: 50, B: 50, A: 255}
)

// RenderScene draws the full ForestView display — all panes in display
// order — into a w×h scene on c. The canvas may be a translated wall-tile
// view; all drawing clips appropriately.
func (fv *ForestView) RenderScene(c *render.Canvas, w, h int) {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	c.FillRect(0, 0, w, h, sceneBG)
	k := len(fv.order)
	if k == 0 || w <= 0 || h <= 0 {
		return
	}
	paneW := (w - (k+1)*paneMargin) / k
	if paneW < 20 {
		paneW = 20
	}
	for di, pi := range fv.order {
		x := paneMargin + di*(paneW+paneMargin)
		fv.renderPane(c, render.Rect{X: x, Y: paneMargin, W: paneW, H: h - 2*paneMargin}, pi)
	}
}

// renderPane draws one dataset pane: title, global view with selection
// markers, array tree, synchronized/unsynchronized zoom view, labels and a
// footer legend. Caller holds fv.mu.
func (fv *ForestView) renderPane(c *render.Canvas, r render.Rect, pi int) {
	p := fv.panes[pi]
	cd := p.DS
	prefs := p.Prefs
	c.FillRect(r.X, r.Y, r.W, r.H, paneBG)
	c.StrokeRect(r.X, r.Y, r.W, r.H, paneBorder)

	// Title bar.
	titleH := render.TextHeight(titleScale) + 4
	c.DrawTextClipped(r.X+3, r.Y+2, cd.Data.Name, titleScale, r.W-6, titleFG)
	body := render.Rect{X: r.X + 2, Y: r.Y + titleH, W: r.W - 4, H: r.H - titleH - footerH}
	if body.H < 10 {
		return
	}

	// Column layout: [gene tree][global view][zoom area].
	gx := body.X
	if prefs.ShowGeneTree && cd.GeneTree != nil && body.W > geneTreeW*3 {
		render.RenderDendrogram(c, render.Rect{X: gx, Y: body.Y, W: geneTreeW, H: body.H},
			cd.GeneTree, render.LeftOfRows, treeFG)
		gx += geneTreeW + 2
	}
	globalW := int(float64(body.W) * prefs.GlobalViewFrac)
	if globalW < 8 {
		globalW = 8
	}
	globalRect := render.Rect{X: gx, Y: body.Y, W: globalW, H: body.H}
	render.RenderHeatmap(c, globalRect, cd.RowsInDisplayOrder(), render.HeatmapOptions{
		ColorMap:  prefs.ColorMap,
		Limit:     prefs.ContrastLimit,
		Highlight: fv.highlightLocked(pi),
	})
	c.StrokeRect(globalRect.X-1, globalRect.Y-1, globalRect.W+2, globalRect.H+2, paneBorder)

	// Zoom area to the right of the global view.
	zx := gx + globalW + 4
	zw := body.X + body.W - zx
	if zw < 12 {
		return
	}
	zy := body.Y
	zh := body.H
	if cd.ArrayTree != nil && zh > arrayTreeH*3 {
		render.RenderDendrogram(c, render.Rect{X: zx, Y: zy, W: zw, H: arrayTreeH},
			cd.ArrayTree, render.AboveColumns, treeFG)
		zy += arrayTreeH + 2
		zh -= arrayTreeH + 2
	}
	labelW := 0
	if prefs.ShowLabels && zw > labelColW*2 {
		labelW = labelColW
	}
	zoomRect := render.Rect{X: zx, Y: zy, W: zw - labelW, H: zh}
	fv.renderZoomLocked(c, zoomRect, pi)
	if labelW > 0 {
		fv.renderZoomLabelsLocked(c, render.Rect{X: zx + zw - labelW + 2, Y: zy, W: labelW - 2, H: zh}, pi)
	}

	// Footer: color legend plus the selection caption.
	fy := r.Y + r.H - footerH + 2
	prefs.ColorMap.Legend(c, render.Rect{X: r.X + 3, Y: fy, W: minIntView(r.W/3, 90), H: footerH - 6},
		prefs.ContrastLimit, titleFG)
	caption := fmt.Sprintf("%d genes x %d exps", cd.Data.NumGenes(), cd.Data.NumExperiments())
	if fv.selection != nil {
		caption = fmt.Sprintf("%d selected", len(fv.selection.IDs))
	}
	c.DrawTextClipped(r.X+minIntView(r.W/3, 90)+8, fy, caption, 1, r.W-minIntView(r.W/3, 90)-12, titleFG)
}

// highlightLocked mirrors HighlightPositions without re-locking.
func (fv *ForestView) highlightLocked(pi int) map[int]bool {
	if fv.selection == nil {
		return nil
	}
	cd := fv.panes[pi].DS
	out := make(map[int]bool)
	for _, id := range fv.selection.IDs {
		if row, ok := cd.Data.GeneIndex(id); ok {
			if pos := cd.DisplayPos(row); pos >= 0 {
				out[pos] = true
			}
		}
	}
	return out
}

// zoomContentLocked mirrors ZoomContent without re-locking.
func (fv *ForestView) zoomContentLocked(pi int) []ZoomRow {
	if fv.selection == nil {
		return nil
	}
	cd := fv.panes[pi].DS
	if fv.syncViews {
		out := make([]ZoomRow, len(fv.selection.IDs))
		for i, id := range fv.selection.IDs {
			row := -1
			if r, ok := cd.Data.GeneIndex(id); ok {
				row = r
			}
			out[i] = ZoomRow{GeneID: id, Row: row}
		}
		return out
	}
	var out []ZoomRow
	for _, row := range cd.DisplayOrder {
		id := cd.Data.Genes[row].ID
		if fv.selection.set[id] {
			out = append(out, ZoomRow{GeneID: id, Row: row})
		}
	}
	return out
}

func (fv *ForestView) scrollLocked(pi int) int {
	if fv.syncViews {
		return fv.syncScroll
	}
	return fv.panes[pi].scroll
}

// renderZoomLocked draws the pane's zoom view. Rows below the scroll
// position fill the rect top-down; genes absent from this dataset render as
// a dim placeholder band so cross-pane row alignment is visibly preserved.
func (fv *ForestView) renderZoomLocked(c *render.Canvas, r render.Rect, pi int) {
	rows := fv.zoomContentLocked(pi)
	if len(rows) == 0 {
		c.DrawTextClipped(r.X+2, r.Y+2, "no selection", 1, r.W-4, treeFG)
		return
	}
	cd := fv.panes[pi].DS
	scroll := fv.scrollLocked(pi)
	if scroll >= len(rows) {
		scroll = len(rows) - 1
	}
	visible := rows[scroll:]
	prefs := fv.panes[pi].Prefs
	data := make([][]float64, len(visible))
	for i, zr := range visible {
		if zr.Row >= 0 {
			data[i] = cd.Data.Row(zr.Row)
		} else {
			data[i] = nil // renders as a missing band
		}
	}
	render.RenderHeatmap(c, r, data, render.HeatmapOptions{
		ColorMap:   prefs.ColorMap,
		Limit:      prefs.ContrastLimit,
		CellBorder: true,
	})
	// Overpaint absent-gene bands so they are distinguishable from
	// measured-but-missing cells.
	n := len(visible)
	for i, zr := range visible {
		if zr.Row >= 0 {
			continue
		}
		y := r.Y + i*r.H/n
		h := r.Y + (i+1)*r.H/n - y
		if h < 1 {
			h = 1
		}
		c.FillRect(r.X, y, r.W, h, absentFG)
	}
}

// renderZoomLabelsLocked draws gene IDs next to the zoom rows.
func (fv *ForestView) renderZoomLabelsLocked(c *render.Canvas, r render.Rect, pi int) {
	rows := fv.zoomContentLocked(pi)
	if len(rows) == 0 {
		return
	}
	scroll := fv.scrollLocked(pi)
	if scroll >= len(rows) {
		scroll = len(rows) - 1
	}
	visible := rows[scroll:]
	labels := make([]string, len(visible))
	for i, zr := range visible {
		labels[i] = zr.GeneID
	}
	render.RenderRowLabels(c, r, labels, labelFG)
}

// WallScene adapts a ForestView to the display wall's Scene interface: each
// tile renders the full scene through a translated, clipping canvas —
// the replicated-application model of the Princeton wall.
type WallScene struct {
	FV *ForestView
}

// Render implements wall.Scene.
func (s WallScene) Render(c *render.Canvas, vp render.Rect, wallW, wallH int) {
	s.FV.RenderScene(c.Translated(-vp.X, -vp.Y), wallW, wallH)
}

var _ wall.Scene = WallScene{}

func minIntView(a, b int) int {
	if a < b {
		return a
	}
	return b
}
