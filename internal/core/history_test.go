package core

import (
	"testing"
)

func TestSelectTreeNode(t *testing.T) {
	_, fv := buildFixture(t)
	cd := fv.Pane(0).DS
	// The root selects everything.
	root := cd.GeneTree.Root()
	if err := fv.SelectTreeNode(0, root); err != nil {
		t.Fatal(err)
	}
	if fv.Selection().Len() != cd.Data.NumGenes() {
		t.Fatalf("root selection = %d, want %d", fv.Selection().Len(), cd.Data.NumGenes())
	}
	// A leaf selects one gene.
	if err := fv.SelectTreeNode(0, 0); err != nil {
		t.Fatal(err)
	}
	if fv.Selection().Len() != 1 {
		t.Fatalf("leaf selection = %d", fv.Selection().Len())
	}
	if fv.Selection().IDs[0] != cd.Data.Genes[0].ID {
		t.Fatal("leaf selection picked the wrong gene")
	}
	// An internal node selects a contiguous display block.
	node := cd.GeneTree.NLeaves // first merge
	if err := fv.SelectTreeNode(0, node); err != nil {
		t.Fatal(err)
	}
	sel := fv.Selection()
	if sel.Len() != 2 {
		t.Fatalf("first-merge selection = %d", sel.Len())
	}
	// Selection order follows display order; the two genes are adjacent.
	posOf := func(id string) int {
		row, _ := cd.Data.GeneIndex(id)
		return cd.DisplayPos(row)
	}
	if posOf(sel.IDs[1]) != posOf(sel.IDs[0])+1 {
		t.Fatalf("subtree genes not adjacent in display: %d vs %d",
			posOf(sel.IDs[0]), posOf(sel.IDs[1]))
	}
}

func TestSelectTreeNodeErrors(t *testing.T) {
	_, fv := buildFixture(t)
	if err := fv.SelectTreeNode(99, 0); err == nil {
		t.Fatal("bad pane should error")
	}
	if err := fv.SelectTreeNode(0, 10_000); err == nil {
		t.Fatal("bad node should error")
	}
	// Pane without a gene tree.
	ds := fv.Pane(0).DS.Data
	bare, err := FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	fv2, err := New([]*ClusteredDataset{bare})
	if err != nil {
		t.Fatal(err)
	}
	if err := fv2.SelectTreeNode(0, 0); err == nil {
		t.Fatal("tree-less pane should error")
	}
}

func TestUndoRedoSelection(t *testing.T) {
	_, fv := buildFixture(t)
	if fv.UndoSelection() {
		t.Fatal("nothing to undo initially")
	}
	_ = fv.SelectRegion(0, 0, 4)   // A
	_ = fv.SelectRegion(0, 10, 19) // B
	if fv.Selection().Len() != 10 {
		t.Fatal("precondition")
	}
	if !fv.UndoSelection() {
		t.Fatal("undo should succeed")
	}
	if fv.Selection().Len() != 5 {
		t.Fatalf("after undo = %d, want 5 (A)", fv.Selection().Len())
	}
	if !fv.UndoSelection() {
		t.Fatal("second undo should succeed")
	}
	if fv.Selection() != nil {
		t.Fatal("after two undos, selection should be the initial nil")
	}
	if !fv.RedoSelection() {
		t.Fatal("redo should succeed")
	}
	if fv.Selection().Len() != 5 {
		t.Fatalf("after redo = %d, want 5", fv.Selection().Len())
	}
	if !fv.RedoSelection() {
		t.Fatal("second redo should succeed")
	}
	if fv.Selection().Len() != 10 {
		t.Fatalf("after second redo = %d, want 10", fv.Selection().Len())
	}
	if fv.RedoSelection() {
		t.Fatal("nothing left to redo")
	}
}

func TestNewSelectionClearsRedo(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 4)
	_ = fv.SelectRegion(0, 10, 19)
	fv.UndoSelection()
	// A fresh selection invalidates the redo branch.
	_ = fv.SelectRegion(0, 20, 24)
	if fv.RedoSelection() {
		t.Fatal("redo must be cleared by a new selection")
	}
}

func TestClearSelectionIsUndoable(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	fv.ClearSelection()
	if fv.Selection() != nil {
		t.Fatal("clear failed")
	}
	if !fv.UndoSelection() {
		t.Fatal("clear should be undoable")
	}
	if fv.Selection().Len() != 10 {
		t.Fatalf("after undoing clear = %d", fv.Selection().Len())
	}
}

func TestHistoryBounded(t *testing.T) {
	_, fv := buildFixture(t)
	for i := 0; i < maxHistory+20; i++ {
		_ = fv.SelectRegion(0, i%30, i%30+2)
	}
	undos := 0
	for fv.UndoSelection() {
		undos++
	}
	if undos != maxHistory {
		t.Fatalf("undo depth = %d, want %d", undos, maxHistory)
	}
}

func TestLeavesUnderMatchesDisplayBlock(t *testing.T) {
	// Every internal node's leaves occupy one contiguous block of the
	// display order — the invariant that makes tree-node selection look
	// like a region selection.
	_, fv := buildFixture(t)
	cd := fv.Pane(1).DS
	tree := cd.GeneTree
	for i := range tree.Merges {
		leaves := tree.LeavesUnder(tree.NLeaves + i)
		lo, hi := len(cd.DisplayOrder), -1
		for _, l := range leaves {
			p := cd.DisplayPos(l)
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		if hi-lo+1 != len(leaves) {
			t.Fatalf("merge %d leaves not contiguous: span %d-%d for %d leaves",
				i, lo, hi, len(leaves))
		}
	}
}
