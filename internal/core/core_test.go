package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/microarray"
	"forestview/internal/synth"
)

// buildFixture returns a ForestView over three small synthetic datasets
// sharing a universe.
func buildFixture(t *testing.T) (*synth.Universe, *ForestView) {
	t.Helper()
	u := synth.NewUniverse(60, 6, 7)
	specs := []synth.DatasetSpec{
		{Name: "alpha", Kind: synth.StressStudy, NumExperiments: 12, ESRStrength: 1, Seed: 11},
		{Name: "beta", Kind: synth.NutrientStudy, NumExperiments: 10, ESRStrength: 0.6, Seed: 13},
		{Name: "gamma", Kind: synth.GenericStudy, NumExperiments: 8, Seed: 17},
	}
	var cds []*ClusteredDataset
	for _, s := range specs {
		ds := u.Generate(s)
		cd, err := Cluster(ds, ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, ClusterArrays: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := New(cds)
	if err != nil {
		t.Fatal(err)
	}
	return u, fv
}

func TestClusterBuildsTreesAndOrder(t *testing.T) {
	u := synth.NewUniverse(30, 5, 1)
	ds := u.Generate(synth.DatasetSpec{Name: "d", NumExperiments: 8, Seed: 3})
	cd, err := Cluster(ds, ClusterOptions{Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, ClusterArrays: true})
	if err != nil {
		t.Fatal(err)
	}
	if cd.GeneTree == nil || cd.ArrayTree == nil {
		t.Fatal("trees missing")
	}
	if len(cd.DisplayOrder) != 30 {
		t.Fatalf("display order = %d", len(cd.DisplayOrder))
	}
	// DisplayOrder is a permutation; DisplayPos inverts it.
	seen := make([]bool, 30)
	for pos, row := range cd.DisplayOrder {
		if seen[row] {
			t.Fatal("display order not a permutation")
		}
		seen[row] = true
		if cd.DisplayPos(row) != pos {
			t.Fatal("DisplayPos does not invert DisplayOrder")
		}
	}
	if cd.DisplayPos(-1) != -1 || cd.DisplayPos(99) != -1 {
		t.Fatal("out-of-range DisplayPos should be -1")
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, ClusterOptions{}); err == nil {
		t.Fatal("nil dataset should error")
	}
	empty := microarray.NewDataset("e", []string{"x"})
	if _, err := Cluster(empty, ClusterOptions{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := FromDataset(nil); err == nil {
		t.Fatal("nil FromDataset should error")
	}
}

func TestFromDatasetIdentityOrder(t *testing.T) {
	ds := microarray.NewDataset("d", []string{"a"})
	_ = ds.AddGene(microarray.Gene{ID: "G1"}, []float64{1})
	_ = ds.AddGene(microarray.Gene{ID: "G2"}, []float64{2})
	cd, err := FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if cd.DisplayOrder[0] != 0 || cd.DisplayOrder[1] != 1 {
		t.Fatalf("identity order = %v", cd.DisplayOrder)
	}
	ids := cd.IDsInDisplayOrder()
	if ids[0] != "G1" || ids[1] != "G2" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestMergedInterface(t *testing.T) {
	_, fv := buildFixture(t)
	m := fv.Merged()
	if m.NumDatasets() != 3 {
		t.Fatalf("datasets = %d", m.NumDatasets())
	}
	if m.NumGenes() != 60 {
		t.Fatalf("genes = %d", m.NumGenes())
	}
	// 3-D access agrees with direct dataset access.
	ds0 := m.Dataset(0)
	for g := 0; g < 5; g++ {
		id := m.GeneID(g)
		row, ok := ds0.GeneIndex(id)
		if !ok {
			t.Fatalf("gene %s missing from dataset 0", id)
		}
		for e := 0; e < m.NumExperiments(0); e++ {
			got := m.Value(0, g, e)
			want := ds0.Value(row, e)
			if math.IsNaN(got) != math.IsNaN(want) || (!math.IsNaN(got) && got != want) {
				t.Fatalf("Value(0,%d,%d) = %v, want %v", g, e, got, want)
			}
		}
	}
	// Out-of-range access is NaN, not a panic.
	if !math.IsNaN(m.Value(-1, 0, 0)) || !math.IsNaN(m.Value(0, -1, 0)) || !math.IsNaN(m.Value(0, 0, 1000)) {
		t.Fatal("out-of-range Value should be NaN")
	}
	if m.Dataset(9) != nil || m.GeneID(-1) != "" {
		t.Fatal("out-of-range accessors broken")
	}
	// All genes present everywhere in this fixture.
	if got := len(m.CommonGenes()); got != 60 {
		t.Fatalf("common genes = %d", got)
	}
	if m.PresenceCount(0) != 3 {
		t.Fatalf("presence = %d", m.PresenceCount(0))
	}
}

func TestMergedPartialOverlap(t *testing.T) {
	a := microarray.NewDataset("a", []string{"x"})
	_ = a.AddGene(microarray.Gene{ID: "G1"}, []float64{1})
	_ = a.AddGene(microarray.Gene{ID: "G2"}, []float64{2})
	b := microarray.NewDataset("b", []string{"y"})
	_ = b.AddGene(microarray.Gene{ID: "G2"}, []float64{20})
	_ = b.AddGene(microarray.Gene{ID: "G3"}, []float64{30})
	m, err := NewMerged([]*microarray.Dataset{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGenes() != 3 {
		t.Fatalf("union genes = %d", m.NumGenes())
	}
	g1, _ := m.GeneIndex("G1")
	if !math.IsNaN(m.Value(1, g1, 0)) {
		t.Fatal("G1 absent from b should be NaN")
	}
	g2, _ := m.GeneIndex("G2")
	if m.Value(0, g2, 0) != 2 || m.Value(1, g2, 0) != 20 {
		t.Fatal("shared gene values wrong")
	}
	common := m.CommonGenes()
	if len(common) != 1 || common[0] != "G2" {
		t.Fatalf("common = %v", common)
	}
	if m.Row(1, g1) != nil {
		t.Fatal("absent row should be nil")
	}
	if m.RowIndex(1, g1) != -1 {
		t.Fatal("absent row index should be -1")
	}
}

func TestSelectRegion(t *testing.T) {
	_, fv := buildFixture(t)
	if err := fv.SelectRegion(0, 5, 9); err != nil {
		t.Fatal(err)
	}
	sel := fv.Selection()
	if sel.Len() != 5 {
		t.Fatalf("selection = %d", sel.Len())
	}
	// Selection order is the pane's display order.
	cd := fv.Pane(0).DS
	for i, id := range sel.IDs {
		wantID := cd.Data.Genes[cd.DisplayOrder[5+i]].ID
		if id != wantID {
			t.Fatalf("selection[%d] = %s, want %s", i, id, wantID)
		}
	}
	// Region bounds clamp.
	if err := fv.SelectRegion(0, -10, 2); err != nil {
		t.Fatal(err)
	}
	if fv.Selection().Len() != 3 {
		t.Fatalf("clamped selection = %d", fv.Selection().Len())
	}
	// Reversed bounds swap.
	if err := fv.SelectRegion(0, 9, 5); err != nil {
		t.Fatal(err)
	}
	if fv.Selection().Len() != 5 {
		t.Fatal("reversed region broken")
	}
	if err := fv.SelectRegion(99, 0, 1); err == nil {
		t.Fatal("bad pane should error")
	}
}

func TestSelectQueryAndFind(t *testing.T) {
	u, fv := buildFixture(t)
	// Module names appear in gene annotations; search for the ESR.
	n, err := fv.SelectQuery("stress response induced")
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(u.ModuleGeneIDs(u.ESRInduced))
	if n != wantLen {
		t.Fatalf("query selected %d, want %d", n, wantLen)
	}
	if _, err := fv.SelectQuery("zzz-no-such-thing"); err == nil {
		t.Fatal("no-match query should error")
	}
	// FindGenes previews without selecting.
	fv.ClearSelection()
	found := fv.FindGenes("stress response induced")
	if len(found) != wantLen {
		t.Fatalf("found = %d", len(found))
	}
	if fv.Selection() != nil {
		t.Fatal("FindGenes must not change the selection")
	}
}

func TestSelectListDeduplicates(t *testing.T) {
	_, fv := buildFixture(t)
	fv.SelectList([]string{"A", "B", "A", "C", "B"}, "test")
	if got := fv.Selection().Len(); got != 3 {
		t.Fatalf("dedup selection = %d", got)
	}
	if !fv.Selection().Has("A") || fv.Selection().Has("Z") {
		t.Fatal("Has broken")
	}
}

// The core synchronized-view invariant: the same row index across panes is
// the same gene.
func TestSynchronizedRowAlignment(t *testing.T) {
	_, fv := buildFixture(t)
	if err := fv.SelectRegion(1, 0, 9); err != nil {
		t.Fatal(err)
	}
	fv.SetSynchronized(true)
	var contents [][]ZoomRow
	for p := 0; p < fv.NumPanes(); p++ {
		contents = append(contents, fv.ZoomContent(p))
	}
	for p := 1; p < len(contents); p++ {
		if len(contents[p]) != len(contents[0]) {
			t.Fatalf("pane %d rows = %d, pane 0 = %d", p, len(contents[p]), len(contents[0]))
		}
		for i := range contents[p] {
			if contents[p][i].GeneID != contents[0][i].GeneID {
				t.Fatalf("row %d: pane %d shows %s, pane 0 shows %s",
					i, p, contents[p][i].GeneID, contents[0][i].GeneID)
			}
		}
	}
	// Every row resolves to the right data row in its own pane.
	for p := 0; p < fv.NumPanes(); p++ {
		cd := fv.Pane(p).DS
		for _, zr := range contents[p] {
			if zr.Row >= 0 && cd.Data.Genes[zr.Row].ID != zr.GeneID {
				t.Fatalf("pane %d row points at wrong gene", p)
			}
		}
	}
}

func TestUnsynchronizedUsesNativeOrder(t *testing.T) {
	_, fv := buildFixture(t)
	if err := fv.SelectRegion(0, 0, 14); err != nil {
		t.Fatal(err)
	}
	fv.SetSynchronized(false)
	for p := 0; p < fv.NumPanes(); p++ {
		rows := fv.ZoomContent(p)
		cd := fv.Pane(p).DS
		// No placeholders in unsynchronized mode.
		prevPos := -1
		for _, zr := range rows {
			if zr.Row < 0 {
				t.Fatalf("pane %d has placeholder in unsync mode", p)
			}
			pos := cd.DisplayPos(zr.Row)
			if pos <= prevPos {
				t.Fatalf("pane %d zoom not in native display order", p)
			}
			prevPos = pos
		}
	}
}

func TestZoomContentNoSelection(t *testing.T) {
	_, fv := buildFixture(t)
	if fv.ZoomContent(0) != nil {
		t.Fatal("no selection should yield nil zoom")
	}
	if fv.ZoomContent(-1) != nil {
		t.Fatal("bad pane should yield nil")
	}
}

func TestHighlightPositions(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 3, 7)
	for p := 0; p < fv.NumPanes(); p++ {
		hl := fv.HighlightPositions(p)
		if len(hl) != 5 {
			t.Fatalf("pane %d highlights = %d", p, len(hl))
		}
		cd := fv.Pane(p).DS
		for pos := range hl {
			id := cd.Data.Genes[cd.DisplayOrder[pos]].ID
			if !fv.Selection().Has(id) {
				t.Fatalf("pane %d highlight at %d is not selected", p, pos)
			}
		}
	}
	fv.ClearSelection()
	if fv.HighlightPositions(0) != nil {
		t.Fatal("cleared selection should not highlight")
	}
}

func TestScrollSynchronizedShared(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 19)
	fv.SetSynchronized(true)
	fv.Scroll(0, 5)
	for p := 0; p < fv.NumPanes(); p++ {
		if got := fv.ScrollPos(p); got != 5 {
			t.Fatalf("pane %d scroll = %d, want shared 5", p, got)
		}
	}
	// Clamp at selection bounds.
	fv.Scroll(0, 1000)
	if got := fv.ScrollPos(0); got != 19 {
		t.Fatalf("clamped scroll = %d", got)
	}
	fv.Scroll(0, -1000)
	if got := fv.ScrollPos(0); got != 0 {
		t.Fatalf("clamped scroll = %d", got)
	}
}

func TestScrollUnsynchronizedIndependent(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 19)
	fv.SetSynchronized(false)
	fv.Scroll(1, 7)
	if fv.ScrollPos(1) != 7 {
		t.Fatalf("pane 1 scroll = %d", fv.ScrollPos(1))
	}
	if fv.ScrollPos(0) != 0 || fv.ScrollPos(2) != 0 {
		t.Fatal("unsync scroll leaked to other panes")
	}
}

func TestOrderPanesBy(t *testing.T) {
	_, fv := buildFixture(t)
	fv.OrderPanesBy(map[string]float64{"gamma": 3, "alpha": 2, "beta": 1})
	order := fv.PaneOrder()
	names := []string{
		fv.Pane(order[0]).DS.Data.Name,
		fv.Pane(order[1]).DS.Data.Name,
		fv.Pane(order[2]).DS.Data.Name,
	}
	if names[0] != "gamma" || names[1] != "alpha" || names[2] != "beta" {
		t.Fatalf("order = %v", names)
	}
	// Unknown datasets sink to the end.
	fv.OrderPanesBy(map[string]float64{"beta": 1})
	order = fv.PaneOrder()
	if fv.Pane(order[0]).DS.Data.Name != "beta" {
		t.Fatalf("beta should lead: %v", order)
	}
	fv.ResetPaneOrder()
	order = fv.PaneOrder()
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("reset order = %v", order)
	}
}

func TestExportGeneList(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 4)
	var buf bytes.Buffer
	if err := fv.ExportGeneList(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 genes
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("missing header")
	}
	for i, id := range fv.Selection().IDs {
		if lines[i+1] != id {
			t.Fatalf("line %d = %q, want %q", i+1, lines[i+1], id)
		}
	}
	fv.ClearSelection()
	if err := fv.ExportGeneList(&buf); err == nil {
		t.Fatal("empty selection export should error")
	}
}

func TestExportMergedRoundTrip(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	var buf bytes.Buffer
	if err := fv.ExportMerged(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := microarray.ReadPCL(&buf, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGenes() != 10 {
		t.Fatalf("merged genes = %d", back.NumGenes())
	}
	wantCols := 12 + 10 + 8
	if back.NumExperiments() != wantCols {
		t.Fatalf("merged columns = %d, want %d", back.NumExperiments(), wantCols)
	}
	// Column names carry dataset provenance.
	if !strings.HasPrefix(back.Experiments[0], "alpha: ") {
		t.Fatalf("experiment name = %q", back.Experiments[0])
	}
	if !strings.HasPrefix(back.Experiments[12], "beta: ") {
		t.Fatalf("experiment name = %q", back.Experiments[12])
	}
}

func TestSelectionAsDataset(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 4)
	ds, err := fv.SelectionAsDataset("subset")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "subset" || ds.NumGenes() != 5 {
		t.Fatalf("subset = %q %d genes", ds.Name, ds.NumGenes())
	}
	// It can be loaded back as a pane.
	cd, err := FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Data.NumGenes() != 5 {
		t.Fatal("round trip into pane failed")
	}
	fv.ClearSelection()
	if _, err := fv.SelectionAsDataset("x"); err == nil {
		t.Fatal("empty selection should error")
	}
}

func TestApplyPrefsToAll(t *testing.T) {
	_, fv := buildFixture(t)
	fv.Pane(1).Prefs.ColorMap = 2
	fv.Pane(1).Prefs.ContrastLimit = 5
	if err := fv.ApplyPrefsToAll(1); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < fv.NumPanes(); p++ {
		if fv.Pane(p).Prefs.ContrastLimit != 5 {
			t.Fatalf("pane %d prefs not applied", p)
		}
	}
	if err := fv.ApplyPrefsToAll(99); err == nil {
		t.Fatal("bad pane should error")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("no datasets should error")
	}
	if _, err := New([]*ClusteredDataset{nil}); err == nil {
		t.Fatal("nil dataset should error")
	}
}
