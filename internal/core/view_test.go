package core

import (
	"image/color"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/golem"
	"forestview/internal/ontology"
	"forestview/internal/render"
	"forestview/internal/synth"
	"forestview/internal/wall"
)

func TestRenderSceneDrawsAllPanes(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	c := render.NewCanvas(600, 300, color.RGBA{A: 255})
	fv.RenderScene(c, 600, 300)
	// Each pane has a border; check that pixels at the three pane title
	// rows are not all background.
	bg := color.RGBA{R: 12, G: 12, B: 16, A: 255}
	nonBG := 0
	for x := 0; x < 600; x += 5 {
		for y := 0; y < 300; y += 5 {
			if c.At(x, y) != bg {
				nonBG++
			}
		}
	}
	if nonBG < 500 {
		t.Fatalf("scene mostly empty: %d non-background samples", nonBG)
	}
}

func TestRenderSceneEmptySelection(t *testing.T) {
	_, fv := buildFixture(t)
	c := render.NewCanvas(300, 200, color.RGBA{A: 255})
	fv.RenderScene(c, 300, 200) // must not panic without a selection
}

func TestRenderSceneTinyCanvas(t *testing.T) {
	_, fv := buildFixture(t)
	c := render.NewCanvas(10, 10, color.RGBA{A: 255})
	fv.RenderScene(c, 10, 10)
	c2 := render.NewCanvas(0, 0, color.RGBA{A: 255})
	fv.RenderScene(c2, 0, 0)
}

// The wall-tile invariant: rendering the scene through tile viewports and
// compositing equals rendering the scene once at full size.
func TestWallSceneTilingLossless(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	cfg := wall.Config{TilesX: 3, TilesY: 2, TileW: 120, TileH: 80}
	w, err := wall.NewWall(cfg, WallScene{FV: fv})
	if err != nil {
		t.Fatal(err)
	}
	w.RenderFrame()
	comp := w.Composite()

	ref := render.NewCanvas(cfg.WallWidth(), cfg.WallHeight(), color.RGBA{A: 255})
	fv.RenderScene(ref, cfg.WallWidth(), cfg.WallHeight())

	for y := 0; y < ref.Height(); y++ {
		for x := 0; x < ref.Width(); x++ {
			if comp.At(x, y) != ref.At(x, y) {
				t.Fatalf("pixel (%d,%d): tiled %v vs direct %v", x, y, comp.At(x, y), ref.At(x, y))
			}
		}
	}
}

func TestRenderSceneRespectsPaneOrder(t *testing.T) {
	_, fv := buildFixture(t)
	c1 := render.NewCanvas(600, 200, color.RGBA{A: 255})
	fv.RenderScene(c1, 600, 200)
	fv.OrderPanesBy(map[string]float64{"gamma": 9})
	c2 := render.NewCanvas(600, 200, color.RGBA{A: 255})
	fv.RenderScene(c2, 600, 200)
	// The scene must change when pane order changes.
	same := true
	for y := 0; y < 200 && same; y++ {
		for x := 0; x < 600; x++ {
			if c1.At(x, y) != c2.At(x, y) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("pane reordering did not change the rendered scene")
	}
}

func TestApplySpellSearchIntegration(t *testing.T) {
	u := synth.NewUniverse(150, 8, 21)
	mod := 3
	others := []int{4, 5, 6, 7}
	specs := []synth.DatasetSpec{
		{Name: "informative", NumExperiments: 20, ActiveModules: []int{mod}, Noise: 0.2, Seed: 23},
		{Name: "other", NumExperiments: 18, ActiveModules: others, Noise: 0.2, Seed: 29},
	}
	var cds []*ClusteredDataset
	for _, s := range specs {
		cd, err := Cluster(u.Generate(s), ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := New(cds)
	if err != nil {
		t.Fatal(err)
	}
	query := u.ModuleGeneIDs(mod)[:3]
	res, err := fv.ApplySpellSearch(nil, query, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The informative dataset must now lead the pane order.
	order := fv.PaneOrder()
	if fv.Pane(order[0]).DS.Data.Name != "informative" {
		t.Fatalf("pane order after SPELL = %v", order)
	}
	// The selection holds the top genes, including the query.
	sel := fv.Selection()
	if sel.Len() != 10 {
		t.Fatalf("selection = %d", sel.Len())
	}
	hits := 0
	for _, q := range query {
		if sel.Has(q) {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("query genes in selection = %d/3", hits)
	}
	if len(res.Result.Datasets) != 2 {
		t.Fatalf("dataset ranks = %d", len(res.Result.Datasets))
	}
}

func TestEnrichSelectionIntegration(t *testing.T) {
	u, fv := buildFixture(t)
	// Build ontology + annotations from universe ground truth.
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
	enr, err := golem.NewEnricher(onto, ann, u.GeneIDs())
	if err != nil {
		t.Fatal(err)
	}
	// Select the ESR-induced module genes: its term must be top-enriched.
	ids := u.ModuleGeneIDs(u.ESRInduced)
	fv.SelectList(ids, "ESR module")
	results, err := fv.EnrichSelection(enr, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no enrichment results")
	}
	wantTerm := leafOf[u.Modules[u.ESRInduced].Name]
	if results[0].TermID != wantTerm {
		t.Fatalf("top term = %s (%s), want %s", results[0].TermID, results[0].TermName, wantTerm)
	}
	if results[0].PValue > 1e-6 {
		t.Fatalf("planted enrichment p = %v", results[0].PValue)
	}

	// Reverse flow: select the term's genes.
	n, err := fv.SelectEnrichedTerm(ann.Propagate(onto), wantTerm)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ids) {
		t.Fatalf("term selection = %d, want %d", n, len(ids))
	}

	// No selection -> error.
	fv.ClearSelection()
	if _, err := fv.EnrichSelection(enr, golem.Options{}); err == nil {
		t.Fatal("enrichment without selection should error")
	}
}

func TestConcurrentRenderAndMutate(t *testing.T) {
	// The wall renders while the UI mutates; this must be race-free (run
	// with -race in CI).
	_, fv := buildFixture(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = fv.SelectRegion(i%3, 0, 10+i)
			fv.SetSynchronized(i%2 == 0)
			fv.Scroll(0, 1)
			fv.OrderPanesBy(map[string]float64{"alpha": float64(i)})
		}
	}()
	c := render.NewCanvas(300, 200, color.RGBA{A: 255})
	for i := 0; i < 20; i++ {
		fv.RenderScene(c, 300, 200)
	}
	<-done
}
