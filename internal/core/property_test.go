package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"forestview/internal/cluster"
	"forestview/internal/microarray"
	"forestview/internal/synth"
)

// Property: under synchronized viewing, all panes agree on zoom row count
// and gene identity at every row, for arbitrary selections and pane
// configurations.
func TestQuickSyncAlignment(t *testing.T) {
	u := synth.NewUniverse(120, 8, 131)
	// Three datasets with partially disjoint gene subsets to exercise
	// placeholder rows.
	full := u.Generate(synth.DatasetSpec{Name: "full", NumExperiments: 10, Seed: 137})
	firstHalf := make([]int, 60)
	secondHalf := make([]int, 80)
	for i := range firstHalf {
		firstHalf[i] = i
	}
	for i := range secondHalf {
		secondHalf[i] = 40 + i
	}
	dss := []*ClusteredDataset{}
	for _, raw := range []struct {
		name string
		rows []int
	}{
		{"full", nil},
		{"first", firstHalf},
		{"second", secondHalf},
	} {
		ds := full
		if raw.rows != nil {
			ds = full.Subset(raw.name, raw.rows)
		}
		cd, err := Cluster(ds, ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		dss = append(dss, cd)
	}
	fv, err := New(dss)
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64, nBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nBits%20) + 1
		var ids []string
		for i := 0; i < n; i++ {
			ids = append(ids, u.Genes[r.Intn(len(u.Genes))].ID)
		}
		fv.SelectList(ids, "property")
		fv.SetSynchronized(true)
		ref := fv.ZoomContent(0)
		for p := 1; p < fv.NumPanes(); p++ {
			zc := fv.ZoomContent(p)
			if len(zc) != len(ref) {
				return false
			}
			for i := range zc {
				if zc[i].GeneID != ref[i].GeneID {
					return false
				}
				// A non-placeholder row must actually hold that gene.
				if zc[i].Row >= 0 {
					cd := fv.Pane(p).DS
					if cd.Data.Genes[zc[i].Row].ID != zc[i].GeneID {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged 3-D access equals direct dataset access for every
// (dataset, gene, experiment) combination, on random partial-overlap
// compendia.
func TestQuickMergedConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := synth.NewUniverse(40, 5, seed)
		full := u.Generate(synth.DatasetSpec{Name: "d0", NumExperiments: 6, Seed: seed + 1})
		// Random subset dataset.
		var rows []int
		for i := 0; i < full.NumGenes(); i++ {
			if r.Float64() < 0.6 {
				rows = append(rows, i)
			}
		}
		if len(rows) == 0 {
			rows = []int{0}
		}
		sub := full.Subset("d1", rows)
		m, err := NewMerged([]*microarray.Dataset{full, sub})
		if err != nil {
			return false
		}
		for g := 0; g < m.NumGenes(); g++ {
			id := m.GeneID(g)
			for d, ds := range []*microarray.Dataset{full, sub} {
				row, ok := ds.GeneIndex(id)
				for e := 0; e < ds.NumExperiments(); e++ {
					got := m.Value(d, g, e)
					if !ok {
						if !isNaNf(got) {
							return false
						}
						continue
					}
					want := ds.Value(row, e)
					if isNaNf(got) != isNaNf(want) {
						return false
					}
					if !isNaNf(got) && got != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func isNaNf(f float64) bool { return f != f }
