package core

import (
	"bytes"
	"strings"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/synth"
)

func TestSessionRoundTrip(t *testing.T) {
	_, fv := buildFixture(t)
	// Mutate every dimension of the state.
	_ = fv.SelectRegion(1, 5, 14)
	fv.SetSynchronized(false)
	fv.OrderPanesBy(map[string]float64{"gamma": 3, "beta": 2, "alpha": 1})
	fv.Pane(0).Prefs.ContrastLimit = 3.5
	fv.Pane(0).Prefs.ColorMap = 1
	fv.Pane(2).Prefs.ShowLabels = false

	var buf bytes.Buffer
	if err := fv.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh ForestView over the same datasets.
	_, fv2 := buildFixture(t)
	if err := fv2.RestoreSession(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fv2.Synchronized() {
		t.Fatal("sync flag lost")
	}
	order := fv2.PaneOrder()
	if fv2.Pane(order[0]).DS.Data.Name != "gamma" {
		t.Fatalf("pane order lost: %v", order)
	}
	sel := fv2.Selection()
	if sel.Len() != 10 {
		t.Fatalf("selection lost: %d", sel.Len())
	}
	for i, id := range fv.Selection().IDs {
		if sel.IDs[i] != id {
			t.Fatal("selection order changed")
		}
	}
	if fv2.Pane(0).Prefs.ContrastLimit != 3.5 || fv2.Pane(0).Prefs.ColorMap != 1 {
		t.Fatalf("prefs lost: %+v", fv2.Pane(0).Prefs)
	}
	if fv2.Pane(2).Prefs.ShowLabels {
		t.Fatal("ShowLabels lost")
	}
}

func TestSessionRestoreEmptySelection(t *testing.T) {
	_, fv := buildFixture(t)
	var buf bytes.Buffer
	if err := fv.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	_, fv2 := buildFixture(t)
	_ = fv2.SelectRegion(0, 0, 5)
	if err := fv2.RestoreSession(&buf); err != nil {
		t.Fatal(err)
	}
	if fv2.Selection() != nil {
		t.Fatal("restoring an empty-selection session should clear the selection")
	}
}

func TestSessionRestoreUnknownDatasets(t *testing.T) {
	// A session saved with extra datasets restores gracefully onto fewer.
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 4)
	var buf bytes.Buffer
	if err := fv.SaveSession(&buf); err != nil {
		t.Fatal(err)
	}
	// Build a ForestView with only one of the datasets.
	u := synth.NewUniverse(60, 6, 7)
	ds := u.Generate(synth.DatasetSpec{Name: "alpha", Kind: synth.StressStudy,
		NumExperiments: 12, ESRStrength: 1, Seed: 11})
	cd, err := Cluster(ds, ClusterOptions{Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
	if err != nil {
		t.Fatal(err)
	}
	small, err := New([]*ClusteredDataset{cd})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.RestoreSession(&buf); err != nil {
		t.Fatal(err)
	}
	if small.Selection().Len() != 5 {
		t.Fatal("selection should survive partial restore")
	}
}

func TestSessionRestoreErrors(t *testing.T) {
	_, fv := buildFixture(t)
	if err := fv.RestoreSession(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should error")
	}
	if err := fv.RestoreSession(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version should error")
	}
}

func TestClusterWithOptimizedOrder(t *testing.T) {
	u := synth.NewUniverse(50, 6, 9)
	ds := u.Generate(synth.DatasetSpec{Name: "opt", NumExperiments: 12, Seed: 15})
	plain, err := Cluster(ds, ClusterOptions{
		Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Cluster(ds, ClusterOptions{
		Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, OptimizeOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	qPlain := cluster.OrderQuality(ds.Data, plain.DisplayOrder, cluster.PearsonDist)
	qOpt := cluster.OrderQuality(ds.Data, opt.DisplayOrder, cluster.PearsonDist)
	if qOpt < qPlain-1e-9 {
		t.Fatalf("optimized order quality %v worse than naive %v", qOpt, qPlain)
	}
	// DisplayPos stays the inverse.
	for pos, row := range opt.DisplayOrder {
		if opt.DisplayPos(row) != pos {
			t.Fatal("DisplayPos broken after SetDisplayOrder")
		}
	}
}

func TestSetDisplayOrderRejectsWrongLength(t *testing.T) {
	u := synth.NewUniverse(10, 4, 9)
	ds := u.Generate(synth.DatasetSpec{Name: "x", NumExperiments: 5, Seed: 1})
	cd, _ := FromDataset(ds)
	before := append([]int(nil), cd.DisplayOrder...)
	cd.SetDisplayOrder([]int{0, 1}) // wrong length: ignored
	for i := range before {
		if cd.DisplayOrder[i] != before[i] {
			t.Fatal("wrong-length order should be ignored")
		}
	}
}
