package core

import (
	"bufio"
	"fmt"
	"image/color"
	"io"
	"os"
	"strconv"
	"strings"

	"forestview/internal/microarray"
	"forestview/internal/render"
)

// The script interface drives a ForestView session from a command stream —
// the batch/automation face of the interactions Section 2 describes. One
// command per line, '#' comments, shell-ish quoting for arguments with
// spaces:
//
//	select-region 0 100 140
//	select-query "heat shock"
//	select-list genes.txt
//	clear
//	sync off
//	scroll 0 25
//	order-spell YAL001C,YBR072W 20
//	render view.png 1600 900
//	export-list selection.txt
//	export-merged merged.pcl
//	save-session session.json
//	load-session session.json
//	echo message...

// ScriptResult records what a script run did, for logs and tests.
type ScriptResult struct {
	// Commands executed (after parsing).
	Commands int
	// Log carries one human-readable line per command.
	Log []string
}

// RunScript executes commands from r against the session. Execution stops
// at the first error, which is returned with its line number.
func (fv *ForestView) RunScript(r io.Reader) (*ScriptResult, error) {
	res := &ScriptResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		args := splitScriptLine(line)
		if len(args) == 0 {
			continue
		}
		msg, err := fv.runCommand(args)
		if err != nil {
			return res, fmt.Errorf("core: script line %d (%s): %w", lineNo, args[0], err)
		}
		res.Commands++
		res.Log = append(res.Log, msg)
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("core: reading script: %w", err)
	}
	return res, nil
}

// runCommand dispatches one parsed command.
func (fv *ForestView) runCommand(args []string) (string, error) {
	cmd := strings.ToLower(args[0])
	need := func(n int) error {
		if len(args)-1 != n {
			return fmt.Errorf("want %d arguments, got %d", n, len(args)-1)
		}
		return nil
	}
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return v, nil
	}
	switch cmd {
	case "select-region":
		if err := need(3); err != nil {
			return "", err
		}
		pane, err := atoi(args[1])
		if err != nil {
			return "", err
		}
		from, err := atoi(args[2])
		if err != nil {
			return "", err
		}
		to, err := atoi(args[3])
		if err != nil {
			return "", err
		}
		if err := fv.SelectRegion(pane, from, to); err != nil {
			return "", err
		}
		return fmt.Sprintf("selected %d genes (region)", fv.Selection().Len()), nil

	case "select-query":
		if err := need(1); err != nil {
			return "", err
		}
		n, err := fv.SelectQuery(args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("selected %d genes (query)", n), nil

	case "select-list":
		if err := need(1); err != nil {
			return "", err
		}
		f, err := os.Open(args[1])
		if err != nil {
			return "", err
		}
		ids, err := microarray.ReadGeneList(f)
		f.Close()
		if err != nil {
			return "", err
		}
		fv.SelectList(ids, "list "+args[1])
		return fmt.Sprintf("selected %d genes (list)", fv.Selection().Len()), nil

	case "select-node":
		if err := need(2); err != nil {
			return "", err
		}
		pane, err := atoi(args[1])
		if err != nil {
			return "", err
		}
		node, err := atoi(args[2])
		if err != nil {
			return "", err
		}
		if err := fv.SelectTreeNode(pane, node); err != nil {
			return "", err
		}
		return fmt.Sprintf("selected %d genes (tree node)", fv.Selection().Len()), nil

	case "undo":
		if err := need(0); err != nil {
			return "", err
		}
		if !fv.UndoSelection() {
			return "", fmt.Errorf("nothing to undo")
		}
		return fmt.Sprintf("undo -> %d genes selected", fv.Selection().Len()), nil

	case "redo":
		if err := need(0); err != nil {
			return "", err
		}
		if !fv.RedoSelection() {
			return "", fmt.Errorf("nothing to redo")
		}
		return fmt.Sprintf("redo -> %d genes selected", fv.Selection().Len()), nil

	case "clear":
		if err := need(0); err != nil {
			return "", err
		}
		fv.ClearSelection()
		return "selection cleared", nil

	case "sync":
		if err := need(1); err != nil {
			return "", err
		}
		switch strings.ToLower(args[1]) {
		case "on":
			fv.SetSynchronized(true)
		case "off":
			fv.SetSynchronized(false)
		default:
			return "", fmt.Errorf("sync wants on|off, got %q", args[1])
		}
		return "sync " + strings.ToLower(args[1]), nil

	case "scroll":
		if err := need(2); err != nil {
			return "", err
		}
		pane, err := atoi(args[1])
		if err != nil {
			return "", err
		}
		delta, err := atoi(args[2])
		if err != nil {
			return "", err
		}
		fv.Scroll(pane, delta)
		return fmt.Sprintf("scrolled pane %d by %d", pane, delta), nil

	case "order-spell":
		if len(args) < 2 || len(args) > 3 {
			return "", fmt.Errorf("want query[,genes] [topN]")
		}
		var query []string
		for _, q := range strings.Split(args[1], ",") {
			if q = strings.TrimSpace(q); q != "" {
				query = append(query, q)
			}
		}
		topN := 20
		if len(args) == 3 {
			v, err := atoi(args[2])
			if err != nil {
				return "", err
			}
			topN = v
		}
		if _, err := fv.ApplySpellSearch(nil, query, topN); err != nil {
			return "", err
		}
		return fmt.Sprintf("SPELL ordering applied, %d genes selected", fv.Selection().Len()), nil

	case "order-reset":
		if err := need(0); err != nil {
			return "", err
		}
		fv.ResetPaneOrder()
		return "pane order reset", nil

	case "render":
		if err := need(3); err != nil {
			return "", err
		}
		w, err := atoi(args[2])
		if err != nil {
			return "", err
		}
		h, err := atoi(args[3])
		if err != nil {
			return "", err
		}
		c := render.NewCanvas(w, h, color.RGBA{A: 255})
		fv.RenderScene(c, w, h)
		if err := c.SavePNG(args[1]); err != nil {
			return "", err
		}
		return fmt.Sprintf("rendered %dx%d -> %s", w, h, args[1]), nil

	case "export-list":
		if err := need(1); err != nil {
			return "", err
		}
		f, err := os.Create(args[1])
		if err != nil {
			return "", err
		}
		if err := fv.ExportGeneList(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		return "gene list -> " + args[1], nil

	case "export-merged":
		if err := need(1); err != nil {
			return "", err
		}
		f, err := os.Create(args[1])
		if err != nil {
			return "", err
		}
		if err := fv.ExportMerged(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		return "merged matrix -> " + args[1], nil

	case "save-session":
		if err := need(1); err != nil {
			return "", err
		}
		f, err := os.Create(args[1])
		if err != nil {
			return "", err
		}
		if err := fv.SaveSession(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		return "session -> " + args[1], nil

	case "load-session":
		if err := need(1); err != nil {
			return "", err
		}
		f, err := os.Open(args[1])
		if err != nil {
			return "", err
		}
		defer f.Close()
		if err := fv.RestoreSession(f); err != nil {
			return "", err
		}
		return "session <- " + args[1], nil

	case "echo":
		return strings.Join(args[1:], " "), nil

	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}

// splitScriptLine tokenizes honoring double quotes.
func splitScriptLine(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			if !inQuote && cur.Len() == 0 {
				// Preserve explicitly-empty quoted argument.
				out = append(out, "")
			}
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
