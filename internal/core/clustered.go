// Package core implements ForestView itself — the paper's primary
// contribution (Section 2, Figure 1): the merged dataset interface exposing
// many microarray datasets as one logical 3-D array, per-dataset panes with
// global and zoom views, synchronized and unsynchronized viewing, gene
// selection by region / annotation query / analysis result, dataset
// ordering, list and matrix export, per-dataset display preferences, and
// scene rendering that scales from a desktop framebuffer to the simulated
// display wall.
package core

import (
	"context"
	"fmt"
	"sync"

	"forestview/internal/cluster"
	"forestview/internal/microarray"
)

// ClusteredDataset pairs a dataset with its clustering trees, the unit a
// ForestView pane displays (the analogue of a CDT/GTR/ATR triple in the
// Java TreeView world).
type ClusteredDataset struct {
	// Data holds the expression matrix in its original row order.
	Data *microarray.Dataset
	// GeneTree and ArrayTree are optional dendrograms whose leaves index
	// Data rows / columns.
	GeneTree  *cluster.Tree
	ArrayTree *cluster.Tree
	// DisplayOrder maps display position -> data row. With a gene tree it
	// is the tree's leaf order; without one it is the identity.
	DisplayOrder []int
	// ArrayOrder maps display column -> data column. With an array tree it
	// is that tree's leaf order; nil otherwise (columns display in data
	// order).
	ArrayOrder []int
	// displayPos is the inverse: data row -> display position.
	displayPos []int
	// displayRows is the pyramid's level 0: row headers into the dataset,
	// arranged in display order once per order change instead of once per
	// tile request.
	displayRows [][]float64

	// pyrMu guards the lazily built pyramid; order changes invalidate it.
	pyrMu sync.Mutex
	pyr   *Pyramid
}

// ClusterOptions configure Cluster.
type ClusterOptions struct {
	Metric  cluster.Metric
	Linkage cluster.Linkage
	// ClusterArrays also builds the experiment (column) tree.
	ClusterArrays bool
	// OptimizeOrder runs the Gruvaeus-Wainer orientation pass so adjacent
	// display rows are maximally similar across subtree boundaries.
	OptimizeOrder bool
}

// Cluster runs hierarchical clustering on the dataset and returns it
// wrapped as a pane-ready ClusteredDataset. The dataset itself is not
// reordered; display order lives alongside.
func Cluster(ds *microarray.Dataset, opt ClusterOptions) (*ClusteredDataset, error) {
	return ClusterCtx(context.Background(), ds, opt)
}

// ClusterCtx is Cluster honoring cancellation: the clustering kernel polls
// ctx, so a server building a tree for a request whose client has hung up
// stops paying for it. It returns ctx's error on abandonment.
func ClusterCtx(ctx context.Context, ds *microarray.Dataset, opt ClusterOptions) (*ClusteredDataset, error) {
	if ds == nil || ds.NumGenes() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	gt, err := cluster.HierarchicalCtx(ctx, ds.Data, opt.Metric, opt.Linkage)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: clustering genes of %q: %w", ds.Name, err)
	}
	cd := &ClusteredDataset{Data: ds, GeneTree: gt}
	if opt.ClusterArrays {
		cols := make([][]float64, ds.NumExperiments())
		for e := range cols {
			cols[e] = ds.Column(e)
		}
		at, err := cluster.HierarchicalCtx(ctx, cols, opt.Metric, opt.Linkage)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("core: clustering arrays of %q: %w", ds.Name, err)
		}
		cd.ArrayTree = at
	}
	cd.refreshOrder()
	if opt.OptimizeOrder {
		order, err := cluster.OptimizeLeafOrder(gt, ds.Data, opt.Metric)
		if err != nil {
			return nil, fmt.Errorf("core: optimizing leaf order of %q: %w", ds.Name, err)
		}
		cd.SetDisplayOrder(order)
	}
	return cd, nil
}

// SetDisplayOrder installs an explicit display order (e.g. an optimized
// leaf orientation). The order must be a permutation of the data rows.
func (cd *ClusteredDataset) SetDisplayOrder(order []int) {
	if len(order) != cd.Data.NumGenes() {
		return
	}
	cd.DisplayOrder = append([]int(nil), order...)
	cd.displayPos = make([]int, len(order))
	for pos, row := range order {
		cd.displayPos[row] = pos
	}
	cd.refreshDisplayRows()
}

// FromDataset wraps an already-ordered dataset without clustering (e.g.
// loaded from a CDT whose order is meaningful, or a SPELL result subset).
func FromDataset(ds *microarray.Dataset) (*ClusteredDataset, error) {
	if ds == nil || ds.NumGenes() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	cd := &ClusteredDataset{Data: ds}
	cd.refreshOrder()
	return cd, nil
}

// refreshOrder recomputes DisplayOrder from the gene tree (or identity).
func (cd *ClusteredDataset) refreshOrder() {
	n := cd.Data.NumGenes()
	if cd.GeneTree != nil && cd.GeneTree.NLeaves == n {
		cd.DisplayOrder = cd.GeneTree.LeafOrder()
	} else {
		cd.DisplayOrder = make([]int, n)
		for i := range cd.DisplayOrder {
			cd.DisplayOrder[i] = i
		}
	}
	cd.displayPos = make([]int, n)
	for pos, row := range cd.DisplayOrder {
		cd.displayPos[row] = pos
	}
	if cd.ArrayTree != nil && cd.ArrayTree.NLeaves == cd.Data.NumExperiments() {
		cd.ArrayOrder = cd.ArrayTree.LeafOrder()
	}
	cd.refreshDisplayRows()
}

// refreshDisplayRows rebuilds the level-0 row headers and drops any pyramid
// built over the previous order.
func (cd *ClusteredDataset) refreshDisplayRows() {
	rows := make([][]float64, len(cd.DisplayOrder))
	for pos, row := range cd.DisplayOrder {
		r := cd.Data.Row(row)
		rows[pos] = r[:len(r):len(r)]
	}
	cd.displayRows = rows
	cd.pyrMu.Lock()
	cd.pyr = nil
	cd.pyrMu.Unlock()
}

// Pyramid returns the pane's tile pyramid, building it on first use (and
// after any display-order change). Safe for concurrent callers; the result
// is immutable.
func (cd *ClusteredDataset) Pyramid(opt PyramidOptions) *Pyramid {
	cd.pyrMu.Lock()
	defer cd.pyrMu.Unlock()
	if cd.pyr == nil || cd.pyr.float32Mode != opt.Float32 {
		rows := cd.displayRows
		if rows == nil {
			rows = cd.copyRowHeaders(0, len(cd.DisplayOrder))
		}
		cd.pyr = buildPyramid(rows, cd.Data.NumExperiments(), opt)
	}
	return cd.pyr
}

// DisplayPos returns the display position of a data row, or -1.
func (cd *ClusteredDataset) DisplayPos(row int) int {
	if row < 0 || row >= len(cd.displayPos) {
		return -1
	}
	return cd.displayPos[row]
}

// RowsInDisplayOrder returns the expression rows arranged for display.
// The returned slices alias the dataset.
func (cd *ClusteredDataset) RowsInDisplayOrder() [][]float64 {
	return cd.RowsInDisplayRange(0, len(cd.DisplayOrder))
}

// RowsInDisplayRange returns the expression rows for display positions
// [from, to), clipped to the dataset. The returned slices alias the
// dataset and the result is a subslice of the pane's shared level-0 slab —
// no per-request copying, and (being full-capacity on both axes) append
// cannot bleed into a neighbour's view. Callers must treat it as
// read-only.
func (cd *ClusteredDataset) RowsInDisplayRange(from, to int) [][]float64 {
	if from < 0 {
		from = 0
	}
	if to > len(cd.DisplayOrder) {
		to = len(cd.DisplayOrder)
	}
	if from >= to {
		return nil
	}
	if cd.displayRows != nil {
		return cd.displayRows[from:to:to]
	}
	// Hand-constructed ClusteredDataset (no refreshOrder call yet): fall
	// back to building the headers for this request.
	return cd.copyRowHeaders(from, to)
}

func (cd *ClusteredDataset) copyRowHeaders(from, to int) [][]float64 {
	out := make([][]float64, 0, to-from)
	for _, row := range cd.DisplayOrder[from:to] {
		out = append(out, cd.Data.Row(row))
	}
	return out
}

// IDsInDisplayOrder returns gene IDs arranged for display.
func (cd *ClusteredDataset) IDsInDisplayOrder() []string {
	out := make([]string, len(cd.DisplayOrder))
	for pos, row := range cd.DisplayOrder {
		out[pos] = cd.Data.Genes[row].ID
	}
	return out
}
