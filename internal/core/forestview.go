package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"

	"forestview/internal/annot"
	"forestview/internal/microarray"
	"forestview/internal/render"
)

// Prefs are per-pane display preferences ("ForestView also allows users to
// change user preferences on a per-dataset basis", Section 2).
type Prefs struct {
	ColorMap      render.ColorMap
	ContrastLimit float64
	ShowGeneTree  bool
	ShowLabels    bool
	// GlobalViewFrac is the fraction of pane width given to the global
	// (whole-genome) strip.
	GlobalViewFrac float64
}

// DefaultPrefs mirror TreeView's defaults.
func DefaultPrefs() Prefs {
	return Prefs{
		ColorMap:       render.GreenBlackRed,
		ContrastLimit:  2,
		ShowGeneTree:   true,
		ShowLabels:     true,
		GlobalViewFrac: 0.22,
	}
}

// Pane is one vertical dataset pane of the ForestView display.
type Pane struct {
	DS    *ClusteredDataset
	Prefs Prefs
	// scroll is the pane-local zoom scroll position (unsynchronized mode).
	scroll int
}

// Selection is the current gene subset, with its provenance.
type Selection struct {
	// IDs in selection order (the canonical synchronized display order).
	IDs []string
	set map[string]bool
	// Source describes how the selection was made (pane region, query,
	// analysis), for the UI caption and the export header.
	Source string
}

// Has reports whether the gene is selected.
func (s *Selection) Has(id string) bool {
	if s == nil {
		return false
	}
	return s.set[id]
}

// Len returns the selection size.
func (s *Selection) Len() int {
	if s == nil {
		return 0
	}
	return len(s.IDs)
}

// ForestView is the application model. All mutating methods are safe for
// concurrent use with rendering: the display wall's render nodes read the
// scene while the UI thread mutates it, exactly the situation on the real
// wall.
type ForestView struct {
	mu        sync.RWMutex
	panes     []*Pane
	order     []int // display order of panes
	store     *annot.Store
	merged    *Merged
	selection *Selection
	// syncViews selects synchronized zoom views (same genes, same order,
	// same scroll in every pane).
	syncViews  bool
	syncScroll int
	// history/future implement selection undo/redo, bounded in depth.
	history []*Selection
	future  []*Selection
}

// maxHistory bounds the selection undo stack.
const maxHistory = 100

// pushHistoryLocked records the current selection before it is replaced.
// Caller holds fv.mu.
func (fv *ForestView) pushHistoryLocked() {
	fv.history = append(fv.history, fv.selection)
	if len(fv.history) > maxHistory {
		fv.history = fv.history[len(fv.history)-maxHistory:]
	}
	fv.future = nil
}

// UndoSelection restores the previous selection. It reports whether there
// was anything to undo.
func (fv *ForestView) UndoSelection() bool {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	if len(fv.history) == 0 {
		return false
	}
	fv.future = append(fv.future, fv.selection)
	fv.selection = fv.history[len(fv.history)-1]
	fv.history = fv.history[:len(fv.history)-1]
	fv.syncScroll = 0
	return true
}

// RedoSelection reverses an undo. It reports whether there was anything to
// redo.
func (fv *ForestView) RedoSelection() bool {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	if len(fv.future) == 0 {
		return false
	}
	fv.history = append(fv.history, fv.selection)
	fv.selection = fv.future[len(fv.future)-1]
	fv.future = fv.future[:len(fv.future)-1]
	fv.syncScroll = 0
	return true
}

// New builds a ForestView over clustered datasets. The annotation store
// merges every dataset's gene metadata; the merged interface spans them
// all.
func New(datasets []*ClusteredDataset) (*ForestView, error) {
	if len(datasets) == 0 {
		return nil, fmt.Errorf("core: no datasets")
	}
	fv := &ForestView{
		store:     annot.NewStore(),
		syncViews: true,
	}
	var raw []*microarray.Dataset
	for i, cd := range datasets {
		if cd == nil || cd.Data == nil {
			return nil, fmt.Errorf("core: dataset %d is nil", i)
		}
		fv.panes = append(fv.panes, &Pane{DS: cd, Prefs: DefaultPrefs()})
		fv.order = append(fv.order, i)
		raw = append(raw, cd.Data)
		for _, g := range cd.Data.Genes {
			if _, ok := fv.store.Get(g.ID); !ok {
				fv.store.Add(annot.Record{ID: g.ID, Name: g.Name, Description: g.Annotation})
			}
		}
	}
	m, err := NewMerged(raw)
	if err != nil {
		return nil, err
	}
	fv.merged = m
	return fv, nil
}

// NumPanes returns the pane count.
func (fv *ForestView) NumPanes() int { return len(fv.panes) }

// Pane returns pane i in *storage* order.
func (fv *ForestView) Pane(i int) *Pane {
	if i < 0 || i >= len(fv.panes) {
		return nil
	}
	return fv.panes[i]
}

// PaneOrder returns the current display order (indices into storage order).
func (fv *ForestView) PaneOrder() []int {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	return append([]int(nil), fv.order...)
}

// Merged exposes the merged dataset interface.
func (fv *ForestView) Merged() *Merged { return fv.merged }

// Annotations exposes the merged annotation store.
func (fv *ForestView) Annotations() *annot.Store { return fv.store }

// Selection returns the current selection (nil-safe snapshot).
func (fv *ForestView) Selection() *Selection {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	return fv.selection
}

// Synchronized reports whether zoom views are synchronized.
func (fv *ForestView) Synchronized() bool {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	return fv.syncViews
}

// SetSynchronized toggles synchronized viewing ("If desired it is possible
// to turn off synchronous viewing in order to see the selected subsets in
// the underlying gene order of each dataset").
func (fv *ForestView) SetSynchronized(on bool) {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.syncViews = on
}

func newSelection(ids []string, source string) *Selection {
	s := &Selection{Source: source, set: make(map[string]bool, len(ids))}
	for _, id := range ids {
		if !s.set[id] {
			s.set[id] = true
			s.IDs = append(s.IDs, id)
		}
	}
	return s
}

// SelectRegion selects the genes between two display positions (inclusive)
// of one pane's global view — the paper's "using the mouse to highlight a
// region within the global view of one dataset". The selection order is the
// pane's display order, which then drives synchronized views everywhere.
func (fv *ForestView) SelectRegion(pane, fromPos, toPos int) error {
	if pane < 0 || pane >= len(fv.panes) {
		return fmt.Errorf("core: pane %d out of range", pane)
	}
	cd := fv.panes[pane].DS
	n := len(cd.DisplayOrder)
	if fromPos > toPos {
		fromPos, toPos = toPos, fromPos
	}
	if fromPos < 0 {
		fromPos = 0
	}
	if toPos >= n {
		toPos = n - 1
	}
	if fromPos > toPos {
		return fmt.Errorf("core: empty region")
	}
	ids := make([]string, 0, toPos-fromPos+1)
	for pos := fromPos; pos <= toPos; pos++ {
		ids = append(ids, cd.Data.Genes[cd.DisplayOrder[pos]].ID)
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.pushHistoryLocked()
	fv.selection = newSelection(ids, fmt.Sprintf("region %d-%d of %q", fromPos, toPos, cd.Data.Name))
	fv.syncScroll = 0
	return nil
}

// SelectTreeNode selects every gene under one node of a pane's gene
// dendrogram — the "selecting ... tree nodes" interaction of Section 2.
// node addresses the tree: leaves are 0..NLeaves-1, merge i is NLeaves+i.
func (fv *ForestView) SelectTreeNode(pane, node int) error {
	if pane < 0 || pane >= len(fv.panes) {
		return fmt.Errorf("core: pane %d out of range", pane)
	}
	cd := fv.panes[pane].DS
	if cd.GeneTree == nil {
		return fmt.Errorf("core: pane %d has no gene tree", pane)
	}
	leaves := cd.GeneTree.LeavesUnder(node)
	if len(leaves) == 0 {
		return fmt.Errorf("core: node %d not in tree", node)
	}
	// Present the subtree in display order, like a region selection.
	sort.Slice(leaves, func(a, b int) bool {
		return cd.DisplayPos(leaves[a]) < cd.DisplayPos(leaves[b])
	})
	ids := make([]string, len(leaves))
	for i, row := range leaves {
		ids[i] = cd.Data.Genes[row].ID
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.pushHistoryLocked()
	fv.selection = newSelection(ids, fmt.Sprintf("tree node %d of %q", node, cd.Data.Name))
	fv.syncScroll = 0
	return nil
}

// SelectQuery selects genes matching an annotation-search expression across
// all datasets.
func (fv *ForestView) SelectQuery(expr string) (int, error) {
	ids := fv.store.Search(expr)
	if len(ids) == 0 {
		return 0, fmt.Errorf("core: query %q matched no genes", expr)
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.pushHistoryLocked()
	fv.selection = newSelection(ids, "query "+expr)
	fv.syncScroll = 0
	return len(ids), nil
}

// SelectList installs a selection from an external analysis (SPELL, GOLEM,
// a pasted list). Unknown IDs are kept: they render as absent rows, making
// missingness visible rather than silent.
func (fv *ForestView) SelectList(ids []string, source string) {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.pushHistoryLocked()
	fv.selection = newSelection(ids, source)
	fv.syncScroll = 0
}

// ClearSelection removes the selection.
func (fv *ForestView) ClearSelection() {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.pushHistoryLocked()
	fv.selection = nil
	fv.syncScroll = 0
}

// OrderPanesBy reorders panes by descending weight (missing names keep
// their relative order at the end) — the hook SPELL's ranked dataset list
// plugs into ("The datasets returned can be displayed in decreasing order
// of relevance to the query").
func (fv *ForestView) OrderPanesBy(weight map[string]float64) {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	idx := append([]int(nil), fv.order...)
	sort.SliceStable(idx, func(a, b int) bool {
		wa, oka := weight[fv.panes[idx[a]].DS.Data.Name]
		wb, okb := weight[fv.panes[idx[b]].DS.Data.Name]
		switch {
		case oka && okb:
			return wa > wb
		case oka:
			return true
		default:
			return false
		}
	})
	fv.order = idx
}

// ResetPaneOrder restores storage order.
func (fv *ForestView) ResetPaneOrder() {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	for i := range fv.order {
		fv.order[i] = i
	}
}

// Scroll adjusts the zoom scroll position. In synchronized mode one scroll
// position is shared by every pane ("the zoom view for each dataset shows
// the gene expression data in exactly the same order and same scroll
// position"); otherwise the pane scrolls alone.
func (fv *ForestView) Scroll(pane, delta int) {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if n > 0 && v >= n {
			return n - 1
		}
		return v
	}
	if fv.syncViews {
		n := 0
		if fv.selection != nil {
			n = len(fv.selection.IDs)
		}
		fv.syncScroll = clamp(fv.syncScroll+delta, n)
		return
	}
	if pane >= 0 && pane < len(fv.panes) {
		p := fv.panes[pane]
		p.scroll = clamp(p.scroll+delta, len(p.DS.DisplayOrder))
	}
}

// ScrollPos returns the effective zoom scroll position for a pane.
func (fv *ForestView) ScrollPos(pane int) int {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	if fv.syncViews {
		return fv.syncScroll
	}
	if pane >= 0 && pane < len(fv.panes) {
		return fv.panes[pane].scroll
	}
	return 0
}

// ZoomRow is one row of a pane's zoom view: a gene ID and the dataset-local
// row holding its data (-1 when the dataset does not measure the gene; the
// row renders as missing, keeping cross-pane rows aligned).
type ZoomRow struct {
	GeneID string
	Row    int
}

// ZoomContent returns the zoom-view rows for a pane under the current
// selection and synchronization mode.
//
// Synchronized: every pane shows the selection in selection order, absent
// genes included as placeholders, so scanning horizontally across panes
// follows a single gene (the core Section-2 interaction).
//
// Unsynchronized: the pane shows only the selected genes it measures, in
// its own clustered display order, exposing how the grouping differs per
// dataset.
func (fv *ForestView) ZoomContent(pane int) []ZoomRow {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	if pane < 0 || pane >= len(fv.panes) || fv.selection == nil {
		return nil
	}
	cd := fv.panes[pane].DS
	if fv.syncViews {
		out := make([]ZoomRow, len(fv.selection.IDs))
		for i, id := range fv.selection.IDs {
			row := -1
			if r, ok := cd.Data.GeneIndex(id); ok {
				row = r
			}
			out[i] = ZoomRow{GeneID: id, Row: row}
		}
		return out
	}
	var out []ZoomRow
	for _, row := range cd.DisplayOrder {
		id := cd.Data.Genes[row].ID
		if fv.selection.set[id] {
			out = append(out, ZoomRow{GeneID: id, Row: row})
		}
	}
	return out
}

// HighlightPositions returns, for a pane, the display positions of the
// selected genes — the line markers the global view draws in every pane
// once a selection exists anywhere.
func (fv *ForestView) HighlightPositions(pane int) map[int]bool {
	fv.mu.RLock()
	defer fv.mu.RUnlock()
	if pane < 0 || pane >= len(fv.panes) || fv.selection == nil {
		return nil
	}
	cd := fv.panes[pane].DS
	out := make(map[int]bool)
	for _, id := range fv.selection.IDs {
		if row, ok := cd.Data.GeneIndex(id); ok {
			if pos := cd.DisplayPos(row); pos >= 0 {
				out[pos] = true
			}
		}
	}
	return out
}

// FindGenes searches annotations and returns matching IDs without changing
// the selection (the Figure-1 "Find Genes by name" box previews results
// before the user commits them).
func (fv *ForestView) FindGenes(expr string) []string {
	return fv.store.Search(expr)
}

// ExportGeneList writes the selected gene IDs (one per line, with a
// provenance header) — Figure 1's "Export Gene List".
func (fv *ForestView) ExportGeneList(w io.Writer) error {
	fv.mu.RLock()
	sel := fv.selection
	fv.mu.RUnlock()
	if sel == nil || len(sel.IDs) == 0 {
		return fmt.Errorf("core: nothing selected")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ForestView gene list (%d genes, %s)\n", len(sel.IDs), sel.Source)
	for _, id := range sel.IDs {
		fmt.Fprintln(bw, id)
	}
	return bw.Flush()
}

// ExportMerged writes the merged expression matrix of the selection (or of
// every unified gene when nothing is selected) in PCL format — Figure 1's
// "Export Merged Dataset".
func (fv *ForestView) ExportMerged(w io.Writer) error {
	fv.mu.RLock()
	var genes []string
	if fv.selection != nil {
		genes = append([]string(nil), fv.selection.IDs...)
	}
	fv.mu.RUnlock()
	ds, err := fv.merged.ExportPCL(genes)
	if err != nil {
		return err
	}
	return microarray.WritePCL(w, ds)
}

// SelectionAsDataset materializes the current selection as a standalone
// merged dataset ("This subset can also be loaded into the ForestView
// display as a dataset").
func (fv *ForestView) SelectionAsDataset(name string) (*microarray.Dataset, error) {
	fv.mu.RLock()
	sel := fv.selection
	fv.mu.RUnlock()
	if sel == nil || len(sel.IDs) == 0 {
		return nil, fmt.Errorf("core: nothing selected")
	}
	ds, err := fv.merged.ExportPCL(sel.IDs)
	if err != nil {
		return nil, err
	}
	ds.Name = name
	return ds, nil
}

// ApplyPrefsToAll copies one pane's preferences to every pane ("...or
// applied to all datasets").
func (fv *ForestView) ApplyPrefsToAll(from int) error {
	if from < 0 || from >= len(fv.panes) {
		return fmt.Errorf("core: pane %d out of range", from)
	}
	fv.mu.Lock()
	defer fv.mu.Unlock()
	p := fv.panes[from].Prefs
	for _, pane := range fv.panes {
		pane.Prefs = p
	}
	return nil
}
