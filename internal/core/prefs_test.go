package core

import (
	"image/color"
	"testing"

	"forestview/internal/render"
)

// renderToCanvas renders the fixture scene and returns the canvas.
func renderToCanvas(fv *ForestView) *render.Canvas {
	c := render.NewCanvas(600, 300, color.RGBA{A: 255})
	fv.RenderScene(c, 600, 300)
	return c
}

func diffPixels(a, b *render.Canvas) int {
	n := 0
	for y := 0; y < a.Height(); y++ {
		for x := 0; x < a.Width(); x++ {
			if a.At(x, y) != b.At(x, y) {
				n++
			}
		}
	}
	return n
}

// Per-dataset preferences must change only that pane's rendering
// ("the expression level colors can be adjusted independently for
// datasets", Section 2).
func TestPerPanePrefsIndependent(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	before := renderToCanvas(fv)

	// Change pane 1's colormap only.
	fv.Pane(1).Prefs.ColorMap = render.BlueYellow
	after := renderToCanvas(fv)

	// Pane layout: 3 panes over 600px => pane width ~196. Pane 0 occupies
	// roughly x in [4, 200), pane 1 in [204, 400).
	pane0Diff, pane1Diff := 0, 0
	for y := 0; y < 300; y++ {
		for x := 4; x < 196; x++ {
			if before.At(x, y) != after.At(x, y) {
				pane0Diff++
			}
		}
		for x := 208; x < 392; x++ {
			if before.At(x, y) != after.At(x, y) {
				pane1Diff++
			}
		}
	}
	if pane1Diff == 0 {
		t.Fatal("changing pane 1's colormap changed nothing in pane 1")
	}
	if pane0Diff != 0 {
		t.Fatalf("changing pane 1's colormap leaked %d pixels into pane 0", pane0Diff)
	}
}

func TestContrastLimitChangesRendering(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	before := renderToCanvas(fv)
	for p := 0; p < fv.NumPanes(); p++ {
		fv.Pane(p).Prefs.ContrastLimit = 0.25 // much hotter colors
	}
	after := renderToCanvas(fv)
	if diffPixels(before, after) < 100 {
		t.Fatal("contrast change barely affected the scene")
	}
}

func TestShowGeneTreeToggle(t *testing.T) {
	_, fv := buildFixture(t)
	before := renderToCanvas(fv)
	for p := 0; p < fv.NumPanes(); p++ {
		fv.Pane(p).Prefs.ShowGeneTree = false
	}
	after := renderToCanvas(fv)
	if diffPixels(before, after) == 0 {
		t.Fatal("hiding gene trees changed nothing")
	}
}

func TestGlobalViewFracAffectsLayout(t *testing.T) {
	_, fv := buildFixture(t)
	_ = fv.SelectRegion(0, 0, 9)
	before := renderToCanvas(fv)
	for p := 0; p < fv.NumPanes(); p++ {
		fv.Pane(p).Prefs.GlobalViewFrac = 0.5
	}
	after := renderToCanvas(fv)
	if diffPixels(before, after) < 100 {
		t.Fatal("global/zoom split change barely affected the scene")
	}
}
