package core

import (
	"math"
	"sync"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/synth"
)

// pyramidFixture builds a clustered pane big enough to carry several
// levels, with NaN holes punched in to exercise the observation counting.
func pyramidFixture(t *testing.T) *ClusteredDataset {
	t.Helper()
	u := synth.NewUniverse(600, 12, 41)
	ds := u.Generate(synth.DatasetSpec{Name: "pyr", NumExperiments: 14, Seed: 43})
	for g := 0; g < ds.NumGenes(); g += 7 {
		ds.Data[g][g%ds.NumExperiments()] = math.NaN()
	}
	// One display row that is entirely missing: its aggregate contribution
	// must vanish, and a fully-missing block must yield NaN.
	for c := range ds.Data[5] {
		ds.Data[5][c] = math.NaN()
	}
	cd, err := Cluster(ds, ClusterOptions{Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
	if err != nil {
		t.Fatal(err)
	}
	return cd
}

func TestNumPyramidLevels(t *testing.T) {
	cases := []struct{ rows, want int }{
		{0, 1}, {1, 1}, {63, 1}, {64, 1}, {127, 1}, {128, 2},
		{256, 3}, {600, 4}, {1024, 5}, {20000, 9},
	}
	for _, c := range cases {
		if got := NumPyramidLevels(c.rows); got != c.want {
			t.Errorf("NumPyramidLevels(%d) = %d, want %d", c.rows, got, c.want)
		}
	}
}

// TestPyramidParityFloat64 is the golden-parity oracle: every level of the
// built pyramid must match the naive direct aggregation within 1e-12.
func TestPyramidParityFloat64(t *testing.T) {
	cd := pyramidFixture(t)
	p := cd.Pyramid(PyramidOptions{})
	if p.NumLevels() != NumPyramidLevels(len(cd.DisplayOrder)) {
		t.Fatalf("levels = %d, want %d", p.NumLevels(), NumPyramidLevels(len(cd.DisplayOrder)))
	}
	for k := 0; k < p.NumLevels(); k++ {
		slab := p.Level(k)
		ref := cd.ReferencePyramidLevel(k)
		if slab.NRows != len(ref) {
			t.Fatalf("level %d: %d rows, want %d", k, slab.NRows, len(ref))
		}
		for i, refRow := range ref {
			for c, want := range refRow {
				got := slab.F64[i][c]
				if math.IsNaN(want) != math.IsNaN(got) {
					t.Fatalf("level %d row %d col %d: got %v, want %v", k, i, c, got, want)
				}
				if !math.IsNaN(want) && math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					t.Fatalf("level %d row %d col %d: got %v, want %v", k, i, c, got, want)
				}
			}
		}
	}
}

// TestPyramidParityFloat32 checks the float32 slabs against the float64
// oracle within the documented tolerance: one rounding of the exact mean,
// |f32 - f64| <= max(|v|*1e-6, 1e-6) (float32 eps is 2^-23 ~ 1.2e-7; the
// slack covers the accumulate-then-round path).
func TestPyramidParityFloat32(t *testing.T) {
	cd := pyramidFixture(t)
	p := cd.Pyramid(PyramidOptions{Float32: true})
	for k := 0; k < p.NumLevels(); k++ {
		slab := p.Level(k)
		if slab.F64 != nil || slab.F32 == nil {
			t.Fatalf("level %d: expected float32 slab", k)
		}
		ref := cd.ReferencePyramidLevel(k)
		for i, refRow := range ref {
			for c, want := range refRow {
				got := float64(slab.F32[i][c])
				if math.IsNaN(want) != math.IsNaN(got) {
					t.Fatalf("level %d row %d col %d: got %v, want %v", k, i, c, got, want)
				}
				if !math.IsNaN(want) && math.Abs(got-want) > math.Max(math.Abs(want)*1e-6, 1e-6) {
					t.Fatalf("level %d row %d col %d: got %v, want %v (err %g)", k, i, c, got, want, math.Abs(got-want))
				}
			}
		}
	}
}

// TestPyramidInvalidatedByOrderChange proves a display-order change drops
// the cached pyramid and the rebuilt levels follow the new order.
func TestPyramidInvalidatedByOrderChange(t *testing.T) {
	cd := pyramidFixture(t)
	before := cd.Pyramid(PyramidOptions{})
	rev := make([]int, len(cd.DisplayOrder))
	for i, r := range cd.DisplayOrder {
		rev[len(rev)-1-i] = r
	}
	cd.SetDisplayOrder(rev)
	after := cd.Pyramid(PyramidOptions{})
	if after == before {
		t.Fatal("pyramid not invalidated by SetDisplayOrder")
	}
	ref := cd.ReferencePyramidLevel(1)
	slab := after.Level(1)
	for i, refRow := range ref {
		for c, want := range refRow {
			got := slab.F64[i][c]
			if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && math.Abs(got-want) > 1e-12) {
				t.Fatalf("post-reorder level 1 row %d col %d: got %v, want %v", i, c, got, want)
			}
		}
	}
}

// TestPyramidRaceHammer drives concurrent Pyramid builds and reads under
// -race, including the mode flip between float64 and float32.
func TestPyramidRaceHammer(t *testing.T) {
	cd := pyramidFixture(t)
	ref := cd.ReferencePyramidLevel(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				p := cd.Pyramid(PyramidOptions{Float32: w%2 == 0})
				slab := p.Level(2)
				if slab.NRows != len(ref) {
					t.Errorf("worker %d: %d rows, want %d", w, slab.NRows, len(ref))
					return
				}
				i := iter % len(ref)
				for c, want := range ref[i] {
					var got float64
					if slab.F32 != nil {
						got = float64(slab.F32[i][c])
					} else {
						got = slab.F64[i][c]
					}
					if math.IsNaN(want) != math.IsNaN(got) {
						t.Errorf("worker %d row %d col %d: got %v, want %v", w, i, c, got, want)
						return
					}
					if !math.IsNaN(want) && math.Abs(got-want) > math.Max(math.Abs(want)*1e-6, 1e-6) {
						t.Errorf("worker %d row %d col %d: got %v, want %v", w, i, c, got, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRowsInDisplayRangeNoAliasing is the regression test for the shared
// level-0 slab serve: overlapping windows handed to concurrent tiles must
// stay consistent, and appending to one caller's view must not bleed a
// row header into another's (the classic full-capacity subslice hazard).
func TestRowsInDisplayRangeNoAliasing(t *testing.T) {
	cd := pyramidFixture(t)
	a := cd.RowsInDisplayRange(0, 10)
	b := cd.RowsInDisplayRange(5, 15)
	// The three-index subslice has cap == len: this append must
	// reallocate instead of stomping b's first header.
	grown := append(a, []float64{1e9})
	if grown[10][0] != 1e9 {
		t.Fatal("append did not land in the grown copy")
	}
	for i := 0; i < 10; i++ {
		if &b[i][0] != &cd.Data.Row(cd.DisplayOrder[5+i])[0] {
			t.Fatalf("window row %d does not alias the dataset row", i)
		}
	}
	// Concurrent overlapping windows under -race: read-only serving from
	// the shared slab must be data-race free and value-stable.
	want := cd.Data.Row(cd.DisplayOrder[7])[0]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				rows := cd.RowsInDisplayRange(w, 20+w)
				got := rows[7-w][0]
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("worker %d iter %d: display row 7 = %v, want %v", w, iter, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
