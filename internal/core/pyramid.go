package core

import "math"

// The tile pyramid: mipmap-style row aggregation for viewport serving.
//
// Level 0 is the pane's display-order rows themselves. Level k (k >= 1)
// collapses each run of 2^k consecutive display rows into one aggregate row
// whose value per column is the NaN-aware mean of the observed values in
// the run — exactly what RenderHeatmap's global regime would compute on the
// fly, but paid once per pane instead of once per tile. A zoomed-out tile
// over [from, to) at level k touches (to-from)/2^k slab rows instead of
// to-from raw rows.

const (
	// DefaultPyramidMinRows stops level generation once a level would drop
	// below this many rows: coarser levels than a single tile's pixel
	// height buy nothing.
	DefaultPyramidMinRows = 64
	// maxPyramidLevels bounds the level count (2^15 rows per aggregate row
	// is beyond any real compendium).
	maxPyramidLevels = 16
)

// NumPyramidLevels returns how many pyramid levels (including level 0) a
// pane with nRows display rows carries. Pure: usable for request
// validation and auto-level selection without forcing a pyramid build.
func NumPyramidLevels(nRows int) int {
	levels := 1
	for r := nRows / 2; r >= DefaultPyramidMinRows && levels < maxPyramidLevels; r /= 2 {
		levels++
	}
	return levels
}

// PyramidOptions configure Pyramid construction.
type PyramidOptions struct {
	// Float32 stores every level (including a level-0 copy) as float32
	// slabs, halving memory bandwidth on the tile hot loop at the cost of
	// ~1e-7 relative rounding (see DESIGN.md §8).
	Float32 bool
}

// Slab is one pyramid level's row-major matrix view. Exactly one of F64 /
// F32 is non-nil, matching the PyramidOptions the pyramid was built with.
// Row slices are three-index headers into shared storage: callers may not
// append to or mutate them.
type Slab struct {
	// K is the aggregation level: each slab row summarizes 2^K display rows.
	K     int
	NRows int
	NCols int
	F64   [][]float64
	F32   [][]float32
}

// Pyramid holds every aggregation level for one display order. It is
// immutable once built; ClusteredDataset.Pyramid caches one per pane and
// rebuilds on display-order changes.
type Pyramid struct {
	float32Mode bool
	nRows       int
	nCols       int
	levels      []Slab
}

// NumLevels returns the number of levels, counting level 0.
func (p *Pyramid) NumLevels() int { return len(p.levels) }

// Level returns the slab for level k, clamped to the available range.
func (p *Pyramid) Level(k int) Slab {
	if k < 0 {
		k = 0
	}
	if k >= len(p.levels) {
		k = len(p.levels) - 1
	}
	return p.levels[k]
}

// MemBytes reports the storage the aggregated levels add beyond the raw
// dataset (level 0 in float64 mode aliases the dataset and costs only row
// headers).
func (p *Pyramid) MemBytes() int64 {
	var b int64
	for _, s := range p.levels {
		b += int64(len(s.F64)) * 24 // row headers
		b += int64(len(s.F32)) * 24
		if s.K > 0 || s.F32 != nil {
			b += int64(s.NRows) * int64(s.NCols) * elemSize(s)
		}
	}
	return b
}

func elemSize(s Slab) int64 {
	if s.F32 != nil {
		return 4
	}
	return 8
}

// buildPyramid constructs every level for the current display order.
// displayRows must already be in display order (level 0). Aggregation
// carries exact float64 sums and observation counts level-to-level, so
// level k equals the direct NaN-aware mean over its 2^k-row block up to
// float64 summation order (pairwise here vs sequential in the oracle).
func buildPyramid(displayRows [][]float64, nCols int, opt PyramidOptions) *Pyramid {
	n := len(displayRows)
	nl := NumPyramidLevels(n)
	p := &Pyramid{float32Mode: opt.Float32, nRows: n, nCols: nCols, levels: make([]Slab, 0, nl)}

	if opt.Float32 {
		p.levels = append(p.levels, makeSlab32(displayRows, n, nCols))
	} else {
		p.levels = append(p.levels, Slab{K: 0, NRows: n, NCols: nCols, F64: displayRows})
	}

	// Running per-column (sum, count) for the level under construction.
	curRows := n
	var sum []float64
	var cnt []int32
	for k := 1; k < nl; k++ {
		nextRows := (curRows + 1) / 2
		nextSum := make([]float64, nextRows*nCols)
		nextCnt := make([]int32, nextRows*nCols)
		if k == 1 {
			// Seed from the raw display rows: pairs of level-0 rows.
			for i := 0; i < nextRows; i++ {
				ds, dc := nextSum[i*nCols:(i+1)*nCols], nextCnt[i*nCols:(i+1)*nCols]
				for j := 2 * i; j < 2*i+2 && j < n; j++ {
					row := displayRows[j]
					for c := 0; c < nCols && c < len(row); c++ {
						if v := row[c]; !math.IsNaN(v) {
							ds[c] += v
							dc[c]++
						}
					}
				}
			}
		} else {
			for i := 0; i < nextRows; i++ {
				ds, dc := nextSum[i*nCols:(i+1)*nCols], nextCnt[i*nCols:(i+1)*nCols]
				for j := 2 * i; j < 2*i+2 && j < curRows; j++ {
					ss, sc := sum[j*nCols:(j+1)*nCols], cnt[j*nCols:(j+1)*nCols]
					for c := 0; c < nCols; c++ {
						ds[c] += ss[c]
						dc[c] += sc[c]
					}
				}
			}
		}
		sum, cnt, curRows = nextSum, nextCnt, nextRows
		p.levels = append(p.levels, emitLevel(k, nextRows, nCols, nextSum, nextCnt, opt.Float32))
	}
	return p
}

// emitLevel materializes one contiguous slab from accumulated sums/counts.
func emitLevel(k, nRows, nCols int, sum []float64, cnt []int32, f32 bool) Slab {
	s := Slab{K: k, NRows: nRows, NCols: nCols}
	if f32 {
		vals := make([]float32, nRows*nCols)
		for i := range vals {
			if cnt[i] > 0 {
				vals[i] = float32(sum[i] / float64(cnt[i]))
			} else {
				vals[i] = float32(math.NaN())
			}
		}
		s.F32 = make([][]float32, nRows)
		for i := range s.F32 {
			s.F32[i] = vals[i*nCols : (i+1)*nCols : (i+1)*nCols]
		}
		return s
	}
	vals := make([]float64, nRows*nCols)
	for i := range vals {
		if cnt[i] > 0 {
			vals[i] = sum[i] / float64(cnt[i])
		} else {
			vals[i] = math.NaN()
		}
	}
	s.F64 = make([][]float64, nRows)
	for i := range s.F64 {
		s.F64[i] = vals[i*nCols : (i+1)*nCols : (i+1)*nCols]
	}
	return s
}

// makeSlab32 copies level 0 into a contiguous float32 slab.
func makeSlab32(displayRows [][]float64, nRows, nCols int) Slab {
	vals := make([]float32, nRows*nCols)
	for i, row := range displayRows {
		dst := vals[i*nCols : (i+1)*nCols]
		for c := 0; c < nCols; c++ {
			if c < len(row) {
				dst[c] = float32(row[c])
			} else {
				dst[c] = float32(math.NaN())
			}
		}
	}
	s := Slab{K: 0, NRows: nRows, NCols: nCols, F32: make([][]float32, nRows)}
	for i := range s.F32 {
		s.F32[i] = vals[i*nCols : (i+1)*nCols : (i+1)*nCols]
	}
	return s
}

// ReferencePyramidLevel computes level k by direct NaN-aware mean over the
// raw display rows — the naive O(rows) aggregation the pyramid replaces.
// Retained as the golden-parity oracle for Pyramid (level k row i must
// match within 1e-12 in float64 mode; see pyramid tests for the float32
// tolerance).
func (cd *ClusteredDataset) ReferencePyramidLevel(k int) [][]float64 {
	n := len(cd.DisplayOrder)
	nCols := cd.Data.NumExperiments()
	block := 1 << uint(k)
	nRows := (n + block - 1) / block
	out := make([][]float64, nRows)
	for i := 0; i < nRows; i++ {
		row := make([]float64, nCols)
		for c := 0; c < nCols; c++ {
			sum, cnt := 0.0, 0
			for j := i * block; j < (i+1)*block && j < n; j++ {
				src := cd.Data.Row(cd.DisplayOrder[j])
				if c < len(src) && !math.IsNaN(src[c]) {
					sum += src[c]
					cnt++
				}
			}
			if cnt > 0 {
				row[c] = sum / float64(cnt)
			} else {
				row[c] = math.NaN()
			}
		}
		out[i] = row
	}
	return out
}
