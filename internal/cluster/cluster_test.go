package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs returns rows forming two well-separated correlation groups:
// rows 0..2 rise, rows 3..5 fall.
func twoBlobs() [][]float64 {
	return [][]float64{
		{1, 2, 3, 4},
		{1.1, 2.1, 3.0, 4.2},
		{0.9, 2.2, 2.9, 3.9},
		{4, 3, 2, 1},
		{4.1, 2.9, 2.1, 1.1},
		{3.9, 3.1, 1.9, 0.8},
	}
}

func TestMetricDistanceBasics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 4, 6}
	if d := PearsonDist.Distance(a, b); math.Abs(d) > 1e-9 {
		t.Fatalf("colinear Pearson distance = %v, want 0", d)
	}
	anti := []float64{3, 2, 1}
	if d := PearsonDist.Distance(a, anti); math.Abs(d-2) > 1e-9 {
		t.Fatalf("anti-correlated distance = %v, want 2", d)
	}
	if d := PearsonAbsDist.Distance(a, anti); math.Abs(d) > 1e-9 {
		t.Fatalf("abs-correlation distance = %v, want 0", d)
	}
	if d := EuclideanDist.Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-9 {
		t.Fatalf("euclidean = %v", d)
	}
}

func TestMetricDegenerateRows(t *testing.T) {
	flat := []float64{1, 1, 1}
	x := []float64{1, 2, 3}
	if d := PearsonDist.Distance(flat, x); d != 2 {
		t.Fatalf("flat-row Pearson distance = %v, want max (2)", d)
	}
	missing := []float64{math.NaN(), math.NaN(), math.NaN()}
	if d := EuclideanDist.Distance(missing, x); d != math.MaxFloat64 {
		t.Fatalf("all-missing Euclidean distance = %v, want max", d)
	}
}

func TestMetricStrings(t *testing.T) {
	names := map[Metric]string{
		PearsonDist:    "correlation (centered)",
		PearsonAbsDist: "absolute correlation",
		UncenteredDist: "correlation (uncentered)",
		SpearmanDist:   "spearman rank correlation",
		EuclideanDist:  "euclidean",
		ManhattanDist:  "city-block",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	for l, want := range map[Linkage]string{
		AverageLinkage: "average", CompleteLinkage: "complete", SingleLinkage: "single",
	} {
		if l.String() != want {
			t.Fatalf("linkage name %q != %q", l.String(), want)
		}
	}
}

func TestHierarchicalTwoGroups(t *testing.T) {
	rows := twoBlobs()
	tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	assign, err := tree.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0-2 must share a cluster, rows 3-5 the other.
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("rising group split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("falling group split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("groups merged: %v", assign)
	}
}

func TestHierarchicalAllLinkages(t *testing.T) {
	rows := twoBlobs()
	for _, lk := range []Linkage{AverageLinkage, CompleteLinkage, SingleLinkage} {
		tree, err := Hierarchical(rows, EuclideanDist, lk)
		if err != nil {
			t.Fatalf("%v: %v", lk, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", lk, err)
		}
		order := tree.LeafOrder()
		if len(order) != len(rows) {
			t.Fatalf("%v: leaf order has %d entries", lk, len(order))
		}
	}
}

func TestHierarchicalEdgeCases(t *testing.T) {
	if _, err := Hierarchical(nil, PearsonDist, AverageLinkage); err == nil {
		t.Fatal("empty input should error")
	}
	tree, err := Hierarchical([][]float64{{1, 2}}, PearsonDist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NLeaves != 1 || len(tree.Merges) != 0 {
		t.Fatalf("single-row tree: %+v", tree)
	}
	if got := tree.LeafOrder(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single leaf order = %v", got)
	}
	two, err := Hierarchical([][]float64{{1, 2, 3}, {3, 2, 1}}, PearsonDist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Merges) != 1 || math.Abs(two.Merges[0].Height-2) > 1e-9 {
		t.Fatalf("two-row merge = %+v", two.Merges)
	}
}

func TestHierarchicalMonotoneHeights(t *testing.T) {
	// Average and complete linkage cannot produce inversions.
	r := rand.New(rand.NewSource(42))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = make([]float64, 10)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64()
		}
	}
	for _, lk := range []Linkage{AverageLinkage, CompleteLinkage} {
		tree, err := Hierarchical(rows, EuclideanDist, lk)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(tree.Merges); i++ {
			if tree.Merges[i].Height < tree.Merges[i-1].Height-1e-9 {
				t.Fatalf("%v: inversion at merge %d: %v < %v",
					lk, i, tree.Merges[i].Height, tree.Merges[i-1].Height)
			}
		}
	}
}

func TestHierarchicalFromDistance(t *testing.T) {
	d := [][]float64{
		{0, 1, 9},
		{1, 0, 9},
		{9, 9, 0},
	}
	tree, err := HierarchicalFromDistance(d, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	// First merge must join 0 and 1 at height 1.
	m := tree.Merges[0]
	if !(m.A == 0 && m.B == 1) || m.Height != 1 {
		t.Fatalf("first merge = %+v", m)
	}
	if _, err := HierarchicalFromDistance([][]float64{{0, 1}}, SingleLinkage); err == nil {
		t.Fatal("ragged matrix should error")
	}
	if _, err := HierarchicalFromDistance(nil, SingleLinkage); err == nil {
		t.Fatal("empty matrix should error")
	}
}

func TestLeafOrderIsPermutation(t *testing.T) {
	rows := twoBlobs()
	tree, _ := Hierarchical(rows, PearsonDist, AverageLinkage)
	order := tree.LeafOrder()
	seen := make([]bool, len(rows))
	for _, o := range order {
		if o < 0 || o >= len(rows) || seen[o] {
			t.Fatalf("leaf order not a permutation: %v", order)
		}
		seen[o] = true
	}
}

func TestCutExtremes(t *testing.T) {
	rows := twoBlobs()
	tree, _ := Hierarchical(rows, PearsonDist, AverageLinkage)
	one, err := tree.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range one {
		if c != 0 {
			t.Fatalf("k=1 should put everything in cluster 0: %v", one)
		}
	}
	all, err := tree.Cut(len(rows))
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int]bool)
	for _, c := range all {
		distinct[c] = true
	}
	if len(distinct) != len(rows) {
		t.Fatalf("k=n should give singletons: %v", all)
	}
	if _, err := tree.Cut(0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := tree.Cut(len(rows) + 1); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestTreeValidateRejectsBadTrees(t *testing.T) {
	bad := &Tree{NLeaves: 3, Merges: []Merge{{A: 0, B: 0, Height: 1}, {A: 3, B: 2, Height: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("child used twice should fail")
	}
	short := &Tree{NLeaves: 3, Merges: []Merge{{A: 0, B: 1, Height: 1}}}
	if err := short.Validate(); err == nil {
		t.Fatal("missing merges should fail")
	}
	forward := &Tree{NLeaves: 2, Merges: []Merge{{A: 0, B: 5, Height: 1}}}
	if err := forward.Validate(); err == nil {
		t.Fatal("forward reference should fail")
	}
	none := &Tree{NLeaves: 0}
	if err := none.Validate(); err == nil {
		t.Fatal("zero leaves should fail")
	}
}

// Property: for random data, the tree is always a valid dendrogram and its
// leaf order a permutation, under every metric/linkage combination.
func TestQuickHierarchicalAlwaysValid(t *testing.T) {
	f := func(seed int64, nBits, metBits, linkBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nBits%20) + 2
		dim := 6
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for j := range rows[i] {
				rows[i][j] = r.NormFloat64()
			}
			if r.Float64() < 0.2 {
				rows[i][r.Intn(dim)] = math.NaN()
			}
		}
		metric := Metric(int(metBits) % 6)
		linkage := Linkage(int(linkBits) % 3)
		tree, err := Hierarchical(rows, metric, linkage)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		order := tree.LeafOrder()
		seen := make([]bool, n)
		for _, o := range order {
			if o < 0 || o >= n || seen[o] {
				return false
			}
			seen[o] = true
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cut(k) always yields exactly k clusters with IDs 0..k-1.
func TestQuickCutClusterCount(t *testing.T) {
	f := func(seed int64, nBits, kBits uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nBits%15) + 2
		k := int(kBits)%n + 1
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		tree, err := Hierarchical(rows, EuclideanDist, AverageLinkage)
		if err != nil {
			return false
		}
		assign, err := tree.Cut(k)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range assign {
			if c < 0 || c >= k {
				return false
			}
			seen[c] = true
		}
		return len(seen) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
