package cluster

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteTreeFormat(t *testing.T) {
	tree := &Tree{NLeaves: 3, Merges: []Merge{
		{A: 0, B: 2, Height: 0.1},
		{A: 3, B: 1, Height: 0.4},
	}}
	var buf bytes.Buffer
	if err := WriteTree(&buf, tree, GeneTree); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "NODE1X\tGENE0X\tGENE2X\t0.9" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "NODE2X\tNODE1X\tGENE1X\t") {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestWriteTreeArrayKind(t *testing.T) {
	tree := &Tree{NLeaves: 2, Merges: []Merge{{A: 0, B: 1, Height: 0.5}}}
	var buf bytes.Buffer
	if err := WriteTree(&buf, tree, ArrayTree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ARRY0X") || !strings.Contains(buf.String(), "ARRY1X") {
		t.Fatalf("array tree output = %q", buf.String())
	}
}

func TestTreeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(30) + 2
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTree(&buf, tree, GeneTree); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTree(&buf, GeneTree, n)
		if err != nil {
			t.Fatal(err)
		}
		if back.NLeaves != tree.NLeaves || len(back.Merges) != len(tree.Merges) {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d",
				back.NLeaves, len(back.Merges), tree.NLeaves, len(tree.Merges))
		}
		for i := range tree.Merges {
			a, b := tree.Merges[i], back.Merges[i]
			if a.A != b.A || a.B != b.B {
				t.Fatalf("merge %d children: %+v vs %+v", i, a, b)
			}
			if math.Abs(a.Height-b.Height) > 1e-9 {
				t.Fatalf("merge %d height: %v vs %v", i, a.Height, b.Height)
			}
		}
		// Leaf order must survive the round trip exactly.
		ao, bo := tree.LeafOrder(), back.LeafOrder()
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("leaf order changed: %v vs %v", ao, bo)
			}
		}
	}
}

func TestReadTreeErrors(t *testing.T) {
	cases := []struct {
		name, in string
		leaves   int
	}{
		{"short line", "NODE1X\tGENE0X\n", 2},
		{"bad leaf", "NODE1X\tGENE9X\tGENE0X\t0.5\n", 2},
		{"forward node ref", "NODE1X\tNODE9X\tGENE0X\t0.5\n", 2},
		{"bad similarity", "NODE1X\tGENE0X\tGENE1X\tzzz\n", 2},
		{"unknown child", "NODE1X\tWHAT0X\tGENE1X\t0.5\n", 2},
		{"wrong merge count", "NODE1X\tGENE0X\tGENE1X\t0.5\n", 3},
	}
	for _, c := range cases {
		if _, err := ReadTree(strings.NewReader(c.in), GeneTree, c.leaves); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadTreeSkipsBlankLines(t *testing.T) {
	in := "NODE1X\tGENE0X\tGENE1X\t0.5\n\n"
	tree, err := ReadTree(strings.NewReader(in), GeneTree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Merges) != 1 {
		t.Fatalf("merges = %d", len(tree.Merges))
	}
}

func TestKMeansTwoGroups(t *testing.T) {
	rows := twoBlobs()
	rng := rand.New(rand.NewSource(5))
	res, err := KMeans(rows, 2, 5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[1] != res.Assign[2] {
		t.Fatalf("rising group split: %v", res.Assign)
	}
	if res.Assign[3] != res.Assign[4] || res.Assign[4] != res.Assign[5] {
		t.Fatalf("falling group split: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[3] {
		t.Fatalf("groups merged: %v", res.Assign)
	}
	if res.Inertia < 0 {
		t.Fatalf("negative inertia: %v", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 2, 1, 10, rng); err == nil {
		t.Fatal("empty rows should error")
	}
	rows := twoBlobs()
	if _, err := KMeans(rows, 0, 1, 10, rng); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KMeans(rows, 7, 1, 10, rng); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestKMeansHandlesMissing(t *testing.T) {
	rows := twoBlobs()
	rows[0][1] = math.NaN()
	rows[4][2] = math.NaN()
	rng := rand.New(rand.NewSource(9))
	res, err := KMeans(rows, 2, 5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centroids {
		for _, v := range c {
			if math.IsNaN(v) {
				t.Fatal("centroids must not contain NaN")
			}
		}
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rows := twoBlobs()
	a, _ := KMeans(rows, 2, 3, 50, rand.New(rand.NewSource(77)))
	b, _ := KMeans(rows, 2, 3, 50, rand.New(rand.NewSource(77)))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}

func TestSilhouette(t *testing.T) {
	rows := twoBlobs()
	good := []int{0, 0, 0, 1, 1, 1}
	bad := []int{0, 1, 0, 1, 0, 1}
	sGood := Silhouette(rows, good, EuclideanDist)
	sBad := Silhouette(rows, bad, EuclideanDist)
	if !(sGood > sBad) {
		t.Fatalf("good clustering silhouette %v should beat bad %v", sGood, sBad)
	}
	if sGood < 0.5 {
		t.Fatalf("well-separated blobs should score high, got %v", sGood)
	}
	if !math.IsNaN(Silhouette(rows, []int{0, 0, 0, 0, 0, 0}, EuclideanDist)) {
		t.Fatal("single cluster silhouette should be NaN")
	}
	if !math.IsNaN(Silhouette(rows[:1], []int{0}, EuclideanDist)) {
		t.Fatal("single row silhouette should be NaN")
	}
}
