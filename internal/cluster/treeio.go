package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// GTR ("gene tree") and ATR ("array tree") are the Eisen-lab dendrogram
// formats paired with CDT files. Each line names an internal node, its two
// children, and the similarity (correlation) at which they merged:
//
//	NODE1X	GENE2X	GENE4X	0.91
//	NODE2X	NODE1X	GENE0X	0.85
//
// Children are either leaves ("GENE%dX" / "ARRY%dX") or earlier nodes
// ("NODE%dX"). Similarity = 1 - merge height for the correlation metrics,
// so heights round-trip exactly.

// TreeKind selects the leaf naming convention.
type TreeKind int

const (
	// GeneTree uses GENE%dX leaf IDs (GTR files).
	GeneTree TreeKind = iota
	// ArrayTree uses ARRY%dX leaf IDs (ATR files).
	ArrayTree
)

func (k TreeKind) leafPrefix() string {
	if k == ArrayTree {
		return "ARRY"
	}
	return "GENE"
}

// nodeID formats the internal-node identifier for merge i (1-based in the
// file, matching Cluster 3.0 output).
func nodeID(i int) string { return fmt.Sprintf("NODE%dX", i+1) }

// childID formats a Merge child reference as a leaf or node identifier.
func childID(t *Tree, kind TreeKind, c int) string {
	if c < t.NLeaves {
		return fmt.Sprintf("%s%dX", kind.leafPrefix(), c)
	}
	return nodeID(c - t.NLeaves)
}

// WriteTree serializes the dendrogram in GTR/ATR format.
func WriteTree(w io.Writer, t *Tree, kind TreeKind) error {
	bw := bufio.NewWriter(w)
	for i, m := range t.Merges {
		sim := 1 - m.Height
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			nodeID(i), childID(t, kind, m.A), childID(t, kind, m.B),
			strconv.FormatFloat(sim, 'g', 10, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTree parses a GTR/ATR stream. nLeaves must match the paired CDT's row
// (gene tree) or column (array tree) count.
func ReadTree(r io.Reader, kind TreeKind, nLeaves int) (*Tree, error) {
	t := &Tree{NLeaves: nLeaves}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	nodeIdx := make(map[string]int) // file node name -> tree node index
	lineNo := 0
	prefix := kind.leafPrefix()
	parseChild := func(s string) (int, error) {
		s = strings.TrimSpace(s)
		switch {
		case strings.HasPrefix(s, prefix) && strings.HasSuffix(s, "X"):
			num := s[len(prefix) : len(s)-1]
			i, err := strconv.Atoi(num)
			if err != nil {
				return 0, fmt.Errorf("cluster: bad leaf ID %q", s)
			}
			if i < 0 || i >= nLeaves {
				return 0, fmt.Errorf("cluster: leaf ID %q out of range (%d leaves)", s, nLeaves)
			}
			return i, nil
		case strings.HasPrefix(s, "NODE"):
			i, ok := nodeIdx[s]
			if !ok {
				return 0, fmt.Errorf("cluster: node %q referenced before definition", s)
			}
			return i, nil
		default:
			return 0, fmt.Errorf("cluster: unrecognized child ID %q", s)
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 4 {
			return nil, fmt.Errorf("cluster: tree line %d has %d fields, want 4", lineNo, len(fields))
		}
		a, err := parseChild(fields[1])
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: %w", lineNo, err)
		}
		b, err := parseChild(fields[2])
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: %w", lineNo, err)
		}
		sim, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: bad similarity: %w", lineNo, err)
		}
		nodeName := strings.TrimSpace(fields[0])
		nodeIdx[nodeName] = nLeaves + len(t.Merges)
		t.Merges = append(t.Merges, Merge{A: a, B: b, Height: 1 - sim})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading tree: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
